open Butterfly
open Cthreads

type row = { op : string; local_us : float; remote_us : float }

let cfg = { Config.default with Config.processors = 6 }

let run main =
  let sim = Sched.create cfg in
  Sched.run sim main

let us ns_total iters = float_of_int ns_total /. float_of_int iters /. 1000.0

(* Average uncontended lock/unlock latency measured from [proc] on a
   lock homed at [home]. *)
let measure_ops ~make ~proc ~home =
  let iters = 10 in
  let lock_ns = ref 0 and unlock_ns = ref 0 in
  run (fun () ->
      let lk = make ~home in
      let t =
        Cthread.fork ~proc (fun () ->
            for _ = 1 to iters do
              let t0 = Cthread.now () in
              (match lk with
              | `Lock l -> Locks.Lock.lock l
              | `Core c -> Locks.Lock_core.lock c);
              let t1 = Cthread.now () in
              (match lk with
              | `Lock l -> Locks.Lock.unlock l
              | `Core c -> Locks.Lock_core.unlock c);
              let t2 = Cthread.now () in
              lock_ns := !lock_ns + (t1 - t0);
              unlock_ns := !unlock_ns + (t2 - t1);
              Cthread.work 5_000
            done)
      in
      Cthread.join t);
  (us !lock_ns iters, us !unlock_ns iters)

let kinds =
  [
    ("atomior", `Atomior);
    ("spin-lock", `Kind Locks.Lock.Spin);
    ("spin-with-backoff", `Kind Locks.Lock.Backoff);
    ("blocking-lock", `Kind Locks.Lock.Blocking);
    ("adaptive lock", `Kind Locks.Lock.adaptive_default);
  ]

let make_of = function
  | `Atomior ->
    fun ~home ->
      `Core
        (Locks.Lock_core.create ~name:"atomior" ~home
           ~policy:(Locks.Waiting.pure_spin ~node:home ())
           ~costs:Locks.Lock_costs.atomior ())
  | `Kind kind -> fun ~home -> `Lock (Locks.Lock.create ~home kind)

let lock_unlock_tables ?domains () =
  Engine.Runner.map ?domains
    (fun (name, spec) ->
      let make = make_of spec in
      let local_lock, local_unlock = measure_ops ~make ~proc:1 ~home:1 in
      let remote_lock, remote_unlock = measure_ops ~make ~proc:2 ~home:1 in
      (name, (local_lock, remote_lock), (local_unlock, remote_unlock)))
    kinds

let table4 ?domains () =
  List.map
    (fun (name, (l, r), _) -> { op = name; local_us = l; remote_us = r })
    (lock_unlock_tables ?domains ())

let table5 ?domains () =
  List.filter_map
    (fun (name, _, (l, r)) ->
      if name = "atomior" then None else Some { op = name; local_us = l; remote_us = r })
    (lock_unlock_tables ?domains ())

(* Locking cycle: time from the owner's unlock to the waiter's
   completed acquisition on an already-locked lock. *)
let measure_cycle ~make ~waiter_proc ~home =
  let unlock_at = ref 0 and acquired_at = ref 0 in
  run (fun () ->
      let lk = make ~home in
      let do_lock () =
        match lk with `Lock l -> Locks.Lock.lock l | `Core c -> Locks.Lock_core.lock c
      and do_unlock () =
        match lk with
        | `Lock l -> Locks.Lock.unlock l
        | `Core c -> Locks.Lock_core.unlock c
      in
      let owner_has_lock = ref false in
      let owner =
        Cthread.fork ~proc:3 (fun () ->
            do_lock ();
            owner_has_lock := true;
            (* Hold long enough for the waiter to settle into its
               waiting mode. *)
            Cthread.work 800_000;
            unlock_at := Cthread.now ();
            do_unlock ())
      in
      let waiter =
        Cthread.fork ~proc:waiter_proc (fun () ->
            while not !owner_has_lock do
              Cthread.delay 5_000
            done;
            do_lock ();
            acquired_at := Cthread.now ();
            do_unlock ())
      in
      Cthread.join owner;
      Cthread.join waiter);
  float_of_int (!acquired_at - !unlock_at) /. 1000.0

let table6 ?domains () =
  let static = [ ("spin", `Kind Locks.Lock.Spin);
                 ("spin-with-backoff", `Kind Locks.Lock.Backoff);
                 ("blocking-lock", `Kind Locks.Lock.Blocking) ] in
  Engine.Runner.map ?domains
    (fun (name, spec) ->
      let make = make_of spec in
      {
        op = name;
        local_us = measure_cycle ~make ~waiter_proc:1 ~home:1;
        remote_us = measure_cycle ~make ~waiter_proc:2 ~home:1;
      })
    static

let table7 () =
  let adaptive_configured configure ~home =
    (* An adaptive lock pinned to one configuration: the no-op policy
       keeps the feedback loop from re-tuning it mid-measurement. *)
    let al =
      Locks.Adaptive_lock.create ~home ~policy:Adaptive_core.Policy.no_op ()
    in
    let r = Locks.Adaptive_lock.reconfigurable al in
    configure r;
    `Reconf r
  in
  let spin_cfg r =
    Locks.Reconfigurable_lock.configure_waiting r ~spin_count:max_int ~sleep:false ()
  in
  let block_cfg r =
    Locks.Reconfigurable_lock.configure_waiting r ~spin_count:0 ~sleep:true ()
  in
  let measure configure ~waiter_proc =
    let unlock_at = ref 0 and acquired_at = ref 0 in
    run (fun () ->
        match adaptive_configured configure ~home:1 with
        | `Reconf r ->
          let owner_has_lock = ref false in
          let owner =
            Cthread.fork ~proc:3 (fun () ->
                Locks.Reconfigurable_lock.lock r;
                owner_has_lock := true;
                Cthread.work 800_000;
                unlock_at := Cthread.now ();
                Locks.Reconfigurable_lock.unlock r)
          in
          let waiter =
            Cthread.fork ~proc:waiter_proc (fun () ->
                while not !owner_has_lock do
                  Cthread.delay 5_000
                done;
                Locks.Reconfigurable_lock.lock r;
                acquired_at := Cthread.now ();
                Locks.Reconfigurable_lock.unlock r)
          in
          Cthread.join owner;
          Cthread.join waiter);
    float_of_int (!acquired_at - !unlock_at) /. 1000.0
  in
  [
    {
      op = "spin";
      local_us = measure spin_cfg ~waiter_proc:1;
      remote_us = measure spin_cfg ~waiter_proc:2;
    };
    {
      op = "blocking";
      local_us = measure block_cfg ~waiter_proc:1;
      remote_us = measure block_cfg ~waiter_proc:2;
    };
  ]

let table8 () =
  let timed ~proc f =
    let dt = ref 0 in
    run (fun () ->
        let r = Locks.Reconfigurable_lock.create ~home:1 () in
        let t =
          Cthread.fork ~proc (fun () ->
              let t0 = Cthread.now () in
              f r;
              dt := Cthread.now () - t0)
        in
        Cthread.join t);
    float_of_int !dt /. 1000.0
  in
  let acquisition r = ignore (Locks.Reconfigurable_lock.acquire_ownership r) in
  let conf_waiting r = Locks.Reconfigurable_lock.configure_waiting r ~spin_count:5 () in
  let conf_sched r =
    Locks.Reconfigurable_lock.configure_scheduler r Locks.Lock_sched.Priority
  in
  let monitor_sample r =
    let core = Locks.Reconfigurable_lock.core r in
    let sensor =
      Adaptive_core.Sensor.make ~name:"no-of-waiting-threads"
        ~overhead_instrs:Locks.Lock_costs.monitor_sample_instrs (fun () ->
          Locks.Lock_core.waiting_now core)
    in
    ignore (Adaptive_core.Sensor.force sensor)
  in
  [
    {
      op = "acquisition";
      local_us = timed ~proc:1 acquisition;
      remote_us = timed ~proc:2 acquisition;
    };
    {
      op = "configure(waiting policy)";
      local_us = timed ~proc:1 conf_waiting;
      remote_us = timed ~proc:2 conf_waiting;
    };
    {
      op = "configure(scheduler)";
      local_us = timed ~proc:1 conf_sched;
      remote_us = timed ~proc:2 conf_sched;
    };
    { op = "monitor (one state variable)"; local_us = timed ~proc:1 monitor_sample; remote_us = nan };
  ]
