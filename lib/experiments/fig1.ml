type point = { cs_ns : int; total_ns : int }
type curve = { kind : Locks.Lock.kind; points : point list }

let default_cs_lengths = [ 5_000; 10_000; 25_000; 50_000; 100_000; 200_000; 400_000; 800_000 ]

let run ?machine ?domains ?(base = Workloads.Csweep.default)
    ?(cs_lengths = default_cs_lengths) () =
  let swept =
    Workloads.Csweep.sweep ?machine ?domains ~base ~cs_lengths
      ~kinds:Paper.figure1_lock_kinds ()
  in
  List.map
    (fun (kind, curve) ->
      {
        kind;
        points =
          List.map
            (fun (cs_ns, (r : Workloads.Csweep.result)) ->
              { cs_ns; total_ns = r.Workloads.Csweep.total_ns })
            curve;
      })
    swept

let find kind curves = List.find (fun c -> c.kind = kind) curves

let time_at curve cs =
  match List.find_opt (fun p -> p.cs_ns = cs) curve.points with
  | Some p -> p.total_ns
  | None -> invalid_arg "Fig1.time_at"

let crossover_summary curves =
  let spin = find Locks.Lock.Spin curves in
  let blocking = find Locks.Lock.Blocking curves in
  let c1 = find (Locks.Lock.Combined 1) curves in
  let c10 = find (Locks.Lock.Combined 10) curves in
  let c50 = find (Locks.Lock.Combined 50) curves in
  let shortest = (List.hd spin.points).cs_ns in
  let longest = (List.nth spin.points (List.length spin.points - 1)).cs_ns in
  let buf = Buffer.create 256 in
  let claim name ok =
    Buffer.add_string buf (Printf.sprintf "  [%s] %s\n" (if ok then "ok" else "MISS") name)
  in
  claim "blocking beats spin for the longest critical sections"
    (time_at blocking longest < time_at spin longest);
  claim
    "combined(10) beats combined(1) for some section length"
    (List.exists (fun p -> p.total_ns < time_at c1 p.cs_ns) c10.points);
  claim
    "combined(50) loses to combined(10) for some section length"
    (List.exists (fun p -> time_at c50 p.cs_ns > p.total_ns) c10.points);
  claim "spin is competitive for the shortest critical sections"
    (let ts = time_at spin shortest and tb = time_at blocking shortest in
     ts <= tb);
  Buffer.contents buf

let to_plot curves =
  let named =
    List.map
      (fun c ->
        ( Locks.Lock.kind_name c.kind,
          List.map
            (fun p ->
              (float_of_int p.cs_ns /. 1000.0, float_of_int p.total_ns /. 1_000_000.0))
            c.points ))
      curves
  in
  Repro_stats.Plot.lines ~x_label:"critical section (us)" ~y_label:"execution time (ms)"
    named

let csv_string curves =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "cs_ns";
  List.iter (fun c -> Printf.bprintf buf ",%s" (Locks.Lock.kind_name c.kind)) curves;
  Buffer.add_char buf '\n';
  (match curves with
  | [] -> ()
  | first :: _ ->
    List.iter
      (fun p ->
        Printf.bprintf buf "%d" p.cs_ns;
        List.iter (fun c -> Printf.bprintf buf ",%d" (time_at c p.cs_ns)) curves;
        Buffer.add_char buf '\n')
      first.points);
  Buffer.contents buf

let to_csv curves oc = output_string oc (csv_string curves)
