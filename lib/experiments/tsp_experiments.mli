(** Tables 1–3 and Figures 4–9: the TSP evaluation.

    Each table compares one parallel implementation under blocking vs
    adaptive locks; each figure is the locking pattern (waiting threads
    over time) of [qlock] or [glob-act-lock] in one of the blocking
    runs. One call to {!run_all} executes the seven simulations
    (sequential + three implementations x two lock kinds) and caches
    everything the tables and figures need. *)

type table = {
  impl : Tsp.Parallel.impl;
  sequential_ms : float;
  blocking_ms : float;
  adaptive_ms : float;
  improvement_pct : float;
  speedup_blocking : float;
  speedup_adaptive : float;
  blocking_result : Tsp.Parallel.result;
  adaptive_result : Tsp.Parallel.result;
}

type t = {
  spec : Tsp.Parallel.spec;
  sequential_ns : int;
  sequential_cost : int;
  sequential_nodes : int;
  tables : table list;  (** centralized, distributed, balanced *)
}

val run_all :
  ?spec:Tsp.Parallel.spec -> ?machine:Butterfly.Config.t -> ?domains:int -> unit -> t
(** Runs with lock tracing enabled. [spec]'s [lock_kind] is ignored
    (both kinds run); the adaptive runs use
    {!Tsp.Parallel.tsp_adaptive_kind}. The seven simulations run in
    parallel across up to [domains] host cores; the result is
    independent of [domains]. *)

val table : t -> Tsp.Parallel.impl -> table

val figure : t -> impl:Tsp.Parallel.impl -> lock:string -> Engine.Series.t option
(** The waiting-thread trace of the named lock in the {e blocking} run
    of [impl]. [lock] is ["qlock"] or ["glob-act-lock"]; for the
    distributed implementations the busiest per-processor queue lock
    stands in for ["qlock"]. *)

val figure_description : impl:Tsp.Parallel.impl -> lock:string -> string
(** e.g. "Figure 4: Locking Pattern for QLOCK in the Centralized
    Implementation". *)

val all_figures : (int * Tsp.Parallel.impl * string) list
(** (figure number, implementation, lock name) for Figures 4–9. *)
