(** Figure 1: application execution time vs critical-section length for
    pure spin, pure blocking, and combined(1/10/50) locks. *)

type point = { cs_ns : int; total_ns : int }

type curve = { kind : Locks.Lock.kind; points : point list }

val default_cs_lengths : int list
(** Sweep points, about 5 us to 800 us. *)

val run :
  ?machine:Butterfly.Config.t ->
  ?domains:int ->
  ?base:Workloads.Csweep.spec ->
  ?cs_lengths:int list ->
  unit ->
  curve list
(** The sweep's grid cells run in parallel across up to [domains] host
    cores (default {!Engine.Runner.default_domains}); output is
    independent of [domains]. *)

val crossover_summary : curve list -> string
(** A textual check of the figure's claims: spin wins for short
    sections, blocking for long ones, combined(10) beats combined(1)
    somewhere, combined(50) loses to combined(10) somewhere. *)

val to_plot : curve list -> string
(** ASCII rendering of the figure. *)

val csv_string : curve list -> string
(** The CSV rendering of the figure — the exact bytes {!to_csv}
    writes. *)

val to_csv : curve list -> out_channel -> unit
