(** Host-side performance measurement of the reproduction itself, and
    the machine-readable [BENCH_results.json] baseline the CI bench
    job uploads.

    Simulated (virtual-time) results never depend on the host; this
    module measures how long the host takes to produce them, so a
    regression in the simulator's hot paths shows up as a diff in the
    JSON baseline across commits. *)

type micro = {
  bench_name : string;
  ns_per_run : float;  (** OLS estimate of host ns per benchmark run *)
  r_square : float;  (** fit quality of the estimate *)
  events_per_run : float;
      (** simulation events one benchmark run executes — deterministic,
          measured by running the benchmark body once under the domain
          event odometer ([Sched.domain_events_total]) *)
  events_per_sec : float;
      (** [events_per_run /. ns_per_run *. 1e9] — the throughput metric
          the bench-compare CI gate tracks; [0.] when unknown *)
}

type comparison = {
  domains_base : int;  (** always 1 *)
  domains_parallel : int;
  wall_base_s : float;  (** full report generation at [domains=1] *)
  wall_parallel_s : float;  (** same at [domains_parallel] *)
  identical_output : bool;
      (** whether both renderings produced the same bytes — must be
          [true]; anything else is a determinism bug in the runner *)
  events_base : float;
      (** simulation events executed by the sequential leg — a
          deterministic count, so [events_base /. wall_base_s] is the
          report-level events/sec the store-backed bench gate tracks *)
}

val wall_clock_s : (unit -> 'a) -> 'a * float
(** Run a thunk and return its result and wall-clock duration. *)

val render_report : domains:int -> unit -> string
(** The full {!Report.print_everything} output rendered to a string
    (no CSV side effects). *)

val compare_report_generation : ?domains:int -> unit -> comparison * string
(** Generate the full report at [domains=1] and at [domains] (default
    {!Engine.Runner.default_domains}), compare wall-clock and output
    bytes. Also returns the rendered report (from the sequential run)
    so callers can print it without paying for a third generation. *)

val git_rev : unit -> string
(** Commit id, best effort: [GITHUB_SHA] when set (CI), else one-level
    read of [.git/HEAD], else ["unknown"]. *)

val to_json : micros:micro list -> comparison:comparison option -> unit -> string
(** The [BENCH_results.json] document: git rev, host core count, the
    report-generation wall-clock comparison, and one entry per
    micro-benchmark. *)

val write_json :
  path:string -> micros:micro list -> comparison:comparison option -> unit -> unit

(** {1 The bench-compare gate} *)

type regression = { name : string; baseline_eps : float; current_eps : float }

val load_baseline : string -> (string * float) list option
(** Parse a committed [BENCH_results.json] into
    [(benchmark name, events_per_sec)] pairs (entries without a
    positive [events_per_sec] are skipped). [None] when the file does
    not exist. The reader understands exactly the shape {!to_json}
    writes — one benchmark entry per line. *)

val compare_against_baseline :
  tolerance:float -> baseline:(string * float) list -> micro list -> regression list
(** Benchmarks whose current [events_per_sec] fell more than
    [tolerance] (e.g. [0.15]) below the baseline's. Benchmarks absent
    from the baseline — or without an events metric — are skipped, so
    adding a benchmark never fails the gate retroactively. *)
