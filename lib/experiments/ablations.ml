open Butterfly
open Cthreads

type sched_row = {
  sched : Locks.Lock_sched.kind;
  total_ns : int;
  mean_response_us : float;
  server_wait_us : float;
  client_wait_us : float;
}

let schedulers ?machine ?domains () =
  let results =
    Workloads.Client_server.compare_schedulers ?machine ?domains
      Workloads.Client_server.default
  in
  List.map
    (fun (sched, (r : Workloads.Client_server.result)) ->
      {
        sched;
        total_ns = r.Workloads.Client_server.total_ns;
        mean_response_us = r.Workloads.Client_server.mean_response_ns /. 1000.0;
        server_wait_us = r.Workloads.Client_server.server_mean_wait_ns /. 1000.0;
        client_wait_us = r.Workloads.Client_server.client_mean_wait_ns /. 1000.0;
      })
    results

type coupling_row = {
  coupling : string;
  total_ns : int;
  adaptations : int;
  max_lag_us : float;
}

(* A phased workload driven through an abstract lock interface so the
   closely- and loosely-coupled adaptive locks run the identical
   program. Six workers on processors 1-6; processor 7 is reserved for
   the loose variant's monitor thread. *)
let coupling_workload ~lock ~unlock =
  (* Twelve workers, two per processor (1-6): spinning in the storm
     phase starves the co-located compute threads, so adaptation
     timeliness matters. *)
  let workers = 12 in
  let barrier = Barrier.create ~node:0 workers in
  let phase active cs entries idx =
    Barrier.await barrier;
    if idx < active then
      for _ = 1 to entries do
        lock ();
        Cthread.work cs;
        unlock ();
        Cthread.work 10_000
      done
    else Cthread.work (entries * (cs + 10_000))
  in
  let body idx () =
    phase 1 4_000 50 idx;
    phase 12 150_000 10 idx;
    phase 1 4_000 50 idx
  in
  let threads =
    List.init workers (fun i -> Cthread.fork ~proc:(1 + (i mod 6)) (body i))
  in
  Cthread.join_all threads

let coupling ?machine ?domains () =
  let cfg =
    match machine with Some c -> c | None -> { Config.default with Config.processors = 8 }
  in
  let cfg = { cfg with Config.processors = max cfg.Config.processors 8 } in
  let close () =
    let sim = Sched.create cfg in
    let adaptations = ref 0 in
    Sched.run sim (fun () ->
        let lk = Locks.Adaptive_lock.create ~home:0 () in
        coupling_workload
          ~lock:(fun () -> Locks.Adaptive_lock.lock lk)
          ~unlock:(fun () -> Locks.Adaptive_lock.unlock lk);
        adaptations := Locks.Adaptive_lock.adaptations lk);
    {
      coupling = "closely-coupled";
      total_ns = Sched.final_time sim;
      adaptations = !adaptations;
      max_lag_us = 0.0;
    }
  in
  let loose () =
    let sim = Sched.create cfg in
    let adaptations = ref 0 and lag = ref 0 in
    Sched.run sim (fun () ->
        let lk =
          (* The general-purpose monitor batches trace records: its
             polling granularity is far coarser than the lock's
             event rate, which is what produces the adaptation lag. *)
          Monitoring.Loose_adaptive_lock.create ~home:0 ~monitor_proc:7
            ~poll_interval_ns:2_000_000 ()
        in
        coupling_workload
          ~lock:(fun () -> Monitoring.Loose_adaptive_lock.lock lk)
          ~unlock:(fun () -> Monitoring.Loose_adaptive_lock.unlock lk);
        adaptations := Monitoring.Loose_adaptive_lock.adaptations lk;
        lag := Monitoring.Loose_adaptive_lock.max_lag_ns lk;
        Monitoring.Loose_adaptive_lock.shutdown lk);
    {
      coupling = "loosely-coupled";
      total_ns = Sched.final_time sim;
      adaptations = !adaptations;
      max_lag_us = float_of_int !lag /. 1000.0;
    }
  in
  Engine.Runner.map ?domains (fun run -> run ()) [ close; loose ]

type sampling_row = { period : int; total_ns : int; samples : int; adaptations : int }

let contended_adaptive_run ?machine ~params () =
  let cfg =
    match machine with Some c -> c | None -> { Config.default with Config.processors = 8 }
  in
  let sim = Sched.create cfg in
  let samples = ref 0 and adaptations = ref 0 and blocks = ref 0 and spins = ref 0 in
  Sched.run sim (fun () ->
      let lk = Locks.Adaptive_lock.create ~home:0 ~params () in
      let body i () =
        Cthread.work (i * 3_000);
        for _ = 1 to 30 do
          Locks.Adaptive_lock.lock lk;
          Cthread.work 30_000;
          Locks.Adaptive_lock.unlock lk;
          Cthread.work 40_000
        done
      in
      let threads = List.init 6 (fun i -> Cthread.fork ~proc:(1 + (i mod 7)) (body i)) in
      Cthread.join_all threads;
      samples := Locks.Adaptive_lock.samples lk;
      adaptations := Locks.Adaptive_lock.adaptations lk;
      blocks := Locks.Lock_stats.blocks (Locks.Adaptive_lock.stats lk);
      spins := Locks.Lock_stats.spin_probes (Locks.Adaptive_lock.stats lk));
  (Sched.final_time sim, !samples, !adaptations, !blocks, !spins)

let sampling ?machine ?domains ~periods () =
  Engine.Runner.map ?domains
    (fun period ->
      let params = { Locks.Adaptive_lock.default_params with Locks.Adaptive_lock.sample_period = period } in
      let total_ns, samples, adaptations, _, _ = contended_adaptive_run ?machine ~params () in
      { period; total_ns; samples; adaptations })
    periods

type threshold_row = {
  waiting_threshold : int;
  n : int;
  total_ns : int;
  blocks : int;
  spin_probes : int;
}

let threshold ?machine ?domains ~thresholds ~ns () =
  let grid =
    List.concat_map
      (fun waiting_threshold -> List.map (fun n -> (waiting_threshold, n)) ns)
      thresholds
  in
  Engine.Runner.map ?domains
    (fun (waiting_threshold, n) ->
      let params =
        { Locks.Adaptive_lock.default_params with
          Locks.Adaptive_lock.waiting_threshold; n }
      in
      let total_ns, _, _, blocks, spin_probes =
        contended_adaptive_run ?machine ~params ()
      in
      { waiting_threshold; n; total_ns; blocks; spin_probes })
    grid

type phase_row = {
  kind : Locks.Lock.kind;
  total_ns : int;
  adaptations : int;
  mean_wait_us : float;
}

let phases ?machine ?domains () =
  let kinds =
    [
      Locks.Lock.Spin;
      Locks.Lock.Blocking;
      Locks.Lock.Combined 10;
      Locks.Lock.adaptive_default;
    ]
  in
  Workloads.Phased.compare_kinds ?machine ?domains Workloads.Phased.default kinds
  |> List.map (fun (kind, (r : Workloads.Phased.result)) ->
         {
           kind;
           total_ns = r.Workloads.Phased.total_ns;
           adaptations = r.Workloads.Phased.adaptations;
           mean_wait_us = r.Workloads.Phased.mean_wait_ns /. 1000.0;
         })

type arch_row = {
  arch : string;
  lock_impl : string;
  total_ns : int;
  remote_accesses : int;
  mean_wait_us : float;
}

(* MS93's second recap experiment: implementation-specific lock
   configurations re-targeted across architectures. A heavily contended
   short critical section, run with four lock implementations on the
   NUMA machine and on its UMA variant. *)
let architecture ?machine ?domains () =
  let base =
    match machine with Some c -> c | None -> { Config.default with Config.processors = 8 }
  in
  let machines = [ ("NUMA", base); ("UMA", Config.uma base) ] in
  let workers = 6 and iterations = 40 in
  let drive ~lock ~unlock =
    let body i () =
      Cthread.work (i * 2_000);
      for _ = 1 to iterations do
        lock ();
        Cthread.work 20_000;
        unlock ();
        Cthread.work 10_000
      done
    in
    let threads = List.init workers (fun i -> Cthread.fork ~proc:(i + 1) (body i)) in
    Cthread.join_all threads
  in
  let run_one arch cfg (impl_name, make) =
    let sim = Sched.create cfg in
    let wait = ref 0.0 in
    Sched.run sim (fun () ->
        let lock, unlock, stats, cleanup = make () in
        drive ~lock ~unlock;
        wait := Locks.Lock_stats.mean_wait_ns stats /. 1000.0;
        cleanup ());
    {
      arch;
      lock_impl = impl_name;
      total_ns = Sched.final_time sim;
      remote_accesses = Memory.remote_accesses (Sched.memory sim);
      mean_wait_us = !wait;
    }
  in
  let implementations =
    [
      ( "centralized spin",
        fun () ->
          let lk = Locks.Lock.create ~home:1 Locks.Lock.Spin in
          ( (fun () -> Locks.Lock.lock lk),
            (fun () -> Locks.Lock.unlock lk),
            Locks.Lock.stats lk,
            fun () -> () ) );
      ( "local-spin (distributed)",
        fun () ->
          let lk = Locks.Local_spin_lock.create ~home:1 () in
          ( (fun () -> Locks.Local_spin_lock.lock lk),
            (fun () -> Locks.Local_spin_lock.unlock lk),
            Locks.Local_spin_lock.stats lk,
            fun () -> () ) );
      ( "blocking",
        fun () ->
          let lk = Locks.Lock.create ~home:1 Locks.Lock.Blocking in
          ( (fun () -> Locks.Lock.lock lk),
            (fun () -> Locks.Lock.unlock lk),
            Locks.Lock.stats lk,
            fun () -> () ) );
      ( "active (server thread)",
        fun () ->
          let lk = Locks.Active_lock.create ~server_proc:7 () in
          ( (fun () -> Locks.Active_lock.lock lk),
            (fun () -> Locks.Active_lock.unlock lk),
            Locks.Active_lock.stats lk,
            fun () -> Locks.Active_lock.shutdown lk ) );
    ]
  in
  let grid =
    List.concat_map
      (fun (arch, cfg) -> List.map (fun impl -> (arch, cfg, impl)) implementations)
      machines
  in
  Engine.Runner.map ?domains (fun (arch, cfg, impl) -> run_one arch cfg impl) grid

type barrier_row = {
  barrier_impl : string;
  total_ns : int;
  barrier_adaptations : int;
  final_spin_ns : int;
}

(* Phased barrier workload: twelve workers, two per processor (1-6),
   alternating balanced rounds (arrivals nearly simultaneous — spinning
   on the generation word beats a deschedule/resume pair) with a skewed
   middle phase where worker 0 straggles by 5 ms — a spinning arrival
   then starves the co-located straggler, so blocking is right. No
   fixed arrival strategy wins both phases; the adaptive barrier reads
   the inter-arrival spread and moves its spin budget. *)
let barriers ?machine ?domains () =
  let cfg =
    match machine with Some c -> c | None -> { Config.default with Config.processors = 8 }
  in
  let cfg = { cfg with Config.processors = max cfg.Config.processors 8 } in
  let workers = 12 in
  let rounds_balanced = 30 and rounds_skewed = 24 in
  let drive ~await =
    let body idx () =
      let round extra =
        Cthread.work (3_000 + extra);
        await ()
      in
      for _ = 1 to rounds_balanced do
        round 0
      done;
      for _ = 1 to rounds_skewed do
        round (if idx = 0 then 5_000_000 else 0)
      done;
      for _ = 1 to rounds_balanced do
        round 0
      done
    in
    let threads =
      List.init workers (fun i -> Cthread.fork ~proc:(1 + (i mod 6)) (body i))
    in
    Cthread.join_all threads
  in
  let run_one (label, make) =
    let sim = Sched.create cfg in
    let adaptations = ref 0 and final = ref 0 in
    Sched.run sim (fun () ->
        let await, finish = make () in
        drive ~await;
        let a, f = finish () in
        adaptations := a;
        final := f);
    {
      barrier_impl = label;
      total_ns = Sched.final_time sim;
      barrier_adaptations = !adaptations;
      final_spin_ns = !final;
    }
  in
  let adaptive_metrics b () =
    ( Adaptive_core.Adaptive.adaptations (Adaptive_barrier.loop b),
      Adaptive_barrier.spin_budget_ns b )
  in
  Engine.Runner.map ?domains run_one
    [
      ( "fixed always-block",
        fun () ->
          let b = Barrier.create ~node:0 workers in
          ((fun () -> Barrier.await b), fun () -> (0, 0)) );
      ( "fixed always-spin",
        fun () ->
          (* An adaptive barrier frozen open: sampling disabled, spin
             budget pinned above any skew. *)
          let b =
            Adaptive_barrier.create ~node:0 ~name:"fixed-spin-barrier" ~period:max_int
              workers
          in
          Adaptive_core.Attribute.set (Adaptive_barrier.spin_attr b) 10_000_000;
          ((fun () -> Adaptive_barrier.await b), adaptive_metrics b) );
      ( "adaptive",
        fun () ->
          (* Thresholds bracket this machine's measured spreads: ~1.9 ms
             between blocked balanced arrivals (the resume cascade of 11
             sleepers, two per processor), ~4.4 ms when the straggler
             skews. The budget cap must exceed the blocked-mode spread
             or spinners can never bridge the block-to-spin transition. *)
          let b =
            Adaptive_barrier.create ~node:0 ~name:"ablation-barrier"
              ~spin_if_under:2_800_000 ~block_if_over:3_600_000 ~max_spin_ns:4_915_200
              workers
          in
          ((fun () -> Adaptive_barrier.await b), adaptive_metrics b) );
    ]

type advisory_row = {
  advisory_lock : string;
  total_ns : int;
  blocks : int;
  spin_probes : int;
  mean_wait_advisory_us : float;
}

(* Section 2's claim that "a speculative or advisory lock performs well
   for variable length critical sections": each critical section is
   randomly short (spin is right) or long (sleeping is right); only the
   owner knows which, and the advisory lock lets it tell the waiters. *)
let advisory ?machine ?domains () =
  let cfg =
    match machine with Some c -> c | None -> { Config.default with Config.processors = 8 }
  in
  let short_ns = 8_000 and long_ns = 8_000_000 in
  let run_one (label, kind) =
    let sim = Sched.create cfg in
    let stats = ref None in
    Sched.run sim (fun () ->
        let lk = Locks.Lock.create ~home:0 kind in
        let body i () =
          Cthread.work (i * 2_000);
          for _ = 1 to 18 do
            (* One in six sections is long. *)
            let long = Cthread.random 6 = 0 in
            Locks.Lock.lock lk;
            (match Locks.Lock.kind lk with
            | Locks.Lock.Advisory ->
              Locks.Lock.advise lk
                (Some
                   (if long then Locks.Lock_core.Advise_sleep
                    else Locks.Lock_core.Advise_spin))
            | _ -> ());
            Cthread.work (if long then long_ns else short_ns);
            Locks.Lock.unlock lk;
            Cthread.work 20_000
          done
        in
        (* Two workers per processor: spinning through a long section
           starves the co-located holder. *)
        let threads =
          List.init 12 (fun i -> Cthread.fork ~proc:(1 + (i mod 6)) (body i))
        in
        Cthread.join_all threads;
        stats := Some (Locks.Lock.stats lk));
    let s = match !stats with Some s -> s | None -> assert false in
    {
      advisory_lock = label;
      total_ns = Sched.final_time sim;
      blocks = Locks.Lock_stats.blocks s;
      spin_probes = Locks.Lock_stats.spin_probes s;
      mean_wait_advisory_us = Locks.Lock_stats.mean_wait_ns s /. 1000.0;
    }
  in
  Engine.Runner.map ?domains run_one
    [
      ("pure spin", Locks.Lock.Spin);
      ("pure blocking", Locks.Lock.Blocking);
      ("combined(10)", Locks.Lock.Combined 10);
      ("advisory", Locks.Lock.Advisory);
    ]

type switch_row = {
  sw_point : string;
  sw_variant : string;
  sw_total_ns : int;
  sw_mean_wait_us : float;
  sw_blocks : int;
  sw_spin_probes : int;
  sw_swaps : int;
  sw_final_impl : string;
}

(* The implementation-as-attribute ablation (Switch_lock): five
   contention regimes, each run under the three pinned implementations
   and under the adaptive ladder. The regimes are chosen so no pinned
   implementation wins everywhere — plain TAS when the lock is mostly
   free, the MCS queue when waiters pile up (its probes spin on
   locally-homed flags instead of hammering the lock's home module),
   blocking when ownership spans dwarf the deschedule round trip. *)
let switch_points =
  [
    (* label, workers, processors used, iterations, cs_ns, think_ns.
       The long-hold point oversubscribes its processors (two workers
       each): a spinning waiter then starves the co-located holder —
       spin gaps are busy [work], not [delay] — which is exactly when
       descheduling pays for itself. *)
    ("uncontended", 2, 7, 40, 4_000, 60_000);
    ("light", 3, 7, 40, 8_000, 20_000);
    ("moderate", 5, 7, 30, 15_000, 8_000);
    ("queued", 7, 7, 30, 25_000, 2_000);
    ("long-hold", 8, 4, 16, 700_000, 10_000);
  ]

let switch_machine machine =
  let cfg =
    match machine with Some c -> c | None -> { Config.default with Config.processors = 8 }
  in
  { cfg with Config.processors = max cfg.Config.processors 8 }

let switch_one ?machine ~point ~workers ~processors:procs ~iterations:iters ~cs_ns
    ~think_ns ~variant ~fixed () =
  let cfg = switch_machine machine in
  let run_one ((point, workers, procs, iters, cs_ns, think_ns), (variant, fixed)) =
    let module SL = Locks.Switch_lock in
    let sim = Sched.create cfg in
    let wait = ref 0.0 and blocks = ref 0 and probes = ref 0 in
    let swaps = ref 0 and final = ref Locks.Switch_lock.Tas in
    Sched.run sim (fun () ->
        let lk = SL.create ?fixed ~name:"ablation-switch" ~home:0 () in
        let body i () =
          Cthread.work (i * 3_000);
          for _ = 1 to iters do
            SL.lock lk;
            Cthread.work cs_ns;
            SL.unlock lk;
            Cthread.work think_ns
          done
        in
        let ts =
          List.init workers (fun i -> Cthread.fork ~proc:(1 + (i mod procs)) (body i))
        in
        Cthread.join_all ts;
        let st = SL.stats lk in
        wait := Locks.Lock_stats.mean_wait_ns st /. 1000.0;
        blocks := Locks.Lock_stats.blocks st;
        probes := Locks.Lock_stats.spin_probes st;
        swaps := SL.epoch lk;
        final := SL.current_impl lk);
    {
      sw_point = point;
      sw_variant = variant;
      sw_total_ns = Sched.final_time sim;
      sw_mean_wait_us = !wait;
      sw_blocks = !blocks;
      sw_spin_probes = !probes;
      sw_swaps = !swaps;
      sw_final_impl = Locks.Switch_lock.impl_label !final;
    }
  in
  run_one ((point, workers, procs, iters, cs_ns, think_ns), (variant, fixed))

let switch_variants =
  [
    ("fixed tas", Some Locks.Switch_lock.Tas);
    ("fixed mcs", Some Locks.Switch_lock.Mcs);
    ("fixed blocking", Some Locks.Switch_lock.Blocking);
    ("adaptive", None);
  ]

let switch_locks ?machine ?domains () =
  let grid =
    List.concat_map (fun p -> List.map (fun v -> (p, v)) switch_variants) switch_points
  in
  Engine.Runner.map ?domains
    (fun ((point, workers, procs, iters, cs_ns, think_ns), (variant, fixed)) ->
      switch_one ?machine ~point ~workers ~processors:procs ~iterations:iters ~cs_ns
        ~think_ns ~variant ~fixed ())
    grid

let switch_gate ?(slack_pct = 5.0) rows =
  let points = List.map (fun (p, _, _, _, _, _) -> p) switch_points in
  let extremes = [ List.hd points; List.nth points (List.length points - 1) ] in
  List.concat_map
    (fun point ->
      let at = List.filter (fun r -> r.sw_point = point) rows in
      match List.partition (fun r -> r.sw_variant = "adaptive") at with
      | [ adaptive ], (_ :: _ as fixed) ->
        let worst =
          List.fold_left (fun acc r -> max acc r.sw_total_ns) min_int fixed
        in
        let best =
          List.fold_left (fun acc r -> min acc r.sw_total_ns) max_int fixed
        in
        let beats_worst =
          (* Ties are fine: the adaptive lock must never be *worse*
             than the worst pinned variant, not strictly faster. *)
          if adaptive.sw_total_ns <= worst then []
          else
            [
              Printf.sprintf
                "%s: adaptive (%d ns) is worse than the worst pinned variant (%d ns)"
                point adaptive.sw_total_ns worst;
            ]
        in
        let near_best =
          if not (List.mem point extremes) then []
          else
            let limit =
              int_of_float (float_of_int best *. (1.0 +. (slack_pct /. 100.0)))
            in
            if adaptive.sw_total_ns <= limit then []
            else
              [
                Printf.sprintf
                  "%s: adaptive (%d ns) is more than %.1f%% above the best pinned \
                   variant (%d ns)"
                  point adaptive.sw_total_ns slack_pct best;
              ]
        in
        beats_worst @ near_best
      | _ -> [ Printf.sprintf "%s: incomplete variant grid" point ])
    points
