type table = {
  impl : Tsp.Parallel.impl;
  sequential_ms : float;
  blocking_ms : float;
  adaptive_ms : float;
  improvement_pct : float;
  speedup_blocking : float;
  speedup_adaptive : float;
  blocking_result : Tsp.Parallel.result;
  adaptive_result : Tsp.Parallel.result;
}

type t = {
  spec : Tsp.Parallel.spec;
  sequential_ns : int;
  sequential_cost : int;
  sequential_nodes : int;
  tables : table list;
}

let ms ns = float_of_int ns /. 1_000_000.0

let run_all ?spec ?machine ?domains () =
  let spec =
    match spec with Some s -> s | None -> Tsp.Parallel.default_spec
  in
  let spec = { spec with Tsp.Parallel.trace_locks = true } in
  let impls = [ Tsp.Parallel.Centralized; Tsp.Parallel.Distributed; Tsp.Parallel.Balanced ] in
  (* Seven independent machines: the sequential reference plus one run
     per (implementation, lock kind); fan them across domains and
     reassemble in the fixed order. *)
  let tasks =
    `Sequential
    :: List.concat_map
         (fun impl ->
           [
             `Pool (impl, Locks.Lock.Blocking);
             `Pool (impl, Tsp.Parallel.tsp_adaptive_kind);
           ])
         impls
  in
  let results =
    Engine.Runner.map ?domains
      (function
        | `Sequential -> `Seq_done (Tsp.Parallel.run_sequential ?machine spec)
        | `Pool (impl, lock_kind) ->
          `Pool_done (Tsp.Parallel.run ?machine impl { spec with Tsp.Parallel.lock_kind }))
      tasks
  in
  let sequential_ns, (sequential_cost, sequential_nodes) =
    match List.hd results with `Seq_done r -> r | `Pool_done _ -> assert false
  in
  let pool_results =
    List.filter_map (function `Pool_done r -> Some r | `Seq_done _ -> None) results
  in
  let one impl blocking_result adaptive_result =
    let b = blocking_result.Tsp.Parallel.total_ns in
    let a = adaptive_result.Tsp.Parallel.total_ns in
    {
      impl;
      sequential_ms = ms sequential_ns;
      blocking_ms = ms b;
      adaptive_ms = ms a;
      improvement_pct = 100.0 *. (1.0 -. (float_of_int a /. float_of_int b));
      speedup_blocking = float_of_int sequential_ns /. float_of_int b;
      speedup_adaptive = float_of_int sequential_ns /. float_of_int a;
      blocking_result;
      adaptive_result;
    }
  in
  let rec tables impls results =
    match (impls, results) with
    | [], [] -> []
    | impl :: impls, blocking :: adaptive :: rest ->
      one impl blocking adaptive :: tables impls rest
    | _ -> assert false
  in
  {
    spec;
    sequential_ns;
    sequential_cost;
    sequential_nodes;
    tables = tables impls pool_results;
  }

let table t impl = List.find (fun row -> row.impl = impl) t.tables

(* For the distributed implementations the queue locks are
   per-processor; the figure plots the busiest one. *)
let representative_qlock reports =
  let qlocks =
    List.filter (fun (name, _) -> String.length name >= 5 && String.sub name 0 5 = "qlock") reports
  in
  let busiest =
    List.fold_left
      (fun acc (name, s) ->
        match acc with
        | Some (_, best) when Locks.Lock_stats.contended best >= Locks.Lock_stats.contended s
          -> acc
        | _ -> Some (name, s))
      None qlocks
  in
  Option.map snd busiest

let figure t ~impl ~lock =
  let row = table t impl in
  let reports = row.blocking_result.Tsp.Parallel.lock_reports in
  let stats =
    if lock = "qlock" then representative_qlock reports
    else List.assoc_opt lock reports
  in
  match stats with None -> None | Some s -> Locks.Lock_stats.trace s

let figure_description ~impl ~lock =
  Printf.sprintf "Locking Pattern for \"%s\" in the %s Implementation"
    (String.uppercase_ascii lock)
    (String.capitalize_ascii (Tsp.Parallel.impl_name impl))

let all_figures =
  [
    (4, Tsp.Parallel.Centralized, "qlock");
    (5, Tsp.Parallel.Centralized, "glob-act-lock");
    (6, Tsp.Parallel.Distributed, "qlock");
    (7, Tsp.Parallel.Distributed, "glob-act-lock");
    (8, Tsp.Parallel.Balanced, "qlock");
    (9, Tsp.Parallel.Balanced, "glob-act-lock");
  ]
