(** Reproduction of the lock microbenchmark tables (Tables 4–8).

    Every measurement is taken on a fresh simulated machine in virtual
    time. "Local" means the measuring thread runs on the lock's home
    node; "remote" on a different node.

    Tables 4–6 measure independent machines per lock kind and fan
    those runs across up to [domains] host cores
    ({!Engine.Runner.default_domains} when omitted); row order and
    values do not depend on [domains]. *)

type row = { op : string; local_us : float; remote_us : float }

val table4 : ?domains:int -> unit -> row list
(** Uncontended Lock-operation latency per lock kind (averaged over a
    few acquisitions). *)

val table5 : ?domains:int -> unit -> row list
(** Uncontended Unlock-operation latency. *)

val table6 : ?domains:int -> unit -> row list
(** Locking cycle — time from the owner's unlock to a waiting thread's
    completed acquisition — for the static locks (spin, back-off,
    blocking). *)

val table7 : unit -> row list
(** Locking cycle for the adaptive lock pre-configured as pure spin
    and as pure blocking. *)

val table8 : unit -> row list
(** Configuration-operation costs: attribute acquisition,
    configure(waiting policy), configure(scheduler), and one
    general-monitor sample (local only; remote is [nan] as in the
    paper). *)
