(** Ablations beyond the paper's tables: the design-choice studies
    DESIGN.md calls out.

    - {!schedulers}: the [MS93] client-server lock-scheduler comparison
      (FCFS vs Priority vs Handoff; priority should win, FCFS lose).
    - {!coupling}: closely-coupled (in-line) vs loosely-coupled
      (monitor thread + ring buffer) adaptation on a phased workload —
      quantifies the adaptation lag that made the paper build the
      customized lock monitor.
    - {!sampling}: monitor sampling-rate sweep (quality of adaptation
      vs monitoring overhead, §3).
    - {!threshold}: [Waiting-Threshold]/[n] sweep of [simple-adapt]
      (the paper's stated next research step).
    - {!phases}: adaptive vs static locks across contention phases
      (§2's "optimal waiting policy might differ during different
      phases").

    Every row of every study is an independent simulated machine, so
    each function fans its rows out across up to [domains] host cores
    ({!Engine.Runner}); results are independent of [domains]. *)

type sched_row = {
  sched : Locks.Lock_sched.kind;
  total_ns : int;
  mean_response_us : float;  (** submit-to-served latency (headline) *)
  server_wait_us : float;
  client_wait_us : float;
}

val schedulers : ?machine:Butterfly.Config.t -> ?domains:int -> unit -> sched_row list

type coupling_row = {
  coupling : string;  (** "closely-coupled" or "loosely-coupled" *)
  total_ns : int;
  adaptations : int;
  max_lag_us : float;  (** observation staleness; 0 for closely-coupled *)
}

val coupling : ?machine:Butterfly.Config.t -> ?domains:int -> unit -> coupling_row list

type sampling_row = {
  period : int;  (** sample every k-th unlock *)
  total_ns : int;
  samples : int;
  adaptations : int;
}

val sampling :
  ?machine:Butterfly.Config.t ->
  ?domains:int ->
  periods:int list ->
  unit ->
  sampling_row list

type threshold_row = {
  waiting_threshold : int;
  n : int;
  total_ns : int;
  blocks : int;
  spin_probes : int;
}

val threshold :
  ?machine:Butterfly.Config.t ->
  ?domains:int ->
  thresholds:int list ->
  ns:int list ->
  unit ->
  threshold_row list

type phase_row = {
  kind : Locks.Lock.kind;
  total_ns : int;
  adaptations : int;
  mean_wait_us : float;
}

val phases : ?machine:Butterfly.Config.t -> ?domains:int -> unit -> phase_row list

type arch_row = {
  arch : string;  (** "NUMA" or "UMA" *)
  lock_impl : string;
  total_ns : int;
  remote_accesses : int;  (** inter-node memory accesses of the run *)
  mean_wait_us : float;
}

val architecture : ?machine:Butterfly.Config.t -> ?domains:int -> unit -> arch_row list
(** [MS93]'s implementation-retargeting experiment: centralized spin vs
    local-spin (distributed) vs blocking vs active locks on the NUMA
    machine and its UMA variant. Local spinning should pay off only on
    NUMA. *)

type barrier_row = {
  barrier_impl : string;  (** "fixed always-block" / "fixed always-spin" / "adaptive" *)
  total_ns : int;
  barrier_adaptations : int;
  final_spin_ns : int;  (** arrival spin budget at the end of the run *)
}

val barriers : ?machine:Butterfly.Config.t -> ?domains:int -> unit -> barrier_row list
(** Adaptive vs fixed barrier arrival strategies on a phased workload:
    balanced rounds (spin wins), a skewed-straggler middle phase
    (spinning starves the co-located straggler; block wins), balanced
    again. The adaptive barrier must reconfigure and beat the worst
    fixed strategy. *)

type advisory_row = {
  advisory_lock : string;
  total_ns : int;
  blocks : int;
  spin_probes : int;
  mean_wait_advisory_us : float;
}

val advisory : ?machine:Butterfly.Config.t -> ?domains:int -> unit -> advisory_row list
(** Section 2's advisory-lock claim: on a workload of randomly short or
    long critical sections, the owner's advice (spin for short, sleep
    for long) should beat any fixed waiting policy. *)

type switch_row = {
  sw_point : string;  (** contention regime label *)
  sw_variant : string;  (** "fixed tas" / "fixed mcs" / "fixed blocking" / "adaptive" *)
  sw_total_ns : int;
  sw_mean_wait_us : float;
  sw_blocks : int;
  sw_spin_probes : int;
  sw_swaps : int;  (** committed implementation swaps (0 for pinned variants) *)
  sw_final_impl : string;  (** implementation at the end of the run *)
}

val switch_points : (string * int * int * int * int * int) list
(** The sweep grid: (label, workers, processors used, iterations,
    cs_ns, think_ns). The long-hold point runs two workers per
    processor, where spinning through a long ownership span starves
    the co-located holder. *)

val switch_one :
  ?machine:Butterfly.Config.t ->
  point:string ->
  workers:int ->
  processors:int ->
  iterations:int ->
  cs_ns:int ->
  think_ns:int ->
  variant:string ->
  fixed:Locks.Switch_lock.impl option ->
  unit ->
  switch_row
(** One cell of the implementation-as-attribute ablation: [workers]
    threads hammering one switch lock for [iterations] critical
    sections of [cs_ns] with [think_ns] between entries, pinned to
    [fixed] (or adaptive when [None]). The unit the experiment-fleet
    [switch-lock] driver runs per config. *)

val switch_locks : ?machine:Butterfly.Config.t -> ?domains:int -> unit -> switch_row list
(** The implementation-as-attribute ablation ({!Locks.Switch_lock}):
    every contention regime of {!switch_points} under each pinned
    implementation and under the adaptive ladder. No pinned
    implementation wins everywhere; the adaptive lock must never be
    the loser. *)

val switch_gate : ?slack_pct:float -> switch_row list -> string list
(** The acceptance gate over {!switch_locks} rows: the adaptive
    variant is never worse than the worst pinned variant at any sweep
    point (ties pass) and lands within [slack_pct] (default 5%) of
    the best pinned variant at the sweep extremes. Returns
    human-readable violations (empty = pass). *)
