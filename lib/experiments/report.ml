let std = Format.std_formatter

let fus v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v

let print_lock_table out ~title ~paper rows =
  let tbl =
    Repro_stats.Table.create
      ~headers:
        [ "operation"; "local (us)"; "paper"; "remote (us)"; "paper" ]
  in
  List.iter
    (fun (row : Lock_tables.row) ->
      let reference =
        List.find_opt (fun (p : Paper.lock_op_row) -> p.Paper.lock_name = row.Lock_tables.op) paper
      in
      let p_local, p_remote =
        match reference with
        | Some p -> (p.Paper.local_us, p.Paper.remote_us)
        | None -> (nan, nan)
      in
      Repro_stats.Table.add_row tbl
        [
          row.Lock_tables.op;
          fus row.Lock_tables.local_us;
          fus p_local;
          fus row.Lock_tables.remote_us;
          fus p_remote;
        ])
    rows;
  Format.fprintf out "%s@." (Repro_stats.Table.render ~title tbl)

let print_table4 ?(out = std) ?domains () =
  print_lock_table out ~title:"Table 4: cost of the Lock operation"
    ~paper:Paper.table4 (Lock_tables.table4 ?domains ())

let print_table5 ?(out = std) ?domains () =
  print_lock_table out ~title:"Table 5: cost of the Unlock operation"
    ~paper:Paper.table5 (Lock_tables.table5 ?domains ())

let print_table6 ?(out = std) ?domains () =
  print_lock_table out
    ~title:"Table 6: unlock+lock cycle on a locked lock (static locks)"
    ~paper:Paper.table6 (Lock_tables.table6 ?domains ())

let print_table7 ?(out = std) () =
  print_lock_table out
    ~title:"Table 7: unlock+lock cycle on a locked adaptive lock"
    ~paper:Paper.table7 (Lock_tables.table7 ())

let print_table8 ?(out = std) () =
  print_lock_table out ~title:"Table 8: cost of lock configuration operations"
    ~paper:Paper.table8 (Lock_tables.table8 ())

let with_csv csv_dir name f =
  match csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir name in
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

type emit = name:string -> metrics:(string * float) list -> payload:string -> unit

(* Every artifact-producing section funnels through [deliver]: the
   legacy file under --csv-dir is written from the exact payload bytes,
   and the same bytes (plus a flat metric projection) are handed to the
   caller's [emit] hook — the repro CLI points that hook at the
   experiment-fleet store, so store records and legacy artifacts can
   never drift apart. *)
let deliver ?csv_dir ?emit ~name ~metrics payload =
  with_csv csv_dir name (fun oc -> output_string oc payload);
  match emit with
  | None -> ()
  | Some f -> f ~name ~metrics ~payload

let print_fig1 ?(out = std) ?csv_dir ?emit ?domains () =
  let curves = Fig1.run ?domains () in
  Format.fprintf out
    "Figure 1: critical-section length vs application execution time@.%s@."
    (Fig1.to_plot curves);
  Format.fprintf out "Claims check:@.%s@." (Fig1.crossover_summary curves);
  let metrics =
    List.concat_map
      (fun (c : Fig1.curve) ->
        List.map
          (fun (p : Fig1.point) ->
            ( Printf.sprintf "%s/cs_ns=%d/total_ns" (Locks.Lock.kind_name c.Fig1.kind)
                p.Fig1.cs_ns,
              float_of_int p.Fig1.total_ns ))
          c.Fig1.points)
      curves
  in
  deliver ?csv_dir ?emit ~name:"fig1.csv" ~metrics (Fig1.csv_string curves)

let tsp_table_title = function
  | Tsp.Parallel.Centralized -> "Table 1: centralized implementation"
  | Tsp.Parallel.Distributed -> "Table 2: distributed implementation"
  | Tsp.Parallel.Balanced -> "Table 3: distributed implementation with load balancing"

let paper_tsp = function
  | Tsp.Parallel.Centralized -> Paper.table1
  | Tsp.Parallel.Distributed -> Paper.table2
  | Tsp.Parallel.Balanced -> Paper.table3

let fms v = Printf.sprintf "%.0f" v

let print_tsp_table out (row : Tsp_experiments.table) =
  let p = paper_tsp row.Tsp_experiments.impl in
  let tbl =
    Repro_stats.Table.create
      ~headers:[ "quantity"; "measured"; "paper" ]
  in
  (match (row.Tsp_experiments.impl, p.Paper.sequential_ms) with
  | Tsp.Parallel.Centralized, Some seq ->
    Repro_stats.Table.add_row tbl
      [ "sequential (ms)"; fms row.Tsp_experiments.sequential_ms; fms seq ]
  | _ -> ());
  Repro_stats.Table.add_rows tbl
    [
      [ "blocking lock (ms)"; fms row.Tsp_experiments.blocking_ms; fms p.Paper.blocking_ms ];
      [ "adaptive lock (ms)"; fms row.Tsp_experiments.adaptive_ms; fms p.Paper.adaptive_ms ];
      [
        "improvement";
        Repro_stats.Table.pct row.Tsp_experiments.improvement_pct;
        Repro_stats.Table.pct p.Paper.improvement_pct;
      ];
      [
        "speedup (blocking)";
        Printf.sprintf "%.2fx" row.Tsp_experiments.speedup_blocking;
        (match p.Paper.sequential_ms with
        | Some seq -> Printf.sprintf "%.2fx" (seq /. p.Paper.blocking_ms)
        | None -> "-");
      ];
    ];
  Format.fprintf out "%s@."
    (Repro_stats.Table.render ~title:(tsp_table_title row.Tsp_experiments.impl) tbl)

let print_tsp ?(out = std) ?csv_dir ?emit ?spec ?domains () =
  let t = Tsp_experiments.run_all ?spec ?domains () in
  Format.fprintf out
    "TSP setup: %d cities (seed %d), %d searchers, optimum %d, sequential expanded %d \
     nodes in %.0f ms@.@."
    t.Tsp_experiments.spec.Tsp.Parallel.cities
    t.Tsp_experiments.spec.Tsp.Parallel.instance_seed
    t.Tsp_experiments.spec.Tsp.Parallel.searchers t.Tsp_experiments.sequential_cost
    t.Tsp_experiments.sequential_nodes
    (float_of_int t.Tsp_experiments.sequential_ns /. 1e6);
  List.iter (print_tsp_table out) t.Tsp_experiments.tables;
  (* Wait-time distributions of the contended locks (blocking runs). *)
  List.iter
    (fun (row : Tsp_experiments.table) ->
      List.iter
        (fun name ->
          match List.assoc_opt name row.Tsp_experiments.blocking_result.Tsp.Parallel.lock_reports with
          | Some s when Locks.Lock_stats.contended s > 0 ->
            Format.fprintf out "%s %s waits: %s@."
              (Tsp.Parallel.impl_name row.Tsp_experiments.impl)
              name
              (Repro_stats.Histogram.summary (Locks.Lock_stats.wait_histogram s))
          | _ -> ())
        [ "qlock"; "glob-act-lock" ])
    t.Tsp_experiments.tables;
  Format.fprintf out "@.";
  List.iter
    (fun (number, impl, lock) ->
      match Tsp_experiments.figure t ~impl ~lock with
      | None -> Format.fprintf out "Figure %d: (no trace recorded)@." number
      | Some series ->
        Format.fprintf out "Figure %d: %s@.%s@." number
          (Tsp_experiments.figure_description ~impl ~lock)
          (Repro_stats.Plot.series series);
        let waiting_max =
          match Engine.Series.max_value series with Some v -> v | None -> 0.0
        in
        let waiting_mean =
          match Engine.Series.time_weighted_mean series with Some v -> v | None -> 0.0
        in
        Format.fprintf out "  peak waiting=%.0f, time-weighted mean=%.2f, samples=%d@.@."
          waiting_max waiting_mean (Engine.Series.length series);
        deliver ?csv_dir ?emit
          ~name:(Printf.sprintf "fig%d.csv" number)
          ~metrics:
            [
              ("peak_waiting", waiting_max);
              ("mean_waiting", waiting_mean);
              ("samples", float_of_int (Engine.Series.length series));
            ]
          (Engine.Series.csv_string [ series ]))
    Tsp_experiments.all_figures

let print_schedulers ?(out = std) ?domains () =
  let rows = Ablations.schedulers ?domains () in
  let tbl =
    Repro_stats.Table.create
      ~headers:
        [ "scheduler"; "mean response (us)"; "server wait (us)"; "total (ms)" ]
  in
  List.iter
    (fun (r : Ablations.sched_row) ->
      Repro_stats.Table.add_row tbl
        [
          Locks.Lock_sched.kind_name r.Ablations.sched;
          Printf.sprintf "%.1f" r.Ablations.mean_response_us;
          Printf.sprintf "%.1f" r.Ablations.server_wait_us;
          Repro_stats.Table.ms_of_ns r.Ablations.total_ns;
        ])
    rows;
  Format.fprintf out "%s@."
    (Repro_stats.Table.render
       ~title:
         "Ablation: lock schedulers on a client-server workload ([MS93]: priority best, \
          FCFS worst)"
       tbl)

let print_coupling ?(out = std) ?domains () =
  let rows = Ablations.coupling ?domains () in
  let tbl =
    Repro_stats.Table.create
      ~headers:[ "feedback loop"; "total (ms)"; "adaptations"; "max observation lag (us)" ]
  in
  List.iter
    (fun (r : Ablations.coupling_row) ->
      Repro_stats.Table.add_row tbl
        [
          r.Ablations.coupling;
          Repro_stats.Table.ms_of_ns r.Ablations.total_ns;
          string_of_int r.Ablations.adaptations;
          Printf.sprintf "%.1f" r.Ablations.max_lag_us;
        ])
    rows;
  Format.fprintf out "%s@."
    (Repro_stats.Table.render
       ~title:
         "Ablation: closely- vs loosely-coupled adaptation (the paper's case for the \
          customized lock monitor)"
       tbl)

let print_sampling ?(out = std) ?domains () =
  let rows = Ablations.sampling ?domains ~periods:[ 1; 2; 4; 8; 16; 64 ] () in
  let tbl =
    Repro_stats.Table.create
      ~headers:[ "sampling period"; "total (ms)"; "samples"; "adaptations" ]
  in
  List.iter
    (fun (r : Ablations.sampling_row) ->
      Repro_stats.Table.add_row tbl
        [
          string_of_int r.Ablations.period;
          Repro_stats.Table.ms_of_ns r.Ablations.total_ns;
          string_of_int r.Ablations.samples;
          string_of_int r.Ablations.adaptations;
        ])
    rows;
  Format.fprintf out "%s@."
    (Repro_stats.Table.render
       ~title:"Ablation: monitor sampling rate (cost vs quality of adaptation, section 3)"
       tbl)

let print_threshold ?(out = std) ?domains () =
  let rows = Ablations.threshold ?domains ~thresholds:[ 1; 3; 6; 10 ] ~ns:[ 2; 6; 12 ] () in
  let tbl =
    Repro_stats.Table.create
      ~headers:[ "Waiting-Threshold"; "n"; "total (ms)"; "blocks"; "spin probes" ]
  in
  List.iter
    (fun (r : Ablations.threshold_row) ->
      Repro_stats.Table.add_row tbl
        [
          string_of_int r.Ablations.waiting_threshold;
          string_of_int r.Ablations.n;
          Repro_stats.Table.ms_of_ns r.Ablations.total_ns;
          string_of_int r.Ablations.blocks;
          string_of_int r.Ablations.spin_probes;
        ])
    rows;
  Format.fprintf out "%s@."
    (Repro_stats.Table.render
       ~title:"Ablation: simple-adapt constants (Waiting-Threshold and n, section 4)"
       tbl)

let print_advisory ?(out = std) ?domains () =
  let rows = Ablations.advisory ?domains () in
  let tbl =
    Repro_stats.Table.create
      ~headers:[ "lock"; "total (ms)"; "blocks"; "spin probes"; "mean wait (us)" ]
  in
  List.iter
    (fun (r : Ablations.advisory_row) ->
      Repro_stats.Table.add_row tbl
        [
          r.Ablations.advisory_lock;
          Repro_stats.Table.ms_of_ns r.Ablations.total_ns;
          string_of_int r.Ablations.blocks;
          string_of_int r.Ablations.spin_probes;
          Printf.sprintf "%.1f" r.Ablations.mean_wait_advisory_us;
        ])
    rows;
  Format.fprintf out "%s@."
    (Repro_stats.Table.render
       ~title:
         "Ablation: advisory locks on variable-length critical sections (section 2: the \
          owner advises waiters to spin or sleep)"
       tbl)

let print_architecture ?(out = std) ?domains () =
  let rows = Ablations.architecture ?domains () in
  let tbl =
    Repro_stats.Table.create
      ~headers:[ "arch"; "lock"; "total (ms)"; "remote accesses"; "mean wait (us)" ]
  in
  List.iter
    (fun (r : Ablations.arch_row) ->
      Repro_stats.Table.add_row tbl
        [
          r.Ablations.arch;
          r.Ablations.lock_impl;
          Repro_stats.Table.ms_of_ns r.Ablations.total_ns;
          string_of_int r.Ablations.remote_accesses;
          Printf.sprintf "%.1f" r.Ablations.mean_wait_us;
        ])
    rows;
  Format.fprintf out "%s@."
    (Repro_stats.Table.render
       ~title:
         "Ablation: lock implementations re-targeted across architectures ([MS93]: \
          distributed/local-spin pays off on NUMA only)"
       tbl)

let print_phases ?(out = std) ?domains () =
  let rows = Ablations.phases ?domains () in
  let tbl =
    Repro_stats.Table.create
      ~headers:[ "lock"; "total (ms)"; "adaptations"; "mean wait (us)" ]
  in
  List.iter
    (fun (r : Ablations.phase_row) ->
      Repro_stats.Table.add_row tbl
        [
          Locks.Lock.kind_name r.Ablations.kind;
          Repro_stats.Table.ms_of_ns r.Ablations.total_ns;
          string_of_int r.Ablations.adaptations;
          Printf.sprintf "%.1f" r.Ablations.mean_wait_us;
        ])
    rows;
  Format.fprintf out "%s@."
    (Repro_stats.Table.render
       ~title:"Ablation: phased contention (adaptive vs static waiting policies)" tbl)

let print_barriers ?(out = std) ?domains () =
  let rows = Ablations.barriers ?domains () in
  let tbl =
    Repro_stats.Table.create
      ~headers:[ "barrier"; "total (ms)"; "adaptations"; "final spin budget (ns)" ]
  in
  List.iter
    (fun (r : Ablations.barrier_row) ->
      Repro_stats.Table.add_row tbl
        [
          r.Ablations.barrier_impl;
          Repro_stats.Table.ms_of_ns r.Ablations.total_ns;
          string_of_int r.Ablations.barrier_adaptations;
          string_of_int r.Ablations.final_spin_ns;
        ])
    rows;
  Format.fprintf out "%s@."
    (Repro_stats.Table.render
       ~title:
         "Ablation: barrier arrival strategies on phased skew (adaptive spin budget vs \
          fixed spin/block)"
       tbl)

let print_switch_locks ?(out = std) ?csv_dir ?emit ?domains () =
  let rows = Ablations.switch_locks ?domains () in
  let tbl =
    Repro_stats.Table.create
      ~headers:
        [
          "regime"; "variant"; "total (ms)"; "mean wait (us)"; "blocks";
          "spin probes"; "swaps"; "final impl";
        ]
  in
  List.iter
    (fun (r : Ablations.switch_row) ->
      Repro_stats.Table.add_row tbl
        [
          r.Ablations.sw_point;
          r.Ablations.sw_variant;
          Repro_stats.Table.ms_of_ns r.Ablations.sw_total_ns;
          Printf.sprintf "%.1f" r.Ablations.sw_mean_wait_us;
          string_of_int r.Ablations.sw_blocks;
          string_of_int r.Ablations.sw_spin_probes;
          string_of_int r.Ablations.sw_swaps;
          r.Ablations.sw_final_impl;
        ])
    rows;
  Format.fprintf out "%s@."
    (Repro_stats.Table.render
       ~title:
         "Ablation: lock implementation as the adaptive attribute (TAS / MCS queue / \
          blocking, pinned vs hot-swapped)"
       tbl);
  let violations = Ablations.switch_gate rows in
  (match violations with
  | [] ->
    Format.fprintf out
      "gate: adaptive beats the worst pinned variant at every regime and stays within \
       5%% of the best at the extremes@."
  | vs -> List.iter (fun v -> Format.fprintf out "gate VIOLATION: %s@." v) vs);
  let payload =
      let b = Buffer.create 2048 in
      Buffer.add_string b "{\n  \"points\": [\n";
      List.iteri
        (fun i (label, workers, procs, iters, cs_ns, think_ns) ->
          Buffer.add_string b
            (Printf.sprintf
               "    {\"label\": %S, \"workers\": %d, \"processors\": %d, \
                \"iterations\": %d, \"cs_ns\": %d, \"think_ns\": %d}%s\n"
               label workers procs iters cs_ns think_ns
               (if i < List.length Ablations.switch_points - 1 then "," else "")))
        Ablations.switch_points;
      Buffer.add_string b "  ],\n  \"rows\": [\n";
      List.iteri
        (fun i (r : Ablations.switch_row) ->
          Buffer.add_string b
            (Printf.sprintf
               "    {\"point\": %S, \"variant\": %S, \"total_ns\": %d, \
                \"mean_wait_us\": %.1f, \"blocks\": %d, \"spin_probes\": %d, \
                \"swaps\": %d, \"final_impl\": %S}%s\n"
               r.Ablations.sw_point r.Ablations.sw_variant r.Ablations.sw_total_ns
               r.Ablations.sw_mean_wait_us r.Ablations.sw_blocks
               r.Ablations.sw_spin_probes r.Ablations.sw_swaps
               r.Ablations.sw_final_impl
               (if i < List.length rows - 1 then "," else "")))
        rows;
      Buffer.add_string b "  ],\n";
      Buffer.add_string b
        (Printf.sprintf "  \"gate\": {\"slack_pct\": 5.0, \"ok\": %b, \"violations\": [%s]}\n"
           (violations = [])
           (String.concat ", " (List.map (Printf.sprintf "%S") violations)));
      Buffer.add_string b "}\n";
      Buffer.contents b
  in
  let metrics =
    (("gate_ok", if violations = [] then 1.0 else 0.0)
    :: List.concat_map
         (fun (r : Ablations.switch_row) ->
           [
             ( Printf.sprintf "%s/%s/total_ns" r.Ablations.sw_point r.Ablations.sw_variant,
               float_of_int r.Ablations.sw_total_ns );
             ( Printf.sprintf "%s/%s/mean_wait_us" r.Ablations.sw_point
                 r.Ablations.sw_variant,
               r.Ablations.sw_mean_wait_us );
           ])
         rows)
  in
  deliver ?csv_dir ?emit ~name:"ABLATION_LOCKS_results.json" ~metrics payload;
  violations = []

let print_objects ?(out = std) ?csv_dir ?emit ?only ?domains () =
  let r =
    List.hd
      (Engine.Runner.map ?domains
         (fun spec -> Workloads.Sync_objects.run spec)
         [ Workloads.Sync_objects.default ])
  in
  (* [only] filters the registry dump (and its JSON) to one object by
     name — the same --only contract the checker subcommands have. *)
  let r =
    match only with
    | None -> r
    | Some name ->
      {
        r with
        Workloads.Sync_objects.snapshot =
          List.filter
            (fun (m : Adaptive_core.Registry.metrics) ->
              m.Adaptive_core.Registry.name = name)
            r.Workloads.Sync_objects.snapshot;
      }
  in
  let tbl =
    Repro_stats.Table.create
      ~headers:
        [
          "id"; "kind"; "name"; "samples"; "policy runs"; "adaptations";
          "cost (r/w/i)"; "last transition";
        ]
  in
  List.iter
    (fun (m : Adaptive_core.Registry.metrics) ->
      let s = m.Adaptive_core.Registry.stats in
      Repro_stats.Table.add_row tbl
        [
          string_of_int m.Adaptive_core.Registry.id;
          m.Adaptive_core.Registry.kind;
          m.Adaptive_core.Registry.name;
          string_of_int s.Adaptive_core.Registry.samples;
          string_of_int s.Adaptive_core.Registry.policy_runs;
          string_of_int s.Adaptive_core.Registry.adaptations;
          Printf.sprintf "%d/%d/%d"
            s.Adaptive_core.Registry.total_cost.Adaptive_core.Cost.reads
            s.Adaptive_core.Registry.total_cost.Adaptive_core.Cost.writes
            s.Adaptive_core.Registry.total_cost.Adaptive_core.Cost.instrs;
          (match s.Adaptive_core.Registry.last_label with None -> "-" | Some l -> l);
        ])
    r.Workloads.Sync_objects.snapshot;
  Format.fprintf out "%s@."
    (Repro_stats.Table.render
       ~title:"Adaptive-object registry after the sync-objects workload" tbl);
  (* Formal check (§3.1): each recorded adaptation log must stay
     inside its object's declared configuration space. *)
  let checked, violations =
    List.fold_left
      (fun (n, vs) (m : Adaptive_core.Registry.metrics) ->
        match Adaptive_core.Registry.validate_log m with
        | None -> (n, vs)
        | Some (Ok ()) -> (n + 1, vs)
        | Some (Error why) ->
          (n + 1, (m.Adaptive_core.Registry.name, why) :: vs))
      (0, []) r.Workloads.Sync_objects.snapshot
  in
  List.iter
    (fun (name, why) ->
      Format.fprintf out "policy-log VIOLATION %s: %s@." name why)
    (List.rev violations);
  Format.fprintf out
    "objects=%d adaptations=%d total=%s ms (logs formally checked: %d, violations: \
     %d)@."
    (List.length r.Workloads.Sync_objects.snapshot)
    r.Workloads.Sync_objects.adaptations
    (Repro_stats.Table.ms_of_ns r.Workloads.Sync_objects.total_ns)
    checked (List.length violations);
  let metrics =
    ("objects", float_of_int (List.length r.Workloads.Sync_objects.snapshot))
    :: ("adaptations", float_of_int r.Workloads.Sync_objects.adaptations)
    :: ("total_ns", float_of_int r.Workloads.Sync_objects.total_ns)
    :: ("policy_violations", float_of_int (List.length violations))
    :: List.map
         (fun (m : Adaptive_core.Registry.metrics) ->
           ( Printf.sprintf "%s:%s/adaptations" m.Adaptive_core.Registry.kind
               m.Adaptive_core.Registry.name,
             float_of_int
               m.Adaptive_core.Registry.stats.Adaptive_core.Registry.adaptations ))
         r.Workloads.Sync_objects.snapshot
  in
  deliver ?csv_dir ?emit ~name:"OBJECTS_results.json" ~metrics
    (Adaptive_core.Registry.to_json r.Workloads.Sync_objects.snapshot)

let print_everything ?(out = std) ?csv_dir ?emit ?domains () =
  (* Sections render in paper order; inside each section the
     simulations fan out across domains. Rendering stays on the
     calling domain, so output bytes are independent of [domains]. *)
  Format.fprintf out "=== Lock operation microbenchmarks (Tables 4-8) ===@.@.";
  print_table4 ~out ?domains ();
  print_table5 ~out ?domains ();
  print_table6 ~out ?domains ();
  print_table7 ~out ();
  print_table8 ~out ();
  Format.fprintf out "=== Figure 1 ===@.@.";
  print_fig1 ~out ?csv_dir ?emit ?domains ();
  Format.fprintf out "=== TSP application (Tables 1-3, Figures 4-9) ===@.@.";
  print_tsp ~out ?csv_dir ?emit ?domains ();
  Format.fprintf out "=== Ablations ===@.@.";
  print_schedulers ~out ?domains ();
  print_coupling ~out ?domains ();
  print_sampling ~out ?domains ();
  print_threshold ~out ?domains ();
  print_phases ~out ?domains ();
  print_barriers ~out ?domains ();
  print_advisory ~out ?domains ();
  print_architecture ~out ?domains ();
  (let (_ : bool) = print_switch_locks ~out ?csv_dir ?emit ?domains () in
   ());
  Format.fprintf out "=== Adaptive-object registry ===@.@.";
  print_objects ~out ?csv_dir ?emit ?domains ()
