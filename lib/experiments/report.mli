(** Rendering of every experiment as paper-style text (and CSV files).

    Each [print_*] function runs the experiment and writes a formatted
    paper-vs-measured table (or figure) to the given formatter. These
    are shared by the [repro] CLI and the benchmark harness. *)

val print_lock_table :
  Format.formatter -> title:string -> paper:Paper.lock_op_row list -> Lock_tables.row list -> unit

val print_table4 : ?out:Format.formatter -> ?domains:int -> unit -> unit
val print_table5 : ?out:Format.formatter -> ?domains:int -> unit -> unit
val print_table6 : ?out:Format.formatter -> ?domains:int -> unit -> unit
val print_table7 : ?out:Format.formatter -> unit -> unit
val print_table8 : ?out:Format.formatter -> unit -> unit

type emit = name:string -> metrics:(string * float) list -> payload:string -> unit
(** Artifact hook: called once per produced artifact with its file
    name, a flat metric projection, and the {e exact} bytes the legacy
    [csv_dir] file is written from. The repro CLI points this at the
    experiment-fleet results store, so store records and legacy
    artifacts can never drift apart. *)

val print_fig1 :
  ?out:Format.formatter -> ?csv_dir:string -> ?emit:emit -> ?domains:int -> unit -> unit

val print_tsp :
  ?out:Format.formatter ->
  ?csv_dir:string ->
  ?emit:emit ->
  ?spec:Tsp.Parallel.spec ->
  ?domains:int ->
  unit ->
  unit
(** Tables 1–3 plus Figures 4–9 from one set of runs. With [csv_dir],
    figure series are also written as CSV. *)

val print_schedulers : ?out:Format.formatter -> ?domains:int -> unit -> unit
val print_coupling : ?out:Format.formatter -> ?domains:int -> unit -> unit
val print_sampling : ?out:Format.formatter -> ?domains:int -> unit -> unit
val print_threshold : ?out:Format.formatter -> ?domains:int -> unit -> unit
val print_phases : ?out:Format.formatter -> ?domains:int -> unit -> unit
val print_advisory : ?out:Format.formatter -> ?domains:int -> unit -> unit
val print_architecture : ?out:Format.formatter -> ?domains:int -> unit -> unit
val print_barriers : ?out:Format.formatter -> ?domains:int -> unit -> unit

val print_switch_locks :
  ?out:Format.formatter -> ?csv_dir:string -> ?emit:emit -> ?domains:int -> unit -> bool
(** The implementation-as-attribute ablation ({!Ablations.switch_locks})
    as a table plus its acceptance gate; with [csv_dir], also write
    [ABLATION_LOCKS_results.json] (byte-identical at any [domains]).
    Returns whether the gate passed. *)

val print_objects :
  ?out:Format.formatter ->
  ?csv_dir:string ->
  ?emit:emit ->
  ?only:string ->
  ?domains:int ->
  unit ->
  unit
(** Run the sync-objects workload and dump the adaptive-object registry
    as a table; with [csv_dir], also write [OBJECTS_results.json]
    ({!Adaptive_core.Registry.to_json} — byte-identical at any
    [domains]). [only] restricts the dump (and its JSON) to the object
    with that registry name. *)

val print_everything :
  ?out:Format.formatter -> ?csv_dir:string -> ?emit:emit -> ?domains:int -> unit -> unit
(** All tables, figures and ablations, in paper order. The independent
    simulations inside each section run in parallel across up to
    [domains] host cores (default {!Engine.Runner.default_domains});
    the rendered bytes are identical at every domain count. *)
