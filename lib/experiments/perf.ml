type micro = { bench_name : string; ns_per_run : float; r_square : float }

type comparison = {
  domains_base : int;
  domains_parallel : int;
  wall_base_s : float;
  wall_parallel_s : float;
  identical_output : bool;
}

let wall_clock_s f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let render_report ~domains () =
  let buf = Buffer.create (1 lsl 16) in
  let out = Format.formatter_of_buffer buf in
  Report.print_everything ~out ~domains ();
  Format.pp_print_flush out ();
  Buffer.contents buf

let compare_report_generation ?(domains = Engine.Runner.default_domains ()) () =
  let base_out, wall_base_s = wall_clock_s (render_report ~domains:1) in
  let par_out, wall_parallel_s = wall_clock_s (render_report ~domains) in
  ( {
      domains_base = 1;
      domains_parallel = domains;
      wall_base_s;
      wall_parallel_s;
      identical_output = String.equal base_out par_out;
    },
    base_out )

(* Best-effort commit id: CI exports GITHUB_SHA; locally, follow
   .git/HEAD one level. No git invocation, so this works in a bare
   build sandbox. *)
let git_rev () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some sha when sha <> "" -> sha
  | _ -> (
    let read_line_of path =
      try
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> Some (String.trim (input_line ic)))
      with Sys_error _ | End_of_file -> None
    in
    let rec find_git_dir dir depth =
      if depth > 6 then None
      else
        let cand = Filename.concat dir ".git" in
        if Sys.file_exists cand then Some cand
        else
          let parent = Filename.dirname dir in
          if parent = dir then None else find_git_dir parent (depth + 1)
    in
    match find_git_dir (Sys.getcwd ()) 0 with
    | None -> "unknown"
    | Some git_dir -> (
      match read_line_of (Filename.concat git_dir "HEAD") with
      | Some head when String.length head > 5 && String.sub head 0 5 = "ref: " -> (
        let refname = String.sub head 5 (String.length head - 5) in
        match read_line_of (Filename.concat git_dir refname) with
        | Some sha -> sha
        | None -> "unknown")
      | Some sha -> sha
      | None -> "unknown"))

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v = if Float.is_nan v then "null" else Printf.sprintf "%.6g" v

let to_json ~micros ~comparison () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"git_rev\": \"%s\",\n" (json_escape (git_rev ())));
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cores\": %d,\n" (Engine.Runner.recommended_domains ()));
  (match comparison with
  | None -> Buffer.add_string buf "  \"report_generation\": null,\n"
  | Some c ->
    Buffer.add_string buf
      (Printf.sprintf
         "  \"report_generation\": {\n\
          \    \"domains_base\": %d,\n\
          \    \"domains_parallel\": %d,\n\
          \    \"wall_base_s\": %s,\n\
          \    \"wall_parallel_s\": %s,\n\
          \    \"speedup\": %s,\n\
          \    \"identical_output\": %b\n\
          \  },\n"
         c.domains_base c.domains_parallel (json_float c.wall_base_s)
         (json_float c.wall_parallel_s)
         (json_float
            (if c.wall_parallel_s > 0.0 then c.wall_base_s /. c.wall_parallel_s else nan))
         c.identical_output));
  Buffer.add_string buf "  \"benchmarks\": [";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s }"
           (json_escape m.bench_name) (json_float m.ns_per_run) (json_float m.r_square)))
    micros;
  Buffer.add_string buf (if micros = [] then "]\n" else "\n  ]\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_json ~path ~micros ~comparison () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ~micros ~comparison ()))
