type micro = {
  bench_name : string;
  ns_per_run : float;
  r_square : float;
  events_per_run : float;
  events_per_sec : float;
}

type comparison = {
  domains_base : int;
  domains_parallel : int;
  wall_base_s : float;
  wall_parallel_s : float;
  identical_output : bool;
  events_base : float;
}

let wall_clock_s f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let render_report ~domains () =
  let buf = Buffer.create (1 lsl 16) in
  let out = Format.formatter_of_buffer buf in
  Report.print_everything ~out ~domains ();
  Format.pp_print_flush out ();
  Buffer.contents buf

let compare_report_generation ?(domains = Engine.Runner.default_domains ()) () =
  (* The sequential leg runs entirely on the calling domain, so the
     domain event odometer brackets exactly the simulation events one
     full report generation executes — the numerator of the
     report-level events/sec metric the store-backed bench gate
     tracks. *)
  let events0 = Butterfly.Sched.domain_events_total () in
  let base_out, wall_base_s = wall_clock_s (render_report ~domains:1) in
  let events_base = float_of_int (Butterfly.Sched.domain_events_total () - events0) in
  let par_out, wall_parallel_s = wall_clock_s (render_report ~domains) in
  ( {
      domains_base = 1;
      domains_parallel = domains;
      wall_base_s;
      wall_parallel_s;
      identical_output = String.equal base_out par_out;
      events_base;
    },
    base_out )

(* Best-effort commit id: CI exports GITHUB_SHA; locally, follow
   .git/HEAD one level. No git invocation, so this works in a bare
   build sandbox. *)
let git_rev () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some sha when sha <> "" -> sha
  | _ -> (
    let read_line_of path =
      try
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> Some (String.trim (input_line ic)))
      with Sys_error _ | End_of_file -> None
    in
    let rec find_git_dir dir depth =
      if depth > 6 then None
      else
        let cand = Filename.concat dir ".git" in
        if Sys.file_exists cand then Some cand
        else
          let parent = Filename.dirname dir in
          if parent = dir then None else find_git_dir parent (depth + 1)
    in
    match find_git_dir (Sys.getcwd ()) 0 with
    | None -> "unknown"
    | Some git_dir -> (
      match read_line_of (Filename.concat git_dir "HEAD") with
      | Some head when String.length head > 5 && String.sub head 0 5 = "ref: " -> (
        let refname = String.sub head 5 (String.length head - 5) in
        match read_line_of (Filename.concat git_dir refname) with
        | Some sha -> sha
        | None -> "unknown")
      | Some sha -> sha
      | None -> "unknown"))

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v = if Float.is_nan v then "null" else Printf.sprintf "%.6g" v

let to_json ~micros ~comparison () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"git_rev\": \"%s\",\n" (json_escape (git_rev ())));
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cores\": %d,\n" (Engine.Runner.recommended_domains ()));
  (match comparison with
  | None -> Buffer.add_string buf "  \"report_generation\": null,\n"
  | Some c ->
    Buffer.add_string buf
      (Printf.sprintf
         "  \"report_generation\": {\n\
          \    \"domains_base\": %d,\n\
          \    \"domains_parallel\": %d,\n\
          \    \"wall_base_s\": %s,\n\
          \    \"wall_parallel_s\": %s,\n\
          \    \"speedup\": %s,\n\
          \    \"identical_output\": %b\n\
          \  },\n"
         c.domains_base c.domains_parallel (json_float c.wall_base_s)
         (json_float c.wall_parallel_s)
         (json_float
            (if c.wall_parallel_s > 0.0 then c.wall_base_s /. c.wall_parallel_s else nan))
         c.identical_output));
  Buffer.add_string buf "  \"benchmarks\": [";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s, \
            \"events_per_run\": %s, \"events_per_sec\": %s }"
           (json_escape m.bench_name) (json_float m.ns_per_run) (json_float m.r_square)
           (json_float m.events_per_run) (json_float m.events_per_sec)))
    micros;
  Buffer.add_string buf (if micros = [] then "]\n" else "\n  ]\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_json ~path ~micros ~comparison () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ~micros ~comparison ()))

(* ------------------------------------------------------------------ *)
(* Baseline comparison: the bench-compare CI gate.                    *)

(* [to_json] is the only writer of BENCH_results.json, so the reader
   can be a string scanner for that exact shape instead of a JSON
   parser: each benchmark entry sits on its own line as
   { "name": "...", ..., "events_per_sec": N }. *)
let baseline_events_per_sec json =
  let substr_from line pat =
    let rec find from =
      if String.length line - from < String.length pat then None
      else if String.sub line from (String.length pat) = pat then
        Some (from + String.length pat)
      else find (from + 1)
    in
    find 0
  in
  let find_float line key =
    match substr_from line (Printf.sprintf "\"%s\": " key) with
    | None -> None
    | Some start ->
      let stop = ref start in
      while
        !stop < String.length line
        && (match line.[!stop] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      if !stop = start then None else float_of_string_opt (String.sub line start (!stop - start))
  in
  let find_name line =
    match substr_from line "\"name\": \"" with
    | None -> None
    | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))
  in
  String.split_on_char '\n' json
  |> List.filter_map (fun line ->
         match (find_name line, find_float line "events_per_sec") with
         | Some name, Some eps when eps > 0.0 -> Some (name, eps)
         | _ -> None)

let load_baseline path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let json =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Some (baseline_events_per_sec json)
  end

type regression = { name : string; baseline_eps : float; current_eps : float }

let compare_against_baseline ~tolerance ~baseline micros =
  List.filter_map
    (fun m ->
      if m.events_per_sec <= 0.0 then None
      else
        match List.assoc_opt m.bench_name baseline with
        | Some base when m.events_per_sec < base *. (1.0 -. tolerance) ->
          Some { name = m.bench_name; baseline_eps = base; current_eps = m.events_per_sec }
        | _ -> None)
    micros
