type filter = {
  f_driver : string option;
  f_kind : string option;
  f_spec : string option;
  f_rev : string option;
  f_config : (string * string) list;
}

let no_filter =
  { f_driver = None; f_kind = None; f_spec = None; f_rev = None; f_config = [] }

type agg_op = Mean | Sum | Min | Max | Count
type group_key = By_driver | By_kind | By_rev | By_spec | By_config of string

type t =
  | Top of int * string * filter
  | Aggregate of agg_op * string * group_key option * filter
  | Regressions of string * float * filter
  | Catalogue_of of [ `Drivers | `Kinds | `Revs | `Specs ]

(* ------------------------------------------------------------------ *)
(* Metric polarity                                                    *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let has_suffix s suf =
  let ns = String.length s and nf = String.length suf in
  ns >= nf && String.sub s (ns - nf) nf = suf

let higher_is_better name =
  let name = String.lowercase_ascii name in
  if contains name "per_sec" || contains name "improvement" then Some true
  else if
    has_suffix name "_ns" || has_suffix name "_us" || has_suffix name "_ms"
    || has_suffix name "_s" || contains name "wait" || contains name "fail"
    || contains name "block" || contains name "violation" || contains name "miss"
  then Some false
  else None

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)

let parse line =
  let tokens =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  in
  let ( let* ) = Result.bind in
  let split_where tokens =
    let rec go acc = function
      | [] -> (List.rev acc, [])
      | "where" :: rest -> (List.rev acc, rest)
      | t :: rest -> go (t :: acc) rest
    in
    go [] tokens
  in
  let filter_of clauses =
    List.fold_left
      (fun acc clause ->
        let* f = acc in
        match String.index_opt clause '=' with
        | None -> Error (Printf.sprintf "bad where clause %S (want key=value)" clause)
        | Some i ->
          let k = String.sub clause 0 i in
          let v = String.sub clause (i + 1) (String.length clause - i - 1) in
          Ok
            (match k with
            | "driver" -> { f with f_driver = Some v }
            | "kind" -> { f with f_kind = Some v }
            | "spec" -> { f with f_spec = Some v }
            | "rev" -> { f with f_rev = Some v }
            | _ -> { f with f_config = f.f_config @ [ (k, v) ] }))
      (Ok no_filter) clauses
  in
  let head, where = split_where tokens in
  let* filter = filter_of where in
  match head with
  | [ "top"; n; "by"; metric ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Top (n, metric, filter))
    | _ -> Error (Printf.sprintf "top: %S is not a positive count" n))
  | "regressions" :: "since" :: rev :: rest -> (
    match rest with
    | [] -> Ok (Regressions (rev, 5.0, filter))
    | [ "tolerance"; pct ] -> (
      match float_of_string_opt pct with
      | Some p when p >= 0. -> Ok (Regressions (rev, p, filter))
      | _ -> Error (Printf.sprintf "regressions: bad tolerance %S" pct))
    | _ -> Error "regressions: want `regressions since REV [tolerance PCT]`")
  | op :: rest
    when List.mem op [ "mean"; "sum"; "min"; "max"; "count" ] -> (
    let op_v =
      match op with
      | "mean" -> Mean
      | "sum" -> Sum
      | "min" -> Min
      | "max" -> Max
      | _ -> Count
    in
    let group_of = function
      | "driver" -> Ok By_driver
      | "kind" -> Ok By_kind
      | "rev" -> Ok By_rev
      | "spec" -> Ok By_spec
      | key when String.length key > 7 && String.sub key 0 7 = "config:" ->
        Ok (By_config (String.sub key 7 (String.length key - 7)))
      | key ->
        Error
          (Printf.sprintf
             "group by %S: want driver|kind|rev|spec|config:KEY" key)
    in
    match rest with
    | [ metric ] -> Ok (Aggregate (op_v, metric, None, filter))
    | [ metric; "group"; "by"; key ] ->
      let* g = group_of key in
      Ok (Aggregate (op_v, metric, Some g, filter))
    | _ -> Error (Printf.sprintf "%s: want `%s METRIC [group by KEY]`" op op))
  | [ "list"; what ] -> (
    match what with
    | "drivers" -> Ok (Catalogue_of `Drivers)
    | "kinds" -> Ok (Catalogue_of `Kinds)
    | "revs" -> Ok (Catalogue_of `Revs)
    | "specs" -> Ok (Catalogue_of `Specs)
    | _ -> Error (Printf.sprintf "list %S: want drivers|kinds|revs|specs" what))
  | [] -> Error "empty query"
  | _ ->
    Error
      (Printf.sprintf
         "cannot parse query %S (want `top N by METRIC`, `MEAN-OP METRIC [group by \
          KEY]`, `regressions since REV`, or `list WHAT`)"
         line)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                         *)

let matches_filter f (r : Store.record) =
  let opt v = function None -> true | Some want -> v = want in
  let prefix v = function
    | None -> true
    | Some p ->
      String.length v >= String.length p && String.sub v 0 (String.length p) = p
  in
  opt r.Store.r_driver f.f_driver
  && opt r.Store.r_kind f.f_kind
  && opt r.Store.r_spec f.f_spec
  && prefix r.Store.r_rev f.f_rev
  && List.for_all
       (fun (k, v) -> List.assoc_opt k r.Store.r_config = Some v)
       f.f_config

let metric_matches pattern name =
  name = pattern || has_suffix name ("/" ^ pattern)

(* (record index, metric name, value) rows for one metric pattern.
   The per-record projection fans out across domains; the merge is
   input-ordered, so row order is independent of [domains]. *)
let metric_rows ?domains pattern records =
  let indexed = List.mapi (fun i r -> (i, r)) records in
  let per_record =
    Engine.Runner.map ?domains
      (fun (i, r) ->
        List.filter_map
          (fun (name, v) ->
            if metric_matches pattern name then Some (i, name, v) else None)
          r.Store.r_metrics)
      indexed
  in
  List.concat per_record

let short_rev rev = if String.length rev > 7 then String.sub rev 0 7 else rev

let config_cell (r : Store.record) =
  if r.Store.r_config = [] then "-"
  else
    String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) r.Store.r_config)

let value_cell = Jsonv.num_str

let render_table ?title headers rows =
  let t = Repro_stats.Table.create ~headers in
  Repro_stats.Table.add_rows t rows;
  Repro_stats.Table.render ?title t

let run_top ?domains records n metric filter =
  let records = List.filter (matches_filter filter) records in
  let rows = metric_rows ?domains metric records in
  let arr = Array.of_list records in
  let ascending = higher_is_better metric = Some false in
  let sorted =
    List.sort
      (fun (i1, n1, v1) (i2, n2, v2) ->
        let c = Float.compare v1 v2 in
        let c = if ascending then c else -c in
        if c <> 0 then c
        else
          let c = String.compare n1 n2 in
          if c <> 0 then c else compare i1 i2)
      rows
  in
  let top = List.filteri (fun i _ -> i < n) sorted in
  let table_rows =
    List.mapi
      (fun rank (i, name, v) ->
        let r = arr.(i) in
        [
          string_of_int (rank + 1);
          r.Store.r_driver;
          r.Store.r_kind;
          short_rev r.Store.r_rev;
          config_cell r;
          name;
          value_cell v;
        ])
      top
  in
  let direction = if ascending then "ascending" else "descending" in
  render_table
    ~title:
      (Printf.sprintf "top %d by %s (%s; %d candidate rows)" n metric direction
         (List.length rows))
    [ "#"; "driver"; "kind"; "rev"; "config"; "metric"; "value" ]
    table_rows

let agg_name = function
  | Mean -> "mean"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Count -> "count"

let group_cell key (r : Store.record) =
  match key with
  | By_driver -> r.Store.r_driver
  | By_kind -> r.Store.r_kind
  | By_rev -> short_rev r.Store.r_rev
  | By_spec -> if r.Store.r_spec = "" then "-" else r.Store.r_spec
  | By_config k -> (
    match List.assoc_opt k r.Store.r_config with Some v -> v | None -> "-")

let run_aggregate ?domains records op metric group filter =
  let records = List.filter (matches_filter filter) records in
  let arr = Array.of_list records in
  let rows =
    if op = Count && metric = "*" then List.mapi (fun i _ -> (i, "*", 1.)) records
    else metric_rows ?domains metric records
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, _, v) ->
      let g = match group with None -> "all" | Some key -> group_cell key arr.(i) in
      let prev = try Hashtbl.find tbl g with Not_found -> [] in
      Hashtbl.replace tbl g (v :: prev))
    rows;
  let groups =
    List.sort compare (Hashtbl.fold (fun g vs acc -> (g, List.rev vs) :: acc) tbl [])
  in
  let aggregate vs =
    let n = List.length vs in
    match op with
    | Count -> float_of_int n
    | Sum -> List.fold_left ( +. ) 0. vs
    | Mean -> List.fold_left ( +. ) 0. vs /. float_of_int (max 1 n)
    | Min -> List.fold_left Float.min (List.hd vs) (List.tl vs)
    | Max -> List.fold_left Float.max (List.hd vs) (List.tl vs)
  in
  let table_rows =
    List.map
      (fun (g, vs) ->
        [ g; value_cell (aggregate vs); string_of_int (List.length vs) ])
      groups
  in
  let group_hdr =
    match group with
    | None -> "group"
    | Some By_driver -> "driver"
    | Some By_kind -> "kind"
    | Some By_rev -> "rev"
    | Some By_spec -> "spec"
    | Some (By_config k) -> "config:" ^ k
  in
  render_table
    ~title:(Printf.sprintf "%s %s" (agg_name op) metric)
    [ group_hdr; agg_name op ^ "(" ^ metric ^ ")"; "rows" ]
    table_rows

(* Regression detection: for every (driver, config hash, metric) key,
   the last record at the baseline revision vs the last record overall
   (skipped when that is still the baseline revision). Worse-by-more-
   than-tolerance according to the metric's polarity = regression. *)
let run_regressions ?domains records since tolerance filter =
  let records = List.filter (matches_filter filter) records in
  let revs =
    List.fold_left
      (fun acc r -> if List.mem r.Store.r_rev acc then acc else r.Store.r_rev :: acc)
      [] records
    |> List.rev
  in
  match
    match since with
    | "earliest" -> (
      match revs with [] -> Error "store is empty" | r :: _ -> Ok r)
    | "latest" -> (
      match List.rev revs with [] -> Error "store is empty" | r :: _ -> Ok r)
    | p -> (
      let matching =
        List.filter
          (fun r ->
            String.length r >= String.length p && String.sub r 0 (String.length p) = p)
          revs
      in
      match matching with
      | [ r ] -> Ok r
      | [] -> Error (Printf.sprintf "no records at revision %S" p)
      | many ->
        Error
          (Printf.sprintf "revision prefix %S is ambiguous (%s)" p
             (String.concat ", " (List.map short_rev many))))
  with
  | Error e -> Printf.sprintf "regressions since %s: %s\n" since e
  | Ok base_rev ->
    let keyed =
      List.concat
        (Engine.Runner.map ?domains
           (fun r ->
             List.map
               (fun (m, v) ->
                 ((r.Store.r_driver, r.Store.r_hash, m), (r.Store.r_rev, v, r)))
               r.Store.r_metrics)
           records)
    in
    let tbl = Hashtbl.create 64 in
    (* Later store lines overwrite earlier ones: "last record wins". *)
    List.iter
      (fun (key, (rev, v, r)) ->
        let base, _ = try Hashtbl.find tbl key with Not_found -> (None, None) in
        let base = if rev = base_rev then Some (v, r) else base in
        Hashtbl.replace tbl key (base, Some (rev, v, r)))
      keyed;
    let findings =
      Hashtbl.fold
        (fun (driver, _hash, metric) (base, cur) acc ->
          match (base, cur, higher_is_better metric) with
          | Some (bv, br), Some (crev, cv, cr), Some polarity
            when crev <> base_rev && bv <> 0. ->
            let delta_pct = (cv -. bv) /. Float.abs bv *. 100. in
            let worse = if polarity then -.delta_pct else delta_pct in
            if worse > tolerance then
              (worse, driver, metric, bv, cv, delta_pct, br, cr) :: acc
            else acc
          | _ -> acc)
        tbl []
    in
    let findings =
      List.sort
        (fun (w1, d1, m1, _, _, _, b1, _) (w2, d2, m2, _, _, _, b2, _) ->
          let c = Float.compare w2 w1 in
          if c <> 0 then c
          else
            compare
              (d1, m1, config_cell b1)
              (d2, m2, config_cell b2))
        findings
    in
    let table_rows =
      List.map
        (fun (_, driver, metric, bv, cv, delta, base_r, _) ->
          [
            driver;
            config_cell base_r;
            metric;
            value_cell bv;
            value_cell cv;
            Printf.sprintf "%+.1f%%" delta;
          ])
        findings
    in
    if table_rows = [] then
      Printf.sprintf "no regressions since %s (tolerance %g%%)\n" (short_rev base_rev)
        tolerance
    else
      render_table
        ~title:
          (Printf.sprintf "regressions since %s (tolerance %g%%)" (short_rev base_rev)
             tolerance)
        [ "driver"; "config"; "metric"; "baseline"; "current"; "delta" ]
        table_rows

let run_catalogue records what =
  let field, header =
    match what with
    | `Drivers -> ((fun (r : Store.record) -> r.Store.r_driver), "driver")
    | `Kinds -> ((fun (r : Store.record) -> r.Store.r_kind), "kind")
    | `Revs -> ((fun (r : Store.record) -> r.Store.r_rev), "rev")
    | `Specs ->
      ( (fun (r : Store.record) ->
          if r.Store.r_spec = "" then "-" else r.Store.r_spec),
        "spec" )
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let k = field r in
      Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0))
    records;
  let rows =
    List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])
  in
  render_table
    ~title:(Printf.sprintf "list %ss (%d records)" header (List.length records))
    [ header; "records" ]
    (List.map (fun (k, n) -> [ k; string_of_int n ]) rows)

let run ?domains records = function
  | Top (n, metric, filter) -> run_top ?domains records n metric filter
  | Aggregate (op, metric, group, filter) ->
    run_aggregate ?domains records op metric group filter
  | Regressions (rev, tolerance, filter) ->
    run_regressions ?domains records rev tolerance filter
  | Catalogue_of what -> run_catalogue records what
