type axis_kind = Int | Enum of string list
type axis = { ax_name : string; ax_kind : axis_kind; ax_default : string }
type outcome = { o_metrics : (string * float) list; o_payload : string }

type driver = {
  d_name : string;
  d_kind : string;
  d_doc : string;
  d_axes : axis list;
  d_run : lookup:(string -> string) -> outcome;
}

let axis name kind default = { ax_name = name; ax_kind = kind; ax_default = default }
let int_of ~lookup name = int_of_string (lookup name)
let bool_of ~lookup name = lookup name = "true"

(* Per-config payload for fleet-native drivers: the config echoed next
   to its metrics as one canonical JSON line. *)
let payload_json config metrics =
  Jsonv.to_string
    (Jsonv.canonical
       (Jsonv.Obj
          [
            ("config", Jsonv.Obj (List.map (fun (k, v) -> (k, Jsonv.Str v)) config));
            ("metrics", Jsonv.Obj (List.map (fun (k, v) -> (k, Jsonv.Num v)) metrics));
          ]))

(* ------------------------------------------------------------------ *)
(* csweep: the Figure-1 workload as a sweepable driver                *)

let csweep_locks =
  [
    ("spin", Locks.Lock.Spin);
    ("backoff", Locks.Lock.Backoff);
    ("blocking", Locks.Lock.Blocking);
    ("combined1", Locks.Lock.Combined 1);
    ("combined10", Locks.Lock.Combined 10);
    ("combined50", Locks.Lock.Combined 50);
    ("advisory", Locks.Lock.Advisory);
    ("adaptive", Locks.Lock.adaptive_default);
  ]

let csweep_driver =
  {
    d_name = "csweep";
    d_kind = "CSWEEP";
    d_doc = "critical-section sweep: threads hammering one lock (Figure 1 workload)";
    d_axes =
      [
        axis "processors" Int "4";
        axis "threads_per_proc" Int "3";
        axis "iterations" Int "40";
        axis "cs_ns" Int "20000";
        axis "think_ns" Int "30000";
        axis "latency_ratio" Int "4";
        axis "lock" (Enum (List.map fst csweep_locks)) "spin";
        axis "seed" Int "1";
      ];
    d_run =
      (fun ~lookup ->
        let processors = int_of ~lookup "processors" in
        let ratio = int_of ~lookup "latency_ratio" in
        let machine =
          let base = Butterfly.Config.with_processors processors Butterfly.Config.default in
          {
            base with
            Butterfly.Config.remote_read_ns = base.Butterfly.Config.local_read_ns * ratio;
            remote_write_ns = base.Butterfly.Config.local_write_ns * ratio;
          }
        in
        let spec =
          {
            Workloads.Csweep.processors;
            threads_per_proc = int_of ~lookup "threads_per_proc";
            iterations = int_of ~lookup "iterations";
            cs_ns = int_of ~lookup "cs_ns";
            think_ns = int_of ~lookup "think_ns";
            lock_kind = List.assoc (lookup "lock") csweep_locks;
            seed = int_of ~lookup "seed";
          }
        in
        let r = Workloads.Csweep.run ~machine spec in
        let metrics =
          [
            ("total_ns", float_of_int r.Workloads.Csweep.total_ns);
            ("mean_wait_us", r.Workloads.Csweep.mean_wait_ns /. 1e3);
            ("contended", float_of_int r.Workloads.Csweep.contended);
            ("blocks", float_of_int r.Workloads.Csweep.blocks);
            ("spin_probes", float_of_int r.Workloads.Csweep.spin_probes);
            ("adaptations", float_of_int r.Workloads.Csweep.adaptations);
          ]
        in
        let config =
          List.map
            (fun name -> (name, lookup name))
            [
              "processors"; "threads_per_proc"; "iterations"; "cs_ns"; "think_ns";
              "latency_ratio"; "lock"; "seed";
            ]
        in
        { o_metrics = metrics; o_payload = payload_json config metrics });
  }

(* ------------------------------------------------------------------ *)
(* switch-lock: one cell of the implementation-as-attribute ablation  *)

let switch_variants =
  [
    ("tas", Some Locks.Switch_lock.Tas);
    ("mcs", Some Locks.Switch_lock.Mcs);
    ("blocking", Some Locks.Switch_lock.Blocking);
    ("adaptive", None);
  ]

let switch_driver =
  {
    d_name = "switch-lock";
    d_kind = "SWITCH";
    d_doc = "one cell of the switch-lock ablation: pinned TAS/MCS/blocking or adaptive";
    d_axes =
      [
        axis "workers" Int "5";
        axis "processors" Int "7";
        axis "iterations" Int "30";
        axis "cs_ns" Int "15000";
        axis "think_ns" Int "8000";
        axis "variant" (Enum (List.map fst switch_variants)) "adaptive";
      ];
    d_run =
      (fun ~lookup ->
        let processors = int_of ~lookup "processors" in
        let machine =
          Butterfly.Config.with_processors (max 8 processors) Butterfly.Config.default
        in
        let variant = lookup "variant" in
        let r =
          Experiments.Ablations.switch_one ~machine ~point:"fleet"
            ~workers:(int_of ~lookup "workers") ~processors
            ~iterations:(int_of ~lookup "iterations") ~cs_ns:(int_of ~lookup "cs_ns")
            ~think_ns:(int_of ~lookup "think_ns") ~variant
            ~fixed:(List.assoc variant switch_variants)
            ()
        in
        let metrics =
          [
            ("total_ns", float_of_int r.Experiments.Ablations.sw_total_ns);
            ("mean_wait_us", r.Experiments.Ablations.sw_mean_wait_us);
            ("blocks", float_of_int r.Experiments.Ablations.sw_blocks);
            ("spin_probes", float_of_int r.Experiments.Ablations.sw_spin_probes);
            ("swaps", float_of_int r.Experiments.Ablations.sw_swaps);
          ]
        in
        let config =
          List.map
            (fun name -> (name, lookup name))
            [ "workers"; "processors"; "iterations"; "cs_ns"; "think_ns"; "variant" ]
        in
        let payload =
          Jsonv.to_string
            (Jsonv.canonical
               (Jsonv.Obj
                  [
                    ( "config",
                      Jsonv.Obj (List.map (fun (k, v) -> (k, Jsonv.Str v)) config) );
                    ( "metrics",
                      Jsonv.Obj (List.map (fun (k, v) -> (k, Jsonv.Num v)) metrics) );
                    ( "final_impl",
                      Jsonv.Str r.Experiments.Ablations.sw_final_impl );
                  ]))
        in
        { o_metrics = metrics; o_payload = payload });
  }

(* ------------------------------------------------------------------ *)
(* chaos: one seeded fault-injection run of a shipped scenario        *)

let chaos_driver () =
  let scenario_names =
    List.map
      (fun s -> s.Analysis_suite.scenario_name)
      (Analysis_suite.shipped ())
  in
  {
    d_name = "chaos";
    d_kind = "CHAOS";
    d_doc = "one seeded chaos run of a shipped scenario under a generated fault plan";
    d_axes =
      [
        axis "scenario" (Enum scenario_names) (List.hd scenario_names);
        axis "seed" Int "1";
        axis "swap_faults" (Enum [ "false"; "true" ]) "false";
      ];
    d_run =
      (fun ~lookup ->
        let name = lookup "scenario" in
        let scenario =
          List.find
            (fun s -> s.Analysis_suite.scenario_name = name)
            (Analysis_suite.shipped ())
        in
        let r =
          Chaos.run_scenario
            ~swap_faults:(bool_of ~lookup "swap_faults")
            ~scenario ~seed:(int_of ~lookup "seed") ()
        in
        let metrics =
          [
            ("events", float_of_int r.Chaos.events);
            ("accesses", float_of_int r.Chaos.accesses);
            ("final_time_ns", float_of_int r.Chaos.final_time_ns);
            ("completed", if r.Chaos.outcome = "completed" then 1. else 0.);
            ("invariant_failures", float_of_int (List.length r.Chaos.invariant_failures));
            ("injected", float_of_int (List.length r.Chaos.injected));
          ]
        in
        { o_metrics = metrics; o_payload = Chaos.to_json [ r ] });
  }

(* ------------------------------------------------------------------ *)
(* objects: the sync-objects workload + registry snapshot             *)

let objects_driver =
  {
    d_name = "objects";
    d_kind = "OBJECTS";
    d_doc = "sync-objects workload; payload is the adaptive-object registry dump";
    d_axes =
      [
        axis "processors" Int "4";
        axis "workers" Int "6";
        axis "rounds" Int "5";
        axis "items_each" Int "20";
        axis "seed" Int "1";
      ];
    d_run =
      (fun ~lookup ->
        let spec =
          {
            Workloads.Sync_objects.processors = int_of ~lookup "processors";
            workers = int_of ~lookup "workers";
            rounds = int_of ~lookup "rounds";
            items_each = int_of ~lookup "items_each";
            seed = int_of ~lookup "seed";
          }
        in
        let r = Workloads.Sync_objects.run spec in
        let metrics =
          [
            ("total_ns", float_of_int r.Workloads.Sync_objects.total_ns);
            ("adaptations", float_of_int r.Workloads.Sync_objects.adaptations);
            ( "objects",
              float_of_int (List.length r.Workloads.Sync_objects.snapshot) );
          ]
        in
        {
          o_metrics = metrics;
          o_payload = Adaptive_core.Registry.to_json r.Workloads.Sync_objects.snapshot;
        });
  }

(* ------------------------------------------------------------------ *)

let drivers () = [ csweep_driver; switch_driver; chaos_driver (); objects_driver ]
let find name = List.find_opt (fun d -> d.d_name = name) (drivers ())

let validate (spec : Spec.t) =
  match find spec.Spec.sp_driver with
  | None ->
    Error
      (Printf.sprintf "spec %S: unknown driver %S (catalogue: %s)" spec.Spec.sp_id
         spec.Spec.sp_driver
         (String.concat ", " (List.map (fun d -> d.d_name) (drivers ()))))
  | Some d ->
    let check_axis (name, values) =
      match List.find_opt (fun a -> a.ax_name = name) d.d_axes with
      | None ->
        Error
          (Printf.sprintf "spec %S: driver %S has no axis %S (axes: %s)"
             spec.Spec.sp_id d.d_name name
             (String.concat ", " (List.map (fun a -> a.ax_name) d.d_axes)))
      | Some a ->
        let check_value v =
          match a.ax_kind with
          | Int ->
            if int_of_string_opt v = None then
              Error
                (Printf.sprintf "spec %S: axis %S value %S is not an integer"
                   spec.Spec.sp_id name v)
            else Ok ()
          | Enum allowed ->
            if List.mem v allowed then Ok ()
            else
              Error
                (Printf.sprintf "spec %S: axis %S value %S not in {%s}"
                   spec.Spec.sp_id name v
                   (String.concat "; " allowed))
        in
        List.fold_left
          (fun acc v -> Result.bind acc (fun () -> check_value v))
          (Ok ()) values
    in
    List.fold_left
      (fun acc ax -> Result.bind acc (fun () -> check_axis ax))
      (Ok ()) spec.Spec.sp_axes

let run_config d config =
  let lookup name =
    match List.assoc_opt name config with
    | Some v -> v
    | None -> (
      match List.find_opt (fun a -> a.ax_name = name) d.d_axes with
      | Some a -> a.ax_default
      | None -> invalid_arg (Printf.sprintf "driver %s: unknown axis %s" d.d_name name))
  in
  let o = d.d_run ~lookup in
  (o.o_metrics, o.o_payload)

let describe () =
  let buf = Buffer.create 512 in
  List.iter
    (fun d ->
      Printf.bprintf buf "%s (kind %s): %s\n" d.d_name d.d_kind d.d_doc;
      List.iter
        (fun a ->
          let kind =
            match a.ax_kind with
            | Int -> "int"
            | Enum vs -> Printf.sprintf "{%s}" (String.concat "|" vs)
          in
          Printf.bprintf buf "  %-16s %-10s default %s\n" a.ax_name kind a.ax_default)
        d.d_axes)
    (drivers ());
  Buffer.contents buf
