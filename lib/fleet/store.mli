(** Append-only on-disk results store.

    One line per completed run, each line one canonical JSON object
    (JSONL). A record ties together provenance (git revision, host),
    identity (spec id, driver, config and its hash), the artifact kind
    it belongs to (BENCH, CHAOS, ...), a flat metric projection for
    queries, and the {e exact} bytes of the legacy artifact it stands
    for. Serialization is byte-stable: {!to_line} depends only on the
    record value, so stores produced at [--domains 1] and [--domains 4]
    from the same runs are byte-identical. *)

type record = {
  r_schema : int;  (** record format version; this library writes {!schema_version} *)
  r_rev : string;  (** git revision the run was produced at *)
  r_host : string;  (** hostname, for same-host baseline lookup *)
  r_spec : string;  (** spec id; [""] for records emitted by legacy subcommands *)
  r_driver : string;  (** catalogue driver (or legacy subcommand) name *)
  r_kind : string;  (** artifact kind: BENCH, CHAOS, ANALYSIS, ... *)
  r_config : (string * string) list;  (** axis values, sorted by key *)
  r_hash : string;  (** {!config_hash} of [r_driver] + [r_config] *)
  r_metrics : (string * float) list;  (** flat metric projection, sorted by key *)
  r_payload : string;  (** exact bytes of the legacy artifact *)
}

val schema_version : int

val make :
  ?spec:string ->
  ?rev:string ->
  ?host:string ->
  driver:string ->
  kind:string ->
  config:(string * string) list ->
  metrics:(string * float) list ->
  payload:string ->
  unit ->
  record
(** Build a record: sorts [config] and [metrics], computes the config
    hash. [rev] defaults to {!Experiments.Perf.git_rev}, [host] to
    [Unix.gethostname]. *)

val config_hash : driver:string -> (string * string) list -> string
(** 16-hex-digit FNV-1a-64 over the driver name and the {e sorted}
    [k=v] pairs — independent of the field order callers use. *)

val to_line : record -> string
(** One-line canonical JSON (alphabetical keys, no newline). *)

val of_line : string -> (record, string) result
(** Inverse of {!to_line}. Rejects records whose [schema] field is not
    {!schema_version} and records missing required fields, so stores
    written by a future format are refused rather than misread. *)

val append : path:string -> record list -> unit
(** Append records to the store at [path], creating parent directories
    and the file as needed. *)

val load : path:string -> (record list, string) result
(** All records in file order. A missing file is an empty store; a
    malformed or unknown-schema line is an error naming its line
    number. *)
