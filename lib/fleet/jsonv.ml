type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)

let num_str v =
  if Float.is_nan v || Float.abs v = infinity then
    (* Out-of-contract values; keep the output a valid JSON number. *)
    "0"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    (* Shortest of %.12g/%.17g that parses back to the same float, so
       printing is a function of the value alone and a parse/print
       round trip is byte-stable. *)
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> Buffer.add_string buf (num_str v)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          go x)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let rec canonical = function
  | (Null | Bool _ | Num _ | Str _) as v -> v
  | Arr xs -> Arr (List.map canonical xs)
  | Obj kvs ->
    Obj
      (List.sort
         (fun (a, _) (b, _) -> String.compare a b)
         (List.map (fun (k, v) -> (k, canonical v)) kvs))

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)

exception Fail of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = text.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape"
           else
             let e = text.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub text !pos 4 in
               pos := !pos + 4;
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c -> c
                 | None -> fail "bad \\u escape"
               in
               (* Encode as UTF-8 (surrogate pairs are not needed for
                  the documents this library writes). *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char text.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number"
    else
      match float_of_string_opt (String.sub text start (!pos - start)) with
      | Some v -> v
      | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elements [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "json: %s at byte %d" msg at)

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num v -> Some v | _ -> None
let arr = function Arr xs -> Some xs | _ -> None
let obj = function Obj kvs -> Some kvs | _ -> None
