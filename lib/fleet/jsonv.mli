(** Minimal JSON values for the experiment fleet: parse experiment
    specs and store records, print them back with {e stable bytes}.

    The repo deliberately has no JSON dependency; artifacts are written
    by hand-rolled printers. The fleet store needs the reverse
    direction too (reopen, query, regression-compare), so this module
    provides the smallest self-contained value type + recursive-descent
    parser + canonical printer that round-trips those documents.

    Stability contract: {!to_string} depends only on the value (objects
    print keys in their stored order — {!canonical} sorts them), and
    {!num_str} is idempotent through a parse
    ([num_str (num (parse (num_str v))) = num_str v]), so
    [to_string (parse (to_string v)) = to_string v] for every value
    this library produces. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed; trailing
    garbage is an error). Errors carry a byte offset. *)

val to_string : t -> string
(** Compact rendering: no spaces, object keys in stored order. *)

val canonical : t -> t
(** Sort object keys recursively (arrays keep their order). *)

val num_str : float -> string
(** Canonical float rendering: shortest of [%.12g]/[%.17g] that parses
    back to the same float; integers print without a decimal point.
    [nan]/[inf] print as [null]-safe ["0"] — callers should not feed
    them. *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

(** {1 Accessors} (all total) *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val arr : t -> t list option
val obj : t -> (string * t) list option
