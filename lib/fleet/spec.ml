type t = {
  sp_id : string;
  sp_driver : string;
  sp_axes : (string * string list) list;
}

let max_configs = 10_000

let value_to_string = function
  | Jsonv.Str s -> Some s
  | Jsonv.Num v -> Some (Jsonv.num_str v)
  | Jsonv.Bool b -> Some (if b then "true" else "false")
  | Jsonv.Null | Jsonv.Arr _ | Jsonv.Obj _ -> None

let spec_of_json json =
  let ( let* ) = Result.bind in
  let* id =
    match Option.bind (Jsonv.member "id" json) Jsonv.str with
    | Some s when s <> "" -> Ok s
    | _ -> Error "spec missing \"id\""
  in
  let* driver =
    match Option.bind (Jsonv.member "driver" json) Jsonv.str with
    | Some s when s <> "" -> Ok s
    | _ -> Error (Printf.sprintf "spec %S missing \"driver\"" id)
  in
  let* axes =
    match Option.bind (Jsonv.member "axes" json) Jsonv.obj with
    | None -> Error (Printf.sprintf "spec %S missing \"axes\" object" id)
    | Some kvs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (axis, Jsonv.Arr values) :: rest -> (
          let vs = List.filter_map value_to_string values in
          if vs = [] || List.length vs <> List.length values then
            Error
              (Printf.sprintf "spec %S axis %S needs a non-empty array of scalars" id
                 axis)
          else
            match List.assoc_opt axis acc with
            | Some _ -> Error (Printf.sprintf "spec %S repeats axis %S" id axis)
            | None -> go ((axis, vs) :: acc) rest)
        | (axis, (Jsonv.Str _ | Jsonv.Num _ | Jsonv.Bool _)) :: _ ->
          Error
            (Printf.sprintf
               "spec %S axis %S: wrap single values in an array ([...])" id axis)
        | (axis, _) :: _ ->
          Error (Printf.sprintf "spec %S axis %S needs an array of scalars" id axis)
      in
      go [] kvs
  in
  let axes = List.sort (fun (a, _) (b, _) -> String.compare a b) axes in
  let size = List.fold_left (fun acc (_, vs) -> acc * List.length vs) 1 axes in
  if size > max_configs then
    Error
      (Printf.sprintf "spec %S expands to %d configs (limit %d)" id size max_configs)
  else Ok { sp_id = id; sp_driver = driver; sp_axes = axes }

let of_string text =
  let ( let* ) = Result.bind in
  let* json = Jsonv.parse text in
  let* objs =
    match json with
    | Jsonv.Obj _ -> Ok [ json ]
    | Jsonv.Arr xs -> Ok xs
    | _ -> Error "spec file must hold a spec object or an array of them"
  in
  if objs = [] then Error "spec file holds no specs"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | o :: rest -> (
        match spec_of_json o with Ok s -> go (s :: acc) rest | Error e -> Error e)
    in
    let* specs = go [] objs in
    let ids = List.map (fun s -> s.sp_id) specs in
    if List.length (List.sort_uniq String.compare ids) <> List.length ids then
      Error "spec file repeats a spec id"
    else Ok specs

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e

let size t = List.fold_left (fun acc (_, vs) -> acc * List.length vs) 1 t.sp_axes

let expand t =
  (* Axes are stored sorted; fold from the right so the last axis
     varies fastest. *)
  List.fold_right
    (fun (axis, values) tails ->
      List.concat_map (fun v -> List.map (fun tail -> (axis, v) :: tail) tails) values)
    t.sp_axes [ [] ]
