(** The driver catalogue: what an experiment spec may ask for.

    Each driver names the axes it understands (with kinds and
    defaults) and knows how to execute one config — one point of a
    spec's cross product — on a fresh simulated machine, returning a
    flat metric projection plus the exact bytes of the legacy artifact
    that config stands for. {!validate} checks a spec against the
    catalogue {e before} anything runs, so a typo fails fast instead
    of three axes into a sweep. *)

type axis_kind =
  | Int  (** decimal integer *)
  | Enum of string list  (** closed value set *)

type axis = {
  ax_name : string;
  ax_kind : axis_kind;
  ax_default : string;  (** used when the spec omits the axis *)
}

type outcome = {
  o_metrics : (string * float) list;
  o_payload : string;  (** legacy-artifact bytes for this one config *)
}

type driver = {
  d_name : string;
  d_kind : string;  (** store artifact kind its records carry *)
  d_doc : string;
  d_axes : axis list;
  d_run : lookup:(string -> string) -> outcome;
      (** [lookup axis] is total over [d_axes] (defaults filled in). *)
}

val drivers : unit -> driver list
(** The registered drivers: [csweep], [switch-lock], [chaos],
    [objects]. *)

val find : string -> driver option

val validate : Spec.t -> (unit, string) result
(** Driver exists; every spec axis is declared by the driver; every
    value parses ([Int]) or is a member ([Enum]). *)

val run_config :
  driver -> (string * string) list -> (string * float) list * string
(** Execute one expanded config (defaults applied for omitted axes);
    returns (metrics, payload). Assumes {!validate} passed. *)

val describe : unit -> string
(** Human-readable catalogue listing for [repro run --catalogue]. *)
