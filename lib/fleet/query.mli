(** Typed query views over a results store.

    The algebra is deliberately small: filter records, project a
    metric, then rank, aggregate or regression-compare. Queries parse
    from one line of text (the [repro view] argument):

    {v
    top 20 by mean_wait_us
    top 5 by total_ns where driver=csweep lock=spin
    mean total_ns group by driver
    count * group by kind
    regressions since a1b2c3d
    regressions since earliest tolerance 10
    list drivers
    v}

    Metric names match a record metric exactly or as a [.../NAME]
    suffix, so [mean_wait_us] finds both a csweep record's
    [mean_wait_us] and an ablation record's
    [moderate/adaptive/mean_wait_us].

    Rendering is deterministic: every ordering is total (ties broken
    by record identity), floats print via {!Jsonv.num_str}, and
    per-record work fans out through {!Engine.Runner.map}, so output
    bytes are identical at any [--domains] count. *)

type filter = {
  f_driver : string option;
  f_kind : string option;
  f_spec : string option;
  f_rev : string option;  (** prefix match *)
  f_config : (string * string) list;  (** config key = value, all must hold *)
}

val no_filter : filter

type agg_op = Mean | Sum | Min | Max | Count

type group_key =
  | By_driver
  | By_kind
  | By_rev
  | By_spec
  | By_config of string

type t =
  | Top of int * string * filter  (** best-first ranking of a metric *)
  | Aggregate of agg_op * string * group_key option * filter
  | Regressions of string * float * filter
      (** [since rev] ([earliest]/[latest] allowed), tolerance in percent *)
  | Catalogue_of of [ `Drivers | `Kinds | `Revs | `Specs ]

val parse : string -> (t, string) result

val higher_is_better : string -> bool option
(** Metric polarity by name: [Some true] for rates ([..per_sec..],
    [..improvement..]), [Some false] for times/failure counts
    ([.._ns]/[.._us] suffixes, [..wait..], [..fail..], ...), [None]
    when the name says nothing (such metrics are skipped by
    regression detection and ranked descending by [top]). *)

val run : ?domains:int -> Store.record list -> t -> string
(** Execute against loaded records and render the result table. *)
