let legacy_path ~csv_dir name =
  if not (Sys.file_exists csv_dir) then Sys.mkdir csv_dir 0o755;
  Filename.concat csv_dir name

let default_store ~csv_dir =
  match Sys.getenv_opt "REPRO_STORE" with
  | Some p when p <> "" -> p
  | _ -> Filename.concat csv_dir "store.jsonl"

let artifact ?store ?csv_dir ?spec ~driver ~kind ?legacy ~config ~metrics ~payload () =
  let record = Store.make ?spec ~driver ~kind ~config ~metrics ~payload () in
  (match store with None -> () | Some path -> Store.append ~path [ record ]);
  (match (csv_dir, legacy) with
  | Some dir, Some name ->
    let path = legacy_path ~csv_dir:dir name in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc payload)
  | _ -> ());
  record
