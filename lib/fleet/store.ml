type record = {
  r_schema : int;
  r_rev : string;
  r_host : string;
  r_spec : string;
  r_driver : string;
  r_kind : string;
  r_config : (string * string) list;
  r_hash : string;
  r_metrics : (string * float) list;
  r_payload : string;
}

let schema_version = 1

(* FNV-1a, 64-bit. Cheap, stable across runs and hosts, and good enough
   to key configurations (collisions only degrade regression grouping,
   never correctness of stored data). *)
let fnv1a_64 strings =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  List.iter
    (fun s ->
      String.iter
        (fun c ->
          h := Int64.logxor !h (Int64.of_int (Char.code c));
          h := Int64.mul !h prime)
        s;
      (* Separator byte so ["ab";"c"] and ["a";"bc"] differ. *)
      h := Int64.logxor !h 0x1FL;
      h := Int64.mul !h prime)
    strings;
  !h

let config_hash ~driver config =
  let kvs =
    List.sort compare (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) config)
  in
  Printf.sprintf "%016Lx" (fnv1a_64 (Printf.sprintf "driver=%s" driver :: kvs))

let sort_fields kvs = List.sort (fun (a, _) (b, _) -> String.compare a b) kvs

let make ?(spec = "") ?rev ?host ~driver ~kind ~config ~metrics ~payload () =
  let rev = match rev with Some r -> r | None -> Experiments.Perf.git_rev () in
  let host =
    match host with
    | Some h -> h
    | None -> ( try Unix.gethostname () with _ -> "unknown")
  in
  {
    r_schema = schema_version;
    r_rev = rev;
    r_host = host;
    r_spec = spec;
    r_driver = driver;
    r_kind = kind;
    r_config = sort_fields config;
    r_hash = config_hash ~driver config;
    r_metrics = sort_fields metrics;
    r_payload = payload;
  }

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)

let to_line r =
  let open Jsonv in
  (* Keys listed alphabetically so the canonical form is written
     directly (to_string keeps stored order). *)
  to_string
    (Obj
       [
         ("config", Obj (List.map (fun (k, v) -> (k, Str v)) (sort_fields r.r_config)));
         ("config_hash", Str r.r_hash);
         ("driver", Str r.r_driver);
         ("git_rev", Str r.r_rev);
         ("host", Str r.r_host);
         ("kind", Str r.r_kind);
         ("metrics", Obj (List.map (fun (k, v) -> (k, Num v)) (sort_fields r.r_metrics)));
         ("payload", Str r.r_payload);
         ("schema", Num (float_of_int r.r_schema));
         ("spec_id", Str r.r_spec);
       ])

let of_line line =
  match Jsonv.parse line with
  | Error e -> Error e
  | Ok json -> (
    let field name = Jsonv.member name json in
    let str_field name =
      match Option.bind (field name) Jsonv.str with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "record missing string field %S" name)
    in
    let kv_field name value =
      match Option.bind (field name) Jsonv.obj with
      | None -> Error (Printf.sprintf "record missing object field %S" name)
      | Some kvs -> (
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (k, v) :: rest -> (
            match value v with
            | Some v -> go ((k, v) :: acc) rest
            | None -> Error (Printf.sprintf "bad value for %S in %S" k name))
        in
        go [] kvs)
    in
    match Option.bind (field "schema") Jsonv.num with
    | None -> Error "record missing schema field"
    | Some s when int_of_float s <> schema_version ->
      Error
        (Printf.sprintf "unknown schema version %d (this build reads %d)"
           (int_of_float s) schema_version)
    | Some _ -> (
      let ( let* ) = Result.bind in
      let* rev = str_field "git_rev" in
      let* host = str_field "host" in
      let* spec = str_field "spec_id" in
      let* driver = str_field "driver" in
      let* kind = str_field "kind" in
      let* hash = str_field "config_hash" in
      let* payload = str_field "payload" in
      let* config = kv_field "config" Jsonv.str in
      let* metrics = kv_field "metrics" Jsonv.num in
      Ok
        {
          r_schema = schema_version;
          r_rev = rev;
          r_host = host;
          r_spec = spec;
          r_driver = driver;
          r_kind = kind;
          r_config = sort_fields config;
          r_hash = hash;
          r_metrics = sort_fields metrics;
          r_payload = payload;
        }))

(* ------------------------------------------------------------------ *)
(* File I/O                                                           *)

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let append ~path records =
  mkdirs (Filename.dirname path);
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun r ->
          output_string oc (to_line r);
          output_char oc '\n')
        records)

let load ~path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in path in
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            lines := input_line ic :: !lines
          done
        with End_of_file -> ());
    let rec go acc lineno = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        if String.trim line = "" then go acc (lineno + 1) rest
        else (
          match of_line line with
          | Ok r -> go (r :: acc) (lineno + 1) rest
          | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
    in
    go [] 1 (List.rev !lines)
  end
