(** One funnel for every artifact the repro CLI produces.

    [artifact] builds a store record for a finished run and (a)
    appends it to the store when one is configured, (b) writes the
    legacy artifact file {e verbatim from the record's payload bytes}
    when a [csv_dir] and file name are given. Because the legacy file
    and the stored payload are the same bytes by construction, store
    records and legacy artifacts cannot drift apart.

    [domains] must never appear in [config]: records describe the
    experiment, not the host parallelism that computed it, so stores
    produced at different [--domains] stay byte-identical. *)

val artifact :
  ?store:string ->
  ?csv_dir:string ->
  ?spec:string ->
  driver:string ->
  kind:string ->
  ?legacy:string ->
  config:(string * string) list ->
  metrics:(string * float) list ->
  payload:string ->
  unit ->
  Store.record
(** [legacy] is the file name under [csv_dir] (for example
    ["CHAOS_results.json"]); without it (or without [csv_dir]) no
    legacy file is written. Returns the record (already appended when
    [store] is set). *)

val legacy_path : csv_dir:string -> string -> string
(** Where [artifact] writes the legacy file: [csv_dir ^ "/" ^ name],
    creating [csv_dir] as needed (same rule the pre-store CLI used). *)

val default_store : csv_dir:string -> string
(** The store the CLI uses when [--store] is absent:
    [csv_dir ^ "/store.jsonl"], overridable via [REPRO_STORE]. *)
