(** Experiment specs: a concise JSON declaration of a cross-product
    sweep.

    A spec is one JSON object (a file may hold one object or an array
    of them):

    {v
    { "id": "smoke-csweep",
      "driver": "csweep",
      "axes": { "processors": [2, 4],
                "latency_ratio": [4, 12],
                "lock": ["spin", "adaptive"],
                "seed": [1] } }
    v}

    Every axis value list is swept as a cross product; axes the driver
    declares but the spec omits run at the driver's default. Validation
    against the driver catalogue happens in {!Catalogue.validate}. *)

type t = {
  sp_id : string;
  sp_driver : string;
  sp_axes : (string * string list) list;
      (** sorted by axis name; values canonicalized to strings in the
          order the spec listed them *)
}

val of_string : string -> (t list, string) result
(** Parse a spec document: one spec object or an array of them. *)

val of_file : string -> (t list, string) result

val expand : t -> (string * string) list list
(** The cross product, in a deterministic order: axes iterate sorted by
    name with the rightmost (alphabetically last) axis varying fastest,
    each axis's values in spec order. Each element is one config
    (axis, value) list, sorted by axis name. *)

val size : t -> int
(** Number of configs {!expand} yields. *)

val max_configs : int
(** Refuse specs expanding beyond this many configs (guards typos like
    a 6-axis × 10-value sweep). *)
