(** The chaos harness: seeded fault plans swept over the scenario
    catalogue, with the sanitizers watching and recovery invariants
    asserted.

    Each run takes one shipped {!Analysis_suite} scenario, generates a
    {!Faults.Fault_plan} from a seed (or replays a given plan), arms it
    with {!Faults.Injector} on a fresh machine, starts a
    {!Monitoring.Watchdog}, attaches the {!Analysis.Trace} recorder,
    and executes the workload via {!Butterfly.Sched.run_outcome}. The
    run must then satisfy the harness invariants:

    - the outcome is [Completed], or [Aborted] with a structured
      reason and a non-empty diagnostic dump (no opaque hang, no
      escaped exception);
    - a completed run with no kill fault applied holds no lock at
      thread exit (kills legitimately strand locks — that is the
      fault model — so the lint is only an invariant when no kill
      fired);
    - a completed run left no abort request dangling.

    Everything — plan generation, injection, watchdog, sanitizer
    verdicts — runs off virtual time and seeded streams, so a sweep's
    JSON summary is byte-identical at any [--domains] count and across
    hosts. *)

type result = {
  scenario : string;
  seed : int;  (** -1 for replayed plans *)
  plan : string;  (** {!Faults.Fault_plan.to_string} of the plan swept *)
  injected : string list;  (** faults that actually fired, in order *)
  outcome : string;  (** ["completed"] or ["aborted"] *)
  abort_reason : string option;
  diagnostics : string option;  (** machine dump of an aborted run *)
  sanitizer_diags : string list;  (** findings of the three sanitizers *)
  invariant_failures : string list;  (** empty iff the run passed *)
  final_time_ns : int;
  events : int;
  accesses : int;
  pinned_schedule : string option;
      (** On a failing run, the comma-joined dispatch decision list
          that reproduced the failure bit for bit when replayed through
          {!Butterfly.Sched.set_schedule_control} (the witness-replay
          machinery). [None] on passing runs, or if the re-execution
          did not reproduce the failure exactly. *)
}

val passed : result -> bool

val run_scenario :
  ?horizon_ns:int ->
  ?swap_faults:bool ->
  scenario:Analysis_suite.scenario ->
  seed:int ->
  unit ->
  result
(** One seeded chaos run. [horizon_ns] (default 3_000_000) bounds the
    virtual-time window fault times are drawn from. [swap_faults]
    (default false) adds the swap-window fault kinds to the draw —
    plans from pre-existing seeds are unchanged without it. *)

val replay :
  scenario:Analysis_suite.scenario -> plan:Faults.Fault_plan.t -> result
(** Re-run one scenario under an explicit plan (e.g. a failing plan
    dumped by a previous sweep). *)

val sweep :
  ?domains:int ->
  ?horizon_ns:int ->
  ?swap_faults:bool ->
  seeds:int list ->
  scenarios:Analysis_suite.scenario list ->
  unit ->
  result list
(** The full cross product, computed with {!Engine.Runner.map} (so
    [--domains] parallelism with deterministic, input-ordered
    results). *)

val to_json : result list -> string
(** The machine-readable summary: runs in sweep order plus totals.
    Contains no wall-clock times, hostnames or other host state. *)

val summary_line : result list -> string
