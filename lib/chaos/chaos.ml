module Sched = Butterfly.Sched

type result = {
  scenario : string;
  seed : int;
  plan : string;
  injected : string list;
  outcome : string;
  abort_reason : string option;
  diagnostics : string option;
  sanitizer_diags : string list;
  invariant_failures : string list;
  final_time_ns : int;
  events : int;
  accesses : int;
  pinned_schedule : string option;
}

let passed r = r.invariant_failures = []

let default_horizon_ns = 3_000_000

(* Chaos runs get a much tighter event budget than the simulator's
   400M safety valve: a kill that strands a lock in front of spinning
   waiters is a livelock — the waiters burn events forever and the
   watchdog (correctly) sees progress — and the budget is what turns
   that into a structured Event_limit abort in bounded wall time. An
   order of magnitude above any shipped scenario's normal run. *)
let default_max_events = 2_000_000

(* A kill that actually fired (not a no-op) legitimately strands the
   victim's locks, so the held-at-exit lint is only an invariant on
   kill-free runs. *)
let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let kill_fired injected =
  List.exists
    (fun line -> contains_sub line " kill tid=" && not (contains_sub line "(no-op"))
    injected

let run_plan_once ?(max_events = default_max_events) ?control ~scenario ~seed ~plan ()
    =
  let open Analysis_suite in
  let config =
    {
      scenario.config with
      Butterfly.Config.max_events = min scenario.config.Butterfly.Config.max_events max_events;
    }
  in
  let sim = Sched.create config in
  Sched.set_record_schedule sim true;
  (match control with None -> () | Some s -> Sched.set_schedule_control sim s);
  let trace = Analysis.Trace.attach sim in
  let injector = Faults.Injector.install sim ~plan in
  let wrapped () =
    let wd = Monitoring.Watchdog.start ~sched:sim () in
    (try scenario.program ()
     with e ->
       (try Monitoring.Watchdog.stop wd with _ -> ());
       raise e);
    Monitoring.Watchdog.stop wd
  in
  let outcome = Sched.run_outcome ~main_name:"main" sim wrapped in
  let name_table = Hashtbl.create 64 in
  List.iter
    (fun (tid, name, _) -> Hashtbl.replace name_table tid name)
    (Sched.thread_report sim);
  let names tid =
    match Hashtbl.find_opt name_table tid with
    | Some n -> n
    | None -> Printf.sprintf "t%d" tid
  in
  let diags =
    List.stable_sort Analysis.Diag.compare
      (Analysis.Race.run ~names trace
      @ Analysis.Lock_order.run ~names trace
      @ Analysis.Discipline.run ~names trace)
  in
  let injected = Faults.Injector.applied injector in
  let outcome_str, abort_reason, diagnostics =
    match outcome with
    | Sched.Completed -> ("completed", None, None)
    | Sched.Aborted { reason; diagnostics } ->
      ("aborted", Some (Sched.abort_reason_message reason), Some diagnostics)
  in
  let invariant_failures =
    List.concat
      [
        (match outcome with
        | Sched.Aborted { diagnostics = ""; _ } ->
          [ "aborted run carries no diagnostics" ]
        | _ -> []);
        (match outcome with
        | Sched.Completed when Sched.abort_requested sim <> None ->
          [ "completed with a dangling abort request" ]
        | _ -> []);
        (if
           outcome = Sched.Completed
           && (not (kill_fired injected))
           && List.exists
                (fun d -> d.Analysis.Diag.rule = "lock-held-at-exit")
                diags
         then [ "lock held at exit on a kill-free completed run" ]
         else []);
      ]
  in
  let result =
    {
      scenario = scenario.scenario_name;
      seed;
      plan = Faults.Fault_plan.to_string plan;
      injected;
      outcome = outcome_str;
      abort_reason;
      diagnostics;
      sanitizer_diags = List.map Analysis.Diag.to_string diags;
      invariant_failures;
      final_time_ns = Sched.final_time sim;
      events = Analysis.Trace.events trace;
      accesses = Analysis.Trace.accesses trace;
      pinned_schedule = None;
    }
  in
  let faithful =
    match control with
    | None -> true
    | Some s ->
      Sched.recorded_schedule sim = s
      && (not (Sched.control_diverged sim))
      && Sched.schedule_control_remaining sim = 0
  in
  (result, Sched.recorded_schedule sim, faithful)

let run_plan ?max_events ~scenario ~seed ~plan () =
  let result, schedule, _ = run_plan_once ?max_events ~scenario ~seed ~plan () in
  if passed result then result
  else begin
    (* Pin the failure: re-execute the same plan under the recorded
       dispatch schedule (the witness-replay machinery) and attach the
       decision list only if the failure reproduces bit for bit. *)
    let replayed, _, faithful =
      run_plan_once ?max_events ~control:schedule ~scenario ~seed ~plan ()
    in
    let reproduced =
      faithful
      && replayed.invariant_failures = result.invariant_failures
      && replayed.outcome = result.outcome
      && replayed.final_time_ns = result.final_time_ns
    in
    if reproduced then
      {
        result with
        pinned_schedule =
          Some (String.concat "," (List.map string_of_int schedule));
      }
    else result
  end

let run_scenario ?(horizon_ns = default_horizon_ns) ?swap_faults ~scenario ~seed () =
  (* Mix the scenario name into the plan seed so the sweep doesn't
     replay one fault sequence across the whole catalogue.
     Hashtbl.hash on strings is deterministic, so plans stay
     reproducible from (scenario, seed). *)
  let plan_seed = seed + (1_000_003 * Hashtbl.hash scenario.Analysis_suite.scenario_name) in
  let plan =
    Faults.Fault_plan.generate ?swap_faults ~seed:plan_seed
      ~cfg:scenario.Analysis_suite.config ~horizon_ns ()
  in
  run_plan ~scenario ~seed ~plan ()

let replay ~scenario ~plan = run_plan ~scenario ~seed:(-1) ~plan ()

let sweep ?domains ?horizon_ns ?swap_faults ~seeds ~scenarios () =
  let jobs =
    List.concat_map (fun scenario -> List.map (fun seed -> (scenario, seed)) seeds)
      scenarios
  in
  Engine.Runner.map ?domains
    (fun (scenario, seed) -> run_scenario ?horizon_ns ?swap_faults ~scenario ~seed ())
    jobs

(* -- JSON rendering (hand-rolled like Experiments.Perf: no host state,
   no wall-clock, deterministic bytes) -- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string_list l =
  "[" ^ String.concat ", " (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) l) ^ "]"

let json_opt = function
  | None -> "null"
  | Some s -> Printf.sprintf "\"%s\"" (json_escape s)

let result_json r =
  String.concat ",\n"
    [
      Printf.sprintf "      \"scenario\": \"%s\"" (json_escape r.scenario);
      Printf.sprintf "      \"seed\": %d" r.seed;
      Printf.sprintf "      \"plan\": \"%s\"" (json_escape r.plan);
      Printf.sprintf "      \"injected\": %s" (json_string_list r.injected);
      Printf.sprintf "      \"outcome\": \"%s\"" (json_escape r.outcome);
      Printf.sprintf "      \"abort_reason\": %s" (json_opt r.abort_reason);
      Printf.sprintf "      \"diagnostics\": %s" (json_opt r.diagnostics);
      Printf.sprintf "      \"sanitizer_diags\": %s" (json_string_list r.sanitizer_diags);
      Printf.sprintf "      \"invariant_failures\": %s"
        (json_string_list r.invariant_failures);
      Printf.sprintf "      \"final_time_ns\": %d" r.final_time_ns;
      Printf.sprintf "      \"events\": %d" r.events;
      Printf.sprintf "      \"accesses\": %d" r.accesses;
      Printf.sprintf "      \"pinned_schedule\": %s" (json_opt r.pinned_schedule);
    ]

let to_json results =
  let failures = List.filter (fun r -> not (passed r)) results in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"total_runs\": %d,\n" (List.length results));
  Buffer.add_string buf
    (Printf.sprintf "  \"completed\": %d,\n"
       (List.length (List.filter (fun r -> r.outcome = "completed") results)));
  Buffer.add_string buf
    (Printf.sprintf "  \"aborted\": %d,\n"
       (List.length (List.filter (fun r -> r.outcome = "aborted") results)));
  Buffer.add_string buf
    (Printf.sprintf "  \"invariant_failures\": %d,\n" (List.length failures));
  Buffer.add_string buf "  \"runs\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map (fun r -> "    {\n" ^ result_json r ^ "\n    }") results));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let summary_line results =
  let failures = List.filter (fun r -> not (passed r)) results in
  Printf.sprintf "chaos: %d runs, %d completed, %d aborted (structured), %d invariant failure(s)"
    (List.length results)
    (List.length (List.filter (fun r -> r.outcome = "completed") results))
    (List.length (List.filter (fun r -> r.outcome = "aborted") results))
    (List.length failures)
