open Butterfly

type t = {
  mutex : Spin.t;
  permits : Memory.addr;  (* simulated word: current permit count *)
  waiters : int Queue.t;  (* host-side FIFO of blocked tids *)
}

let create ?node n =
  if n < 0 then invalid_arg "Semaphore.create: negative permits";
  let permits = Ops.alloc1 ?node () in
  Ops.mark_sync_words [| permits |];
  Ops.write permits n;
  { mutex = Spin.create ?node (); permits; waiters = Queue.create () }

let acquire t =
  Spin.lock t.mutex;
  let n = Ops.read t.permits in
  if n > 0 then begin
    Ops.write t.permits (n - 1);
    Spin.unlock t.mutex
  end
  else begin
    Queue.add (Ops.self ()) t.waiters;
    Spin.unlock t.mutex;
    (* A release racing ahead leaves a wake token, so this never hangs. *)
    Ops.block ()
  end

let try_acquire t =
  Spin.lock t.mutex;
  let n = Ops.read t.permits in
  let ok = n > 0 in
  if ok then Ops.write t.permits (n - 1);
  Spin.unlock t.mutex;
  ok

let release t =
  Spin.lock t.mutex;
  (match Queue.take_opt t.waiters with
  | Some tid ->
    Spin.unlock t.mutex;
    (* Hand the permit directly to the waiter. *)
    Ops.wakeup tid
  | None ->
    Ops.write t.permits (Ops.read t.permits + 1);
    Spin.unlock t.mutex)

let available t = Ops.read t.permits
