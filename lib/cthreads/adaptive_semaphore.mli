(** Adaptive counting semaphore: spin-then-block acquire with the spin
    budget adapted from observed queue depth.

    An acquirer that finds no permit polls the permit word for up to
    the [acquire-spin-ns] attribute's budget (retrying the locked take
    when the word looks positive) before queuing and blocking. The
    built-in monitor samples the blocked-waiter count at release time;
    the default policy widens the budget while releases find an empty
    queue (permits turn over quickly, so waits are short) and shrinks
    it toward pure blocking when a standing queue forms. The fixed
    {!Semaphore} stays the zero-cost default. *)

type t

type observation = {
  waiting : int;  (** blocked waiters at release time *)
  budget_ns : int;  (** current acquire spin budget *)
}

val policy_spec :
  ?name:string -> ?attribute:string -> ?block_over:int -> unit -> Adaptive_core.Policy.Spec.t
(** The queue-depth-driven spin-budget policy as a declarative spec
    (defaults match {!create}): [spin-more] on an empty queue,
    [spin-less] at [block_over] or deeper. What {!create} compiles and
    what the static checker inspects. *)

val create : ?node:int -> ?name:string -> ?period:int -> ?block_over:int -> int -> t
(** [create n] starts with [n] permits ([n >= 0]) and a spin budget of
    0 (pure blocking, like {!Semaphore}). [period] is the sensor
    sampling period in release operations (default 2). The default
    policy steps the budget down once the queue depth reaches
    [block_over] (default 2).

    Raises [Invalid_argument] when [block_over < 1]: depth 0 would then
    satisfy both the spin-more and spin-less steps, ping-ponging the
    budget on every sample. *)

val acquire : t -> unit
(** Take a permit, spin-then-blocking until one is available. *)

val try_acquire : t -> bool
(** Take a permit iff one is immediately available. *)

val release : t -> unit
(** Return a permit (handed directly to the oldest waiter, if any).
    Ticks the adaptive loop. *)

val available : t -> int
(** Current permit count (racy snapshot, for metrics). *)

val waiting : t -> int
(** Blocked waiters (racy snapshot, for metrics). *)

val spin_budget_ns : t -> int
val spin_attr : t -> int Adaptive_core.Attribute.t

val loop : t -> observation Adaptive_core.Adaptive.t
(** The semaphore's feedback loop (subscribe, swap policies, read
    metrics). *)
