(** A minimal test-and-set spin mutex.

    This is {e not} one of the paper's configurable locks — it is the
    primitive internal mutex the thread package itself uses to protect
    the host-side state of higher-level primitives ({!Semaphore},
    {!Barrier}, lock waiter queues). It occupies a single simulated
    word and probes with a fixed gap, so hot-spot contention on it is
    modelled faithfully. *)

type t

val create : ?node:int -> unit -> t
(** Allocate the mutex word ([node] defaults to the caller's
    processor). Must run inside the simulation. *)

val lock : t -> unit
(** Spin (with a small constant probe gap) until acquired. *)

val try_lock : t -> bool

val unlock : t -> unit

val home : t -> int
(** The memory node holding the mutex word. *)

val probe_gap_ns : int
(** Gap between failed probes; the adaptive variants reuse it as their
    spin-poll granularity so spin costs stay comparable. *)
