open Butterfly
module Attribute = Adaptive_core.Attribute
module Adaptive = Adaptive_core.Adaptive
module Sensor = Adaptive_core.Sensor
module Policy = Adaptive_core.Policy

type observation = { spread_ns : int; budget_ns : int }

type t = {
  mutex : Spin.t;
  parties : int;
  count : Memory.addr;  (* arrivals in the current cycle *)
  gen : Memory.addr;  (* generation: bumped when a cycle completes *)
  mutable sleepers : int list;
  mutable first_arrival : int;  (* virtual time of this cycle's first arrival *)
  mutable last_spread : int;  (* inter-arrival spread of the last completed cycle *)
  spin_ns : int Attribute.t;  (* arrival spin budget before blocking *)
  loop : observation Adaptive.t;
}

let probe_gap_ns = Spin.probe_gap_ns

(* Budget ladder shared with the default policy: each adaptation moves
   one step, so a misprediction costs one cycle of slightly-wrong
   spinning, not a swing to an extreme. *)
let step_up ~max_spin b = if b = 0 then probe_gap_ns * 2 else min max_spin (b * 2)
let step_down b = if b <= probe_gap_ns * 2 then 0 else b / 2

(* The spread-driven spin-budget policy as a declarative spec:
   configurations are the doubling ladder reachable from budget 0,
   [spin-more] on a tight arrival spread, [spin-less] on a straggling
   one. [create] compiles exactly this spec; the static checker
   ([Analysis.Policy_check]) model-checks it. *)
let policy_spec ?(name = "adaptive-barrier") ?attribute ?(spin_if_under = 800_000)
    ?(block_if_over = 1_600_000) ?(max_spin_ns = 614_400) () =
  Spin_ladder.spec ~name ~kind:"barrier"
    ~attribute:
      (match attribute with Some a -> a | None -> name ^ ".arrival-spin-ns")
    ~metric:"arrival-spread-ns" ~spin_if_under ~block_if_over
    ~step_up:(step_up ~max_spin:max_spin_ns) ~step_down ~max_spin:max_spin_ns 0

(* The scale anchor is the machine's deschedule/resume round trip
   (block + wakeup latency + unblock, ~450 us on the default config):
   a spread clearly below it means arrivals are tight enough that
   spinning them in saves a descheduling; a spread clearly above it
   means someone straggles for longer than a sleep costs. *)
let create ?node ?(name = "adaptive-barrier") ?(period = 1) ?(spin_if_under = 800_000)
    ?(block_if_over = 1_600_000) ?(max_spin_ns = 614_400) n =
  if n < 1 then invalid_arg "Adaptive_barrier.create: need at least one party";
  (* A spread in [block_if_over, spin_if_under] would satisfy both the
     spin-more and spin-less conditions, so every sample adapts and the
     budget ping-pongs forever — the thrash cycle the static checker
     flags. Reject the parameterization outright. *)
  if spin_if_under >= block_if_over then
    invalid_arg
      "Adaptive_barrier.create: spin_if_under must be below block_if_over \
       (overlapping thresholds thrash)";
  let words = Ops.alloc ?node 2 in
  Ops.mark_sync_words words;
  let home = match node with Some p -> p | None -> Ops.my_processor () in
  let rec t =
    lazy
      {
        mutex = Spin.create ?node ();
        parties = n;
        count = words.(0);
        gen = words.(1);
        sleepers = [];
        first_arrival = 0;
        last_spread = 0;
        spin_ns = Attribute.make_at ~name:"arrival-spin-ns" ~node:home 0;
        loop =
          Adaptive.create ~name ~kind:"barrier"
            ~spec:(policy_spec ~name ~spin_if_under ~block_if_over ~max_spin_ns ())
            ~home
            ~sensor:
              (Sensor.make ~name:"arrival-spread" ~period (fun () ->
                   let b = Lazy.force t in
                   { spread_ns = b.last_spread; budget_ns = Attribute.get b.spin_ns }))
            ~policy:
              (Policy.Spec.compile
                 (policy_spec ~name ~spin_if_under ~block_if_over ~max_spin_ns ())
                 ~read:(fun () -> Attribute.get (Lazy.force t).spin_ns)
                 ~apply:(fun v ->
                   Attribute.set (Lazy.force t).spin_ns v;
                   true)
                 ~metric:(fun obs -> obs.spread_ns))
            ();
      }
  in
  Lazy.force t

let spin_then_block t my_gen =
  (* Spin phase: poll the generation word up to the current budget.
     The budget attribute is re-read on entry only; one stale arrival
     costs at most one mis-budgeted wait. *)
  let budget = Attribute.get t.spin_ns in
  (* Each in-budget iteration (generation read plus the gap while it is
     still ours) is one fused effect; the budget-exhausted exit still
     pays the bare read the pre-fusion loop condition charged. *)
  let rec poll spent =
    if spent < budget then begin
      if Ops.read_hint ~gap_ns:probe_gap_ns ~expect:my_gen t.gen = my_gen then
        poll (spent + probe_gap_ns)
    end
    else ignore (Ops.read t.gen : int)
  in
  poll 0;
  if Ops.read t.gen = my_gen then begin
    (* Budget exhausted: fall back to blocking. Re-check the generation
       under the mutex (mirrors Lock_core's sleep registration): the
       releasing thread bumps [gen] while holding it, so either we see
       the bump here, or we are on the sleeper list before it wakes. *)
    Spin.lock t.mutex;
    if Ops.read t.gen = my_gen then begin
      t.sleepers <- Ops.self () :: t.sleepers;
      Spin.unlock t.mutex;
      Ops.block ()
    end
    else Spin.unlock t.mutex
  end

let await t =
  Spin.lock t.mutex;
  let now = Ops.now () in
  let arrived = Ops.read t.count + 1 in
  if arrived = 1 then t.first_arrival <- now;
  if arrived = t.parties then begin
    let sleepers = t.sleepers in
    t.sleepers <- [];
    t.last_spread <- now - t.first_arrival;
    Ops.write t.count 0;
    Ops.write t.gen (Ops.read t.gen + 1);
    Spin.unlock t.mutex;
    List.iter Ops.wakeup (List.rev sleepers);
    (* Closely-coupled tick: one instrumentation event per completed
       cycle, observing the spread just measured. *)
    ignore (Adaptive.tick t.loop)
  end
  else begin
    Ops.write t.count arrived;
    let my_gen = Ops.read t.gen in
    Spin.unlock t.mutex;
    spin_then_block t my_gen
  end

let parties t = t.parties
let waiting t = Ops.read t.count
let spin_budget_ns t = Attribute.get t.spin_ns
let spin_attr t = t.spin_ns
let loop t = t.loop
let last_spread_ns t = t.last_spread
