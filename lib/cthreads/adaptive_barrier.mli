(** Adaptive cyclic barrier: spin-then-block arrival with the spin
    budget adapted from the observed inter-arrival spread.

    Arrival strategy is the barrier's analogue of a lock's waiting
    policy. A non-final arrival polls the barrier's generation word for
    up to the [arrival-spin-ns] attribute's budget, then falls back to
    blocking. The built-in monitor observes each completed cycle's
    inter-arrival spread (time from first to last arrival); the default
    policy widens the budget while arrivals are bunched tightly enough
    that spinning beats a deschedule/resume pair, and shrinks it toward
    pure blocking when the spread grows — the fixed {!Barrier} stays
    the zero-cost default. The feedback loop is closely coupled: it
    ticks once per completed cycle, in the releasing thread. *)

type t

type observation = {
  spread_ns : int;  (** first-to-last arrival spread of the last cycle *)
  budget_ns : int;  (** current arrival spin budget *)
}

val policy_spec :
  ?name:string ->
  ?attribute:string ->
  ?spin_if_under:int ->
  ?block_if_over:int ->
  ?max_spin_ns:int ->
  unit ->
  Adaptive_core.Policy.Spec.t
(** The spread-driven spin-budget policy as a declarative spec
    (defaults match {!create}): configurations are the doubling budget
    ladder, [spin-more] while the arrival spread is at most
    [spin_if_under], [spin-less] at or beyond [block_if_over]. What
    {!create} compiles and what the static checker inspects. *)

val create :
  ?node:int ->
  ?name:string ->
  ?period:int ->
  ?spin_if_under:int ->
  ?block_if_over:int ->
  ?max_spin_ns:int ->
  int ->
  t
(** [create n] is an adaptive barrier for [n] parties ([n >= 1]); the
    spin budget starts at 0 (pure blocking, like {!Barrier}).
    [period] is the sensor sampling period in completed cycles
    (default 1). The default policy steps the budget up (doubling, to
    at most [max_spin_ns], default ~614 us) when the observed spread is
    at most [spin_if_under] ns and down when at least [block_if_over]
    ns. The thresholds default to 800 us / 1.6 ms — bracketing the
    default machine's ~450 us deschedule/resume round trip, the cost a
    successful spin saves.

    Raises [Invalid_argument] when [spin_if_under >= block_if_over]: a
    spread in the overlap would satisfy both steps, so every sample
    would adapt — the thrash cycle the static checker flags. *)

val await : t -> unit
(** Block until all [n] parties have arrived; the last arrival wakes
    the blocked parties, resets the barrier and ticks the adaptive
    loop. *)

val parties : t -> int

val waiting : t -> int
(** Parties currently waiting (racy snapshot, for metrics). *)

val spin_budget_ns : t -> int
(** Current arrival spin budget. *)

val spin_attr : t -> int Adaptive_core.Attribute.t
(** The [arrival-spin-ns] attribute, for external reconfiguration
    agents and ownership tests. *)

val loop : t -> observation Adaptive_core.Adaptive.t
(** The barrier's feedback loop (subscribe, swap policies, read
    metrics). *)

val last_spread_ns : t -> int
(** Inter-arrival spread of the most recently completed cycle. *)
