open Butterfly

type t = int

(* Default naming is delegated to the machine (tid-derived), so it
   stays deterministic per simulation and safe when Engine.Runner
   executes many simulations in parallel — a library-global counter
   here would be both racy and order-dependent. *)
let fork ?(name = "") ?proc ?(prio = 0) f = Ops.fork { f; proc; prio; name }

let join = Ops.join
let join_all ts = List.iter join ts
let self = Ops.self
let id t = t
let equal (a : t) b = a = b
let of_id tid = tid
let yield = Ops.yield
let block = Ops.block
let wakeup = Ops.wakeup
let delay = Ops.delay
let work = Ops.work
let work_instrs = Ops.work_instrs
let now = Ops.now
let my_processor = Ops.my_processor
let processors = Ops.processors
let set_priority = Ops.set_priority
let priority = Ops.priority_of
let random = Ops.random
let pp ppf t = Format.fprintf ppf "#%d" t
