open Butterfly

type t = {
  mutex : Spin.t;
  parties : int;
  count : Memory.addr;  (* arrivals in the current cycle *)
  mutable sleepers : int list;
}

let create ?node n =
  if n < 1 then invalid_arg "Barrier.create: need at least one party";
  let count = Ops.alloc1 ?node () in
  Ops.mark_sync_words [| count |];
  { mutex = Spin.create ?node (); parties = n; count; sleepers = [] }

let await t =
  Spin.lock t.mutex;
  let arrived = Ops.read t.count + 1 in
  if arrived = t.parties then begin
    let sleepers = t.sleepers in
    t.sleepers <- [];
    Ops.write t.count 0;
    Spin.unlock t.mutex;
    List.iter Ops.wakeup (List.rev sleepers)
  end
  else begin
    Ops.write t.count arrived;
    t.sleepers <- Ops.self () :: t.sleepers;
    Spin.unlock t.mutex;
    Ops.block ()
  end

let parties t = t.parties
let waiting t = Ops.read t.count
