open Butterfly

type t = Memory.addr

(* Gap between failed probes: long enough to keep the event count sane,
   short enough not to distort latencies (one local read's worth). *)
let probe_gap_ns = 600

let spin_name t = Printf.sprintf "spin<%d:%d>" (Memory.node_of t) (Memory.index_of t)

let create ?node () =
  let t = Ops.alloc1 ?node () in
  Ops.mark_sync_words [| t |];
  t

(* Annotation payloads (records plus a formatted name) are only built
   when someone is listening — with zero subscribers these are single
   flag reads on the lock fast path. *)
let note_acquired t =
  if Ops.annotations_enabled () then
    Ops.annotate
      (Ops.A_lock_acquire { lock = t; lock_name = spin_name t; spin_wait = true })

let try_lock t =
  let got = Ops.test_and_set t in
  if got then note_acquired t;
  got

let lock t =
  if Ops.annotations_enabled () then
    Ops.annotate (Ops.A_lock_request { lock = t; lock_name = spin_name t });
  (* Busy-wait: the gap between probes occupies the processor, as real
     spinning does. Each iteration (test-and-set plus the gap on
     failure) is one fused effect. *)
  while not (Ops.lock_probe ~gap_ns:probe_gap_ns t) do
    ()
  done;
  note_acquired t

let unlock t =
  if Ops.annotations_enabled () then
    Ops.annotate (Ops.A_lock_release { lock = t; lock_name = spin_name t });
  Ops.write t 0

let home t = Memory.node_of t
