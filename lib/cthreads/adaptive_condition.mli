(** Adaptive condition variable: wake-strategy and spin-wait budget as
    reconfigurable attributes.

    Two attributes drive it. [wait-spin-ns] gives each waiter a spin
    budget: after registering (so no signal can be lost) it polls the
    condition's signal-sequence word as a {e hint}, then always calls
    [block] — a signal that landed during the spin left a wake token,
    so the block returns immediately and the deschedule/resume pair is
    saved; the hint can never break correctness. [broadcast-hint]
    escalates {!signal} to waking every waiter; the built-in monitor
    samples the waiter count at signal time and the default policy
    turns the hint on when signals keep finding a crowd and off when
    waiters are scarce. The fixed {!Condition} stays the zero-cost
    default. *)

type t

type observation = {
  waiting : int;  (** waiters present when the signal was issued *)
  broadcast : bool;  (** current wake strategy *)
}

val policy_spec :
  ?name:string ->
  ?attribute:string ->
  ?broadcast_over:int ->
  unit ->
  Adaptive_core.Policy.Spec.t
(** The wake-strategy policy as a declarative spec (defaults match
    {!create}): two configurations, [signal-only] and [broadcast],
    switched on the waiter count observed at signal time. What
    {!create} compiles and what the static checker inspects. *)

val create :
  ?node:int -> ?name:string -> ?period:int -> ?broadcast_over:int -> unit -> t
(** [period] is the sensor sampling period in signal operations
    (default 2, the paper's every-other-operation rate). The default
    policy escalates to broadcast at [broadcast_over] waiters (default
    4) and de-escalates at <= 1.

    Raises [Invalid_argument] when [broadcast_over < 2]: the
    escalation band would then overlap the de-escalation band (waiters
    <= 1), bouncing the strategy on every signal with one waiter
    present. *)

val wait : t -> Spin.t -> unit
(** [wait t mu] atomically releases [mu], waits to be woken (spinning
    up to the current budget first), and re-acquires [mu]. *)

val signal : t -> unit
(** Wake the oldest waiter — or everyone, when the [broadcast-hint]
    attribute is set. Ticks the adaptive loop. *)

val broadcast : t -> unit
(** Wake all current waiters. *)

val waiting : t -> int
(** Waiters currently registered (racy snapshot, for metrics). *)

val spin_budget_ns : t -> int
val spin_attr : t -> int Adaptive_core.Attribute.t

val broadcasting : t -> bool
(** Current wake strategy (true = signal escalates to broadcast). *)

val broadcast_attr : t -> bool Adaptive_core.Attribute.t

val loop : t -> observation Adaptive_core.Adaptive.t
(** The condition's feedback loop (subscribe, swap policies, read
    metrics). *)
