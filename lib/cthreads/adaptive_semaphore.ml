open Butterfly
module Attribute = Adaptive_core.Attribute
module Adaptive = Adaptive_core.Adaptive
module Sensor = Adaptive_core.Sensor
module Policy = Adaptive_core.Policy

type observation = { waiting : int; budget_ns : int }

type t = {
  mutex : Spin.t;
  permits : Memory.addr;  (* simulated word: current permit count *)
  waiters : int Queue.t;  (* host-side FIFO of blocked tids *)
  spin_ns : int Attribute.t;  (* acquire spin budget before blocking *)
  loop : observation Adaptive.t;
}

let probe_gap_ns = Spin.probe_gap_ns
let max_budget_ns = 19_200
let step_up b = if b = 0 then probe_gap_ns * 2 else min max_budget_ns (b * 2)
let step_down b = if b <= probe_gap_ns * 2 then 0 else b / 2

(* Permits turning over with nobody queued means waits are short —
   spin for them; a standing queue means a permit takes long enough to
   come back that blocking is the right strategy (the inverse of a
   lock's simple-adapt, because here depth measures permit latency).
   As a spec: spin-more only on an empty queue, spin-less at
   [block_over] or deeper. *)
let policy_spec ?(name = "adaptive-semaphore") ?attribute ?(block_over = 2) () =
  Spin_ladder.spec ~name ~kind:"semaphore"
    ~attribute:
      (match attribute with Some a -> a | None -> name ^ ".acquire-spin-ns")
    ~metric:"waiting-at-release" ~spin_if_under:0 ~block_if_over:block_over
    ~step_up ~step_down ~max_spin:max_budget_ns 0

let create ?node ?(name = "adaptive-semaphore") ?(period = 2) ?(block_over = 2) n =
  if n < 0 then invalid_arg "Adaptive_semaphore.create: negative permits";
  (* [block_over = 0] would overlap the spin-more condition (queue
     empty) and ping-pong the budget every sample — a statically
     detectable thrash cycle. *)
  if block_over < 1 then
    invalid_arg "Adaptive_semaphore.create: block_over must be at least 1";
  let permits = Ops.alloc1 ?node () in
  Ops.mark_sync_words [| permits |];
  Ops.write permits n;
  let home = match node with Some p -> p | None -> Ops.my_processor () in
  let rec t =
    lazy
      {
        mutex = Spin.create ?node ();
        permits;
        waiters = Queue.create ();
        spin_ns = Attribute.make_at ~name:"acquire-spin-ns" ~node:home 0;
        loop =
          Adaptive.create ~name ~kind:"semaphore"
            ~spec:(policy_spec ~name ~block_over ()) ~home
            ~sensor:
              (Sensor.make ~name:"waiting-at-release" ~period (fun () ->
                   let s = Lazy.force t in
                   {
                     waiting = Queue.length s.waiters;
                     budget_ns = Attribute.get s.spin_ns;
                   }))
            ~policy:
              (Policy.Spec.compile
                 (policy_spec ~name ~block_over ())
                 ~read:(fun () -> Attribute.get (Lazy.force t).spin_ns)
                 ~apply:(fun v ->
                   Attribute.set (Lazy.force t).spin_ns v;
                   true)
                 ~metric:(fun obs -> obs.waiting))
            ();
      }
  in
  Lazy.force t

(* One locked attempt at taking a permit. *)
let try_take t =
  Spin.lock t.mutex;
  let n = Ops.read t.permits in
  let ok = n > 0 in
  if ok then Ops.write t.permits (n - 1);
  Spin.unlock t.mutex;
  ok

let acquire t =
  if not (try_take t) then begin
    (* Spin phase: poll the permit word racily as a hint and retry the
       locked take when it looks positive. We are not queued, so a
       release in this window increments the count rather than handing
       off — exactly what the poll watches for. *)
    let budget = Attribute.get t.spin_ns in
    let spent = ref 0 in
    let got = ref false in
    while (not !got) && !spent < budget do
      spent := !spent + probe_gap_ns;
      (* Gap plus hint read, fused ([expect:-1] never matches: the
         conditional wait belongs to the gap, which here precedes the
         read). *)
      if Ops.read_hint ~pre_ns:probe_gap_ns ~expect:(-1) t.permits > 0 then
        got := try_take t
    done;
    if not !got then begin
      (* Register under the mutex, re-checking first: a release between
         our last poll and here must either leave a visible permit or
         find us already queued for direct handoff. *)
      Spin.lock t.mutex;
      let n = Ops.read t.permits in
      if n > 0 then begin
        Ops.write t.permits (n - 1);
        Spin.unlock t.mutex
      end
      else begin
        Queue.add (Ops.self ()) t.waiters;
        Spin.unlock t.mutex;
        (* A release racing ahead leaves a wake token, so this never hangs. *)
        Ops.block ()
      end
    end
  end

let try_acquire t = try_take t

let release t =
  (* Closely-coupled tick: sample queue depth before the handoff. *)
  ignore (Adaptive.tick t.loop);
  Spin.lock t.mutex;
  match Queue.take_opt t.waiters with
  | Some tid ->
    Spin.unlock t.mutex;
    (* Hand the permit directly to the waiter. *)
    Ops.wakeup tid
  | None ->
    Ops.write t.permits (Ops.read t.permits + 1);
    Spin.unlock t.mutex

let available t = Ops.read t.permits
let waiting t = Queue.length t.waiters
let spin_budget_ns t = Attribute.get t.spin_ns
let spin_attr t = t.spin_ns
let loop t = t.loop
