open Butterfly
module Attribute = Adaptive_core.Attribute
module Adaptive = Adaptive_core.Adaptive
module Sensor = Adaptive_core.Sensor
module Policy = Adaptive_core.Policy

type observation = { waiting : int; broadcast : bool }

type t = {
  guard : Spin.t;  (* protects the waiter list *)
  mutable sleepers : int list;  (* FIFO, oldest first *)
  signal_seq : Memory.addr;  (* bumped per signal/broadcast: the spin hint *)
  spin_ns : int Attribute.t;  (* wait spin budget before descheduling *)
  broadcast_hint : bool Attribute.t;  (* escalate signal to broadcast *)
  loop : observation Adaptive.t;
}

let probe_gap_ns = Spin.probe_gap_ns

(* Wake-strategy adaptation: when signals keep finding a crowd, one
   broadcast replaces a train of signal calls (ActiveMonitor's
   monitor-reconfiguration observation); when waiters are scarce,
   broadcast would only cause thundering-herd wakeups, so fall back to
   single-thread signalling. *)
let default_policy t ~broadcast_over obs =
  if obs.waiting >= broadcast_over && not obs.broadcast then
    Policy.reconfigure ~label:"escalate-broadcast" (fun () ->
        Attribute.set t.broadcast_hint true)
  else if obs.waiting <= 1 && obs.broadcast then
    Policy.reconfigure ~label:"signal-only" (fun () ->
        Attribute.set t.broadcast_hint false)
  else Policy.No_change

let create ?node ?(name = "adaptive-condition") ?(period = 2) ?(broadcast_over = 4) ()
    =
  let signal_seq = Ops.alloc1 ?node () in
  Ops.mark_sync_words [| signal_seq |];
  let home = match node with Some p -> p | None -> Ops.my_processor () in
  let rec t =
    lazy
      {
        guard = Spin.create ?node ();
        sleepers = [];
        signal_seq;
        spin_ns = Attribute.make_at ~name:"wait-spin-ns" ~node:home 0;
        broadcast_hint = Attribute.make_at ~name:"broadcast-hint" ~node:home false;
        loop =
          Adaptive.create ~name ~kind:"condition" ~home
            ~sensor:
              (Sensor.make ~name:"waiting-at-signal" ~period (fun () ->
                   let c = Lazy.force t in
                   {
                     waiting = List.length c.sleepers;
                     broadcast = Attribute.get c.broadcast_hint;
                   }))
            ~policy:(fun obs -> default_policy (Lazy.force t) ~broadcast_over obs)
            ();
      }
  in
  Lazy.force t

let wait t mu =
  Spin.lock t.guard;
  t.sleepers <- t.sleepers @ [ Ops.self () ];
  Spin.unlock t.guard;
  (* Release the monitor mutex only after registering, so a signal
     racing with this wait cannot be lost (the wake token absorbs an
     early wakeup). *)
  Spin.unlock mu;
  (* Spin phase: watch the signal sequence word purely as a hint. The
     wakeup targets a specific thread, so seeing a bump does not mean
     it was for us — which is why the phase ALWAYS ends in [block]:
     if our signal arrived during the spin, the pending wake token
     makes [block] return immediately (saving the deschedule/resume
     pair); otherwise we sleep as the fixed condition does. Skipping
     [block] would leak the token into our next unrelated block. *)
  let budget = Attribute.get t.spin_ns in
  if budget > 0 then begin
    let seq0 = Ops.read t.signal_seq in
    let spent = ref 0 in
    while Ops.read t.signal_seq = seq0 && !spent < budget do
      Ops.work probe_gap_ns;
      spent := !spent + probe_gap_ns
    done
  end;
  Ops.block ();
  Spin.lock mu

let wake_all t =
  Spin.lock t.guard;
  let sleepers = t.sleepers in
  t.sleepers <- [];
  Ops.write t.signal_seq (Ops.read t.signal_seq + 1);
  Spin.unlock t.guard;
  List.iter Ops.wakeup sleepers

let signal t =
  (* Tick before dequeuing so the sensor sees the pre-wake crowd. *)
  ignore (Adaptive.tick t.loop);
  if Attribute.get t.broadcast_hint then wake_all t
  else begin
    Spin.lock t.guard;
    match t.sleepers with
    | [] -> Spin.unlock t.guard
    | tid :: rest ->
      t.sleepers <- rest;
      Ops.write t.signal_seq (Ops.read t.signal_seq + 1);
      Spin.unlock t.guard;
      Ops.wakeup tid
  end

let broadcast t =
  ignore (Adaptive.tick t.loop);
  wake_all t

let waiting t = List.length t.sleepers
let spin_budget_ns t = Attribute.get t.spin_ns
let spin_attr t = t.spin_ns
let broadcast_attr t = t.broadcast_hint
let broadcasting t = Attribute.get t.broadcast_hint
let loop t = t.loop
