open Butterfly
module Attribute = Adaptive_core.Attribute
module Adaptive = Adaptive_core.Adaptive
module Sensor = Adaptive_core.Sensor
module Policy = Adaptive_core.Policy

type observation = { waiting : int; broadcast : bool }

type t = {
  guard : Spin.t;  (* protects the waiter list *)
  mutable sleepers : int list;  (* FIFO, oldest first *)
  signal_seq : Memory.addr;  (* bumped per signal/broadcast: the spin hint *)
  spin_ns : int Attribute.t;  (* wait spin budget before descheduling *)
  broadcast_hint : bool Attribute.t;  (* escalate signal to broadcast *)
  loop : observation Adaptive.t;
}

let probe_gap_ns = Spin.probe_gap_ns

(* Wake-strategy adaptation: when signals keep finding a crowd, one
   broadcast replaces a train of signal calls (ActiveMonitor's
   monitor-reconfiguration observation); when waiters are scarce,
   broadcast would only cause thundering-herd wakeups, so fall back to
   single-thread signalling. As a spec: two configurations (signal-only
   and broadcast) switched on the waiter count seen at signal time. *)
let policy_spec ?(name = "adaptive-condition") ?attribute ?(broadcast_over = 4) () =
  let module Spec = Adaptive_core.Policy.Spec in
  let cost = Adaptive_core.Cost.reads_writes 1 1 in
  {
    Spec.s_name = name;
    s_kind = "condition";
    s_attribute =
      (match attribute with Some a -> a | None -> name ^ ".broadcast-hint");
    s_metric = "waiting-at-signal";
    s_monotone = Spec.Up_at_high;
    s_configs =
      [
        { Spec.c_name = "signal-only"; c_value = 0 };
        { Spec.c_name = "broadcast"; c_value = 1 };
      ];
    s_initial = 0;
    s_transitions =
      [
        {
          Spec.t_from = 0;
          t_cond = Spec.cond broadcast_over;
          t_target = 1;
          t_label = "escalate-broadcast";
          t_repeats = 1;
          t_cost = cost;
        };
        {
          Spec.t_from = 1;
          t_cond = Spec.cond 0 ~hi:1;
          t_target = 0;
          t_label = "signal-only";
          t_repeats = 1;
          t_cost = cost;
        };
      ];
    s_guard = None;
  }

let create ?node ?(name = "adaptive-condition") ?(period = 2) ?(broadcast_over = 4) ()
    =
  (* [broadcast_over <= 1] overlaps the de-escalation band (waiters <=
     1): one waiter would escalate on this signal and de-escalate on
     the next, adapting forever — the checker's thrash cycle. *)
  if broadcast_over < 2 then
    invalid_arg "Adaptive_condition.create: broadcast_over must be at least 2";
  let signal_seq = Ops.alloc1 ?node () in
  Ops.mark_sync_words [| signal_seq |];
  let home = match node with Some p -> p | None -> Ops.my_processor () in
  let rec t =
    lazy
      {
        guard = Spin.create ?node ();
        sleepers = [];
        signal_seq;
        spin_ns = Attribute.make_at ~name:"wait-spin-ns" ~node:home 0;
        broadcast_hint = Attribute.make_at ~name:"broadcast-hint" ~node:home false;
        loop =
          Adaptive.create ~name ~kind:"condition"
            ~spec:(policy_spec ~name ~broadcast_over ()) ~home
            ~sensor:
              (Sensor.make ~name:"waiting-at-signal" ~period (fun () ->
                   let c = Lazy.force t in
                   {
                     waiting = List.length c.sleepers;
                     broadcast = Attribute.get c.broadcast_hint;
                   }))
            ~policy:
              (Policy.Spec.compile
                 (policy_spec ~name ~broadcast_over ())
                 ~read:(fun () ->
                   if Attribute.get (Lazy.force t).broadcast_hint then 1 else 0)
                 ~apply:(fun v ->
                   Attribute.set (Lazy.force t).broadcast_hint (v = 1);
                   true)
                 ~metric:(fun obs -> obs.waiting))
            ();
      }
  in
  Lazy.force t

let wait t mu =
  Spin.lock t.guard;
  t.sleepers <- t.sleepers @ [ Ops.self () ];
  Spin.unlock t.guard;
  (* Release the monitor mutex only after registering, so a signal
     racing with this wait cannot be lost (the wake token absorbs an
     early wakeup). *)
  Spin.unlock mu;
  (* Spin phase: watch the signal sequence word purely as a hint. The
     wakeup targets a specific thread, so seeing a bump does not mean
     it was for us — which is why the phase ALWAYS ends in [block]:
     if our signal arrived during the spin, the pending wake token
     makes [block] return immediately (saving the deschedule/resume
     pair); otherwise we sleep as the fixed condition does. Skipping
     [block] would leak the token into our next unrelated block. *)
  let budget = Attribute.get t.spin_ns in
  if budget > 0 then begin
    let seq0 = Ops.read t.signal_seq in
    (* Fused hint poll: sequence read plus the gap while unchanged; the
       budget-exhausted exit pays the loop-condition read as before. *)
    let rec poll spent =
      if spent < budget then begin
        if Ops.read_hint ~gap_ns:probe_gap_ns ~expect:seq0 t.signal_seq = seq0 then
          poll (spent + probe_gap_ns)
      end
      else ignore (Ops.read t.signal_seq : int)
    in
    poll 0
  end;
  Ops.block ();
  Spin.lock mu

let wake_all t =
  Spin.lock t.guard;
  let sleepers = t.sleepers in
  t.sleepers <- [];
  Ops.write t.signal_seq (Ops.read t.signal_seq + 1);
  Spin.unlock t.guard;
  List.iter Ops.wakeup sleepers

let signal t =
  (* Tick before dequeuing so the sensor sees the pre-wake crowd. *)
  ignore (Adaptive.tick t.loop);
  if Attribute.get t.broadcast_hint then wake_all t
  else begin
    Spin.lock t.guard;
    match t.sleepers with
    | [] -> Spin.unlock t.guard
    | tid :: rest ->
      t.sleepers <- rest;
      Ops.write t.signal_seq (Ops.read t.signal_seq + 1);
      Spin.unlock t.guard;
      Ops.wakeup tid
  end

let broadcast t =
  ignore (Adaptive.tick t.loop);
  wake_all t

let waiting t = List.length t.sleepers
let spin_budget_ns t = Attribute.get t.spin_ns
let spin_attr t = t.spin_ns
let broadcast_attr t = t.broadcast_hint
let broadcasting t = Attribute.get t.broadcast_hint
let loop t = t.loop
