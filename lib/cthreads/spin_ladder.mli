(** Shared spec builder for doubling spin-budget ladders.

    The adaptive barrier and semaphore both adapt a nanosecond spin
    budget over the same shape of automaton: configurations are the
    doubling ladder reachable from the initial budget (0, 2 probe gaps,
    then x2 up to a cap), with a [spin-more] step while the metric sits
    at or under [spin_if_under] and a [spin-less] step at or over
    [block_if_over]. This module builds that automaton as a
    {!Adaptive_core.Policy.Spec} so both objects compile the same data
    the static checker inspects. *)

val ladder : step_up:(int -> int) -> step_down:(int -> int) -> int -> int list
(** Closure of [init] under [step_up]/[step_down], sorted ascending —
    the reachable budget values. *)

val spec :
  name:string ->
  kind:string ->
  attribute:string ->
  metric:string ->
  spin_if_under:int ->
  block_if_over:int ->
  step_up:(int -> int) ->
  step_down:(int -> int) ->
  max_spin:int ->
  int ->
  Adaptive_core.Policy.Spec.t
(** [spec ... init] has one config per ladder value, a [spin-more]
    transition (metric in [[0, spin_if_under]]) from every config below
    [max_spin], and a [spin-less] transition (metric at least
    [block_if_over]) from every nonzero config; the spin-more step is
    tried first, matching the pre-IR closures' if/else-if order. *)
