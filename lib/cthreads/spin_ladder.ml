module Policy = Adaptive_core.Policy
module Cost = Adaptive_core.Cost

let ladder ~step_up ~step_down init =
  let rec close seen frontier =
    match frontier with
    | [] -> List.sort compare seen
    | v :: rest ->
      let nexts =
        List.sort_uniq compare
          (List.filter (fun v' -> not (List.mem v' seen)) [ step_up v; step_down v ])
      in
      close (seen @ nexts) (rest @ nexts)
  in
  close [ init ] [ init ]

(* Transitions mirror the pre-IR closures exactly: per config the
   spin-more step is tried first (the old if/else-if order), each step
   costs one read + one write (the [Policy.reconfigure] default), and a
   step that would not move the budget is omitted rather than emitted
   as a self-loop. *)
let spec ~name ~kind ~attribute ~metric ~spin_if_under ~block_if_over ~step_up
    ~step_down ~max_spin init =
  let values = ladder ~step_up ~step_down init in
  let configs =
    List.map
      (fun v -> { Policy.Spec.c_name = string_of_int v ^ "ns"; c_value = v })
      values
  in
  let transitions =
    List.concat_map
      (fun v ->
        (if v < max_spin && step_up v <> v then
           [
             {
               Policy.Spec.t_from = v;
               t_cond = Policy.Spec.cond 0 ~hi:spin_if_under;
               t_target = step_up v;
               t_label = "spin-more";
               t_repeats = 1;
               t_cost = Cost.reads_writes 1 1;
             };
           ]
         else [])
        @
        if v > 0 && step_down v <> v then
          [
            {
              Policy.Spec.t_from = v;
              t_cond = Policy.Spec.cond block_if_over;
              t_target = step_down v;
              t_label = "spin-less";
              t_repeats = 1;
              t_cost = Cost.reads_writes 1 1;
            };
          ]
        else [])
      values
  in
  {
    Policy.Spec.s_name = name;
    s_kind = kind;
    s_attribute = attribute;
    s_metric = metric;
    s_monotone = Policy.Spec.Up_at_low;
    s_configs = configs;
    s_initial = init;
    s_transitions = transitions;
    s_guard = None;
  }
