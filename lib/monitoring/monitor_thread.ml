open Butterfly

type 'a t = {
  mutable thread : Cthreads.Cthread.t;
  stop_flag : bool ref;
  mutable processed_count : int;
  mutable max_lag : int;
}

let default_poll_ns = 100_000

let start_gen ?(name = "monitor-thread") ?(poll_interval_ns = default_poll_ns) ~proc ~ring
    ~handle () =
  let stop_flag = ref false in
  let t =
    { thread = Cthreads.Cthread.of_id 0; stop_flag; processed_count = 0; max_lag = 0 }
  in
  let rec drain () =
    match Ring_buffer.consume ring with
    | Some record ->
      (* The general-purpose monitor's per-record processing cost. *)
      Ops.work_instrs Locks.Lock_costs.monitor_sample_instrs;
      handle t record;
      t.processed_count <- t.processed_count + 1;
      drain ()
    | None -> ()
  in
  let body () =
    while not !stop_flag do
      drain ();
      Ops.delay poll_interval_ns
    done;
    drain ()
  in
  t.thread <- Cthreads.Cthread.fork ~name ~proc body;
  t

let start ?name ?poll_interval_ns ~proc ~ring ~deliver () =
  start_gen ?name ?poll_interval_ns ~proc ~ring ~handle:(fun _t record -> deliver record) ()

let start_timestamped ?name ?poll_interval_ns ~proc ~ring ~deliver () =
  start_gen ?name ?poll_interval_ns ~proc ~ring
    ~handle:(fun t (published_at, value) ->
      let lag = Ops.now () - published_at in
      if lag > t.max_lag then t.max_lag <- lag;
      deliver value)
    ()

let start_registry ?(name = "registry-monitor") ?(poll_interval_ns = default_poll_ns)
    ~proc () =
  let stop_flag = ref false in
  let t =
    { thread = Cthreads.Cthread.of_id 0; stop_flag; processed_count = 0; max_lag = 0 }
  in
  let sweep () =
    let n = Adaptive_core.Registry.size () in
    if n > 0 then begin
      (* Each driven object pays the general monitor's per-record
         processing cost, same as the ring-buffer path. *)
      Ops.work_instrs (Locks.Lock_costs.monitor_sample_instrs * n);
      ignore (Adaptive_core.Registry.drive_all ());
      t.processed_count <- t.processed_count + n
    end
  in
  let body () =
    while not !stop_flag do
      sweep ();
      Ops.delay poll_interval_ns
    done
  in
  t.thread <- Cthreads.Cthread.fork ~name ~proc body;
  t

let stop t =
  t.stop_flag := true;
  Cthreads.Cthread.join t.thread

let processed t = t.processed_count
let max_lag_ns t = t.max_lag
