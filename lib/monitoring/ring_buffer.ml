open Butterfly

type 'a t = {
  slots : 'a option array;  (* host payloads; cursors are simulated *)
  capacity : int;
  head : Memory.addr;  (* next unread index *)
  tail : Memory.addr;  (* next free index *)
  data : Memory.addr;  (* representative data word: publishing writes it *)
  mutable publish_count : int;
  mutable consume_count : int;
  mutable drop_count : int;
}

let create ?(capacity = 256) ~home () =
  if capacity <= 0 then invalid_arg "Ring_buffer.create: capacity must be positive";
  let words = Ops.alloc ~node:home 3 in
  Ops.mark_sync_words words;
  {
    slots = Array.make capacity None;
    capacity;
    head = words.(0);
    tail = words.(1);
    data = words.(2);
    publish_count = 0;
    consume_count = 0;
    drop_count = 0;
  }

let publish t v =
  let idx = Ops.fetch_and_add t.tail 1 in
  (* Host slot assignment is atomic w.r.t. the simulation (it happens
     between effects), so the consumer can never observe a claimed but
     unwritten slot. *)
  if t.slots.(idx mod t.capacity) <> None then t.drop_count <- t.drop_count + 1;
  t.slots.(idx mod t.capacity) <- Some v;
  t.publish_count <- t.publish_count + 1;
  (* The record payload itself travels to the buffer's home node. *)
  Ops.write t.data idx

let consume t =
  let head = Ops.read t.head in
  let tail = Ops.read t.tail in
  if head >= tail then None
  else begin
    match t.slots.(head mod t.capacity) with
    | None ->
      (* Overwritten before we got here: skip it. *)
      Ops.write t.head (head + 1);
      None
    | Some v ->
      t.slots.(head mod t.capacity) <- None;
      t.consume_count <- t.consume_count + 1;
      Ops.write t.head (head + 1);
      Some v
  end

let length t = max 0 (Ops.read t.tail - Ops.read t.head)
let published t = t.publish_count
let consumed t = t.consume_count
let dropped t = t.drop_count
