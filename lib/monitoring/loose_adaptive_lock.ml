open Butterfly
module AL = Locks.Adaptive_lock
module Adaptive = Adaptive_core.Adaptive
module Sensor = Adaptive_core.Sensor

type t = {
  reconf : Locks.Reconfigurable_lock.t;
  ring : (int * int) Ring_buffer.t;
  monitor : (int * int) Monitor_thread.t;
  budget : Locks.Spin_budget.t;
  loop : int Adaptive.t;
  sample_period : int;
  mutable unlocks_until_sample : int;
}

let waiting_count reconf =
  Locks.Lock_core.waiting_now (Locks.Reconfigurable_lock.core reconf)

let create ?(name = "loose-adaptive-lock") ?trace ?(params = AL.default_params)
    ?ring_capacity ?poll_interval_ns ~home ~monitor_proc () =
  let waiting = Locks.Waiting.combined ~node:home ~spins:params.AL.n () in
  let reconf = Locks.Reconfigurable_lock.create ~name ?trace ~policy:waiting ~home () in
  let ring = Ring_buffer.create ?capacity:ring_capacity ~home () in
  let budget =
    Locks.Spin_budget.create ~threshold:params.AL.waiting_threshold ~n:params.AL.n
      ~cap:params.AL.spin_cap ~init:params.AL.n
  in
  (* External agent path: the monitor thread must own the attributes
     to reconfigure them. The policy itself — stepping the budget and
     mapping it onto the waiting attributes — is the exact
     [simple-adapt] plumbing the closely-coupled lock uses
     ({!Locks.Adaptive_lock.budget_policy}); only the [apply] differs. *)
  let apply () =
    if Locks.Reconfigurable_lock.acquire_ownership reconf then begin
      Locks.Spin_budget.apply budget
        (Locks.Lock_core.policy (Locks.Reconfigurable_lock.core reconf));
      Locks.Lock_stats.on_reconfigure (Locks.Reconfigurable_lock.stats reconf);
      Locks.Reconfigurable_lock.release_ownership reconf;
      true
    end
    else false (* lost the ownership race: nothing changed, don't count it *)
  in
  let loop =
    Adaptive.create ~name ~kind:"lock" ~spec:(Locks.Spin_budget.spec_of budget) ~home
      ~sensor:
        (Sensor.make ~name:(name ^ ".no-of-waiting-threads") ~overhead_instrs:40
           (fun () -> waiting_count reconf))
      ~policy:(AL.budget_policy ~budget ~apply)
      ()
  in
  (* The loosely-coupled feedback path: the monitor thread drains the
     ring and feeds each (possibly stale) observation to the loop. *)
  let monitor =
    Monitor_thread.start_timestamped ~name:(name ^ ".monitor") ?poll_interval_ns
      ~proc:monitor_proc ~ring
      ~deliver:(fun waiting -> ignore (Adaptive.feed loop waiting))
      ()
  in
  {
    reconf;
    ring;
    monitor;
    budget;
    loop;
    sample_period = params.AL.sample_period;
    unlocks_until_sample = params.AL.sample_period;
  }

let lock t = Locks.Reconfigurable_lock.lock t.reconf

let unlock t =
  Locks.Reconfigurable_lock.unlock t.reconf;
  t.unlocks_until_sample <- t.unlocks_until_sample - 1;
  if t.unlocks_until_sample <= 0 then begin
    t.unlocks_until_sample <- t.sample_period;
    Ring_buffer.publish t.ring (Ops.now (), waiting_count t.reconf)
  end

let stats t = Locks.Reconfigurable_lock.stats t.reconf
let shutdown t = Monitor_thread.stop t.monitor
let feedback t = t.loop
let adaptations t = Adaptive.adaptations t.loop
let observations_published t = Ring_buffer.published t.ring
let observations_processed t = Monitor_thread.processed t.monitor
let max_lag_ns t = Monitor_thread.max_lag_ns t.monitor
let mode t = Locks.Spin_budget.mode t.budget
