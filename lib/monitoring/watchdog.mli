(** Stall watchdog: a simulated polling thread that turns silent hangs
    into structured aborts.

    The watchdog wakes every [poll_interval_ns] of virtual time and
    fingerprints the machine's progress (per-thread cpu consumed by
    everyone but itself, total memory accesses, live-thread count).
    A poll counts as stale only when the fingerprint is unchanged
    {e and} no other thread is queued for a future dispatch — a
    sibling mid-[Ops.work] or mid-[Ops.delay] is pending progress, not
    a stall, even though its clock only moves at dispatch granularity.
    After [stale_limit] consecutive stale polls it calls
    {!Butterfly.Sched.request_abort}, so {!Butterfly.Sched.run_outcome}
    returns [Aborted] with reason [Stop_requested] and a full
    diagnostic dump instead of hanging or dying on an opaque
    exception.

    Note that a machine hosting a watchdog can never raise
    {!Butterfly.Sched.Deadlock} on its own — the watchdog thread is
    always runnable — which is exactly why the watchdog must detect
    the stall itself. Detection latency is bounded by
    [poll_interval_ns * stale_limit] of virtual time. Spinning threads
    (a livelock behind a killed lock holder) are progress by this
    definition; bounding those is the event budget's job, not the
    watchdog's.

    The fingerprint is computed from deterministic simulator state
    only, so watchdog behaviour (including whether and when it fires)
    is bit-for-bit reproducible. *)

type t

val start :
  ?name:string ->
  ?proc:int ->
  ?poll_interval_ns:int ->
  ?stale_limit:int ->
  ?track_adaptations:bool ->
  sched:Butterfly.Sched.t ->
  unit ->
  t
(** Fork the watchdog thread (must be called from inside the
    simulation, e.g. at the top of the main thread). Defaults: [proc]
    0, [poll_interval_ns] 200_000, [stale_limit] 5.

    With [track_adaptations] (default false) the watchdog also
    subscribes to every object in [Core.Registry] — including objects
    registered after it starts — and folds the adaptation-event count
    into its progress fingerprint: a reconfiguring object counts as
    progress, and the abort diagnostic names the last adaptation seen
    before the stall. *)

val stop : t -> unit
(** Ask the watchdog to exit and join it — call when the workload
    completed so the run can terminate cleanly. *)

val polls : t -> int
(** Polls performed so far. *)

val fired : t -> bool
(** Whether the watchdog requested an abort. *)

val adaptation_events : t -> int
(** Adaptation events observed via registry subscriptions (always 0
    unless started with [~track_adaptations:true]). *)
