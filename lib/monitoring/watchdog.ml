open Butterfly
module Registry = Adaptive_core.Registry

type t = {
  mutable thread : Cthreads.Cthread.t;
  stop_flag : bool ref;
  mutable polls : int;
  mutable fired : bool;
  mutable adaptation_events : int;
  mutable last_event : Adaptive_core.Registry.event option;
}

let default_poll_ns = 200_000
let default_stale_limit = 5

(* Progress as seen from outside the watchdog itself: cpu consumed by
   every other thread, memory traffic, and the live-thread count. Any
   of these moving between two polls means the machine is not stalled. *)
let fingerprint sched ~self_tid =
  let cpu =
    List.fold_left
      (fun acc (tid, _name, cpu_ns) -> if tid = self_tid then acc else acc + cpu_ns)
      0 (Sched.thread_report sched)
  in
  (cpu, Memory.total_accesses (Sched.memory sched), Sched.live_threads sched)

(* Threads queued for a future dispatch. The poll body runs while the
   watchdog itself is dispatched (popped from its queue), so every
   queued thread counted here is someone else's pending progress: a
   long work slice advances a sibling's clock far ahead in one
   dispatch, and until the watchdog's own virtual clock catches up the
   machine looks frozen — but the sibling is still queued. Only a
   machine with nothing queued anywhere can be stalled. *)
let runnable_others sched =
  let n = (Sched.config sched).Butterfly.Config.processors in
  let total = ref 0 in
  for p = 0 to n - 1 do
    total := !total + Sched.runq_length sched p
  done;
  !total

let start ?(name = "watchdog") ?(proc = 0) ?(poll_interval_ns = default_poll_ns)
    ?(stale_limit = default_stale_limit) ?(track_adaptations = false) ~sched () =
  if poll_interval_ns <= 0 || stale_limit <= 0 then invalid_arg "Watchdog.start";
  let stop_flag = ref false in
  let t =
    { thread = Cthreads.Cthread.of_id 0; stop_flag; polls = 0; fired = false;
      adaptation_events = 0; last_event = None }
  in
  let on_event ev =
    t.adaptation_events <- t.adaptation_events + 1;
    t.last_event <- Some ev
  in
  let body () =
    let self_tid = Cthreads.Cthread.id (Cthreads.Cthread.self ()) in
    (* Adaptation events are progress too: an object reconfiguring
       between polls proves its feedback loop is alive even when the
       cpu/memory fingerprint happens to repeat. Each poll also picks
       up objects registered since the last one. *)
    let registry_cursor =
      ref (if track_adaptations then Registry.subscribe_from 0 on_event else 0)
    in
    let last = ref (fingerprint sched ~self_tid, t.adaptation_events) in
    let stale = ref 0 in
    let stalled = ref false in
    while not (!stop_flag || !stalled) do
      Cthreads.Cthread.delay poll_interval_ns;
      t.polls <- t.polls + 1;
      if track_adaptations then
        registry_cursor := Registry.subscribe_from !registry_cursor on_event;
      let now = (fingerprint sched ~self_tid, t.adaptation_events) in
      if now = !last && runnable_others sched = 0 then begin
        incr stale;
        if !stale >= stale_limit then begin
          t.fired <- true;
          stalled := true;
          let adaptation_note =
            match t.last_event with
            | None -> ""
            | Some ev ->
              Printf.sprintf "; last adaptation: %s %s -> %s at t=%d" ev.Registry.obj_kind
                ev.Registry.obj_name ev.Registry.label ev.Registry.at
          in
          Sched.request_abort sched
            (Printf.sprintf
               "watchdog: no thread progress across %d polls (%d ns of virtual time, \
                stalled since t=%d)%s"
               stale_limit (stale_limit * poll_interval_ns)
               (Ops.now () - (stale_limit * poll_interval_ns))
               adaptation_note)
        end
      end
      else begin
        stale := 0;
        last := now
      end
    done
  in
  t.thread <- Cthreads.Cthread.fork ~name ~proc body;
  t

let stop t =
  t.stop_flag := true;
  Cthreads.Cthread.join t.thread

let polls t = t.polls
let fired t = t.fired
let adaptation_events t = t.adaptation_events
