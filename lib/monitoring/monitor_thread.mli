(** The general-purpose thread monitor [GS93]: a local monitor thread
    on a dedicated processor that receives trace data from application
    threads, performs low-level processing, and forwards observations
    to a consumer (a central collector or an adaptation module).

    This is the {e loosely-coupled} alternative to the customized
    in-line lock monitor: records traverse a {!Ring_buffer}, the
    monitor polls, and each record pays the general monitor's
    processing cost ({!Locks.Lock_costs.monitor_sample_instrs}, the
    66 us of Table 8). The coupling ablation measures the resulting
    adaptation lag. *)

type 'a t

val start :
  ?name:string ->
  ?poll_interval_ns:int ->
  proc:int ->
  ring:'a Ring_buffer.t ->
  deliver:('a -> unit) ->
  unit ->
  'a t
(** Fork the monitor thread pinned to [proc]. It drains the ring,
    charging the per-record processing cost and calling [deliver] for
    each record; when the ring is empty it sleeps [poll_interval_ns]
    (default 100 us, the sampling granularity of the general
    monitor). *)

val stop : 'a t -> unit
(** Ask the monitor to finish: it drains remaining records and exits;
    [stop] joins it. Must be called before the simulation can
    terminate. *)

val processed : 'a t -> int

val max_lag_ns : 'a t -> int
(** Largest observed delivery lag, provided records are (timestamp,
    value) pairs registered through {!start}'s [deliver] wrapping — see
    {!start_timestamped}. Returns 0 for untimestamped monitors. *)

val start_registry :
  ?name:string -> ?poll_interval_ns:int -> proc:int -> unit -> unit t
(** A registry-wide monitor: every [poll_interval_ns] it forces one
    sense-decide cycle on {e every} object in [Core.Registry]
    ([Registry.drive_all]) — one monitor thread drives all registered
    adaptive objects, charging the general monitor's per-record
    processing cost for each. [processed] counts objects driven. *)

val start_timestamped :
  ?name:string ->
  ?poll_interval_ns:int ->
  proc:int ->
  ring:(int * 'a) Ring_buffer.t ->
  deliver:('a -> unit) ->
  unit ->
  (int * 'a) t
(** Like {!start} for rings of (publish-time, value) records: the
    monitor measures delivery lag (now - publish time) before handing
    the value to [deliver]. *)
