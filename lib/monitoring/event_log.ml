open Butterfly

type t = {
  mutable data : Sched.event array;
  mutable n : int;
  procs : int;
}

let attach sim =
  let t = { data = Array.make 1024
                     { Sched.time = 0; proc = 0; tid = 0; kind = Sched.Ev_fork; other = -1 };
            n = 0;
            procs = (Sched.config sim).Config.processors } in
  Sched.add_event_hook sim (fun ev ->
      if t.n = Array.length t.data then begin
        let data = Array.make (2 * t.n) ev in
        Array.blit t.data 0 data 0 t.n;
        t.data <- data
      end;
      t.data.(t.n) <- ev;
      t.n <- t.n + 1);
  t

let length t = t.n
let events t = Array.to_list (Array.sub t.data 0 t.n)
let count t kind = Array.fold_left (fun acc ev -> if ev.Sched.kind = kind then acc + 1 else acc) 0
    (Array.sub t.data 0 t.n)

let for_thread t tid =
  List.filter (fun ev -> ev.Sched.tid = tid) (events t)

let blocked_spans t tid =
  let rec pair acc pending = function
    | [] -> List.rev acc
    | ev :: rest -> (
      match (ev.Sched.kind, pending) with
      | Sched.Ev_block, None -> pair acc (Some ev.Sched.time) rest
      | Sched.Ev_wakeup, Some t0 -> pair ((t0, ev.Sched.time) :: acc) None rest
      | _ -> pair acc pending rest)
  in
  pair [] None (for_thread t tid)

let glyph tid =
  let alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  alphabet.[tid mod String.length alphabet]

let timeline ?(width = 72) t ~horizon =
  if horizon <= 0 then invalid_arg "Event_log.timeline: horizon must be positive";
  let lanes = Array.make_matrix t.procs width '.' in
  (* Fill each lane forward from switch events. *)
  let current = Array.make t.procs (-1) in
  let bucket time = min (width - 1) (time * width / horizon) in
  let cursor = Array.make t.procs 0 in
  let advance_to proc b =
    let c = Array.get cursor proc in
    if current.(proc) >= 0 then
      for col = c to min (b - 1) (width - 1) do
        lanes.(proc).(col) <- glyph current.(proc)
      done;
    cursor.(proc) <- max c b
  in
  Array.iter
    (fun ev ->
      match ev.Sched.kind with
      | Sched.Ev_switch when ev.Sched.time <= horizon ->
        let b = bucket ev.Sched.time in
        advance_to ev.Sched.proc b;
        current.(ev.Sched.proc) <- ev.Sched.tid
      | _ -> ())
    (Array.sub t.data 0 t.n);
  for proc = 0 to t.procs - 1 do
    advance_to proc width
  done;
  let buf = Buffer.create ((width + 16) * t.procs) in
  Buffer.add_string buf
    (Printf.sprintf "execution timeline (0 .. %.2f ms, one glyph per thread):\n"
       (float_of_int horizon /. 1e6));
  Array.iteri
    (fun proc lane ->
      Buffer.add_string buf (Printf.sprintf "p%-2d |" proc);
      Buffer.add_string buf (String.init width (fun c -> lane.(c)));
      Buffer.add_char buf '\n')
    lanes;
  Buffer.contents buf

let summary t =
  let kinds =
    [
      Sched.Ev_fork;
      Sched.Ev_switch;
      Sched.Ev_preempt;
      Sched.Ev_block;
      Sched.Ev_wakeup;
      Sched.Ev_token;
      Sched.Ev_token_use;
      Sched.Ev_join;
      Sched.Ev_finish;
    ]
  in
  String.concat ", "
    (List.map (fun k -> Printf.sprintf "%s=%d" (Sched.event_kind_name k) (count t k)) kinds)
