(** A loosely-coupled adaptive lock: same [simple-adapt] policy as
    {!Locks.Adaptive_lock}, but the feedback loop runs through the
    general-purpose monitor.

    Every [sample_period]-th unlock publishes (timestamp,
    waiting-thread count) into a {!Ring_buffer}; a {!Monitor_thread} on
    a dedicated processor drains the buffer and feeds each (possibly
    stale) observation to a genuine [Adaptive_core.Adaptive] loop via
    [Adaptive.feed] — the policy is the same [simple-adapt] plumbing
    the closely-coupled lock uses
    ({!Locks.Adaptive_lock.budget_policy}); only the [apply] differs,
    acquiring attribute ownership the way an external agent must. The
    paper found exactly this structure "too loosely coupled to be used
    in adaptive lock objects"; the coupling ablation quantifies that
    claim by comparing this lock against the built-in closely-coupled
    one. *)

type t

val create :
  ?name:string ->
  ?trace:bool ->
  ?params:Locks.Adaptive_lock.params ->
  ?ring_capacity:int ->
  ?poll_interval_ns:int ->
  home:int ->
  monitor_proc:int ->
  unit ->
  t
(** The monitor thread is forked immediately, pinned to
    [monitor_proc] (dedicate that processor: do not place application
    threads there). *)

val lock : t -> unit
val unlock : t -> unit
val stats : t -> Locks.Lock_stats.t

val shutdown : t -> unit
(** Stop and join the monitor thread (required before the simulation
    can finish). *)

val feedback : t -> int Adaptive_core.Adaptive.t
(** The lock's loosely-coupled feedback loop (registered in
    [Core.Registry] like every adaptive object). *)

val adaptations : t -> int
val observations_published : t -> int
val observations_processed : t -> int

val max_lag_ns : t -> int
(** Worst observation staleness seen by the policy — the adaptation
    lag of §3's "coupling of the feedback loop". *)

val mode : t -> string
