(** Recorder for the scheduler's structured event stream.

    Attach one to a machine before running to capture every scheduling
    action (forks, switches, preemptions, blocks, wakeups, finishes),
    then query counts or render an execution timeline — the offline
    half of the general-purpose monitoring story [GS93], complementing
    the on-line ring-buffer path. *)

type t

val attach : Butterfly.Sched.t -> t
(** Subscribe a recorder to a machine's event bus. Must be called
    before [Sched.run]. Attaching is composable: it never displaces
    other observers, so several logs (or a log and the sanitizers of
    [lib/analysis]) can watch the same run, each receiving every
    event. *)

val length : t -> int

val events : t -> Butterfly.Sched.event list
(** All recorded events, oldest first. *)

val count : t -> Butterfly.Sched.event_kind -> int

val for_thread : t -> int -> Butterfly.Sched.event list
(** Events involving one thread, oldest first. *)

val blocked_spans : t -> int -> (int * int) list
(** [(block-time, wakeup-time)] pairs for a thread, derived from its
    block/wakeup events (an unmatched final block yields no pair). *)

val timeline : ?width:int -> t -> horizon:int -> string
(** ASCII execution timeline: one lane per processor, one column per
    time bucket up to [horizon] ns; each cell shows the thread that
    last switched onto the processor in that bucket ('.' when none,
    digits/letters for tids modulo 62). *)

val summary : t -> string
(** One line per event kind with its count. *)
