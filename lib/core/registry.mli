(** Per-domain registry of live adaptive objects.

    Every {!Adaptive.t} self-registers at creation, so monitors,
    experiments and the [repro objects] CLI can enumerate the whole
    thread package's adaptive objects — locks, barriers, conditions,
    semaphores, rw-locks — without each library exporting its own
    metrics plumbing.

    State is domain-local (the [Ops.annotations_flag] pattern): an
    [Engine.Runner] simulation runs wholly on one host domain, so
    concurrent simulations never see each other's objects, and
    snapshot order is the run's deterministic object-creation order —
    which is what makes registry JSON byte-identical at any
    [--domains] count. The registry resets itself at the start of
    every [Sched.run] (via [Sched.at_run_start]), so entries never
    leak from a finished run into the next one on the same domain;
    {!reset} remains available for host-side tests that register
    synthetic entries outside a run. *)

type event = {
  at : int;  (** virtual time of the reconfiguration *)
  obj_name : string;
  obj_kind : string;  (** object family, e.g. ["lock"], ["barrier"] *)
  label : string;  (** transition label from the policy's decision *)
}
(** One applied reconfiguration, as delivered to {!Adaptive.subscribe}
    hooks. *)

type stats = {
  samples : int;
  policy_runs : int;
  adaptations : int;
  total_cost : Cost.t;
  last_label : string option;
  log : (int * string) list;  (** (virtual time, label), oldest first *)
}
(** Typed metrics snapshot of one object's feedback loop. *)

type metrics = {
  id : int;
  name : string;
  kind : string;
  stats : stats;
  spec : Policy.Spec.t option;
      (** the declared adaptation-policy spec, when the object supplied
          one at registration — what {!validate_log} checks the
          recorded log against *)
}
(** [id] is the registration ordinal within the current run. *)

val reset : unit -> unit
(** Forget every registered object on the calling domain. Runs
    automatically at the start of every [Sched.run]. *)

val register :
  name:string ->
  kind:string ->
  stats:(unit -> stats) ->
  ?subscribe:((event -> unit) -> unit) ->
  ?drive:(unit -> bool) ->
  ?spec:Policy.Spec.t ->
  unit ->
  int
(** Register an object; returns its registry id. [stats] is consulted
    lazily at snapshot time. [subscribe] lets {!subscribe_all} attach
    adaptation-event hooks; [drive] (when given) forces one
    sense-decide cycle — {!drive_all} uses it so a monitoring thread
    can run every loosely-drivable object. Called by
    [Adaptive.create]; most clients never call this directly. *)

val size : unit -> int

val snapshot : unit -> metrics list
(** Current metrics of every registered object, in registration
    order. *)

val validate_log : metrics -> (unit, string) result option
(** {!Formal.check_log} of the object's recorded adaptation log
    against its declared spec's configuration space ([None] when the
    object registered without a spec). Surfaced per object in
    {!to_json} as [policy_valid] / [policy_violation] — how
    [repro objects] reports protocol-level log violations. *)

val subscribe_all : (event -> unit) -> unit
(** Attach [f] as an adaptation-event hook on every currently
    registered object (objects registered later are not included). *)

val subscribe_from : int -> (event -> unit) -> int
(** [subscribe_from id f] attaches [f] only to objects with registry
    id >= [id] and returns the id one past the newest entry — pass it
    back on the next call to subscribe to objects registered since
    (how a periodically-polling consumer like the watchdog keeps up
    without double-subscribing). *)

val drive_all : unit -> int
(** Force one sense-decide cycle on every drivable object; returns how
    many applied a reconfiguration. An object whose drive raises
    {!Attribute.Not_owner} (an external agent concurrently holds its
    attributes) is skipped for this sweep rather than letting the
    exception take down the driving thread. *)

val to_json : metrics list -> string
(** Deterministic JSON document (stable bytes across hosts and domain
    counts) with per-object metrics and aggregate counts. *)
