(** The paper's formal characterization of configurable objects (§3.1).

    An object's state is [SV = IV ∪ CV]: internal variables plus the
    mutable attributes. The attribute instances form the policy set Φ,
    the method implementations the set Γ, and the configuration space
    is [C = Γ × Φ]. Three operation kinds act on it:

    - Υ (state transition) touches only [IV],
    - Ψ (reconfiguration) moves between configurations,
    - I (initialization) resets everything,

    each with a cost [t = n1 R n2 W] ({!Cost.t}).

    This module gives those notions a concrete, checkable form: declare
    a configuration space, then validate that an adaptive object's
    reconfiguration log stays inside it and only takes allowed edges.
    The test suite uses it to check the adaptive lock's [simple-adapt]
    trajectories against the waiting-policy space of §5.1. *)

type config = {
  gamma : string;  (** method-implementation family, e.g. ["combined"] *)
  phi : (string * string) list;  (** attribute values, sorted by name *)
}

val config : ?phi:(string * string) list -> string -> config
(** [config g] is the configuration with family [g]; [phi] entries are
    normalized (sorted by attribute name). *)

val config_equal : config -> config -> bool
val pp_config : Format.formatter -> config -> unit

type transition = { at : int; from_ : config; to_ : config; cost : Cost.t }
(** One applied Ψ, timestamped in virtual ns. *)

type space

val space :
  configs:config list -> ?edges:(string * string) list -> unit -> space
(** Declare the configuration space. [edges] restricts Ψ to the listed
    (from-gamma, to-gamma) pairs; omitted, any pair of member
    configurations is allowed. Raises [Invalid_argument] on duplicate
    member configurations. *)

val mem : space -> config -> bool
(** Membership considers only declared attribute names: a candidate
    matches a member when the gammas are equal and every attribute the
    member declares has the same value in the candidate. *)

val edge_allowed : space -> from_:config -> to_:config -> bool

val validate : space -> initial:config -> transition list -> (unit, string) result
(** Check a Ψ log: the chain must start at [initial], be contiguous
    (each [from_] equals the previous [to_]), be time-ordered, and use
    only member configurations and allowed edges. Returns a
    human-readable reason on failure. *)

val total_cost : transition list -> Cost.t
(** Costs of composite reconfigurations add (§3.1). *)

val space_of_spec : Policy.Spec.t -> space
(** The configuration space a declared policy spec induces: one member
    per [s_configs] entry (by name, no pinned attributes), with edges
    for every declared transition plus — when the spec carries a
    guardrail — the fallback Ψ from every configuration. *)

val check_log : Policy.Spec.t -> (int * string) list -> (unit, string) result
(** Replay a recorded adaptation log ((virtual time, label), oldest
    first — the {!Registry.stats} log) as a Ψ chain: each label must
    resolve to a declared transition out of the current configuration
    (or the guardrail fallback), and the resulting chain must
    {!validate} against {!space_of_spec}. [Error] pinpoints the first
    label with no declared transition, or the validate failure. *)
