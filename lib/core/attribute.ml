open Butterfly

exception Immutable_attribute of string
exception Not_owner of string

(* The ownership word holds [tid + 1] of the owning thread, 0 when
   free, so that thread 0 can own attributes too. *)
type 'a t = {
  attr_name : string;
  mutable value : 'a;
  mutable is_mutable : bool;
  owner_word : Memory.addr;
  mutable update_count : int;
}

let make_at ~name ?(mutable_ = true) ~node v =
  let owner_word = Ops.alloc1 ~node () in
  Ops.mark_sync_words [| owner_word |];
  { attr_name = name; value = v; is_mutable = mutable_; owner_word; update_count = 0 }

let make ~name ?mutable_ v =
  let node = Ops.my_processor () in
  make_at ~name ?mutable_ ~node v

let name t = t.attr_name
let get t = t.value

(* Ownership violations name the holder, not just the attribute:
   "spin-time (held by thread 3, caller thread 7)". *)
let not_owner_msg t ~holder =
  let me = Ops.self () in
  match holder with
  | 0 -> Printf.sprintf "%s (not owned, caller thread %d)" t.attr_name me
  | h -> Printf.sprintf "%s (held by thread %d, caller thread %d)" t.attr_name (h - 1) me

let set t v =
  if not t.is_mutable then raise (Immutable_attribute t.attr_name);
  let owner = Ops.read t.owner_word in
  if owner <> 0 && owner <> Ops.self () + 1 then
    raise (Not_owner (not_owner_msg t ~holder:owner));
  t.value <- v;
  t.update_count <- t.update_count + 1

let mutability t = t.is_mutable
let set_mutability t b = t.is_mutable <- b

let acquire t =
  let me = Ops.self () + 1 in
  Ops.compare_and_swap t.owner_word ~expected:0 ~desired:me
  || Ops.read t.owner_word = me

let release t =
  let me = Ops.self () + 1 in
  if not (Ops.compare_and_swap t.owner_word ~expected:me ~desired:0) then
    raise (Not_owner (not_owner_msg t ~holder:(Ops.read t.owner_word)))

let owner t =
  match Ops.read t.owner_word with 0 -> None | v -> Some (v - 1)

let updates t = t.update_count
