(** The adaptive-object feedback loop: monitor -> policy -> reconfigure.

    An ['obs t] ties together a {!Sensor} (the built-in monitor
    module), a {!Policy} (user-provided adaptation policy) and the
    reconfiguration mechanism (the decision's [apply] closure, charged
    per its declared {!Cost} at the object's home node). The loop is
    {b closely coupled}: {!tick} is called from within the object's own
    methods (e.g. every unlock), so a decision always acts on the
    current object state — the property §3 argues is needed to avoid
    adaptation lag. The {b loosely coupled} alternative feeds
    observations from an external monitoring thread through {!feed}
    (or lets the monitor force whole cycles with {!poll}); the
    [Monitoring] library builds that variant and the coupling ablation
    compares the two.

    Every loop self-registers in the per-domain {!Registry} at
    creation, so the whole thread package's adaptive objects — locks,
    barriers, conditions, semaphores, rw-locks — are enumerable with
    one call, and {!subscribe} hooks let monitors and analysis observe
    reconfigurations as events instead of polling counters. Each
    applied reconfiguration is also published as an
    [Ops.A_adaptation] annotation, so recorded traces see it in its
    linearized position. *)

type 'obs t

val create :
  ?name:string ->
  ?kind:string ->
  ?spec:Policy.Spec.t ->
  home:int ->
  sensor:'obs Sensor.t ->
  policy:'obs Policy.t ->
  unit ->
  'obs t
(** Must run inside a simulation: allocates the scratch word used to
    charge reconfiguration costs at [home]. [kind] names the object
    family for the registry and annotations (["lock"], ["barrier"],
    ...; default ["object"]). The new loop registers itself in
    {!Registry}; [spec] — the declarative policy spec the running
    policy was compiled from — lets the registry formally check the
    recorded adaptation log against the declared configuration space
    ({!Registry.validate_log}). *)

val name : 'obs t -> string
val kind : 'obs t -> string

val registry_id : 'obs t -> int
(** This loop's id in the per-domain {!Registry}. *)

val subscribe : 'obs t -> (Registry.event -> unit) -> unit
(** [subscribe t f] calls [f] (in subscription order, host-side, free
    of virtual charge) after every applied reconfiguration. *)

val tick : 'obs t -> bool
(** One instrumentation event (closely-coupled path). Runs the sensor
    at its sampling rate; when a sample is produced, runs the policy
    and applies (and charges) any reconfiguration. Returns [true] iff
    a reconfiguration was applied. *)

val feed : 'obs t -> 'obs -> bool
(** Inject an observation directly (loosely-coupled path). Runs the
    policy on it, bypassing the sensor. *)

val poll : 'obs t -> bool
(** Force one full sense-decide cycle regardless of the sensor's
    period (the registry's [drive] hook; what [Monitor_thread] uses to
    drive arbitrary registered objects). *)

val set_policy : 'obs t -> 'obs Policy.t -> unit

val samples : 'obs t -> int
(** Samples actually taken by the sensor via this loop. *)

val policy_runs : 'obs t -> int

val adaptations : 'obs t -> int
(** Reconfigurations applied. *)

val last_label : 'obs t -> string option
(** Label of the most recent reconfiguration. *)

val log : 'obs t -> (int * string) list
(** All applied reconfigurations as (virtual time, label), oldest
    first. *)

val total_cost : 'obs t -> Cost.t
(** Sum of the declared costs of applied reconfigurations. *)

val stats : 'obs t -> Registry.stats
(** The loop's metrics as a registry snapshot record. *)
