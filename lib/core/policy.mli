(** Adaptation policies and reconfiguration decisions.

    A policy is the user-provided component of an adaptive object: it
    consumes an observation from the monitor module and decides whether
    (and how) to reconfigure. A decision carries the reconfiguration
    closure (the paper's Psi operation) together with its declared
    {!Cost.t}, which the feedback loop charges at the object's home
    node when applying it. *)

type decision =
  | No_change
  | Reconfigure of { label : string; cost : Cost.t; apply : unit -> bool }
      (** [label] names the transition for traces and tests; [apply]
          performs the actual attribute/method changes and reports
          whether they took effect — an external-agent apply that
          cannot acquire attribute ownership returns [false], and the
          feedback loop then counts, logs and announces nothing. *)

type 'obs t = 'obs -> decision
(** A policy maps monitor observations to decisions. *)

val no_op : 'obs t
(** Never reconfigures (turns an adaptive object into a merely
    monitored one — the baseline in overhead ablations). *)

val reconfigure : label:string -> ?cost:Cost.t -> (unit -> unit) -> decision
(** Convenience constructor for an apply that always takes effect;
    [cost] defaults to the paper's simple waiting-policy
    reconfiguration, 1R 1W. *)

val reconfigure_checked :
  label:string -> ?cost:Cost.t -> (unit -> bool) -> decision
(** Like {!reconfigure} for an apply that can fail (e.g. an external
    agent that must first win attribute ownership) and reports whether
    it took effect. *)

val compose : 'obs t -> 'obs t -> 'obs t
(** [compose p q] consults [p] first and falls back to [q] when [p]
    decides [No_change]. *)

(** Guardrail state machine usable by any adaptive object: count
    consecutive pathological observations, order a fallback after a
    streak, then suspend counting for a cooldown (hysteresis, so the
    fallback cannot immediately re-trigger). [Locks.Guardrail] wraps
    this with lock-specific clamping; {!guarded} below composes it
    into a policy directly. *)
module Guard : sig
  type t

  val create : ?pathological_limit:int -> ?cooldown:int -> unit -> t
  (** Defaults: 4 consecutive pathological observations trigger a
      fallback; counting suspended for the following 8. *)

  val note : t -> pathological:bool -> bool
  (** Record one observation's verdict; [true] orders a fallback. *)

  val streak : t -> int
  (** Current consecutive pathological-observation count. *)

  val fallbacks : t -> int
  (** Fallbacks ordered so far. *)
end

val guarded :
  guard:Guard.t ->
  clamp:('obs -> 'obs * bool) ->
  fallback:'obs t ->
  'obs t ->
  'obs t
(** [guarded ~guard ~clamp ~fallback p] filters every observation
    before [p] sees it: [clamp] returns the sanitized observation and
    whether the raw one was pathological; when [guard] reports a
    pathological streak, [fallback] decides instead of [p] (typically
    a reset to the object's default configuration). *)

val with_hysteresis : min_gap:int -> 'obs t -> 'obs t
(** Suppress reconfigurations closer than [min_gap] virtual ns to the
    previous applied one (a guard against thrashing; must run inside
    the simulation because it reads the virtual clock). *)
