(** Adaptation policies and reconfiguration decisions.

    A policy is the user-provided component of an adaptive object: it
    consumes an observation from the monitor module and decides whether
    (and how) to reconfigure. A decision carries the reconfiguration
    closure (the paper's Psi operation) together with its declared
    {!Cost.t}, which the feedback loop charges at the object's home
    node when applying it. *)

type decision =
  | No_change
  | Reconfigure of { label : string; cost : Cost.t; apply : unit -> bool }
      (** [label] names the transition for traces and tests; [apply]
          performs the actual attribute/method changes and reports
          whether they took effect — an external-agent apply that
          cannot acquire attribute ownership returns [false], and the
          feedback loop then counts, logs and announces nothing. *)

type 'obs t = 'obs -> decision
(** A policy maps monitor observations to decisions. *)

type 'obs policy = 'obs t
(** Alias so submodules (e.g. {!Spec}) can name the closure form. *)

val no_op : 'obs t
(** Never reconfigures (turns an adaptive object into a merely
    monitored one — the baseline in overhead ablations). *)

val reconfigure : label:string -> ?cost:Cost.t -> (unit -> unit) -> decision
(** Convenience constructor for an apply that always takes effect;
    [cost] defaults to the paper's simple waiting-policy
    reconfiguration, 1R 1W. *)

val reconfigure_checked :
  label:string -> ?cost:Cost.t -> (unit -> bool) -> decision
(** Like {!reconfigure} for an apply that can fail (e.g. an external
    agent that must first win attribute ownership) and reports whether
    it took effect. *)

val compose : 'obs t -> 'obs t -> 'obs t
(** [compose p q] consults [p] first and falls back to [q] when [p]
    decides [No_change]. *)

(** Guardrail state machine usable by any adaptive object: count
    consecutive pathological observations, order a fallback after a
    streak, then suspend counting for a cooldown (hysteresis, so the
    fallback cannot immediately re-trigger). [Locks.Guardrail] wraps
    this with lock-specific clamping; {!guarded} below composes it
    into a policy directly. *)
module Guard : sig
  type t

  val create : ?pathological_limit:int -> ?cooldown:int -> unit -> t
  (** Defaults: 4 consecutive pathological observations trigger a
      fallback; counting suspended for the following 8. *)

  val note : t -> pathological:bool -> bool
  (** Record one observation's verdict; [true] orders a fallback. *)

  val streak : t -> int
  (** Current consecutive pathological-observation count. *)

  val fallbacks : t -> int
  (** Fallbacks ordered so far. *)

  val fallback_failed : t -> unit
  (** Tell the guard an ordered fallback's apply reported failure
      (e.g. an implementation swap rolled back): cancels the cooldown
      [note] just started and restores the streak to one short of the
      limit, so the next pathological observation retries promptly
      instead of waiting out cooldown plus a fresh full streak.
      {!Spec.compile} calls this automatically. *)
end

val guarded :
  guard:Guard.t ->
  clamp:('obs -> 'obs * bool) ->
  fallback:'obs t ->
  'obs t ->
  'obs t
(** [guarded ~guard ~clamp ~fallback p] filters every observation
    before [p] sees it: [clamp] returns the sanitized observation and
    whether the raw one was pathological; when [guard] reports a
    pathological streak, [fallback] decides instead of [p] (typically
    a reset to the object's default configuration). *)

val with_hysteresis : min_gap:int -> 'obs t -> 'obs t
(** Suppress reconfigurations closer than [min_gap] virtual ns to the
    previous applied one (a guard against thrashing; must run inside
    the simulation because it reads the virtual clock). Only an apply
    that reports success advances the window: a no-op reconfiguration
    (e.g. an external agent losing the attribute-ownership race) does
    not suppress the retry. *)

(** Declarative adaptation-policy IR.

    A {!Spec.t} reifies what an adaptation policy {e is} — a finite
    automaton over named configurations, driven by threshold regions of
    one observed metric, with per-transition hysteresis counters and an
    optional guardrail — so that tools can inspect it. The static
    checker ([Analysis.Policy_check]) model-checks specs for thrash
    cycles, dead configurations, threshold faults, guardrail gaps and
    cross-object conflicts without running the simulator; {!Spec.compile}
    turns the same spec into the executable closure form, so the
    runtime policy and the checked artifact cannot drift apart.

    Limits of the abstraction (soundness caveats): the metric is one
    scalar per observation; conditions are inclusive intervals on it;
    configurations are a finite set identified by an integer value
    (the attribute setting). A configuration reached only by mutating
    the attribute externally to a value outside [s_configs] puts the
    compiled policy into an inert state (it decides [No_change] until
    the value returns to a known configuration). *)
module Spec : sig
  type cond = { lo : int; hi : int option }
      (** metric in [\[lo, hi\]], inclusive; [hi = None] means
          unbounded above. *)

  type config = { c_name : string; c_value : int }
      (** A configuration: [c_value] is the attribute setting (unique
          within a spec, used as the configuration's identity),
          [c_name] the display name (also used as the transition label
          when [t_label] is empty — see below). *)

  type transition = {
    t_from : int;  (** source configuration, by [c_value] *)
    t_cond : cond;  (** metric region that enables the transition *)
    t_target : int;  (** target configuration, by [c_value] *)
    t_label : string;  (** reconfiguration label for logs/annotations *)
    t_repeats : int;
        (** consecutive enabled samples required before firing
            (the AdaptiveMHA-style [neededRepeats]; 1 = immediate) *)
    t_cost : Cost.t;  (** charged per applied reconfiguration *)
  }

  type wedge = { w_configs : int list; w_cond : cond }
      (** Observations matching [w_cond] while the object sits in one
          of [w_configs] are pathological even when inside the clamp
          (wedge detection, e.g. waiters piling up at the
          pure-blocking extreme). *)

  type guard_spec = {
    g_clamp_lo : int;
    g_clamp_hi : int;  (** raw metrics clamped into [\[lo, hi\]] *)
    g_wedge : wedge option;
    g_limit : int;  (** consecutive pathological samples before fallback *)
    g_cooldown : int;  (** samples with counting suspended afterwards *)
    g_fallback : int;  (** fallback target configuration, by value *)
    g_fallback_label : string;
    g_fallback_cost : Cost.t;
  }

  (** Declared metric-to-configuration polarity, used by the checker's
      inverted-threshold detection: [Up_at_low] policies move to
      higher-valued configurations when the metric is low (spin
      budgets under short waits), [Up_at_high] when it is high
      (writer preference under writer pressure). *)
  type monotone = Up_at_low | Up_at_high | Unordered

  type t = {
    s_name : string;  (** the policy/object this spec describes *)
    s_kind : string;  (** object family (["lock"], ["barrier"], ...) *)
    s_attribute : string;
        (** identity of the attribute the policy drives; two specs
            sharing an [s_attribute] are checked as co-writers of one
            attribute (cross-object conflicts) *)
    s_metric : string;  (** name of the observed metric *)
    s_monotone : monotone;
    s_configs : config list;  (** ascending [c_value] order *)
    s_initial : int;  (** starting configuration, by value *)
    s_transitions : transition list;
        (** priority order: the first transition whose source matches
            the current configuration and whose condition matches the
            metric is the one consulted *)
    s_guard : guard_spec option;
  }

  val cond : ?hi:int -> int -> cond
  (** [cond lo ?hi] builds a condition; omitted [hi] = unbounded. *)

  val matches : cond -> int -> bool

  val config_name : t -> int -> string
  (** Display name of the configuration with this value (the value
      itself, as a string, when unknown). *)

  val find_config : t -> int -> config option

  val validate : t -> string list
  (** Structural well-formedness errors: duplicate or unsorted
      configuration values, unknown initial/source/target/fallback
      configurations, empty conditions, non-positive repeat counts,
      self-targeting transitions, inverted clamps. Empty = well
      formed. The behavioral checks (thrash, dead configs, threshold
      faults...) live in [Analysis.Policy_check]. *)

  val compile :
    ?guard_state:Guard.t ->
    read:(unit -> int) ->
    apply:(int -> bool) ->
    metric:('obs -> int) ->
    t ->
    'obs policy
  (** The executable form of a spec. [read] reports the current
      configuration (by value), [apply] performs a reconfiguration to
      the given value and reports whether it took effect, [metric]
      extracts the observed scalar. Semantics, in observation order:
      hysteresis counters reset whenever the configuration changed
      since the previous observation; with a guard, the raw metric is
      clamped and a pathological streak of [g_limit] fires the
      fallback (then suspends counting for [g_cooldown] samples)
      instead of consulting the transitions; otherwise the
      first enabled transition advances its counter (all others
      reset) and fires once the counter reaches [t_repeats] — the
      counter itself resets only when the fired apply reports
      success, so a no-op apply retries at the next enabled sample.

      [guard_state] shares an externally owned {!Guard.t} (so
      [Locks.Guardrail] accessors keep reporting streaks/fallbacks);
      by default the guard state is created from the spec. *)
end
