type 'obs t = {
  obj_name : string;
  obj_kind : string;
  mutable registry_id : int;
  sensor : 'obs Sensor.t;
  mutable policy : 'obs Policy.t;
  scratch : Butterfly.Memory.addr;
  mutable policy_run_count : int;
  mutable adaptation_count : int;
  mutable adaptation_log : (int * string) list;  (* newest first *)
  mutable cost_sum : Cost.t;
  mutable subscribers : (Registry.event -> unit) list;  (* subscription order *)
}

let name t = t.obj_name
let kind t = t.obj_kind
let registry_id t = t.registry_id
let subscribe t f = t.subscribers <- t.subscribers @ [ f ]

let decide t obs =
  t.policy_run_count <- t.policy_run_count + 1;
  match t.policy obs with
  | Policy.No_change -> false
  | Policy.Reconfigure { label; cost; apply } ->
    (* The attempt's mechanism cost is charged whether or not it takes
       effect, but only an apply that reports success counts as an
       adaptation — a no-op apply (e.g. an external agent losing the
       ownership race) must not inflate metrics or publish events. *)
    Cost.charge ~scratch:t.scratch cost;
    if not (apply ()) then false
    else begin
      t.adaptation_count <- t.adaptation_count + 1;
      let at = Butterfly.Ops.now () in
      t.adaptation_log <- (at, label) :: t.adaptation_log;
      t.cost_sum <- Cost.( + ) t.cost_sum cost;
      if Butterfly.Ops.annotations_enabled () then
        Butterfly.Ops.annotate
          (Butterfly.Ops.A_adaptation { obj_name = t.obj_name; kind = t.obj_kind; label });
      (match t.subscribers with
      | [] -> ()
      | subs ->
        let ev =
          { Registry.at; obj_name = t.obj_name; obj_kind = t.obj_kind; label }
        in
        List.iter (fun f -> f ev) subs);
      true
    end

let tick t =
  match Sensor.tick t.sensor with None -> false | Some obs -> decide t obs

let feed t obs = decide t obs
let poll t = decide t (Sensor.force t.sensor)
let set_policy t p = t.policy <- p
let samples t = Sensor.samples_taken t.sensor
let policy_runs t = t.policy_run_count
let adaptations t = t.adaptation_count
let last_label t = match t.adaptation_log with [] -> None | (_, l) :: _ -> Some l
let log t = List.rev t.adaptation_log
let total_cost t = t.cost_sum

let stats t =
  {
    Registry.samples = samples t;
    policy_runs = t.policy_run_count;
    adaptations = t.adaptation_count;
    total_cost = t.cost_sum;
    last_label = last_label t;
    log = log t;
  }

let create ?(name = "adaptive-object") ?(kind = "object") ?spec ~home ~sensor ~policy
    () =
  let scratch = Butterfly.Ops.alloc1 ~node:home () in
  Butterfly.Ops.mark_sync_words [| scratch |];
  let t =
    {
      obj_name = name;
      obj_kind = kind;
      registry_id = -1;
      sensor;
      policy;
      scratch;
      policy_run_count = 0;
      adaptation_count = 0;
      adaptation_log = [];
      cost_sum = Cost.zero;
      subscribers = [];
    }
  in
  t.registry_id <-
    Registry.register ~name ~kind
      ~stats:(fun () -> stats t)
      ~subscribe:(fun f -> subscribe t f)
      ~drive:(fun () -> poll t)
      ?spec ();
  t
