type 'obs t = {
  obj_name : string;
  sensor : 'obs Sensor.t;
  mutable policy : 'obs Policy.t;
  scratch : Butterfly.Memory.addr;
  mutable policy_run_count : int;
  mutable adaptation_count : int;
  mutable adaptation_log : (int * string) list;  (* newest first *)
  mutable cost_sum : Cost.t;
}

let create ?(name = "adaptive-object") ~home ~sensor ~policy () =
  let scratch = Butterfly.Ops.alloc1 ~node:home () in
  Butterfly.Ops.mark_sync_words [| scratch |];
  {
    obj_name = name;
    sensor;
    policy;
    scratch;
    policy_run_count = 0;
    adaptation_count = 0;
    adaptation_log = [];
    cost_sum = Cost.zero;
  }

let name t = t.obj_name

let decide t obs =
  t.policy_run_count <- t.policy_run_count + 1;
  match t.policy obs with
  | Policy.No_change -> false
  | Policy.Reconfigure { label; cost; apply } ->
    Cost.charge ~scratch:t.scratch cost;
    apply ();
    t.adaptation_count <- t.adaptation_count + 1;
    t.adaptation_log <- (Butterfly.Ops.now (), label) :: t.adaptation_log;
    t.cost_sum <- Cost.( + ) t.cost_sum cost;
    true

let tick t =
  match Sensor.tick t.sensor with None -> false | Some obs -> decide t obs

let feed t obs = decide t obs
let set_policy t p = t.policy <- p
let samples t = Sensor.samples_taken t.sensor
let policy_runs t = t.policy_run_count
let adaptations t = t.adaptation_count
let last_label t = match t.adaptation_log with [] -> None | (_, l) :: _ -> Some l
let log t = List.rev t.adaptation_log
let total_cost t = t.cost_sum
