(* Small-step protocol IR + explicit-state semantics. See the .mli
   for the model: roles, shared words, guarded atomic rules, generated
   crash transitions and an abstract clock. Everything is pure and
   deterministic — successor order is declaration order — so the
   checker's state counts and counterexamples are stable bytes. *)

module Spec = struct
  type flavor = Holder | Swapper | Spinning | Queued | Sleeping | Timed | Monitor

  type role = {
    r_name : string;
    r_flavor : flavor;
    r_crashable : bool;
    r_locals : (string * int) list;
  }

  type expr =
    | K of int
    | S of string
    | L of string
    | Me
    | Clock
    | Status of string
    | Add of expr * expr
    | Sub of expr * expr

  type cmp = Eq | Ne | Lt | Le | Gt | Ge

  type guard = T | C of cmp * expr * expr | All of guard list | Any of guard list | Not of guard

  type act =
    | Read of string * string
    | Write of string * expr
    | Set of string * expr
    | If of guard * act list * act list
    | Unpark of string

  type rule = {
    u_role : string;
    u_from : int;
    u_label : string;
    u_guard : guard;
    u_acts : act list;
    u_to : int;
    u_park : bool;
    u_done : bool;
    u_timeout : bool;
  }

  let rule ~role ~from_ ?(park = false) ?(done_ = false) ?(timeout = false) ?(guard = T)
      ?(acts = []) ~label u_to =
    { u_role = role; u_from = from_; u_label = label; u_guard = guard; u_acts = acts;
      u_to; u_park = park; u_done = done_; u_timeout = timeout }

  let cas w ~expect ~set = (C (Eq, S w, expect), Write (w, set))

  type t = {
    p_name : string;
    p_shared : (string * int) list;
    p_roles : role list;
    p_rules : rule list;
    p_crash_budget : int;
    p_clock_max : int;
  }
end

exception Ill_formed of string

let ill fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

(* Compiled (indexed) forms: every name resolved to an array slot so
   evaluation during exploration never touches a string. *)

type cexpr =
  | CK of int
  | CS of int
  | CL of int
  | CMe
  | CClock
  | CStatus of int
  | CAdd of cexpr * cexpr
  | CSub of cexpr * cexpr

type cguard =
  | CT
  | CC of Spec.cmp * cexpr * cexpr
  | CAll of cguard list
  | CAny of cguard list
  | CNot of cguard

type cact =
  | CRead of int * int
  | CWrite of int * cexpr
  | CSet of int * cexpr
  | CIf of cguard * cact list * cact list
  | CUnpark of int

type crule = {
  c_role : int;
  c_from : int;
  c_label : string;
  c_guard : cguard;
  c_acts : cact list;
  c_to : int;
  c_park : bool;
  c_done : bool;
  c_timeout : bool;
}

type t = {
  t_spec : Spec.t;
  t_shared_names : string array;
  t_shared_init : int array;
  t_role_names : string array;
  t_crashable : bool array;
  t_local_names : string array array;
  t_local_init : int array array;
  t_rules : crule array;
}

(* status codes *)
let st_running = 0
let st_parked = 1
let st_crashed = 2
let st_done = 3

type status = Running | Parked | Crashed | Done

let status_of_code = function
  | 0 -> Running
  | 1 -> Parked
  | 2 -> Crashed
  | _ -> Done

let index_of what names n =
  let rec go i = if i >= Array.length names then ill "%s: unknown name %s" what n
    else if names.(i) = n then i else go (i + 1)
  in
  go 0

let check_dups what names =
  Array.iteri
    (fun i n ->
      Array.iteri (fun j m -> if i < j && n = m then ill "%s: duplicate name %s" what n) names)
    names

let compile (s : Spec.t) : t =
  if s.Spec.p_roles = [] then ill "protocol %s: no roles" s.Spec.p_name;
  if s.Spec.p_crash_budget < 0 then ill "protocol %s: negative crash budget" s.Spec.p_name;
  if s.Spec.p_clock_max < 0 then ill "protocol %s: negative clock bound" s.Spec.p_name;
  let shared_names = Array.of_list (List.map fst s.Spec.p_shared) in
  let shared_init = Array.of_list (List.map snd s.Spec.p_shared) in
  let role_names = Array.of_list (List.map (fun r -> r.Spec.r_name) s.Spec.p_roles) in
  let crashable = Array.of_list (List.map (fun r -> r.Spec.r_crashable) s.Spec.p_roles) in
  let local_names =
    Array.of_list (List.map (fun r -> Array.of_list (List.map fst r.Spec.r_locals)) s.Spec.p_roles)
  in
  let local_init =
    Array.of_list (List.map (fun r -> Array.of_list (List.map snd r.Spec.r_locals)) s.Spec.p_roles)
  in
  check_dups s.Spec.p_name shared_names;
  check_dups s.Spec.p_name role_names;
  Array.iter (check_dups s.Spec.p_name) local_names;
  let shared_ix n = index_of (s.Spec.p_name ^ " shared") shared_names n in
  let role_ix n = index_of (s.Spec.p_name ^ " role") role_names n in
  let local_ix role n = index_of (s.Spec.p_name ^ " local") local_names.(role) n in
  let rec cexpr role = function
    | Spec.K v -> CK v
    | Spec.S n -> CS (shared_ix n)
    | Spec.L n -> CL (local_ix role n)
    | Spec.Me -> CMe
    | Spec.Clock -> CClock
    | Spec.Status n -> CStatus (role_ix n)
    | Spec.Add (a, b) -> CAdd (cexpr role a, cexpr role b)
    | Spec.Sub (a, b) -> CSub (cexpr role a, cexpr role b)
  in
  let rec cguard role = function
    | Spec.T -> CT
    | Spec.C (c, a, b) -> CC (c, cexpr role a, cexpr role b)
    | Spec.All gs -> CAll (List.map (cguard role) gs)
    | Spec.Any gs -> CAny (List.map (cguard role) gs)
    | Spec.Not g -> CNot (cguard role g)
  in
  let rec cact role = function
    | Spec.Read (l, w) -> CRead (local_ix role l, shared_ix w)
    | Spec.Write (w, e) -> CWrite (shared_ix w, cexpr role e)
    | Spec.Set (l, e) -> CSet (local_ix role l, cexpr role e)
    | Spec.If (g, a, b) -> CIf (cguard role g, List.map (cact role) a, List.map (cact role) b)
    | Spec.Unpark n -> CUnpark (role_ix n)
  in
  let crule (u : Spec.rule) =
    let role = role_ix u.Spec.u_role in
    if u.Spec.u_park && u.Spec.u_done then
      ill "%s rule %s: park and done are exclusive" s.Spec.p_name u.Spec.u_label;
    { c_role = role; c_from = u.Spec.u_from; c_label = u.Spec.u_label;
      c_guard = cguard role u.Spec.u_guard; c_acts = List.map (cact role) u.Spec.u_acts;
      c_to = u.Spec.u_to; c_park = u.Spec.u_park; c_done = u.Spec.u_done;
      c_timeout = u.Spec.u_timeout }
  in
  { t_spec = s; t_shared_names = shared_names; t_shared_init = shared_init;
    t_role_names = role_names; t_crashable = crashable; t_local_names = local_names;
    t_local_init = local_init; t_rules = Array.of_list (List.map crule s.Spec.p_rules) }

let name t = t.t_spec.Spec.p_name
let spec t = t.t_spec
let role_names t = Array.to_list t.t_role_names

type state = {
  sh : int array;
  pcs : int array;
  regs : int array array;
  sts : int array;
  wk : int array;
  clk : int;
  cr : int;
}

let init t =
  let n = Array.length t.t_role_names in
  { sh = Array.copy t.t_shared_init;
    pcs = Array.make n 0;
    regs = Array.map Array.copy t.t_local_init;
    sts = Array.make n st_running;
    wk = Array.make n 0;
    clk = 0;
    cr = 0 }

let rec eval st me = function
  | CK v -> v
  | CS i -> st.sh.(i)
  | CL i -> st.regs.(me).(i)
  | CMe -> me + 1
  | CClock -> st.clk
  | CStatus r -> st.sts.(r)
  | CAdd (a, b) -> eval st me a + eval st me b
  | CSub (a, b) -> eval st me a - eval st me b

let cmp_op : Spec.cmp -> int -> int -> bool = function
  | Spec.Eq -> ( = )
  | Spec.Ne -> ( <> )
  | Spec.Lt -> ( < )
  | Spec.Le -> ( <= )
  | Spec.Gt -> ( > )
  | Spec.Ge -> ( >= )

let rec holds st me = function
  | CT -> true
  | CC (c, a, b) -> cmp_op c (eval st me a) (eval st me b)
  | CAll gs -> List.for_all (holds st me) gs
  | CAny gs -> List.exists (holds st me) gs
  | CNot g -> not (holds st me g)

let copy st =
  { st with sh = Array.copy st.sh; pcs = Array.copy st.pcs;
    regs = Array.map Array.copy st.regs; sts = Array.copy st.sts; wk = Array.copy st.wk }

(* Actions mutate the copy in order: later actions observe earlier
   writes within the same atomic rule. *)
let rec apply_act st me = function
  | CRead (l, w) -> st.regs.(me).(l) <- st.sh.(w)
  | CWrite (w, e) -> st.sh.(w) <- eval st me e
  | CSet (l, e) -> st.regs.(me).(l) <- eval st me e
  | CIf (g, a, b) -> List.iter (apply_act st me) (if holds st me g then a else b)
  | CUnpark r ->
    (* Sticky wakeups: waking a parked role resumes it; waking a
       running role leaves a token its next park consumes. Crashed and
       finished roles ignore wakeups. *)
    if st.sts.(r) = st_parked then st.sts.(r) <- st_running
    else if st.sts.(r) = st_running then st.wk.(r) <- 1

let fire t st (r : crule) =
  ignore t;
  let st' = copy st in
  List.iter (apply_act st' r.c_role) r.c_acts;
  st'.pcs.(r.c_role) <- r.c_to;
  if r.c_done then st'.sts.(r.c_role) <- st_done
  else if r.c_park then begin
    if st'.wk.(r.c_role) = 1 then st'.wk.(r.c_role) <- 0
    else st'.sts.(r.c_role) <- st_parked
  end;
  st'

let successors t st =
  let out = ref [] in
  Array.iter
    (fun r ->
      if st.sts.(r.c_role) = st_running && st.pcs.(r.c_role) = r.c_from
         && holds st r.c_role r.c_guard
      then out := (t.t_role_names.(r.c_role), r.c_label, fire t st r) :: !out)
    t.t_rules;
  if st.cr < t.t_spec.Spec.p_crash_budget then
    Array.iteri
      (fun i crashable ->
        if crashable && (st.sts.(i) = st_running || st.sts.(i) = st_parked) then begin
          let st' = copy st in
          st'.sts.(i) <- st_crashed;
          out := (t.t_role_names.(i), "crash", { st' with cr = st.cr + 1 }) :: !out
        end)
      t.t_crashable;
  if st.clk < t.t_spec.Spec.p_clock_max then
    out := ("", "tick", { (copy st) with clk = st.clk + 1 }) :: !out;
  List.rev !out

let key _t st = Marshal.to_string st []

let shared t st n = st.sh.(index_of "shared" t.t_shared_names n)

let local t st rn n =
  let r = index_of "role" t.t_role_names rn in
  st.regs.(r).(index_of "local" t.t_local_names.(r) n)

let pc t st rn = st.pcs.(index_of "role" t.t_role_names rn)
let status t st rn = status_of_code st.sts.(index_of "role" t.t_role_names rn)
let wake_pending t st rn = st.wk.(index_of "role" t.t_role_names rn) = 1
let clock _ st = st.clk
let crashes _ st = st.cr

let describe t st =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "clk=%d cr=%d" st.clk st.cr);
  Array.iteri (fun i n -> Buffer.add_string b (Printf.sprintf " %s=%d" n st.sh.(i)))
    t.t_shared_names;
  Array.iteri
    (fun i rn ->
      let s =
        match status_of_code st.sts.(i) with
        | Running -> "run"
        | Parked -> "parked"
        | Crashed -> "crashed"
        | Done -> "done"
      in
      Buffer.add_string b (Printf.sprintf " %s@%d:%s" rn st.pcs.(i) s);
      if st.wk.(i) = 1 then Buffer.add_string b "+wake";
      Array.iteri
        (fun j ln -> Buffer.add_string b (Printf.sprintf "[%s=%d]" ln st.regs.(i).(j)))
        t.t_local_names.(i))
    t.t_role_names;
  Buffer.contents b

type property =
  | Safety of { q_name : string; q_desc : string; q_bad : t -> state -> string option }
  | Step of {
      q_name : string;
      q_desc : string;
      q_bad : t -> role:string -> label:string -> state -> string option;
    }
  | Liveness of { q_name : string; q_desc : string; q_goal : t -> state -> bool }

let property_name = function
  | Safety { q_name; _ } | Step { q_name; _ } | Liveness { q_name; _ } -> q_name

let property_desc = function
  | Safety { q_desc; _ } | Step { q_desc; _ } | Liveness { q_desc; _ } -> q_desc
