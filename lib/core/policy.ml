type decision =
  | No_change
  | Reconfigure of { label : string; cost : Cost.t; apply : unit -> bool }

type 'obs t = 'obs -> decision

let no_op _ = No_change

let reconfigure ~label ?(cost = Cost.reads_writes 1 1) apply =
  Reconfigure
    {
      label;
      cost;
      apply =
        (fun () ->
          apply ();
          true);
    }

let reconfigure_checked ~label ?(cost = Cost.reads_writes 1 1) apply =
  Reconfigure { label; cost; apply }

let compose p q obs = match p obs with No_change -> q obs | d -> d

module Guard = struct
  type t = {
    limit : int;
    cooldown : int;
    mutable streak : int;
    mutable cooldown_left : int;
    mutable fallbacks : int;
  }

  let create ?(pathological_limit = 4) ?(cooldown = 8) () =
    if pathological_limit <= 0 || cooldown < 0 then invalid_arg "Policy.Guard.create";
    { limit = pathological_limit; cooldown; streak = 0; cooldown_left = 0; fallbacks = 0 }

  let note t ~pathological =
    if t.cooldown_left > 0 then begin
      t.cooldown_left <- t.cooldown_left - 1;
      false
    end
    else if pathological then begin
      t.streak <- t.streak + 1;
      if t.streak >= t.limit then begin
        t.streak <- 0;
        t.cooldown_left <- t.cooldown;
        t.fallbacks <- t.fallbacks + 1;
        true
      end
      else false
    end
    else begin
      t.streak <- 0;
      false
    end

  let streak t = t.streak
  let fallbacks t = t.fallbacks
end

let guarded ~guard ~clamp ~fallback policy obs =
  let obs, pathological = clamp obs in
  if Guard.note guard ~pathological then fallback obs else policy obs

let with_hysteresis ~min_gap policy =
  let last_applied = ref None in
  fun obs ->
    match policy obs with
    | No_change -> No_change
    | Reconfigure _ as d ->
      let now = Butterfly.Ops.now () in
      let too_soon =
        match !last_applied with Some t -> now - t < min_gap | None -> false
      in
      if too_soon then No_change
      else begin
        last_applied := Some now;
        d
      end
