type decision =
  | No_change
  | Reconfigure of { label : string; cost : Cost.t; apply : unit -> bool }

type 'obs t = 'obs -> decision
type 'obs policy = 'obs t

let no_op _ = No_change

let reconfigure ~label ?(cost = Cost.reads_writes 1 1) apply =
  Reconfigure
    {
      label;
      cost;
      apply =
        (fun () ->
          apply ();
          true);
    }

let reconfigure_checked ~label ?(cost = Cost.reads_writes 1 1) apply =
  Reconfigure { label; cost; apply }

let compose p q obs = match p obs with No_change -> q obs | d -> d

module Guard = struct
  type t = {
    limit : int;
    cooldown : int;
    mutable streak : int;
    mutable cooldown_left : int;
    mutable fallbacks : int;
  }

  let create ?(pathological_limit = 4) ?(cooldown = 8) () =
    if pathological_limit <= 0 || cooldown < 0 then invalid_arg "Policy.Guard.create";
    { limit = pathological_limit; cooldown; streak = 0; cooldown_left = 0; fallbacks = 0 }

  let note t ~pathological =
    if t.cooldown_left > 0 then begin
      t.cooldown_left <- t.cooldown_left - 1;
      false
    end
    else if pathological then begin
      t.streak <- t.streak + 1;
      if t.streak >= t.limit then begin
        t.streak <- 0;
        t.cooldown_left <- t.cooldown;
        t.fallbacks <- t.fallbacks + 1;
        true
      end
      else false
    end
    else begin
      t.streak <- 0;
      false
    end

  let streak t = t.streak
  let fallbacks t = t.fallbacks

  (* A fallback whose apply reported failure (e.g. an implementation
     swap that rolled back) leaves the object pathological — but
     [note] has already zeroed the streak and started the cooldown,
     which would park the guard for [cooldown] further observations
     plus a whole fresh streak before retrying. Cancel the cooldown
     and restore the streak to one short of the limit, so the very
     next pathological observation re-orders the fallback (while a
     healthy observation still clears it). *)
  let fallback_failed t =
    t.cooldown_left <- 0;
    t.streak <- max 0 (t.limit - 1)
end

let guarded ~guard ~clamp ~fallback policy obs =
  let obs, pathological = clamp obs in
  if Guard.note guard ~pathological then fallback obs else policy obs

let with_hysteresis ~min_gap policy =
  let last_applied = ref None in
  fun obs ->
    match policy obs with
    | No_change -> No_change
    | Reconfigure r ->
      let now = Butterfly.Ops.now () in
      let too_soon =
        match !last_applied with Some t -> now - t < min_gap | None -> false
      in
      if too_soon then No_change
      else
        (* Stamp the window only when the apply reports success: a
           no-op reconfiguration (lost ownership race) must not
           suppress the retry for the next [min_gap]. *)
        Reconfigure
          {
            r with
            apply =
              (fun () ->
                let ok = r.apply () in
                if ok then last_applied := Some now;
                ok);
          }

module Spec = struct
  type cond = { lo : int; hi : int option }
  type config = { c_name : string; c_value : int }

  type transition = {
    t_from : int;
    t_cond : cond;
    t_target : int;
    t_label : string;
    t_repeats : int;
    t_cost : Cost.t;
  }

  type wedge = { w_configs : int list; w_cond : cond }

  type guard_spec = {
    g_clamp_lo : int;
    g_clamp_hi : int;
    g_wedge : wedge option;
    g_limit : int;
    g_cooldown : int;
    g_fallback : int;
    g_fallback_label : string;
    g_fallback_cost : Cost.t;
  }

  type monotone = Up_at_low | Up_at_high | Unordered

  type t = {
    s_name : string;
    s_kind : string;
    s_attribute : string;
    s_metric : string;
    s_monotone : monotone;
    s_configs : config list;
    s_initial : int;
    s_transitions : transition list;
    s_guard : guard_spec option;
  }

  let cond ?hi lo = { lo; hi }

  let matches c m =
    m >= c.lo && match c.hi with None -> true | Some hi -> m <= hi

  let find_config t v = List.find_opt (fun c -> c.c_value = v) t.s_configs

  let config_name t v =
    match find_config t v with Some c -> c.c_name | None -> string_of_int v

  let validate t =
    let errs = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
    if t.s_configs = [] then err "no configurations";
    let rec dups = function
      | a :: (b :: _ as rest) ->
        if a.c_value = b.c_value then
          err "duplicate configuration value %d (%s/%s)" a.c_value a.c_name b.c_name
        else if a.c_value > b.c_value then
          err "configurations not in ascending value order at %d" a.c_value;
        dups rest
      | _ -> ()
    in
    dups t.s_configs;
    let known v = List.exists (fun c -> c.c_value = v) t.s_configs in
    if t.s_configs <> [] && not (known t.s_initial) then
      err "initial configuration %d is not declared" t.s_initial;
    List.iteri
      (fun i tr ->
        let where = Printf.sprintf "transition %d (%s)" i tr.t_label in
        if not (known tr.t_from) then err "%s: unknown source %d" where tr.t_from;
        if not (known tr.t_target) then err "%s: unknown target %d" where tr.t_target;
        if tr.t_from = tr.t_target then
          err "%s: self-targeting (a no-op reconfiguration)" where;
        if tr.t_repeats < 1 then err "%s: repeats %d < 1" where tr.t_repeats;
        (match tr.t_cond.hi with
        | Some hi when hi < tr.t_cond.lo ->
          err "%s: empty condition [%d, %d]" where tr.t_cond.lo hi
        | _ -> ()))
      t.s_transitions;
    (match t.s_guard with
    | None -> ()
    | Some g ->
      if g.g_clamp_hi < g.g_clamp_lo then
        err "guard: inverted clamp [%d, %d]" g.g_clamp_lo g.g_clamp_hi;
      if not (known g.g_fallback) then
        err "guard: unknown fallback configuration %d" g.g_fallback;
      if g.g_limit < 1 then err "guard: pathological limit %d < 1" g.g_limit;
      if g.g_cooldown < 0 then err "guard: negative cooldown %d" g.g_cooldown;
      (match g.g_wedge with
      | Some w ->
        List.iter
          (fun v ->
            if not (known v) then err "guard: wedge names unknown configuration %d" v)
          w.w_configs;
        (match w.w_cond.hi with
        | Some hi when hi < w.w_cond.lo ->
          err "guard: empty wedge condition [%d, %d]" w.w_cond.lo hi
        | _ -> ())
      | None -> ()));
    List.rev !errs

  let compile ?guard_state ~read ~apply ~metric spec =
    let ts = Array.of_list spec.s_transitions in
    let counters = Array.make (max 1 (Array.length ts)) 0 in
    let last_cfg = ref None in
    let guard =
      match spec.s_guard with
      | None -> None
      | Some g ->
        let state =
          match guard_state with
          | Some s -> s
          | None ->
            Guard.create ~pathological_limit:g.g_limit ~cooldown:g.g_cooldown ()
        in
        Some (g, state)
    in
    let reset_all () = Array.fill counters 0 (Array.length counters) 0 in
    let fire i (tr : transition) =
      Reconfigure
        {
          label = tr.t_label;
          cost = tr.t_cost;
          apply =
            (fun () ->
              let ok = apply tr.t_target in
              if ok then counters.(i) <- 0;
              ok);
        }
    in
    (* First transition whose source is the current configuration and
       whose condition matches the metric: its counter advances, every
       other counter resets (a non-matching sample breaks a streak). *)
    let consult m cur =
      let enabled = ref (-1) in
      for i = 0 to Array.length ts - 1 do
        let tr = ts.(i) in
        if !enabled < 0 && tr.t_from = cur && matches tr.t_cond m then enabled := i
        else counters.(i) <- 0
      done;
      if !enabled < 0 then No_change
      else begin
        let i = !enabled in
        let tr = ts.(i) in
        counters.(i) <- counters.(i) + 1;
        if counters.(i) >= tr.t_repeats then fire i tr else No_change
      end
    in
    fun obs ->
      let raw = metric obs in
      let cur = read () in
      (match !last_cfg with
      | Some c when c = cur -> ()
      | Some _ -> reset_all ()
      | None -> ());
      last_cfg := Some cur;
      match guard with
      | None -> consult raw cur
      | Some (g, state) ->
        let clamped = max g.g_clamp_lo (min g.g_clamp_hi raw) in
        let wedged =
          match g.g_wedge with
          | Some w -> List.mem cur w.w_configs && matches w.w_cond raw
          | None -> false
        in
        let pathological = clamped <> raw || wedged in
        if Guard.note state ~pathological then
          Reconfigure
            {
              label = g.g_fallback_label;
              cost = g.g_fallback_cost;
              apply =
                (fun () ->
                  let ok = apply g.g_fallback in
                  if not ok then Guard.fallback_failed state;
                  ok);
            }
        else consult clamped cur
end
