(** Mutable object attributes (the paper's [CV] set).

    An attribute is a named, typed cell characterizing part of an
    object's internal implementation (e.g. a lock's [spin-time]). It
    carries the two time-dependent properties of §3: {b mutability} —
    whether its value may currently be changed — and {b ownership} —
    which thread, if any, holds the exclusive right to reconfigure it.

    Ownership is acquired implicitly (the object's own methods
    reconfigure while holding the object) or explicitly through
    {!acquire} by an external agent such as a monitoring thread; the
    paper's Table 8 prices that acquisition like a test-and-set, which
    is exactly how it is implemented here. *)

type 'a t

val make : name:string -> ?mutable_:bool -> 'a -> 'a t
(** A fresh attribute. [mutable_] defaults to [true]. Must be created
    inside a simulation (it allocates its ownership word at the
    caller's node). *)

val make_at : name:string -> ?mutable_:bool -> node:int -> 'a -> 'a t
(** Like {!make} but placing the ownership word at [node]. *)

val name : 'a t -> string

val get : 'a t -> 'a
(** Raw value read (host-side; callers charge simulated cost at the
    granularity of whole reconfiguration operations, per §3.1). *)

val set : 'a t -> 'a -> unit
(** Raw value update. Raises [Immutable_attribute] when the attribute
    is currently immutable, and [Not_owner] when it is owned by a
    thread other than the caller. *)

exception Immutable_attribute of string
(** Payload is the attribute name. *)

exception Not_owner of string
(** Payload names the attribute, the holding thread (if any) and the
    caller: ["spin-time (held by thread 3, caller thread 7)"]. *)

val mutability : 'a t -> bool
val set_mutability : 'a t -> bool -> unit

val acquire : 'a t -> bool
(** Explicit ownership acquisition by the calling thread (an atomic
    test-and-set on the attribute's ownership word). Returns false if
    another thread holds it. *)

val release : 'a t -> unit
(** Release ownership. Raises [Not_owner] if the caller does not hold
    it. *)

val owner : 'a t -> int option
(** Owning thread id, if any (reads the ownership word). *)

val updates : 'a t -> int
(** How many times {!set} succeeded (for monitors and tests). *)
