type config = { gamma : string; phi : (string * string) list }

let config ?(phi = []) gamma =
  { gamma; phi = List.sort (fun (a, _) (b, _) -> String.compare a b) phi }

let config_equal a b = a.gamma = b.gamma && a.phi = b.phi

let pp_config ppf c =
  Format.fprintf ppf "%s" c.gamma;
  if c.phi <> [] then
    Format.fprintf ppf "{%s}"
      (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) c.phi))

type transition = { at : int; from_ : config; to_ : config; cost : Cost.t }

type space = { members : config list; edges : (string * string) list option }

let space ~configs ?edges () =
  let rec dup = function
    | [] -> None
    | c :: rest -> if List.exists (config_equal c) rest then Some c else dup rest
  in
  (match dup configs with
  | Some c -> invalid_arg (Format.asprintf "Formal.space: duplicate %a" pp_config c)
  | None -> ());
  { members = configs; edges }

(* A candidate matches a member when gammas agree and every attribute
   the member pins has the same value in the candidate. *)
let matches ~member ~candidate =
  member.gamma = candidate.gamma
  && List.for_all
       (fun (k, v) -> List.assoc_opt k candidate.phi = Some v)
       member.phi

let mem s candidate = List.exists (fun member -> matches ~member ~candidate) s.members

let edge_allowed s ~from_ ~to_ =
  match s.edges with
  | None -> mem s from_ && mem s to_
  | Some edges ->
    mem s from_ && mem s to_ && List.mem (from_.gamma, to_.gamma) edges

let validate s ~initial transitions =
  let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt in
  if not (mem s initial) then fail "initial configuration %a not in space" pp_config initial
  else begin
    let rec walk current last_time = function
      | [] -> Ok ()
      | tr :: rest ->
        if tr.at < last_time then fail "transition at %d out of time order" tr.at
        else if not (config_equal tr.from_ current) then
          fail "transition at %d departs from %a but object is in %a" tr.at pp_config
            tr.from_ pp_config current
        else if not (mem s tr.to_) then
          fail "transition at %d reaches %a, outside the space" tr.at pp_config tr.to_
        else if not (edge_allowed s ~from_:tr.from_ ~to_:tr.to_) then
          fail "transition at %d uses forbidden edge %s -> %s" tr.at tr.from_.gamma
            tr.to_.gamma
        else walk tr.to_ tr.at rest
    in
    walk initial min_int transitions
  end

let total_cost transitions =
  List.fold_left (fun acc tr -> Cost.( + ) acc tr.cost) Cost.zero transitions

(* -- bridging Policy.Spec to the paper's formalism: a declared policy
   spec induces a configuration space (each configuration a gamma, no
   attributes), and a recorded adaptation log replays as a Ψ chain
   through it. -- *)

let spec_config_name spec v =
  match Policy.Spec.find_config spec v with
  | Some c -> c.Policy.Spec.c_name
  | None -> string_of_int v

(* The label a transition writes into the log: its own, or the target
   configuration's name when it declares none (Policy.Spec convention). *)
let spec_transition_label spec tr =
  if tr.Policy.Spec.t_label <> "" then tr.Policy.Spec.t_label
  else spec_config_name spec tr.Policy.Spec.t_target

let space_of_spec spec =
  let name v = spec_config_name spec v in
  let configs =
    List.map (fun c -> config c.Policy.Spec.c_name) spec.Policy.Spec.s_configs
  in
  let declared =
    List.map
      (fun tr -> (name tr.Policy.Spec.t_from, name tr.Policy.Spec.t_target))
      spec.Policy.Spec.s_transitions
  in
  (* The guardrail fallback is a declared Ψ from anywhere. *)
  let fallback =
    match spec.Policy.Spec.s_guard with
    | None -> []
    | Some g ->
      List.map
        (fun c -> (c.Policy.Spec.c_name, name g.Policy.Spec.g_fallback))
        spec.Policy.Spec.s_configs
  in
  space ~configs ~edges:(declared @ fallback) ()

let check_log spec log =
  let name v = spec_config_name spec v in
  let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt in
  (* Resolve each logged label into the declared transition it claims
     to be (first match wins, the spec's priority order), building the
     Ψ chain [validate] then checks against the space. *)
  let rec resolve current acc = function
    | [] -> Ok (List.rev acc)
    | (at, label) :: rest -> (
      match
        List.find_opt
          (fun tr ->
            tr.Policy.Spec.t_from = current && spec_transition_label spec tr = label)
          spec.Policy.Spec.s_transitions
      with
      | Some tr ->
        let step =
          {
            at;
            from_ = config (name current);
            to_ = config (name tr.Policy.Spec.t_target);
            cost = tr.Policy.Spec.t_cost;
          }
        in
        resolve tr.Policy.Spec.t_target (step :: acc) rest
      | None -> (
        match spec.Policy.Spec.s_guard with
        | Some g when g.Policy.Spec.g_fallback_label = label ->
          let step =
            {
              at;
              from_ = config (name current);
              to_ = config (name g.Policy.Spec.g_fallback);
              cost = g.Policy.Spec.g_fallback_cost;
            }
          in
          resolve g.Policy.Spec.g_fallback (step :: acc) rest
        | _ ->
          fail "log entry \"%s\" at t=%d: no declared transition from %s" label at
            (name current)))
  in
  match resolve spec.Policy.Spec.s_initial [] log with
  | Error _ as e -> e
  | Ok chain ->
    validate (space_of_spec spec)
      ~initial:(config (name spec.Policy.Spec.s_initial))
      chain
