type event = { at : int; obj_name : string; obj_kind : string; label : string }

type stats = {
  samples : int;
  policy_runs : int;
  adaptations : int;
  total_cost : Cost.t;
  last_label : string option;
  log : (int * string) list;
}

type metrics = {
  id : int;
  name : string;
  kind : string;
  stats : stats;
  spec : Policy.Spec.t option;
}

type entry = {
  e_id : int;
  e_name : string;
  e_kind : string;
  e_stats : unit -> stats;
  e_subscribe : (event -> unit) -> unit;
  e_drive : (unit -> bool) option;
  e_spec : Policy.Spec.t option;
}

(* Per-domain state, like [Ops.annotations_flag]: each simulation runs
   entirely on one host domain, so domain-local registration keeps
   concurrent Engine.Runner simulations from interleaving their
   objects, and registration order — hence snapshot order — stays the
   deterministic object-creation order of the run. *)
type state = { mutable entries : entry list (* newest first *); mutable next_id : int }

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { entries = []; next_id = 0 })

let state () = Domain.DLS.get state_key

let reset () =
  let st = state () in
  st.entries <- [];
  st.next_id <- 0

(* Entries hold closures over a specific machine's [Memory.addr]s, so
   an entry surviving into the next simulation on the same domain
   would issue Ops against an unrelated heap. Resetting at every run
   start makes the registry per-run by construction — no caller has to
   remember to do it. *)
let () = Butterfly.Sched.at_run_start reset

let register ~name ~kind ~stats ?(subscribe = fun _ -> ()) ?drive ?spec () =
  let st = state () in
  let id = st.next_id in
  st.next_id <- id + 1;
  st.entries <-
    { e_id = id; e_name = name; e_kind = kind; e_stats = stats;
      e_subscribe = subscribe; e_drive = drive; e_spec = spec }
    :: st.entries;
  id

let entries () = List.rev (state ()).entries
let size () = List.length (state ()).entries

let snapshot () =
  List.map
    (fun e ->
      { id = e.e_id; name = e.e_name; kind = e.e_kind; stats = e.e_stats ();
        spec = e.e_spec })
    (entries ())

(* Formal check (§3.1) of the recorded Ψ log against the declared
   configuration space; [None] when the object declared no spec. *)
let validate_log m =
  match m.spec with None -> None | Some spec -> Some (Formal.check_log spec m.stats.log)

let subscribe_all f = List.iter (fun e -> e.e_subscribe f) (entries ())

let subscribe_from from f =
  let st = state () in
  List.iter (fun e -> if e.e_id >= from then e.e_subscribe f) st.entries;
  st.next_id

let drive_all () =
  List.fold_left
    (fun n e ->
      match e.e_drive with
      | None -> n
      | Some drive -> (
        (* An external sweep races object-side agents for attribute
           ownership; losing the race must skip this object, not take
           down the driving thread. *)
        match drive () with
        | true -> n + 1
        | false -> n
        | exception Attribute.Not_owner _ -> n))
    0 (entries ())

(* -- deterministic JSON (hand-rolled, like Chaos.to_json: stable
   bytes, no host state) -- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let metrics_json m =
  let log =
    String.concat ", "
      (List.map
         (fun (t, label) ->
           Printf.sprintf "{ \"t\": %d, \"label\": \"%s\" }" t (json_escape label))
         m.stats.log)
  in
  String.concat ",\n"
    [
      Printf.sprintf "      \"id\": %d" m.id;
      Printf.sprintf "      \"name\": \"%s\"" (json_escape m.name);
      Printf.sprintf "      \"kind\": \"%s\"" (json_escape m.kind);
      Printf.sprintf "      \"samples\": %d" m.stats.samples;
      Printf.sprintf "      \"policy_runs\": %d" m.stats.policy_runs;
      Printf.sprintf "      \"adaptations\": %d" m.stats.adaptations;
      Printf.sprintf
        "      \"total_cost\": { \"reads\": %d, \"writes\": %d, \"instrs\": %d }"
        m.stats.total_cost.Cost.reads m.stats.total_cost.Cost.writes
        m.stats.total_cost.Cost.instrs;
      Printf.sprintf "      \"last_label\": %s"
        (match m.stats.last_label with
        | None -> "null"
        | Some l -> Printf.sprintf "\"%s\"" (json_escape l));
      Printf.sprintf "      \"log\": [%s]" log;
      Printf.sprintf "      \"policy_valid\": %s"
        (match validate_log m with
        | None -> "null"
        | Some (Ok ()) -> "true"
        | Some (Error _) -> "false");
      Printf.sprintf "      \"policy_violation\": %s"
        (match validate_log m with
        | Some (Error why) -> Printf.sprintf "\"%s\"" (json_escape why)
        | None | Some (Ok ()) -> "null");
    ]

let to_json ms =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"objects\": %d,\n" (List.length ms));
  Buffer.add_string buf
    (Printf.sprintf "  \"adaptations\": %d,\n"
       (List.fold_left (fun n m -> n + m.stats.adaptations) 0 ms));
  Buffer.add_string buf "  \"registry\": [\n";
  Buffer.add_string buf
    (String.concat ",\n" (List.map (fun m -> "    {\n" ^ metrics_json m ^ "\n    }") ms));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
