open Butterfly

(* The predictive pass: drives the weak causality engine over a trace
   and reports races, lock-order deadlocks and lost wakeups that are
   reachable in a *reordering* of the observed run — including ones
   the observed-trace detectors cannot see because the schedule that
   was taken happened to order the conflicting operations. Every
   prediction carries the concrete sites (thread, time, per-thread
   occurrence index) a witness schedule is synthesized from. *)

type key = int * int

let key = Causality.key
let key_name (node, index) = Printf.sprintf "%d:%d" node index

(* One side of a predicted race, with enough coordinates to re-find
   the access in a fresh run of the same program: [s_nth] is the
   1-based count of this thread's accesses to this word. *)
type site = {
  s_tid : int;
  s_time : int;
  s_idx : int;  (* position in the analyzed trace *)
  s_nth : int;
  s_write : bool;
  s_locks : (key * string) list;  (* locks held, innermost first *)
}

type race_prediction = {
  r_word : key;
  r_first : site;  (* in trace order *)
  r_second : site;
  mutable r_count : int;
}

(* A lock request, with the requester's weak clock: one edge end of a
   predicted deadlock or the waker side of a predicted lost wakeup.
   [q_nth] counts this thread's requests of this lock. *)
type req_site = {
  q_tid : int;
  q_time : int;
  q_idx : int;
  q_nth : int;
  q_lock : key;
  q_lock_name : string;
  q_comp : int;
  q_snap : int array;
  q_holding : (key * string) list;
}

type deadlock_prediction = { d_a : req_site; d_b : req_site }
(* [d_a] (earlier in the trace) requests lock L while holding H;
   [d_b] requests H while holding L. *)

type lost_wakeup_prediction = {
  lw_lock : key;
  lw_lock_name : string;
  lw_victim : int;
  lw_victim_time : int;
  lw_victim_block_nth : int;  (* 1-based count of the victim's block points *)
  lw_waker : int;
  lw_waker_time : int;
  lw_waker_req_nth : int;  (* nth request of [lw_lock] by the waker *)
}

(* The swap-window rules watch implementation hot-swaps (the
   [A_adaptation] windows a switch lock emits around its
   freeze-kick-drain protocol) for the two protocol-fatal outcomes: a
   sleeping waiter still parked when the swap commits (the new
   implementation never learns of it — it sleeps forever), and two
   threads holding the lock at once after a grant raced the window. *)
type swap_fault = Sw_lost_waiter | Sw_double_grant

type swap_prediction = {
  sw_fault : swap_fault;
  sw_obj : string;  (* the adaptation object's name (= the lock's) *)
  sw_lock : key;
  sw_victim : int;  (* the lost sleeper, or the second grantee *)
  sw_victim_time : int;  (* when it blocked / when it acquired *)
  sw_victim_block_nth : int;  (* block-point count (lost waiter) *)
  sw_victim_req_nth : int;  (* nth request of the lock by the victim *)
  sw_other : int;  (* the committing swapper, or the first holder *)
  sw_time : int;  (* the commit / the overlapping acquire *)
  sw_label : string;  (* the swap's from->to label, when known *)
}

type prediction =
  | Race of race_prediction
  | Deadlock of deadlock_prediction
  | Lost_wakeup of lost_wakeup_prediction
  | Swap_window of swap_prediction

let rule = function
  | Race _ -> "predicted-race"
  | Deadlock _ -> "predicted-deadlock"
  | Lost_wakeup _ -> "predicted-lost-wakeup"
  | Swap_window { sw_fault = Sw_lost_waiter; _ } -> "predicted-swap-lost-waiter"
  | Swap_window { sw_fault = Sw_double_grant; _ } -> "predicted-swap-double-grant"

let locks_str = function
  | [] -> "no locks"
  | locks -> String.concat ", " (List.rev_map snd locks)

let describe ~names = function
  | Race r ->
    let side s =
      Printf.sprintf "%s by %s at %d ns holding {%s}"
        (if s.s_write then "write" else "read")
        (names s.s_tid) s.s_time
        (String.concat ", " (List.rev_map snd s.s_locks))
    in
    Printf.sprintf
      "word %s: %s is reorderable against %s (no common lock, weakly unordered)%s"
      (key_name r.r_word) (side r.r_first) (side r.r_second)
      (if r.r_count > 1 then Printf.sprintf "; %d occurrences of this site pair" r.r_count
       else "")
  | Deadlock d ->
    Printf.sprintf
      "%s requests %s at %d ns holding %s while %s requests %s at %d ns holding %s; \
       the requests are weakly unordered and gate-free, so a reordering deadlocks"
      (names d.d_a.q_tid) d.d_a.q_lock_name d.d_a.q_time (locks_str d.d_a.q_holding)
      (names d.d_b.q_tid) d.d_b.q_lock_name d.d_b.q_time (locks_str d.d_b.q_holding)
  | Lost_wakeup lw ->
    Printf.sprintf
      "%s blocks at %d ns holding %s while its waker %s needs %s (requested at %d \
       ns); reordered, the sleeper takes the lock first and the wakeup is never sent"
      (names lw.lw_victim) lw.lw_victim_time lw.lw_lock_name (names lw.lw_waker)
      lw.lw_lock_name lw.lw_waker_time
  | Swap_window sw -> (
    match sw.sw_fault with
    | Sw_lost_waiter ->
      Printf.sprintf
        "switch lock %s: sleeping waiter %s (blocked at %d ns) is still parked when \
         the swap %s commits at %d ns by %s — no wakeup reached it inside the window, \
         so the new implementation never learns of it"
        sw.sw_obj (names sw.sw_victim) sw.sw_victim_time sw.sw_label sw.sw_time
        (names sw.sw_other)
    | Sw_double_grant ->
      Printf.sprintf
        "switch lock %s: %s acquires at %d ns while %s still holds — a grant escaped \
         the swap window and the lock is held twice"
        sw.sw_obj (names sw.sw_victim) sw.sw_time (names sw.sw_other))

(* Same exemption rules as the observed-trace race detector: sync and
   relaxed word marks, plus every word an atomic ever touched. *)
let prescan trace =
  let exempt = Hashtbl.create 256 in
  Trace.iter
    (function
      | Trace.Annot { annotation = Ops.A_sync_word a; _ }
      | Trace.Annot { annotation = Ops.A_relaxed_word a; _ } ->
        Hashtbl.replace exempt (key a) ()
      | Trace.Annot _ -> ()
      | Trace.Access { access_kind = Memory.Atomic_access; access_addr; _ } ->
        Hashtbl.replace exempt (key access_addr) ()
      | Trace.Access _ | Trace.Event _ -> ())
    trace;
  exempt

(* A prior access with its weak epoch, for the ordering test. *)
type wprior = { w_site : site; w_comp : int }

type word_state = {
  mutable last_write : wprior option;
  reads : (int, wprior) Hashtbl.t;
}

type acquire_rec = { a_comp : int; a_snap : int array }

type state = {
  cau : Causality.t;
  exempt : (key, unit) Hashtbl.t;
  held : (int, (key * string) list) Hashtbl.t;
  words : (key, word_state) Hashtbl.t;
  access_counts : (int * key, int) Hashtbl.t;
  request_counts : (int * key, int) Hashtbl.t;
  block_counts : (int, int) Hashtbl.t;
  (* race findings, deduped like the observed detector *)
  race_tbl : (key * (int * key list) * (int * key list), race_prediction) Hashtbl.t;
  mutable races : race_prediction list;  (* newest first *)
  (* deadlock edges: (held, requested) -> request sites, one per thread *)
  edges : (key * key, req_site list) Hashtbl.t;
  mutable edge_order : (key * key) list;  (* newest first *)
  (* lost-wakeup ingredients *)
  requests : (int * key, req_site list) Hashtbl.t;  (* newest first *)
  acquires : (int * key, acquire_rec) Hashtbl.t;  (* latest acquire *)
  last_block : (int, (key * string) list * int) Hashtbl.t;  (* held set, block nth *)
  pending_tokens : (int, (int * int) Queue.t) Hashtbl.t;  (* victim -> (waker, send idx) *)
  lw_tbl : (int * int * key, unit) Hashtbl.t;
  mutable lost_wakeups : lost_wakeup_prediction list;  (* newest first *)
  (* swap-window ingredients *)
  waiting_on : (int, key * string) Hashtbl.t;  (* open lock request *)
  asleep : (int, int * int) Hashtbl.t;  (* tid -> block nth, block time *)
  impl_objs : (string, unit) Hashtbl.t;  (* names seen in lock-impl swaps *)
  holders : (key, (int * int) list) Hashtbl.t;  (* owners, newest first *)
  sw_tbl : (int * string * swap_fault, unit) Hashtbl.t;
  mutable swaps : swap_prediction list;  (* newest first *)
}

let held st tid = match Hashtbl.find_opt st.held tid with Some l -> l | None -> []

let bump tbl k =
  let n = (match Hashtbl.find_opt tbl k with Some n -> n | None -> 0) + 1 in
  Hashtbl.replace tbl k n;
  n

let lock_keys locks = List.map fst locks
let disjoint a b = not (List.exists (fun k -> List.mem k b) a)

let word_state st k =
  match Hashtbl.find_opt st.words k with
  | Some w -> w
  | None ->
    let w = { last_write = None; reads = Hashtbl.create 4 } in
    Hashtbl.replace st.words k w;
    w

let note_race st word ~first ~second =
  let canon s = (s.s_tid, List.sort compare (lock_keys s.s_locks)) in
  let sa, sb = (canon first, canon second) in
  let fkey = if fst sa <= fst sb then (word, sa, sb) else (word, sb, sa) in
  match Hashtbl.find_opt st.race_tbl fkey with
  | Some r -> r.r_count <- r.r_count + 1
  | None ->
    let r = { r_word = word; r_first = first; r_second = second; r_count = 1 } in
    Hashtbl.replace st.race_tbl fkey r;
    st.races <- r :: st.races

let check_pair st word ~prior ~cur =
  if prior.w_site.s_tid <> cur.w_site.s_tid then begin
    let ordered =
      Causality.ordered st.cau ~tid:prior.w_site.s_tid ~comp:prior.w_comp
        ~before:cur.w_site.s_tid
    in
    if
      (not ordered)
      && disjoint (lock_keys prior.w_site.s_locks) (lock_keys cur.w_site.s_locks)
    then note_race st word ~first:prior.w_site ~second:cur.w_site
  end

let on_access st idx (a : Sched.access) =
  let k = key a.access_addr in
  let tid = a.access_tid in
  let write =
    match a.access_kind with
    | Memory.Write_access | Memory.Atomic_access -> true
    | Memory.Read_access -> false
  in
  (* Feed the causality engine first: the access must absorb incoming
     conflict edges before its epoch is read. Exempt words still flow
     through — conflict edges over primitive internals (a barrier's
     counter, a semaphore's permits) are exactly what keeps correctly
     synchronized code weakly ordered. *)
  Causality.on_access st.cau ~tid ~word:k ~write;
  if not (Hashtbl.mem st.exempt k) then begin
    let nth = bump st.access_counts (tid, k) in
    let cur =
      {
        w_site =
          { s_tid = tid; s_time = a.access_time; s_idx = idx; s_nth = nth; s_write = write;
            s_locks = held st tid };
        w_comp = Causality.epoch st.cau tid;
      }
    in
    let word = word_state st k in
    (match a.access_kind with
    | Memory.Read_access ->
      (match word.last_write with
      | Some w -> check_pair st k ~prior:w ~cur
      | None -> ());
      Hashtbl.replace word.reads tid cur
    | Memory.Write_access ->
      (match word.last_write with
      | Some w -> check_pair st k ~prior:w ~cur
      | None -> ());
      Hashtbl.iter (fun _ r -> check_pair st k ~prior:r ~cur) word.reads;
      Hashtbl.reset word.reads;
      word.last_write <- Some cur
    | Memory.Atomic_access -> ())
  end

let add_edge st edge site =
  let existing = match Hashtbl.find_opt st.edges edge with Some l -> l | None -> [] in
  if not (List.exists (fun q -> q.q_tid = site.q_tid) existing) then begin
    if existing = [] then st.edge_order <- edge :: st.edge_order;
    Hashtbl.replace st.edges edge (site :: existing)
  end

let on_request st idx (an : Sched.annot) lock lock_name =
  let tid = an.annot_tid in
  let k = key lock in
  let nth = bump st.request_counts (tid, k) in
  let site =
    {
      q_tid = tid;
      q_time = an.annot_time;
      q_idx = idx;
      q_nth = nth;
      q_lock = k;
      q_lock_name = lock_name;
      q_comp = Causality.epoch st.cau tid;
      q_snap = Causality.snapshot st.cau tid;
      q_holding = held st tid;
    }
  in
  Hashtbl.replace st.requests (tid, k)
    (site :: (match Hashtbl.find_opt st.requests (tid, k) with Some l -> l | None -> []));
  List.iter (fun (h, _) -> if h <> k then add_edge st (h, k) site) site.q_holding

(* The lost-wakeup rule: thread V blocked (or absorbed a wake token)
   at a point where it held lock L, and the thread W that woke it had
   itself requested L, in its own program order, before sending the
   wake. If V's acquire of L and W's request of L are weakly unordered
   and share no other held lock, the reordering where V takes L first
   leaves W stuck behind L and the wakeup is never sent: deadlock. *)
let check_lost_wakeup st ~victim ~victim_held ~victim_block_nth ~waker ~send_idx
    ~time =
  List.iter
    (fun (l, lname) ->
      if not (Hashtbl.mem st.lw_tbl (victim, waker, l)) then begin
        let wreqs =
          match Hashtbl.find_opt st.requests (waker, l) with Some rs -> rs | None -> []
        in
        (* newest first: the last request before the send *)
        match List.find_opt (fun q -> q.q_idx < send_idx) wreqs with
        | None -> ()
        | Some wreq -> (
          match Hashtbl.find_opt st.acquires (victim, l) with
          | None -> ()
          | Some vacq ->
            let unordered =
              (not (Causality.ordered_snapshot ~tid:victim ~comp:vacq.a_comp wreq.q_snap))
              && not (Causality.ordered_snapshot ~tid:waker ~comp:wreq.q_comp vacq.a_snap)
            in
            let gate_free =
              disjoint
                (List.filter (fun k -> k <> l) (lock_keys victim_held))
                (List.filter (fun k -> k <> l) (lock_keys wreq.q_holding))
            in
            if unordered && gate_free then begin
              Hashtbl.replace st.lw_tbl (victim, waker, l) ();
              st.lost_wakeups <-
                {
                  lw_lock = l;
                  lw_lock_name = lname;
                  lw_victim = victim;
                  lw_victim_time = time;
                  lw_victim_block_nth = victim_block_nth;
                  lw_waker = waker;
                  lw_waker_time = wreq.q_time;
                  lw_waker_req_nth = wreq.q_nth;
                }
                :: st.lost_wakeups
            end)
      end)
    victim_held

let on_event st idx (ev : Sched.event) =
  (match ev.kind with
  | Sched.Ev_block ->
    let nth = bump st.block_counts ev.tid in
    Hashtbl.replace st.last_block ev.tid (held st ev.tid, nth);
    Hashtbl.replace st.asleep ev.tid (nth, ev.time)
  | Sched.Ev_token_use ->
    Hashtbl.remove st.asleep ev.tid;
    let nth = bump st.block_counts ev.tid in
    let waker_and_idx =
      match Hashtbl.find_opt st.pending_tokens ev.tid with
      | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
      | Some _ | None -> if ev.other >= 0 then Some (ev.other, idx) else None
    in
    (match waker_and_idx with
    | Some (waker, send_idx) when waker >= 0 ->
      check_lost_wakeup st ~victim:ev.tid ~victim_held:(held st ev.tid)
        ~victim_block_nth:nth ~waker ~send_idx ~time:ev.time
    | _ -> ())
  | Sched.Ev_token ->
    if ev.other >= 0 then begin
      let q =
        match Hashtbl.find_opt st.pending_tokens ev.tid with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.replace st.pending_tokens ev.tid q;
          q
      in
      Queue.add (ev.other, idx) q
    end
  | Sched.Ev_wakeup ->
    Hashtbl.remove st.asleep ev.tid;
    if ev.other >= 0 then (
      match Hashtbl.find_opt st.last_block ev.tid with
      | Some (victim_held, nth) when victim_held <> [] ->
        check_lost_wakeup st ~victim:ev.tid ~victim_held ~victim_block_nth:nth
          ~waker:ev.other ~send_idx:idx ~time:ev.time
      | Some _ | None -> ())
  | _ -> ());
  (* The causality engine's hard edges run after the bookkeeping so
     the unordered tests above see the pre-edge clocks (the wakeup
     edge itself must not order the pair it is evidence for). *)
  Causality.on_event st.cau ev

(* {2 The swap-window rules}

   An implementation hot-swap announces itself on the trace as
   [A_adaptation] annotations with kind ["lock-impl"]: "swap-begin:",
   then "swap-commit:" or "swap-rollback:". The quiescence protocol's
   contract is that by commit time every registered waiter has been
   kicked awake and re-armed — so a thread still asleep inside an open
   request of the swapped lock at the commit is a waiter the committed
   implementation has no record of, and nothing will ever wake it.
   Dually, an acquire of a swap-managed lock while another thread's
   acquire is still unreleased is a grant that escaped the window. *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let note_swap st sw =
  let k = (sw.sw_victim, sw.sw_obj, sw.sw_fault) in
  if not (Hashtbl.mem st.sw_tbl k) then begin
    Hashtbl.replace st.sw_tbl k ();
    st.swaps <- sw :: st.swaps
  end

let on_swap_commit st (an : Sched.annot) ~obj_name ~label =
  let victims = ref [] in
  Hashtbl.iter
    (fun tid (k, lname) ->
      if lname = obj_name && tid <> an.annot_tid then
        match Hashtbl.find_opt st.asleep tid with
        | Some (nth, btime) -> victims := (tid, k, nth, btime) :: !victims
        | None -> ())
    st.waiting_on;
  List.iter
    (fun (tid, k, nth, btime) ->
      note_swap st
        {
          sw_fault = Sw_lost_waiter;
          sw_obj = obj_name;
          sw_lock = k;
          sw_victim = tid;
          sw_victim_time = btime;
          sw_victim_block_nth = nth;
          sw_victim_req_nth =
            (match Hashtbl.find_opt st.request_counts (tid, k) with
            | Some n -> n
            | None -> 1);
          sw_other = an.annot_tid;
          sw_time = an.annot_time;
          sw_label = label;
        })
    (List.sort compare !victims)

let on_impl_acquire st (an : Sched.annot) k lock_name =
  let prior = match Hashtbl.find_opt st.holders k with Some l -> l | None -> [] in
  (if Hashtbl.mem st.impl_objs lock_name then
     match prior with
     | (other, _) :: _ when other <> an.annot_tid ->
       note_swap st
         {
           sw_fault = Sw_double_grant;
           sw_obj = lock_name;
           sw_lock = k;
           sw_victim = an.annot_tid;
           sw_victim_time = an.annot_time;
           sw_victim_block_nth = 0;
           sw_victim_req_nth =
             (match Hashtbl.find_opt st.request_counts (an.annot_tid, k) with
             | Some n -> n
             | None -> 1);
           sw_other = other;
           sw_time = an.annot_time;
           sw_label = "";
         }
     | _ -> ());
  Hashtbl.replace st.holders k ((an.annot_tid, an.annot_time) :: prior)

let on_annot st idx (an : Sched.annot) =
  match an.annotation with
  | Ops.A_lock_request { lock; lock_name } ->
    Hashtbl.replace st.waiting_on an.annot_tid (key lock, lock_name);
    on_request st idx an lock lock_name
  | Ops.A_lock_acquire { lock; lock_name; _ } ->
    let tid = an.annot_tid in
    let k = key lock in
    Hashtbl.remove st.waiting_on tid;
    on_impl_acquire st an k lock_name;
    Causality.on_acquire st.cau ~tid ~lock:k;
    Hashtbl.replace st.acquires (tid, k)
      { a_comp = Causality.epoch st.cau tid; a_snap = Causality.snapshot st.cau tid };
    Hashtbl.replace st.held tid ((k, lock_name) :: held st tid)
  | Ops.A_lock_release { lock; _ } ->
    let tid = an.annot_tid in
    let k = key lock in
    (* A thread releasing a lock is certainly not parked inside an
       earlier [lock] call: drop any stale open request (a timed-out
       wait leaves one behind — there is no withdrawal annotation). *)
    Hashtbl.remove st.waiting_on tid;
    (match Hashtbl.find_opt st.holders k with
    | Some l -> Hashtbl.replace st.holders k (List.filter (fun (t, _) -> t <> tid) l)
    | None -> ());
    let rec remove = function
      | [] -> []
      | ((k', _) as e) :: rest -> if k' = k then rest else e :: remove rest
    in
    Hashtbl.replace st.held tid (remove (held st tid));
    Causality.on_release st.cau ~tid ~lock:k
  | Ops.A_adaptation { obj_name; kind; label } ->
    if kind = "lock-impl" then begin
      Hashtbl.replace st.impl_objs obj_name ();
      if has_prefix "swap-commit:" label then
        on_swap_commit st an ~obj_name
          ~label:(String.sub label 12 (String.length label - 12))
    end
  | Ops.A_sync_word _ | Ops.A_relaxed_word _ -> ()

(* Pair up reverse edges into deadlock predictions: (H, L) by thread A
   and (L, H) by thread B, weakly unordered requests, and no gate lock
   held at both requests (a common lock held around both nestings
   makes the interleaving unreachable — the classic false positive of
   the observed-trace cycle detector). *)
let deadlocks st =
  let reported = Hashtbl.create 8 in
  List.concat_map
    (fun (h, l) ->
      let pair_key = if h <= l then (h, l) else (l, h) in
      if Hashtbl.mem reported pair_key then []
      else
        let fwd = match Hashtbl.find_opt st.edges (h, l) with Some x -> x | None -> [] in
        let rev = match Hashtbl.find_opt st.edges (l, h) with Some x -> x | None -> [] in
        let candidates =
          List.concat_map
            (fun qa ->
              List.filter_map
                (fun qb ->
                  if qa.q_tid = qb.q_tid then None
                  else
                    let unordered =
                      (not
                         (Causality.ordered_snapshot ~tid:qa.q_tid ~comp:qa.q_comp
                            qb.q_snap))
                      && not
                           (Causality.ordered_snapshot ~tid:qb.q_tid ~comp:qb.q_comp
                              qa.q_snap)
                    in
                    let gate_free =
                      disjoint (lock_keys qa.q_holding) (lock_keys qb.q_holding)
                    in
                    if unordered && gate_free then
                      Some (if qa.q_idx <= qb.q_idx then { d_a = qa; d_b = qb }
                            else { d_a = qb; d_b = qa })
                    else None)
                rev)
            fwd
        in
        match candidates with
        | [] -> []
        | d :: _ ->
          Hashtbl.replace reported pair_key ();
          [ Deadlock d ])
    (List.rev st.edge_order)

let run trace =
  let st =
    {
      cau = Causality.create ();
      exempt = prescan trace;
      held = Hashtbl.create 64;
      words = Hashtbl.create 1024;
      access_counts = Hashtbl.create 1024;
      request_counts = Hashtbl.create 256;
      block_counts = Hashtbl.create 64;
      race_tbl = Hashtbl.create 32;
      races = [];
      edges = Hashtbl.create 64;
      edge_order = [];
      requests = Hashtbl.create 256;
      acquires = Hashtbl.create 256;
      last_block = Hashtbl.create 64;
      pending_tokens = Hashtbl.create 64;
      lw_tbl = Hashtbl.create 8;
      lost_wakeups = [];
      waiting_on = Hashtbl.create 64;
      asleep = Hashtbl.create 64;
      impl_objs = Hashtbl.create 8;
      holders = Hashtbl.create 64;
      sw_tbl = Hashtbl.create 8;
      swaps = [];
    }
  in
  Trace.iteri
    (fun idx -> function
      | Trace.Event ev -> on_event st idx ev
      | Trace.Access a -> on_access st idx a
      | Trace.Annot an -> on_annot st idx an)
    trace;
  List.rev_map (fun r -> Race r) st.races
  @ deadlocks st
  @ List.rev_map (fun lw -> Lost_wakeup lw) st.lost_wakeups
  @ List.rev_map (fun sw -> Swap_window sw) st.swaps
