(** Static model checker for adaptation-policy specs.

    Every shipped adaptive object reifies its policy as an
    {!Adaptive_core.Policy.Spec} (the same data its runtime policy is
    compiled from), so this checker can verify adaptation behaviour
    without running the simulator. The abstraction: the observed
    metric axis is cut at every declared threshold into finitely many
    {e regions}, inside which each condition keeps one truth value;
    one representative per region therefore decides every transition,
    and the per-region step relation is a functional graph over the
    configurations. The checks:

    - {b thrash-cycle}: a configuration cycle closed inside one metric
      region — the policy adapts forever while the workload does not
      change at all (hysteresis only slows such a cycle, it cannot
      break one);
    - {b dead-config}: a configuration unreachable from the initial
      one along first-match edges and guard fallbacks;
    - {b threshold-overlap}: an up- and a down-transition from the
      same configuration enabled by overlapping metric values, or a
      transition fully shadowed by higher-priority ones;
    - {b threshold-inverted}: up/down conditions on the wrong sides of
      each other for the spec's declared {!Adaptive_core.Policy.Spec.monotone}
      polarity;
    - {b hysteresis-dead}: a [t_repeats > 1] transition whose counter
      can never advance because every enabling sample is claimed by a
      higher-priority transition;
    - {b guardrail-gap}: a transition or wedge condition lying
      entirely outside the guard's metric clamp, or a fallback
      configuration that is a sink;
    - {b impl-clamped-out} (implementation ladders,
      [s_kind = "lock-impl"] only): an implementation the unclamped
      ladder can reach that the guardrail's metric clamp cuts off —
      the configuration stays declared but no observable metric can
      ever earn it;
    - {b swap-no-hysteresis} (implementation ladders only): a swap
      transition firing after a single enabling sample
      ([t_repeats < 2]) — an implementation swap runs a full
      freeze-kick-drain quiescence window, so a hysteresis-free ladder
      thrashes through swap windows on metric blips;
    - {b cross-object-conflict}: two specs naming the same
      [s_attribute] whose combined step relations cycle while both
      metrics stay put (each policy stable alone, unstable together);
    - {b malformed-spec}: structural errors from
      {!Adaptive_core.Policy.Spec.validate} (these suppress the
      behavioural checks for that spec).

    Soundness caveats mirror the IR's: one scalar metric per spec,
    regions assume the metric can hold any value indefinitely (the
    checker over-approximates reachable metric sequences, so a
    reported thrash cycle needs a workload that actually parks the
    metric in the region), and externally forced off-spec attribute
    values are outside the model (the compiled policy goes inert
    there). *)

type finding = {
  f_kind : string;  (** one of the kind strings above *)
  f_spec : string;  (** spec name, or ["a + b"] for conflict findings *)
  f_configs : string list;  (** configurations involved, display names *)
  f_region : string option;  (** metric region, when the finding has one *)
  f_message : string;
}

val check : Adaptive_core.Policy.Spec.t -> finding list
(** All single-spec checks, in deterministic order. *)

val conflicts :
  Adaptive_core.Policy.Spec.t -> Adaptive_core.Policy.Spec.t -> finding list
(** Cross-object conflicts between two specs; [[]] unless they name
    the same [s_attribute]. *)

val shipped : unit -> Adaptive_core.Policy.Spec.t list
(** The specs of every shipped adaptive object's default policy:
    adaptive lock (plain and guardrailed), the switch-lock
    implementation ladder, rw-lock preference,
    barrier/condition/semaphore. Pure data — needs no simulation. *)

type spec_report = {
  sr_name : string;
  sr_kind : string;
  sr_attribute : string;
  sr_metric : string;
  sr_configs : int;
  sr_transitions : int;
  sr_findings : finding list;
}

val report : Adaptive_core.Policy.Spec.t -> spec_report

val run :
  ?domains:int ->
  Adaptive_core.Policy.Spec.t list ->
  spec_report list * finding list
(** Check every spec and every unordered pair, fanning out across host
    cores via {!Engine.Runner.map} (input-order-preserving, so the
    result — and any JSON rendered from it — is byte-identical at any
    [domains]). Returns per-spec reports in input order plus the
    cross-object conflict findings. *)

val clean : spec_report list * finding list -> bool

type fixture_outcome = {
  x_name : string;
  x_expected : string list;  (** finding kinds the fixture must trigger *)
  x_found : string list;  (** kinds actually found (sorted, deduped) *)
  x_missing : string list;  (** expected kinds not found — should be [[]] *)
  x_findings : finding list;
}

val check_fixture :
  name:string ->
  expect:string list ->
  Adaptive_core.Policy.Spec.t list ->
  fixture_outcome
(** Run the checker over a seeded-bad fixture (one spec, or a pair for
    conflict fixtures) and compare the finding kinds against the
    expectation. *)

val to_json :
  shipped:spec_report list * finding list ->
  fixtures:fixture_outcome list ->
  string
(** Deterministic rendering — the payload of [POLICY_results.json]. *)
