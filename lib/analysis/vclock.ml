type t = { mutable comp : int array }

let create () = { comp = [||] }

let get t i = if i >= 0 && i < Array.length t.comp then t.comp.(i) else 0

let ensure t n =
  if n >= Array.length t.comp then begin
    let comp = Array.make (max (n + 1) (2 * Array.length t.comp)) 0 in
    Array.blit t.comp 0 comp 0 (Array.length t.comp);
    t.comp <- comp
  end

let set t i v =
  ensure t i;
  t.comp.(i) <- v

let incr t i = set t i (get t i + 1)

let snapshot t = Array.copy t.comp

let join t snap =
  ensure t (Array.length snap - 1);
  Array.iteri (fun i v -> if v > t.comp.(i) then t.comp.(i) <- v) snap
