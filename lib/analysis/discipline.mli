(** Lock-discipline lint.

    Three rules over the lock acquire/release annotations and the
    scheduling events:

    - [unlock-not-held] — a release with no matching acquire by the
      same thread (double unlock, or unlocking someone else's lock).
      The configurable locks raise [Lock_core.Misuse] at runtime for
      this; this rule additionally covers the raw {!Cthreads.Spin}
      mutex, which has no owner word.
    - [block-holding-spin-lock] — the thread went to sleep while
      holding a lock whose waiting policy never sleeps, so every
      waiter burns its processor for the whole sleep.
    - [lock-held-at-exit] — the thread finished still holding a lock. *)

val run : names:(int -> string) -> Trace.t -> Diag.t list
