module Vclock = Vclock
module Diag = Diag
module Trace = Trace
module Race = Race
module Lock_order = Lock_order
module Discipline = Discipline
module Causality = Causality
module Predict = Predict
module Witness = Witness
module Policy_check = Policy_check
module Proto_check = Proto_check
open Butterfly

type report = {
  diags : Diag.t list;
  events : int;
  accesses : int;
  aborted : string option;
}

let of_category c report = List.filter (fun d -> d.Diag.category = c) report.diags
let races report = of_category Diag.Race report
let cycles report = of_category Diag.Lock_order report
let lints report = of_category Diag.Discipline report
let clean report = report.diags = [] && report.aborted = None

let check_trace cfg program =
  let sim = Sched.create cfg in
  let trace = Trace.attach sim in
  let aborted, abort_diag =
    match Sched.run sim program with
    | () -> (None, [])
    | exception Sched.Thread_crash (thread, Locks.Lock_core.Misuse msg) ->
      (* The runtime ownership check fired: fold it into the report
         instead of crashing the analyzer (the lint pass typically
         flags the same event from the annotation stream). *)
      ( Some (Printf.sprintf "thread %s crashed: %s" thread msg),
        [
          Diag.make ~category:Diag.Discipline ~rule:"unlock-not-held"
            ~time:(Sched.final_time sim) ~thread msg;
        ] )
    | exception Sched.Deadlock msg ->
      ( Some (Printf.sprintf "deadlock: %s" msg),
        [
          Diag.make ~category:Diag.Discipline ~rule:"deadlock"
            ~time:(Sched.final_time sim) ~thread:"(machine)"
            (Printf.sprintf "the run deadlocked: %s" msg);
        ] )
  in
  let name_table = Hashtbl.create 64 in
  List.iter (fun (tid, name, _) -> Hashtbl.replace name_table tid name)
    (Sched.thread_report sim);
  let names tid =
    match Hashtbl.find_opt name_table tid with
    | Some n -> n
    | None -> Printf.sprintf "t%d" tid
  in
  let diags =
    Race.run ~names trace @ Lock_order.run ~names trace @ Discipline.run ~names trace
    @ abort_diag
  in
  ( {
      diags = List.stable_sort Diag.compare diags;
      events = Trace.events trace;
      accesses = Trace.accesses trace;
      aborted;
    },
    trace,
    names )

let check cfg program =
  let report, _, _ = check_trace cfg program in
  report

type predicted = {
  finding : Predict.prediction;
  rule : string;
  description : string;
  witness : Witness.result option;
}

type predictive = { observed : report; predictions : predicted list }

let check_predictive ?(confirm = false) cfg program =
  let observed, trace, names = check_trace cfg program in
  let predictions =
    List.map
      (fun p ->
        {
          finding = p;
          rule = Predict.rule p;
          description = Predict.describe ~names p;
          witness =
            (if confirm then Some (Witness.confirm cfg program trace p) else None);
        })
      (Predict.run trace)
  in
  { observed; predictions }

let confirmed pv =
  List.filter
    (fun p ->
      match p.witness with
      | Some w -> w.Witness.w_status = Witness.Confirmed
      | None -> false)
    pv.predictions

let summary report =
  Printf.sprintf "%d events, %d accesses: %d race(s), %d lock-order cycle(s), %d lint(s)%s"
    report.events report.accesses
    (List.length (races report))
    (List.length (cycles report))
    (List.length (lints report))
    (match report.aborted with None -> "" | Some msg -> Printf.sprintf " [aborted: %s]" msg)

let pp ppf report =
  Format.fprintf ppf "%s@." (summary report);
  List.iter (fun d -> Format.fprintf ppf "  %s@." (Diag.to_string d)) report.diags
