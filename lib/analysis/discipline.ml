open Butterfly

type key = int * int

let key a = (Memory.node_of a, Memory.index_of a)

type held = { h_key : key; h_name : string; h_spin : bool }

(* Lock-usage lint over the merged stream: tracks the per-thread stack
   of held locks from the acquire/release annotations and flags
   blocking while holding a spin-mode lock, releases without a
   matching acquire, and locks still held at thread exit. *)
let run ~names trace =
  let held : (int, held list) Hashtbl.t = Hashtbl.create 64 in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let holding tid = match Hashtbl.find_opt held tid with Some h -> h | None -> [] in
  Trace.iter
    (function
      | Trace.Annot
          { annotation = Ops.A_lock_acquire { lock; lock_name; spin_wait }; annot_tid; _ }
        ->
        Hashtbl.replace held annot_tid
          ({ h_key = key lock; h_name = lock_name; h_spin = spin_wait }
          :: holding annot_tid)
      | Trace.Annot
          { annotation = Ops.A_lock_release { lock; lock_name }; annot_tid; annot_time; _ }
        ->
        let k = key lock in
        let h = holding annot_tid in
        if List.exists (fun e -> e.h_key = k) h then begin
          let rec remove = function
            | [] -> []
            | e :: rest -> if e.h_key = k then rest else e :: remove rest
          in
          Hashtbl.replace held annot_tid (remove h)
        end
        else
          add
            (Diag.make ~category:Diag.Discipline ~rule:"unlock-not-held" ~time:annot_time
               ~thread:(names annot_tid)
               (Printf.sprintf "unlocked %s without holding it (double unlock or \
                                unlock of someone else's lock)"
                  lock_name))
      | Trace.Event { kind = Sched.Ev_block; tid; time; _ } -> (
        (* The thread really slept (token-absorbing blocks emit
           Ev_token_use instead): any spin-mode lock it holds keeps
           every waiter burning its processor until the sleeper is
           rescheduled. *)
        match List.filter (fun e -> e.h_spin) (holding tid) with
        | [] -> ()
        | spins ->
          List.iter
            (fun e ->
              add
                (Diag.make ~category:Diag.Discipline ~rule:"block-holding-spin-lock"
                   ~time ~thread:(names tid)
                   (Printf.sprintf
                      "blocked while holding spin-mode lock %s; its waiters spin for \
                       the whole sleep"
                      e.h_name)))
            spins)
      | Trace.Event { kind = Sched.Ev_finish; tid; time; _ } ->
        List.iter
          (fun e ->
            add
              (Diag.make ~category:Diag.Discipline ~rule:"lock-held-at-exit" ~time
                 ~thread:(names tid)
                 (Printf.sprintf "exited still holding lock %s" e.h_name)))
          (holding tid);
        Hashtbl.remove held tid
      | Trace.Annot _ | Trace.Event _ | Trace.Access _ -> ())
    trace;
  List.rev !diags
