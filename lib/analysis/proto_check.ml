(* Explicit-state model checker over Core.Protocol. Bounded BFS with
   a hashed seen-set; liveness via backward reachability from the goal
   states. Pure and deterministic throughout, so every state count,
   verdict and counterexample — and the JSON built from them — is the
   same bytes at any domain count. *)

module Protocol = Adaptive_core.Protocol


type counterexample = { x_steps : (string * string) list; x_why : string; x_state : string }

type verdict = Holds | Violated of counterexample | Out_of_bounds

type report = {
  r_model : string;
  r_property : string;
  r_desc : string;
  r_states : int;
  r_edges : int;
  r_verdict : verdict;
}

(* Growable state store: ids are BFS discovery order, which doubles as
   the deterministic tiebreak (the earliest wedged state is the one
   reported). *)
type 'a vec = { mutable buf : 'a array; mutable len : int }

let vec_make dummy = { buf = Array.make 1024 dummy; len = 0 }

let vec_push v x =
  if v.len = Array.length v.buf then begin
    let buf = Array.make (2 * v.len) v.buf.(0) in
    Array.blit v.buf 0 buf 0 v.len;
    v.buf <- buf
  end;
  v.buf.(v.len) <- x;
  v.len <- v.len + 1

let vec_get v i = v.buf.(i)

(* Reconstruct the (role, label) path from the initial state to [id]
   via parent pointers. *)
let path_to parents id =
  let rec go acc id =
    match vec_get parents id with
    | None -> acc
    | Some (pred, role, label) -> go ((role, label) :: acc) pred
  in
  go [] id

let check ?(max_states = 2_000_000) model prop =
  let init = Protocol.init model in
  let dummy_state = init in
  let states = vec_make dummy_state in
  let parents : (int * string * string) option vec = vec_make None in
  (* Forward adjacency, only kept for liveness (the backward pass). *)
  let keep_edges = match prop with Protocol.Liveness _ -> true | _ -> false in
  let succs_of : int list vec = vec_make [] in
  let seen : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let edges = ref 0 in
  let violation = ref None in
  let truncated = ref false in
  let intern st parent =
    let k = Protocol.key model st in
    match Hashtbl.find_opt seen k with
    | Some id -> (id, false)
    | None ->
      let id = states.len in
      Hashtbl.add seen k id;
      vec_push states st;
      vec_push parents parent;
      if keep_edges then vec_push succs_of [];
      (id, true)
  in
  let bad_state id st =
    match prop with
    | Protocol.Safety { q_bad; _ } -> (
      match q_bad model st with
      | Some why ->
        violation :=
          Some { x_steps = path_to parents id; x_why = why;
                 x_state = Protocol.describe model st };
        true
      | None -> false)
    | _ -> false
  in
  let bad_step pre_id pre role label =
    match prop with
    | Protocol.Step { q_bad; _ } -> (
      match q_bad model ~role ~label pre with
      | Some why ->
        violation :=
          Some { x_steps = path_to parents pre_id @ [ (role, label) ]; x_why = why;
                 x_state = Protocol.describe model pre };
        true
      | None -> false)
    | _ -> false
  in
  let q = Queue.create () in
  let id0, _ = intern init None in
  if not (bad_state id0 init) then Queue.add id0 q;
  (try
     while not (Queue.is_empty q) do
       let id = Queue.pop q in
       let st = vec_get states id in
       List.iter
         (fun (role, label, st') ->
           incr edges;
           if bad_step id st role label then raise Exit;
           let id', fresh = intern st' (Some (id, role, label)) in
           if keep_edges then
             succs_of.buf.(id) <- id' :: succs_of.buf.(id);
           if fresh then begin
             if bad_state id' st' then raise Exit;
             if states.len >= max_states then begin
               truncated := true;
               raise Exit
             end;
             Queue.add id' q
           end)
         (Protocol.successors model st)
     done
   with Exit -> ());
  let verdict =
    match (!violation, !truncated) with
    | Some cex, _ -> Violated cex
    | None, true -> Out_of_bounds
    | None, false -> (
      match prop with
      | Protocol.Safety _ | Protocol.Step _ -> Holds
      | Protocol.Liveness { q_goal; _ } ->
        (* Backward reachability: every reachable state must be able
           to reach a goal state. *)
        let n = states.len in
        let preds = Array.make n [] in
        for id = 0 to n - 1 do
          List.iter (fun id' -> preds.(id') <- id :: preds.(id')) (vec_get succs_of id)
        done;
        let ok = Array.make n false in
        let bq = Queue.create () in
        for id = 0 to n - 1 do
          if q_goal model (vec_get states id) then begin
            ok.(id) <- true;
            Queue.add id bq
          end
        done;
        while not (Queue.is_empty bq) do
          let id = Queue.pop bq in
          List.iter
            (fun p ->
              if not ok.(p) then begin
                ok.(p) <- true;
                Queue.add p bq
              end)
            preds.(id)
        done;
        let wedged = ref (-1) in
        for id = n - 1 downto 0 do
          if not ok.(id) then wedged := id
        done;
        if !wedged < 0 then Holds
        else
          Violated
            { x_steps = path_to parents !wedged;
              x_why = "wedged: no path to a quiesced/goal state";
              x_state = Protocol.describe model (vec_get states !wedged) })
  in
  { r_model = Protocol.name model; r_property = Protocol.property_name prop;
    r_desc = Protocol.property_desc prop; r_states = states.len; r_edges = !edges;
    r_verdict = verdict }

let check_all ?domains ?max_states ?only models =
  let models =
    match only with
    | None -> models
    | Some n -> List.filter (fun (m, _) -> Protocol.name m = n) models
  in
  let tasks =
    List.concat_map (fun (m, props) -> List.map (fun p -> (m, p)) props) models
  in
  Engine.Runner.map ?domains (fun (m, p) -> check ?max_states m p) tasks

let clean reports = List.for_all (fun r -> r.r_verdict = Holds) reports

type fixture_report = {
  f_name : string;
  f_expect : string list;
  f_found : string list;
  f_missing : string list;
  f_reports : report list;
}

let check_fixture ?max_states ~name ~expect (model, props) =
  let reports = List.map (check ?max_states model) props in
  let found =
    List.filter_map
      (fun r -> match r.r_verdict with Violated _ -> Some r.r_property | _ -> None)
      reports
  in
  let missing = List.filter (fun e -> not (List.mem e found)) expect in
  { f_name = name; f_expect = expect; f_found = found; f_missing = missing;
    f_reports = reports }

let fixtures_ok fixtures = List.for_all (fun f -> f.f_missing = []) fixtures

(* -- model fidelity -- *)

let replay model steps =
  (* Real transition logs carry no clock events, so when a step is
     only enabled past a deadline we stutter through "tick" system
     transitions (bounded by the model's clock range) before giving
     up on it. *)
  let find st role label =
    List.find_opt
      (fun (r, l, _) -> r = role && l = label)
      (Protocol.successors model st)
  in
  let rec advance st role label ticks =
    match find st role label with
    | Some (_, _, st') -> Some st'
    | None when ticks > 0 -> (
      match find st "" "tick" with
      | Some (_, _, st') -> advance st' role label (ticks - 1)
      | None -> None)
    | None -> None
  in
  let rec go st n = function
    | [] -> Ok ()
    | (role, label) :: rest -> (
      match advance st role label (Protocol.spec model).Protocol.Spec.p_clock_max with
      | Some st' -> go st' (n + 1) rest
      | None ->
        let succs = Protocol.successors model st in
        Error
          (Printf.sprintf
             "step %d: model cannot take %s:%s (enabled: %s) in state %s" n role label
             (String.concat ", " (List.map (fun (r, l, _) -> r ^ ":" ^ l) succs))
             (Protocol.describe model st)))
  in
  go (Protocol.init model) 0 steps

(* Deterministic LCG so walks never depend on host Random state. *)
let lcg x = ((x * 25214903917) + 11) land 0xFFFF_FFFF_FFFF

let random_walk model ~seed ~steps =
  let rec go st rng n acc =
    if n >= steps then (List.rev acc, None)
    else
      match Protocol.successors model st with
      | [] -> (List.rev acc, None)
      | succs ->
        let rng = lcg rng in
        let role, label, st' = List.nth succs (rng mod List.length succs) in
        go st' rng (n + 1) ((role, label) :: acc)
  in
  go (Protocol.init model) (lcg (seed + 1)) 0 []

let walk_violates model props ~seed ~steps =
  let bad st =
    List.fold_left
      (fun acc p ->
        match (acc, p) with
        | Some _, _ -> acc
        | None, Protocol.Safety { q_bad; _ } -> q_bad model st
        | None, _ -> None)
      None props
  in
  let bad_step st role label =
    List.fold_left
      (fun acc p ->
        match (acc, p) with
        | Some _, _ -> acc
        | None, Protocol.Step { q_bad; _ } -> q_bad model ~role ~label st
        | None, _ -> None)
      None props
  in
  let rec go st rng n =
    match bad st with
    | Some why -> Some why
    | None ->
      if n >= steps then None
      else
        match Protocol.successors model st with
        | [] -> None
        | succs -> (
          let rng = lcg rng in
          let role, label, st' = List.nth succs (rng mod List.length succs) in
          match bad_step st role label with
          | Some why -> Some why
          | None -> go st' rng (n + 1))
  in
  go (Protocol.init model) (lcg (seed + 1)) 0

(* -- witness lowering -- *)

type lowering = {
  l_fixture : string;
  l_scenario : string;
  l_rule : string;
  l_confirmed : bool;
  l_replay_ok : bool;
  l_schedule_len : int;
}

(* -- deterministic JSON -- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string_list l =
  "[" ^ String.concat ", " (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) l) ^ "]"

let verdict_json = function
  | Holds -> "\"holds\""
  | Out_of_bounds -> "\"out-of-bounds\""
  | Violated cex ->
    Printf.sprintf
      "{ \"violated\": { \"why\": \"%s\", \"state\": \"%s\", \"trace\": %s } }"
      (json_escape cex.x_why) (json_escape cex.x_state)
      (json_string_list (List.map (fun (r, l) -> (if r = "" then "" else r ^ ":") ^ l) cex.x_steps))

let report_json indent r =
  let pad = String.make indent ' ' in
  String.concat ",\n"
    [ Printf.sprintf "%s\"model\": \"%s\"" pad (json_escape r.r_model);
      Printf.sprintf "%s\"property\": \"%s\"" pad (json_escape r.r_property);
      Printf.sprintf "%s\"desc\": \"%s\"" pad (json_escape r.r_desc);
      Printf.sprintf "%s\"states\": %d" pad r.r_states;
      Printf.sprintf "%s\"edges\": %d" pad r.r_edges;
      Printf.sprintf "%s\"verdict\": %s" pad (verdict_json r.r_verdict) ]

let to_json ~shipped ~fixtures ~lowered =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"proto_check\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"shipped_clean\": %b,\n" (clean shipped));
  Buffer.add_string buf
    (Printf.sprintf "    \"fixtures_detected\": %b,\n" (fixtures_ok fixtures));
  Buffer.add_string buf "    \"shipped\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map (fun r -> "      {\n" ^ report_json 8 r ^ "\n      }") shipped));
  Buffer.add_string buf "\n    ],\n    \"fixtures\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun f ->
            String.concat "\n"
              [ "      {";
                Printf.sprintf "        \"fixture\": \"%s\"," (json_escape f.f_name);
                Printf.sprintf "        \"expect\": %s," (json_string_list f.f_expect);
                Printf.sprintf "        \"found\": %s," (json_string_list f.f_found);
                Printf.sprintf "        \"missing\": %s," (json_string_list f.f_missing);
                "        \"properties\": [";
                String.concat ",\n"
                  (List.map (fun r -> "          {\n" ^ report_json 12 r ^ "\n          }")
                     f.f_reports);
                "        ]";
                "      }" ])
          fixtures));
  Buffer.add_string buf "\n    ],\n    \"lowered\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun l ->
            String.concat "\n"
              [ "      {";
                Printf.sprintf "        \"fixture\": \"%s\"," (json_escape l.l_fixture);
                Printf.sprintf "        \"scenario\": \"%s\"," (json_escape l.l_scenario);
                Printf.sprintf "        \"rule\": \"%s\"," (json_escape l.l_rule);
                Printf.sprintf "        \"confirmed\": %b," l.l_confirmed;
                Printf.sprintf "        \"replay_ok\": %b," l.l_replay_ok;
                Printf.sprintf "        \"schedule_len\": %d" l.l_schedule_len;
                "      }" ])
          lowered));
  Buffer.add_string buf "\n    ]\n  }\n}\n";
  Buffer.contents buf
