open Butterfly

type key = int * int

let key a = (Memory.node_of a, Memory.index_of a)

type witness = { w_thread : string; w_time : int; w_holding : string; w_acquiring : string }

(* Build the acquired-while-holding graph from the annotation stream:
   an edge H -> L for every acquisition of L by a thread holding H,
   keeping the first witness of each edge. *)
let edges ~names trace =
  let held : (int, (key * string) list) Hashtbl.t = Hashtbl.create 64 in
  let edges : (key * key, witness) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  (* edge keys, first-seen order *)
  let locknames : (key, string) Hashtbl.t = Hashtbl.create 64 in
  Trace.iter
    (function
      | Trace.Annot
          { annotation = Ops.A_lock_request { lock; lock_name }; annot_tid; annot_time; _ }
        ->
        (* Edges come from the request, not the completed acquisition:
           in a real deadlock the acquisition never completes, yet the
           request is exactly the evidence the graph needs. *)
        let l = key lock in
        Hashtbl.replace locknames l lock_name;
        let holding =
          match Hashtbl.find_opt held annot_tid with Some h -> h | None -> []
        in
        List.iter
          (fun (h, hname) ->
            if not (Hashtbl.mem edges (h, l)) then begin
              Hashtbl.replace edges (h, l)
                {
                  w_thread = names annot_tid;
                  w_time = annot_time;
                  w_holding = hname;
                  w_acquiring = lock_name;
                };
              order := (h, l) :: !order
            end)
          holding
      | Trace.Annot
          { annotation = Ops.A_lock_acquire { lock; lock_name; _ }; annot_tid; _ } ->
        let l = key lock in
        Hashtbl.replace locknames l lock_name;
        let holding =
          match Hashtbl.find_opt held annot_tid with Some h -> h | None -> []
        in
        Hashtbl.replace held annot_tid ((l, lock_name) :: holding)
      | Trace.Annot { annotation = Ops.A_lock_release { lock; _ }; annot_tid; _ } ->
        let l = key lock in
        let rec remove = function
          | [] -> []
          | ((k, _) as e) :: rest -> if k = l then rest else e :: remove rest
        in
        (match Hashtbl.find_opt held annot_tid with
        | Some h -> Hashtbl.replace held annot_tid (remove h)
        | None -> ())
      | Trace.Annot _ | Trace.Event _ | Trace.Access _ -> ())
    trace;
  (List.rev !order, edges, locknames)

(* Cycle detection over the (small) lock graph: for each edge u -> v,
   check whether v can reach u; the first such edge in first-seen
   order witnesses its cycle. Each strongly connected pair is reported
   once (the path is recomputed for the message). *)
let run ~names trace =
  let order, edges, locknames = edges ~names trace in
  let succs u =
    List.filter_map (fun (a, b) -> if a = u then Some b else None) order
  in
  let reaches src dst =
    let visited = Hashtbl.create 16 in
    let rec go u path =
      if u = dst then Some (List.rev (u :: path))
      else if Hashtbl.mem visited u then None
      else begin
        Hashtbl.replace visited u ();
        let rec first = function
          | [] -> None
          | v :: rest -> (
            match go v (u :: path) with Some p -> Some p | None -> first rest)
        in
        first (succs u)
      end
    in
    go src []
  in
  let reported = Hashtbl.create 16 in
  let lock_name k =
    match Hashtbl.find_opt locknames k with
    | Some n -> n
    | None -> Printf.sprintf "lock<%d:%d>" (fst k) (snd k)
  in
  List.filter_map
    (fun (u, v) ->
      match reaches v u with
      | None -> None
      | Some path ->
        (* Canonical cycle identity: the sorted set of locks in it. *)
        let cycle_locks = List.sort_uniq compare (u :: path) in
        if Hashtbl.mem reported cycle_locks then None
        else begin
          Hashtbl.replace reported cycle_locks ();
          let w = Hashtbl.find edges (u, v) in
          let cycle_names = List.map lock_name (u :: path) in
          Some
            (Diag.make ~category:Diag.Lock_order ~rule:"lock-order-cycle" ~time:w.w_time
               ~thread:w.w_thread
               (Printf.sprintf
                  "locks %s are acquired in a cycle (deadlock potential); witness: %s \
                   acquired %s while holding %s at %d ns"
                  (String.concat " -> " cycle_names)
                  w.w_thread w.w_acquiring w.w_holding w.w_time))
        end)
    order
