(** Correctness tooling over the deterministic simulator.

    [check cfg program] runs [program] on a fresh machine built from
    [cfg] with all three sanitizers watching the run through the
    scheduler's hook buses, and returns their findings:

    - {!Race}: the data-race detector (Eraser locksets confirmed by a
      vector-clock happens-before pass);
    - {!Lock_order}: deadlock potential (cycles in the
      acquired-while-holding graph), found even on runs that happen
      not to deadlock;
    - {!Discipline}: lock-usage lint (unlock without holding, blocking
      while holding a spin-mode lock, lock held at thread exit).

    A run that crashes with {!Locks.Lock_core.Misuse} or
    {!Butterfly.Sched.Deadlock} is folded into the report rather than
    escaping. Because the simulator is deterministic, checking the
    same config and program twice yields bit-for-bit identical
    reports. *)

module Vclock = Vclock
module Diag = Diag
module Trace = Trace
module Race = Race
module Lock_order = Lock_order
module Discipline = Discipline

type report = {
  diags : Diag.t list;  (** all findings, sorted by {!Diag.compare} *)
  events : int;  (** scheduling events observed *)
  accesses : int;  (** memory accesses observed *)
  aborted : string option;
      (** set when the run ended in [Misuse] or [Deadlock] instead of
          terminating normally *)
}

val check : Butterfly.Config.t -> (unit -> unit) -> report

val races : report -> Diag.t list
val cycles : report -> Diag.t list
val lints : report -> Diag.t list

val clean : report -> bool
(** No diagnostics and a normal termination. *)

val summary : report -> string
(** One-line counts. *)

val pp : Format.formatter -> report -> unit
(** The summary line followed by one line per diagnostic. *)
