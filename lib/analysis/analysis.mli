(** Correctness tooling over the deterministic simulator.

    [check cfg program] runs [program] on a fresh machine built from
    [cfg] with all three sanitizers watching the run through the
    scheduler's hook buses, and returns their findings:

    - {!Race}: the data-race detector (Eraser locksets confirmed by a
      vector-clock happens-before pass);
    - {!Lock_order}: deadlock potential (cycles in the
      acquired-while-holding graph), found even on runs that happen
      not to deadlock;
    - {!Discipline}: lock-usage lint (unlock without holding, blocking
      while holding a spin-mode lock, lock held at thread exit).

    A run that crashes with {!Locks.Lock_core.Misuse} or
    {!Butterfly.Sched.Deadlock} is folded into the report rather than
    escaping. Because the simulator is deterministic, checking the
    same config and program twice yields bit-for-bit identical
    reports. *)

module Vclock = Vclock
module Diag = Diag
module Trace = Trace
module Race = Race
module Lock_order = Lock_order
module Discipline = Discipline
module Causality = Causality
module Predict = Predict
module Witness = Witness
module Policy_check = Policy_check
module Proto_check = Proto_check

type report = {
  diags : Diag.t list;  (** all findings, sorted by {!Diag.compare} *)
  events : int;  (** scheduling events observed *)
  accesses : int;  (** memory accesses observed *)
  aborted : string option;
      (** set when the run ended in [Misuse] or [Deadlock] instead of
          terminating normally *)
}

val check : Butterfly.Config.t -> (unit -> unit) -> report

val check_trace :
  Butterfly.Config.t -> (unit -> unit) -> report * Trace.t * (int -> string)
(** Like {!check} but also returns the recorded trace and the
    tid→name function, for passes that go beyond the built-in
    sanitizers (prediction, witness replay). *)

(** {1 Predictive analysis}

    The observed-trace sanitizers above report what the schedule that
    actually ran exposed. The predictive pipeline ({!Predict} over
    {!Causality}) additionally reports bugs reachable only in a
    {e reordering} of the run, and {!Witness} promotes each prediction
    to Confirmed by steering a re-execution into the predicted state
    and replaying it bit-for-bit. *)

type predicted = {
  finding : Predict.prediction;
  rule : string;  (** e.g. ["predicted-race"] *)
  description : string;
  witness : Witness.result option;  (** present when confirmation ran *)
}

type predictive = { observed : report; predictions : predicted list }

val check_predictive :
  ?confirm:bool -> Butterfly.Config.t -> (unit -> unit) -> predictive
(** [check_predictive cfg program] is {!check} plus the predictive
    pass over the same recorded trace. With [~confirm:true] (default
    false) each prediction is put through witness replay — [program]
    is re-executed under the controlled scheduler, so it must be
    re-runnable. Deterministic like {!check}. *)

val confirmed : predictive -> predicted list
(** The predictions whose witness replay confirmed them. *)

val races : report -> Diag.t list
val cycles : report -> Diag.t list
val lints : report -> Diag.t list

val clean : report -> bool
(** No diagnostics and a normal termination. *)

val summary : report -> string
(** One-line counts. *)

val pp : Format.formatter -> report -> unit
(** The summary line followed by one line per diagnostic. *)
