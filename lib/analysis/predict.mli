(** Predictive analysis: findings reachable in a {e reordering} of the
    observed run.

    Where the observed-trace detectors ({!Race}, {!Lock_order}) report
    what the schedule that actually ran exposed, this pass drives the
    weak causality engine ({!Causality}) over the trace and reports
    pairs of operations that some legal reordering can bring into
    conflict — races whose accesses happened to be separated in time,
    lock-order deadlocks whose nestings never overlapped, and lost
    wakeups where the observed schedule delivered the wakeup in time.

    Every prediction carries concrete, re-findable coordinates (thread,
    per-thread occurrence index of the access / request / block point),
    which is what {!Witness} uses to synthesize a steering plan and
    replay the prediction into a machine-checked schedule. Predictions
    are {e candidates}: zero false positives holds for the Confirmed
    set after witness replay, not for this list. *)

type key = int * int

val key_name : key -> string

type site = {
  s_tid : int;
  s_time : int;
  s_idx : int;  (** position in the analyzed trace *)
  s_nth : int;  (** 1-based count of this thread's accesses to the word *)
  s_write : bool;
  s_locks : (key * string) list;  (** locks held, innermost first *)
}

type race_prediction = {
  r_word : key;
  r_first : site;  (** in trace order *)
  r_second : site;
  mutable r_count : int;  (** occurrences of this (site pair, lock sets) *)
}

type req_site = {
  q_tid : int;
  q_time : int;
  q_idx : int;
  q_nth : int;  (** 1-based count of this thread's requests of the lock *)
  q_lock : key;
  q_lock_name : string;
  q_comp : int;
  q_snap : int array;
  q_holding : (key * string) list;
}

type deadlock_prediction = { d_a : req_site; d_b : req_site }
(** [d_a] (earlier in the trace) requests lock L while holding H;
    [d_b] requests H while holding L; the requests are weakly
    unordered and share no gate lock. *)

type lost_wakeup_prediction = {
  lw_lock : key;
  lw_lock_name : string;
  lw_victim : int;
  lw_victim_time : int;
  lw_victim_block_nth : int;  (** 1-based count of the victim's block points *)
  lw_waker : int;
  lw_waker_time : int;
  lw_waker_req_nth : int;  (** nth request of [lw_lock] by the waker *)
}

type swap_fault =
  | Sw_lost_waiter
      (** a sleeping waiter was still parked when the swap committed:
          the kick missed it, so the committed implementation has no
          record of it and nothing will ever wake it *)
  | Sw_double_grant
      (** a thread acquired the lock while another thread's acquire
          was still unreleased: a grant escaped the swap window *)

type swap_prediction = {
  sw_fault : swap_fault;
  sw_obj : string;  (** the adaptation object's name (= the lock's) *)
  sw_lock : key;
  sw_victim : int;  (** the lost sleeper, or the second grantee *)
  sw_victim_time : int;  (** when it blocked / when it acquired *)
  sw_victim_block_nth : int;
      (** 1-based count of the victim's block points (lost waiter) *)
  sw_victim_req_nth : int;  (** nth request of the lock by the victim *)
  sw_other : int;  (** the committing swapper, or the first holder *)
  sw_time : int;  (** the commit / the overlapping acquire *)
  sw_label : string;  (** the swap's from->to label, when known *)
}
(** A swap-window finding: the implementation hot-swap windows a
    switch lock announces with [A_adaptation] (kind ["lock-impl"])
    annotations, checked for the two protocol-fatal outcomes. Unlike
    the reordering rules these fire on the observed schedule itself;
    they are still candidates until {!Witness} replays them (a
    timed-out request followed by an unrelated block point can alias a
    sleeping waiter — witness replay screens such candidates out). *)

type prediction =
  | Race of race_prediction
  | Deadlock of deadlock_prediction
  | Lost_wakeup of lost_wakeup_prediction
  | Swap_window of swap_prediction

val rule : prediction -> string
(** ["predicted-race"], ["predicted-deadlock"],
    ["predicted-lost-wakeup"], ["predicted-swap-lost-waiter"] or
    ["predicted-swap-double-grant"]. *)

val describe : names:(int -> string) -> prediction -> string

val run : Trace.t -> prediction list
(** Analyze a recorded trace. Deterministic: same trace, same
    predictions in the same order (races in discovery order, then
    deadlocks, then lost wakeups, then swap-window findings). *)
