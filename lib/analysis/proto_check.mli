(** Explicit-state model checker for [Protocol] specs.

    Bounded breadth-first exploration with a hashed seen-set — no
    external tools. Safety properties are judged on every reachable
    state (or transition, for [Step] properties) as it is discovered;
    liveness-as-absence-of-wedged-states does one full exploration,
    then a backward reachability pass from the goal states: any
    reachable state that cannot reach a goal state is wedged, and the
    BFS path to the earliest such state is the counterexample.

    Everything is deterministic — exploration order is the spec's
    declaration order — so state counts, verdicts, counterexample
    traces and the JSON built from them are identical bytes at any
    [--domains] count. [check_all] fans one model × property pair per
    task over [Engine.Runner]. *)


module Protocol = Adaptive_core.Protocol
type counterexample = {
  x_steps : (string * string) list;  (** (role, label) from the initial state *)
  x_why : string;  (** what is wrong with the final state/step *)
  x_state : string;  (** [Protocol.describe] of the violating state *)
}

type verdict =
  | Holds
  | Violated of counterexample
  | Out_of_bounds  (** exploration hit [max_states] before an answer *)

type report = {
  r_model : string;
  r_property : string;
  r_desc : string;
  r_states : int;  (** reachable states explored *)
  r_edges : int;  (** transitions explored *)
  r_verdict : verdict;
}

val check : ?max_states:int -> Protocol.t -> Protocol.property -> report
(** Check one property of one model. [max_states] defaults to
    2_000_000. *)

val check_all :
  ?domains:int ->
  ?max_states:int ->
  ?only:string ->
  (Protocol.t * Protocol.property list) list ->
  report list
(** Expand to model × property tasks and fan them over
    [Engine.Runner.map]; [only] keeps just the models with that
    name. Output order is input order regardless of [domains]. *)

val clean : report list -> bool
(** No violation and nothing out of bounds. *)

(** {1 Seeded-bad fixtures} *)

type fixture_report = {
  f_name : string;
  f_expect : string list;  (** property names that must be violated *)
  f_found : string list;  (** property names actually violated *)
  f_missing : string list;  (** expected but not violated — a checker bug *)
  f_reports : report list;
}

val check_fixture :
  ?max_states:int ->
  name:string ->
  expect:string list ->
  Protocol.t * Protocol.property list ->
  fixture_report

val fixtures_ok : fixture_report list -> bool
(** Every seeded-bad fixture produced all its expected violations. *)

(** {1 Model fidelity} *)

val replay : Protocol.t -> (string * string) list -> (unit, string) result
(** Drive the model along a recorded (role, label) sequence from the
    initial state; [Error] describes the first step the model cannot
    take — i.e. the point where the implementation's transition log
    diverges from the model. Real logs carry no clock events, so a
    step that is only enabled past a deadline is retried after
    stuttering through ["tick"] system transitions (bounded by the
    model's clock range). *)

val random_walk :
  Protocol.t -> seed:int -> steps:int -> (string * string) list * string option
(** Deterministic pseudo-random walk; returns the (role, label) trace
    and the first safety complaint found en route when given none —
    callers pass the trace back through {!replay} or assert on it. The
    walk stops early at terminal states. *)

val walk_violates :
  Protocol.t -> Protocol.property list -> seed:int -> steps:int -> string option
(** Random-walk the model asserting every [Safety]/[Step] property at
    each step; [Some why] on the first violation. *)

(** {1 Witness lowering} *)

type lowering = {
  l_fixture : string;  (** seeded-bad fixture the counterexample came from *)
  l_scenario : string;  (** analysis-suite scenario replayed in the simulator *)
  l_rule : string;  (** predictive rule expected to confirm *)
  l_confirmed : bool;  (** simulator manifested the predicted failure *)
  l_replay_ok : bool;  (** recorded schedule replayed bit-for-bit *)
  l_schedule_len : int;
}

(** {1 Report} *)

val to_json :
  shipped:report list ->
  fixtures:fixture_report list ->
  lowered:lowering list ->
  string
(** Deterministic JSON document (stable bytes at any domain count). *)
