type category = Race | Lock_order | Discipline

type t = {
  category : category;
  rule : string;
  time : int;
  thread : string;
  message : string;
}

let category_name = function
  | Race -> "race"
  | Lock_order -> "lock-order"
  | Discipline -> "discipline"

let make ~category ~rule ~time ~thread message = { category; rule; time; thread; message }

let to_string d =
  Printf.sprintf "[%d ns] %s/%s (thread %s): %s" d.time (category_name d.category) d.rule
    d.thread d.message

(* Total order used to present diagnostics: virtual time first, then
   category/rule/text so equal-time diagnostics print deterministically. *)
let compare a b =
  let c = Stdlib.compare a.time b.time in
  if c <> 0 then c
  else
    let c = Stdlib.compare (category_name a.category) (category_name b.category) in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.rule b.rule in
      if c <> 0 then c
      else
        let c = Stdlib.compare a.thread b.thread in
        if c <> 0 then c else Stdlib.compare a.message b.message
