(** A recording of one simulated run: the three scheduler buses
    (scheduling events, memory accesses, annotations) merged into a
    single sequence in arrival order.

    Because the simulator is deterministic and delivers every hook
    callback synchronously at the emitting operation, arrival order
    {e is} the global linearization of the run: identical runs produce
    identical traces, which is what makes the offline analysis passes
    bit-for-bit reproducible. *)

open Butterfly

type entry =
  | Event of Sched.event
  | Access of Sched.access
  | Annot of Sched.annot

type t

val attach : Sched.t -> t
(** Subscribe a recorder to all three buses of a machine. Call before
    [Sched.run]; other observers may subscribe alongside it. *)

val length : t -> int
val iter : (entry -> unit) -> t -> unit

val iteri : (int -> entry -> unit) -> t -> unit
(** Like {!iter} with the entry's position in the trace: the global
    linearization index the predictive passes use to relate events. *)

val events : t -> int
(** Number of scheduling events recorded. *)

val accesses : t -> int
(** Number of memory accesses recorded. *)

type adaptation = {
  ad_time : int;  (** virtual time the reconfiguration applied *)
  ad_tid : int;  (** thread that ran the policy *)
  ad_obj : string;  (** object name, e.g. ["round-barrier"] *)
  ad_kind : string;  (** object family, e.g. ["barrier"] *)
  ad_label : string;  (** transition label, e.g. ["spin-more"] *)
}

val adaptations : t -> adaptation list
(** The [Ops.A_adaptation] annotations of the trace, in arrival order:
    every reconfiguration any adaptive object applied during the run,
    so analysis reports can relate flagged windows to the
    reconfigurations that preceded them. *)
