(** Witness replay: promote {!Predict} predictions to machine-checked
    findings.

    From a prediction's coordinates this module synthesizes a steering
    plan, re-executes the program under the controlled scheduler
    ({!Butterfly.Sched.set_dispatch_chooser}), and checks whether the
    predicted bug actually manifests:

    - a {e race} manifests when both predicted accesses are pending in
      the machine at the same instant (co-enabled by construction) and
      the independent observed-trace race detector flags the word on
      the witness trace;
    - a {e deadlock} or {e lost wakeup} manifests when, with the
      plan's threads lined up at their milestones and released, the
      machine itself aborts with {!Butterfly.Sched.Deadlock}.

    A manifested run's recorded dispatch log is then replayed on a
    fresh machine and must reproduce bit-for-bit (same dispatch
    sequence, same outcome, same final time, same trace length).
    Only then is the prediction {!Confirmed} — so the Confirmed set
    has zero false positives by construction. A plan that cannot be
    lined up (steering gives up, a milestone fires in the wrong state,
    the run ends first) yields {!Unconfirmed}, never a false claim. *)

type key = int * int

type milestone =
  | M_access of { m_tid : int; m_word : key; m_nth : int }
  | M_request of { m_tid : int; m_lock : key; m_nth : int }
  | M_block of { m_tid : int; m_nth : int }
      (** per-thread program-order coordinates, counted exactly as
          {!Predict} counts them *)

type plan = {
  p_holds : (milestone * key list) list;
      (** hold the thread when the milestone fires; it must then hold
          the listed locks *)
  p_waits : (milestone * key list) list;  (** must fire; no hold *)
  p_chase : milestone option;
      (** after all holds/waits: release the first held thread and
          manifest when this fires *)
  p_expect_deadlock : bool;
      (** manifestation is a machine deadlock after release *)
}

val synthesize : Trace.t -> Predict.prediction -> plan
(** Build the steering plan for a prediction, consulting the original
    trace for hold-point placement (a race's first thread is held
    before acquiring any lock the second thread still needs on its
    path). *)

type outcome =
  | Completed
  | Deadlocked of string
  | Crashed of string
  | Limit  (** the [max_events] safety valve fired *)

val outcome_name : outcome -> string

type status = Confirmed | Unconfirmed

val status_name : status -> string

type result = {
  w_status : status;
  w_outcome : outcome;  (** how the witness run ended *)
  w_manifested : bool;  (** the plan's manifestation criterion held *)
  w_failure : string option;  (** why steering gave up, if it did *)
  w_schedule : int list;
      (** recorded dispatch log of the witness run; feeding it to
          {!Butterfly.Sched.set_schedule_control} replays the run
          bit-for-bit on any host parallelism *)
  w_replay_ok : bool;  (** the log replayed bit-for-bit *)
}

val confirm :
  Butterfly.Config.t -> (unit -> unit) -> Trace.t -> Predict.prediction -> result
(** [confirm cfg program trace p] synthesizes [p]'s plan against
    [trace] (the recorded run of [program] under [cfg]), runs the
    steered witness execution, and verifies the replay. [program] must
    be re-runnable (each call builds fresh state). The witness machine
    runs with an event budget of at least 4M events regardless of
    [cfg.max_events]. *)
