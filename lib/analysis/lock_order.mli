(** Deadlock-potential detection via the lock-order graph.

    Every acquisition of a lock [L] by a thread already holding [H]
    adds the edge [H -> L]. A cycle in this graph means two orderings
    of the same locks exist somewhere in the run — a deadlock waiting
    for the right interleaving, reported even when this (deterministic)
    run happened not to deadlock. Recursive acquisition of a lock the
    thread already holds shows up as a self-edge, i.e. a cycle of
    length one.

    Each distinct cycle (identified by its set of locks) is reported
    once, with the first-seen witness edge: which thread acquired what
    while holding what, and when. *)

val run : names:(int -> string) -> Trace.t -> Diag.t list
