open Butterfly

(* The weaker-than-happens-before causality engine behind the
   predictive passes (WCP/DC style).

   The observed-trace detectors use classic happens-before: every lock
   release orders every later acquire of the same lock. That order is
   an artifact of the schedule the run happened to take — swapping two
   critical sections on the same lock is a legal reordering whenever
   the sections don't conflict. This engine therefore keeps only the
   edges every legal reordering must preserve:

   - the hard scheduler edges: fork -> child, finished thread -> join,
     waker -> wakee (including the wake-token variants) — these are
     control dependencies, not schedule accidents;
   - release -> access edges between {e conflicting} critical sections
     on the same lock: if section A wrote word w and section B (same
     lock, different thread) later touches w, B's access is ordered
     after A's release — mutual exclusion plus the data flowing
     through w pin that direction in every reordering.

   Plain release -> acquire edges are dropped. Everything the weak
   order leaves unordered is a candidate reordering; soundness of any
   finding built on it comes from witness replay, not from the order
   itself. *)

type key = int * int

let key a = (Memory.node_of a, Memory.index_of a)

(* An open critical section: the lock and the words its owner touched
   while inside (with a wrote-flag), recorded so the release can
   publish them as conflict edges. *)
type cs = { cs_lock : key; cs_words : (key, bool) Hashtbl.t }

type t = {
  clocks : (int, Vclock.t) Hashtbl.t;
  tokens : (int, int array Queue.t) Hashtbl.t;
  finished : (int, int array) Hashtbl.t;
  open_cs : (int, cs list) Hashtbl.t;  (* per thread, innermost first *)
  conflict_touch : (key * key, int array) Hashtbl.t;
      (* (lock, word) -> pointwise max of the release clocks of every
         closed section on [lock] that touched [word] *)
  conflict_write : (key * key, int array) Hashtbl.t;
      (* same, restricted to sections that wrote [word] *)
}

let create () =
  {
    clocks = Hashtbl.create 64;
    tokens = Hashtbl.create 64;
    finished = Hashtbl.create 64;
    open_cs = Hashtbl.create 64;
    conflict_touch = Hashtbl.create 256;
    conflict_write = Hashtbl.create 256;
  }

let clock_of t tid =
  match Hashtbl.find_opt t.clocks tid with
  | Some c -> c
  | None ->
    let c = Vclock.create () in
    Vclock.set c tid 1;
    Hashtbl.replace t.clocks tid c;
    c

let epoch t tid = Vclock.get (clock_of t tid) tid
let clock_get t tid comp_of = Vclock.get (clock_of t tid) comp_of
let snapshot t tid = Vclock.snapshot (clock_of t tid)

(* The epoch ordering test: an event by [tid] with own-component
   [comp] is weakly ordered before thread [obs]'s current point iff
   [obs] has absorbed that component. *)
let ordered t ~tid ~comp ~before:obs = comp <= Vclock.get (clock_of t obs) tid

let ordered_snapshot ~tid ~comp snap =
  tid < Array.length snap && comp <= snap.(tid)

(* Merge a release snapshot into a conflict table cell (pointwise max,
   growing the stored array as needed). Accumulating the max over all
   conflicting sections is exact: the tables are per (lock, word). *)
let merge tbl cell snap =
  match Hashtbl.find_opt tbl cell with
  | None -> Hashtbl.replace tbl cell (Array.copy snap)
  | Some old ->
    if Array.length old >= Array.length snap then
      Array.iteri (fun i v -> if v > old.(i) then old.(i) <- v) snap
    else begin
      let merged = Array.copy snap in
      Array.iteri (fun i v -> if v > merged.(i) then merged.(i) <- v) old;
      Hashtbl.replace tbl cell merged
    end

(* {2 Feeding the trace} *)

let on_fork t ~parent ~child =
  if parent >= 0 then begin
    let pc = clock_of t parent in
    let cc = clock_of t child in
    Vclock.join cc (Vclock.snapshot pc);
    Vclock.set cc child (Vclock.get cc child + 1);
    Vclock.incr pc parent
  end

let on_event t (ev : Sched.event) =
  match ev.kind with
  | Sched.Ev_fork -> on_fork t ~parent:ev.other ~child:ev.tid
  | Sched.Ev_wakeup ->
    if ev.other >= 0 then begin
      let waker = clock_of t ev.other in
      Vclock.join (clock_of t ev.tid) (Vclock.snapshot waker);
      Vclock.incr waker ev.other
    end
  | Sched.Ev_token ->
    if ev.other >= 0 then begin
      let waker = clock_of t ev.other in
      let q =
        match Hashtbl.find_opt t.tokens ev.tid with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.replace t.tokens ev.tid q;
          q
      in
      Queue.add (Vclock.snapshot waker) q;
      Vclock.incr waker ev.other
    end
  | Sched.Ev_token_use -> (
    match Hashtbl.find_opt t.tokens ev.tid with
    | Some q when not (Queue.is_empty q) -> Vclock.join (clock_of t ev.tid) (Queue.pop q)
    | Some _ | None -> ())
  | Sched.Ev_join ->
    if ev.other >= 0 then begin
      let snap =
        match Hashtbl.find_opt t.finished ev.other with
        | Some snap -> snap
        | None -> Vclock.snapshot (clock_of t ev.other)
      in
      Vclock.join (clock_of t ev.tid) snap
    end
  | Sched.Ev_finish ->
    Hashtbl.replace t.finished ev.tid (Vclock.snapshot (clock_of t ev.tid));
    Hashtbl.remove t.clocks ev.tid;
    Hashtbl.remove t.tokens ev.tid;
    Hashtbl.remove t.open_cs ev.tid
  | Sched.Ev_switch | Sched.Ev_preempt | Sched.Ev_block -> ()

let on_acquire t ~tid ~lock =
  (* No release-clock join: that is exactly the HB edge this engine
     drops. The section opens and starts recording its word set. *)
  let sections =
    match Hashtbl.find_opt t.open_cs tid with Some l -> l | None -> []
  in
  Hashtbl.replace t.open_cs tid
    ({ cs_lock = lock; cs_words = Hashtbl.create 8 } :: sections)

let on_release t ~tid ~lock =
  match Hashtbl.find_opt t.open_cs tid with
  | None -> ()
  | Some sections ->
    let rec split acc = function
      | [] -> None
      | cs :: rest when cs.cs_lock = lock -> Some (cs, List.rev_append acc rest)
      | cs :: rest -> split (cs :: acc) rest
    in
    (match split [] sections with
    | None -> ()
    | Some (cs, rest) ->
      Hashtbl.replace t.open_cs tid rest;
      let clock = clock_of t tid in
      let snap = Vclock.snapshot clock in
      Hashtbl.iter
        (fun w wrote ->
          merge t.conflict_touch (lock, w) snap;
          if wrote then merge t.conflict_write (lock, w) snap)
        cs.cs_words;
      Vclock.incr clock tid)

(* An access inside one or more open sections first absorbs the
   release clocks of every earlier conflicting section on the same
   locks (write vs any earlier touch; read vs earlier writes), then is
   recorded into the open sections' word sets. Accesses outside any
   section neither create nor receive conflict edges — only the hard
   edges order them. *)
let on_access t ~tid ~word ~write =
  match Hashtbl.find_opt t.open_cs tid with
  | None | Some [] -> ()
  | Some sections ->
    let clock = clock_of t tid in
    List.iter
      (fun cs ->
        let cell = (cs.cs_lock, word) in
        (match Hashtbl.find_opt t.conflict_touch cell with
        | Some snap when write -> Vclock.join clock snap
        | _ -> ());
        (if not write then
           match Hashtbl.find_opt t.conflict_write cell with
           | Some snap -> Vclock.join clock snap
           | None -> ());
        match Hashtbl.find_opt cs.cs_words word with
        | Some true -> ()
        | Some false -> if write then Hashtbl.replace cs.cs_words word true
        | None -> Hashtbl.replace cs.cs_words word write)
      sections
