open Butterfly

type entry =
  | Event of Sched.event
  | Access of Sched.access
  | Annot of Sched.annot

type t = { mutable data : entry array; mutable len : int }

let push t entry =
  if t.len = Array.length t.data then begin
    let data = Array.make (max 1024 (2 * t.len)) entry in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1

let attach sim =
  let t = { data = [||]; len = 0 } in
  Sched.add_event_hook sim (fun ev -> push t (Event ev));
  Sched.add_access_hook sim (fun a -> push t (Access a));
  Sched.add_annot_hook sim (fun a -> push t (Annot a));
  t

let length t = t.len
let iter f t = for i = 0 to t.len - 1 do f t.data.(i) done
let iteri f t = for i = 0 to t.len - 1 do f i t.data.(i) done

let events t =
  let n = ref 0 in
  iter (function Event _ -> incr n | _ -> ()) t;
  !n

let accesses t =
  let n = ref 0 in
  iter (function Access _ -> incr n | _ -> ()) t;
  !n
