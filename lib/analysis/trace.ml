open Butterfly

type entry =
  | Event of Sched.event
  | Access of Sched.access
  | Annot of Sched.annot

type t = { mutable data : entry array; mutable len : int }

let push t entry =
  if t.len = Array.length t.data then begin
    let data = Array.make (max 1024 (2 * t.len)) entry in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1

let attach sim =
  let t = { data = [||]; len = 0 } in
  Sched.add_event_hook sim (fun ev -> push t (Event ev));
  Sched.add_access_hook sim (fun a -> push t (Access a));
  Sched.add_annot_hook sim (fun a -> push t (Annot a));
  t

let length t = t.len
let iter f t = for i = 0 to t.len - 1 do f t.data.(i) done
let iteri f t = for i = 0 to t.len - 1 do f i t.data.(i) done

let events t =
  let n = ref 0 in
  iter (function Event _ -> incr n | _ -> ()) t;
  !n

let accesses t =
  let n = ref 0 in
  iter (function Access _ -> incr n | _ -> ()) t;
  !n

type adaptation = {
  ad_time : int;
  ad_tid : int;
  ad_obj : string;
  ad_kind : string;
  ad_label : string;
}

let adaptations t =
  let acc = ref [] in
  iter
    (function
      | Annot
          {
            Sched.annotation = Ops.A_adaptation { obj_name; kind; label };
            annot_time;
            annot_tid;
            _;
          } ->
        acc :=
          {
            ad_time = annot_time;
            ad_tid = annot_tid;
            ad_obj = obj_name;
            ad_kind = kind;
            ad_label = label;
          }
          :: !acc
      | _ -> ())
    t;
  List.rev !acc
