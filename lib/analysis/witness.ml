open Butterfly

(* Witness replay: turn a prediction into a machine-checked schedule.

   A prediction from {!Predict} claims that some legal reordering of
   the observed run manifests the bug. This module synthesizes a
   steering plan from the prediction's coordinates, re-executes the
   program under the controlled scheduler holding threads at the
   planned milestones, and checks whether the bug actually manifests:

   - a race manifests when both predicted accesses are pending at the
     same instant (performed but not yet executed — co-enabled by
     construction) {e and} the observed-trace race detector flags the
     word on the witness trace;
   - a deadlock or lost wakeup manifests when, after the plan's
     threads are lined up and released, the machine itself aborts with
     {!Sched.Deadlock}.

   A manifested run is then replayed from its recorded dispatch log on
   a fresh machine and must reproduce bit-for-bit; only then is the
   prediction Confirmed. Every step of the chain is checked by the
   machine, so the Confirmed set has no false positives by
   construction — steering never forces a transition the scheduler
   could not have taken on its own. *)

type key = int * int

(* {2 Milestones and plans} *)

(* A re-findable point in a thread's execution, counted in per-thread
   program order exactly as {!Predict} counts it. *)
type milestone =
  | M_access of { m_tid : int; m_word : key; m_nth : int }
  | M_request of { m_tid : int; m_lock : key; m_nth : int }
  | M_block of { m_tid : int; m_nth : int }

let milestone_tid = function
  | M_access { m_tid; _ } | M_request { m_tid; _ } | M_block { m_tid; _ } -> m_tid

let nth_of = function
  | M_access { m_nth; _ } | M_request { m_nth; _ } | M_block { m_nth; _ } -> m_nth

type plan = {
  p_holds : (milestone * key list) list;
      (* hold the thread when its milestone fires; the lock keys are
         what the thread must hold there for the plan to be on track *)
  p_waits : (milestone * key list) list;  (* must fire, no hold *)
  p_chase : milestone option;
      (* once every hold/wait is satisfied: release the first hold's
         thread and declare manifestation when this milestone fires
         (the other held thread still pending) *)
  p_expect_deadlock : bool;
      (* manifestation = the machine aborts with [Sched.Deadlock]
         after all holds/waits are satisfied and released *)
}

(* {2 Plan synthesis} *)

let access_milestone (s : Predict.site) word =
  M_access { m_tid = s.Predict.s_tid; m_word = word; m_nth = s.Predict.s_nth }

(* Race: hold the first site's thread out of the way, park the second
   site's thread at its pending access, then drive the first thread to
   its own access — both pending at once is the manifested race.

   The hold point for the first thread is its access itself unless it
   there holds a lock the second thread still needs on its path to the
   second access (the held lock would wall the path off); in that case
   hold at the request of the first such lock, before it is taken. *)
let plan_of_race trace (r : Predict.race_prediction) =
  let t1 = r.Predict.r_first.Predict.s_tid in
  let t2 = r.Predict.r_second.Predict.s_tid in
  let t2_path_locks = Hashtbl.create 8 in
  let t1_req_counts = Hashtbl.create 8 in
  Trace.iteri
    (fun idx entry ->
      match entry with
      | Trace.Annot { annot_tid; annotation = Ops.A_lock_request { lock; _ }; _ } ->
        let k = Causality.key lock in
        if annot_tid = t2 && idx < r.Predict.r_second.Predict.s_idx then
          Hashtbl.replace t2_path_locks k ();
        if annot_tid = t1 && idx < r.Predict.r_first.Predict.s_idx then
          Hashtbl.replace t1_req_counts k
            (1 + (match Hashtbl.find_opt t1_req_counts k with Some n -> n | None -> 0))
      | _ -> ())
    trace;
  let e1 = access_milestone r.Predict.r_first r.Predict.r_word in
  let e2 = access_milestone r.Predict.r_second r.Predict.r_word in
  let acq_order = List.rev r.Predict.r_first.Predict.s_locks in
  match List.find_opt (fun (k, _) -> Hashtbl.mem t2_path_locks k) acq_order with
  | None ->
    { p_holds = [ (e1, []); (e2, []) ]; p_waits = []; p_chase = None;
      p_expect_deadlock = false }
  | Some (h, _) ->
    let nth =
      match Hashtbl.find_opt t1_req_counts h with Some n -> n | None -> 1
    in
    { p_holds = [ (M_request { m_tid = t1; m_lock = h; m_nth = nth }, []); (e2, []) ];
      p_waits = []; p_chase = Some e1; p_expect_deadlock = false }

(* Deadlock: park both threads at their crossing lock requests — each
   then provably holds its half of the cycle and has not yet probed
   the other half — and release them into each other. *)
let plan_of_deadlock (d : Predict.deadlock_prediction) =
  let hold (q : Predict.req_site) =
    ( M_request { m_tid = q.Predict.q_tid; m_lock = q.Predict.q_lock;
                  m_nth = q.Predict.q_nth },
      List.map fst q.Predict.q_holding )
  in
  { p_holds = [ hold d.Predict.d_a; hold d.Predict.d_b ]; p_waits = [];
    p_chase = None; p_expect_deadlock = true }

(* Lost wakeup: park the waker at its request of the victim's lock
   (before probing it), let the victim take the lock and go to sleep
   holding it, then release the waker — it blocks on the lock, the
   wakeup it would have sent is never sent, and the machine deadlocks. *)
let plan_of_lost_wakeup (lw : Predict.lost_wakeup_prediction) =
  { p_holds =
      [ ( M_request { m_tid = lw.Predict.lw_waker; m_lock = lw.Predict.lw_lock;
                      m_nth = lw.Predict.lw_waker_req_nth }, [] ) ];
    p_waits =
      [ ( M_block { m_tid = lw.Predict.lw_victim;
                    m_nth = lw.Predict.lw_victim_block_nth },
          [ lw.Predict.lw_lock ] ) ];
    p_chase = None; p_expect_deadlock = true }

(* Swap-window lost waiter: the finding is on the observed schedule
   itself, so no steering is needed — wait for the victim's block
   point to confirm it really parks inside the lock call, then let the
   run finish on its own; manifestation is the machine's deadlock
   abort (the unkicked sleeper is never woken, so whoever joins or
   needs it wedges the machine). *)
let plan_of_swap_lost (sw : Predict.swap_prediction) =
  { p_holds = [];
    p_waits =
      [ ( M_block { m_tid = sw.Predict.sw_victim;
                    m_nth = sw.Predict.sw_victim_block_nth }, [] ) ];
    p_chase = None; p_expect_deadlock = true }

(* Swap-window double grant: likewise observed, not reordered — replay
   the run unsteered past the second grantee's request and let the
   independent overlapping-ownership scan over the witness trace be
   the manifestation check. *)
let plan_of_swap_double (sw : Predict.swap_prediction) =
  { p_holds = [];
    p_waits =
      [ ( M_request { m_tid = sw.Predict.sw_victim;
                      m_lock = sw.Predict.sw_lock;
                      m_nth = sw.Predict.sw_victim_req_nth }, [] ) ];
    p_chase = None; p_expect_deadlock = false }

let synthesize trace = function
  | Predict.Race r -> plan_of_race trace r
  | Predict.Deadlock d -> plan_of_deadlock d
  | Predict.Lost_wakeup lw -> plan_of_lost_wakeup lw
  | Predict.Swap_window sw -> (
    match sw.Predict.sw_fault with
    | Predict.Sw_lost_waiter -> plan_of_swap_lost sw
    | Predict.Sw_double_grant -> plan_of_swap_double sw)

(* {2 The steering engine} *)

type slot = { s_milestone : milestone; s_need : key list; s_hold : bool;
              mutable s_done : bool }

type monitor = {
  plan : plan;
  slots : slot list;
  lock_held : (int, key list) Hashtbl.t;  (* tracked ownership, by annot *)
  acc : (int * key, int) Hashtbl.t;
  req : (int * key, int) Hashtbl.t;
  blk : (int, int) Hashtbl.t;
  mutable held_tids : int list;  (* threads the chooser must not pick *)
  mutable primed : bool;
  mutable chase_armed : bool;
  mutable manifested : bool;
  mutable failure : string option;
}

let make_monitor plan =
  {
    plan;
    slots =
      List.map (fun (m, need) ->
          { s_milestone = m; s_need = need; s_hold = true; s_done = false })
        plan.p_holds
      @ List.map (fun (m, need) ->
            { s_milestone = m; s_need = need; s_hold = false; s_done = false })
          plan.p_waits;
    lock_held = Hashtbl.create 16;
    acc = Hashtbl.create 64;
    req = Hashtbl.create 32;
    blk = Hashtbl.create 16;
    held_tids = [];
    primed = false;
    chase_armed = false;
    manifested = false;
    failure = None;
  }

let tracked_held mon tid =
  match Hashtbl.find_opt mon.lock_held tid with Some l -> l | None -> []

let fail mon msg =
  if mon.failure = None && not mon.manifested then mon.failure <- Some msg;
  mon.held_tids <- []

let release mon tid = mon.held_tids <- List.filter (fun t -> t <> tid) mon.held_tids

let count_of mon = function
  | M_access { m_tid; m_word; _ } -> (
    match Hashtbl.find_opt mon.acc (m_tid, m_word) with Some n -> n | None -> 0)
  | M_request { m_tid; m_lock; _ } -> (
    match Hashtbl.find_opt mon.req (m_tid, m_lock) with Some n -> n | None -> 0)
  | M_block { m_tid; _ } -> (
    match Hashtbl.find_opt mon.blk m_tid with Some n -> n | None -> 0)

let check_primed mon =
  if (not mon.primed) && mon.failure = None
     && List.for_all (fun s -> s.s_done) mon.slots
  then begin
    mon.primed <- true;
    match mon.plan.p_chase with
    | Some chase ->
      (match mon.plan.p_holds with
      | (m, _) :: _ -> release mon (milestone_tid m)
      | [] -> ());
      if count_of mon chase >= nth_of chase then
        fail mon "target site already executed before steering lined up"
      else mon.chase_armed <- true
    | None ->
      if mon.plan.p_expect_deadlock then
        (* release everyone into the collision; manifestation is the
           machine's own deadlock abort *)
        mon.held_tids <- []
      else begin
        mon.manifested <- true;
        mon.held_tids <- []
      end
  end

let fire mon m =
  if mon.failure = None && not mon.manifested then
    if mon.plan.p_chase = Some m then begin
      if mon.chase_armed then begin
        mon.manifested <- true;
        mon.held_tids <- []
      end
      else fail mon "target site reached before steering lined up"
    end
    else
      match
        List.find_opt (fun s -> (not s.s_done) && s.s_milestone = m) mon.slots
      with
      | None -> ()
      | Some slot ->
        let tid = milestone_tid m in
        let holding = tracked_held mon tid in
        if List.for_all (fun k -> List.mem k holding) slot.s_need then begin
          slot.s_done <- true;
          if slot.s_hold then mon.held_tids <- tid :: mon.held_tids;
          check_primed mon
        end
        else fail mon "milestone reached without the locks the plan requires"

let remove_first k l =
  let rec go = function
    | [] -> []
    | x :: rest -> if x = k then rest else x :: go rest
  in
  go l

let install_hooks sim mon =
  let milestones =
    List.map (fun s -> s.s_milestone) mon.slots
    @ (match mon.plan.p_chase with Some c -> [ c ] | None -> [])
  in
  let fire_matching pred n =
    List.iter (fun m -> if pred m && nth_of m = n then fire mon m) milestones
  in
  Sched.add_access_hook sim (fun a ->
      let k = Causality.key a.Sched.access_addr in
      let cell = (a.Sched.access_tid, k) in
      let n = 1 + (match Hashtbl.find_opt mon.acc cell with Some n -> n | None -> 0) in
      Hashtbl.replace mon.acc cell n;
      fire_matching
        (function
          | M_access { m_tid; m_word; _ } ->
            m_tid = a.Sched.access_tid && m_word = k
          | _ -> false)
        n);
  Sched.add_annot_hook sim (fun an ->
      match an.Sched.annotation with
      | Ops.A_lock_request { lock; _ } ->
        let k = Causality.key lock in
        let cell = (an.Sched.annot_tid, k) in
        let n =
          1 + (match Hashtbl.find_opt mon.req cell with Some n -> n | None -> 0)
        in
        Hashtbl.replace mon.req cell n;
        fire_matching
          (function
            | M_request { m_tid; m_lock; _ } ->
              m_tid = an.Sched.annot_tid && m_lock = k
            | _ -> false)
          n
      | Ops.A_lock_acquire { lock; _ } ->
        let tid = an.Sched.annot_tid in
        Hashtbl.replace mon.lock_held tid
          (Causality.key lock :: tracked_held mon tid)
      | Ops.A_lock_release { lock; _ } ->
        let tid = an.Sched.annot_tid in
        Hashtbl.replace mon.lock_held tid
          (remove_first (Causality.key lock) (tracked_held mon tid))
      | Ops.A_sync_word _ | Ops.A_relaxed_word _ | Ops.A_adaptation _ -> ());
  Sched.add_event_hook sim (fun ev ->
      match ev.Sched.kind with
      | Sched.Ev_block | Sched.Ev_token_use ->
        let n =
          1 + (match Hashtbl.find_opt mon.blk ev.Sched.tid with Some n -> n | None -> 0)
        in
        Hashtbl.replace mon.blk ev.Sched.tid n;
        fire_matching
          (function M_block { m_tid; _ } -> m_tid = ev.Sched.tid | _ -> false)
          n
      | _ -> ())

(* Among the legal dispatch candidates, pick the earliest non-held one
   (virtual time, then tid — the default policy's order). If every
   candidate is a thread the plan holds, steering is stuck: give up
   and release everything so the run can finish on its own. *)
let chooser mon (choices : Sched.choice array) =
  if mon.held_tids = [] then -1
  else begin
    let best = ref None in
    Array.iter
      (fun (c : Sched.choice) ->
        if not (List.mem c.Sched.choice_tid mon.held_tids) then
          match !best with
          | Some (bk, bt)
            when bk < c.Sched.choice_key
                 || (bk = c.Sched.choice_key && bt < c.Sched.choice_tid) -> ()
          | _ -> best := Some (c.Sched.choice_key, c.Sched.choice_tid))
      choices;
    match !best with
    | Some (_, tid) -> tid
    | None ->
      fail mon "every dispatchable thread is held by the plan";
      -1
  end

(* {2 Running and replaying} *)

type outcome =
  | Completed
  | Deadlocked of string
  | Crashed of string
  | Limit  (** the [max_events] safety valve fired *)

let outcome_name = function
  | Completed -> "completed"
  | Deadlocked _ -> "deadlocked"
  | Crashed _ -> "crashed"
  | Limit -> "event-limit"

type status = Confirmed | Unconfirmed

let status_name = function Confirmed -> "confirmed" | Unconfirmed -> "unconfirmed"

type result = {
  w_status : status;
  w_outcome : outcome;  (** how the witness run ended *)
  w_manifested : bool;  (** the plan's manifestation criterion held *)
  w_failure : string option;  (** why steering gave up, if it did *)
  w_schedule : int list;  (** recorded dispatch log of the witness run *)
  w_replay_ok : bool;  (** the log replayed bit-for-bit on a fresh machine *)
}

(* Witness runs take schedules the default policy never would, so give
   them headroom over the configured event budget. *)
let witness_cfg cfg =
  { cfg with Config.max_events = max cfg.Config.max_events 4_000_000 }

type run_info = {
  ri_outcome : outcome;
  ri_schedule : int list;
  ri_trace : Trace.t;
  ri_names : int -> string;
  ri_time : int;
  ri_diverged : bool;
}

let capture_outcome sim program =
  match Sched.run sim program with
  | () -> Completed
  | exception Sched.Deadlock m -> Deadlocked m
  | exception Sched.Event_limit_exceeded -> Limit
  | exception Sched.Thread_crash (thread, _) ->
    Crashed (Printf.sprintf "thread %s crashed" thread)
  | exception e -> Crashed (Printexc.to_string e)

let names_of sim =
  let table = Hashtbl.create 64 in
  List.iter (fun (tid, name, _) -> Hashtbl.replace table tid name)
    (Sched.thread_report sim);
  fun tid ->
    match Hashtbl.find_opt table tid with
    | Some n -> n
    | None -> Printf.sprintf "t%d" tid

let steered_run cfg program mon =
  let sim = Sched.create (witness_cfg cfg) in
  let trace = Trace.attach sim in
  Sched.set_record_schedule sim true;
  install_hooks sim mon;
  Sched.set_dispatch_chooser sim (Some (chooser mon));
  let outcome = capture_outcome sim program in
  {
    ri_outcome = outcome;
    ri_schedule = Sched.recorded_schedule sim;
    ri_trace = trace;
    ri_names = names_of sim;
    ri_time = Sched.machine_time sim;
    ri_diverged = Sched.control_diverged sim;
  }

let replay cfg program schedule =
  let sim = Sched.create (witness_cfg cfg) in
  let trace = Trace.attach sim in
  Sched.set_record_schedule sim true;
  Sched.set_schedule_control sim schedule;
  let outcome = capture_outcome sim program in
  let faithful =
    Sched.recorded_schedule sim = schedule
    && (not (Sched.control_diverged sim))
    && Sched.schedule_control_remaining sim = 0
  in
  (outcome, trace, Sched.machine_time sim, faithful)

let replay_matches cfg program info =
  let outcome, trace, time, faithful = replay cfg program info.ri_schedule in
  faithful && outcome = info.ri_outcome && time = info.ri_time
  && Trace.length trace = Trace.length info.ri_trace

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* The belt-and-suspenders check behind a race Confirmed: the
   manifested witness trace must also be flagged by the independent
   observed-trace race detector on the same word. *)
let detector_flags_race info (r : Predict.race_prediction) =
  let needle = Printf.sprintf "word %s:" (Predict.key_name r.Predict.r_word) in
  List.exists
    (fun (d : Diag.t) -> contains d.Diag.message needle)
    (Race.run ~names:info.ri_names info.ri_trace)

(* The independent check behind a double-grant Confirmed: the witness
   trace itself must show two unreleased acquires of the word at once. *)
let trace_shows_double_hold info (sw : Predict.swap_prediction) =
  let holding = ref 0 and overlap = ref false in
  Trace.iter
    (function
      | Trace.Annot { annotation = Ops.A_lock_acquire { lock; _ }; _ }
        when Causality.key lock = sw.Predict.sw_lock ->
        incr holding;
        if !holding > 1 then overlap := true
      | Trace.Annot { annotation = Ops.A_lock_release { lock; _ }; _ }
        when Causality.key lock = sw.Predict.sw_lock ->
        decr holding
      | _ -> ())
    info.ri_trace;
  !overlap

let run_plan cfg program prediction plan =
  let mon = make_monitor plan in
  let info = steered_run cfg program mon in
  let manifested =
    mon.failure = None
    &&
    if plan.p_expect_deadlock then
      mon.primed && (match info.ri_outcome with Deadlocked _ -> true | _ -> false)
    else mon.manifested
  in
  let checked =
    manifested
    &&
    match prediction with
    | Predict.Race r -> detector_flags_race info r
    | Predict.Deadlock _ | Predict.Lost_wakeup _ -> true
    | Predict.Swap_window sw -> (
      match sw.Predict.sw_fault with
      | Predict.Sw_lost_waiter -> true
      | Predict.Sw_double_grant -> trace_shows_double_hold info sw)
  in
  let replay_ok = checked && replay_matches cfg program info in
  {
    w_status = (if checked && replay_ok then Confirmed else Unconfirmed);
    w_outcome = info.ri_outcome;
    w_manifested = manifested;
    w_failure = mon.failure;
    w_schedule = info.ri_schedule;
    w_replay_ok = replay_ok;
  }

let confirm cfg program trace prediction =
  run_plan cfg program prediction (synthesize trace prediction)
