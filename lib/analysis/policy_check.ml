module Policy = Adaptive_core.Policy
module Spec = Policy.Spec

type finding = {
  f_kind : string;
  f_spec : string;
  f_configs : string list;
  f_region : string option;
  f_message : string;
}

(* ---- interval helpers over Spec.cond ---- *)

let isect (a : Spec.cond) (b : Spec.cond) : Spec.cond option =
  let lo = max a.Spec.lo b.Spec.lo in
  let hi =
    match (a.Spec.hi, b.Spec.hi) with
    | None, h | h, None -> h
    | Some x, Some y -> Some (min x y)
  in
  match hi with Some h when h < lo -> None | _ -> Some { Spec.lo; hi }

let entirely_below (a : Spec.cond) (b : Spec.cond) =
  match a.Spec.hi with Some h -> h < b.Spec.lo | None -> false

(* ---- the metric-region abstraction ----

   Thresholds cut the metric axis into finitely many regions within
   which every condition (transition, wedge) keeps one truth value, so
   one representative per region decides everything. With a guard the
   axis is the clamp interval — clamping maps every raw metric into
   it, so clamped-out values are unobservable by the transitions. *)

type region = { r_lo : int; r_hi : int option }

let region_desc r =
  match r.r_hi with
  | Some h when h = r.r_lo -> Printf.sprintf "= %d" r.r_lo
  | Some h -> Printf.sprintf "in [%d, %d]" r.r_lo h
  | None -> Printf.sprintf ">= %d" r.r_lo

let regions (spec : Spec.t) =
  let conds =
    List.map (fun t -> t.Spec.t_cond) spec.Spec.s_transitions
    @ (match spec.Spec.s_guard with
      | Some { Spec.g_wedge = Some w; _ } -> [ w.Spec.w_cond ]
      | _ -> [])
  in
  let domain_lo, domain_hi =
    match spec.Spec.s_guard with
    | Some g -> (g.Spec.g_clamp_lo, Some g.Spec.g_clamp_hi)
    | None -> (List.fold_left (fun acc c -> min acc c.Spec.lo) 0 conds, None)
  in
  let bps =
    List.concat_map
      (fun (c : Spec.cond) ->
        (c.Spec.lo :: (match c.Spec.hi with Some h -> [ h + 1 ] | None -> [])))
      conds
  in
  let bps =
    List.sort_uniq compare
      (List.filter
         (fun b ->
           b > domain_lo
           && match domain_hi with Some h -> b <= h | None -> true)
         bps)
  in
  let rec build lo = function
    | [] -> [ { r_lo = lo; r_hi = domain_hi } ]
    | b :: rest -> { r_lo = lo; r_hi = Some (b - 1) } :: build b rest
  in
  build domain_lo bps

let config_values (spec : Spec.t) =
  List.map (fun c -> c.Spec.c_value) spec.Spec.s_configs

(* First transition enabled from configuration [v] at metric [m] — the
   one [Spec.compile] consults — with its priority index. *)
let first_match (spec : Spec.t) v m =
  let rec go i = function
    | [] -> None
    | t :: rest ->
      if t.Spec.t_from = v && Spec.matches t.Spec.t_cond m then Some (i, t)
      else go (i + 1) rest
  in
  go 0 spec.Spec.s_transitions

let rotate_min cycle =
  let mn = List.fold_left min (List.hd cycle) cycle in
  let rec rot l = if List.hd l = mn then l else rot (List.tl l @ [ List.hd l ]) in
  rot cycle

(* ---- thrash cycles ----

   Within one region each configuration has at most one enabled
   first-match transition, so the per-region step relation is a
   functional graph; any cycle in it is an infinite adaptation loop the
   policy runs without the metric moving at all (hysteresis only slows
   it: counters reset on arrival, then refill while the metric sits
   still). *)
let thrash_cycles (spec : Spec.t) =
  let values = config_values spec in
  let seen = ref [] in
  List.concat_map
    (fun r ->
      let next v =
        Option.map (fun (_, t) -> t.Spec.t_target) (first_match spec v r.r_lo)
      in
      let cycles = ref [] in
      List.iter
        (fun start ->
          let rec walk path v =
            match next v with
            | None -> ()
            | Some w ->
              if List.mem w (v :: path) then begin
                let seg =
                  let rec up acc = function
                    | [] -> acc
                    | x :: rest ->
                      if x = w then x :: acc else up (x :: acc) rest
                  in
                  up [] (v :: path)
                in
                let canon = rotate_min seg in
                if not (List.mem canon (!seen @ !cycles)) then
                  cycles := !cycles @ [ canon ]
              end
              else walk (v :: path) w
          in
          walk [] start)
        values;
      seen := !seen @ !cycles;
      List.map
        (fun cycle ->
          let names = List.map (Spec.config_name spec) cycle in
          {
            f_kind = "thrash-cycle";
            f_spec = spec.Spec.s_name;
            f_configs = names;
            f_region = Some (region_desc r);
            f_message =
              Printf.sprintf
                "adapts forever while %s stays %s: %s -> %s" spec.Spec.s_metric
                (region_desc r)
                (String.concat " -> " names)
                (List.hd names);
          })
        !cycles)
    (regions spec)

(* ---- dead configurations ----

   Reachability from the initial configuration along first-match edges
   (over every region) plus the guard's fallback edge, which can fire
   from anywhere. *)
let dead_configs (spec : Spec.t) =
  let rs = regions spec in
  let edges v =
    List.filter_map
      (fun r ->
        Option.map (fun (_, t) -> t.Spec.t_target) (first_match spec v r.r_lo))
      rs
    @ (match spec.Spec.s_guard with Some g -> [ g.Spec.g_fallback ] | None -> [])
  in
  let visited = Hashtbl.create 16 in
  let rec bfs v =
    if not (Hashtbl.mem visited v) then begin
      Hashtbl.add visited v ();
      List.iter bfs (edges v)
    end
  in
  bfs spec.Spec.s_initial;
  List.filter_map
    (fun v ->
      if Hashtbl.mem visited v then None
      else
        Some
          {
            f_kind = "dead-config";
            f_spec = spec.Spec.s_name;
            f_configs = [ Spec.config_name spec v ];
            f_region = None;
            f_message =
              Printf.sprintf
                "configuration %s is unreachable from the initial configuration %s"
                (Spec.config_name spec v)
                (Spec.config_name spec spec.Spec.s_initial);
          })
    (config_values spec)

(* ---- transitions that can never fire ----

   A transition that is never the first match in any region is dead:
   either a higher-priority transition covers its whole enabled region
   (shadowing — a threshold overlap), or, when it carries hysteresis,
   its counter can never even advance. *)
let dead_transitions (spec : Spec.t) =
  let rs = regions spec in
  let ts = spec.Spec.s_transitions in
  let live = Array.make (List.length ts) false in
  List.iter
    (fun r ->
      List.iter
        (fun v ->
          match first_match spec v r.r_lo with
          | Some (i, _) -> live.(i) <- true
          | None -> ())
        (config_values spec))
    rs;
  let clamp =
    match spec.Spec.s_guard with
    | Some g -> Some { Spec.lo = g.Spec.g_clamp_lo; hi = Some g.Spec.g_clamp_hi }
    | None -> None
  in
  List.concat
    (List.mapi
       (fun i t ->
         let clamped_out =
           match clamp with
           | Some c -> isect t.Spec.t_cond c = None
           | None -> false
         in
         (* a condition entirely outside the clamp is a guardrail gap,
            reported by [guard_gaps] instead *)
         if live.(i) || clamped_out then []
         else
           let hysteretic = t.Spec.t_repeats > 1 in
           [
             {
               f_kind = (if hysteretic then "hysteresis-dead" else "threshold-overlap");
               f_spec = spec.Spec.s_name;
               f_configs =
                 [
                   Spec.config_name spec t.Spec.t_from;
                   Spec.config_name spec t.Spec.t_target;
                 ];
               f_region = None;
               f_message =
                 Printf.sprintf "transition %s (%s -> %s) can never fire: %s"
                   t.Spec.t_label
                   (Spec.config_name spec t.Spec.t_from)
                   (Spec.config_name spec t.Spec.t_target)
                   (if hysteretic then
                      "every sample that would advance its hysteresis counter is \
                       claimed by a higher-priority transition"
                    else "a higher-priority transition shadows its whole region");
             };
           ])
       ts)

(* ---- inverted / overlapping up-down thresholds ----

   Overlap is judged per source configuration: an up- and a
   down-transition out of the same configuration enabled by the same
   metric value means one sample asks for both directions (priority
   picks one, but the pair thrashes or surprises). Polarity is a
   global declaration, so inversion is judged across configurations:
   under [Up_at_low] every up condition must sit below every down
   condition (and symmetrically for [Up_at_high]) — a pair on the
   wrong sides means the thresholds are plugged in backwards. *)
let threshold_faults (spec : Spec.t) =
  let fault kind u d reason =
    {
      f_kind = kind;
      f_spec = spec.Spec.s_name;
      f_configs =
        [
          Spec.config_name spec u.Spec.t_from;
          Spec.config_name spec u.Spec.t_target;
          Spec.config_name spec d.Spec.t_from;
          Spec.config_name spec d.Spec.t_target;
        ];
      f_region = None;
      f_message =
        Printf.sprintf "%s (from %s) vs %s (from %s): %s" u.Spec.t_label
          (Spec.config_name spec u.Spec.t_from)
          d.Spec.t_label
          (Spec.config_name spec d.Spec.t_from)
          reason;
    }
  in
  let ups = List.filter (fun t -> t.Spec.t_target > t.Spec.t_from) spec.Spec.s_transitions in
  let downs = List.filter (fun t -> t.Spec.t_target < t.Spec.t_from) spec.Spec.s_transitions in
  List.concat_map
    (fun u ->
      List.concat_map
        (fun d ->
          if
            u.Spec.t_from = d.Spec.t_from
            && isect u.Spec.t_cond d.Spec.t_cond <> None
          then
            [
              fault "threshold-overlap" u d
                "their conditions overlap, so one metric value asks for both \
                 directions";
            ]
          else
            match spec.Spec.s_monotone with
            | Spec.Up_at_low when entirely_below d.Spec.t_cond u.Spec.t_cond ->
              [
                fault "threshold-inverted" u d
                  "the spec declares up-at-low-metric, but the up condition sits \
                   above the down condition";
              ]
            | Spec.Up_at_high when entirely_below u.Spec.t_cond d.Spec.t_cond ->
              [
                fault "threshold-inverted" u d
                  "the spec declares up-at-high-metric, but the up condition sits \
                   below the down condition";
              ]
            | _ -> [])
        downs)
    ups

(* ---- guardrail gaps ---- *)
let guard_gaps (spec : Spec.t) =
  match spec.Spec.s_guard with
  | None -> []
  | Some g ->
    let clamp = { Spec.lo = g.Spec.g_clamp_lo; hi = Some g.Spec.g_clamp_hi } in
    let gap configs msg =
      {
        f_kind = "guardrail-gap";
        f_spec = spec.Spec.s_name;
        f_configs = configs;
        f_region = None;
        f_message = msg;
      }
    in
    let dead_under_clamp =
      List.filter_map
        (fun t ->
          if isect t.Spec.t_cond clamp = None then
            Some
              (gap
                 [
                   Spec.config_name spec t.Spec.t_from;
                   Spec.config_name spec t.Spec.t_target;
                 ]
                 (Printf.sprintf
                    "transition %s (%s -> %s) can never fire: its condition lies \
                     entirely outside the metric clamp [%d, %d]"
                    t.Spec.t_label
                    (Spec.config_name spec t.Spec.t_from)
                    (Spec.config_name spec t.Spec.t_target)
                    g.Spec.g_clamp_lo g.Spec.g_clamp_hi))
          else None)
        spec.Spec.s_transitions
    in
    let wedge_gap =
      match g.Spec.g_wedge with
      | Some w when isect w.Spec.w_cond clamp = None ->
        [
          gap
            (List.map (Spec.config_name spec) w.Spec.w_configs)
            (Printf.sprintf
               "the wedge condition lies entirely outside the metric clamp \
                [%d, %d], so a wedged object is never detected"
               g.Spec.g_clamp_lo g.Spec.g_clamp_hi);
        ]
      | _ -> []
    in
    let fallback_sink =
      let v = g.Spec.g_fallback in
      let can_leave =
        List.exists
          (fun r ->
            match first_match spec v r.r_lo with
            | Some (_, t) -> t.Spec.t_target <> v
            | None -> false)
          (regions spec)
      in
      if can_leave then []
      else
        [
          gap
            [ Spec.config_name spec v ]
            (Printf.sprintf
               "the guardrail fallback configuration %s is a sink: no transition \
                leaves it, so one fallback ends adaptation for good"
               (Spec.config_name spec v));
        ]
    in
    dead_under_clamp @ wedge_gap @ fallback_sink

(* ---- implementation-ladder obligations ----

   A spec with [s_kind = "lock-impl"] drives which {e implementation} a
   lock runs, and every transition is a full quiescence-protocol swap
   (freeze, kick, drain, commit). Two obligations on top of the generic
   checks. First, the guardrail's metric clamp must not cut off an
   implementation the unclamped ladder could reach: the configuration
   stays declared but no observable metric can ever earn it (distinct
   from [dead-config], which judges only the clamped axis and cannot
   say the clamp itself is what severed the path). Second, every swap
   transition needs real hysteresis ([t_repeats >= 2]): a swap firing
   on a single sample opens a freeze-kick-drain window — and migrates
   every waiter — on any metric blip. *)
let impl_ladder_faults (spec : Spec.t) =
  if spec.Spec.s_kind <> "lock-impl" then []
  else begin
    (* Reachability along first-match edges plus the fallback edge,
       over a given region decomposition of the metric axis. *)
    let reachable rs =
      let edges v =
        List.filter_map
          (fun r ->
            Option.map (fun (_, t) -> t.Spec.t_target) (first_match spec v r.r_lo))
          rs
        @ (match spec.Spec.s_guard with Some g -> [ g.Spec.g_fallback ] | None -> [])
      in
      let visited = Hashtbl.create 16 in
      let rec bfs v =
        if not (Hashtbl.mem visited v) then begin
          Hashtbl.add visited v ();
          List.iter bfs (edges v)
        end
      in
      bfs spec.Spec.s_initial;
      visited
    in
    let clamped_out =
      match spec.Spec.s_guard with
      | None -> []
      | Some g ->
        let unclamped = reachable (regions { spec with Spec.s_guard = None }) in
        let clamped = reachable (regions spec) in
        List.filter_map
          (fun v ->
            if Hashtbl.mem unclamped v && not (Hashtbl.mem clamped v) then
              Some
                {
                  f_kind = "impl-clamped-out";
                  f_spec = spec.Spec.s_name;
                  f_configs = [ Spec.config_name spec v ];
                  f_region = None;
                  f_message =
                    Printf.sprintf
                      "implementation %s (id %d) is reachable by the unclamped \
                       ladder but the guardrail clamp [%d, %d] cuts off every \
                       path to it: the lock can never earn that implementation"
                      (Spec.config_name spec v) v g.Spec.g_clamp_lo
                      g.Spec.g_clamp_hi;
                }
            else None)
          (config_values spec)
    in
    let no_hysteresis =
      List.filter_map
        (fun t ->
          if t.Spec.t_repeats < 2 then
            Some
              {
                f_kind = "swap-no-hysteresis";
                f_spec = spec.Spec.s_name;
                f_configs =
                  [
                    Spec.config_name spec t.Spec.t_from;
                    Spec.config_name spec t.Spec.t_target;
                  ];
                f_region = None;
                f_message =
                  Printf.sprintf
                    "swap transition %s (%s -> %s) fires after a single sample \
                     (t_repeats = %d): an implementation swap runs a \
                     freeze-kick-drain window and needs hysteresis (>= 2)"
                    t.Spec.t_label
                    (Spec.config_name spec t.Spec.t_from)
                    (Spec.config_name spec t.Spec.t_target)
                    t.Spec.t_repeats;
              }
          else None)
        spec.Spec.s_transitions
    in
    clamped_out @ no_hysteresis
  end

let check (spec : Spec.t) =
  match Spec.validate spec with
  | [] ->
    thrash_cycles spec @ dead_configs spec @ dead_transitions spec
    @ threshold_faults spec @ guard_gaps spec @ impl_ladder_faults spec
  | errs ->
    List.map
      (fun e ->
        {
          f_kind = "malformed-spec";
          f_spec = spec.Spec.s_name;
          f_configs = [];
          f_region = None;
          f_message = e;
        })
      errs

(* ---- cross-object conflicts ----

   Two specs naming the same attribute co-write one configuration
   value. Freeze each spec's metric in one of its regions (the metrics
   are independent, so any pair of regions can persist); the union of
   the two per-region functional graphs then has at most two out-edges
   per configuration. A cycle using edges of both specs is a conflict:
   each policy is stable alone, but together they pass the attribute
   back and forth while neither metric moves. Single-spec cycles are
   that spec's own thrash, reported by [check]. *)
let conflicts (a : Spec.t) (b : Spec.t) =
  if a.Spec.s_attribute <> b.Spec.s_attribute then []
  else if Spec.validate a <> [] || Spec.validate b <> [] then []
  else begin
    let values = List.sort_uniq compare (config_values a @ config_values b) in
    let cname v =
      match Spec.find_config a v with
      | Some c -> c.Spec.c_name
      | None -> Spec.config_name b v
    in
    let found = ref [] in
    List.iter
      (fun ra ->
        List.iter
          (fun rb ->
            let next_a v =
              Option.map (fun (_, t) -> t.Spec.t_target) (first_match a v ra.r_lo)
            in
            let next_b v =
              Option.map (fun (_, t) -> t.Spec.t_target) (first_match b v rb.r_lo)
            in
            let record seg =
              let nodes = List.map fst seg in
              let tags = List.map snd seg in
              if List.mem `A tags && List.mem `B tags then begin
                let canon = rotate_min nodes in
                if not (List.exists (fun (c, _, _) -> c = canon) !found) then
                  found := !found @ [ (canon, region_desc ra, region_desc rb) ]
              end
            in
            let rec explore path v =
              let step tag w =
                if List.exists (fun (x, _) -> x = w) ((v, tag) :: path) then begin
                  let seg =
                    let rec up acc = function
                      | [] -> acc
                      | (x, tg) :: rest ->
                        if x = w then (x, tg) :: acc else up ((x, tg) :: acc) rest
                    in
                    up [] ((v, tag) :: path)
                  in
                  record seg
                end
                else explore ((v, tag) :: path) w
              in
              (match next_a v with Some w -> step `A w | None -> ());
              match next_b v with Some w -> step `B w | None -> ()
            in
            List.iter (fun v -> explore [] v) values)
          (regions b))
      (regions a);
    List.map
      (fun (cycle, da, db) ->
        let names = List.map cname cycle in
        {
          f_kind = "cross-object-conflict";
          f_spec = a.Spec.s_name ^ " + " ^ b.Spec.s_name;
          f_configs = names;
          f_region = Some (Printf.sprintf "%s %s, %s %s" a.Spec.s_metric da b.Spec.s_metric db);
          f_message =
            Printf.sprintf
              "both drive attribute %s: while %s stays %s and %s stays %s the \
               attribute cycles %s -> %s"
              a.Spec.s_attribute a.Spec.s_metric da b.Spec.s_metric db
              (String.concat " -> " names)
              (List.hd names);
        })
      !found
  end

(* ---- the shipped catalogue and batch runs ---- *)

let shipped () =
  [
    Locks.Adaptive_lock.policy_spec ();
    Locks.Adaptive_lock.policy_spec ~guardrail:Locks.Guardrail.default_params
      ~name:"adaptive-lock-guarded" ();
    Locks.Switch_lock.policy_spec ();
    Locks.Rw_lock.policy_spec ();
    Cthreads.Adaptive_barrier.policy_spec ();
    Cthreads.Adaptive_condition.policy_spec ();
    Cthreads.Adaptive_semaphore.policy_spec ();
  ]

type spec_report = {
  sr_name : string;
  sr_kind : string;
  sr_attribute : string;
  sr_metric : string;
  sr_configs : int;
  sr_transitions : int;
  sr_findings : finding list;
}

let report (spec : Spec.t) =
  {
    sr_name = spec.Spec.s_name;
    sr_kind = spec.Spec.s_kind;
    sr_attribute = spec.Spec.s_attribute;
    sr_metric = spec.Spec.s_metric;
    sr_configs = List.length spec.Spec.s_configs;
    sr_transitions = List.length spec.Spec.s_transitions;
    sr_findings = check spec;
  }

let rec pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest

let run ?domains specs =
  let reports = Engine.Runner.map ?domains report specs in
  let cross =
    List.concat (Engine.Runner.map ?domains (fun (a, b) -> conflicts a b) (pairs specs))
  in
  (reports, cross)

type fixture_outcome = {
  x_name : string;
  x_expected : string list;
  x_found : string list;
  x_missing : string list;
  x_findings : finding list;
}

let check_fixture ~name ~expect specs =
  let singles = List.concat_map check specs in
  let cross = List.concat_map (fun (a, b) -> conflicts a b) (pairs specs) in
  let findings = singles @ cross in
  let kinds = List.sort_uniq compare (List.map (fun f -> f.f_kind) findings) in
  {
    x_name = name;
    x_expected = expect;
    x_found = kinds;
    x_missing = List.filter (fun k -> not (List.mem k kinds)) expect;
    x_findings = findings;
  }

(* ---- deterministic JSON (hand-rolled, like Analysis_suite) ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string_list l =
  "["
  ^ String.concat ", " (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) l)
  ^ "]"

let finding_json f =
  Printf.sprintf
    "{ \"kind\": \"%s\", \"spec\": \"%s\", \"configs\": %s, \"region\": %s, \
     \"message\": \"%s\" }"
    (json_escape f.f_kind) (json_escape f.f_spec)
    (json_string_list f.f_configs)
    (match f.f_region with
    | None -> "null"
    | Some r -> Printf.sprintf "\"%s\"" (json_escape r))
    (json_escape f.f_message)

let findings_json fs =
  "[" ^ String.concat ", " (List.map finding_json fs) ^ "]"

let spec_report_json r =
  String.concat ",\n"
    [
      Printf.sprintf "      \"spec\": \"%s\"" (json_escape r.sr_name);
      Printf.sprintf "      \"kind\": \"%s\"" (json_escape r.sr_kind);
      Printf.sprintf "      \"attribute\": \"%s\"" (json_escape r.sr_attribute);
      Printf.sprintf "      \"metric\": \"%s\"" (json_escape r.sr_metric);
      Printf.sprintf "      \"configs\": %d" r.sr_configs;
      Printf.sprintf "      \"transitions\": %d" r.sr_transitions;
      Printf.sprintf "      \"findings\": %s" (findings_json r.sr_findings);
    ]

let fixture_json x =
  String.concat ",\n"
    [
      Printf.sprintf "      \"fixture\": \"%s\"" (json_escape x.x_name);
      Printf.sprintf "      \"expected\": %s" (json_string_list x.x_expected);
      Printf.sprintf "      \"found\": %s" (json_string_list x.x_found);
      Printf.sprintf "      \"missing\": %s" (json_string_list x.x_missing);
      Printf.sprintf "      \"findings\": %s" (findings_json x.x_findings);
    ]

let clean (reports, cross) =
  cross = [] && List.for_all (fun r -> r.sr_findings = []) reports

let to_json ~shipped:(reports, cross) ~fixtures =
  let wrap body = "    {\n" ^ body ^ "\n    }" in
  String.concat "\n"
    [
      "{";
      "  \"shipped\": [";
      String.concat ",\n" (List.map (fun r -> wrap (spec_report_json r)) reports);
      "  ],";
      Printf.sprintf "  \"conflicts\": %s," (findings_json cross);
      "  \"fixtures\": [";
      String.concat ",\n" (List.map (fun x -> wrap (fixture_json x)) fixtures);
      "  ],";
      Printf.sprintf "  \"clean\": %b,"
        (clean (reports, cross));
      Printf.sprintf "  \"fixtures_satisfied\": %b"
        (List.for_all (fun x -> x.x_missing = []) fixtures);
      "}";
    ]
