(** Vector clocks over dense thread ids.

    Components default to 0; a thread's own component is initialized
    to 1 when its clock is first created so that "component [c] of
    [tid] is known to the observer" is always a strict inequality test
    (0 would make every thread trivially ordered after everyone).

    The happens-before test used by the race detector is the epoch
    form: an access by thread [u] with own-component value [c]
    happened before the current point of thread [v] iff
    [c <= get v_clock u]. *)

type t

val create : unit -> t
(** All components 0. *)

val get : t -> int -> int
val set : t -> int -> int -> unit

val incr : t -> int -> unit
(** Bump one component (a thread bumps its own after each outgoing
    synchronization edge, so later local work is not ordered by it). *)

val snapshot : t -> int array
(** An immutable copy, for publishing on a synchronization edge. *)

val join : t -> int array -> unit
(** Pointwise max with a published snapshot (an incoming edge). *)
