(** A single sanitizer finding, stamped with the virtual time and the
    name of the thread it concerns. *)

type category =
  | Race  (** confirmed data race (lockset empty and no happens-before) *)
  | Lock_order  (** deadlock potential: cycle in acquired-while-holding *)
  | Discipline  (** lock usage lint (double unlock, held at exit, ...) *)

type t = {
  category : category;
  rule : string;  (** short machine-matchable rule name, e.g. ["data-race"] *)
  time : int;  (** virtual timestamp of the witness *)
  thread : string;  (** name of the offending thread *)
  message : string;
}

val category_name : category -> string

val make :
  category:category -> rule:string -> time:int -> thread:string -> string -> t

val to_string : t -> string

val compare : t -> t -> int
(** Deterministic presentation order: time, then category, rule,
    thread, message. *)
