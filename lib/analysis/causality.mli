(** The weaker-than-happens-before causality engine behind the
    predictive analysis passes.

    Classic happens-before orders every lock release before every
    later acquire of the same lock — an artifact of the observed
    schedule. This engine (in the spirit of the WCP/DC orders from
    dynamic race prediction) keeps only the edges every legal
    reordering of the run must preserve:

    - the hard scheduler edges: fork → child start, finished thread →
      join, waker → wakee (and the wake-token variants);
    - release → access edges between {e conflicting} critical
      sections on the same lock: if a section wrote word [w], a later
      section on the same lock by another thread touching [w] is
      ordered after the first one's release (and a later write is
      ordered after any earlier touch).

    Two events left unordered can be scheduled in either order in some
    reordering of the run that respects lock semantics and the hard
    edges — they are prediction candidates, whose soundness is then
    established by witness replay ({!Witness}), never assumed.

    The engine is fed incrementally, in trace order, by {!Predict}. *)

open Butterfly

type key = int * int
(** Word identity: (node, index), stable within a run. *)

val key : Memory.addr -> key

type t

val create : unit -> t

val on_event : t -> Sched.event -> unit
(** Apply a scheduling event's hard edges (fork, join, wakeup, token;
    thread finish collapses the thread's clock to a snapshot). *)

val on_acquire : t -> tid:int -> lock:key -> unit
(** A lock acquisition: opens a critical section. Deliberately adds no
    release→acquire edge. *)

val on_release : t -> tid:int -> lock:key -> unit
(** Close the matching open section: publish its word set into the
    lock's conflict tables and advance the thread's epoch. *)

val on_access : t -> tid:int -> word:key -> write:bool -> unit
(** A memory access: absorb the release clocks of earlier conflicting
    sections on the locks currently held (call {e before} reading the
    accessor's clock for this access), then record the word into the
    open sections. *)

val epoch : t -> int -> int
(** The thread's own clock component right now — the epoch to store
    with an event for later {!ordered} tests. *)

val clock_get : t -> int -> int -> int
(** [clock_get t tid c] is component [c] of [tid]'s clock. *)

val snapshot : t -> int -> int array
(** Full copy of a thread's clock (for request records compared pair
    against pair later). *)

val ordered : t -> tid:int -> comp:int -> before:int -> bool
(** [ordered t ~tid ~comp ~before:obs]: is the event by [tid] with
    epoch [comp] weakly ordered before thread [obs]'s current point? *)

val ordered_snapshot : tid:int -> comp:int -> int array -> bool
(** Same test against a stored clock snapshot. *)
