(** The data-race detector: Eraser-style locksets refined by a
    vector-clock happens-before pass, run offline over a {!Trace}.

    A pair of accesses to the same plain word is reported as a race
    only when {e both} tests fail: the threads hold no common lock
    around the accesses (lockset), and no chain of synchronization
    edges orders them (happens-before). The edges are fork → child
    start, finished thread → join, waker → wakee (block/wakeup and the
    wake-token variants) and lock release → next acquire of the same
    lock.

    Exempt words — never reported: words registered with
    [Ops.A_sync_word] (primitive internals) or [Ops.A_relaxed_word]
    (intentionally racy), and any word ever touched by an atomic
    operation during the run.

    Findings are deduplicated per (word, site pair, lock sets): a loop
    hitting the same racy pair every iteration produces one diagnostic
    carrying an occurrence count, stamped with the pair's first
    occurrence in trace order.

    Detector state is bounded by the number of {e live} threads: when
    a thread finishes, its vector clock collapses to a single snapshot
    (kept for join edges) and its pending tokens and lockset are
    dropped. *)

val run : names:(int -> string) -> Trace.t -> Diag.t list
(** Diagnostics in trace order. [names] maps a tid to the thread name
    used in messages. *)
