open Butterfly

(* Word identity: addresses are (node, index) pairs and stable within
   a run, so they key every table. *)
type key = int * int

let key a = (Memory.node_of a, Memory.index_of a)
let key_name (node, index) = Printf.sprintf "%d:%d" node index

(* One prior access in epoch form: [comp] is the accessor's own
   vector-clock component at the access, so "that access happened
   before thread [v]'s current point" is [comp <= v_clock.(tid)]. *)
type prior = { p_tid : int; p_comp : int; p_time : int; p_lockset : key list }

type word_state = {
  mutable last_write : prior option;
  reads : (int, prior) Hashtbl.t;  (* latest read per thread since the last write *)
  mutable candidates : key list option;  (* Eraser candidate lockset *)
}

(* An aggregated race finding: one per (word, site pair, lock sets).
   Loops hitting the same racy pair every iteration bump [f_count]
   instead of flooding the report. *)
type finding = {
  f_word : key;
  f_cur : prior;  (* the pair's first occurrence, in trace order *)
  f_prior : prior;
  f_candidates : key list option;  (* Eraser candidate set at first occurrence *)
  mutable f_count : int;
}

type state = {
  clocks : (int, Vclock.t) Hashtbl.t;
  tokens : (int, int array Queue.t) Hashtbl.t;  (* pending wake-token snapshots *)
  release_clocks : (key, int array) Hashtbl.t;  (* per lock: clock at last release *)
  held : (int, key list) Hashtbl.t;  (* per thread: locks held, innermost first *)
  finished : (int, int array) Hashtbl.t;
      (* epoch-collapse: a finished thread's clock survives only as
         this one snapshot (for join edges); its live clock, pending
         tokens and lockset are dropped so detector state stays
         bounded by live threads, not by every thread that ever ran *)
  words : (key, word_state) Hashtbl.t;
  exempt : (key, unit) Hashtbl.t;
  findings : (key * (int * key list) * (int * key list), finding) Hashtbl.t;
  mutable finding_order : finding list;  (* newest first *)
  names : int -> string;
}

let clock_of st tid =
  match Hashtbl.find_opt st.clocks tid with
  | Some c -> c
  | None ->
    let c = Vclock.create () in
    (* Own component starts at 1: "component 0 is known" must not hold
       for threads that never synchronized. *)
    Vclock.set c tid 1;
    Hashtbl.replace st.clocks tid c;
    c

let lockset st tid = match Hashtbl.find_opt st.held tid with Some l -> l | None -> []

let intersect a b = List.filter (fun k -> List.mem k b) a

(* Scan the whole trace first for words the detector must ignore:
   synchronization internals, words declared intentionally racy, and
   any word ever touched by an atomic operation (atomics are this
   machine's synchronization instructions). *)
let prescan trace =
  let exempt = Hashtbl.create 256 in
  Trace.iter
    (function
      | Trace.Annot { annotation = Ops.A_sync_word a; _ }
      | Trace.Annot { annotation = Ops.A_relaxed_word a; _ } ->
        Hashtbl.replace exempt (key a) ()
      | Trace.Annot _ -> ()
      | Trace.Access { access_kind = Memory.Atomic_access; access_addr; _ } ->
        Hashtbl.replace exempt (key access_addr) ()
      | Trace.Access _ | Trace.Event _ -> ())
    trace;
  exempt

let word_state st k =
  match Hashtbl.find_opt st.words k with
  | Some w -> w
  | None ->
    let w = { last_write = None; reads = Hashtbl.create 4; candidates = None } in
    Hashtbl.replace st.words k w;
    w

(* Record a racing pair, deduped by (word, site pair, lock sets). The
   site pair is canonicalized by tid order so (a races b) and
   (b races a) aggregate into one finding. *)
let note_race st word k ~cur ~prior =
  let site p = (p.p_tid, List.sort compare p.p_lockset) in
  let sa, sb = (site prior, site cur) in
  let fkey = if fst sa <= fst sb then (k, sa, sb) else (k, sb, sa) in
  match Hashtbl.find_opt st.findings fkey with
  | Some f -> f.f_count <- f.f_count + 1
  | None ->
    let f = { f_word = k; f_cur = cur; f_prior = prior;
              f_candidates = word.candidates; f_count = 1 } in
    Hashtbl.replace st.findings fkey f;
    st.finding_order <- f :: st.finding_order

let finding_diag st f =
  let candidates =
    match f.f_candidates with
    | Some (_ :: _ as c) ->
      Printf.sprintf " (candidate locks left: %s)"
        (String.concat ", " (List.map key_name c))
    | Some [] | None -> " (Eraser candidate set empty)"
  in
  let occurrences =
    if f.f_count > 1 then Printf.sprintf "; %d occurrences of this site pair" f.f_count
    else ""
  in
  Diag.make ~category:Diag.Race ~rule:"data-race" ~time:f.f_cur.p_time
    ~thread:(st.names f.f_cur.p_tid)
    (Printf.sprintf
       "word %s: access by %s at %d ns races with access by %s at %d ns; no common \
        lock and no happens-before order%s%s"
       (key_name f.f_word) (st.names f.f_cur.p_tid) f.f_cur.p_time
       (st.names f.f_prior.p_tid) f.f_prior.p_time candidates occurrences)

let check_pair st word k ~cur ~prior =
  if prior.p_tid <> cur.p_tid then begin
    let cur_clock = clock_of st cur.p_tid in
    let ordered = prior.p_comp <= Vclock.get cur_clock prior.p_tid in
    if (not ordered) && intersect prior.p_lockset cur.p_lockset = [] then
      note_race st word k ~cur ~prior
  end

let on_access st (a : Sched.access) =
  let k = key a.access_addr in
  if not (Hashtbl.mem st.exempt k) then begin
    let tid = a.access_tid in
    let clock = clock_of st tid in
    let ls = lockset st tid in
    let cur = { p_tid = tid; p_comp = Vclock.get clock tid; p_time = a.access_time;
                p_lockset = ls } in
    let word = word_state st k in
    (* Eraser refinement: the candidate set narrows on every access;
       an empty candidate set alone is only a suspicion — the
       happens-before test in [check_pair] confirms or clears it. *)
    word.candidates <-
      Some (match word.candidates with None -> ls | Some c -> intersect c ls);
    (match a.access_kind with
    | Memory.Read_access ->
      (match word.last_write with
      | Some w -> check_pair st word k ~cur ~prior:w
      | None -> ());
      Hashtbl.replace word.reads tid cur
    | Memory.Write_access ->
      (match word.last_write with
      | Some w -> check_pair st word k ~cur ~prior:w
      | None -> ());
      Hashtbl.iter (fun _ r -> check_pair st word k ~cur ~prior:r) word.reads;
      Hashtbl.reset word.reads;
      word.last_write <- Some cur
    | Memory.Atomic_access -> ())
  end

let on_event st (ev : Sched.event) =
  match ev.kind with
  | Sched.Ev_fork ->
    (* tid = child, other = parent: the child starts after the fork. *)
    if ev.other >= 0 then begin
      let parent = clock_of st ev.other in
      let child = clock_of st ev.tid in
      Vclock.join child (Vclock.snapshot parent);
      Vclock.set child ev.tid (Vclock.get child ev.tid + 1);
      Vclock.incr parent ev.other
    end
  | Sched.Ev_wakeup ->
    (* tid = wakee, other = waker: everything the waker did is visible
       to the wakee when it resumes. *)
    if ev.other >= 0 then begin
      let waker = clock_of st ev.other in
      Vclock.join (clock_of st ev.tid) (Vclock.snapshot waker);
      Vclock.incr waker ev.other
    end
  | Sched.Ev_token ->
    (* A wakeup of a not-yet-blocked thread: the edge lands when the
       token is absorbed, so snapshot the waker now. *)
    if ev.other >= 0 then begin
      let waker = clock_of st ev.other in
      let q =
        match Hashtbl.find_opt st.tokens ev.tid with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.replace st.tokens ev.tid q;
          q
      in
      Queue.add (Vclock.snapshot waker) q;
      Vclock.incr waker ev.other
    end
  | Sched.Ev_token_use -> (
    match Hashtbl.find_opt st.tokens ev.tid with
    | Some q when not (Queue.is_empty q) ->
      Vclock.join (clock_of st ev.tid) (Queue.pop q)
    | Some _ | None -> ())
  | Sched.Ev_join ->
    (* tid = joiner, other = finished thread: join sees everything.
       The target has usually finished already, so its clock lives in
       the collapsed-snapshot table. *)
    if ev.other >= 0 then begin
      let snap =
        match Hashtbl.find_opt st.finished ev.other with
        | Some snap -> snap
        | None -> Vclock.snapshot (clock_of st ev.other)
      in
      Vclock.join (clock_of st ev.tid) snap
    end
  | Sched.Ev_finish ->
    (* Epoch-collapse: keep only the final snapshot (joiners may still
       need the edge); drop the thread's live detector state. *)
    Hashtbl.replace st.finished ev.tid (Vclock.snapshot (clock_of st ev.tid));
    Hashtbl.remove st.clocks ev.tid;
    Hashtbl.remove st.tokens ev.tid;
    Hashtbl.remove st.held ev.tid
  | Sched.Ev_switch | Sched.Ev_preempt | Sched.Ev_block -> ()

let on_annot st (an : Sched.annot) =
  match an.annotation with
  | Ops.A_lock_acquire { lock; _ } ->
    let k = key lock in
    let tid = an.annot_tid in
    (match Hashtbl.find_opt st.release_clocks k with
    | Some snap -> Vclock.join (clock_of st tid) snap
    | None -> ());
    Hashtbl.replace st.held tid (k :: lockset st tid)
  | Ops.A_lock_release { lock; _ } ->
    let k = key lock in
    let tid = an.annot_tid in
    let rec remove = function
      | [] -> []
      | k' :: rest -> if k' = k then rest else k' :: remove rest
    in
    Hashtbl.replace st.held tid (remove (lockset st tid));
    let clock = clock_of st tid in
    Hashtbl.replace st.release_clocks k (Vclock.snapshot clock);
    Vclock.incr clock tid
  | Ops.A_lock_request _ | Ops.A_sync_word _ | Ops.A_relaxed_word _ | Ops.A_adaptation _ -> ()

let run ~names trace =
  let st =
    {
      clocks = Hashtbl.create 64;
      tokens = Hashtbl.create 64;
      release_clocks = Hashtbl.create 64;
      held = Hashtbl.create 64;
      finished = Hashtbl.create 64;
      words = Hashtbl.create 1024;
      exempt = prescan trace;
      findings = Hashtbl.create 64;
      finding_order = [];
      names;
    }
  in
  Trace.iter
    (function
      | Trace.Event ev -> on_event st ev
      | Trace.Access a -> on_access st a
      | Trace.Annot an -> on_annot st an)
    trace;
  List.rev_map (finding_diag st) st.finding_order
