(** The three parallel TSP implementations of §4.

    All are collections of searcher threads, one per dedicated
    processor, cooperating through a shared work pool of LMSK
    subproblems and a shared best-tour value, synchronized by the four
    paper locks:

    - [qlock] — mutual exclusion of the work queue(s),
    - [glob-act-lock] — the count of active searchers (termination),
    - [glob-low-lock] — the best-tour value,
    - [globlock] — multi-purpose (records the best tour's path and
      run bookkeeping).

    The implementations differ in the placement of the shared
    abstractions:

    - {b Centralized}: one global best-first queue and one global best
      value on a single node — consistent and optimally pruned, but
      [qlock] and [glob-act-lock] are heavily contended (Figures 4–5).
    - {b Distributed}: per-processor queues connected in a ring (an
      empty searcher steals from the next non-empty queue along the
      ring) and per-processor best-value copies propagated on
      improvement — lower contention (Figures 6–7) at the price of
      useless node expansions from stale bounds and partial ordering.
    - {b Balanced}: distributed plus the load-balancing rule — each
      time a searcher needs work it first moves one subproblem from its
      ring neighbour's queue into its own, then takes its local best
      (Figures 8–9). *)

type impl = Centralized | Distributed | Balanced

val impl_name : impl -> string

type instance_kind =
  | Uniform of int  (** asymmetric, uniform costs in [1, max] *)
  | Euclidean  (** symmetric rounded-distance costs (harder trees) *)

type spec = {
  cities : int;
  instance_kind : instance_kind;
  instance_seed : int;
  searchers : int;  (** one dedicated processor each *)
  lock_kind : Locks.Lock.kind;  (** used for all four locks *)
  trace_locks : bool;  (** record Figures 4–9 waiting patterns *)
  work_unit_ns : int;  (** virtual ns per abstract LMSK work unit *)
  remote_penalty_ns : int;
      (** extra ns per work unit when the expanded subproblem's data
          lives on a remote node (the centralized implementation pays
          this on nearly every expansion — the paper's "most of the
          work is performed locally" advantage of the distributed
          versions) *)
  queue_op_ns : int;  (** modeled cost of one queue manipulation *)
  prime_with_greedy : bool;
      (** seed the best-tour value with a nearest-neighbour tour before
          searching (standard branch-and-bound practice; prevents the
          distributed versions' pre-first-tour junk explosion from
          dominating) *)
  continuation_depth : int option;
      (** queue-visit granularity: a searcher may continue depth-first
          with the most promising child (queueing only siblings) for
          this many successive expansions before it must exchange with
          the shared queue; 0 routes every node through the queue.
          [None] selects the per-implementation default after the
          paper: 0 for the centralized implementation (its global
          ordering is strictly maintained) and 16 for the distributed
          ones (partially ordered local queues). *)
  machine_seed : int;
}

val tsp_adaptive_params : Locks.Adaptive_lock.params
(** The per-lock tuned [simple-adapt] constants used in the TSP
    experiments (threshold above the worst-case waiter count: with one
    thread per processor, blocking frees no useful cpu). *)

val tsp_adaptive_kind : Locks.Lock.kind

val default_spec : spec
(** The paper's setup: 32 cities (Euclidean, seed 1), 10 searchers,
    blocking locks, work units calibrated so the sequential baseline
    lands at the paper's ~20.7 s. *)

val instance_of_spec : spec -> Instance.t

type result = {
  impl : impl;
  spec : spec;
  tour_cost : int;
  total_ns : int;  (** application execution time *)
  nodes_expanded : int;
  useless_expansions : int;
      (** expansions of nodes whose bound already exceeded the final
          optimum (the distributed implementations' waste) *)
  lock_reports : (string * Locks.Lock_stats.t) list;
      (** one entry per lock; distributed queue locks are reported
          per-processor plus a ["qlock"] entry for the traced
          representative *)
  adaptations : int;  (** total reconfigurations across all locks *)
}

val run : ?machine:Butterfly.Config.t -> impl -> spec -> result

val scenario : ?impl:impl -> spec -> unit -> unit
(** The searcher-pool program as a bare thunk, for running under an
    externally owned simulator (the sanitizers of [lib/analysis]).
    Must run inside a machine with at least [spec.searchers + 1]
    processors; results are discarded. [impl] defaults to
    [Centralized]. *)

val run_sequential : ?machine:Butterfly.Config.t -> spec -> int * (int * int)
(** The sequential baseline on one simulated processor, charging the
    same per-node work and queue costs but no locks. Returns
    (virtual ns, (tour cost, nodes expanded)). *)
