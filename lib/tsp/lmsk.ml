let inf = max_int / 4

type node = {
  n : int;
  m : int array;  (* reduced cost matrix, flattened; inf = forbidden *)
  row_act : bool array;
  col_act : bool array;
  k : int;  (* active rows (= active cols) *)
  node_bound : int;
  edges : (int * int) list;
  path_start : int array;  (* start city of the included path through c *)
  path_end : int array;
}

let bound t = t.node_bound
let depth t = List.length t.edges
let active t = t.k

(* Reduce rows then columns in place; returns the reduction total or
   [None] when some active row/column has no feasible entry. *)
let reduce ~n ~m ~row_act ~col_act =
  let total = ref 0 in
  let feasible = ref true in
  for i = 0 to n - 1 do
    if !feasible && row_act.(i) then begin
      let mn = ref inf in
      for j = 0 to n - 1 do
        if col_act.(j) && m.((i * n) + j) < !mn then mn := m.((i * n) + j)
      done;
      if !mn >= inf then feasible := false
      else if !mn > 0 then begin
        for j = 0 to n - 1 do
          if col_act.(j) && m.((i * n) + j) < inf then
            m.((i * n) + j) <- m.((i * n) + j) - !mn
        done;
        total := !total + !mn
      end
    end
  done;
  for j = 0 to n - 1 do
    if !feasible && col_act.(j) then begin
      let mn = ref inf in
      for i = 0 to n - 1 do
        if row_act.(i) && m.((i * n) + j) < !mn then mn := m.((i * n) + j)
      done;
      if !mn >= inf then feasible := false
      else if !mn > 0 then begin
        for i = 0 to n - 1 do
          if row_act.(i) && m.((i * n) + j) < inf then
            m.((i * n) + j) <- m.((i * n) + j) - !mn
        done;
        total := !total + !mn
      end
    end
  done;
  if !feasible then Some !total else None

let root inst =
  let n = Instance.size inst in
  let m = Array.init (n * n) (fun idx -> Instance.cost inst (idx / n) (idx mod n)) in
  let row_act = Array.make n true and col_act = Array.make n true in
  let reduction =
    match reduce ~n ~m ~row_act ~col_act with
    | Some r -> r
    | None -> invalid_arg "Lmsk.root: infeasible instance"
  in
  {
    n;
    m;
    row_act;
    col_act;
    k = n;
    node_bound = reduction;
    edges = [];
    path_start = Array.init n (fun c -> c);
    path_end = Array.init n (fun c -> c);
  }

(* Maximum-penalty zero entry: the edge whose exclusion raises the
   bound the most. *)
let choose_branch_edge t =
  let n = t.n in
  let best = ref None in
  for i = 0 to n - 1 do
    if t.row_act.(i) then
      for j = 0 to n - 1 do
        if t.col_act.(j) && t.m.((i * n) + j) = 0 then begin
          let row_min = ref inf and col_min = ref inf in
          for j' = 0 to n - 1 do
            if t.col_act.(j') && j' <> j && t.m.((i * n) + j') < !row_min then
              row_min := t.m.((i * n) + j')
          done;
          for i' = 0 to n - 1 do
            if t.row_act.(i') && i' <> i && t.m.((i' * n) + j) < !col_min then
              col_min := t.m.((i' * n) + j)
          done;
          let penalty =
            (if !row_min >= inf then inf else !row_min)
            + if !col_min >= inf then inf else !col_min
          in
          match !best with
          | Some (p, _, _) when p >= penalty -> ()
          | _ -> best := Some (penalty, i, j)
        end
      done
  done;
  !best

let copy t =
  {
    t with
    m = Array.copy t.m;
    row_act = Array.copy t.row_act;
    col_act = Array.copy t.col_act;
    path_start = Array.copy t.path_start;
    path_end = Array.copy t.path_end;
  }

let exclude_child t (i, j) penalty =
  if penalty >= inf then None
  else begin
    let c = copy t in
    c.m.((i * c.n) + j) <- inf;
    match reduce ~n:c.n ~m:c.m ~row_act:c.row_act ~col_act:c.col_act with
    | None -> None
    | Some r ->
      let b = t.node_bound + r in
      if b >= inf then None else Some { c with node_bound = b }
  end

let include_child t (i, j) =
  let c = copy t in
  c.row_act.(i) <- false;
  c.col_act.(j) <- false;
  let k = t.k - 1 in
  (* Path bookkeeping: including i->j merges the path ending at i with
     the path starting at j; closing that merged path back on itself
     would create a subtour, so forbid its closing edge while the tour
     is incomplete. *)
  let s = c.path_start.(i) and e = c.path_end.(j) in
  c.path_end.(s) <- e;
  c.path_start.(e) <- s;
  if k > 1 then c.m.((e * c.n) + s) <- inf;
  match reduce ~n:c.n ~m:c.m ~row_act:c.row_act ~col_act:c.col_act with
  | None -> None
  | Some r ->
    let b = t.node_bound + r in
    if b >= inf then None
    else Some { c with k; node_bound = b; edges = (i, j) :: t.edges }

(* Reconstruct the closed tour (starting at city 0) from a complete
   edge set. Returns None if the edges do not form one Hamiltonian
   cycle. *)
let tour_of_edges n edges =
  let succ = Array.make n (-1) in
  let ok = ref (List.length edges = n) in
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= n || succ.(i) <> -1 then ok := false else succ.(i) <- j)
    edges;
  if not !ok then None
  else begin
    let tour = ref [ 0 ] and current = ref succ.(0) and steps = ref 1 in
    while !current <> 0 && !current <> -1 && !steps < n do
      tour := !current :: !tour;
      current := succ.(!current);
      incr steps
    done;
    if !current = 0 && !steps = n then Some (List.rev !tour) else None
  end

(* With two active rows/columns the assignment is forced (up to the
   subtour-forbidden entries): try both pairings, keep valid tours. *)
let complete inst t =
  let rows = ref [] and cols = ref [] in
  for i = t.n - 1 downto 0 do
    if t.row_act.(i) then rows := i :: !rows;
    if t.col_act.(i) then cols := i :: !cols
  done;
  match (!rows, !cols) with
  | [ r1; r2 ], [ c1; c2 ] ->
    let candidates = [ [ (r1, c1); (r2, c2) ]; [ (r1, c2); (r2, c1) ] ] in
    let feasible pair =
      List.for_all (fun (i, j) -> t.m.((i * t.n) + j) < inf) pair
    in
    List.filter_map
      (fun pair ->
        if not (feasible pair) then None
        else
          match tour_of_edges t.n (pair @ t.edges) with
          | None -> None
          | Some tour -> Some (tour, Instance.tour_cost inst tour))
      candidates
    |> List.sort (fun (_, a) (_, b) -> compare a b)
    |> (function [] -> None | best :: _ -> Some best)
  | _ -> None

type outcome = Children of node list | Tour of int list * int
type expansion = { outcome : outcome; work : int }

let expand inst t =
  let work = t.k * t.k in
  if t.k <= 2 then
    match complete inst t with
    | Some (tour, cost) -> { outcome = Tour (tour, cost); work }
    | None -> { outcome = Children []; work }
  else
    match choose_branch_edge t with
    | None -> { outcome = Children []; work }
    | Some (penalty, i, j) ->
      let children =
        List.filter_map
          (fun c -> c)
          [ include_child t (i, j); exclude_child t (i, j) penalty ]
      in
      (* Each child construction re-reduces a k x k matrix. *)
      { outcome = Children children; work = work * 3 }

let solve_sequential ?initial ?on_expand inst =
  let open_nodes = Engine.Pqueue.create ~dummy:(root inst) () in
  let push nd = Engine.Pqueue.add open_nodes ~key:(bound nd) nd in
  push (root inst);
  let best_cost, best_tour =
    match initial with
    | Some (tour, cost) -> (ref cost, ref tour)
    | None -> (ref inf, ref [])
  in
  let expanded = ref 0 in
  let rec loop () =
    match Engine.Pqueue.pop_min open_nodes with
    | None -> ()
    | Some (b, _) when b >= !best_cost -> loop ()
    | Some (_, nd) ->
      incr expanded;
      let { outcome; work } = expand inst nd in
      (match on_expand with Some f -> f nd work | None -> ());
      (match outcome with
      | Tour (tour, cost) ->
        if cost < !best_cost then begin
          best_cost := cost;
          best_tour := tour
        end
      | Children children ->
        List.iter (fun c -> if bound c < !best_cost then push c) children);
      loop ()
  in
  loop ();
  if !best_tour = [] then invalid_arg "Lmsk.solve_sequential: no tour found";
  ((!best_tour, !best_cost), !expanded)

let brute_force inst =
  let n = Instance.size inst in
  if n > 10 then invalid_arg "Lmsk.brute_force: too large";
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) xs in
          List.map (fun p -> x :: p) (permutations rest))
        xs
  in
  let cities = List.init (n - 1) (fun i -> i + 1) in
  List.fold_left
    (fun best perm -> min best (Instance.tour_cost inst (0 :: perm)))
    max_int (permutations cities)
