open Butterfly
open Cthreads

type impl = Centralized | Distributed | Balanced

let impl_name = function
  | Centralized -> "centralized"
  | Distributed -> "distributed"
  | Balanced -> "distributed+LB"

type instance_kind = Uniform of int | Euclidean

type spec = {
  cities : int;
  instance_kind : instance_kind;
  instance_seed : int;
  searchers : int;
  lock_kind : Locks.Lock.kind;
  trace_locks : bool;
  work_unit_ns : int;
  remote_penalty_ns : int;
  queue_op_ns : int;
  prime_with_greedy : bool;
  continuation_depth : int option;
  machine_seed : int;
}

(* The adaptive parameters used for the TSP experiments: with one
   searcher per dedicated processor, blocking never frees useful cpu,
   so the tuned Waiting-Threshold is above the worst-case waiter count
   (the paper stresses that threshold and n are tuned per lock). *)
let tsp_adaptive_params =
  {
    Locks.Adaptive_lock.waiting_threshold = 12;
    n = 6;
    spin_cap = 64;
    sample_period = 2;
  }

let tsp_adaptive_kind = Locks.Lock.Adaptive tsp_adaptive_params

let default_spec =
  {
    cities = 32;
    instance_kind = Uniform 100;
    instance_seed = 11;
    searchers = 10;
    lock_kind = Locks.Lock.Blocking;
    trace_locks = false;
    work_unit_ns = 8_012;
    remote_penalty_ns = 700;
    queue_op_ns = 12_000;
    prime_with_greedy = true;
    continuation_depth = None;
    machine_seed = 0x5eed;
  }

let instance_of_spec spec =
  match spec.instance_kind with
  | Uniform max_cost -> Instance.generate ~max_cost ~seed:spec.instance_seed spec.cities
  | Euclidean -> Instance.generate_euclidean ~seed:spec.instance_seed spec.cities

type result = {
  impl : impl;
  spec : spec;
  tour_cost : int;
  total_ns : int;
  nodes_expanded : int;
  useless_expansions : int;
  lock_reports : (string * Locks.Lock_stats.t) list;
  adaptations : int;
}

let big = max_int / 4

(* A growable host-side int vector recording the bound of every
   expanded node, so useless expansions can be counted post hoc. *)
module Bounds_log = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 1024 0; len = 0 }

  let add t v =
    if t.len = Array.length t.data then begin
      let data = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let count_ge t threshold =
    let c = ref 0 in
    for i = 0 to t.len - 1 do
      if t.data.(i) >= threshold then incr c
    done;
    !c
end

let machine_config ?machine spec ~processors =
  let base = match machine with Some cfg -> cfg | None -> Config.default in
  { base with Config.processors; seed = spec.machine_seed }

let run_sequential ?machine spec =
  let inst = instance_of_spec spec in
  let cfg = machine_config ?machine spec ~processors:1 in
  let sim = Sched.create cfg in
  let answer = ref ((([] : int list), 0), 0) in
  Sched.run sim (fun () ->
      let on_expand _node work =
        Ops.work ((work * spec.work_unit_ns) + (2 * spec.queue_op_ns))
      in
      let initial =
        if spec.prime_with_greedy then begin
          (* The greedy upper bound costs one sweep of the matrix. *)
          Ops.work (spec.cities * spec.cities * spec.work_unit_ns / 4);
          Some (Instance.nearest_neighbour inst)
        end
        else None
      in
      answer := Lmsk.solve_sequential ?initial ~on_expand inst);
  let (_tour, cost), expanded = !answer in
  (Sched.final_time sim, (cost, expanded))

(* One searcher pool run; the three implementations differ only in the
   strategy closures built in [run]. *)
type strategy = {
  get_work : int -> (Lmsk.node * [ `Local | `Remote ]) option;
  put_work : int -> Lmsk.node list -> unit;
  exchange : int -> Lmsk.node list -> (Lmsk.node * [ `Local | `Remote ]) option;
      (* push children and take the next subproblem in one queue
         visit (one lock cycle per expansion) *)
  read_best : int -> int;
  publish_best : int -> int list -> int -> unit;
  any_work_left : unit -> bool;
}

(* The searcher-pool program itself, separated from machine setup so
   it can also run under the sanitizers ([Analysis.check] owns the
   simulator there). Requires a machine with at least
   [spec.searchers + 1] processors. *)
let pool_body impl spec ~expanded ~bounds_log ~final_cost ~lock_reports () =
  let inst = instance_of_spec spec in
  let p = spec.searchers in
  if p < 1 then invalid_arg "Parallel.pool_body: need at least one searcher";
  begin
      let mk_lock ?(trace = false) ~home name =
        Locks.Lock.create ~name ~trace:(trace && spec.trace_locks) ~home spec.lock_kind
      in
      (* Searcher i runs on processor i+1; node i+1 is its local
         memory. The centralized structures live on searcher 0's
         node. *)
      let node_of i = i + 1 in
      let central = node_of 0 in
      let nqueues = match impl with Centralized -> 1 | Distributed | Balanced -> p in
      let queue_home i = if nqueues = 1 then central else node_of i in
      (* Queue entries carry the node id of the memory holding the
         subproblem's data: expanding data homed elsewhere pays the
         remote penalty (pointers travel through queues, matrices are
         read through the interconnect). *)
      let queue_dummy = (central, Lmsk.root inst) in
      let queues : (int * Lmsk.node) Engine.Pqueue.t array =
        Array.init nqueues (fun _ -> Engine.Pqueue.create ~dummy:queue_dummy ())
      in
      let qlocks =
        Array.init nqueues (fun i ->
            let name = if nqueues = 1 then "qlock" else Printf.sprintf "qlock.%d" i in
            mk_lock ~trace:true ~home:(queue_home i) name)
      in
      let nbest = match impl with Centralized -> 1 | Distributed | Balanced -> p in
      let best_home i = if nbest = 1 then central else node_of i in
      let initial_best =
        if spec.prime_with_greedy then begin
          Ops.work (spec.cities * spec.cities * spec.work_unit_ns / 4);
          Some (Instance.nearest_neighbour inst)
        end
        else None
      in
      let initial_cost = match initial_best with Some (_, c) -> c | None -> big in
      let best_words =
        Array.init nbest (fun i ->
            let w = Ops.alloc1 ~node:(best_home i) () in
            (* Searchers read the best bound without the lock on
               purpose (stale reads only cost pruning precision). *)
            Ops.mark_relaxed_word w;
            Ops.write w initial_cost;
            w)
      in
      let best_locks =
        Array.init nbest (fun i ->
            let name =
              if nbest = 1 then "glob-low-lock" else Printf.sprintf "glob-low-lock.%d" i
            in
            mk_lock ~home:(best_home i) name)
      in
      let glob_act_lock = mk_lock ~trace:true ~home:central "glob-act-lock" in
      let act_word = Ops.alloc1 ~node:central () in
      (* [poll] reads the active count unlocked; only the transition to
         zero matters and that one is rechecked. *)
      Ops.mark_relaxed_word act_word;
      Ops.write act_word p;
      let globlock = mk_lock ~home:central "globlock" in
      let best_tours =
        ref (match initial_best with Some (t, c) -> [ (c, t) ] | None -> [])
      in
      let done_flag = ref false in
      let queue_op () = Cthread.work spec.queue_op_ns in
      let pop_queue qi =
        Locks.Lock.lock qlocks.(qi);
        queue_op ();
        let entry = Engine.Pqueue.pop_min queues.(qi) in
        Locks.Lock.unlock qlocks.(qi);
        Option.map snd entry
      in
      let push_queue qi entries =
        Locks.Lock.lock qlocks.(qi);
        queue_op ();
        List.iter
          (fun ((_, nd) as entry) ->
            Engine.Pqueue.add queues.(qi) ~key:(Lmsk.bound nd) entry)
          entries;
        Locks.Lock.unlock qlocks.(qi)
      in
      let exchange_queue qi entries =
        Locks.Lock.lock qlocks.(qi);
        queue_op ();
        List.iter
          (fun ((_, nd) as entry) ->
            Engine.Pqueue.add queues.(qi) ~key:(Lmsk.bound nd) entry)
          entries;
        let entry = Engine.Pqueue.pop_min queues.(qi) in
        Locks.Lock.unlock qlocks.(qi);
        Option.map snd entry
      in
      let record_tour tour cost =
        Locks.Lock.lock globlock;
        best_tours := (cost, tour) :: !best_tours;
        Locks.Lock.unlock globlock
      in
      let strategy =
        match impl with
        | Centralized ->
          {
            get_work =
              (fun i ->
                (* The centralized queue stores subproblem data on the
                   central node. *)
                match pop_queue 0 with
                | None -> None
                | Some (_, nd) ->
                  Some (nd, if node_of i = central then `Local else `Remote));
            put_work =
              (fun i nodes -> push_queue 0 (List.map (fun nd -> (node_of i, nd)) nodes));
            exchange =
              (fun i nodes ->
                match
                  exchange_queue 0 (List.map (fun nd -> (node_of i, nd)) nodes)
                with
                | None -> None
                | Some (_, nd) ->
                  Some (nd, if node_of i = central then `Local else `Remote));
            read_best = (fun _ -> Ops.read best_words.(0));
            publish_best =
              (fun _ tour cost ->
                Locks.Lock.lock best_locks.(0);
                let improved = cost < Ops.read best_words.(0) in
                if improved then Ops.write best_words.(0) cost;
                Locks.Lock.unlock best_locks.(0);
                if improved then record_tour tour cost);
            any_work_left =
              (fun () -> not (Engine.Pqueue.is_empty queues.(0)));
          }
        | Distributed | Balanced ->
          let ring_steal i =
            (* Walk the ring from the next processor, stealing from the
               first non-empty queue. *)
            let rec walk step =
              if step >= p then None
              else begin
                let j = (i + step) mod p in
                if Engine.Pqueue.is_empty queues.(j) then walk (step + 1)
                else
                  match pop_queue j with
                  | Some nd -> Some nd
                  | None -> walk (step + 1)
              end
            in
            walk 1
          in
          let locality_of i (origin, nd) =
            (nd, if origin = node_of i then `Local else `Remote)
          in
          let get_local_or_steal i =
            match pop_queue i with
            | Some entry -> Some (locality_of i entry)
            | None -> Option.map (locality_of i) (ring_steal i)
          in
          let get_work =
            match impl with
            | Balanced ->
              fun i ->
                (* Load balancing: first pull one subproblem from the
                   ring neighbour into the local queue, then take the
                   local best. *)
                let neighbour = (i + 1) mod p in
                (if neighbour <> i && not (Engine.Pqueue.is_empty queues.(neighbour))
                 then
                   (* Only the pointer moves; the subproblem keeps its
                      provenance, so expanding it later still pays the
                      remote accesses. *)
                   match pop_queue neighbour with
                   | Some entry -> push_queue i [ entry ]
                   | None -> ());
                get_local_or_steal i
            | Centralized | Distributed -> get_local_or_steal
          in
          {
            get_work;
            put_work =
              (fun i nodes -> push_queue i (List.map (fun nd -> (node_of i, nd)) nodes));
            exchange =
              (fun i nodes ->
                match
                  exchange_queue i (List.map (fun nd -> (node_of i, nd)) nodes)
                with
                | Some entry -> Some (locality_of i entry)
                | None -> Option.map (locality_of i) (ring_steal i));
            read_best = (fun i -> Ops.read best_words.(i));
            publish_best =
              (fun i tour cost ->
                (* Update the local copy first, then propagate around
                   the ring; windows of inconsistency are the point. *)
                let improved = ref false in
                for step = 0 to p - 1 do
                  let j = (i + step) mod p in
                  Locks.Lock.lock best_locks.(j);
                  if cost < Ops.read best_words.(j) then begin
                    Ops.write best_words.(j) cost;
                    if j = i then improved := true
                  end;
                  Locks.Lock.unlock best_locks.(j)
                done;
                if !improved then record_tour tour cost);
            any_work_left =
              (fun () ->
                Array.exists (fun q -> not (Engine.Pqueue.is_empty q)) queues);
          }
      in
      let searcher i () =
        (* Bounded depth-continuation: the searcher may keep working on
           the most promising child for up to [continuation_depth]
           successive expansions (sharing the sibling), then returns to
           the shared queue — the queue-visit granularity knob. *)
        let continuation_depth =
          match spec.continuation_depth with
          | Some d -> d
          | None -> (
            (* Per-implementation default, after the paper: the
               centralized queue strictly maintains global ordering;
               the distributed queues are only partially ordered (the
               searchers bias depth-first between queue exchanges). *)
            match impl with
            | Centralized -> 0
            | Distributed | Balanced -> 16)
        in
        let chain = ref 0 in
        let rec work_on nd locality =
          if Lmsk.bound nd >= strategy.read_best i then active ()
          else begin
            let { Lmsk.outcome; work } = Lmsk.expand inst nd in
            let per_unit =
              spec.work_unit_ns
              + (match locality with `Local -> 0 | `Remote -> spec.remote_penalty_ns)
            in
            Cthread.work (work * per_unit);
            incr expanded;
            Bounds_log.add bounds_log (Lmsk.bound nd);
            match outcome with
            | Lmsk.Tour (tour, cost) ->
              if cost < strategy.read_best i then strategy.publish_best i tour cost;
              active ()
            | Lmsk.Children children ->
              let best = strategy.read_best i in
              let keep =
                List.filter (fun c -> Lmsk.bound c < best) children
                |> List.sort (fun a b -> compare (Lmsk.bound a) (Lmsk.bound b))
              in
              (match keep with
              | [] -> active ()
              | first :: rest when !chain < continuation_depth ->
                incr chain;
                if rest <> [] then strategy.put_work i rest;
                (* The continued child was just created here: local. *)
                work_on first `Local
              | keep -> (
                (* Share the children and take the next subproblem in
                   one queue visit. *)
                chain := 0;
                match strategy.exchange i keep with
                | Some (nd, locality) -> work_on nd locality
                | None -> idle ()))
          end
        and active () =
          chain := 0;
          match strategy.get_work i with
          | Some (nd, locality) -> work_on nd locality
          | None -> idle ()
        and idle () =
          Locks.Lock.lock glob_act_lock;
          Ops.write act_word (Ops.read act_word - 1);
          Locks.Lock.unlock glob_act_lock;
          poll ()
        and poll () =
          if !done_flag then ()
          else if strategy.any_work_left () then begin
            Locks.Lock.lock glob_act_lock;
            Ops.write act_word (Ops.read act_word + 1);
            Locks.Lock.unlock glob_act_lock;
            active ()
          end
          else if Ops.read act_word = 0 then begin
            done_flag := true;
            ()
          end
          else begin
            Cthread.delay 150_000;
            poll ()
          end
        in
        active ()
      in
      (* Seed the pool with the root subproblem and launch. *)
      let root = Lmsk.root inst in
      Engine.Pqueue.add queues.(0) ~key:(Lmsk.bound root) (central, root);
      let threads =
        List.init p (fun i ->
            Cthread.fork ~name:(Printf.sprintf "searcher%d" i) ~proc:(node_of i)
              (searcher i))
      in
      Cthread.join_all threads;
      (match List.sort compare !best_tours with
      | (cost, _) :: _ -> final_cost := cost
      | [] -> ());
      let report name lk = (name, Locks.Lock.stats lk) in
      lock_reports :=
        Array.to_list (Array.map (fun lk -> report (Locks.Lock.name lk) lk) qlocks)
        @ Array.to_list
            (Array.map (fun lk -> report (Locks.Lock.name lk) lk) best_locks)
        @ [ report "glob-act-lock" glob_act_lock; report "globlock" globlock ]
  end

let scenario ?(impl = Centralized) spec () =
  pool_body impl spec ~expanded:(ref 0) ~bounds_log:(Bounds_log.create ())
    ~final_cost:(ref big) ~lock_reports:(ref []) ()

let run ?machine impl spec =
  let p = spec.searchers in
  if p < 1 then invalid_arg "Parallel.run: need at least one searcher";
  let cfg = machine_config ?machine spec ~processors:(p + 1) in
  let sim = Sched.create cfg in
  let expanded = ref 0 in
  let bounds_log = Bounds_log.create () in
  let final_cost = ref big in
  let lock_reports = ref [] in
  Sched.run sim (pool_body impl spec ~expanded ~bounds_log ~final_cost ~lock_reports);
  let adaptations =
    List.fold_left
      (fun acc (_, s) -> acc + Locks.Lock_stats.reconfigurations s)
      0 !lock_reports
  in
  {
    impl;
    spec;
    tour_cost = !final_cost;
    total_ns = Sched.final_time sim;
    nodes_expanded = !expanded;
    useless_expansions = Bounds_log.count_ge bounds_log !final_cost;
    lock_reports = !lock_reports;
    adaptations;
  }
