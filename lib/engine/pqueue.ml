type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a;
}

let create ?(capacity = 64) ~dummy () =
  let capacity = max capacity 1 in
  {
    keys = Array.make capacity 0;
    seqs = Array.make capacity 0;
    vals = Array.make capacity dummy;
    size = 0;
    next_seq = 0;
    dummy;
  }

let size q = q.size
let is_empty q = q.size = 0

(* (key, seq) lexicographic order: smaller key wins; on equal keys the
   earlier insertion (smaller seq) wins, giving FIFO stability. *)
let less q i j =
  q.keys.(i) < q.keys.(j) || (q.keys.(i) = q.keys.(j) && q.seqs.(i) < q.seqs.(j))

let swap q i j =
  let k = q.keys.(i) in
  q.keys.(i) <- q.keys.(j);
  q.keys.(j) <- k;
  let s = q.seqs.(i) in
  q.seqs.(i) <- q.seqs.(j);
  q.seqs.(j) <- s;
  let v = q.vals.(i) in
  q.vals.(i) <- q.vals.(j);
  q.vals.(j) <- v

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less q i parent then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  if left < q.size then begin
    let right = left + 1 in
    let smallest = if right < q.size && less q right left then right else left in
    if less q smallest i then begin
      swap q i smallest;
      sift_down q smallest
    end
  end

let grow q =
  let capacity = Array.length q.keys in
  let capacity' = capacity * 2 in
  let keys = Array.make capacity' 0 in
  let seqs = Array.make capacity' 0 in
  let vals = Array.make capacity' q.dummy in
  Array.blit q.keys 0 keys 0 q.size;
  Array.blit q.seqs 0 seqs 0 q.size;
  Array.blit q.vals 0 vals 0 q.size;
  q.keys <- keys;
  q.seqs <- seqs;
  q.vals <- vals

let add q ~key v =
  if q.size = Array.length q.keys then grow q;
  let i = q.size in
  q.keys.(i) <- key;
  q.seqs.(i) <- q.next_seq;
  q.vals.(i) <- v;
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q i

let peek_min q = if q.size = 0 then None else Some (q.keys.(0), q.vals.(0))
let min_key q = if q.size = 0 then None else Some q.keys.(0)

(* Allocation-free peek for per-iteration polling (the scheduler's
   "is the next timer due?" check): [max_int] stands for "empty", so
   the caller's comparison against a real virtual time needs no
   branch on an option. *)
let peek_min_key q = if q.size = 0 then max_int else q.keys.(0)

(* Remove the root. The freed slot is overwritten with [dummy] so the
   queue never retains a reference to a popped value. *)
let remove_min q =
  let v = q.vals.(0) in
  let last = q.size - 1 in
  swap q 0 last;
  q.vals.(last) <- q.dummy;
  q.size <- last;
  sift_down q 0;
  v

let pop_min q =
  if q.size = 0 then None
  else
    let key = q.keys.(0) in
    Some (key, remove_min q)

let pop_min_exn q =
  if q.size = 0 then invalid_arg "Pqueue.pop_min_exn: empty queue"
  else
    let key = q.keys.(0) in
    (key, remove_min q)

let pop_min_value_exn q =
  if q.size = 0 then invalid_arg "Pqueue.pop_min_value_exn: empty queue"
  else remove_min q

(* Remove an arbitrary entry: swap it with the last slot, shrink, then
   restore the heap property in whichever direction the transplanted
   entry violates it. O(n) scan + O(log n) repair — only used by the
   controlled scheduler's forced-dispatch path, never on the default
   hot path. *)
let remove q pred =
  let rec find i = if i >= q.size then -1 else if pred q.vals.(i) then i else find (i + 1) in
  let i = find 0 in
  if i < 0 then None
  else begin
    let v = q.vals.(i) in
    let last = q.size - 1 in
    swap q i last;
    q.vals.(last) <- q.dummy;
    q.size <- last;
    if i < last then begin
      sift_down q i;
      sift_up q i
    end;
    Some v
  end

let clear q =
  Array.fill q.vals 0 q.size q.dummy;
  q.size <- 0

let drain q =
  let rec loop () =
    if q.size = 0 then []
    else
      let key = q.keys.(0) in
      let v = remove_min q in
      (key, v) :: loop ()
  in
  loop ()

let iter q f =
  for i = 0 to q.size - 1 do
    f q.keys.(i) q.vals.(i)
  done
