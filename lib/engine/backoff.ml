type t = { base_ns : int; cap_ns : int; jitter_pct : int; rng : Rng.t }

let create ?(base_ns = 1_000) ?(cap_ns = 1_000_000) ?(jitter_pct = 25) ~seed () =
  if base_ns <= 0 then invalid_arg "Backoff.create: base_ns must be positive";
  if cap_ns <= 0 then invalid_arg "Backoff.create: cap_ns must be positive";
  let jitter_pct = max 0 (min 100 jitter_pct) in
  { base_ns; cap_ns; jitter_pct; rng = Rng.create seed }

let gap_ns t ~attempt =
  if attempt < 0 then invalid_arg "Backoff.gap_ns: negative attempt";
  (* Shift with overflow guard: past 40 doublings we are far beyond any
     sensible cap anyway. *)
  let exp = if attempt >= 40 then t.cap_ns else t.base_ns * (1 lsl attempt) in
  let gap = min t.cap_ns exp in
  let gap =
    if t.jitter_pct = 0 then gap
    else begin
      let span = gap * t.jitter_pct / 100 in
      if span = 0 then gap else gap - span + Rng.int t.rng ((2 * span) + 1)
    end
  in
  max 1 gap

let retry t ~max_attempts ~sleep f =
  if max_attempts <= 0 then invalid_arg "Backoff.retry: max_attempts must be positive";
  let rec go attempt =
    if f () then true
    else if attempt + 1 >= max_attempts then false
    else begin
      sleep (gap_ns t ~attempt);
      go (attempt + 1)
    end
  in
  go 0
