(** Parallel experiment engine: fan independent simulations out across
    host cores ([Domain]s) and merge their results in input order.

    Every simulation in this repository is an independent,
    deterministic run over its own machine state, so a batch of them
    is embarrassingly parallel: [map f inputs] yields exactly the list
    [List.map f inputs] regardless of the domain count, only faster.
    Work distribution uses a fixed-size domain pool claiming chunks of
    the input off one atomic counter (no work stealing); results land
    in a slot per input, so output order — and therefore report and
    CSV bytes — never depends on scheduling.

    Tasks must be self-contained: no shared mutable state, no printing
    (render into a buffer and return it instead). Exceptions raised by
    a task are re-raised in the caller, first failing input first.

    Nested calls degrade to sequential execution: a task that itself
    calls [map] runs its sub-tasks inline, so composed parallel stages
    never oversubscribe the host. *)

val recommended_domains : unit -> int
(** The host's recommended domain count
    ([Domain.recommended_domain_count ()]). *)

val set_default_domains : int -> unit
(** Set the process-wide default used when [?domains] is omitted
    (clamped to at least 1). The CLI [--domains] flag lands here. *)

val default_domains : unit -> int
(** The current default: the value of {!set_default_domains} if one
    was set, otherwise {!recommended_domains}. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?domains f inputs] is [List.map f inputs] computed by up to
    [domains] domains (default {!default_domains}; the calling domain
    counts as one). [~domains:1] runs strictly sequentially, in input
    order, on the calling domain — bit-for-bit today's behaviour. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array variant of {!map}. *)
