let recommended_domains () = Domain.recommended_domain_count ()

(* 0 means "unset": resolve to the hardware recommendation. *)
let default_override = Atomic.make 0

let set_default_domains n = Atomic.set default_override (max 1 n)

let default_domains () =
  let d = Atomic.get default_override in
  if d > 0 then d else recommended_domains ()

(* A domain already inside a [map] must not spawn further domains:
   nested maps degrade to sequential execution, so compositions of
   parallel stages (a parallel report whose sections also parallelize
   internally) never oversubscribe the host. *)
let in_worker : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

type 'b cell = Pending | Done of 'b | Failed of exn

(* Strict left-to-right application: the [domains = 1] path must be
   indistinguishable from the pre-runner sequential code. *)
let map_seq f xs =
  let len = Array.length xs in
  if len = 0 then [||]
  else begin
    let out = Array.make len (f xs.(0)) in
    for i = 1 to len - 1 do
      out.(i) <- f xs.(i)
    done;
    out
  end

let map_array ?domains f xs =
  let len = Array.length xs in
  let requested = match domains with Some d -> max 1 d | None -> default_domains () in
  let n = if !(Domain.DLS.get in_worker) then 1 else min requested len in
  if n <= 1 then map_seq f xs
  else begin
    let results = Array.make len Pending in
    let next = Atomic.make 0 in
    (* Chunked claiming off one shared counter: coarse enough to keep
       the counter cold, fine enough that uneven task costs still
       balance across the pool. *)
    let chunk = max 1 (len / (n * 8)) in
    let work () =
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < len then begin
          let stop = min len (start + chunk) in
          for i = start to stop - 1 do
            results.(i) <- (match f xs.(i) with v -> Done v | exception e -> Failed e)
          done;
          loop ()
        end
      in
      loop ()
    in
    let worker () =
      let flag = Domain.DLS.get in_worker in
      flag := true;
      Fun.protect ~finally:(fun () -> flag := false) work
    in
    let helpers = Array.init (n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    (* Merge in input order; the first failure (by input position)
       re-raises, deterministically. *)
    Array.map
      (function Done v -> v | Failed e -> raise e | Pending -> assert false)
      results
  end

let map ?domains f l =
  match l with
  | [] -> []
  | [ x ] -> [ f x ]
  | l -> Array.to_list (map_array ?domains f (Array.of_list l))
