type t = {
  series_name : string;
  mutable ts : int array;
  mutable vs : float array;
  mutable n : int;
}

let create ?(capacity = 64) ~name () =
  let capacity = max capacity 1 in
  { series_name = name; ts = Array.make capacity 0; vs = Array.make capacity 0.0; n = 0 }

let name s = s.series_name
let length s = s.n

let grow s =
  let capacity = Array.length s.ts * 2 in
  let ts = Array.make capacity 0 and vs = Array.make capacity 0.0 in
  Array.blit s.ts 0 ts 0 s.n;
  Array.blit s.vs 0 vs 0 s.n;
  s.ts <- ts;
  s.vs <- vs

let add s ~t ~v =
  if s.n > 0 && t < s.ts.(s.n - 1) then
    invalid_arg "Series.add: timestamps must be non-decreasing";
  if s.n = Array.length s.ts then grow s;
  s.ts.(s.n) <- t;
  s.vs.(s.n) <- v;
  s.n <- s.n + 1

let get s i =
  if i < 0 || i >= s.n then invalid_arg "Series.get: index out of bounds";
  (s.ts.(i), s.vs.(i))

let last s = if s.n = 0 then None else Some (s.ts.(s.n - 1), s.vs.(s.n - 1))

let iter s f =
  for i = 0 to s.n - 1 do
    f s.ts.(i) s.vs.(i)
  done

let fold s ~init ~f =
  let acc = ref init in
  iter s (fun t v -> acc := f !acc t v);
  !acc

let to_list s = List.rev (fold s ~init:[] ~f:(fun acc t v -> (t, v) :: acc))

let max_value s =
  fold s ~init:None ~f:(fun acc _ v ->
      match acc with None -> Some v | Some m -> Some (Float.max m v))

let min_value s =
  fold s ~init:None ~f:(fun acc _ v ->
      match acc with None -> Some v | Some m -> Some (Float.min m v))

let mean_value s =
  if s.n = 0 then None
  else Some (fold s ~init:0.0 ~f:(fun acc _ v -> acc +. v) /. float_of_int s.n)

let time_weighted_mean s =
  if s.n < 2 then None
  else begin
    let total_span = float_of_int (s.ts.(s.n - 1) - s.ts.(0)) in
    if total_span <= 0.0 then mean_value s
    else begin
      let weighted = ref 0.0 in
      for i = 0 to s.n - 2 do
        let dt = float_of_int (s.ts.(i + 1) - s.ts.(i)) in
        weighted := !weighted +. (s.vs.(i) *. dt)
      done;
      Some (!weighted /. total_span)
    end
  end

let resample s ~buckets =
  if buckets <= 0 then invalid_arg "Series.resample: buckets must be positive";
  if s.n = 0 then [||]
  else begin
    let t0 = s.ts.(0) and t1 = s.ts.(s.n - 1) in
    let span = max 1 (t1 - t0) in
    let sums = Array.make buckets 0.0 and counts = Array.make buckets 0 in
    iter s (fun t v ->
        let b = min (buckets - 1) ((t - t0) * buckets / span) in
        sums.(b) <- sums.(b) +. v;
        counts.(b) <- counts.(b) + 1);
    let out = Array.make buckets (t0, 0.0) in
    let prev = ref s.vs.(0) in
    for b = 0 to buckets - 1 do
      let mid = t0 + ((b * span) / buckets) + (span / (2 * buckets)) in
      let v = if counts.(b) = 0 then !prev else sums.(b) /. float_of_int counts.(b) in
      prev := v;
      out.(b) <- (mid, v)
    done;
    out
  end

let csv_string series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time";
  List.iter (fun s -> Printf.bprintf buf ",%s" s.series_name) series;
  Buffer.add_char buf '\n';
  (* Merge by time: advance a cursor per series, carrying values forward. *)
  let cursors = Array.make (List.length series) 0 in
  let arr = Array.of_list series in
  let current = Array.make (Array.length arr) nan in
  let rec next_time best i =
    if i >= Array.length arr then best
    else begin
      let s = arr.(i) in
      let best =
        if cursors.(i) < s.n then
          match best with
          | None -> Some s.ts.(cursors.(i))
          | Some b -> Some (min b s.ts.(cursors.(i)))
        else best
      in
      next_time best (i + 1)
    end
  in
  let rec emit () =
    match next_time None 0 with
    | None -> ()
    | Some t ->
      Array.iteri
        (fun i s ->
          while cursors.(i) < s.n && s.ts.(cursors.(i)) <= t do
            current.(i) <- s.vs.(cursors.(i));
            cursors.(i) <- cursors.(i) + 1
          done)
        arr;
      Printf.bprintf buf "%d" t;
      Array.iter
        (fun v ->
          if Float.is_nan v then Buffer.add_char buf ',' else Printf.bprintf buf ",%g" v)
        current;
      Buffer.add_char buf '\n';
      emit ()
  in
  emit ();
  Buffer.contents buf

let output_csv oc series = output_string oc (csv_string series)
