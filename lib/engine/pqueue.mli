(** Binary min-heap priority queue with stable (FIFO) tie-breaking.

    The event queue at the heart of the discrete-event simulator. Keys
    are virtual timestamps (non-negative integers). Two entries with
    equal keys are popped in insertion order, which keeps simulations
    deterministic without requiring callers to invent tie-breakers.

    Values are stored in a flat ['a array] (no ['a option] boxing on
    the hot path), so creation takes a [dummy] value used to fill
    vacant slots. The dummy is never returned and a popped slot is
    immediately overwritten with it, so the queue retains no reference
    to values it no longer holds. *)

type 'a t
(** A mutable priority queue holding values of type ['a]. *)

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty queue. [capacity] pre-sizes the
    backing arrays (default 64); the queue grows automatically.
    [dummy] is a placeholder of the element type ([0], [""], a
    sentinel record, ...) filling unoccupied slots. *)

val add : 'a t -> key:int -> 'a -> unit
(** [add q ~key v] inserts [v] with priority [key]. O(log n),
    allocation-free outside of growth. *)

val pop_min : 'a t -> (int * 'a) option
(** [pop_min q] removes and returns the entry with the smallest key
    (ties: earliest inserted first), or [None] if empty. O(log n). *)

val pop_min_exn : 'a t -> int * 'a
(** Like {!pop_min} but raises [Invalid_argument] on an empty queue. *)

val pop_min_value_exn : 'a t -> 'a
(** [pop_min_value_exn q] is [snd (pop_min_exn q)] without allocating
    the pair: the scheduler's allocation-free dispatch path. *)

val peek_min : 'a t -> (int * 'a) option
(** [peek_min q] is the entry [pop_min] would return, without removing
    it. O(1). *)

val min_key : 'a t -> int option
(** [min_key q] is the smallest key present, if any. O(1). *)

val peek_min_key : 'a t -> int
(** Allocation-free {!min_key}: the smallest key present, or [max_int]
    when the queue is empty. O(1). The scheduler polls this once per
    dispatch ("is the next fault timer due?"), so it must not box an
    option per iteration. *)

val size : 'a t -> int
(** Number of entries currently in the queue. *)

val is_empty : 'a t -> bool

val remove : 'a t -> ('a -> bool) -> 'a option
(** [remove q pred] extracts the first entry (in unspecified heap
    order) whose value satisfies [pred], restoring the heap property.
    O(n). Used by the controlled scheduler to force-dispatch a
    specific thread regardless of its queue position. *)

val clear : 'a t -> unit
(** Remove every entry (overwriting the slots with the dummy). Does
    not shrink the backing array. *)

val drain : 'a t -> (int * 'a) list
(** [drain q] pops everything, returning entries in priority order.
    Leaves [q] empty. Builds the result in one pass (no intermediate
    accumulator/[List.rev]). Intended for tests and shutdown paths. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Iterate over entries in unspecified order (heap order). *)
