(** Named integer counters.

    Lightweight event counting shared by the machine, the thread
    package, the lock family, and the monitors. A [t] is a bag of
    counters addressed by string name; reading a counter that was never
    incremented yields 0. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Increment a counter by one. *)

val cell : t -> string -> int ref
(** The counter's underlying cell, created at 0 on first use. Callers
    on hot paths cache the ref and bump it directly, skipping the
    hashtable lookup that {!incr}/{!add} pay per call. *)

val add : t -> string -> int -> unit
(** Add an arbitrary (possibly negative) amount. *)

val get : t -> string -> int
(** Current value, 0 if never touched. *)

val set : t -> string -> int -> unit

val reset : t -> unit
(** Zero every counter (names are kept). *)

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val pp : Format.formatter -> t -> unit
(** One [name = value] line per counter, sorted by name. *)
