(** Bounded exponential backoff with deterministic jitter.

    The retry policy behind the thread package's recovery paths: a
    failed attempt waits [base * 2^attempt] capped at [cap], plus a
    jitter drawn from a seeded {!Rng} stream so that retries from
    different threads decorrelate without breaking run-to-run
    determinism. The module is engine-level and knows nothing about
    the simulator: callers hand {!retry} their own [sleep] (typically
    [Butterfly.Ops.delay]) so the same policy drives simulated and
    host-side retries alike. *)

type t

val create : ?base_ns:int -> ?cap_ns:int -> ?jitter_pct:int -> seed:int -> unit -> t
(** [base_ns] is the first gap (default 1_000), [cap_ns] the bound
    (default 1_000_000), [jitter_pct] the +/- percentage drawn
    uniformly around each gap (default 25, clamped to [0, 100]).
    Raises [Invalid_argument] on non-positive [base_ns]/[cap_ns]. *)

val gap_ns : t -> attempt:int -> int
(** The wait before retry number [attempt] (0-based): exponential,
    capped, jittered. Consumes one draw from the policy's RNG stream,
    so calling it in a loop yields a deterministic but decorrelated
    schedule. Always at least 1. *)

val retry : t -> max_attempts:int -> sleep:(int -> unit) -> (unit -> bool) -> bool
(** [retry t ~max_attempts ~sleep f] runs [f ()] up to [max_attempts]
    times, sleeping [gap_ns] between failures, and returns whether an
    attempt succeeded. [f] is always called at least once; no sleep
    follows the final failure. *)
