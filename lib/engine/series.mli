(** Growable time series: (virtual timestamp, value) samples.

    Used by lock tracing (Figures 4–9 plot the number of waiting
    threads over time), monitor modules, and the workload harness.
    Timestamps are virtual nanoseconds and must be appended in
    non-decreasing order; values are floats. *)

type t

val create : ?capacity:int -> name:string -> unit -> t
(** Fresh empty series. [name] labels CSV columns and plots. *)

val name : t -> string

val add : t -> t:int -> v:float -> unit
(** Append a sample. Raises [Invalid_argument] if [t] is smaller than
    the previous sample's timestamp (series must be time-ordered). *)

val length : t -> int

val get : t -> int -> int * float
(** [get s i] is the [i]-th sample. Raises [Invalid_argument] when out
    of bounds. *)

val last : t -> (int * float) option

val iter : t -> (int -> float -> unit) -> unit

val fold : t -> init:'a -> f:('a -> int -> float -> 'a) -> 'a

val to_list : t -> (int * float) list

val max_value : t -> float option
val min_value : t -> float option

val mean_value : t -> float option
(** Unweighted mean of the sample values. *)

val time_weighted_mean : t -> float option
(** Mean of the value weighted by the time it was held, treating each
    sample as holding until the next sample's timestamp. [None] when
    fewer than two samples. *)

val resample : t -> buckets:int -> (int * float) array
(** [resample s ~buckets] reduces the series to [buckets] points by
    averaging samples inside equal-width time windows spanning the
    series; empty windows repeat the previous value. Used to render
    compact figures from long traces. *)

val csv_string : t list -> string
(** The CSV rendering of series sharing one file: a header row
    [time,name1,name2...] followed by the union of sample times
    (missing values carried forward, empty until first sample). The
    exact bytes {!output_csv} writes. *)

val output_csv : out_channel -> t list -> unit
(** [output_string oc (csv_string series)]. *)
