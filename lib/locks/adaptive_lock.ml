module Policy = Adaptive_core.Policy
module Sensor = Adaptive_core.Sensor
module Adaptive = Adaptive_core.Adaptive

type params = { waiting_threshold : int; n : int; spin_cap : int; sample_period : int }

let default_params = { waiting_threshold = 4; n = 16; spin_cap = 32; sample_period = 2 }

type t = {
  reconf : Reconfigurable_lock.t;
  loop : int Adaptive.t;
  budget : Spin_budget.t;
  mutable guard : Guardrail.t option;
}

let apply_budget t =
  Spin_budget.apply t.budget (Lock_core.policy (Reconfigurable_lock.core t.reconf));
  Lock_stats.on_reconfigure (Reconfigurable_lock.stats t.reconf)

(* The [simple-adapt] step as a policy over any spin budget — the
   plumbing shared by this closely-coupled lock and Monitoring's
   loosely-coupled one, which differ only in how observations arrive
   and how [apply] reaches the attributes. [apply] reports whether the
   reconfiguration took effect: the closely-coupled path always
   succeeds, the external-agent path can lose the ownership race. *)
let budget_policy ~budget ~apply obs =
  match Spin_budget.step budget ~waiting:obs with
  | None -> Policy.No_change
  | Some _ ->
    Policy.Reconfigure
      {
        label = Spin_budget.mode budget;
        cost = Lock_costs.configure_waiting_policy;
        apply;
      }

let simple_adapt _params t =
  budget_policy ~budget:t.budget
    ~apply:(fun () ->
      apply_budget t;
      true)

(* Guardrail-filtered simple-adapt via the generic [Policy.guarded]
   combinator: each observation is clamped first; a pathological
   streak resets the budget to its default combined value (one charged
   waiting-policy reconfiguration) instead of feeding the policy. *)
let guarded_adapt params guard t =
  let clamp obs =
    let wedged_low = Spin_budget.spins t.budget = 0 && obs > params.waiting_threshold in
    Guardrail.classify guard ~waiting:obs ~wedged_low
  in
  let fallback _ =
    Policy.reconfigure ~label:"guardrail-fallback"
      ~cost:Lock_costs.configure_waiting_policy (fun () ->
        Spin_budget.reset t.budget;
        apply_budget t)
  in
  Policy.guarded ~guard:(Guardrail.guard guard) ~clamp ~fallback
    (simple_adapt params t)

let create ?name ?trace ?sched ?(params = default_params) ?policy ?guardrail ~home () =
  let name = match name with Some n -> n | None -> "adaptive-lock" in
  let waiting = Waiting.combined ~node:home ~spins:params.n () in
  let reconf = Reconfigurable_lock.create ~name ?trace ?sched ~policy:waiting ~home () in
  let core = Reconfigurable_lock.core reconf in
  let sensor =
    Sensor.make ~name:(name ^ ".no-of-waiting-threads") ~period:params.sample_period
      ~overhead_instrs:40
      (fun () -> Lock_core.waiting_now core)
  in
  let loop = Adaptive.create ~name ~kind:"lock" ~home ~sensor ~policy:Policy.no_op () in
  let budget =
    Spin_budget.create ~threshold:params.waiting_threshold ~n:params.n ~cap:params.spin_cap
      ~init:params.n
  in
  let t = { reconf; loop; budget; guard = None } in
  let policy =
    match policy with
    | Some p -> p
    | None -> (
      match guardrail with
      | None -> simple_adapt params t
      | Some gparams ->
        let guard = Guardrail.create ~params:gparams () in
        t.guard <- Some guard;
        guarded_adapt params guard t)
  in
  Adaptive.set_policy loop policy;
  t

let lock t = Reconfigurable_lock.lock t.reconf
let try_lock t = Reconfigurable_lock.try_lock t.reconf
let lock_timeout t ~deadline_ns = Reconfigurable_lock.lock_timeout t.reconf ~deadline_ns

let lock_retrying t ~backoff ~max_attempts ~slice_ns =
  Reconfigurable_lock.lock_retrying t.reconf ~backoff ~max_attempts ~slice_ns

let unlock t =
  Reconfigurable_lock.unlock t.reconf;
  ignore (Adaptive.tick t.loop)

let name t = Reconfigurable_lock.name t.reconf
let stats t = Reconfigurable_lock.stats t.reconf
let reconfigurable t = t.reconf
let feedback t = t.loop
let spins_now t = Spin_budget.spins t.budget
let mode t = Spin_budget.mode t.budget
let adaptations t = Adaptive.adaptations t.loop
let samples t = Adaptive.samples t.loop
let guardrail t = t.guard
