module Policy = Adaptive_core.Policy
module Sensor = Adaptive_core.Sensor
module Adaptive = Adaptive_core.Adaptive

type params = { waiting_threshold : int; n : int; spin_cap : int; sample_period : int }

let default_params = { waiting_threshold = 4; n = 16; spin_cap = 32; sample_period = 2 }

type t = {
  reconf : Reconfigurable_lock.t;
  loop : int Adaptive.t;
  budget : Spin_budget.t;
  mutable guard : Guardrail.t option;
}

let apply_budget t =
  Spin_budget.apply t.budget (Lock_core.policy (Reconfigurable_lock.core t.reconf));
  Lock_stats.on_reconfigure (Reconfigurable_lock.stats t.reconf)

(* The guardrail half of the policy spec: clamp observations into
   [0, clamp_max], treat "budget wedged at pure blocking while waiters
   pile past the threshold" as pathological, and fall back to the
   default combined configuration after a streak. *)
let guard_spec ~(params : params) ~(gparams : Guardrail.params) ~init =
  {
    Policy.Spec.g_clamp_lo = 0;
    g_clamp_hi = gparams.Guardrail.clamp_max;
    g_wedge =
      Some
        {
          Policy.Spec.w_configs = [ 0 ];
          w_cond = Policy.Spec.cond (params.waiting_threshold + 1);
        };
    g_limit = gparams.Guardrail.pathological_limit;
    g_cooldown = gparams.Guardrail.cooldown;
    g_fallback = init;
    g_fallback_label = "guardrail-fallback";
    g_fallback_cost = Lock_costs.configure_waiting_policy;
  }

(* The paper's [simple-adapt] (optionally guardrailed) as a
   declarative spec — what the static policy checker inspects and what
   [create] compiles into the running policy, so the two cannot
   drift. *)
let policy_spec ?(params = default_params) ?guardrail ?name ?attribute () =
  let spec =
    Spin_budget.spec ?name ?attribute ~threshold:params.waiting_threshold
      ~n:params.n ~cap:params.spin_cap ~init:params.n ()
  in
  match guardrail with
  | None -> spec
  | Some gparams ->
    {
      spec with
      Policy.Spec.s_guard =
        Some (guard_spec ~params ~gparams ~init:spec.Policy.Spec.s_initial);
    }

(* The [simple-adapt] step as a policy over any spin budget — the
   plumbing shared by this closely-coupled lock and Monitoring's
   loosely-coupled one, which differ only in how observations arrive
   and how [apply] reaches the attributes. [apply] reports whether the
   reconfiguration took effect: the closely-coupled path always
   succeeds, the external-agent path can lose the ownership race (the
   budget still advances, tracking the policy's intent — exactly the
   pre-IR behavior, where [step] mutated at decision time). *)
let compile_budget spec ~budget ~apply =
  Policy.Spec.compile spec
    ~read:(fun () -> Spin_budget.spins budget)
    ~apply:(fun v ->
      Spin_budget.set budget v;
      apply ())
    ~metric:(fun (waiting : int) -> waiting)

let budget_policy ~budget ~apply =
  compile_budget (Spin_budget.spec_of budget) ~budget ~apply

let simple_adapt _params t =
  budget_policy ~budget:t.budget
    ~apply:(fun () ->
      apply_budget t;
      true)

(* Guardrail-filtered simple-adapt: the same spec with its guard
   attached, sharing the [Guardrail.t]'s streak/cooldown state so its
   accessors keep reporting. A pathological streak resets the budget
   to its default combined value (one charged waiting-policy
   reconfiguration) instead of feeding the policy. *)
let guarded_adapt params guard t =
  let spec =
    policy_spec ~params ~guardrail:(Guardrail.config guard)
      ~name:(Adaptive.name t.loop) ()
  in
  Policy.Spec.compile spec
    ~guard_state:(Guardrail.guard guard)
    ~read:(fun () -> Spin_budget.spins t.budget)
    ~apply:(fun v ->
      Spin_budget.set t.budget v;
      apply_budget t;
      true)
    ~metric:(fun (waiting : int) -> waiting)

let create ?name ?trace ?sched ?(params = default_params) ?policy ?guardrail ~home () =
  let name = match name with Some n -> n | None -> "adaptive-lock" in
  let waiting = Waiting.combined ~node:home ~spins:params.n () in
  let reconf = Reconfigurable_lock.create ~name ?trace ?sched ~policy:waiting ~home () in
  let core = Reconfigurable_lock.core reconf in
  let sensor =
    Sensor.make ~name:(name ^ ".no-of-waiting-threads") ~period:params.sample_period
      ~overhead_instrs:40
      (fun () -> Lock_core.waiting_now core)
  in
  (* The spec describes the default (possibly guardrailed) simple-adapt
     policies; a caller-supplied policy is opaque, so no spec — the
     registry then skips the formal log check rather than judging the
     log against a space it does not follow. *)
  let spec =
    match policy with Some _ -> None | None -> Some (policy_spec ~params ?guardrail ~name ())
  in
  let loop =
    Adaptive.create ~name ~kind:"lock" ?spec ~home ~sensor ~policy:Policy.no_op ()
  in
  let budget =
    Spin_budget.create ~threshold:params.waiting_threshold ~n:params.n ~cap:params.spin_cap
      ~init:params.n
  in
  let t = { reconf; loop; budget; guard = None } in
  let policy =
    match policy with
    | Some p -> p
    | None -> (
      match guardrail with
      | None -> simple_adapt params t
      | Some gparams ->
        let guard = Guardrail.create ~params:gparams () in
        t.guard <- Some guard;
        guarded_adapt params guard t)
  in
  Adaptive.set_policy loop policy;
  t

let lock t = Reconfigurable_lock.lock t.reconf
let try_lock t = Reconfigurable_lock.try_lock t.reconf
let lock_timeout t ~deadline_ns = Reconfigurable_lock.lock_timeout t.reconf ~deadline_ns

let lock_retrying t ~backoff ~max_attempts ~slice_ns =
  Reconfigurable_lock.lock_retrying t.reconf ~backoff ~max_attempts ~slice_ns

let unlock t =
  Reconfigurable_lock.unlock t.reconf;
  ignore (Adaptive.tick t.loop)

let name t = Reconfigurable_lock.name t.reconf
let stats t = Reconfigurable_lock.stats t.reconf
let reconfigurable t = t.reconf
let feedback t = t.loop
let spins_now t = Spin_budget.spins t.budget
let mode t = Spin_budget.mode t.budget
let adaptations t = Adaptive.adaptations t.loop
let samples t = Adaptive.samples t.loop
let guardrail t = t.guard
