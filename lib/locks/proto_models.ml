(* Protocol models for the explicit-state checker. See the .mli for
   the modelling granularity: one guard-held compound section of the
   real implementation = one atomic rule here. *)

module Protocol = Adaptive_core.Protocol
module S = Protocol.Spec
open S

type waiter = Wsleep | Wtimed

type qbug = Stolen_freeze_commit | Lost_sleeper | Double_grant | No_age_out

let k = fun v -> K v

(* ---- the Switch_lock quiescence swap ---- *)

(* Cast: role 1 is the swapper (initially holding the lock), roles
   2..n+1 the waiters. Shared words mirror the implementation: [ctl]
   is the freeze word (0 = no swap, 1 = the swapper's freeze token),
   [ack] the outstanding-kick count, [impl] the current
   implementation (0 = blocking: release hands off to the
   lowest-ticket registered waiter and sleepers park; 1 = TAS: release
   frees the word and grants nobody), [lockword]/[owner] the lock
   itself, and per waiter a registration bit, a mailbox flag
   (0 waiting / 1 granted / 2 migrate), an in-flight-kick bit and the
   ticket. The abstract clock: 0 = inside the drain window, 1 = past
   the drain deadline (drain timeouts and waiter deadlines fire),
   2 = past deadline+grace (abandoned-swap recovery fires). *)

let quiescence ?bug ~waiters () =
  let n = List.length waiters in
  if n < 1 then invalid_arg "Proto_models.quiescence";
  let wname i = Printf.sprintf "w%d" i in
  let wid i = 1 + i in
  let reg i = Printf.sprintf "reg%d" i
  and flag i = Printf.sprintf "flag%d" i
  and kick i = Printf.sprintf "kick%d" i
  and tk i = Printf.sprintf "tk%d" i in
  let shared =
    [ ("lockword", 1); ("owner", 1); ("ctl", 0); ("ack", 0); ("impl", 0); ("tkt", 1);
      ("committed", 0); ("rolled", 0); ("recovered", 0) ]
    @ List.concat
        (List.mapi
           (fun i _ ->
             let i = i + 1 in
             [ (reg i, 0); (flag i, 0); (kick i, 0); (tk i, 0) ])
           waiters)
  in
  let roles =
    { r_name = "swapper"; r_flavor = Swapper; r_crashable = true; r_locals = [ ("cs", 1) ] }
    :: List.mapi
         (fun i w ->
           { r_name = wname (i + 1);
             r_flavor = (match w with Wsleep -> Sleeping | Wtimed -> Timed);
             r_crashable = true; r_locals = [ ("cs", 0) ] })
         waiters
  in
  let widxs = List.mapi (fun i _ -> i + 1) waiters in
  (* Everyone still registered is strictly younger than ticket [tk j]
     — i.e. j is the queue head. *)
  let head j =
    All
      (C (Eq, S (reg j), k 1)
      :: List.filter_map
           (fun i ->
             if i = j then None
             else Some (Any [ C (Eq, S (reg i), k 0); C (Gt, S (tk i), S (tk j)) ]))
           widxs)
  in
  (* Release, as the implementation does it: under TAS free the word;
     under blocking hand off to the queue head (keeping the word
     held), waking it if it sleeps, else free the word. *)
  let release_rules ~role ~from_ =
    rule ~role ~from_ ~done_:true ~guard:(C (Eq, S "impl", k 1))
      ~acts:[ Write ("lockword", k 0); Write ("owner", k 0); Set ("cs", k 0) ]
      ~label:"free" 99
    :: rule ~role ~from_ ~done_:true
         ~guard:(All (C (Eq, S "impl", k 0) :: List.map (fun i -> C (Eq, S (reg i), k 0)) widxs))
         ~acts:[ Write ("lockword", k 0); Write ("owner", k 0); Set ("cs", k 0) ]
         ~label:"free" 99
    :: List.map
         (fun j ->
           rule ~role ~from_ ~done_:true
             ~guard:(All [ C (Eq, S "impl", k 0); head j ])
             ~acts:
               [ Write (flag j, k 1); Write ("owner", k (wid j)); Write (reg j, k 0);
                 Set ("cs", k 0); Unpark (wname j) ]
             ~label:"grant" 99)
         widxs
  in
  (* The kick: one guarded section walking the queue. The seeded bugs
     mistreat sleeping waiters exactly as the historical code did. *)
  let kick_acts =
    let kick_one j =
      If
        ( C (Eq, S (reg j), k 1),
          [ Write (kick j, k 1); Write (flag j, k 2); Write ("ack", Add (S "ack", k 1));
            Unpark (wname j) ],
          [] )
    in
    match bug with
    | Some Lost_sleeper ->
      List.concat_map
        (fun j ->
          [ If (All [ C (Eq, S (reg j), k 1); C (Eq, Status (wname j), k 1) ],
                [ Write (reg j, k 0) ], []);
            kick_one j ])
        widxs
    | Some Double_grant ->
      List.concat_map
        (fun j ->
          [ If (All [ C (Eq, S (reg j), k 1); C (Eq, Status (wname j), k 1) ],
                [ Write (reg j, k 0); Write (flag j, k 1); Unpark (wname j) ], []);
            kick_one j ])
        widxs
    | _ -> List.map kick_one widxs
  in
  let swapper_rules =
    [ rule ~role:"swapper" ~from_:0 ~acts:[ Write ("ctl", k 1) ] ~label:"freeze" 1;
      rule ~role:"swapper" ~from_:0 ~label:"skip" 5;
      rule ~role:"swapper" ~from_:1 ~acts:kick_acts ~label:"kick" 2;
      rule ~role:"swapper" ~from_:2 ~guard:(C (Eq, S "ack", k 0)) ~label:"drain-ok" 3;
      rule ~role:"swapper" ~from_:2 ~timeout:true ~guard:(C (Ge, Clock, k 1))
        ~label:"drain-timeout" 4 ]
    @ (match bug with
      | Some Stolen_freeze_commit ->
        (* Pre-fix: commit without re-validating freeze ownership. *)
        [ rule ~role:"swapper" ~from_:3
            ~acts:[ Write ("impl", k 1); Write ("ctl", k 0); Write ("committed", k 1) ]
            ~label:"commit" 5 ]
      | _ ->
        [ rule ~role:"swapper" ~from_:3 ~guard:(C (Eq, S "ctl", k 1))
            ~acts:[ Write ("impl", k 1); Write ("ctl", k 0); Write ("committed", k 1) ]
            ~label:"commit" 5;
          rule ~role:"swapper" ~from_:3 ~guard:(C (Ne, S "ctl", k 1)) ~label:"stolen" 4 ])
    @ [ rule ~role:"swapper" ~from_:4
          ~acts:[ Write ("ack", k 0); Write ("ctl", k 0); Write ("rolled", k 1) ]
          ~label:"rollback" 5 ]
    @ release_rules ~role:"swapper" ~from_:5
  in
  (* Abandoned-swap recovery: any thread polling the freeze past
     deadline+grace CASes it away. Sites are the two await_unfrozen
     calls: contended entry (pc 0) and the post-ack wait (pc 2). *)
  let recover_rules role =
    if bug = Some No_age_out then []
    else
      List.map
        (fun from_ ->
          let g, a = cas "ctl" ~expect:(k 1) ~set:(k 0) in
          rule ~role ~from_ ~timeout:true
            ~guard:(All [ C (Ge, Clock, k 2); g ])
            ~acts:[ a; Write ("recovered", k 1) ]
            ~label:"recover" from_)
        [ 0; 2 ]
  in
  let waiter_rules i w =
    let role = wname i in
    [ (* contended entry: pass the (unfrozen) freeze word, then either
         take the free lock or register. *)
      rule ~role ~from_:0
        ~guard:(All [ C (Eq, S "ctl", k 0); C (Eq, S "lockword", k 0) ])
        ~acts:[ Write ("lockword", k 1); Write ("owner", Me); Set ("cs", k 1) ]
        ~label:"acquire" 3;
      rule ~role ~from_:0
        ~guard:(All [ C (Eq, S "ctl", k 0); C (Eq, S "lockword", k 1) ])
        ~acts:
          [ Write (reg i, k 1); Write (flag i, k 0); Write (tk i, S "tkt");
            Write ("tkt", Add (S "tkt", k 1)) ]
        ~label:"register" 1;
      (* wait loop *)
      rule ~role ~from_:1 ~guard:(C (Eq, S (flag i), k 1))
        ~acts:[ Write (flag i, k 0); Set ("cs", k 1) ]
        ~label:"granted" 3;
      rule ~role ~from_:1 ~guard:(C (Eq, S (flag i), k 2))
        ~acts:
          [ If (All [ C (Ne, S "ctl", k 0); C (Eq, S (kick i), k 1) ],
                [ Write ("ack", Sub (S "ack", k 1)) ], []);
            Write (kick i, k 0); Write (flag i, k 0) ]
        ~label:"ack" 2;
      rule ~role ~from_:1
        ~guard:(All [ C (Eq, S "impl", k 1); C (Eq, S "lockword", k 0) ])
        ~acts:
          [ Write ("lockword", k 1); Write ("owner", Me); Write (reg i, k 0); Set ("cs", k 1) ]
        ~label:"acquire" 3;
      (* post-ack: poll the freeze word back to zero before rejoining
         the wait loop (await_unfrozen). *)
      rule ~role ~from_:2 ~guard:(C (Eq, S "ctl", k 0)) ~label:"unfrozen" 1 ]
    @ (match w with
      | Wsleep ->
        (* Sleeps only while the blocking impl is current — the
           re-check under guard is the PR 8 strand fix. *)
        [ rule ~role ~from_:1 ~park:true
            ~guard:(All [ C (Eq, S "impl", k 0); C (Eq, S (flag i), k 0) ])
            ~label:"park" 1 ]
      | Wtimed ->
        (* Deadline-bound waiters poll; the deadline fires anywhere in
           or past the drain window (clock >= 1), including inside the
           grace window, withdrawing the registration — or, when the
           grant crossed the deadline, taking and releasing the lock. *)
        [ rule ~role ~from_:0 ~timeout:true ~guard:(C (Ge, Clock, k 1)) ~done_:true
            ~label:"timeout" 0;
          rule ~role ~from_:1 ~timeout:true
            ~guard:
              (All [ C (Ge, Clock, k 1); C (Eq, S (reg i), k 1); C (Ne, S (flag i), k 1) ])
            ~acts:
              [ If (All [ C (Eq, S (flag i), k 2); C (Ne, S "ctl", k 0);
                          C (Eq, S (kick i), k 1) ],
                    [ Write ("ack", Sub (S "ack", k 1)) ], []);
                Write (kick i, k 0); Write (flag i, k 0); Write (reg i, k 0) ]
            ~done_:true ~label:"timeout" 1;
          rule ~role ~from_:1 ~timeout:true
            ~guard:(All [ C (Ge, Clock, k 1); C (Eq, S (flag i), k 1) ])
            ~acts:[ Write (flag i, k 0); Set ("cs", k 1) ]
            ~label:"timeout-grant" 3;
          rule ~role ~from_:2 ~timeout:true
            ~guard:
              (All [ C (Ge, Clock, k 1); C (Eq, S (flag i), k 0); C (Eq, S (reg i), k 1) ])
            ~acts:[ Write (reg i, k 0) ]
            ~done_:true ~label:"timeout" 2 ])
    @ release_rules ~role ~from_:3
    @ recover_rules role
  in
  let spec =
    { p_name =
        (match bug with
        | None -> "quiescence-swap"
        | Some Stolen_freeze_commit -> "quiescence-swap-stolen-freeze"
        | Some Lost_sleeper -> "quiescence-swap-lost-sleeper"
        | Some Double_grant -> "quiescence-swap-double-grant"
        | Some No_age_out -> "quiescence-swap-no-age-out");
      p_shared = shared;
      p_roles = roles;
      p_rules = swapper_rules @ List.concat (List.mapi (fun i w -> waiter_rules (i + 1) w) waiters);
      p_crash_budget = 1;
      p_clock_max = 2 }
  in
  let m = Protocol.compile spec in
  let all_roles = Protocol.role_names m in
  let in_cs t st r = Protocol.local t st r "cs" in
  let holders t st = List.fold_left (fun acc r -> acc + in_cs t st r) 0 all_roles in
  let grants t st =
    List.fold_left
      (fun acc j -> acc + if Protocol.shared t st (flag j) = 1 then 1 else 0)
      0 widxs
  in
  let props =
    [ Protocol.Safety
        { q_name = "mutex"; q_desc = "at most one thread in the critical section";
          q_bad =
            (fun t st ->
              if holders t st >= 2 then
                Some (Printf.sprintf "%d threads hold the lock" (holders t st))
              else None) };
      Protocol.Safety
        { q_name = "no-double-grant";
          q_desc = "never more than one grant outstanding or held";
          q_bad =
            (fun t st ->
              let g = holders t st + grants t st in
              if g >= 2 then Some (Printf.sprintf "%d grants outstanding/held" g) else None) };
      Protocol.Step
        { q_name = "freeze-owned-commit";
          q_desc = "a swap commits only while it still owns the freeze word";
          q_bad =
            (fun t ~role ~label st ->
              if label = "commit" && Protocol.shared t st "ctl" <> 1 then
                Some (Printf.sprintf "%s commits with ctl=%d" role (Protocol.shared t st "ctl"))
              else None) };
      Protocol.Safety
        { q_name = "no-lost-sleeper";
          q_desc = "a parked waiter always has a grant path (registered under blocking, or a wakeup/grant pending)";
          q_bad =
            (fun t st ->
              List.fold_left
                (fun acc j ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                    let r = wname j in
                    if Protocol.status t st r = Protocol.Parked
                       && (not (Protocol.wake_pending t st r))
                       && Protocol.shared t st (flag j) = 0
                       && (Protocol.shared t st (reg j) = 0 || Protocol.shared t st "impl" = 1)
                    then
                      Some
                        (Printf.sprintf "%s parked with reg=%d impl=%d: nothing will wake it" r
                           (Protocol.shared t st (reg j)) (Protocol.shared t st "impl"))
                    else None)
                None widxs) };
      Protocol.Liveness
        { q_name = "quiesce";
          q_desc =
            "every reachable state can reach a quiesced commit or rollback, even after one crash";
          q_goal =
            (fun t st ->
              (match Protocol.status t st "swapper" with
              | Protocol.Done | Protocol.Crashed -> true
              | _ -> false)
              && List.for_all
                   (fun j ->
                     let r = wname j in
                     match Protocol.status t st r with
                     | Protocol.Done | Protocol.Crashed -> true
                     | s ->
                       Protocol.shared t st (kick j) = 0
                       && Protocol.shared t st (flag j) <> 2
                       && Protocol.pc t st r <> 2
                       && not (Protocol.pc t st r = 0 && Protocol.shared t st "ctl" <> 0)
                       && (s = Protocol.Running || Protocol.wake_pending t st r
                          || Protocol.shared t st (flag j) = 1
                          || (Protocol.shared t st (reg j) = 1 && Protocol.shared t st "impl" = 0)))
                   widxs) } ]
  in
  (m, props)

(* ---- MCS queue handoff ---- *)

let mcs ?(contenders = 3) () =
  if contenders < 2 then invalid_arg "Proto_models.mcs";
  let name i = Printf.sprintf "m%d" i in
  let next i = Printf.sprintf "next%d" i
  and flag i = Printf.sprintf "flag%d" i in
  let idxs = List.init contenders (fun i -> i + 1) in
  let shared =
    ("tail", 0) :: List.concat_map (fun i -> [ (next i, 0); (flag i, 0) ]) idxs
  in
  let roles =
    List.map
      (fun i ->
        { r_name = name i; r_flavor = Queued; r_crashable = false;
          r_locals = [ ("pred", 0); ("cs", 0) ] })
      idxs
  in
  let rules_of i =
    let role = name i in
    [ rule ~role ~from_:0 ~acts:[ Set ("pred", S "tail"); Write ("tail", Me) ]
        ~label:"enqueue" 1;
      rule ~role ~from_:1 ~guard:(C (Eq, L "pred", k 0)) ~acts:[ Set ("cs", k 1) ]
        ~label:"head" 3;
      rule ~role ~from_:2 ~guard:(C (Eq, S (flag i), k 1))
        ~acts:[ Write (flag i, k 0); Set ("cs", k 1) ]
        ~label:"granted" 3;
      rule ~role ~from_:3 ~done_:true
        ~guard:(All [ C (Eq, S "tail", Me); C (Eq, S (next i), k 0) ])
        ~acts:[ Write ("tail", k 0); Set ("cs", k 0) ]
        ~label:"exit" 99 ]
    @ List.filter_map
        (fun q ->
          if q = i then None
          else
            Some
              (rule ~role ~from_:1 ~guard:(C (Eq, L "pred", k q)) ~acts:[ Write (next q, Me) ]
                 ~label:"link" 2))
        idxs
    @ List.filter_map
        (fun q ->
          if q = i then None
          else
            Some
              (rule ~role ~from_:3 ~done_:true ~guard:(C (Eq, S (next i), k q))
                 ~acts:[ Write (flag q, k 1); Write (next i, k 0); Set ("cs", k 0) ]
                 ~label:"handoff" 99))
        idxs
  in
  let spec =
    { p_name = "mcs-handoff"; p_shared = shared; p_roles = roles;
      p_rules = List.concat_map rules_of idxs; p_crash_budget = 0; p_clock_max = 0 }
  in
  let m = Protocol.compile spec in
  let holders t st =
    List.fold_left (fun acc i -> acc + Protocol.local t st (name i) "cs") 0 idxs
  in
  let grants t st =
    List.fold_left (fun acc i -> acc + if Protocol.shared t st (flag i) = 1 then 1 else 0) 0 idxs
  in
  let props =
    [ Protocol.Safety
        { q_name = "mutex"; q_desc = "at most one contender in the critical section";
          q_bad =
            (fun t st ->
              if holders t st >= 2 then
                Some (Printf.sprintf "%d contenders hold the lock" (holders t st))
              else None) };
      Protocol.Safety
        { q_name = "no-double-grant";
          q_desc = "never more than one grant outstanding or held";
          q_bad =
            (fun t st ->
              let g = holders t st + grants t st in
              if g >= 2 then Some (Printf.sprintf "%d grants outstanding/held" g) else None) };
      Protocol.Liveness
        { q_name = "all-served"; q_desc = "every contender eventually acquires and releases";
          q_goal =
            (fun t st ->
              List.for_all (fun i -> Protocol.status t st (name i) = Protocol.Done) idxs) } ]
  in
  (m, props)

(* ---- the Policy.Guard streak/cooldown/fallback machine ---- *)

let guard ?(limit = 2) ?(cooldown = 2) () =
  if limit < 1 || cooldown < 1 then invalid_arg "Proto_models.guard";
  let spec =
    { p_name = "guard-cooldown";
      p_shared = [ ("streak", 0); ("cool", 0) ];
      p_roles =
        [ { r_name = "monitor"; r_flavor = Monitor; r_crashable = false; r_locals = [] } ];
      p_rules =
        [ rule ~role:"monitor" ~from_:0 ~guard:(C (Gt, S "cool", k 0))
            ~acts:[ Write ("cool", Sub (S "cool", k 1)) ]
            ~label:"obs-cool" 0;
          rule ~role:"monitor" ~from_:0 ~guard:(C (Eq, S "cool", k 0))
            ~acts:[ Write ("streak", k 0) ]
            ~label:"obs-ok" 0;
          rule ~role:"monitor" ~from_:0
            ~guard:(All [ C (Eq, S "cool", k 0); C (Lt, S "streak", k (limit - 1)) ])
            ~acts:[ Write ("streak", Add (S "streak", k 1)) ]
            ~label:"obs-bad" 0;
          rule ~role:"monitor" ~from_:0
            ~guard:(All [ C (Eq, S "cool", k 0); C (Eq, S "streak", k (limit - 1)) ])
            ~acts:[ Write ("streak", k 0); Write ("cool", k cooldown) ]
            ~label:"fallback" 1;
          rule ~role:"monitor" ~from_:1 ~label:"fallback-ok" 0;
          (* A failed fallback cancels the cooldown and restores the
             streak to one short of the limit. *)
          rule ~role:"monitor" ~from_:1
            ~acts:[ Write ("cool", k 0); Write ("streak", k (limit - 1)) ]
            ~label:"fallback-failed" 0 ];
      p_crash_budget = 0;
      p_clock_max = 0 }
  in
  let m = Protocol.compile spec in
  let props =
    [ Protocol.Safety
        { q_name = "streak-bounded";
          q_desc = "the pathological streak never exceeds the declared limit";
          q_bad =
            (fun t st ->
              let s = Protocol.shared t st "streak" in
              if s > limit - 1 then Some (Printf.sprintf "streak=%d limit=%d" s limit)
              else None) };
      Protocol.Step
        { q_name = "fallback-at-limit";
          q_desc = "a fallback fires only at exactly limit consecutive pathological samples";
          q_bad =
            (fun t ~role:_ ~label st ->
              if label = "fallback"
                 && not (Protocol.shared t st "streak" = limit - 1
                        && Protocol.shared t st "cool" = 0)
              then
                Some
                  (Printf.sprintf "fallback with streak=%d cool=%d"
                     (Protocol.shared t st "streak") (Protocol.shared t st "cool"))
              else None) };
      Protocol.Step
        { q_name = "no-count-in-cooldown";
          q_desc = "cooldown suspends streak counting entirely";
          q_bad =
            (fun t ~role:_ ~label st ->
              if (label = "obs-ok" || label = "obs-bad" || label = "fallback")
                 && Protocol.shared t st "cool" > 0
              then Some (Printf.sprintf "%s during cooldown" label)
              else None) };
      Protocol.Liveness
        { q_name = "cooldown-terminates";
          q_desc = "the guard always returns to counting";
          q_goal =
            (fun t st -> Protocol.shared t st "cool" = 0 && Protocol.pc t st "monitor" = 0) } ]
  in
  (m, props)

let shipped () =
  [ quiescence ~waiters:[ Wsleep; Wsleep; Wtimed ] (); mcs ~contenders:3 (); guard () ]

let seeded_bad () =
  [ ( "stolen-freeze-commit",
      quiescence ~bug:Stolen_freeze_commit ~waiters:[ Wsleep; Wtimed ] (),
      [ "freeze-owned-commit"; "no-lost-sleeper"; "quiesce" ] );
    ( "lost-sleeper-on-swap",
      quiescence ~bug:Lost_sleeper ~waiters:[ Wsleep; Wtimed ] (),
      [ "no-lost-sleeper"; "quiesce" ] );
    ( "double-grant-on-swap",
      quiescence ~bug:Double_grant ~waiters:[ Wsleep; Wtimed ] (),
      [ "mutex"; "no-double-grant" ] );
    ( "no-age-out-wedge",
      quiescence ~bug:No_age_out ~waiters:[ Wsleep; Wtimed ] (),
      [ "quiesce" ] ) ]
