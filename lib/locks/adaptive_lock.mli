(** Adaptive locks: the paper's headline object.

    A reconfigurable lock plus a built-in, closely-coupled monitor
    (a {!Adaptive_core.Sensor} on the waiting-thread count, sampled
    once every [sample_period] unlock operations — the paper uses every
    other unlock) and a user-provided adaptation policy that retunes
    the waiting attributes.

    The default policy is the paper's [simple-adapt] (§4):

    {v
    IF   no-of-waiting-threads = 0                 configure pure spin
    ELSE IF no-of-waiting-threads <= Waiting-Threshold  spins += n
    ELSE                                            spins -= 2*n
    IF spins <= 0                                  configure pure blocking
    v}

    The spin budget is a saturating counter in [0, spin_cap]: 0 is the
    pure-blocking configuration, [spin_cap] the pure-spin one, anything
    between a combined spin-then-block lock. Each applied transition is
    charged as one waiting-policy reconfiguration (Table 8). *)

type t

type params = {
  waiting_threshold : int;  (** the paper's [Waiting-Threshold] *)
  n : int;  (** the paper's lock-specific constant [n] *)
  spin_cap : int;  (** spin budget that counts as "pure spin" *)
  sample_period : int;  (** sample every k-th unlock (paper: 2) *)
}

val default_params : params
(** threshold 4, n 16, cap 32, period 2. *)

val create :
  ?name:string ->
  ?trace:bool ->
  ?sched:Lock_sched.kind ->
  ?params:params ->
  ?policy:int Adaptive_core.Policy.t ->
  ?guardrail:Guardrail.params ->
  home:int ->
  unit ->
  t
(** [policy] (observations are waiting-thread counts) replaces
    [simple-adapt] entirely when given — this is the "user-provided
    adaptation policy" hook. The lock starts in the combined
    configuration with [n] spins.

    [guardrail] (ignored when [policy] is given) wraps [simple-adapt]
    in a {!Guardrail}: observations are clamped, and a run of
    pathological samples triggers a fallback to the default combined
    configuration (charged as one reconfiguration) instead of wedging
    the budget at an extreme. Off by default — without it the lock
    behaves bit-for-bit as before. *)

val lock : t -> unit
val try_lock : t -> bool

val lock_timeout : t -> deadline_ns:int -> bool
(** Timed acquisition (see {!Lock_core.lock_timeout}). *)

val lock_retrying :
  t -> backoff:Engine.Backoff.t -> max_attempts:int -> slice_ns:int -> bool
(** Retried timed acquisition (see {!Lock_core.lock_retrying}). *)

val unlock : t -> unit
(** Releases the lock, then runs the monitor/adaptation tick (the
    closely-coupled feedback loop executes inside the application
    thread, not a separate monitoring thread). *)

val name : t -> string
val stats : t -> Lock_stats.t
val reconfigurable : t -> Reconfigurable_lock.t
val feedback : t -> int Adaptive_core.Adaptive.t

val spins_now : t -> int
(** Current spin budget (for tests and the threshold ablation). *)

val mode : t -> string
(** ["pure spin"], ["pure blocking"] or ["combined(k)"]. *)

val adaptations : t -> int
val samples : t -> int

val guardrail : t -> Guardrail.t option
(** The installed guardrail, if any (for tests and reporting). *)

val policy_spec :
  ?params:params ->
  ?guardrail:Guardrail.params ->
  ?name:string ->
  ?attribute:string ->
  unit ->
  Adaptive_core.Policy.Spec.t
(** [simple-adapt] (plus the guardrail, when given) as a declarative
    policy spec — the artifact the static checker
    ([Analysis.Policy_check]) model-checks, and exactly what {!create}
    compiles into the running policy. Pure data; buildable outside a
    simulation. *)

val simple_adapt : params -> t -> int Adaptive_core.Policy.t
(** The paper's policy, exposed so ablations can wrap it (e.g. with
    hysteresis) or sweep its constants. *)

val budget_policy :
  budget:Spin_budget.t -> apply:(unit -> bool) -> int Adaptive_core.Policy.t
(** The [simple-adapt] step over an arbitrary {!Spin_budget} and
    reconfiguration action — the policy shared with the
    loosely-coupled lock in [Monitoring], which supplies an [apply]
    that acquires attribute ownership as an external agent must.
    [apply] reports whether the reconfiguration took effect, so an
    external agent that loses the ownership race is not counted as an
    adaptation. *)
