(** Protocol models for [Analysis.Proto_check].

    Three shipped protocols, modelled as [Protocol.Spec] state
    machines at the granularity of the implementation's guard-held
    sections (one guarded compound section = one atomic rule — the
    guard lock's whole job is making those sections atomic):

    - the [Switch_lock] quiescence swap (freeze → kick/drain →
      commit-or-rollback), including abandoned-swap recovery after
      [swap_grace_ns] (the abstract clock: 0 = inside the drain
      window, 1 = past the drain deadline, 2 = past deadline+grace)
      and timed waiters that poll and age out instead of sleeping;
    - MCS queue handoff;
    - the [Policy.Guard] streak/cooldown/fallback machine.

    Each model ships with its safety and liveness properties. The
    seeded-bad quiescence variants reintroduce historical bugs so the
    checker can prove it would have caught them. *)

module Protocol = Adaptive_core.Protocol

type waiter = Wsleep  (** untimed: parks while the blocking impl is current *)
            | Wtimed  (** deadline-bound: polls, never sleeps, ages out *)

type qbug =
  | Stolen_freeze_commit
      (** pre-fix PR 8 race: commit does not re-validate freeze
          ownership, so a swapper stalled past deadline+grace commits
          over the waiters' abandoned-swap recovery *)
  | Lost_sleeper  (** the kick drops sleeping waiters from the queue *)
  | Double_grant  (** the kick grants sleeping waiters while the swapper holds the lock *)
  | No_age_out  (** abandoned-swap recovery removed: a crashed swapper wedges the freeze *)

val quiescence :
  ?bug:qbug -> waiters:waiter list -> unit -> Protocol.t * Protocol.property list
(** The quiescence swap with one swapper (initially holding the lock)
    and the given waiters, crash budget 1. Properties: [mutex],
    [no-double-grant], [freeze-owned-commit], [no-lost-sleeper],
    [quiesce] (liveness). *)

val mcs : ?contenders:int -> unit -> Protocol.t * Protocol.property list
(** MCS queue handoff with [contenders] (default 3) competing roles.
    Properties: [mutex], [no-double-grant], [all-served] (liveness). *)

val guard : ?limit:int -> ?cooldown:int -> unit -> Protocol.t * Protocol.property list
(** The [Policy.Guard] fallback machine (default limit 2, cooldown 2).
    Properties: [streak-bounded], [fallback-at-limit],
    [no-count-in-cooldown], [cooldown-terminates] (liveness). *)

val shipped : unit -> (Protocol.t * Protocol.property list) list
(** The three shipped protocols at their checked sizes (quiescence
    with two sleepers and a timed waiter; MCS with three contenders;
    the guard machine). All must verify clean. *)

val seeded_bad : unit -> (string * (Protocol.t * Protocol.property list) * string list) list
(** [(fixture name, model, property names that must be violated)] for
    the four historical-bug variants. *)
