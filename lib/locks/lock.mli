(** Unified facade over the lock family.

    Applications (the TSP solvers, the workload generators) are
    parameterized by a lock {e kind}; this module builds any member of
    the family and dispatches [lock]/[unlock] uniformly. *)

type kind =
  | Spin  (** pure test-and-set spinning *)
  | Backoff  (** Anderson-style back-off spinning *)
  | Blocking  (** queue-and-sleep *)
  | Combined of int  (** spin [k] probes, then sleep (Figure 1's locks) *)
  | Conditional of int  (** spin up to a deadline (ns), then sleep *)
  | Advisory  (** owner advises waiters to spin or sleep *)
  | Reconfigurable  (** explicit dynamic reconfiguration, no monitor *)
  | Adaptive of Adaptive_lock.params  (** the full feedback loop *)

val kind_name : kind -> string

val adaptive_default : kind
(** [Adaptive Adaptive_lock.default_params]. *)

type t

val create : ?name:string -> ?trace:bool -> ?sched:Lock_sched.kind -> home:int -> kind -> t
(** Build a lock of the given kind homed at node [home]. Must run
    inside a simulation. *)

val kind : t -> kind
val name : t -> string
val home : t -> int
val stats : t -> Lock_stats.t

val lock : t -> unit

val unlock : t -> unit
(** Release the lock. Raises {!Lock_core.Misuse} if the calling thread
    does not hold it — a double unlock or an unlock by a non-owner is a
    program bug, not a no-op. *)

val try_lock : t -> bool

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] runs [f] inside the critical section (unlocks even
    if [f] raises). *)

val advise : t -> Lock_core.advice option -> unit
(** Set the advisory word (meaningful on any kind; only contended
    acquisitions consult it). *)

val set_successor : t -> Cthreads.Cthread.t -> unit
(** Designate the handoff successor (used with the Handoff
    scheduler). *)

val as_adaptive : t -> Adaptive_lock.t option
val as_reconfigurable : t -> Reconfigurable_lock.t option

val core : t -> Lock_core.t
(** The underlying engine (for monitors and tests). *)

val describe : t -> string
