open Butterfly

type message = Acquire of int | Release | Stop

type t = {
  lock_name : string;
  mailbox_guard : Memory.addr;  (* on the server's node *)
  mailbox_signal : Memory.addr;  (* message counter: writing it models the send *)
  mutable mailbox : message list;  (* newest first *)
  mutable server : Ops.tid;
  lock_stats : Lock_stats.t;
}

let guard_lock t =
  while not (Ops.test_and_set t.mailbox_guard) do
    ()
  done

let guard_unlock t = Ops.write t.mailbox_guard 0

let send t msg =
  guard_lock t;
  t.mailbox <- msg :: t.mailbox;
  ignore (Ops.fetch_and_add t.mailbox_signal 1);
  guard_unlock t;
  Ops.wakeup t.server

let take_all t =
  guard_lock t;
  let messages = List.rev t.mailbox in
  t.mailbox <- [];
  guard_unlock t;
  messages

let server_body t () =
  let held = ref false in
  let waiting : int Queue.t = Queue.create () in
  let running = ref true in
  let grant tid =
    held := true;
    Ops.wakeup tid
  in
  while !running || !held || not (Queue.is_empty waiting) do
    (match take_all t with
    | [] -> Ops.block ()
    | messages ->
      List.iter
        (fun msg ->
          (* Per-message processing cost on the server. *)
          Ops.work_instrs 120;
          match msg with
          | Acquire tid -> if !held then Queue.add tid waiting else grant tid
          | Release -> (
            Lock_stats.on_handoff t.lock_stats;
            match Queue.take_opt waiting with
            | Some next -> grant next
            | None -> held := false)
          | Stop -> running := false)
        messages)
  done

let create ?(name = "active-lock") ~server_proc () =
  let words = Ops.alloc ~node:server_proc 2 in
  Ops.mark_sync_words words;
  let t =
    {
      lock_name = name;
      mailbox_guard = words.(0);
      mailbox_signal = words.(1);
      mailbox = [];
      server = 0;
      lock_stats = Lock_stats.create name;
    }
  in
  t.server <-
    Ops.fork
      { f = server_body t; proc = Some server_proc; prio = 5; name = name ^ ".server" };
  t

let lock t =
  Lock_stats.on_lock t.lock_stats;
  Ops.work_instrs 200;
  let t0 = Ops.now () in
  send t (Acquire (Ops.self ()));
  (* Sleep until the server grants; waiters cause no interconnect
     traffic at all while waiting. *)
  Ops.block ();
  let wait = Ops.now () - t0 in
  if wait > 0 then Lock_stats.on_contended t.lock_stats;
  Lock_stats.on_acquired t.lock_stats ~wait_ns:wait

let unlock t =
  Lock_stats.on_unlock t.lock_stats;
  Ops.work_instrs 120;
  send t Release

let shutdown t =
  send t Stop;
  Ops.join t.server

let name t = t.lock_name
let stats t = t.lock_stats
