(** Reconfigurable locks: explicit dynamic alteration of waiting and
    scheduling behaviour [MS93].

    A thin layer over {!Lock_core} that prices and guards the
    reconfiguration operations (the paper's Psi):
    - waiting-policy changes cost 1R 1W plus procedure overhead
      (Table 8, "configure(waiting policy)"),
    - scheduler changes cost 5W — three sub-module writes plus setting
      and resetting the changeover flag (Table 8,
      "configure(scheduler)"),
    - explicit attribute-ownership acquisition by an external agent
      costs a test-and-set plus overhead (Table 8, "acquisition").

    Reconfiguration respects the adaptive-object model: attributes
    owned by another thread refuse changes
    ({!Adaptive_core.Attribute.Not_owner}). *)

type t

val create :
  ?name:string ->
  ?trace:bool ->
  ?sched:Lock_sched.kind ->
  ?policy:Waiting.t ->
  home:int ->
  unit ->
  t
(** [policy] defaults to a combined spin-then-block policy with one
    initial probe. *)

val core : t -> Lock_core.t
val name : t -> string
val stats : t -> Lock_stats.t

val lock : t -> unit
val try_lock : t -> bool

val lock_timeout : t -> deadline_ns:int -> bool
(** Timed acquisition (see {!Lock_core.lock_timeout}). *)

val lock_retrying :
  t -> backoff:Engine.Backoff.t -> max_attempts:int -> slice_ns:int -> bool
(** Retried timed acquisition (see {!Lock_core.lock_retrying}). *)

val unlock : t -> unit

val configure_waiting :
  t ->
  ?spin_count:int ->
  ?delay_ns:int ->
  ?backoff:bool ->
  ?sleep:bool ->
  ?timeout_ns:int ->
  unit ->
  unit
(** Apply the provided attribute changes as one charged waiting-policy
    reconfiguration. *)

val configure_scheduler : t -> Lock_sched.kind -> unit

val acquire_ownership : t -> bool
(** Explicit acquisition of the lock's attributes by the calling
    thread (typically an external monitoring agent). *)

val release_ownership : t -> unit

val describe : t -> string
(** Current waiting-policy flavour (paper §5.1 table) plus the
    scheduler kind. *)
