open Butterfly
module Policy = Adaptive_core.Policy
module Sensor = Adaptive_core.Sensor
module Adaptive = Adaptive_core.Adaptive

(* A lock whose *implementation* is the adaptive attribute: plain
   test-and-set spinning under low contention, an MCS-style queue of
   locally-homed flag words under high contention, and blocking
   handoff when ownership spans exceed the deschedule round trip.

   All three implementations share one registration queue (host-side,
   ticket-ordered, guard-protected) and one mailbox word per waiter,
   homed at the waiter's own memory module. The mailbox is the whole
   migration protocol: 0 = waiting, 1 = granted (direct handoff; the
   lock word stays held), 2 = migrate (a swap is in progress; re-arm
   and re-enter). Because every contended waiter — spinner, queued, or
   sleeping — is registered, a swap can always find, kick, and count
   them; because tickets survive migration, FIFO order for queued
   waiters is preserved across a swap. *)

type impl = Tas | Mcs | Blocking

let impl_id = function Tas -> 0 | Mcs -> 1 | Blocking -> 2

let impl_of_id = function
  | 0 -> Tas
  | 1 -> Mcs
  | 2 -> Blocking
  | v -> invalid_arg (Printf.sprintf "Switch_lock.impl_of_id: %d" v)

let impl_label = function Tas -> "tas" | Mcs -> "mcs" | Blocking -> "blocking"

(* Seeded defects for the analysis fixtures (never shipped): a swap
   that forgets its sleepers drops them from the queue without a
   wakeup — the classic lost-waiter window the predictor must catch —
   and a swap that "helpfully" grants its sleepers while the swapper
   still owns the lock — the double-grant escape. *)
type bug = Lost_sleeper_on_swap | Double_grant_on_swap

type params = {
  queue_threshold : int;  (* waiters at/above this: adopt the MCS queue *)
  uncontended_max : int;  (* waiters at/below this: adopt plain TAS *)
  hold_ns_threshold : int;  (* mean hold above this: adopt blocking *)
  sample_period : int;
  repeats : int;  (* hysteresis: consecutive matching samples per swap *)
  swap_timeout_ns : int;  (* drain budget before a swap rolls back *)
  swap_grace_ns : int;  (* extra slack before a swap is presumed abandoned *)
}

let default_params =
  {
    queue_threshold = 3;
    uncontended_max = 1;
    hold_ns_threshold = 450_000;
    sample_period = 2;
    repeats = 2;
    swap_timeout_ns = 2_000_000;
    swap_grace_ns = 1_000_000;
  }

(* The implementation ladder's metric tops out at 199 (see [score]),
   so the guardrail clamp must keep the blocking region reachable. *)
let default_guardrail =
  { Guardrail.clamp_max = 199; pathological_limit = 4; cooldown = 8 }

type waiter = {
  w_tid : int;
  w_ticket : int;
  w_flag : Memory.addr;  (* mailbox, homed at the waiter's node *)
  mutable w_sleeping : bool;  (* true while parked in [Ops.block] *)
  mutable w_kick : int;  (* swap sequence that flagged us; 0 = none *)
}

type t = {
  lock_name : string;
  home_node : int;
  word : Memory.addr;  (* 0 free, 1 held (stays held across handoffs) *)
  guard : Memory.addr;  (* protects queue, mailboxes, and the free word *)
  nwait : Memory.addr;  (* waiting-thread count (the monitored variable) *)
  ctl : Memory.addr;  (* 0 = no swap; else the swap's drain deadline *)
  ack : Memory.addr;  (* migrants not yet re-armed during a swap *)
  impl_word : Memory.addr;  (* current implementation id, for observers *)
  params : params;
  bug : bug option;
  pinned : bool;  (* created with [?fixed]: implementation swaps refused *)
  mutable impl : impl;
  mutable epoch : int;  (* committed swaps *)
  mutable swap_seq : int;  (* identifies the kick a waiter acks *)
  mutable next_ticket : int;
  mutable queue : waiter list;  (* ticket-ascending *)
  flags : (int, Memory.addr) Hashtbl.t;  (* per-thread mailbox cache *)
  mutable owner : int option;
  mutable acquired_at : int;
  mutable hold_avg_ns : int;  (* EWMA of ownership spans *)
  mutable swap_rollbacks : int;
  mutable abandoned_recoveries : int;
  mutable loop : int Adaptive.t option;
  mutable guard_state : Guardrail.t option;
  mutable probe : (int -> string -> unit) option;
      (* conformance instrumentation: one callback per protocol
         transition, labelled to match [Proto_models.quiescence] *)
  lock_stats : Lock_stats.t;
}

let tas_gap_ns = 1_000
let mcs_poll_gap_ns = 1_000
let timed_poll_gap_ns = 1_000
let freeze_poll_gap_ns = 2_000
let drain_poll_gap_ns = 2_000

let name t = t.lock_name
let home t = t.home_node
let stats t = t.lock_stats
let current_impl t = t.impl
let epoch t = t.epoch
let swap_rollbacks t = t.swap_rollbacks
let abandoned_recoveries t = t.abandoned_recoveries
let hold_avg_ns t = t.hold_avg_ns
let waiting_now t = Ops.read t.nwait
let feedback t = t.loop
let guardrail t = t.guard_state

let profile t =
  match t.impl with
  | Tas -> Lock_costs.spin
  | Mcs -> Lock_costs.mcs
  | Blocking -> Lock_costs.blocking

(* The composite contention score the policy ladder reads: the number
   of waiting threads, lifted into [100, 199] when the mean ownership
   span exceeds the deschedule round trip — long holds make spinning
   (either kind) a processor sink, so the ladder prefers blocking. *)
let score t =
  let waiting = Ops.read t.nwait in
  if waiting = 0 then 0
  else if t.hold_avg_ns > t.params.hold_ns_threshold then 100 + min waiting 99
  else min waiting 99

(* {1 The declarative implementation ladder} *)

let transitions ~(params : params) =
  let module Spec = Policy.Spec in
  let cost = Lock_costs.swap_implementation in
  let t ~from ~cond ~target =
    {
      Spec.t_from = impl_id from;
      t_cond = cond;
      t_target = impl_id target;
      t_label = Printf.sprintf "swap:%s->%s" (impl_label from) (impl_label target);
      t_repeats = params.repeats;
      t_cost = cost;
    }
  in
  let low = Policy.Spec.cond 0 ~hi:params.uncontended_max in
  let queued = Policy.Spec.cond params.queue_threshold ~hi:99 in
  let long_hold = Policy.Spec.cond 100 in
  [
    t ~from:Tas ~cond:queued ~target:Mcs;
    t ~from:Tas ~cond:long_hold ~target:Blocking;
    t ~from:Mcs ~cond:low ~target:Tas;
    t ~from:Mcs ~cond:long_hold ~target:Blocking;
    t ~from:Blocking ~cond:low ~target:Tas;
    t ~from:Blocking ~cond:queued ~target:Mcs;
  ]

let guard_spec ~(gparams : Guardrail.params) =
  {
    Policy.Spec.g_clamp_lo = 0;
    g_clamp_hi = gparams.Guardrail.clamp_max;
    g_wedge = None;
    g_limit = gparams.Guardrail.pathological_limit;
    g_cooldown = gparams.Guardrail.cooldown;
    (* The fallback is an implementation id, not a knob value: a
       guardrailed ladder must land on a config the lock can run. *)
    g_fallback = impl_id Tas;
    g_fallback_label = "impl-guardrail-fallback";
    g_fallback_cost = Lock_costs.swap_implementation;
  }

let policy_spec ?(params = default_params) ?(guardrail = default_guardrail)
    ?(name = "switch-lock") () =
  let module Spec = Policy.Spec in
  {
    Spec.s_name = name;
    s_kind = "lock-impl";
    s_attribute = name ^ ".implementation";
    s_metric = "contention-score";
    s_monotone = Spec.Unordered;
    s_configs =
      [
        { Spec.c_name = "tas"; c_value = impl_id Tas };
        { Spec.c_name = "mcs"; c_value = impl_id Mcs };
        { Spec.c_name = "blocking"; c_value = impl_id Blocking };
      ];
    s_initial = impl_id Tas;
    s_transitions = transitions ~params;
    s_guard = Some (guard_spec ~gparams:guardrail);
  }

(* {1 Guard and waiting-count plumbing (as Lock_core)} *)

let guard_lock t =
  while not (Ops.test_and_set t.guard) do
    ()
  done

let guard_unlock t = Ops.write t.guard 0

let enter_waiting t =
  let waiting = Ops.fetch_and_add t.nwait 1 + 1 in
  Lock_stats.record_waiting t.lock_stats ~now:(Ops.now ()) ~waiting

let leave_waiting t =
  let waiting = Ops.fetch_and_add t.nwait (-1) - 1 in
  Lock_stats.record_waiting t.lock_stats ~now:(Ops.now ()) ~waiting

let note_acquired t =
  t.owner <- Some (Ops.self ());
  t.acquired_at <- Ops.now ();
  if Ops.annotations_enabled () then
    Ops.annotate
      (Ops.A_lock_acquire
         { lock = t.word; lock_name = t.lock_name; spin_wait = t.impl <> Blocking })

let acquired t ~since =
  leave_waiting t;
  Lock_stats.on_acquired t.lock_stats ~wait_ns:(Ops.now () - since);
  note_acquired t

let annotate_swap t label =
  if Ops.annotations_enabled () then
    Ops.annotate (Ops.A_adaptation { obj_name = t.lock_name; kind = "lock-impl"; label })

(* Transition log for model-conformance tests: each emission is one
   atomic protocol step, labelled exactly as the corresponding rule of
   [Proto_models.quiescence]. Emissions from guard-held sections
   happen while the guard is still held, so the log order is the
   protocol's linearization order. *)
let set_transition_probe t probe = t.probe <- probe

let emit t label = match t.probe with Some f -> f (Ops.self ()) label | None -> ()

(* Wait out a freeze window. Returns false when [deadline_ns] (>= 0)
   passes first. A ctl word whose deadline lies more than the grace
   period in the past means the swapper died mid-swap: any waiter may
   clear the freeze (fail-safe recovery; the implementation is
   whatever the dead swapper left committed). *)
let rec await_unfrozen t ~deadline_ns =
  let c = Ops.read t.ctl in
  if c = 0 then true
  else if deadline_ns >= 0 && Ops.now () >= deadline_ns then false
  else if Ops.now () > c + t.params.swap_grace_ns then begin
    if Ops.compare_and_swap t.ctl ~expected:c ~desired:0 then begin
      t.abandoned_recoveries <- t.abandoned_recoveries + 1;
      emit t "recover";
      annotate_swap t "swap-abandoned-recovery"
    end;
    await_unfrozen t ~deadline_ns
  end
  else begin
    Ops.delay freeze_poll_gap_ns;
    await_unfrozen t ~deadline_ns
  end

let mailbox t =
  let me = Ops.self () in
  match Hashtbl.find_opt t.flags me with
  | Some flag -> flag
  | None ->
    let flag = Ops.alloc1 ~node:(Ops.my_processor ()) () in
    Ops.mark_sync_words [| flag |];
    Hashtbl.add t.flags me flag;
    flag

let remove_record t w = t.queue <- List.filter (fun x -> not (x == w)) t.queue

(* Ack a migration kick (guard held): only the kick of the swap still
   in progress is acknowledged — a stale flag from a rolled-back swap
   is simply re-armed. *)
let ack_kick t w =
  if Ops.read t.ctl <> 0 && w.w_kick = t.swap_seq then begin
    w.w_kick <- 0;
    ignore (Ops.fetch_and_add t.ack (-1))
  end

(* {1 The swap protocol}

   Runs in the current lock holder only, so the lock word stays held
   for the whole window — no acquisition can race a swap. Freeze (new
   arrivals park behind [ctl]), kick (every registered waiter's
   mailbox is set to 2; sleepers are woken), drain (wait for every
   kicked waiter to re-arm), then commit — or roll back to the old
   implementation if the drain does not quiesce in time (a stalled or
   killed participant must not wedge the lock in a half-swapped
   state). Migrating waiters keep their tickets and their queue slots:
   quiescence means everyone observes the implementation flip between
   two probe iterations, never inside one. *)
let swap_to t target =
  if t.pinned then
    raise
      (Lock_core.Misuse
         (Printf.sprintf "lock %s is pinned to %s: implementation swaps are disabled"
            t.lock_name (impl_label t.impl)));
  (match t.owner with
  | Some tid when tid = Ops.self () -> ()
  | _ ->
    raise
      (Lock_core.Misuse
         (Printf.sprintf "thread %s swapped lock %s it does not hold"
            (Ops.thread_name (Ops.self ())) t.lock_name)));
  if target = t.impl then true
  else begin
    let label = Printf.sprintf "%s->%s" (impl_label t.impl) (impl_label target) in
    (* Freeze before announcing: a swapper killed at the swap-begin
       annotation (the chaos fault point) must leave the freeze behind
       so the waiters' abandoned-swap recovery has something to age
       out. *)
    let deadline = Ops.now () + t.params.swap_timeout_ns in
    Ops.write t.ctl deadline;
    emit t "freeze";
    annotate_swap t ("swap-begin:" ^ label);
    guard_lock t;
    t.swap_seq <- t.swap_seq + 1;
    let kicked =
      List.filter
        (fun w ->
          if not w.w_sleeping then true
          else
            match t.bug with
            | Some Lost_sleeper_on_swap ->
              (* Seeded defect: the swap forgets its sleepers — they
                 are dropped from the queue without a wakeup and the
                 new implementation never learns of them. *)
              remove_record t w;
              false
            | Some Double_grant_on_swap ->
              (* Seeded defect: the kick grants the sleeper instead of
                 migrating it — while the swapper still owns the lock,
                 so two threads hold it at once. *)
              remove_record t w;
              Ops.write w.w_flag 1;
              Ops.wakeup w.w_tid;
              false
            | None -> true)
        t.queue
    in
    Ops.write t.ack (List.length kicked);
    List.iter
      (fun w ->
        w.w_kick <- t.swap_seq;
        Ops.write w.w_flag 2;
        if w.w_sleeping then Ops.wakeup w.w_tid)
      kicked;
    emit t "kick";
    guard_unlock t;
    let rec drain () =
      if Ops.read t.ack = 0 then true
      else if Ops.now () >= deadline then false
      else begin
        Ops.delay drain_poll_gap_ns;
        drain ()
      end
    in
    (* A drained swap must still re-validate ownership of the freeze:
       a swapper descheduled past deadline+grace inside its own drain
       (a stall fault in the swap window) resumes to find every ack in
       — but the waiters have long since aged the freeze out
       (abandoned-swap recovery), re-entered, and possibly re-parked
       under the old implementation. Flipping now would strand those
       sleepers under a release path that never wakes them. The guard
       holds parking waiters off while the flip lands; a recovery that
       already cleared [ctl] makes the re-check fail and the swap roll
       back instead. *)
    let committed =
      (if drain () then begin
         emit t "drain-ok";
         true
       end
       else begin
         emit t "drain-timeout";
         false
       end)
      && begin
           guard_lock t;
           if Ops.read t.ctl = deadline then begin
             t.impl <- target;
             t.epoch <- t.epoch + 1;
             Ops.write t.impl_word (impl_id target);
             Ops.write t.ctl 0;
             emit t "commit";
             guard_unlock t;
             true
           end
           else begin
             emit t "stolen";
             guard_unlock t;
             false
           end
         end
    in
    if committed then begin
      annotate_swap t ("swap-commit:" ^ label);
      true
    end
    else begin
      t.swap_rollbacks <- t.swap_rollbacks + 1;
      Ops.write t.ack 0;
      Ops.write t.ctl 0;
      emit t "rollback";
      annotate_swap t ("swap-rollback:" ^ label);
      false
    end
  end

(* {1 Acquire / release} *)

(* Timed waiters never sleep (a direct handoff cannot be cancelled at
   a deadline, so they poll instead), exactly as Lock_core. *)
let rec wait_loop t w ~since ~deadline_ns =
  if deadline_ns >= 0 && Ops.now () >= deadline_ns then
    timeout_cleanup t w ~since
  else begin
    match t.impl with
    | Tas ->
      Lock_stats.on_spin_probe t.lock_stats;
      if
        Ops.lock_probe ~retry_instrs:Lock_costs.spin.Lock_costs.lock_overhead_instrs
          ~gap_ns:tas_gap_ns t.word
      then begin
        (* Won the race on the word: withdraw our registration. *)
        guard_lock t;
        remove_record t w;
        emit t "acquire";
        guard_unlock t;
        acquired t ~since;
        true
      end
      else begin
        match Ops.read w.w_flag with
        | 0 -> wait_loop t w ~since ~deadline_ns
        | f -> on_flag t w f ~since ~deadline_ns
      end
    | Mcs ->
      Lock_stats.on_spin_probe t.lock_stats;
      let f = Ops.read_hint ~gap_ns:mcs_poll_gap_ns ~expect:0 w.w_flag in
      if f = 0 then wait_loop t w ~since ~deadline_ns
      else on_flag t w f ~since ~deadline_ns
    | Blocking ->
      if deadline_ns >= 0 then begin
        Lock_stats.on_spin_probe t.lock_stats;
        let f = Ops.read_hint ~gap_ns:timed_poll_gap_ns ~expect:0 w.w_flag in
        if f = 0 then wait_loop t w ~since ~deadline_ns
        else on_flag t w f ~since ~deadline_ns
      end
      else begin
        (* The check-then-block is serialized against grants and kicks
           by the guard: either we see the mailbox already set, or the
           writer sees [w_sleeping] and sends the wakeup (sticky, so a
           wakeup between our guard release and the block is kept).
           The implementation is re-checked under the same guard: a
           swap commit (which flips [t.impl] with the guard held) may
           have slipped in since the dispatch above, and parking under
           TAS/MCS would sleep behind a release that never wakes us. *)
        guard_lock t;
        if t.impl <> Blocking then begin
          guard_unlock t;
          wait_loop t w ~since ~deadline_ns
        end
        else begin
          let f = Ops.read w.w_flag in
          if f = 0 then begin
            w.w_sleeping <- true;
            emit t "park";
            guard_unlock t;
            Lock_stats.on_block t.lock_stats;
            Ops.block ();
            w.w_sleeping <- false;
            (* Restoring the thread's library context after a wakeup. *)
            Ops.work_instrs 800;
            wait_loop t w ~since ~deadline_ns
          end
          else begin
            guard_unlock t;
            on_flag t w f ~since ~deadline_ns
          end
        end
      end
  end

and on_flag t w f ~since ~deadline_ns =
  if f = 1 then begin
    (* Granted: the releaser handed the held word directly to us. *)
    guard_lock t;
    remove_record t w;
    emit t "granted";
    guard_unlock t;
    acquired t ~since;
    true
  end
  else begin
    (* f = 2: a swap kicked us. Re-arm the mailbox, acknowledge, wait
       out the freeze, then resume waiting under whatever
       implementation the swap left committed — with our original
       ticket, so queue order survives the migration. *)
    guard_lock t;
    Ops.write w.w_flag 0;
    ack_kick t w;
    emit t "ack";
    guard_unlock t;
    if await_unfrozen t ~deadline_ns then begin
      emit t "unfrozen";
      wait_loop t w ~since ~deadline_ns
    end
    else wait_loop t w ~since ~deadline_ns
  end

and timeout_cleanup t w ~since =
  guard_lock t;
  if List.exists (fun x -> x == w) t.queue then begin
    (* Still registered: withdraw. If a kick is in flight for us, the
       withdrawal is also the acknowledgment — a timed-out waiter must
       not stall the drain. *)
    if Ops.read w.w_flag = 2 then ack_kick t w;
    remove_record t w;
    emit t "timeout";
    guard_unlock t;
    leave_waiting t;
    Lock_stats.on_timeout t.lock_stats;
    false
  end
  else begin
    (* Already popped: the mailbox says whether a grant crossed the
       deadline. A grant that landed exactly at expiry made us the
       owner — take the lock properly and release it, so the grant is
       neither lost nor doubled. *)
    let f = Ops.read w.w_flag in
    if f = 1 then emit t "timeout-grant" else emit t "timeout";
    guard_unlock t;
    if f = 1 then begin
      acquired t ~since;
      unlock t;
      Lock_stats.on_timeout t.lock_stats;
      false
    end
    else begin
      leave_waiting t;
      Lock_stats.on_timeout t.lock_stats;
      false
    end
  end

and release_via_impl t =
  match t.impl with
  | Tas ->
    Ops.write t.word 0;
    emit t "free"
  | Mcs | Blocking -> begin
    guard_lock t;
    match t.queue with
    | [] ->
      Ops.write t.word 0;
      emit t "free";
      guard_unlock t
    | w :: rest ->
      (* Direct handoff to the lowest ticket: the word stays held. *)
      t.queue <- rest;
      Ops.write w.w_flag 1;
      let sleeping = w.w_sleeping in
      t.owner <- Some w.w_tid;
      emit t "grant";
      guard_unlock t;
      Lock_stats.on_handoff t.lock_stats;
      if sleeping then Ops.wakeup w.w_tid
  end

and unlock t =
  let me = Ops.self () in
  (match t.owner with
  | Some tid when tid = me -> ()
  | Some tid ->
    raise
      (Lock_core.Misuse
         (Printf.sprintf "thread %s unlocked lock %s held by %s" (Ops.thread_name me)
            t.lock_name (Ops.thread_name tid)))
  | None ->
    raise
      (Lock_core.Misuse
         (Printf.sprintf "thread %s unlocked lock %s, which is not held"
            (Ops.thread_name me) t.lock_name)));
  let hold = Ops.now () - t.acquired_at in
  t.hold_avg_ns <- ((3 * t.hold_avg_ns) + hold) / 4;
  (* The adaptation point: only the holder may swap, so the feedback
     loop ticks while ownership is still ours. *)
  (match t.loop with Some loop -> ignore (Adaptive.tick loop) | None -> ());
  if Ops.annotations_enabled () then
    Ops.annotate (Ops.A_lock_release { lock = t.word; lock_name = t.lock_name });
  Lock_stats.on_unlock t.lock_stats;
  t.owner <- None;
  Ops.work_instrs (profile t).Lock_costs.unlock_overhead_instrs;
  release_via_impl t

(* Contended acquisition: wait out any freeze, then register under the
   guard — re-testing the word there, since in queue/blocking mode a
   release with an empty queue frees the word and would never grant to
   a registration it did not see. The ctl re-check inside the guard
   means no waiter can slip into the queue between a swap's freeze and
   its kick and then park under an implementation about to vanish. *)
let rec contended t ~deadline_ns =
  let since = Ops.now () in
  Lock_stats.on_contended t.lock_stats;
  enter_waiting t;
  contended_entry t ~since ~deadline_ns

and contended_entry t ~since ~deadline_ns =
  if not (await_unfrozen t ~deadline_ns) then begin
    emit t "timeout";
    leave_waiting t;
    Lock_stats.on_timeout t.lock_stats;
    false
  end
  else begin
    guard_lock t;
    if Ops.read t.ctl <> 0 then begin
      guard_unlock t;
      contended_entry t ~since ~deadline_ns
    end
    else if Ops.test_and_set t.word then begin
      emit t "acquire";
      guard_unlock t;
      acquired t ~since;
      true
    end
    else begin
      let flag = mailbox t in
      let w =
        {
          w_tid = Ops.self ();
          w_ticket = t.next_ticket;
          w_flag = flag;
          w_sleeping = false;
          w_kick = 0;
        }
      in
      t.next_ticket <- t.next_ticket + 1;
      Ops.write flag 0;
      t.queue <- t.queue @ [ w ];
      emit t "register";
      guard_unlock t;
      wait_loop t w ~since ~deadline_ns
    end
  end

let lock t =
  if Ops.annotations_enabled () then
    Ops.annotate (Ops.A_lock_request { lock = t.word; lock_name = t.lock_name });
  Lock_stats.on_lock t.lock_stats;
  if
    Ops.lock_probe ~pre_instrs:(profile t).Lock_costs.lock_overhead_instrs t.word
  then begin
    emit t "acquire";
    Lock_stats.on_acquired t.lock_stats ~wait_ns:0;
    note_acquired t
  end
  else ignore (contended t ~deadline_ns:(-1))

let try_lock t =
  Lock_stats.on_lock t.lock_stats;
  let got =
    Ops.lock_probe ~pre_instrs:(profile t).Lock_costs.lock_overhead_instrs t.word
  in
  if got then begin
    emit t "acquire";
    Lock_stats.on_acquired t.lock_stats ~wait_ns:0;
    note_acquired t
  end;
  got

let lock_timeout t ~deadline_ns =
  if Ops.annotations_enabled () then
    Ops.annotate (Ops.A_lock_request { lock = t.word; lock_name = t.lock_name });
  Lock_stats.on_lock t.lock_stats;
  if
    Ops.lock_probe ~pre_instrs:(profile t).Lock_costs.lock_overhead_instrs t.word
  then begin
    emit t "acquire";
    Lock_stats.on_acquired t.lock_stats ~wait_ns:0;
    note_acquired t;
    true
  end
  else contended t ~deadline_ns

let set_impl t target =
  lock t;
  match swap_to t target with
  | ok ->
    unlock t;
    ok
  | exception e ->
    unlock t;
    raise e

(* {1 Construction} *)

let apply_impl t v =
  let target = impl_of_id v in
  if target = t.impl then true else swap_to t target

let create ?name ?trace ?(params = default_params) ?(guardrail = default_guardrail)
    ?fixed ?initial ?bug ~home () =
  let name = match name with Some n -> n | None -> "switch-lock" in
  (match (fixed, initial) with
  | Some _, Some _ ->
    invalid_arg "Switch_lock.create: ?fixed and ?initial are mutually exclusive"
  | _ -> ());
  let words = Ops.alloc ~node:home 6 in
  Ops.mark_sync_words words;
  let t =
    {
      lock_name = name;
      home_node = home;
      word = words.(0);
      guard = words.(1);
      nwait = words.(2);
      ctl = words.(3);
      ack = words.(4);
      impl_word = words.(5);
      params;
      bug;
      pinned = fixed <> None;
      impl =
        (match (fixed, initial) with
        | Some i, _ | None, Some i -> i
        | None, None -> Tas);
      epoch = 0;
      swap_seq = 0;
      next_ticket = 0;
      queue = [];
      flags = Hashtbl.create 16;
      owner = None;
      acquired_at = 0;
      hold_avg_ns = 0;
      swap_rollbacks = 0;
      abandoned_recoveries = 0;
      loop = None;
      guard_state = None;
      probe = None;
      lock_stats = Lock_stats.create ?trace name;
    }
  in
  if impl_id t.impl <> 0 then Ops.write t.impl_word (impl_id t.impl);
  (match (fixed, initial) with
  | Some _, _ | _, Some _ ->
    (* pinned, or explicitly driven via [swap_to]: no feedback loop *)
    ()
  | None, None ->
    let sensor =
      Sensor.make ~name:(name ^ ".contention-score") ~period:params.sample_period
        ~overhead_instrs:40
        (fun () -> score t)
    in
    let spec = policy_spec ~params ~guardrail ~name () in
    let loop =
      Adaptive.create ~name ~kind:"lock-impl" ~spec ~home ~sensor ~policy:Policy.no_op
        ()
    in
    let guard_state = Guardrail.create ~params:guardrail () in
    t.guard_state <- Some guard_state;
    let policy =
      Policy.Spec.compile spec
        ~guard_state:(Guardrail.guard guard_state)
        ~read:(fun () -> impl_id t.impl)
        ~apply:(fun v -> apply_impl t v)
        ~metric:(fun (s : int) -> s)
    in
    Adaptive.set_policy loop policy;
    t.loop <- Some loop);
  t

let adaptations t = match t.loop with Some l -> Adaptive.adaptations l | None -> 0
let samples t = match t.loop with Some l -> Adaptive.samples l | None -> 0
