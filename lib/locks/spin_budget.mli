(** The state machine behind the paper's [simple-adapt] policy.

    A saturating spin budget in [0, cap]: 0 denotes the pure-blocking
    configuration, [cap] (or more) pure spin, anything between a
    combined spin-then-block lock. {!step} applies the paper's rule to
    one observation of the waiting-thread count:

    - waiting = 0: jump to [cap] (configure pure spin),
    - waiting <= threshold: budget += n,
    - waiting > threshold: budget -= 2n (clamped at 0 = pure blocking).

    Shared by the closely-coupled {!Adaptive_lock} and the
    loosely-coupled monitor-thread variant, so the coupling ablation
    compares identical policies differing only in observation
    freshness. *)

type t

val create : threshold:int -> n:int -> cap:int -> init:int -> t

val spins : t -> int

val mode : t -> string
(** ["pure spin"], ["pure blocking"] or ["combined(k)"]. *)

val step : t -> waiting:int -> int option
(** Feed one observation; [Some new_budget] when the budget changed
    (a reconfiguration is due), [None] otherwise. *)

val reset : t -> unit
(** Return the budget to its initial (default combined) value — the
    {!Guardrail} fallback target. *)

val apply : t -> Waiting.t -> unit
(** Write the waiting attributes corresponding to the current budget:
    pure spin disables sleeping and spins forever; otherwise the spin
    count is the budget and sleeping is enabled. *)
