(** The state machine behind the paper's [simple-adapt] policy.

    A saturating spin budget in [0, cap]: 0 denotes the pure-blocking
    configuration, [cap] (or more) pure spin, anything between a
    combined spin-then-block lock. {!step} applies the paper's rule to
    one observation of the waiting-thread count:

    - waiting = 0: jump to [cap] (configure pure spin),
    - waiting <= threshold: budget += n,
    - waiting > threshold: budget -= 2n (clamped at 0 = pure blocking).

    Shared by the closely-coupled {!Adaptive_lock} and the
    loosely-coupled monitor-thread variant, so the coupling ablation
    compares identical policies differing only in observation
    freshness. *)

type t

val create : threshold:int -> n:int -> cap:int -> init:int -> t

val spins : t -> int

val mode : t -> string
(** ["pure spin"], ["pure blocking"] or ["combined(k)"]. *)

val step : t -> waiting:int -> int option
(** Feed one observation; [Some new_budget] when the budget changed
    (a reconfiguration is due), [None] otherwise. *)

val reset : t -> unit
(** Return the budget to its initial (default combined) value — the
    {!Guardrail} fallback target. *)

val apply : t -> Waiting.t -> unit
(** Write the waiting attributes corresponding to the current budget:
    pure spin disables sleeping and spins forever; otherwise the spin
    count is the budget and sleeping is enabled. *)

val set : t -> int -> unit
(** Set the budget to an explicit value (clamped into [\[0, cap\]]) —
    how the compiled {!spec} form drives the state machine. *)

val init : t -> int
(** The initial (default combined) budget, the {!reset} target. *)

val mode_of : cap:int -> int -> string
(** {!mode} for an arbitrary budget value under the given cap. *)

val spec :
  ?name:string ->
  ?attribute:string ->
  threshold:int ->
  n:int ->
  cap:int ->
  init:int ->
  unit ->
  Adaptive_core.Policy.Spec.t
(** The [simple-adapt] state machine as a declarative policy spec:
    configurations are the budget values reachable from [init] under
    {!step} (named by {!mode}), transitions carry the three threshold
    regions (waiting = 0 / 1..threshold / threshold+1..) and one
    waiting-policy reconfiguration cost each. Pure data — buildable
    outside any simulation, e.g. by the static policy checker. *)

val spec_of : ?name:string -> ?attribute:string -> t -> Adaptive_core.Policy.Spec.t
(** {!spec} for this budget's constants. *)
