module Attribute = Adaptive_core.Attribute
module Cost = Adaptive_core.Cost

type t = { core_lock : Lock_core.t; scratch : Butterfly.Memory.addr }

let create ?name ?trace ?sched ?policy ~home () =
  let policy =
    match policy with Some p -> p | None -> Waiting.combined ~node:home ~spins:1 ()
  in
  let core_lock =
    Lock_core.create ?name ?trace ?sched ~home ~policy ~costs:Lock_costs.reconfigurable ()
  in
  let scratch = Butterfly.Ops.alloc1 ~node:home () in
  Butterfly.Ops.mark_sync_words [| scratch |];
  { core_lock; scratch }

let core t = t.core_lock
let name t = Lock_core.name t.core_lock
let stats t = Lock_core.stats t.core_lock
let lock t = Lock_core.lock t.core_lock
let try_lock t = Lock_core.try_lock t.core_lock
let lock_timeout t ~deadline_ns = Lock_core.lock_timeout t.core_lock ~deadline_ns

let lock_retrying t ~backoff ~max_attempts ~slice_ns =
  Lock_core.lock_retrying t.core_lock ~backoff ~max_attempts ~slice_ns

let unlock t = Lock_core.unlock t.core_lock

let configure_waiting t ?spin_count ?delay_ns ?backoff ?sleep ?timeout_ns () =
  Cost.charge ~scratch:t.scratch Lock_costs.configure_waiting_policy;
  let p = Lock_core.policy t.core_lock in
  let update attr = function Some v -> Attribute.set attr v | None -> () in
  update p.Waiting.spin_count spin_count;
  update p.Waiting.delay_ns delay_ns;
  update p.Waiting.backoff backoff;
  update p.Waiting.sleep sleep;
  update p.Waiting.timeout_ns timeout_ns;
  Lock_stats.on_reconfigure (stats t)

let configure_scheduler t kind =
  Cost.charge ~scratch:t.scratch Lock_costs.configure_scheduler;
  Lock_sched.set_kind (Lock_core.scheduler t.core_lock) kind;
  Lock_stats.on_reconfigure (stats t)

let acquire_ownership t =
  Butterfly.Ops.work_instrs Lock_costs.acquisition_instrs;
  let p = Lock_core.policy t.core_lock in
  Attribute.acquire p.Waiting.spin_count

let release_ownership t =
  let p = Lock_core.policy t.core_lock in
  Attribute.release p.Waiting.spin_count

let describe t =
  Printf.sprintf "%s / %s scheduler"
    (Waiting.describe (Lock_core.policy t.core_lock))
    (Lock_sched.kind_name (Lock_sched.kind (Lock_core.scheduler t.core_lock)))
