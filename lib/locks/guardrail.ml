type params = { clamp_max : int; pathological_limit : int; cooldown : int }

let default_params = { clamp_max = 64; pathological_limit = 4; cooldown = 8 }

type t = {
  p : params;
  mutable streak : int;
  mutable cooldown_left : int;
  mutable fallbacks : int;
}

let create ?(params = default_params) () =
  if params.clamp_max < 0 || params.pathological_limit <= 0 || params.cooldown < 0 then
    invalid_arg "Guardrail.create";
  { p = params; streak = 0; cooldown_left = 0; fallbacks = 0 }

type verdict = Sample of int | Fallback

let observe t ~waiting ~wedged_low =
  let clamped = max 0 (min t.p.clamp_max waiting) in
  let pathological = clamped <> waiting || wedged_low in
  if t.cooldown_left > 0 then begin
    t.cooldown_left <- t.cooldown_left - 1;
    Sample clamped
  end
  else if pathological then begin
    t.streak <- t.streak + 1;
    if t.streak >= t.p.pathological_limit then begin
      t.streak <- 0;
      t.cooldown_left <- t.p.cooldown;
      t.fallbacks <- t.fallbacks + 1;
      Fallback
    end
    else Sample clamped
  end
  else begin
    t.streak <- 0;
    Sample clamped
  end

let streak t = t.streak
let fallbacks t = t.fallbacks
