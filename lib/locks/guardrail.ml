module Policy = Adaptive_core.Policy

type params = { clamp_max : int; pathological_limit : int; cooldown : int }

let default_params = { clamp_max = 64; pathological_limit = 4; cooldown = 8 }

(* The streak/cooldown state machine lives in [Policy.Guard] (usable by
   any adaptive object); this module adds the lock-specific clamping
   and the waiting-count vocabulary. *)
type t = { p : params; g : Policy.Guard.t }

let create ?(params = default_params) () =
  if params.clamp_max < 0 || params.pathological_limit <= 0 || params.cooldown < 0 then
    invalid_arg "Guardrail.create";
  {
    p = params;
    g =
      Policy.Guard.create ~pathological_limit:params.pathological_limit
        ~cooldown:params.cooldown ();
  }

type verdict = Sample of int | Fallback

let clamp t waiting = max 0 (min t.p.clamp_max waiting)

let classify t ~waiting ~wedged_low =
  let clamped = clamp t waiting in
  (clamped, clamped <> waiting || wedged_low)

let observe t ~waiting ~wedged_low =
  let clamped, pathological = classify t ~waiting ~wedged_low in
  if Policy.Guard.note t.g ~pathological then Fallback else Sample clamped

let guard t = t.g
let config t = t.p
let streak t = Policy.Guard.streak t.g
let fallbacks t = Policy.Guard.fallbacks t.g
