(** Per-lock statistics and locking-pattern traces.

    Every lock in the family carries one of these. Besides counters
    (acquisitions, contended acquisitions, spins, blocks, handoffs,
    reconfigurations) it can record the {b locking pattern}: a time
    series of the number of waiting threads, sampled at every contended
    lock event — exactly the quantity plotted in the paper's Figures
    4–9. *)

type t

val create : ?trace:bool -> string -> t
(** [trace] (default false) enables the waiting-thread time series. *)

val name : t -> string

(** {1 Recording (used by lock implementations)} *)

val on_lock : t -> unit
val on_contended : t -> unit
val on_acquired : t -> wait_ns:int -> unit
val on_unlock : t -> unit
val on_spin_probe : t -> unit
val on_block : t -> unit
val on_handoff : t -> unit
val on_reconfigure : t -> unit

val on_timeout : t -> unit
(** A timed acquisition ({!Lock_core.lock_timeout}) gave up. *)

val record_waiting : t -> now:int -> waiting:int -> unit

(** {1 Reading} *)

val lock_calls : t -> int
val unlock_calls : t -> int
val contended : t -> int
val acquired : t -> int
val spin_probes : t -> int
val blocks : t -> int
val handoffs : t -> int
val reconfigurations : t -> int

val timeouts : t -> int
(** Timed acquisitions that expired without obtaining the lock. *)

val total_wait_ns : t -> int
val max_wait_ns : t -> int

val mean_wait_ns : t -> float
(** Mean waiting time over contended acquisitions (0 when none). *)

val contention_ratio : t -> float
(** Fraction of lock calls that found the lock held. *)

val trace : t -> Engine.Series.t option
(** The waiting-thread series, when tracing was enabled. *)

val wait_histogram : t -> Repro_stats.Histogram.t
(** Distribution of non-zero acquisition waits (log-bucketed), for
    percentile reporting in the harness. *)

val pp : Format.formatter -> t -> unit
