open Butterfly
module Attribute = Adaptive_core.Attribute

(* Exponential back-off cap: keeps Anderson-style gaps bounded. *)
let max_backoff_ns = 2_000_000

let wait ~(policy : Waiting.t) ?(advice = fun () -> 0) ~since ~probe ~sleep () =
  (* The waiting loop re-consults the mutable attributes (and any
     advice) on every probe, so a reconfiguration takes effect for
     threads already waiting — the closely-coupled behaviour
     adaptation depends on.

     [probe ~gap_ns] makes one acquisition attempt and, on failure,
     charges the retry overhead followed by a [gap_ns] back-off wait
     before returning — which lets callers fuse the whole iteration
     into one [Ops.lock_probe]. The attribute reads stay where the
     pre-fusion loop had them: the back-off doubling is consulted
     after the failed probe's waits complete, the spin/sleep/timeout
     attributes at the top of the next iteration. *)
  let rec wait_loop attempts gap =
    let advice = advice () in
    let spin_limit =
      if advice = 1 then max_int
      else if advice = 2 then 0
      else Attribute.get policy.Waiting.spin_count
    in
    let sleep_enabled = advice = 2 || Attribute.get policy.Waiting.sleep in
    let timeout = Attribute.get policy.Waiting.timeout_ns in
    let expired = timeout > 0 && Ops.now () >= since + timeout in
    if (attempts >= spin_limit || expired) && sleep_enabled then sleep ()
    else if probe ~gap_ns:gap then ()
    else begin
      let gap =
        if Attribute.get policy.Waiting.backoff then min (max (gap * 2) 1) max_backoff_ns
        else gap
      in
      wait_loop (attempts + 1) gap
    end
  in
  wait_loop 0 (Attribute.get policy.Waiting.delay_ns)
