(** Adaptation-policy guardrails: clamp, wedge detection, fallback.

    The paper's [simple-adapt] trusts its observations of the
    waiting-thread count. Under fault injection (stuck memory modules,
    killed lock holders, delayed owners) those observations can turn
    pathological, and the policy's positive feedback can wedge the lock
    at the pure-blocking extreme: blocking is slow, so waiters pile up,
    so every sample says "block more". Self-managing-systems work
    (Motuzenko cs/0307035; Adjusted Objects arXiv:2504.19495) makes the
    same point: adaptation must stay stable under perturbed inputs.

    The guardrail filters each observation before the policy sees it:

    - {b clamp} — raw samples outside [\[0, clamp_max\]] are clamped
      (a perturbed sensor cannot inject an absurd magnitude), and the
      clamping itself counts as a pathological sample;
    - {b wedge detection} — a sample that would hold the budget at the
      pure-blocking extreme (budget 0, waiting above threshold) is
      pathological;
    - {b fallback} — after [pathological_limit] consecutive
      pathological samples the guardrail orders a reset to the default
      combined configuration (charged as one waiting-policy
      reconfiguration, Table 8), then suspends pathology counting for
      [cooldown] samples so the fallback cannot immediately re-trigger
      (hysteresis).

    Guardrails are opt-in ({!Adaptive_lock.create}'s [?guardrail]):
    with none installed the adaptive lock behaves bit-for-bit as
    before.

    The streak/cooldown/fallback state machine itself is
    [Adaptive_core.Policy.Guard] — reusable by any adaptive object via
    the [Policy.guarded] combinator; this module is the lock-flavoured
    wrapper adding waiting-count clamping and wedge vocabulary. *)

type params = {
  clamp_max : int;  (** samples clamped into [0, clamp_max] *)
  pathological_limit : int;  (** consecutive pathological samples before fallback *)
  cooldown : int;  (** samples with pathology counting suspended after a fallback *)
}

val default_params : params
(** clamp_max 64, pathological_limit 4, cooldown 8. *)

type t

val create : ?params:params -> unit -> t

type verdict =
  | Sample of int  (** feed this (possibly clamped) sample to the policy *)
  | Fallback  (** reset to the default combined configuration instead *)

val observe : t -> waiting:int -> wedged_low:bool -> verdict
(** Filter one observation. [wedged_low] is the caller's statement
    that the budget currently sits at the pure-blocking extreme and
    this sample would keep it there. *)

val classify : t -> waiting:int -> wedged_low:bool -> int * bool
(** The clamp half of {!observe} alone: the sanitized sample and
    whether the raw one was pathological — the shape
    [Policy.guarded]'s [clamp] argument wants, without advancing the
    streak machine. *)

val guard : t -> Adaptive_core.Policy.Guard.t
(** The underlying streak/cooldown state machine, for composing with
    [Policy.guarded] directly. *)

val config : t -> params

val streak : t -> int
(** Current consecutive pathological-sample count (for tests). *)

val fallbacks : t -> int
(** Fallbacks ordered so far. *)
