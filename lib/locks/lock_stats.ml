type t = {
  stats_name : string;
  mutable lock_calls : int;
  mutable unlock_calls : int;
  mutable contended : int;
  mutable acquired : int;
  mutable spin_probes : int;
  mutable blocks : int;
  mutable handoffs : int;
  mutable reconfigurations : int;
  mutable timeouts : int;
  mutable total_wait_ns : int;
  mutable max_wait_ns : int;
  wait_histogram : Repro_stats.Histogram.t;
  trace : Engine.Series.t option;
}

let create ?(trace = false) name =
  {
    stats_name = name;
    lock_calls = 0;
    unlock_calls = 0;
    contended = 0;
    acquired = 0;
    spin_probes = 0;
    blocks = 0;
    handoffs = 0;
    reconfigurations = 0;
    timeouts = 0;
    total_wait_ns = 0;
    max_wait_ns = 0;
    wait_histogram = Repro_stats.Histogram.create ();
    trace = (if trace then Some (Engine.Series.create ~name ()) else None);
  }

let name t = t.stats_name
let on_lock t = t.lock_calls <- t.lock_calls + 1
let on_contended t = t.contended <- t.contended + 1

let on_acquired t ~wait_ns =
  t.acquired <- t.acquired + 1;
  t.total_wait_ns <- t.total_wait_ns + wait_ns;
  if wait_ns > 0 then Repro_stats.Histogram.add t.wait_histogram wait_ns;
  if wait_ns > t.max_wait_ns then t.max_wait_ns <- wait_ns

let on_unlock t = t.unlock_calls <- t.unlock_calls + 1
let on_spin_probe t = t.spin_probes <- t.spin_probes + 1
let on_block t = t.blocks <- t.blocks + 1
let on_handoff t = t.handoffs <- t.handoffs + 1
let on_reconfigure t = t.reconfigurations <- t.reconfigurations + 1
let on_timeout t = t.timeouts <- t.timeouts + 1

let record_waiting t ~now ~waiting =
  match t.trace with
  | Some series -> Engine.Series.add series ~t:now ~v:(float_of_int waiting)
  | None -> ()

let lock_calls t = t.lock_calls
let unlock_calls t = t.unlock_calls
let contended t = t.contended
let acquired t = t.acquired
let spin_probes t = t.spin_probes
let blocks t = t.blocks
let handoffs t = t.handoffs
let reconfigurations t = t.reconfigurations
let timeouts t = t.timeouts
let total_wait_ns t = t.total_wait_ns
let max_wait_ns t = t.max_wait_ns

let mean_wait_ns t =
  if t.contended = 0 then 0.0 else float_of_int t.total_wait_ns /. float_of_int t.contended

let contention_ratio t =
  if t.lock_calls = 0 then 0.0 else float_of_int t.contended /. float_of_int t.lock_calls

let trace t = t.trace
let wait_histogram t = t.wait_histogram

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: %d locks (%d contended, %.1f%%), %d spins, %d blocks, %d handoffs, %d \
     reconfigs, mean wait %.1fus, max wait %.1fus@]"
    t.stats_name t.lock_calls t.contended
    (100.0 *. contention_ratio t)
    t.spin_probes t.blocks t.handoffs t.reconfigurations
    (mean_wait_ns t /. 1000.0)
    (float_of_int t.max_wait_ns /. 1000.0)
