(** Readers-writer locks, including an adaptive variant.

    The paper's future work proposes applying closely-coupled
    adaptation "in other operating system components as well"; this
    module does it for a second synchronization abstraction. The lock
    has a {e preference} attribute:

    - [Reader_pref]: readers enter whenever no writer holds the lock —
      maximal read concurrency, but a steady read stream starves
      writers;
    - [Writer_pref]: readers also yield to {e waiting} writers —
      bounded writer latency at the cost of read throughput.

    The adaptive variant monitors the waiting-writer count with a
    built-in sensor (sampled at read-side releases) and switches the
    preference attribute: writers queueing up flips it to
    [Writer_pref]; a sustained writer-free stretch flips it back.

    Waiting runs through {!Combined_wait} — the same attribute-driven
    spin-then-block machinery as {!Lock_core}: contended readers and
    writers spin per the lock's {!Waiting} attributes, then register
    on a sleeper list and block; releases grant the lock directly
    (readers their +2, a writer its bit) before waking, so a woken
    thread owns the lock. The preference is a reconfigurable
    {!Adaptive_core.Attribute}. *)

type preference = Reader_pref | Writer_pref

type t

val create :
  ?name:string ->
  ?preference:preference ->
  ?adaptive:bool ->
  ?sample_period:int ->
  ?policy:Waiting.t ->
  home:int ->
  unit ->
  t
(** [preference] defaults to [Reader_pref]; with [adaptive] (default
    false) the preference becomes a monitored, self-tuning attribute
    (the feedback loop registers in [Core.Registry] with kind
    ["rw-lock"]). [policy] is the waiting policy shared by both sides
    (default: 6 gap-spaced probes, then sleep). Must run inside a
    simulation. *)

val policy_spec :
  ?name:string ->
  ?attribute:string ->
  ?preference:preference ->
  unit ->
  Adaptive_core.Policy.Spec.t
(** The preference-adaptation policy as a declarative spec (metric:
    waiting writers; writer preference on any waiting writer, reader
    preference back after 3 consecutive writer-free samples). What the
    adaptive variant compiles and what the static checker inspects. *)

val home : t -> int

val name : t -> string
val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

val with_read : t -> (unit -> 'a) -> 'a
val with_write : t -> (unit -> 'a) -> 'a

val preference : t -> preference
val set_preference : t -> preference -> unit

val preference_attr : t -> preference Adaptive_core.Attribute.t
(** The bias attribute itself, for external reconfiguration agents and
    ownership tests. *)

val waiting_policy : t -> Waiting.t
(** The waiting attributes consulted by contended readers/writers. *)

val loop : t -> int Adaptive_core.Adaptive.t option
(** The adaptive variant's feedback loop (observations are
    waiting-writer counts); [None] for fixed-preference locks. *)

val readers_now : t -> int
(** Active readers (simulated read). *)

val writers_waiting : t -> int

val adaptations : t -> int
(** Preference switches performed by the adaptive variant. *)

val reader_acquisitions : t -> int
val writer_acquisitions : t -> int

val mean_writer_wait_ns : t -> float
val mean_reader_wait_ns : t -> float
