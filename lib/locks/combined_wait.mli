(** The attribute-driven spin-then-block waiting loop, factored out of
    {!Lock_core} so every lock-like object waits with the same
    machinery: the {!Waiting} attributes (spin count, probe gap,
    Anderson back-off, sleep, timeout) are re-consulted on every probe,
    so reconfigurations take effect for threads already waiting.
    {!Lock_core} drives it for mutex acquisition; {!Rw_lock} for both
    its reader and writer sides. *)

val max_backoff_ns : int
(** Cap on the exponential back-off gap. *)

val wait :
  policy:Waiting.t ->
  ?advice:(unit -> int) ->
  since:int ->
  probe:(gap_ns:int -> bool) ->
  sleep:(unit -> unit) ->
  unit ->
  unit
(** Run the waiting loop until the object is acquired. [probe ~gap_ns]
    makes one acquisition attempt and, on success, performs the
    caller's acquisition bookkeeping; on failure it charges the
    caller's per-probe retry overhead (the paper's library-call cost)
    followed by a [gap_ns] back-off wait before returning false — a
    contract shaped so callers can fuse the attempt, the retry and the
    gap into a single [Ops.lock_probe]. [sleep] is the blocking path:
    register, re-check, block until handed the object (it returns
    having acquired). [advice] (default none) returns the owner's
    current advice: 0 none, 1 force spinning, 2 force sleeping.
    [since] anchors the policy's timeout. *)
