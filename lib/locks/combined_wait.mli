(** The attribute-driven spin-then-block waiting loop, factored out of
    {!Lock_core} so every lock-like object waits with the same
    machinery: the {!Waiting} attributes (spin count, probe gap,
    Anderson back-off, sleep, timeout) are re-consulted on every probe,
    so reconfigurations take effect for threads already waiting.
    {!Lock_core} drives it for mutex acquisition; {!Rw_lock} for both
    its reader and writer sides. *)

val max_backoff_ns : int
(** Cap on the exponential back-off gap. *)

val wait :
  policy:Waiting.t ->
  ?advice:(unit -> int) ->
  since:int ->
  probe:(unit -> bool) ->
  on_retry:(unit -> unit) ->
  sleep:(unit -> unit) ->
  unit ->
  unit
(** Run the waiting loop until the object is acquired. [probe] makes
    one acquisition attempt and, on success, performs the caller's
    acquisition bookkeeping. [sleep] is the blocking path: register,
    re-check, block until handed the object (it returns having
    acquired). [on_retry] is charged per failed probe (the paper's
    per-probe library-call overhead). [advice] (default none) returns
    the owner's current advice: 0 none, 1 force spinning, 2 force
    sleeping. [since] anchors the policy's timeout. *)
