(* Calibration notes (against Config.default: 62 ns/instr, local
   read/write 600/550 ns, atomic extra 900 ns, so a local test-and-set
   costs 2050 ns):

   - atomior lock op     = 463 instrs + TAS              ~ 30.76 us (paper 30.73)
   - spin/adaptive lock  = 625 instrs + TAS              ~ 40.80 us (paper 40.79)
   - blocking lock op    = 1396 instrs + TAS             ~ 88.60 us (paper 88.59)
   - spin unlock         = 72 instrs + write             ~  5.01 us (paper 4.99)
   - blocking unlock     = 954 instrs + guard TAS + 2W   ~ 62.30 us (paper 62.32)
   - adaptive unlock     = 775 instrs + write + sampling ~ 50.1  us (paper 50.07)
   - configure (waiting) = 140 instrs + 1R 1W            ~  9.83 us (paper 9.87)
   - configure (sched)   = 157 instrs + 5W               ~ 12.48 us (paper 12.51)
   - acquisition         = 463 instrs + TAS              ~ 30.76 us (paper 30.75)
   - monitor (one var)   = 1055 instrs + 1R              ~ 66.01 us (paper 66.03;
     this is the general-purpose monitor's sampling path — the
     customized closely-coupled lock monitor is far cheaper, which is
     precisely why the paper builds it). *)

type profile = {
  lock_overhead_instrs : int;
  unlock_overhead_instrs : int;
  block_path_instrs : int;
  unlock_queue_check : bool;
}

let atomior =
  {
    lock_overhead_instrs = 463;
    unlock_overhead_instrs = 20;
    block_path_instrs = 0;
    unlock_queue_check = false;
  }

let spin =
  {
    lock_overhead_instrs = 625;
    unlock_overhead_instrs = 72;
    block_path_instrs = 0;
    unlock_queue_check = false;
  }

let backoff = spin

let blocking =
  {
    lock_overhead_instrs = 1396;
    unlock_overhead_instrs = 954;
    block_path_instrs = 320;
    unlock_queue_check = true;
  }

let combined =
  {
    lock_overhead_instrs = 625;
    unlock_overhead_instrs = 500;
    block_path_instrs = 320;
    unlock_queue_check = true;
  }

let reconfigurable =
  {
    lock_overhead_instrs = 625;
    unlock_overhead_instrs = 775;
    block_path_instrs = 320;
    unlock_queue_check = true;
  }

let adaptive = reconfigurable

(* MCS-style queue lock: spin-lock entry overhead plus a handoff that
   costs one remote write into the waiter's local module; the unlock
   path always consults the registration queue. *)
let mcs =
  {
    lock_overhead_instrs = 625;
    unlock_overhead_instrs = 120;
    block_path_instrs = 0;
    unlock_queue_check = true;
  }

let acquisition_instrs = 463

let configure_waiting_policy =
  Adaptive_core.Cost.make ~reads:1 ~writes:1 ~instrs:140 ()

let configure_scheduler = Adaptive_core.Cost.make ~writes:5 ~instrs:157 ()

(* Implementation hot-swap (Table-8-style reconfiguration): the freeze
   and commit writes plus the drain bookkeeping — not counting the
   per-waiter kick writes, which the protocol performs (and pays for)
   explicitly. *)
let swap_implementation = Adaptive_core.Cost.make ~reads:2 ~writes:3 ~instrs:420 ()
let monitor_sample_instrs = 1055
