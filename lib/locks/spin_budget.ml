module Attribute = Adaptive_core.Attribute

type t = { threshold : int; n : int; cap : int; init : int; mutable spins : int }

let create ~threshold ~n ~cap ~init =
  if threshold < 0 || n <= 0 || cap <= 0 then invalid_arg "Spin_budget.create";
  let init = max 0 (min cap init) in
  { threshold; n; cap; init; spins = init }

let reset t = t.spins <- t.init

let spins t = t.spins

let mode_of ~cap v =
  if v <= 0 then "pure blocking"
  else if v >= cap then "pure spin"
  else Printf.sprintf "combined(%d)" v

let mode t = mode_of ~cap:t.cap t.spins

let step t ~waiting =
  let next =
    if waiting = 0 then t.cap
    else if waiting <= t.threshold then min t.cap (t.spins + t.n)
    else max 0 (t.spins - (2 * t.n))
  in
  if next = t.spins then None
  else begin
    t.spins <- next;
    Some next
  end

let set t v = t.spins <- max 0 (min t.cap v)
let init t = t.init

(* The same step rule as {!step}, as a pure function of the budget
   value — used to enumerate the reachable configuration set. *)
let step_value ~threshold ~n ~cap spins ~waiting =
  if waiting = 0 then cap
  else if waiting <= threshold then min cap (spins + n)
  else max 0 (spins - (2 * n))

let spec ?name:(spec_name = "adaptive-lock") ?attribute ~threshold ~n ~cap ~init ()
    =
  let module Spec = Adaptive_core.Policy.Spec in
  let init = max 0 (min cap init) in
  (* Reachable-budget closure from [init] under the three regions. *)
  let reps = [ 0; 1; threshold + 1 ] in
  let rec close seen frontier =
    match frontier with
    | [] -> seen
    | v :: rest ->
      let nexts =
        List.filter_map
          (fun waiting ->
            let v' = step_value ~threshold ~n ~cap v ~waiting in
            if List.mem v' seen then None else Some v')
          reps
      in
      let nexts = List.sort_uniq compare nexts in
      close (seen @ nexts) (rest @ nexts)
  in
  let values = List.sort compare (close [ init ] [ init ]) in
  let configs =
    List.map (fun v -> { Spec.c_name = mode_of ~cap v; c_value = v }) values
  in
  let cost = Lock_costs.configure_waiting_policy in
  let transitions =
    List.concat_map
      (fun v ->
        List.filter_map
          (fun (c, waiting) ->
            let target = step_value ~threshold ~n ~cap v ~waiting in
            if target = v then None
            else
              Some
                {
                  Spec.t_from = v;
                  t_cond = c;
                  t_target = target;
                  t_label = mode_of ~cap target;
                  t_repeats = 1;
                  t_cost = cost;
                })
          ((Spec.cond 0 ~hi:0, 0)
           :: (if threshold >= 1 then [ (Spec.cond 1 ~hi:threshold, 1) ] else [])
          @ [ (Spec.cond (threshold + 1), threshold + 1) ]))
      values
  in
  {
    Spec.s_name = spec_name;
    s_kind = "lock";
    s_attribute =
      (match attribute with Some a -> a | None -> spec_name ^ ".waiting-policy");
    s_metric = "no-of-waiting-threads";
    s_monotone = Spec.Up_at_low;
    s_configs = configs;
    s_initial = init;
    s_transitions = transitions;
    s_guard = None;
  }

let spec_of ?name ?attribute t =
  spec ?name ?attribute ~threshold:t.threshold ~n:t.n ~cap:t.cap ~init:t.init ()

let apply t (policy : Waiting.t) =
  if t.spins >= t.cap then begin
    Attribute.set policy.Waiting.spin_count max_int;
    Attribute.set policy.Waiting.sleep false
  end
  else begin
    Attribute.set policy.Waiting.spin_count t.spins;
    Attribute.set policy.Waiting.sleep true
  end
