module Attribute = Adaptive_core.Attribute

type t = { threshold : int; n : int; cap : int; init : int; mutable spins : int }

let create ~threshold ~n ~cap ~init =
  if threshold < 0 || n <= 0 || cap <= 0 then invalid_arg "Spin_budget.create";
  let init = max 0 (min cap init) in
  { threshold; n; cap; init; spins = init }

let reset t = t.spins <- t.init

let spins t = t.spins

let mode t =
  if t.spins <= 0 then "pure blocking"
  else if t.spins >= t.cap then "pure spin"
  else Printf.sprintf "combined(%d)" t.spins

let step t ~waiting =
  let next =
    if waiting = 0 then t.cap
    else if waiting <= t.threshold then min t.cap (t.spins + t.n)
    else max 0 (t.spins - (2 * t.n))
  in
  if next = t.spins then None
  else begin
    t.spins <- next;
    Some next
  end

let apply t (policy : Waiting.t) =
  if t.spins >= t.cap then begin
    Attribute.set policy.Waiting.spin_count max_int;
    Attribute.set policy.Waiting.sleep false
  end
  else begin
    Attribute.set policy.Waiting.spin_count t.spins;
    Attribute.set policy.Waiting.sleep true
  end
