(** A lock whose {e implementation} is the adaptive attribute — the
    "Adjusted Objects" direction: plain test-and-set spinning under
    low contention, an MCS-style queue of locally-homed flag words
    under high contention, blocking handoff when ownership spans
    exceed the deschedule round trip.

    The implementation is hot-swapped by a fail-safe quiescence
    protocol run by the current lock holder: freeze new arrivals,
    kick and drain every registered waiter (spinners, queued waiters
    and sleepers alike re-arm their mailbox and re-enter with their
    original ticket, so queued FIFO order survives), then commit the
    flip atomically in virtual time — or roll back if the drain does
    not quiesce before the swap deadline (a stalled or killed
    participant must not wedge the lock half-swapped). A swapper that
    dies mid-swap leaves a freeze whose deadline ages out; any waiter
    then clears it (abandoned-swap recovery). *)

type impl = Tas | Mcs | Blocking

val impl_id : impl -> int
val impl_of_id : int -> impl
val impl_label : impl -> string

(** Seeded defects for the analysis fixtures (never shipped). At a
    swap, [Lost_sleeper_on_swap] drops sleeping waiters from the
    queue without a wakeup — the lost-waiter window the swap-window
    predictor must catch; [Double_grant_on_swap] grants a sleeping
    waiter instead of migrating it while the swapper still owns the
    lock — the double-grant escape. *)
type bug = Lost_sleeper_on_swap | Double_grant_on_swap

type params = {
  queue_threshold : int;  (** waiters at/above this: adopt the MCS queue *)
  uncontended_max : int;  (** waiters at/below this: adopt plain TAS *)
  hold_ns_threshold : int;  (** mean hold above this: adopt blocking *)
  sample_period : int;
  repeats : int;  (** hysteresis: consecutive matching samples per swap *)
  swap_timeout_ns : int;  (** drain budget before a swap rolls back *)
  swap_grace_ns : int;  (** slack before a swap is presumed abandoned *)
}

val default_params : params

val default_guardrail : Guardrail.params
(** Clamp sized to the composite metric (0–199), so the blocking
    region stays reachable under the guardrail. *)

type t

val create :
  ?name:string ->
  ?trace:bool ->
  ?params:params ->
  ?guardrail:Guardrail.params ->
  ?fixed:impl ->
  ?initial:impl ->
  ?bug:bug ->
  home:int ->
  unit ->
  t
(** [fixed] pins one implementation: no feedback loop is built and
    {!swap_to}/{!set_impl} raise {!Lock_core.Misuse} — the fixed
    variants of the ablation cannot be hot-swapped out from under
    their premise. [initial] also starts at the given implementation
    with no feedback loop, but leaves explicit {!swap_to} available —
    for manually driven swap windows (fixtures, benchmarks). The two
    are mutually exclusive. [guardrail] attaches a {!Guardrail} to
    the compiled ladder. *)

val lock : t -> unit
val try_lock : t -> bool

val lock_timeout : t -> deadline_ns:int -> bool
(** Timed acquisition; timed waiters poll and never sleep, and a
    grant that lands exactly at expiry is taken and released rather
    than lost. *)

val unlock : t -> unit
(** Releases; the feedback loop ticks first, while ownership still
    belongs to the caller — only the holder may swap. *)

val swap_to : t -> impl -> bool
(** Run the quiescence protocol toward [impl] from inside an owned
    critical section. True on commit, false on rollback — including
    when a drain that outlived its grace window finds the freeze
    already cleared by abandoned-swap recovery (the commit
    re-validates ownership of the freeze rather than flip over
    re-parked waiters). Raises {!Lock_core.Misuse} when the caller
    does not hold the lock, or when the lock was created with
    [fixed]. *)

val set_impl : t -> impl -> bool
(** [lock]; {!swap_to}; [unlock] — for explicit reconfiguration. *)

val policy_spec :
  ?params:params -> ?guardrail:Guardrail.params -> ?name:string -> unit ->
  Adaptive_core.Policy.Spec.t
(** The implementation ladder as a declarative spec
    ([s_kind = "lock-impl"], metric ["contention-score"]): what the
    static policy checker inspects and what {!create} compiles, so
    the two cannot drift. *)

val name : t -> string
val home : t -> int
val stats : t -> Lock_stats.t
val current_impl : t -> impl
val waiting_now : t -> int
val hold_avg_ns : t -> int

val epoch : t -> int
(** Committed swaps. *)

val swap_rollbacks : t -> int
val abandoned_recoveries : t -> int

(** Conformance instrumentation: [probe tid label] is called at each
    protocol transition (labels match the [Proto_models.quiescence]
    rule vocabulary: freeze, kick, drain-ok, commit, park, granted,
    …). Emissions inside guard-held sections happen before the guard
    is released, so the probe sees the real linearization order. For
    [Analysis.Proto_check] conformance tests only; [None] (the
    default) costs one branch per transition. *)
val set_transition_probe : t -> (int -> string -> unit) option -> unit
val adaptations : t -> int
val samples : t -> int
val feedback : t -> int Adaptive_core.Adaptive.t option
val guardrail : t -> Guardrail.t option
