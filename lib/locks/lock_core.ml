open Butterfly
module Attribute = Adaptive_core.Attribute

type advice = Advise_spin | Advise_sleep

exception Misuse of string

type t = {
  lock_name : string;
  home_node : int;
  word : Memory.addr;  (* 0 free, 1 held *)
  guard : Memory.addr;  (* protects the registration queue *)
  nwait : Memory.addr;  (* waiting-thread count (the monitored variable) *)
  advice_word : Memory.addr;  (* 0 none, 1 spin, 2 sleep *)
  queue : Lock_sched.t;
  wait_policy : Waiting.t;
  costs : Lock_costs.profile;
  uses_advice : bool;
  lock_stats : Lock_stats.t;
  mutable successor : int option;
  mutable owner : int option;  (* host-side: tid holding the lock word *)
}

let create ?name ?(trace = false) ?(sched = Lock_sched.Fcfs) ?(advisory = false) ~home
    ~policy ~costs () =
  let name = match name with Some n -> n | None -> "lock" in
  let words = Ops.alloc ~node:home 4 in
  Ops.mark_sync_words words;
  {
    lock_name = name;
    home_node = home;
    word = words.(0);
    guard = words.(1);
    nwait = words.(2);
    advice_word = words.(3);
    queue = Lock_sched.create sched;
    wait_policy = policy;
    costs;
    uses_advice = advisory;
    lock_stats = Lock_stats.create ~trace name;
    successor = None;
    owner = None;
  }

let name t = t.lock_name
let home t = t.home_node
let stats t = t.lock_stats
let policy t = t.wait_policy
let scheduler t = t.queue
let set_successor t tid = t.successor <- Some tid

let advise t advice =
  let v = match advice with None -> 0 | Some Advise_spin -> 1 | Some Advise_sleep -> 2 in
  Ops.write t.advice_word v

let waiting_now t = Ops.read t.nwait
let waiting_addr t = t.nwait
let holder_check t = Ops.read t.word <> 0

let guard_lock t =
  while not (Ops.test_and_set t.guard) do
    ()
  done

let guard_unlock t = Ops.write t.guard 0

let max_backoff_ns = Combined_wait.max_backoff_ns

let enter_waiting t =
  let waiting = Ops.fetch_and_add t.nwait 1 + 1 in
  Lock_stats.record_waiting t.lock_stats ~now:(Ops.now ()) ~waiting

let leave_waiting t =
  let waiting = Ops.fetch_and_add t.nwait (-1) - 1 in
  Lock_stats.record_waiting t.lock_stats ~now:(Ops.now ()) ~waiting

(* Whether the current waiting policy can put waiters to sleep: if it
   cannot, waiters burn a processor for the whole ownership span, so
   the owner must never block while holding the lock. *)
let spin_mode t = not (Attribute.get t.wait_policy.Waiting.sleep)

(* Annotation payload construction is guarded on the subscriber flag:
   with no observer the acquire/release paths pay one flag read, not a
   record allocation per operation. *)
let note_acquired t =
  t.owner <- Some (Ops.self ());
  if Ops.annotations_enabled () then
    Ops.annotate
      (Ops.A_lock_acquire
         { lock = t.word; lock_name = t.lock_name; spin_wait = spin_mode t })

let acquired t ~since =
  leave_waiting t;
  Lock_stats.on_acquired t.lock_stats ~wait_ns:(Ops.now () - since);
  note_acquired t

(* The sleeping path: register under the guard, re-check the lock word
   (an unlock that raced past us would otherwise never wake us), then
   block until an unlock hands the lock over. *)
let sleep_until_handoff t ~since =
  Ops.work_instrs t.costs.block_path_instrs;
  Lock_stats.on_block t.lock_stats;
  let me = Ops.self () in
  guard_lock t;
  Lock_sched.register t.queue
    { Lock_sched.tid = me; prio = Ops.priority_of me; enqueued_at = Ops.now () };
  if Ops.test_and_set t.word then begin
    (* The lock freed while we registered: acquire directly. *)
    Lock_sched.cancel t.queue me;
    guard_unlock t;
    acquired t ~since
  end
  else begin
    guard_unlock t;
    Ops.block ();
    (* Woken by an unlock that left the word held for us; restoring the
       thread's library context costs a resume charge. *)
    Ops.work_instrs 800;
    acquired t ~since
  end

let contended_path t =
  let since = Ops.now () in
  Lock_stats.on_contended t.lock_stats;
  enter_waiting t;
  (* The shared waiting loop re-consults the mutable attributes and the
     owner's advice word on every probe, so a reconfiguration or a
     fresh advice takes effect for threads already waiting — the
     closely-coupled behaviour adaptation depends on. *)
  Combined_wait.wait ~policy:t.wait_policy
    (* Only advisory locks pay for consulting the advice word. *)
    ~advice:(fun () -> if t.uses_advice then Ops.read t.advice_word else 0)
    ~since
    ~probe:(fun ~gap_ns ->
      (* One spin iteration — the test-and-set plus, on failure, the
         retry overhead and the back-off gap — as one fused effect. *)
      Lock_stats.on_spin_probe t.lock_stats;
      if
        Ops.lock_probe ~retry_instrs:t.costs.Lock_costs.lock_overhead_instrs ~gap_ns
          t.word
      then begin
        acquired t ~since;
        true
      end
      else false)
    ~sleep:(fun () -> sleep_until_handoff t ~since)
    ()

let lock t =
  if Ops.annotations_enabled () then
    Ops.annotate (Ops.A_lock_request { lock = t.word; lock_name = t.lock_name });
  Lock_stats.on_lock t.lock_stats;
  (* Entry overhead + test-and-set, fused into one staged effect. *)
  if Ops.lock_probe ~pre_instrs:t.costs.Lock_costs.lock_overhead_instrs t.word then begin
    Lock_stats.on_acquired t.lock_stats ~wait_ns:0;
    note_acquired t
  end
  else contended_path t

let try_lock t =
  Lock_stats.on_lock t.lock_stats;
  let got = Ops.lock_probe ~pre_instrs:t.costs.Lock_costs.lock_overhead_instrs t.word in
  if got then begin
    Lock_stats.on_acquired t.lock_stats ~wait_ns:0;
    note_acquired t
  end;
  got

(* Timed acquisition: the waiting policy's spin phase bounded by an
   absolute virtual-time deadline (the Waiting timeout generalized to
   a per-call deadline). A timed waiter never sleeps — a sleeping
   waiter is released only by an unlock's direct handoff, which cannot
   be cancelled at a deadline — so it probes with the policy's
   gap/backoff schedule until either the word is won or the deadline
   passes. The waiting count is maintained exactly as for a blocking
   acquisition, so monitors and adaptive policies see timed waiters. *)
let lock_timeout t ~deadline_ns =
  if Ops.annotations_enabled () then
    Ops.annotate (Ops.A_lock_request { lock = t.word; lock_name = t.lock_name });
  Lock_stats.on_lock t.lock_stats;
  if Ops.lock_probe ~pre_instrs:t.costs.Lock_costs.lock_overhead_instrs t.word then begin
    Lock_stats.on_acquired t.lock_stats ~wait_ns:0;
    note_acquired t;
    true
  end
  else begin
    let since = Ops.now () in
    Lock_stats.on_contended t.lock_stats;
    enter_waiting t;
    (* Each iteration is one fused probe: test-and-set, then — decided
       at the probe's completion time, before any retry cost — either
       deadline expiry or the retry overhead and back-off gap. *)
    let rec wait_loop gap =
      Lock_stats.on_spin_probe t.lock_stats;
      match
        Ops.lock_probe_timed ~retry_instrs:t.costs.Lock_costs.lock_overhead_instrs
          ~gap_ns:gap ~until:deadline_ns t.word
      with
      | Ops.Probe_acquired ->
        acquired t ~since;
        true
      | Ops.Probe_expired ->
        leave_waiting t;
        Lock_stats.on_timeout t.lock_stats;
        false
      | Ops.Probe_retrying ->
        let gap =
          if Attribute.get t.wait_policy.Waiting.backoff then
            min (max (gap * 2) 1) max_backoff_ns
          else gap
        in
        wait_loop gap
    in
    wait_loop (Attribute.get t.wait_policy.Waiting.delay_ns)
  end

(* Bounded-retry acquisition: slices of timed waiting separated by
   exponential-backoff delays (Engine.Backoff), the package's standard
   recovery idiom for lock acquisition that must survive a delayed or
   dead lock holder. *)
let lock_retrying t ~backoff ~max_attempts ~slice_ns =
  if slice_ns <= 0 then invalid_arg "Lock_core.lock_retrying: slice_ns must be positive";
  Engine.Backoff.retry backoff ~max_attempts ~sleep:Ops.delay (fun () ->
      lock_timeout t ~deadline_ns:(Ops.now () + slice_ns))

let unlock t =
  let me = Ops.self () in
  (match t.owner with
  | Some tid when tid = me -> ()
  | Some tid ->
    raise
      (Misuse
         (Printf.sprintf "thread %s unlocked lock %s held by %s" (Ops.thread_name me)
            t.lock_name (Ops.thread_name tid)))
  | None ->
    raise
      (Misuse
         (Printf.sprintf "thread %s unlocked lock %s, which is not held"
            (Ops.thread_name me) t.lock_name)));
  t.owner <- None;
  if Ops.annotations_enabled () then
    Ops.annotate (Ops.A_lock_release { lock = t.word; lock_name = t.lock_name });
  Lock_stats.on_unlock t.lock_stats;
  Ops.work_instrs t.costs.unlock_overhead_instrs;
  (* The owner's advice applies only to its own ownership span. *)
  if t.uses_advice then Ops.write t.advice_word 0;
  if t.costs.Lock_costs.unlock_queue_check || not (Lock_sched.is_empty t.queue) then begin
    guard_lock t;
    let successor = t.successor in
    t.successor <- None;
    match Lock_sched.release_next t.queue ~successor with
    | Some w ->
      (* Direct handoff: the word stays held; the sleeper owns it. *)
      guard_unlock t;
      Lock_stats.on_handoff t.lock_stats;
      t.owner <- Some w.Lock_sched.tid;
      Ops.wakeup w.Lock_sched.tid
    | None ->
      Ops.write t.word 0;
      guard_unlock t
  end
  else Ops.write t.word 0
