open Butterfly
module Attribute = Adaptive_core.Attribute
module Sensor = Adaptive_core.Sensor
module Policy = Adaptive_core.Policy
module Adaptive = Adaptive_core.Adaptive

type preference = Reader_pref | Writer_pref

(* State word encoding: bit 0 = writer holds; higher bits = 2 x active
   readers. Readers CAS in (+2) only while bit 0 is clear; the writer
   CASes 0 -> 1. Waiting runs through Combined_wait (the same
   attribute-driven spin-then-block machinery as Lock_core): failed
   probes spin per the Waiting attributes, then register on a sleeper
   list under the guard word and block until a release grants the lock
   directly (readers are granted their +2, a writer its bit, before
   being woken — a woken thread owns the lock, no re-probe). *)
type t = {
  rw_name : string;
  home_node : int;
  word : Memory.addr;
  guard : Memory.addr;  (* protects the sleeper lists and grants *)
  wwait : Memory.addr;  (* waiting-writer count (the monitored variable) *)
  pref : preference Attribute.t;  (* the reconfigurable bias attribute *)
  wait_policy : Waiting.t;
  mutable reader_sleepers : int list;  (* FIFO, oldest first *)
  mutable writer_sleepers : int list;  (* FIFO, oldest first *)
  loop : int Adaptive.t option;
  mutable reader_acqs : int;
  mutable writer_acqs : int;
  mutable reader_wait_ns : int;
  mutable writer_wait_ns : int;
}

let retry_gap_ns = 15_000

(* Probes before a contended reader/writer falls back to sleeping: a
   handful of retry_gap_ns-spaced attempts, the combined configuration
   the paper recommends as default. *)
let default_policy ~home () =
  Waiting.make ~node:home ~spin_count:6 ~delay_ns:retry_gap_ns ~backoff:false
    ~sleep:true ~timeout_ns:0 ()

let pref_value = function Reader_pref -> 0 | Writer_pref -> 1

(* The preference-adaptation policy as a declarative spec: flip to
   writer preference the moment a writer is seen waiting; give the
   readers their preference back only after [calm_repeats] consecutive
   writer-free samples (hysteresis, so one straggling writer does not
   bounce the bias). *)
let calm_repeats = 3

let policy_spec ?(name = "rw-lock") ?attribute ?(preference = Reader_pref) () =
  let module Spec = Adaptive_core.Policy.Spec in
  let cost = Lock_costs.configure_waiting_policy in
  {
    Spec.s_name = name;
    s_kind = "rw-lock";
    s_attribute = (match attribute with Some a -> a | None -> name ^ ".rw-preference");
    s_metric = "waiting-writers";
    s_monotone = Spec.Up_at_high;
    s_configs =
      [
        { Spec.c_name = "reader-pref"; c_value = 0 };
        { Spec.c_name = "writer-pref"; c_value = 1 };
      ];
    s_initial = pref_value preference;
    s_transitions =
      [
        {
          Spec.t_from = 0;
          t_cond = Spec.cond 1;
          t_target = 1;
          t_label = "writer-pref";
          t_repeats = 1;
          t_cost = cost;
        };
        {
          Spec.t_from = 1;
          t_cond = Spec.cond 0 ~hi:0;
          t_target = 0;
          t_label = "reader-pref";
          t_repeats = calm_repeats;
          t_cost = cost;
        };
      ];
    s_guard = None;
  }

let create ?(name = "rw-lock") ?(preference = Reader_pref) ?(adaptive = false)
    ?(sample_period = 2) ?policy ~home () =
  let words = Ops.alloc ~node:home 3 in
  Ops.mark_sync_words words;
  let wait_policy =
    match policy with Some p -> p | None -> default_policy ~home ()
  in
  let t =
    {
      rw_name = name;
      home_node = home;
      word = words.(0);
      guard = words.(1);
      wwait = words.(2);
      pref = Attribute.make_at ~name:"rw-preference" ~node:home preference;
      wait_policy;
      reader_sleepers = [];
      writer_sleepers = [];
      loop = None;
      reader_acqs = 0;
      writer_acqs = 0;
      reader_wait_ns = 0;
      writer_wait_ns = 0;
    }
  in
  if not adaptive then t
  else begin
    let sensor =
      Sensor.make ~name:(name ^ ".waiting-writers") ~period:sample_period
        ~overhead_instrs:40
        (fun () -> Ops.read words.(2))
    in
    (* The compiled spec: flip to writer preference on any waiting
       writer, back to reader preference after [calm_repeats]
       consecutive writer-free samples (the spec's hysteresis
       counter). *)
    let spec = policy_spec ~name ~preference () in
    let policy =
      Policy.Spec.compile spec
        ~read:(fun () -> pref_value (Attribute.get t.pref))
        ~apply:(fun v ->
          Attribute.set t.pref (if v = 1 then Writer_pref else Reader_pref);
          true)
        ~metric:(fun (waiting_writers : int) -> waiting_writers)
    in
    let loop = Adaptive.create ~name ~kind:"rw-lock" ~spec ~home ~sensor ~policy () in
    { t with loop = Some loop }
  end

let name t = t.rw_name
let home t = t.home_node
let preference t = Attribute.get t.pref
let set_preference t p = Attribute.set t.pref p
let preference_attr t = t.pref
let waiting_policy t = t.wait_policy
let loop t = t.loop
let readers_now t = Ops.read t.word / 2
let writers_waiting t = Ops.read t.wwait
let adaptations t = match t.loop with Some l -> Adaptive.adaptations l | None -> 0
let reader_acquisitions t = t.reader_acqs
let writer_acquisitions t = t.writer_acqs

let mean div acc n = if n = 0 then 0.0 else float_of_int acc /. float_of_int n /. div
let mean_writer_wait_ns t = mean 1.0 t.writer_wait_ns t.writer_acqs
let mean_reader_wait_ns t = mean 1.0 t.reader_wait_ns t.reader_acqs

(* Both reader and writer acquisitions annotate with the state word as
   the lock identity: the lock-order and discipline passes then see one
   lock regardless of mode, so a reader-side acquisition ordered
   against another lock closes the same cycle a writer-side one would. *)
let note_request t =
  Ops.annotate (Ops.A_lock_request { lock = t.word; lock_name = t.rw_name })

let note_acquired t =
  if Ops.annotations_enabled () then
    Ops.annotate
      (Ops.A_lock_acquire
         {
           lock = t.word;
           lock_name = t.rw_name;
           spin_wait = not (Attribute.get t.wait_policy.Waiting.sleep);
         })

let note_released t =
  Ops.annotate (Ops.A_lock_release { lock = t.word; lock_name = t.rw_name })

let guard_lock t =
  while not (Ops.test_and_set t.guard) do
    ()
  done

let guard_unlock t = Ops.write t.guard 0

(* One reader acquisition attempt. Under writer preference, defer to
   waiting writers (spinning or sleeping — both count in wwait). *)
let read_probe t =
  if Attribute.get t.pref = Writer_pref && Ops.read t.wwait > 0 then false
  else begin
    let v = Ops.read t.word in
    v land 1 = 0 && Ops.compare_and_swap t.word ~expected:v ~desired:(v + 2)
  end

let write_probe t = Ops.compare_and_swap t.word ~expected:0 ~desired:1

(* Sleep paths: register under the guard after one last probe — every
   grant also runs under the guard, so either the re-probe sees the
   state that would have woken us, or we are on the list before the
   granter looks. A woken thread was granted the lock (its +2 or the
   writer bit) before its wakeup, so waking is acquiring.

   The reader probe can also fail from pure CAS contention: an
   unguarded spinning reader's +2 (or a leaving reader's -2) between
   our read and CAS, with the word readable and no writer to defer to.
   Registering then would strand us — only [write_unlock] drains
   [reader_sleepers], and nothing guarantees a writer ever arrives —
   so retry until the probe either succeeds or fails for a reason that
   guarantees a future [write_unlock] (writer holds the word, or we
   defer to a waiting writer). *)
let reader_sleep t =
  guard_lock t;
  let rec settle () =
    if read_probe t then true
    else
      let deferring = Attribute.get t.pref = Writer_pref && Ops.read t.wwait > 0 in
      if (not deferring) && Ops.read t.word land 1 = 0 then settle ()
      else false
  in
  if settle () then guard_unlock t
  else begin
    t.reader_sleepers <- t.reader_sleepers @ [ Ops.self () ];
    guard_unlock t;
    Ops.block ();
    Ops.work_instrs 800 (* resume charge *)
  end

let writer_sleep t =
  guard_lock t;
  if write_probe t then guard_unlock t
  else begin
    t.writer_sleepers <- t.writer_sleepers @ [ Ops.self () ];
    guard_unlock t;
    Ops.block ();
    Ops.work_instrs 800 (* resume charge *)
  end

let read_lock t =
  let t0 = Ops.now () in
  Ops.work_instrs 180;
  note_request t;
  if not (read_probe t) then
    Combined_wait.wait ~policy:t.wait_policy ~since:t0
      ~probe:(fun ~gap_ns ->
        if read_probe t then true
        else begin
          Ops.work_instrs 180;
          Ops.work gap_ns;
          false
        end)
      ~sleep:(fun () -> reader_sleep t)
      ();
  note_acquired t;
  t.reader_acqs <- t.reader_acqs + 1;
  t.reader_wait_ns <- t.reader_wait_ns + (Ops.now () - t0)

(* The last leaving reader hands the lock to the oldest sleeping
   writer: CAS 0 -> 1 under the guard, then wake. A failed CAS means a
   fresh reader (or a spinning writer) slipped in; its own release will
   re-attempt the grant, so the chain never drops a sleeping writer. *)
let grant_writer_if_idle t =
  guard_lock t;
  (match t.writer_sleepers with
  | [] -> guard_unlock t
  | tid :: rest ->
    if write_probe t then begin
      t.writer_sleepers <- rest;
      guard_unlock t;
      Ops.wakeup tid
    end
    else guard_unlock t);
  ()

let read_unlock t =
  Ops.work_instrs 90;
  note_released t;
  let remaining = Ops.fetch_and_add t.word (-2) - 2 in
  if remaining = 0 then grant_writer_if_idle t;
  match t.loop with Some loop -> ignore (Adaptive.tick loop) | None -> ()

let write_lock t =
  let t0 = Ops.now () in
  Ops.work_instrs 220;
  note_request t;
  ignore (Ops.fetch_and_add t.wwait 1);
  if not (write_probe t) then
    Combined_wait.wait ~policy:t.wait_policy ~since:t0
      ~probe:(fun ~gap_ns ->
        if write_probe t then true
        else begin
          Ops.work_instrs 220;
          Ops.work gap_ns;
          false
        end)
      ~sleep:(fun () -> writer_sleep t)
      ();
  note_acquired t;
  ignore (Ops.fetch_and_add t.wwait (-1));
  t.writer_acqs <- t.writer_acqs + 1;
  t.writer_wait_ns <- t.writer_wait_ns + (Ops.now () - t0)

let write_unlock t =
  Ops.work_instrs 90;
  note_released t;
  guard_lock t;
  let writers_first =
    Attribute.get t.pref = Writer_pref || t.reader_sleepers = []
  in
  match (if writers_first then t.writer_sleepers else []) with
  | tid :: rest ->
    (* Direct handoff: the word stays held (bit 0 set); the sleeper
       owns it. *)
    t.writer_sleepers <- rest;
    guard_unlock t;
    Ops.wakeup tid
  | [] -> (
    match t.reader_sleepers with
    | [] -> (
      match t.writer_sleepers with
      | tid :: rest ->
        t.writer_sleepers <- rest;
        guard_unlock t;
        Ops.wakeup tid
      | [] ->
        Ops.write t.word 0;
        guard_unlock t)
    | readers ->
      (* Grant every sleeping reader its +2 in one write, then wake
         them; spinning readers may CAS in on top concurrently. *)
      t.reader_sleepers <- [];
      Ops.write t.word (2 * List.length readers);
      guard_unlock t;
      List.iter Ops.wakeup readers)

let with_read t f =
  read_lock t;
  match f () with
  | v ->
    read_unlock t;
    v
  | exception e ->
    read_unlock t;
    raise e

let with_write t f =
  write_lock t;
  match f () with
  | v ->
    write_unlock t;
    v
  | exception e ->
    write_unlock t;
    raise e
