open Butterfly
module Sensor = Adaptive_core.Sensor
module Policy = Adaptive_core.Policy
module Adaptive = Adaptive_core.Adaptive

type preference = Reader_pref | Writer_pref

(* State word encoding: bit 0 = writer holds; higher bits = 2 x active
   readers. Readers CAS in (+2) only while bit 0 is clear; the writer
   CASes 0 -> 1. *)
type t = {
  rw_name : string;
  word : Memory.addr;
  wwait : Memory.addr;  (* waiting-writer count (the monitored variable) *)
  mutable pref : preference;
  loop : int Adaptive.t option;
  mutable adaptation_count : int;
  mutable reader_acqs : int;
  mutable writer_acqs : int;
  mutable reader_wait_ns : int;
  mutable writer_wait_ns : int;
}

let retry_gap_ns = 15_000

let create ?(name = "rw-lock") ?(preference = Reader_pref) ?(adaptive = false)
    ?(sample_period = 2) ~home () =
  let words = Ops.alloc ~node:home 2 in
  Ops.mark_sync_words words;
  let t =
    {
      rw_name = name;
      word = words.(0);
      wwait = words.(1);
      pref = preference;
      loop = None;
      adaptation_count = 0;
      reader_acqs = 0;
      writer_acqs = 0;
      reader_wait_ns = 0;
      writer_wait_ns = 0;
    }
  in
  if not adaptive then t
  else begin
    let t_ref = ref t in
    let sensor =
      Sensor.make ~name:(name ^ ".waiting-writers") ~period:sample_period
        ~overhead_instrs:40
        (fun () -> Ops.read words.(1))
    in
    (* Hysteresis: require a few writer-free samples before giving the
       readers their preference back. *)
    let calm = ref 0 in
    let policy waiting_writers =
      let t = !t_ref in
      if waiting_writers > 0 then begin
        calm := 0;
        if t.pref = Reader_pref then
          Policy.reconfigure ~label:"writer-pref"
            ~cost:Lock_costs.configure_waiting_policy (fun () ->
              t.pref <- Writer_pref;
              t.adaptation_count <- t.adaptation_count + 1)
        else Policy.No_change
      end
      else begin
        incr calm;
        if t.pref = Writer_pref && !calm >= 3 then
          Policy.reconfigure ~label:"reader-pref"
            ~cost:Lock_costs.configure_waiting_policy (fun () ->
              t.pref <- Reader_pref;
              t.adaptation_count <- t.adaptation_count + 1)
        else Policy.No_change
      end
    in
    let loop = Adaptive.create ~name ~home ~sensor ~policy () in
    let t = { t with loop = Some loop } in
    t_ref := t;
    t
  end

let name t = t.rw_name
let preference t = t.pref
let set_preference t p = t.pref <- p
let readers_now t = Ops.read t.word / 2
let writers_waiting t = Ops.read t.wwait
let adaptations t = t.adaptation_count
let reader_acquisitions t = t.reader_acqs
let writer_acquisitions t = t.writer_acqs

let mean div acc n = if n = 0 then 0.0 else float_of_int acc /. float_of_int n /. div
let mean_writer_wait_ns t = mean 1.0 t.writer_wait_ns t.writer_acqs
let mean_reader_wait_ns t = mean 1.0 t.reader_wait_ns t.reader_acqs

(* Both reader and writer acquisitions annotate with the state word as
   the lock identity: the lock-order and discipline passes then see one
   lock regardless of mode, so a reader-side acquisition ordered
   against another lock closes the same cycle a writer-side one would.
   Both paths spin (no sleeping), hence [spin_wait = true]. *)
let note_request t =
  Ops.annotate (Ops.A_lock_request { lock = t.word; lock_name = t.rw_name })

let note_acquired t =
  Ops.annotate
    (Ops.A_lock_acquire { lock = t.word; lock_name = t.rw_name; spin_wait = true })

let note_released t =
  Ops.annotate (Ops.A_lock_release { lock = t.word; lock_name = t.rw_name })

let read_lock t =
  let t0 = Ops.now () in
  Ops.work_instrs 180;
  note_request t;
  let rec attempt () =
    (* Under writer preference, defer to queued writers. *)
    if t.pref = Writer_pref && Ops.read t.wwait > 0 then begin
      Ops.work retry_gap_ns;
      attempt ()
    end
    else begin
      let v = Ops.read t.word in
      if v land 1 = 1 then begin
        Ops.work retry_gap_ns;
        attempt ()
      end
      else if Ops.compare_and_swap t.word ~expected:v ~desired:(v + 2) then ()
      else attempt ()
    end
  in
  attempt ();
  note_acquired t;
  t.reader_acqs <- t.reader_acqs + 1;
  t.reader_wait_ns <- t.reader_wait_ns + (Ops.now () - t0)

let read_unlock t =
  Ops.work_instrs 90;
  note_released t;
  ignore (Ops.fetch_and_add t.word (-2));
  match t.loop with Some loop -> ignore (Adaptive.tick loop) | None -> ()

let write_lock t =
  let t0 = Ops.now () in
  Ops.work_instrs 220;
  note_request t;
  ignore (Ops.fetch_and_add t.wwait 1);
  let rec attempt () =
    if Ops.compare_and_swap t.word ~expected:0 ~desired:1 then ()
    else begin
      Ops.work retry_gap_ns;
      attempt ()
    end
  in
  attempt ();
  note_acquired t;
  ignore (Ops.fetch_and_add t.wwait (-1));
  t.writer_acqs <- t.writer_acqs + 1;
  t.writer_wait_ns <- t.writer_wait_ns + (Ops.now () - t0)

let write_unlock t =
  Ops.work_instrs 90;
  note_released t;
  Ops.write t.word 0

let with_read t f =
  read_lock t;
  match f () with
  | v ->
    read_unlock t;
    v
  | exception e ->
    read_unlock t;
    raise e

let with_write t f =
  write_lock t;
  match f () with
  | v ->
    write_unlock t;
    v
  | exception e ->
    write_unlock t;
    raise e
