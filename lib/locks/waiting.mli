(** The waiting-policy attributes of a configurable lock.

    These are the paper's mutable attributes (§5.1's table):

    {v
    spin-time  delay-time  sleep-time  timeout   resulting lock
        n          0           0          0      pure spin
        n          n           0          0      spin (back-off)
        0          0           n          0      pure sleep
        x          x           x          n      conditional sleep/spin
        n          n           n          x      mixed sleep/spin
    v}

    Interpretation: [spin_count] is the number of initial probes before
    the sleeping path is considered ([max_int] means spin forever);
    [delay_ns] is the gap between probes (0 = tight spinning; with
    [backoff] the gap doubles after each failed probe, Anderson-style);
    [sleep] enables blocking once the spin phase is exhausted;
    [timeout_ns] caps the spin phase's duration regardless of probe
    count (0 = no cap). Each is an {!Adaptive_core.Attribute} so
    mutability and ownership follow the adaptive-object model. *)

type t = {
  spin_count : int Adaptive_core.Attribute.t;
  delay_ns : int Adaptive_core.Attribute.t;
  backoff : bool Adaptive_core.Attribute.t;
  sleep : bool Adaptive_core.Attribute.t;
  timeout_ns : int Adaptive_core.Attribute.t;
}

val make :
  ?node:int ->
  spin_count:int ->
  delay_ns:int ->
  backoff:bool ->
  sleep:bool ->
  timeout_ns:int ->
  unit ->
  t
(** Fully explicit constructor; the named flavours below are the
    common rows of the table. *)

val pure_spin : ?node:int -> unit -> t
val backoff_spin : ?node:int -> ?delay_ns:int -> unit -> t
val pure_sleep : ?node:int -> unit -> t

val combined : ?node:int -> spins:int -> unit -> t
(** Spin [spins] probes, then block (the paper's combined lock of
    Figure 1, e.g. [~spins:10]). *)

val conditional : ?node:int -> timeout_ns:int -> unit -> t
(** Spin until the deadline, then block. *)

val mixed : ?node:int -> spins:int -> delay_ns:int -> unit -> t

val describe : t -> string
(** The "resulting lock" name from the paper's table. *)

val freeze : t -> unit
(** Make every attribute immutable (static lock flavours do this so a
    stray reconfiguration is an error). *)
