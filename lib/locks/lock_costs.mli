(** Calibrated per-kind overheads of the lock package.

    The paper's Tables 4–8 report whole-operation latencies on the
    GP1000 (68020 at roughly 16 MHz): those figures include the thread
    package's procedure and registration overheads, which dominate the
    raw memory-access times. Each profile below states those overheads
    in modeled instructions; together with the memory accesses each
    operation actually performs they reproduce the magnitude and —
    more importantly — the ordering of the paper's tables:
    atomior < spin = adaptive < blocking for Lock, and
    spin < adaptive < blocking for Unlock. *)

type profile = {
  lock_overhead_instrs : int;
      (** charged on every lock call (call + registration component) *)
  unlock_overhead_instrs : int;
  block_path_instrs : int;
      (** extra bookkeeping when a thread takes the sleeping path *)
  unlock_queue_check : bool;
      (** whether unlock must inspect the waiter queue (blocking-capable
          locks pay this even when uncontended) *)
}

val atomior : profile
(** The bare hardware primitive wrapper (Table 4's first row). *)

val spin : profile
val backoff : profile
val blocking : profile
val combined : profile
val reconfigurable : profile
val adaptive : profile

val mcs : profile
(** MCS-style queue lock: spin-lock entry overhead; the handoff's one
    remote write into the waiter's local module is charged by the
    protocol itself. *)

(** {1 Configuration-operation costs (Table 8)} *)

val acquisition_instrs : int
(** Explicit attribute-ownership acquisition (on top of its
    test-and-set). *)

val configure_waiting_policy : Adaptive_core.Cost.t
(** 1R 1W plus procedure overhead. *)

val configure_scheduler : Adaptive_core.Cost.t
(** Five writes (three submodules, set flag, reset flag) plus
    overhead. *)

val monitor_sample_instrs : int
(** Bookkeeping per monitor sample (on top of reading the sensed
    word). *)

val swap_implementation : Adaptive_core.Cost.t
(** Implementation hot-swap ({!Switch_lock}): freeze/commit writes
    plus drain bookkeeping, excluding the per-waiter kick writes the
    protocol performs explicitly. *)
