(** The configurable lock engine.

    One implementation parameterized by the {!Waiting} policy
    attributes, the {!Lock_sched} scheduler and a {!Lock_costs}
    profile; every flavour in the family (pure spin, back-off spin,
    blocking, combined, advisory, reconfigurable, adaptive) is a
    configuration of this engine, which is exactly the paper's point.

    Layout: the lock word, a guard word (protecting the registration
    queue) and the waiting-thread count live in simulated memory at the
    lock's home node, so callers on other nodes pay remote latencies
    and hot locks exhibit module contention.

    Protocol: [lock] first test-and-sets the lock word (the
    uncontended fast path). A contended caller enters the waiting
    count, runs the spin phase prescribed by the attributes and — if
    the policy sleeps — registers under the guard, re-checks the word
    (so an unlock racing past cannot strand it) and blocks. [unlock]
    hands the lock directly to the scheduler-selected sleeper (the
    word stays held) or clears the word for spinners. *)

type t

type advice = Advise_spin | Advise_sleep

exception Misuse of string
(** Raised by {!unlock} when the calling thread does not hold the lock
    (double unlock, or unlock of someone else's lock). The message
    names the thread(s) and the lock. Raised {e before} any simulated
    state is touched, so the lock stays consistent. *)

val create :
  ?name:string ->
  ?trace:bool ->
  ?sched:Lock_sched.kind ->
  ?advisory:bool ->
  home:int ->
  policy:Waiting.t ->
  costs:Lock_costs.profile ->
  unit ->
  t
(** Must run inside a simulation. [home] is the node holding the lock's
    words; [sched] defaults to FCFS; [trace] enables the
    waiting-pattern series. [advisory] locks honour {!advise} and clear
    the advice word at each unlock (an owner's advice applies to its
    own ownership span only). *)

val name : t -> string
val home : t -> int
val stats : t -> Lock_stats.t
val policy : t -> Waiting.t
val scheduler : t -> Lock_sched.t

val lock : t -> unit
val try_lock : t -> bool

val lock_timeout : t -> deadline_ns:int -> bool
(** Timed acquisition: attempt to take the lock until virtual time
    reaches [deadline_ns], then give up. Built on the waiting policy's
    spin machinery (probe gap, Anderson back-off); a timed waiter
    never sleeps, since a sleeping waiter can only be released by an
    unlock handoff, which cannot be cancelled. Returns whether the
    lock was acquired; a [false] return leaves no trace on the lock
    beyond a {!Lock_stats.timeouts} tick and is safe to retry. *)

val lock_retrying :
  t -> backoff:Engine.Backoff.t -> max_attempts:int -> slice_ns:int -> bool
(** [max_attempts] slices of [lock_timeout] of [slice_ns] each,
    separated by {!Engine.Backoff} delays (the processor is released
    between attempts). The recovery idiom for acquisitions that must
    survive a delayed — or dead — lock holder. *)

val unlock : t -> unit
(** Release the lock. Raises {!Misuse} if the caller is not the
    current owner. *)

val set_successor : t -> int -> unit
(** Designate the next owner (honoured by the Handoff scheduler at the
    next unlock, then cleared). *)

val advise : t -> advice option -> unit
(** Owner's advice to future contended requesters (advisory locks):
    [Some Advise_spin] forces spinning, [Some Advise_sleep] forces
    immediate blocking, [None] restores the attribute-driven policy.
    Writes the advice word (one simulated write). *)

val waiting_now : t -> int
(** Read the waiting-thread count word (a simulated read — this is
    what the lock monitor senses). *)

val waiting_addr : t -> Butterfly.Memory.addr
(** The waiting-count word itself, for sensors that read it raw. *)

val holder_check : t -> bool
(** Whether the lock word is currently held (simulated read; for tests
    and assertions). *)
