open Butterfly

type t = {
  lock_name : string;
  guard : Memory.addr;  (* protects queue + held *)
  held_word : Memory.addr;
  flags : Memory.addr array;  (* one per processor, homed locally *)
  mutable waiters : (int * int) list;  (* (tid, proc), FIFO, front first *)
  lock_stats : Lock_stats.t;
}

let create ?(name = "local-spin-lock") ~home () =
  let words = Ops.alloc ~node:home 2 in
  let processors = Ops.processors () in
  Ops.mark_sync_words words;
  let flags = Array.init processors (fun node -> Ops.alloc1 ~node ()) in
  Ops.mark_sync_words flags;
  {
    lock_name = name;
    guard = words.(0);
    held_word = words.(1);
    flags;
    waiters = [];
    lock_stats = Lock_stats.create name;
  }

let name t = t.lock_name
let stats t = t.lock_stats

let guard_lock t =
  while not (Ops.test_and_set t.guard) do
    ()
  done

let guard_unlock t = Ops.write t.guard 0

let lock t =
  Lock_stats.on_lock t.lock_stats;
  Ops.work_instrs Lock_costs.spin.Lock_costs.lock_overhead_instrs;
  let me = Ops.self () and my_proc = Ops.my_processor () in
  let t0 = Ops.now () in
  guard_lock t;
  if Ops.read t.held_word = 0 then begin
    Ops.write t.held_word 1;
    guard_unlock t;
    Lock_stats.on_acquired t.lock_stats ~wait_ns:0
  end
  else begin
    Lock_stats.on_contended t.lock_stats;
    (* Arm the local flag, then register and spin on local memory
       only. *)
    Ops.write t.flags.(my_proc) 0;
    t.waiters <- t.waiters @ [ (me, my_proc) ];
    guard_unlock t;
    let flag = t.flags.(my_proc) in
    let rec poll () =
      (* One fused iteration: local read plus the inter-probe gap when
         the flag is still unset. *)
      if Ops.read_hint ~gap_ns:1_000 ~expect:0 flag = 0 then begin
        Lock_stats.on_spin_probe t.lock_stats;
        poll ()
      end
    in
    poll ();
    Lock_stats.on_acquired t.lock_stats ~wait_ns:(Ops.now () - t0)
  end

let unlock t =
  Lock_stats.on_unlock t.lock_stats;
  Ops.work_instrs Lock_costs.spin.Lock_costs.unlock_overhead_instrs;
  guard_lock t;
  match t.waiters with
  | (_, proc) :: rest ->
    t.waiters <- rest;
    guard_unlock t;
    Lock_stats.on_handoff t.lock_stats;
    (* A single remote write into the waiter's local module. *)
    Ops.write t.flags.(proc) 1
  | [] ->
    Ops.write t.held_word 0;
    guard_unlock t
