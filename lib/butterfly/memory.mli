(** Simulated NUMA memory: one module (bank) of words per node.

    A word holds an OCaml [int]. Addresses are (node, index) pairs;
    accesses from the owning node are "local", others are "remote" and
    pay the interconnect latency from {!Config}. When contention
    modelling is enabled, each module serializes accesses: a module
    busy serving one access delays the next one, which is how hot-spot
    contention on a centralized lock or queue manifests.

    This module only implements the state machine (values, allocation,
    module occupancy). It charges no virtual time itself — the
    scheduler computes costs from {!Config} and {!reserve}. *)

type t

type addr
(** An allocated word. *)

val node_of : addr -> int
(** Owning node (memory module) of an address. *)

val index_of : addr -> int

val pp_addr : Format.formatter -> addr -> unit

val create : Config.t -> t

val nodes : t -> int

val alloc : t -> node:int -> int -> addr array
(** [alloc mem ~node n] allocates [n] fresh zero-initialized words in
    [node]'s module and returns their addresses (consecutive indices).
    Raises [Invalid_argument] on a bad node id. *)

val alloc1 : t -> node:int -> addr
(** Allocate a single word. *)

(** {1 Value operations}

    These mutate/inspect word values instantly; the scheduler invokes
    them at each operation's virtual completion time so that operations
    linearize in virtual-time order. *)

val read : t -> addr -> int
val write : t -> addr -> int -> unit

val fetch_and_or : t -> addr -> int -> int
(** The Butterfly's [atomior]: returns the previous value. *)

val fetch_and_add : t -> addr -> int -> int
val swap : t -> addr -> int -> int

val compare_and_swap : t -> addr -> expected:int -> desired:int -> bool

(** {1 Timing} *)

type access = Read_access | Write_access | Atomic_access

val latency : Config.t -> from_node:int -> addr -> access -> int
(** Raw wire+module latency of an access, ignoring contention. *)

val reserve : t -> Config.t -> from_node:int -> addr -> access -> start:int -> int
(** [reserve mem cfg ~from_node a kind ~start] books the access on the
    target module beginning no earlier than [start] and returns its
    completion time. With contention disabled this is
    [start + latency]; with contention enabled the access also waits
    for the module to be free and occupies it for the configured
    service time. *)

val quote : t -> Config.t -> from_node:int -> addr -> access -> start:int -> int
(** Pure preview of {!reserve}: the completion time the access would
    get, without booking it (no counter update, no occupancy change).
    The scheduler's fast path quotes first — to check the access
    against the preemption quantum — and only then commits with
    {!reserve}. The address must be allocated (see {!is_allocated}). *)

val is_allocated : t -> addr -> bool
(** Whether the address denotes an allocated word. The accessors raise
    [Invalid_argument] on unallocated addresses; the fast path checks
    beforehand so it can fall back to the effect and surface the same
    error. *)

val try_reserve :
  t -> Config.t -> from_node:int -> addr -> access -> start:int -> budget:int -> int
(** Single-pass fast-path charge: {!is_allocated}, {!quote} and
    {!reserve} fused. Returns the access duration (completion minus
    [start]) after booking it, or [-1] — with {e no} state change —
    when the address is unallocated or the duration would reach
    [budget] (the caller's remaining preemption slice), so the caller
    can fall back to the effect path. Arithmetic is identical to
    {!reserve}'s by construction. *)

(** {2 Fast-path value accessors}

    Unchecked variants of the accessors above, valid {e only}
    immediately after a successful {!try_reserve} on the same address
    (which proves it allocated). Semantically identical to their
    checked counterparts on valid addresses. *)

val fast_read : t -> addr -> int
val fast_write : t -> addr -> int -> unit
val fast_fetch_and_or : t -> addr -> int -> int
val fast_fetch_and_add : t -> addr -> int -> int
val fast_swap : t -> addr -> int -> int
val fast_compare_and_swap : t -> addr -> expected:int -> desired:int -> bool

val busy_until : t -> node:int -> int
(** Current occupancy horizon of a module (for tests/metrics). *)

(** {1 Fault injection}

    Host-side degradation knobs used by the fault injector
    ([lib/faults]). They mutate the module's timing model only; word
    values and allocation are untouched, so a plan that never fires
    leaves the machine bit-for-bit identical. *)

val set_degrade_factor : t -> node:int -> int -> unit
(** Multiply the module's wire latency and (under contention) service
    time by [factor]. [1] restores the healthy module. Raises
    [Invalid_argument] when [factor < 1] or the node is bad. *)

val degrade_factor : t -> node:int -> int

val stall_module : t -> node:int -> until_ns:int -> unit
(** Mark the module busy until [until_ns] (a temporarily stuck
    module): with contention modelling enabled, every access must wait
    for the stall to clear before being served. Never shortens an
    existing occupancy. *)

val words_used : t -> node:int -> int

val remote_accesses : t -> int
(** Count of remote (inter-node) accesses reserved so far. *)

val total_accesses : t -> int
