(* Flat machine state: the scheduler's hot per-processor and
   per-thread scalars as unboxed int arrays, plus the switchboard the
   zero-effect fast paths in [Ops] run against.

   One [t] belongs to one [Sched.t]. The scheduler publishes it to the
   running domain via {!current} for the duration of [Sched.run];
   [Ops] wrappers read it to decide, per operation, whether the
   current dispatch slice is in {e fast mode} — the single-runnable,
   unobserved, fault-free regime in which a memory access or work
   charge can be applied directly to these arrays instead of
   performing an effect. Everything here is plain mutable state; all
   synchronization discipline lives in [Sched]. *)

(* Thread status codes for the [status] array. *)
let st_ready = 0
let st_running = 1
let st_blocked = 2
let st_joining = 3
let st_finished = 4

type t = {
  mutable mem : Memory.t;
  mutable cfg : Config.t;
  mutable quantum : int;  (* [cfg.quantum_ns], [max_int] when None *)
  mutable max_events : int;
  mutable events : int;  (* the machine's canonical event count *)
  mutable abort_set : bool;  (* mirrors [Sched.request_abort] *)
  (* The dispatch slice in progress: set by the scheduler around every
     fiber resumption. [fast] is true only while the slice is eligible
     for direct charging (see [Sched.dispatch_thread]). *)
  mutable fast : bool;
  mutable tid : int;
  mutable pid : int;
  (* Per-processor clocks, indexed by pid. Fixed size. *)
  pnow : int array;
  busy : int array;
  slice : int array;
  last_tid : int array;
  (* Per-thread scalars, indexed by tid; grown by doubling. *)
  mutable status : int array;
  mutable tproc : int array;
  mutable prio : int array;
  mutable wake_at : int array;
  mutable cpu : int array;
  mutable penalty : int array;
  mutable work_left : int array;
  mutable tokens : int array;
  (* Batched counter accumulators: fast ops bump these; the scheduler
     folds them into the machine's [Engine.Counters] cells at the end
     of every slice, so counter totals are identical to the
     effect-per-op path at every observation point. *)
  mutable acc_events : int;
  mutable acc_read : int;
  mutable acc_write : int;
  mutable acc_atomic : int;
}

let dummy_cfg = { Config.default with Config.processors = 1 }

let create ~(cfg : Config.t) ~mem =
  let p = cfg.Config.processors in
  let n = 64 in
  {
    mem;
    cfg;
    quantum = (match cfg.Config.quantum_ns with Some q -> q | None -> max_int);
    max_events = cfg.Config.max_events;
    events = 0;
    abort_set = false;
    fast = false;
    tid = -1;
    pid = 0;
    pnow = Array.make p 0;
    busy = Array.make p 0;
    slice = Array.make p 0;
    last_tid = Array.make p (-1);
    status = Array.make n st_finished;
    tproc = Array.make n 0;
    prio = Array.make n 0;
    wake_at = Array.make n 0;
    cpu = Array.make n 0;
    penalty = Array.make n 0;
    work_left = Array.make n 0;
    tokens = Array.make n 0;
    acc_events = 0;
    acc_read = 0;
    acc_write = 0;
    acc_atomic = 0;
  }

(* Grow every per-thread array so [tid] is a valid index. *)
let ensure_thread st tid =
  let n = Array.length st.status in
  if tid >= n then begin
    let n' = max (n * 2) (tid + 1) in
    let grow fill a =
      let a' = Array.make n' fill in
      Array.blit a 0 a' 0 n;
      a'
    in
    st.status <- grow st_finished st.status;
    st.tproc <- grow 0 st.tproc;
    st.prio <- grow 0 st.prio;
    st.wake_at <- grow 0 st.wake_at;
    st.cpu <- grow 0 st.cpu;
    st.penalty <- grow 0 st.penalty;
    st.work_left <- grow 0 st.work_left;
    st.tokens <- grow 0 st.tokens
  end

(* The machine state of the run currently executing on this domain.
   [Sched.run] swaps its machine in (saving and restoring the previous
   binding, so nested runs compose); outside any run the binding is a
   dummy with [fast = false], which routes every [Ops] wrapper to its
   effect — exactly the historical behaviour. Domain-local, not
   global: [Engine.Runner] executes machines on several domains
   concurrently. *)
let current : t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      create ~cfg:dummy_cfg ~mem:(Memory.create dummy_cfg))

let get () = Domain.DLS.get current
let swap_in st =
  let prev = Domain.DLS.get current in
  Domain.DLS.set current st;
  prev
let restore st = Domain.DLS.set current st

(* Global kill switches, for A/B determinism tests and benchmarks.
   [fast_paths]: may a dispatch slice enter fast mode at all (checked
   once per dispatch). [op_fusion]: may the fused [Ops] wrappers use
   their single-effect encoding (checked per call). Both default on;
   turning either off must not change any simulated outcome — the
   determinism suite asserts exactly that. *)
let fast_paths : bool Atomic.t = Atomic.make true
let op_fusion : bool Atomic.t = Atomic.make true

let set_fast_paths b = Atomic.set fast_paths b
let fast_paths_enabled () = Atomic.get fast_paths
let set_op_fusion b = Atomic.set op_fusion b
let op_fusion_enabled () = Atomic.get op_fusion
