type addr = { node : int; index : int }

type bank = {
  mutable words : int array;
  mutable used : int;
  mutable busy : int;  (* module occupied until this virtual time *)
  mutable degrade : int;  (* latency multiplier; 1 = healthy *)
}

type t = {
  banks : bank array;
  mutable remote : int;
  mutable total : int;
}

let node_of a = a.node
let index_of a = a.index
let pp_addr ppf a = Format.fprintf ppf "%d:%d" a.node a.index

let create (cfg : Config.t) =
  let bank _ = { words = Array.make 256 0; used = 0; busy = 0; degrade = 1 } in
  { banks = Array.init cfg.processors bank; remote = 0; total = 0 }

let nodes t = Array.length t.banks

let check_node t node =
  if node < 0 || node >= Array.length t.banks then
    invalid_arg (Printf.sprintf "Memory: bad node %d" node)

let alloc t ~node n =
  check_node t node;
  if n <= 0 then invalid_arg "Memory.alloc: need a positive word count";
  let bank = t.banks.(node) in
  let needed = bank.used + n in
  if needed > Array.length bank.words then begin
    let capacity = max needed (Array.length bank.words * 2) in
    let words = Array.make capacity 0 in
    Array.blit bank.words 0 words 0 bank.used;
    bank.words <- words
  end;
  let base = bank.used in
  bank.used <- needed;
  Array.init n (fun i -> { node; index = base + i })

let alloc1 t ~node = (alloc t ~node 1).(0)

let bank_exn t a =
  let bank = t.banks.(a.node) in
  if a.index >= bank.used then
    invalid_arg (Printf.sprintf "Memory: unallocated address %d:%d" a.node a.index);
  bank

let read t a = (bank_exn t a).words.(a.index)
let write t a v = (bank_exn t a).words.(a.index) <- v

let fetch_and_or t a v =
  let bank = bank_exn t a in
  let prev = bank.words.(a.index) in
  bank.words.(a.index) <- prev lor v;
  prev

let fetch_and_add t a v =
  let bank = bank_exn t a in
  let prev = bank.words.(a.index) in
  bank.words.(a.index) <- prev + v;
  prev

let swap t a v =
  let bank = bank_exn t a in
  let prev = bank.words.(a.index) in
  bank.words.(a.index) <- v;
  prev

let compare_and_swap t a ~expected ~desired =
  let bank = bank_exn t a in
  if bank.words.(a.index) = expected then begin
    bank.words.(a.index) <- desired;
    true
  end
  else false

type access = Read_access | Write_access | Atomic_access

let latency (cfg : Config.t) ~from_node a access =
  let local = from_node = a.node in
  match access with
  | Read_access -> if local then cfg.local_read_ns else cfg.remote_read_ns
  | Write_access -> if local then cfg.local_write_ns else cfg.remote_write_ns
  | Atomic_access ->
    (* A read-modify-write occupies the module for a read plus a write,
       plus the interlock overhead. *)
    if local then cfg.local_read_ns + cfg.local_write_ns + cfg.atomic_extra_ns
    else cfg.remote_read_ns + cfg.local_write_ns + cfg.atomic_extra_ns

let reserve t (cfg : Config.t) ~from_node a access ~start =
  let _ = bank_exn t a in
  t.total <- t.total + 1;
  if from_node <> a.node then t.remote <- t.remote + 1;
  (* Fault injection: a degraded module multiplies both the wire
     latency and (under contention) its service occupancy. With the
     default factor of 1 the arithmetic below is exactly the healthy
     path, so fault-free runs are byte-identical. *)
  let degrade = t.banks.(a.node).degrade in
  let wire = degrade * latency cfg ~from_node a access in
  if not cfg.contention then start + wire
  else begin
    let bank = t.banks.(a.node) in
    let grant = max start bank.busy in
    let service =
      match access with
      | Atomic_access -> 2 * cfg.module_service_ns
      | Read_access | Write_access -> cfg.module_service_ns
    in
    bank.busy <- grant + (degrade * service);
    grant + wire
  end

let busy_until t ~node =
  check_node t node;
  t.banks.(node).busy

let set_degrade_factor t ~node factor =
  check_node t node;
  if factor < 1 then invalid_arg "Memory.set_degrade_factor: factor must be >= 1";
  t.banks.(node).degrade <- factor

let degrade_factor t ~node =
  check_node t node;
  t.banks.(node).degrade

let stall_module t ~node ~until_ns =
  check_node t node;
  let bank = t.banks.(node) in
  if until_ns > bank.busy then bank.busy <- until_ns

let words_used t ~node =
  check_node t node;
  t.banks.(node).used

let remote_accesses t = t.remote
let total_accesses t = t.total
