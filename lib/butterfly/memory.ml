(* An address is an immediate int — module number in the high bits,
   word index in the low 24 — so address arrays are flat int arrays
   and no access chases a pointer to find its target. The encoding is
   private to this module ([addr] is abstract in the interface). *)
type addr = int

let index_bits = 24
let index_mask = (1 lsl index_bits) - 1
let[@inline] mk_addr node index = (node lsl index_bits) lor index

type bank = {
  mutable words : int array;
  mutable used : int;
  mutable busy : int;  (* module occupied until this virtual time *)
  mutable degrade : int;  (* latency multiplier; 1 = healthy *)
}

type t = {
  banks : bank array;
  mutable remote : int;
  mutable total : int;
}

let[@inline] node_of a = a lsr index_bits
let[@inline] index_of a = a land index_mask
let pp_addr ppf a = Format.fprintf ppf "%d:%d" (node_of a) (index_of a)

let create (cfg : Config.t) =
  let bank _ = { words = Array.make 256 0; used = 0; busy = 0; degrade = 1 } in
  { banks = Array.init cfg.processors bank; remote = 0; total = 0 }

let nodes t = Array.length t.banks

let check_node t node =
  if node < 0 || node >= Array.length t.banks then
    invalid_arg (Printf.sprintf "Memory: bad node %d" node)

let alloc t ~node n =
  check_node t node;
  if n <= 0 then invalid_arg "Memory.alloc: need a positive word count";
  let bank = t.banks.(node) in
  let needed = bank.used + n in
  if needed > index_mask then invalid_arg "Memory.alloc: module full";
  if needed > Array.length bank.words then begin
    let capacity = max needed (Array.length bank.words * 2) in
    let words = Array.make capacity 0 in
    Array.blit bank.words 0 words 0 bank.used;
    bank.words <- words
  end;
  let base = bank.used in
  bank.used <- needed;
  Array.init n (fun i -> mk_addr node (base + i))

let alloc1 t ~node = (alloc t ~node 1).(0)

let bank_exn t a =
  let bank = t.banks.(node_of a) in
  if index_of a >= bank.used then
    invalid_arg
      (Printf.sprintf "Memory: unallocated address %d:%d" (node_of a) (index_of a));
  bank

let read t a = (bank_exn t a).words.(index_of a)
let write t a v = (bank_exn t a).words.(index_of a) <- v

let fetch_and_or t a v =
  let bank = bank_exn t a in
  let i = index_of a in
  let prev = bank.words.(i) in
  bank.words.(i) <- prev lor v;
  prev

let fetch_and_add t a v =
  let bank = bank_exn t a in
  let i = index_of a in
  let prev = bank.words.(i) in
  bank.words.(i) <- prev + v;
  prev

let swap t a v =
  let bank = bank_exn t a in
  let i = index_of a in
  let prev = bank.words.(i) in
  bank.words.(i) <- v;
  prev

let compare_and_swap t a ~expected ~desired =
  let bank = bank_exn t a in
  let i = index_of a in
  if bank.words.(i) = expected then begin
    bank.words.(i) <- desired;
    true
  end
  else false

type access = Read_access | Write_access | Atomic_access

let latency (cfg : Config.t) ~from_node a access =
  let local = from_node = node_of a in
  match access with
  | Read_access -> if local then cfg.local_read_ns else cfg.remote_read_ns
  | Write_access -> if local then cfg.local_write_ns else cfg.remote_write_ns
  | Atomic_access ->
    (* A read-modify-write occupies the module for a read plus a write,
       plus the interlock overhead. *)
    if local then cfg.local_read_ns + cfg.local_write_ns + cfg.atomic_extra_ns
    else cfg.remote_read_ns + cfg.local_write_ns + cfg.atomic_extra_ns

(* Validity probe for the fast path: can this address be accessed at
   all? (The effect path reaches the same answer through [bank_exn]'s
   raise; the fast path must know beforehand, because an invalid
   access has to fall back to the effect so the error surfaces
   identically.) *)
let is_allocated t a =
  let node = node_of a in
  (* [node_of]/[index_of] cannot be negative by construction. *)
  node < Array.length t.banks && index_of a < t.banks.(node).used

(* Pure preview of [reserve]: the completion time the access would
   get, with no counter update and no bank-occupancy commitment. The
   fast path quotes first (to check the preemption quantum), then
   commits with [reserve]; the two must stay arithmetically
   identical. *)
let quote t (cfg : Config.t) ~from_node a access ~start =
  let bank = t.banks.(node_of a) in
  let wire = bank.degrade * latency cfg ~from_node a access in
  if not cfg.contention then start + wire else max start bank.busy + wire

let reserve t (cfg : Config.t) ~from_node a access ~start =
  let _ = bank_exn t a in
  t.total <- t.total + 1;
  if from_node <> node_of a then t.remote <- t.remote + 1;
  (* Fault injection: a degraded module multiplies both the wire
     latency and (under contention) its service occupancy. With the
     default factor of 1 the arithmetic below is exactly the healthy
     path, so fault-free runs are byte-identical. *)
  let degrade = t.banks.(node_of a).degrade in
  let wire = degrade * latency cfg ~from_node a access in
  if not cfg.contention then start + wire
  else begin
    let bank = t.banks.(node_of a) in
    let grant = max start bank.busy in
    let service =
      match access with
      | Atomic_access -> 2 * cfg.module_service_ns
      | Read_access | Write_access -> cfg.module_service_ns
    in
    bank.busy <- grant + (degrade * service);
    grant + wire
  end

(* The fast path's single-pass access: validity check, quote and
   commitment fused, so one access costs one bank lookup and one
   latency computation instead of three and two. Arithmetically this
   is exactly [is_allocated] + [quote] + [reserve]; it must stay so. *)
let try_reserve t (cfg : Config.t) ~from_node a access ~start ~budget =
  let node = node_of a in
  if node >= Array.length t.banks then -1
  else begin
    let bank = Array.unsafe_get t.banks node in
    if index_of a >= bank.used then -1
    else begin
      let local = from_node = node in
      let wire =
        bank.degrade
        *
        match access with
        | Read_access -> if local then cfg.local_read_ns else cfg.remote_read_ns
        | Write_access -> if local then cfg.local_write_ns else cfg.remote_write_ns
        | Atomic_access ->
          if local then cfg.local_read_ns + cfg.local_write_ns + cfg.atomic_extra_ns
          else cfg.remote_read_ns + cfg.local_write_ns + cfg.atomic_extra_ns
      in
      if not cfg.contention then begin
        if wire >= budget then -1
        else begin
          t.total <- t.total + 1;
          if not local then t.remote <- t.remote + 1;
          wire
        end
      end
      else begin
        let grant = max start bank.busy in
        let ns = grant + wire - start in
        if ns >= budget then -1
        else begin
          t.total <- t.total + 1;
          if not local then t.remote <- t.remote + 1;
          let service =
            match access with
            | Atomic_access -> 2 * cfg.module_service_ns
            | Read_access | Write_access -> cfg.module_service_ns
          in
          bank.busy <- grant + (bank.degrade * service);
          ns
        end
      end
    end
  end

(* Value accessors for the fast path, valid ONLY immediately after a
   successful [try_reserve] on the same address (which proves
   [a.node]/[a.index] in range), so the checked [bank_exn] chain can be
   skipped. *)
let[@inline] unsafe_words t a = (Array.unsafe_get t.banks (node_of a)).words

let[@inline] fast_read t a = Array.unsafe_get (unsafe_words t a) (index_of a)
let[@inline] fast_write t a v = Array.unsafe_set (unsafe_words t a) (index_of a) v

let[@inline] fast_fetch_and_or t a v =
  let words = unsafe_words t a in
  let i = index_of a in
  let prev = Array.unsafe_get words i in
  Array.unsafe_set words i (prev lor v);
  prev

let[@inline] fast_fetch_and_add t a v =
  let words = unsafe_words t a in
  let i = index_of a in
  let prev = Array.unsafe_get words i in
  Array.unsafe_set words i (prev + v);
  prev

let[@inline] fast_swap t a v =
  let words = unsafe_words t a in
  let i = index_of a in
  let prev = Array.unsafe_get words i in
  Array.unsafe_set words i v;
  prev

let[@inline] fast_compare_and_swap t a ~expected ~desired =
  let words = unsafe_words t a in
  let i = index_of a in
  if Array.unsafe_get words i = expected then begin
    Array.unsafe_set words i desired;
    true
  end
  else false

let busy_until t ~node =
  check_node t node;
  t.banks.(node).busy

let set_degrade_factor t ~node factor =
  check_node t node;
  if factor < 1 then invalid_arg "Memory.set_degrade_factor: factor must be >= 1";
  t.banks.(node).degrade <- factor

let degrade_factor t ~node =
  check_node t node;
  t.banks.(node).degrade

let stall_module t ~node ~until_ns =
  check_node t node;
  let bank = t.banks.(node) in
  if until_ns > bank.busy then bank.busy <- until_ns

let words_used t ~node =
  check_node t node;
  t.banks.(node).used

let remote_accesses t = t.remote
let total_accesses t = t.total
