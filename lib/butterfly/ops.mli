(** Operations available to code running {e inside} the simulated
    machine.

    Each function performs an OCaml effect handled by the scheduler
    ({!Sched}): the calling fiber is suspended, virtual time is
    charged according to the machine {!Config}, and the fiber resumes
    when its operation completes in virtual time. Calling any of these
    outside a running simulation raises [Effect.Unhandled] (wrapped by
    [Sched] entry points into a clearer error).

    Thread identifiers are plain ints ({!tid}); the higher-level
    {!Cthreads} library wraps them in a friendlier API. *)

type tid = int

type fork_spec = {
  f : unit -> unit;
  proc : int option;  (** pin to a processor, or let the machine place it *)
  prio : int;  (** larger = more important; default 0 *)
  name : string;
}

(** Structured annotations for observers ({!Sched.add_annot_hook}):
    free of virtual-time charge, invisible to the simulated program,
    and consumed by the correctness tooling in [lib/analysis].

    - [A_sync_word]: the word belongs to a synchronization primitive's
      internal state (lock words, guard words, waiter counters); race
      analysis must not treat its raw accesses as application data.
    - [A_relaxed_word]: the word is read/written racily {e on purpose}
      (e.g. the TSP solvers' best-bound copies); the race detector
      skips it, like a C11 relaxed atomic.
    - [A_lock_request]: a blocking acquisition of the lock has begun.
      Emitted {e before} any waiting, so lock-order analysis sees the
      request even when the wait never completes (a real deadlock).
    - [A_lock_acquire]/[A_lock_release]: a mutual-exclusion span over
      the lock identified by its lock word. [spin_wait] is true when
      the lock's current waiting policy never sleeps, so waiters burn
      their processor for as long as the owner holds it.
    - [A_adaptation]: an adaptive object applied a reconfiguration
      ([kind] is the object family, e.g. ["lock"] or ["barrier"];
      [label] names the transition). Emitted by the adaptive feedback
      loop so recorded traces — including predictive runs — see every
      reconfiguration in its linearized position. *)
type annotation =
  | A_sync_word of Memory.addr
  | A_relaxed_word of Memory.addr
  | A_lock_request of { lock : Memory.addr; lock_name : string }
  | A_lock_acquire of { lock : Memory.addr; lock_name : string; spin_wait : bool }
  | A_lock_release of { lock : Memory.addr; lock_name : string }
  | A_adaptation of { obj_name : string; kind : string; label : string }

(** Outcome of one fused lock probe (see {!lock_probe_timed}). *)
type probe_result = Probe_acquired | Probe_expired | Probe_retrying

(** The raw effect constructors, exposed so {!Sched} can handle them.
    Client code should use the wrapper functions below instead. *)
type _ Effect.t +=
  | E_alloc : int option * int -> Memory.addr array Effect.t
  | E_read : Memory.addr -> int Effect.t
  | E_write : Memory.addr * int -> unit Effect.t
  | E_fetch_and_or : Memory.addr * int -> int Effect.t
  | E_fetch_and_add : Memory.addr * int -> int Effect.t
  | E_swap : Memory.addr * int -> int Effect.t
  | E_cas : Memory.addr * int * int -> bool Effect.t
  | E_work : int -> unit Effect.t
  | E_work_instrs : int -> unit Effect.t
  | E_delay : int -> unit Effect.t
  | E_now : int Effect.t
  | E_fork : fork_spec -> tid Effect.t
  | E_join : tid -> unit Effect.t
  | E_yield : unit Effect.t
  | E_block : unit Effect.t
  | E_wakeup : tid -> unit Effect.t
  | E_self : tid Effect.t
  | E_my_processor : int Effect.t
  | E_set_priority : tid * int -> unit Effect.t
  | E_priority_of : tid -> int Effect.t
  | E_processors : int Effect.t
  | E_random : int -> int Effect.t
  | E_trace : string -> unit Effect.t
  | E_annotate : annotation -> unit Effect.t
  | E_thread_name : tid -> string Effect.t
  | E_lock_probe : Memory.addr * int * int * int * int -> probe_result Effect.t
      (** [(word, pre_instrs, retry_instrs, gap_ns, until)]; one fused
          spin-lock probe iteration (see {!lock_probe_timed}). *)
  | E_read_hint : Memory.addr * int * int * int -> int Effect.t
      (** [(addr, pre_ns, gap_ns, expect)]; one fused hint-spin
          iteration (see {!read_hint}). *)

(** {1 Memory} *)

val alloc : ?node:int -> int -> Memory.addr array
(** Allocate words in a memory module ([node] defaults to the calling
    thread's current processor). Charged as one local write. *)

val alloc1 : ?node:int -> unit -> Memory.addr

val read : Memory.addr -> int
val write : Memory.addr -> int -> unit

val fetch_and_or : Memory.addr -> int -> int
(** The hardware [atomior] primitive (returns the previous value);
    [test_and_set] below is the common idiom. *)

val fetch_and_add : Memory.addr -> int -> int
val swap : Memory.addr -> int -> int
val compare_and_swap : Memory.addr -> expected:int -> desired:int -> bool

val test_and_set : Memory.addr -> bool
(** [test_and_set a] is [fetch_and_or a 1 = 0]: true iff the caller
    obtained the flag. *)

(** {1 Time} *)

val work : int -> unit
(** [work ns] consumes [ns] nanoseconds of pure computation on the
    calling thread's processor. *)

val work_instrs : int -> unit
(** Computation expressed in modeled instructions. *)

val delay : int -> unit
(** [delay ns] waits without occupying the processor: other ready
    threads on the same processor may run meanwhile. This is the
    back-off primitive. *)

val now : unit -> int
(** Current virtual time (free of charge). *)

(** {1 Fused operations}

    One spin-loop iteration as a single effect. Semantically these are
    {e exactly} their decomposed sequences (which is what they execute
    in fast mode or with fusion disabled — see [Sched.set_op_fusion]);
    the fused encoding only cuts the number of continuation captures
    per iteration from up to four to one. *)

val lock_probe_timed :
  ?pre_instrs:int -> ?retry_instrs:int -> ?gap_ns:int -> until:int ->
  Memory.addr -> probe_result
(** [lock_probe_timed ~pre_instrs ~retry_instrs ~gap_ns ~until word] is
    the sequence
    [work_instrs pre_instrs; test_and_set word] — returning
    [Probe_acquired] on success — followed, on failure, by either
    [Probe_expired] (when [until >= 0] and virtual time has reached
    [until], checked at the test-and-set's completion, before any
    retry cost) or [work_instrs retry_instrs; work gap_ns] and
    [Probe_retrying]. [until = -1] means no deadline. *)

val lock_probe :
  ?pre_instrs:int -> ?retry_instrs:int -> ?gap_ns:int -> Memory.addr -> bool
(** Deadline-free {!lock_probe_timed}: true iff the word was won. *)

val read_hint : ?pre_ns:int -> ?gap_ns:int -> expect:int -> Memory.addr -> int
(** [read_hint ~pre_ns ~gap_ns ~expect a] is
    [work pre_ns; let v = read a in (if v = expect then work gap_ns); v]
    — one polling iteration of a hint-word spin, fused. *)

(** {1 Threads} *)

val fork : fork_spec -> tid
val join : tid -> unit
val yield : unit -> unit

val block : unit -> unit
(** Deschedule the calling thread until some other thread calls
    {!wakeup} on it. A wakeup that arrives first is not lost: the next
    [block] returns immediately. *)

val wakeup : tid -> unit

val self : unit -> tid
val my_processor : unit -> int
val set_priority : tid -> int -> unit
val priority_of : tid -> int

val processors : unit -> int
(** Number of processors of the running machine. *)

val random : int -> int
(** Deterministic draw from the simulation's RNG stream, uniform in
    [\[0, bound)]. Free of virtual-time charge. *)

val trace : string -> unit
(** Emit a debug trace line (visible when the simulation's [on_trace]
    hook is installed). Free of charge. *)

(** {1 Analysis annotations} *)

val annotate : annotation -> unit
(** Publish an {!annotation} to the machine's annotation hooks. Free
    of virtual-time charge; a no-op when no hook is installed. With
    zero subscribers the call returns after a single flag read — no
    effect is performed at all. *)

val annotations_enabled : unit -> bool
(** True when the machine currently running on this domain has at
    least one annotation subscriber. Hot synchronization paths check
    this before building annotation payloads, so with no subscriber
    they allocate nothing at all. Host-side and free of charge. *)

val set_annotations_enabled : bool -> unit
(** Scheduler-internal: {!Sched.run} publishes its machine's
    subscriber state here for the duration of the run. Not for
    simulated code. *)

val mark_sync_words : Memory.addr array -> unit
(** Register words as synchronization-internal state
    ([A_sync_word]). Synchronization primitives call this at creation
    time for every simulated word they own. *)

val mark_relaxed_word : Memory.addr -> unit
(** Register a word as intentionally racy ([A_relaxed_word]). *)

val thread_name : tid -> string
(** Name a thread was forked with (for diagnostics). Free of charge.
    Raises [Invalid_argument] on an unknown tid. *)
