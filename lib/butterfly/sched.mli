(** The discrete-event scheduler: runs effect-handled fibers over the
    simulated machine in deterministic virtual time.

    One [t] value is one machine instance. {!run} starts a main thread
    on processor 0 and drives the event loop until every thread has
    finished (or a deadlock / event-limit abort). The dispatch rule
    always picks the processor whose next runnable thread has the
    smallest virtual timestamp, so memory operations linearize in
    virtual-time order across the whole machine and runs are
    bit-for-bit reproducible.

    A [t] is single-use: create a fresh machine per experiment. *)

type t

exception Deadlock of string
(** No thread is runnable but blocked/joining threads remain. The
    payload lists them, each with its last blocking site (the lock it
    last requested) and the locks it still holds, whenever lock
    annotations were flowing during the run (i.e. at least one
    annotation subscriber — see {!add_annot_hook}). *)

exception Event_limit_exceeded
(** The configured [max_events] safety valve fired. *)

exception Thread_crash of string * exn
(** A simulated thread raised; payload is the thread name and the
    original exception. *)

exception Abort_requested of string
(** A host-side observer (typically the {!request_abort} watchdog
    path) asked the run to stop; the payload is its reason. *)

val create : Config.t -> t

val run : ?main_name:string -> t -> (unit -> unit) -> unit
(** [run t main] executes [main] as the first thread (on processor 0)
    and returns when all simulated threads have terminated. Raises
    [Invalid_argument] if this machine already ran. Before the first
    dispatch, every {!at_run_start} hook fires on the calling domain. *)

val at_run_start : (unit -> unit) -> unit
(** Register a host-side hook fired at the start of every {!run}, on
    the domain about to run the machine — how libraries above the
    machine reset per-domain state keyed to "the current simulation"
    (the adaptive-object registry uses it to drop entries from earlier
    runs). Intended to be called once at module-initialisation time;
    hooks fire in registration order and are never removed. *)

(** {1 Structured run outcomes}

    [run] aborts by exception ({!Deadlock}, {!Event_limit_exceeded},
    {!Thread_crash}, {!Abort_requested}). {!run_outcome} is the
    recovery-oriented entry point: the same run, but every abort is
    caught and returned as a structured {!outcome} carrying the reason
    and a full deterministic diagnostic dump of the machine. *)

type abort_reason =
  | Deadlocked of string  (** the {!Deadlock} payload *)
  | Event_limit
  | Crashed of string * exn  (** thread name and original exception *)
  | Stop_requested of string  (** {!request_abort} reason (watchdog) *)

type outcome = Completed | Aborted of { reason : abort_reason; diagnostics : string }

val abort_reason_message : abort_reason -> string
(** One-line human-readable rendering of the reason. *)

val run_outcome : ?main_name:string -> t -> (unit -> unit) -> outcome
(** Like {!run}, but never lets a scheduler abort escape as an
    exception: the machine's state at the moment of the abort is
    rendered by {!diagnostics} and returned alongside the reason. *)

val diagnostics : t -> string
(** Deterministic dump of the machine: virtual time, per-processor
    clocks and queue lengths, and one line per thread (state, cpu,
    last blocking site and held locks when annotations were flowing).
    Contains no wall-clock or host state, so identical runs dump
    identical bytes. *)

(** {1 Fault-injection entry points}

    Host-side hooks used by the fault injector ([lib/faults]) and the
    watchdog ([lib/monitoring]). None of them may be called from
    simulated code. A machine with no timers, penalties or abort
    requests behaves bit-for-bit like a fault-free one. *)

val add_timer : t -> at:int -> (unit -> unit) -> unit
(** Schedule a host-side callback at virtual time [at]. The callback
    runs between dispatches, before the machine's virtual time first
    reaches [at]; callbacks fire in (time, insertion) order and may
    mutate the machine (stall processors, kill threads, degrade memory
    modules) or re-arm further timers. Timers still pending when the
    last thread finishes are discarded — the run's final clocks are
    those of the workload, never of unreached faults. *)

val pending_timers : t -> int

val request_abort : t -> string -> unit
(** Ask the run loop to stop before its next dispatch. [run] raises
    {!Abort_requested}; {!run_outcome} returns [Aborted] with reason
    [Stop_requested]. The first request wins; later ones are ignored. *)

val abort_requested : t -> string option

val stall_processor : t -> proc:int -> ns:int -> unit
(** Advance a processor's clock by [ns] without running anything: the
    processor is offline for that window of virtual time. *)

val penalize_thread : t -> tid:int -> ns:int -> bool
(** Charge [ns] of stall to a thread at its next dispatch (the
    lock-holder-delay fault). Returns [false] when the thread is
    unknown or already finished. *)

val kill_thread : t -> tid:int -> at:int -> bool
(** Crash a thread at virtual time [at]: its suspended computation is
    discarded (no cleanup runs), joiners are woken as for a normal
    termination, and any locks it holds stay held. Returns [false]
    when the thread is unknown or already finished (the kill is then a
    no-op, which keeps seeded fault plans safe to apply blindly). *)

val machine_time : t -> int
(** Max over all processor clocks right now (host-side; valid during
    and after the run — unlike {!final_time}, which is the completed
    run's last event time). *)

val config : t -> Config.t
val memory : t -> Memory.t

val counters : t -> Engine.Counters.t
(** Machine-level event counters: ["mem.read"], ["mem.write"],
    ["mem.atomic"], ["sched.switches"], ["sched.blocks"],
    ["sched.wakeups"], ["sched.forks"], ["sched.events"], ... *)

val final_time : t -> int
(** Virtual time at which the last event executed (valid after
    {!run}). *)

val events_executed : t -> int
(** Simulated events executed by this machine so far: dispatches plus
    fast-path operations, i.e. exactly the count the ["sched.events"]
    counter reports and [max_events] bounds. Valid during and after the
    run. *)

(** {1 Performance switches}

    Two purely-mechanical switches over how the scheduler executes —
    never over what it computes. Toggling either must not change any
    simulated outcome (final times, counters, schedules, diagnostics);
    the determinism test suite asserts exactly that. Both default on. *)

val set_fast_paths : bool -> unit
(** Allow dispatch slices to charge eligible operations directly on
    flat machine state instead of performing an effect per operation.
    A slice is eligible only when nothing can observe or perturb the
    machine mid-slice: no instrumentation subscriber, no pending fault
    timer or abort, no schedule control, and every other processor
    idle. Global (all machines, all domains). *)

val fast_paths_enabled : unit -> bool

val set_op_fusion : bool -> unit
(** Allow the fused [Ops] wrappers ([Ops.lock_probe],
    [Ops.read_hint]) to encode a spin iteration as a single staged
    effect instead of one effect per component. Global. *)

val op_fusion_enabled : unit -> bool

val domain_events_total : unit -> int
(** Cumulative {!events_executed} over every run completed on the
    calling domain (including aborted ones). Benchmarks measure the
    delta around a body to turn wall-clock ns-per-run into simulated
    events per second. *)

val processor_busy_ns : t -> int array
(** Per-processor busy time (cpu actually consumed by threads),
    valid after {!run}. *)

val runq_length : t -> int -> int
(** Number of runnable threads currently queued on a processor (used
    by advisory waiting policies and monitors). *)

val live_threads : t -> int

val add_trace_hook : t -> (time:int -> tid:int -> string -> unit) -> unit
(** Subscribe a sink for {!Ops.trace} messages. Like every other
    stream on the machine this is a bus: all subscribed sinks see
    every message, in subscription order. *)

val set_trace_hook : t -> (time:int -> tid:int -> string -> unit) -> unit
(** @deprecated Alias for {!add_trace_hook}, kept for source
    compatibility. Despite the historical name it no longer replaces
    previously installed hooks. *)

val clear_trace_hooks : t -> unit
val trace_hook_count : t -> int

(** {1 Structured scheduling events}

    A low-overhead instrumentation stream in the spirit of the paper's
    general-purpose thread monitor: when a hook is installed, the
    scheduler emits one event per scheduling action. With no hook
    installed the cost is a single branch.

    Each stream is a {e bus}: any number of observers may subscribe
    with the [add_*_hook] functions and every one of them sees every
    emission, in subscription order — an event recorder and the
    sanitizers of [lib/analysis] can watch the same run concurrently. *)

type event_kind =
  | Ev_fork  (** thread created ([tid] is the child, [other] the parent) *)
  | Ev_switch  (** processor switched to a different thread *)
  | Ev_preempt  (** quantum expired; thread demoted behind its queue *)
  | Ev_block  (** thread went to sleep *)
  | Ev_wakeup  (** blocked thread made runnable again ([other] is the waker) *)
  | Ev_token  (** wakeup of a thread that was not blocked: a wake token
                  was granted ([tid] the target, [other] the waker) *)
  | Ev_token_use  (** a block absorbed a pending wake token and returned
                      immediately ([other] is the original waker) *)
  | Ev_join  (** a joiner resumed because its target finished ([tid] the
                 joiner, [other] the finished thread) *)
  | Ev_finish  (** thread terminated *)

val event_kind_name : event_kind -> string

type event = {
  time : int;
  proc : int;
  tid : int;
  kind : event_kind;
  other : int;  (** the related thread of the event kind, or -1 *)
}

val add_event_hook : t -> (event -> unit) -> unit
(** Subscribe an observer to the scheduling-event bus. Hooks run in
    subscription order; all subscribers see every event. Must be
    called before {!run}. *)

val set_event_hook : t -> (event -> unit) -> unit
(** @deprecated Alias for {!add_event_hook}, kept for source
    compatibility. Despite the historical name it no longer replaces
    previously installed hooks. *)

val clear_event_hooks : t -> unit
(** Remove every subscriber, restoring the zero-cost emission path. *)

val event_hook_count : t -> int
(** Number of currently subscribed event observers. The emission fast
    path is taken exactly when this is 0. *)

(** {1 Memory-access events}

    One event per simulated memory operation ([Ops.read]/[write] and
    the atomics), emitted at the operation's start time in the global
    deterministic execution order. With no hook subscribed the cost is
    one branch per access. *)

type access = {
  access_time : int;
  access_proc : int;
  access_tid : int;
  access_addr : Memory.addr;
  access_kind : Memory.access;
}

val add_access_hook : t -> (access -> unit) -> unit
val clear_access_hooks : t -> unit
val access_hook_count : t -> int

(** {1 Annotation events}

    The delivery side of {!Ops.annotate}: synchronization libraries
    publish lock acquire/release spans and sync-word registrations;
    the scheduler stamps them with virtual time and the emitting
    thread. *)

type annot = {
  annot_time : int;
  annot_proc : int;
  annot_tid : int;
  annotation : Ops.annotation;
}

val add_annot_hook : t -> (annot -> unit) -> unit
(** Subscribe an annotation observer. {!run} publishes the presence of
    subscribers to {!Ops.annotations_enabled}, so with none installed
    {!Ops.annotate} skips payload construction and the effect
    entirely. *)

val clear_annot_hooks : t -> unit
val annot_hook_count : t -> int

val thread_report : t -> (int * string * int) list
(** [(tid, name, cpu_ns)] for every thread that ran, sorted by tid. *)

(** {1 Controlled scheduling}

    Host-side steering of the dispatch order, used by the predictive
    analysis pipeline ([lib/analysis]) to replay witness schedules and
    by the chaos harness to pin failing runs. Control never changes
    what a dispatched thread does — only which runnable thread each
    dispatch picks — so every controlled schedule is one the machine
    could have taken on its own, and a recorded schedule replays the
    run bit-for-bit regardless of host parallelism ([--domains]). *)

type choice = {
  choice_tid : int;
  choice_proc : int;  (** processor the thread would run on *)
  choice_key : int;  (** virtual time the dispatch would start at *)
}
(** One thread the machine could legally dispatch right now. A
    processor whose continuation slot is occupied contributes only that
    thread (non-preemptive execution); a vacant processor contributes
    its queued runnable threads. *)

val set_schedule_control : t -> int list -> unit
(** [set_schedule_control t decisions] pins the next
    [List.length decisions] dispatches: each element is the tid that
    dispatch must pick. Fault timers fire between decisions exactly as
    on the default path and consume no decision. A decision naming a
    thread that is not currently dispatchable abandons control (the
    default policy resumes) and marks the run {!control_diverged}.
    Once the list is exhausted, scheduling continues with the
    {!set_dispatch_chooser} hook if any, else the default policy. *)

val schedule_control_remaining : t -> int
(** Decisions not yet consumed. *)

val set_dispatch_chooser : t -> (choice array -> int) option -> unit
(** Install (or clear) a per-dispatch steering callback, consulted
    whenever the decision list is empty. It receives the current
    dispatch candidates sorted by tid and returns the tid to dispatch,
    or [-1] to defer to the default policy. Returning a tid that is
    not a candidate abandons the pick to the default policy and marks
    the run {!control_diverged}. *)

val set_record_schedule : t -> bool -> unit
(** Enable schedule recording: every dispatch (including the no-op
    consumption of a killed thread's stale queue entry) appends the
    dispatched tid to the log. Enabling resets any previous log. *)

val recorded_schedule : t -> int list
(** The recorded dispatch log, oldest first. Feeding it to
    {!set_schedule_control} on a fresh machine running the same
    program replays the run bit-for-bit. *)

val control_diverged : t -> bool
(** Whether a schedule-control decision or chooser answer ever named a
    thread the machine could not dispatch (the run then fell back to
    default scheduling). A successful replay reports [false]. *)
