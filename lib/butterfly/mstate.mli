(** Flat machine state shared between [Sched] and [Ops].

    The scheduler's hot per-processor and per-thread scalars live here
    as unboxed int arrays (one [t] per machine), and the domain-local
    {!current} binding is how [Ops]'s zero-effect fast paths find the
    machine whose dispatch slice is executing. This module is
    plumbing between the two; simulated code and experiment drivers
    never touch it directly — the public switches are re-exported as
    [Sched.set_fast_paths] and [Sched.set_op_fusion]. *)

(** Thread status codes for the [status] array. *)

val st_ready : int
val st_running : int
val st_blocked : int
val st_joining : int
val st_finished : int

type t = {
  mutable mem : Memory.t;
  mutable cfg : Config.t;
  mutable quantum : int;  (** [cfg.quantum_ns], [max_int] when [None] *)
  mutable max_events : int;
  mutable events : int;  (** the machine's canonical event count *)
  mutable abort_set : bool;  (** mirrors [Sched.request_abort] *)
  mutable fast : bool;
      (** the dispatch slice in progress may charge directly *)
  mutable tid : int;  (** thread being dispatched *)
  mutable pid : int;  (** its processor *)
  pnow : int array;  (** per-processor clock, indexed by pid *)
  busy : int array;
  slice : int array;  (** cpu consumed since the last scheduling point *)
  last_tid : int array;
  mutable status : int array;  (** per-thread, indexed by tid; grown *)
  mutable tproc : int array;
  mutable prio : int array;
  mutable wake_at : int array;
  mutable cpu : int array;
  mutable penalty : int array;
  mutable work_left : int array;
  mutable tokens : int array;
  mutable acc_events : int;
      (** batched counter accumulators, folded per slice *)
  mutable acc_read : int;
  mutable acc_write : int;
  mutable acc_atomic : int;
}

val create : cfg:Config.t -> mem:Memory.t -> t
val ensure_thread : t -> int -> unit
(** Grow the per-thread arrays so the given tid is a valid index. *)

val get : unit -> t
(** The machine state currently bound to this domain (a dummy with
    [fast = false] outside any [Sched.run]). *)

val swap_in : t -> t
(** Bind a machine's state to this domain, returning the previous
    binding for {!restore} — how nested and back-to-back runs on one
    domain compose. *)

val restore : t -> unit

val set_fast_paths : bool -> unit
(** Allow/forbid dispatch slices to enter fast mode (default on).
    Purely a performance switch: outcomes are bit-identical either
    way. *)

val fast_paths_enabled : unit -> bool

val set_op_fusion : bool -> unit
(** Allow/forbid the fused [Ops] wrappers' single-effect encoding
    (default on). Purely a performance switch. *)

val op_fusion_enabled : unit -> bool
