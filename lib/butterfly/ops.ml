type tid = int

type fork_spec = { f : unit -> unit; proc : int option; prio : int; name : string }

type annotation =
  | A_sync_word of Memory.addr
  | A_relaxed_word of Memory.addr
  | A_lock_request of { lock : Memory.addr; lock_name : string }
  | A_lock_acquire of { lock : Memory.addr; lock_name : string; spin_wait : bool }
  | A_lock_release of { lock : Memory.addr; lock_name : string }
  | A_adaptation of { obj_name : string; kind : string; label : string }

(* Result of one fused lock probe (see [lock_probe_timed]). *)
type probe_result = Probe_acquired | Probe_expired | Probe_retrying

type _ Effect.t +=
  | E_alloc : int option * int -> Memory.addr array Effect.t
  | E_read : Memory.addr -> int Effect.t
  | E_write : Memory.addr * int -> unit Effect.t
  | E_fetch_and_or : Memory.addr * int -> int Effect.t
  | E_fetch_and_add : Memory.addr * int -> int Effect.t
  | E_swap : Memory.addr * int -> int Effect.t
  | E_cas : Memory.addr * int * int -> bool Effect.t
  | E_work : int -> unit Effect.t
  | E_work_instrs : int -> unit Effect.t
  | E_delay : int -> unit Effect.t
  | E_now : int Effect.t
  | E_fork : fork_spec -> tid Effect.t
  | E_join : tid -> unit Effect.t
  | E_yield : unit Effect.t
  | E_block : unit Effect.t
  | E_wakeup : tid -> unit Effect.t
  | E_self : tid Effect.t
  | E_my_processor : int Effect.t
  | E_set_priority : tid * int -> unit Effect.t
  | E_priority_of : tid -> int Effect.t
  | E_processors : int Effect.t
  | E_random : int -> int Effect.t
  | E_trace : string -> unit Effect.t
  | E_annotate : annotation -> unit Effect.t
  | E_thread_name : tid -> string Effect.t
  (* Fused operations: one effect standing for a short fixed sequence
     of charges plus one memory operation. The scheduler stages the
     sequence through the same charge/dispatch machinery as the
     decomposed ops, so dispatch counts, charge times and the memory
     op's linearization point are identical — fusion only removes the
     intermediate continuation captures. Payload fields:
     [E_lock_probe (word, pre_instrs, retry_instrs, gap_ns, until)],
     [E_read_hint (addr, pre_ns, gap_ns, expect)]. *)
  | E_lock_probe : Memory.addr * int * int * int * int -> probe_result Effect.t
  | E_read_hint : Memory.addr * int * int * int -> int Effect.t

(* {2 Fast paths}

   When the scheduler marks the current dispatch slice as fast
   ([Mstate.fast] — single runnable processor, no hooks, no timers, no
   control, no pending abort), memory and work charges are applied
   directly to the flat machine state instead of performing an effect:
   no continuation capture, no handler round trip, no dispatch. Each
   fast charge replicates exactly what its effect would have done —
   same clock advance, same event count, same counter totals (batched
   in accumulators folded at slice end), same bank occupancy — and
   bails out to the effect whenever the operation could be observed
   differently: a preemption-quantum boundary, the event-limit
   boundary, an unallocated address, a pending abort. *)

(* [st.tid]/[st.pid] are set by the dispatcher from in-range values,
   so the per-op accumulator bumps skip the bounds checks. *)
let[@inline] bump arr i ns = Array.unsafe_set arr i (Array.unsafe_get arr i + ns)

let[@inline] fast_charge (st : Mstate.t) ns =
  let pid = st.pid in
  bump st.cpu st.tid ns;
  bump st.busy pid ns;
  bump st.pnow pid ns;
  bump st.slice pid ns;
  st.events <- st.events + 1;
  st.acc_events <- st.acc_events + 1

(* Charge [ns] of pure computation if the slice stays clear of the
   quantum and event-limit boundaries; false = caller performs the
   effect. *)
let fast_work (st : Mstate.t) ns =
  st.fast
  && Array.unsafe_get st.slice st.pid + ns < st.quantum
  && st.events < st.max_events
  && (not st.abort_set)
  && begin
       fast_charge st ns;
       true
     end

(* Charge one memory access (timing only); the caller then applies the
   word operation itself. The quote/commit split exists because the
   quantum check needs the duration before the bank is booked. *)
let fast_mem (st : Mstate.t) a kind =
  st.fast
  && st.events < st.max_events
  && (not st.abort_set)
  && begin
       let pid = st.pid in
       let ns =
         Memory.try_reserve st.mem st.cfg ~from_node:pid a kind
           ~start:(Array.unsafe_get st.pnow pid)
           ~budget:(st.quantum - Array.unsafe_get st.slice pid)
       in
       ns >= 0
       && begin
            fast_charge st ns;
            true
          end
     end

let alloc ?node n = Effect.perform (E_alloc (node, n))
let alloc1 ?node () = (Effect.perform (E_alloc (node, 1))).(0)

let read a =
  let st = Mstate.get () in
  if fast_mem st a Memory.Read_access then begin
    st.acc_read <- st.acc_read + 1;
    Memory.fast_read st.mem a
  end
  else Effect.perform (E_read a)

let write a v =
  let st = Mstate.get () in
  if fast_mem st a Memory.Write_access then begin
    st.acc_write <- st.acc_write + 1;
    Memory.fast_write st.mem a v
  end
  else Effect.perform (E_write (a, v))

let fetch_and_or a v =
  let st = Mstate.get () in
  if fast_mem st a Memory.Atomic_access then begin
    st.acc_atomic <- st.acc_atomic + 1;
    Memory.fast_fetch_and_or st.mem a v
  end
  else Effect.perform (E_fetch_and_or (a, v))

let fetch_and_add a v =
  let st = Mstate.get () in
  if fast_mem st a Memory.Atomic_access then begin
    st.acc_atomic <- st.acc_atomic + 1;
    Memory.fast_fetch_and_add st.mem a v
  end
  else Effect.perform (E_fetch_and_add (a, v))

let swap a v =
  let st = Mstate.get () in
  if fast_mem st a Memory.Atomic_access then begin
    st.acc_atomic <- st.acc_atomic + 1;
    Memory.fast_swap st.mem a v
  end
  else Effect.perform (E_swap (a, v))

let compare_and_swap a ~expected ~desired =
  let st = Mstate.get () in
  if fast_mem st a Memory.Atomic_access then begin
    st.acc_atomic <- st.acc_atomic + 1;
    Memory.fast_compare_and_swap st.mem a ~expected ~desired
  end
  else Effect.perform (E_cas (a, expected, desired))

let test_and_set a = fetch_and_or a 1 = 0

let work ns =
  if ns > 0 then begin
    let st = Mstate.get () in
    if not (fast_work st ns) then Effect.perform (E_work ns)
  end

let work_instrs n =
  if n > 0 then begin
    let st = Mstate.get () in
    if not (st.fast && fast_work st (Config.instrs st.cfg n)) then
      Effect.perform (E_work_instrs n)
  end

let delay ns = if ns > 0 then Effect.perform (E_delay ns)

let now () =
  let st = Mstate.get () in
  if st.fast then st.pnow.(st.pid) else Effect.perform E_now

let fork spec = Effect.perform (E_fork spec)
let join tid = Effect.perform (E_join tid)
let yield () = Effect.perform E_yield
let block () = Effect.perform E_block
let wakeup tid = Effect.perform (E_wakeup tid)

let self () =
  let st = Mstate.get () in
  if st.fast then st.tid else Effect.perform E_self

let my_processor () =
  let st = Mstate.get () in
  if st.fast then st.pid else Effect.perform E_my_processor

let set_priority tid prio = Effect.perform (E_set_priority (tid, prio))
let priority_of tid = Effect.perform (E_priority_of tid)
let processors () = Effect.perform E_processors
let random bound = Effect.perform (E_random bound)
let trace msg = Effect.perform (E_trace msg)

(* {2 Fused operations}

   [lock_probe_timed] is one iteration of the canonical spin protocol:
   charge [pre_instrs] of entry-path overhead, test-and-set the lock
   word, and on failure — unless the probe has timed out against
   [until] — charge [retry_instrs] of retry overhead followed by a
   [gap_ns] backoff wait. Exactly the sequence
   [work_instrs pre; test_and_set; (work_instrs retry; work gap)]
   with the timeout read between the probe and the retry, but encoded
   as one effect (one continuation capture) instead of up to four.
   [read_hint] likewise fuses a hint-spin iteration: charge [pre_ns],
   read [a], and charge a [gap_ns] wait when the value still equals
   [expect].

   In fast mode (or with fusion disabled) both decompose into the
   component wrappers above, which is the defining sequence — so the
   fused encoding is unobservable by construction, and toggling
   [Mstate.set_op_fusion] must never change a simulated outcome. *)

let lock_probe_timed ?(pre_instrs = 0) ?(retry_instrs = 0) ?(gap_ns = 0) ~until a =
  let st = Mstate.get () in
  if (not st.Mstate.fast) && Mstate.op_fusion_enabled () then
    Effect.perform (E_lock_probe (a, pre_instrs, retry_instrs, gap_ns, until))
  else begin
    work_instrs pre_instrs;
    if test_and_set a then Probe_acquired
    else if until >= 0 && now () >= until then Probe_expired
    else begin
      work_instrs retry_instrs;
      work gap_ns;
      Probe_retrying
    end
  end

let lock_probe ?(pre_instrs = 0) ?(retry_instrs = 0) ?(gap_ns = 0) a =
  lock_probe_timed ~pre_instrs ~retry_instrs ~gap_ns ~until:(-1) a = Probe_acquired

let read_hint ?(pre_ns = 0) ?(gap_ns = 0) ~expect a =
  let st = Mstate.get () in
  if (not st.Mstate.fast)
     && (pre_ns > 0 || gap_ns > 0)
     && Mstate.op_fusion_enabled ()
  then Effect.perform (E_read_hint (a, pre_ns, gap_ns, expect))
  else begin
    work pre_ns;
    let v = read a in
    if gap_ns > 0 && v = expect then work gap_ns;
    v
  end

(* Zero-subscriber fast path. The scheduler records here, per domain,
   whether the machine currently running has any annotation
   subscriber; while it has none, [annotate] skips the effect (and
   hence the continuation capture) entirely, making unobserved
   annotations cost one flag read. Per-domain (not global) state keeps
   the flag correct when Engine.Runner executes machines with
   different subscriptions concurrently. *)
let annotations_flag : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let set_annotations_enabled enabled = Domain.DLS.get annotations_flag := enabled
let annotations_enabled () = !(Domain.DLS.get annotations_flag)
let annotate a = if annotations_enabled () then Effect.perform (E_annotate a)
let mark_sync_words addrs = Array.iter (fun a -> annotate (A_sync_word a)) addrs
let mark_relaxed_word a = annotate (A_relaxed_word a)
let thread_name tid = Effect.perform (E_thread_name tid)
