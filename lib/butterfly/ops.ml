type tid = int

type fork_spec = { f : unit -> unit; proc : int option; prio : int; name : string }

type annotation =
  | A_sync_word of Memory.addr
  | A_relaxed_word of Memory.addr
  | A_lock_request of { lock : Memory.addr; lock_name : string }
  | A_lock_acquire of { lock : Memory.addr; lock_name : string; spin_wait : bool }
  | A_lock_release of { lock : Memory.addr; lock_name : string }
  | A_adaptation of { obj_name : string; kind : string; label : string }

type _ Effect.t +=
  | E_alloc : int option * int -> Memory.addr array Effect.t
  | E_read : Memory.addr -> int Effect.t
  | E_write : Memory.addr * int -> unit Effect.t
  | E_fetch_and_or : Memory.addr * int -> int Effect.t
  | E_fetch_and_add : Memory.addr * int -> int Effect.t
  | E_swap : Memory.addr * int -> int Effect.t
  | E_cas : Memory.addr * int * int -> bool Effect.t
  | E_work : int -> unit Effect.t
  | E_work_instrs : int -> unit Effect.t
  | E_delay : int -> unit Effect.t
  | E_now : int Effect.t
  | E_fork : fork_spec -> tid Effect.t
  | E_join : tid -> unit Effect.t
  | E_yield : unit Effect.t
  | E_block : unit Effect.t
  | E_wakeup : tid -> unit Effect.t
  | E_self : tid Effect.t
  | E_my_processor : int Effect.t
  | E_set_priority : tid * int -> unit Effect.t
  | E_priority_of : tid -> int Effect.t
  | E_processors : int Effect.t
  | E_random : int -> int Effect.t
  | E_trace : string -> unit Effect.t
  | E_annotate : annotation -> unit Effect.t
  | E_thread_name : tid -> string Effect.t

let alloc ?node n = Effect.perform (E_alloc (node, n))
let alloc1 ?node () = (Effect.perform (E_alloc (node, 1))).(0)
let read a = Effect.perform (E_read a)
let write a v = Effect.perform (E_write (a, v))
let fetch_and_or a v = Effect.perform (E_fetch_and_or (a, v))
let fetch_and_add a v = Effect.perform (E_fetch_and_add (a, v))
let swap a v = Effect.perform (E_swap (a, v))
let compare_and_swap a ~expected ~desired = Effect.perform (E_cas (a, expected, desired))
let test_and_set a = fetch_and_or a 1 = 0

let work ns = if ns > 0 then Effect.perform (E_work ns)
let work_instrs n = if n > 0 then Effect.perform (E_work_instrs n)
let delay ns = if ns > 0 then Effect.perform (E_delay ns)
let now () = Effect.perform E_now

let fork spec = Effect.perform (E_fork spec)
let join tid = Effect.perform (E_join tid)
let yield () = Effect.perform E_yield
let block () = Effect.perform E_block
let wakeup tid = Effect.perform (E_wakeup tid)
let self () = Effect.perform E_self
let my_processor () = Effect.perform E_my_processor
let set_priority tid prio = Effect.perform (E_set_priority (tid, prio))
let priority_of tid = Effect.perform (E_priority_of tid)
let processors () = Effect.perform E_processors
let random bound = Effect.perform (E_random bound)
let trace msg = Effect.perform (E_trace msg)

(* Zero-subscriber fast path. The scheduler records here, per domain,
   whether the machine currently running has any annotation
   subscriber; while it has none, [annotate] skips the effect (and
   hence the continuation capture) entirely, making unobserved
   annotations cost one flag read. Per-domain (not global) state keeps
   the flag correct when Engine.Runner executes machines with
   different subscriptions concurrently. *)
let annotations_flag : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let set_annotations_enabled enabled = Domain.DLS.get annotations_flag := enabled
let annotations_enabled () = !(Domain.DLS.get annotations_flag)
let annotate a = if annotations_enabled () then Effect.perform (E_annotate a)
let mark_sync_words addrs = Array.iter (fun a -> annotate (A_sync_word a)) addrs
let mark_relaxed_word a = annotate (A_relaxed_word a)
let thread_name tid = Effect.perform (E_thread_name tid)
