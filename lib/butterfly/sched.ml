exception Deadlock of string
exception Event_limit_exceeded
exception Thread_crash of string * exn
exception Abort_requested of string

type abort_reason =
  | Deadlocked of string
  | Event_limit
  | Crashed of string * exn
  | Stop_requested of string

type outcome = Completed | Aborted of { reason : abort_reason; diagnostics : string }

let abort_reason_message = function
  | Deadlocked msg -> "deadlock: " ^ msg
  | Event_limit -> "event limit exceeded"
  | Crashed (name, e) ->
    Printf.sprintf "thread %s crashed: %s" name (Printexc.to_string e)
  | Stop_requested msg -> "abort requested: " ^ msg

type tstate = Ready | Running | Blocked | Joining | Finished

type event_kind =
  | Ev_fork
  | Ev_switch
  | Ev_preempt
  | Ev_block
  | Ev_wakeup
  | Ev_token
  | Ev_token_use
  | Ev_join
  | Ev_finish

let event_kind_name = function
  | Ev_fork -> "fork"
  | Ev_switch -> "switch"
  | Ev_preempt -> "preempt"
  | Ev_block -> "block"
  | Ev_wakeup -> "wakeup"
  | Ev_token -> "token"
  | Ev_token_use -> "token-use"
  | Ev_join -> "join"
  | Ev_finish -> "finish"

type event = { time : int; proc : int; tid : int; kind : event_kind; other : int }

type access = {
  access_time : int;
  access_proc : int;
  access_tid : int;
  access_addr : Memory.addr;
  access_kind : Memory.access;
}

type annot = {
  annot_time : int;
  annot_proc : int;
  annot_tid : int;
  annotation : Ops.annotation;
}

type rmw = Rmw_or | Rmw_add | Rmw_swap

(* A thread's reified suspended operation. The memory-op constructors
   defer the actual word mutation to dispatch time, i.e. the global
   virtual-time order, without allocating a closure per operation —
   the payload lives in the constructor's flat fields. [P_none] marks
   "not suspended" (no option boxing); [P_start] carries a
   not-yet-started thread's body. *)
type pending =
  | P_none : pending
  | P_start : (unit -> unit) -> pending
  | P_unit : (unit, unit) Effect.Deep.continuation -> pending
  | P_value : ('a, unit) Effect.Deep.continuation * 'a -> pending
  | P_read : (int, unit) Effect.Deep.continuation * Memory.addr -> pending
  | P_write : (unit, unit) Effect.Deep.continuation * Memory.addr * int -> pending
  | P_rmw : (int, unit) Effect.Deep.continuation * rmw * Memory.addr * int -> pending
  | P_cas : (bool, unit) Effect.Deep.continuation * Memory.addr * int * int -> pending

type thread = {
  tid : int;
  name : string;
  mutable prio : int;
  mutable state : tstate;
  mutable proc : int;
  mutable pending : pending;
  mutable wake_at : int;
  mutable wake_tokens : int;
  mutable token_wakers : int list;  (* waker tids, oldest first, one per token *)
  mutable joiners : int list;
  mutable work_left : int;
  mutable cpu_ns : int;
  mutable penalty_ns : int;  (* fault-injected stall charged at next dispatch *)
  mutable last_block_site : string;  (* last lock requested (annot bus), "" if none *)
  mutable held_locks : string list;  (* lock names acquired and not yet released *)
}

(* Sentinel standing for "no thread" in processor slots and run
   queues, so those hot fields are unboxed. Never scheduled, never
   mutated; shared across machines and domains. *)
let no_thread =
  {
    tid = -1;
    name = "<none>";
    prio = 0;
    state = Finished;
    proc = 0;
    pending = P_none;
    wake_at = 0;
    wake_tokens = 0;
    token_wakers = [];
    joiners = [];
    work_left = 0;
    cpu_ns = 0;
    penalty_ns = 0;
    last_block_site = "";
    held_locks = [];
  }

type proc = {
  pid : int;
  mutable pnow : int;
  runq : thread Engine.Pqueue.t;
  mutable cont : thread;
      (* non-preemptive continuation: the thread currently occupying
         the processor, resumed ahead of queued threads until it
         blocks, delays, yields or exhausts its quantum.
         [no_thread] when vacant. *)
  mutable slice_ns : int;  (* cpu consumed since the last scheduling point *)
  mutable last_tid : int;
  mutable busy_ns : int;
}

type t = {
  cfg : Config.t;
  mem : Memory.t;
  procs : proc array;
  threads : (int, thread) Hashtbl.t;
  mutable next_tid : int;
  mutable live : int;
  mutable events : int;
  mutable current : thread;  (* [no_thread] outside dispatch *)
  counters : Engine.Counters.t;
  rng : Engine.Rng.t;
  mutable trace_hooks : (time:int -> tid:int -> string -> unit) list;
  mutable event_hooks : (event -> unit) list;  (* subscription order *)
  mutable access_hooks : (access -> unit) list;
  mutable annot_hooks : (annot -> unit) list;
  mutable started : bool;
  mutable final : int;
  mutable place_cursor : int;
  mutable timers : (int * int * (unit -> unit)) list;
      (* host-side virtual-time callbacks (fault injection), sorted by
         (time, insertion sequence); empty on fault-free machines *)
  mutable timer_seq : int;
  mutable abort : string option;  (* a pending host-side abort request *)
  mutable control : int list;
      (* pending schedule-control decisions: the tid each upcoming
         dispatch must pick. Empty = no control. *)
  mutable chooser : (choice array -> int) option;
      (* steering hook consulted per dispatch once [control] is
         exhausted; returns a candidate tid or -1 for the default
         pick *)
  mutable record_schedule : bool;
  mutable schedule_log : int list;  (* dispatched tids, newest first *)
  mutable control_diverged : bool;
}

and choice = { choice_tid : int; choice_proc : int; choice_key : int }

let create (cfg : Config.t) =
  if cfg.processors <= 0 then invalid_arg "Sched.create: need at least one processor";
  {
    cfg;
    mem = Memory.create cfg;
    procs =
      Array.init cfg.processors (fun pid ->
          {
            pid;
            pnow = 0;
            runq = Engine.Pqueue.create ~dummy:no_thread ();
            cont = no_thread;
            slice_ns = 0;
            last_tid = -1;
            busy_ns = 0;
          });
    threads = Hashtbl.create 64;
    next_tid = 0;
    live = 0;
    events = 0;
    current = no_thread;
    counters = Engine.Counters.create ();
    rng = Engine.Rng.create cfg.seed;
    trace_hooks = [];
    event_hooks = [];
    access_hooks = [];
    annot_hooks = [];
    started = false;
    final = 0;
    place_cursor = 0;
    timers = [];
    timer_seq = 0;
    abort = None;
    control = [];
    chooser = None;
    record_schedule = false;
    schedule_log = [];
    control_diverged = false;
  }

let config t = t.cfg
let memory t = t.mem
let counters t = t.counters
let final_time t = t.final
let processor_busy_ns t = Array.map (fun p -> p.busy_ns) t.procs
let runq_length t pid =
  let p = t.procs.(pid) in
  Engine.Pqueue.size p.runq + if p.cont != no_thread then 1 else 0
let live_threads t = t.live

(* Every instrumentation stream is a bus: any number of subscribers,
   delivery in subscription order, and with zero subscribers the
   emission path is a single empty-list branch. *)
let add_trace_hook t hook = t.trace_hooks <- t.trace_hooks @ [ hook ]
let set_trace_hook = add_trace_hook
let clear_trace_hooks t = t.trace_hooks <- []
let trace_hook_count t = List.length t.trace_hooks
let add_event_hook t hook = t.event_hooks <- t.event_hooks @ [ hook ]
let set_event_hook = add_event_hook
let clear_event_hooks t = t.event_hooks <- []
let event_hook_count t = List.length t.event_hooks
let add_access_hook t hook = t.access_hooks <- t.access_hooks @ [ hook ]
let clear_access_hooks t = t.access_hooks <- []
let access_hook_count t = List.length t.access_hooks
let add_annot_hook t hook = t.annot_hooks <- t.annot_hooks @ [ hook ]
let clear_annot_hooks t = t.annot_hooks <- []
let annot_hook_count t = List.length t.annot_hooks

(* [other] is -1 when the event kind has no related thread; passing it
   positionally (not as an optional argument) keeps the call sites
   allocation-free. The event record is only built once at least one
   subscriber exists. *)
let emit t ~time ~proc ~tid ~other kind =
  match t.event_hooks with
  | [] -> ()
  | hooks ->
    let ev = { time; proc; tid; kind; other } in
    List.iter (fun hook -> hook ev) hooks

let emit_access t ~time ~proc ~tid addr kind =
  match t.access_hooks with
  | [] -> ()
  | hooks ->
    let ev =
      { access_time = time; access_proc = proc; access_tid = tid;
        access_addr = addr; access_kind = kind }
    in
    List.iter (fun hook -> hook ev) hooks

let thread_report t =
  Hashtbl.fold (fun _ th acc -> (th.tid, th.name, th.cpu_ns) :: acc) t.threads []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let current_thread t =
  if t.current == no_thread then
    invalid_arg "Butterfly: operation performed outside a running thread"
  else t.current

let make_ready t th ~at =
  th.state <- Ready;
  th.wake_at <- at;
  Engine.Pqueue.add t.procs.(th.proc).runq ~key:at th

(* The currently-running thread keeps its processor (non-preemptive
   execution), unless a preemption quantum is configured and its slice
   is exhausted — then it is demoted behind the queued threads. *)
let continue_on t p th ~at =
  th.state <- Ready;
  th.wake_at <- at;
  match t.cfg.quantum_ns with
  | Some quantum when p.slice_ns >= quantum ->
    p.slice_ns <- 0;
    Engine.Counters.incr t.counters "sched.preemptions";
    emit t ~time:at ~proc:p.pid ~tid:th.tid ~other:(-1) Ev_preempt;
    Engine.Pqueue.add p.runq ~key:at th
  | _ ->
    (* Under schedule control a forced dispatch may run a queued thread
       while another still occupies the continuation slot; queue behind
       it rather than overwrite (and lose) it. On the default path the
       slot is always vacant here. *)
    if p.cont == no_thread then p.cont <- th else Engine.Pqueue.add p.runq ~key:at th

(* Charge [ns] of processor occupancy ending at the thread's next wake
   time: the processor is busy until then (its clock advances), and the
   fiber is suspended and rescheduled at the completion time. *)
let charge_and_resume t th p ~ns pend =
  th.pending <- pend;
  th.cpu_ns <- th.cpu_ns + ns;
  p.busy_ns <- p.busy_ns + ns;
  p.pnow <- p.pnow + ns;
  p.slice_ns <- p.slice_ns + ns;
  continue_on t p th ~at:p.pnow

let suspend_unit t th p ~ns k = charge_and_resume t th p ~ns (P_unit k)

(* Thread placement for unpinned forks: round-robin, skipping processor
   load imbalance concerns (deterministic and uniform). *)
let place t =
  let pid = t.place_cursor in
  t.place_cursor <- (t.place_cursor + 1) mod Array.length t.procs;
  pid

let new_thread t ~name ~proc ~prio fn =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  (* An empty name means "let the machine name it": tid-derived, hence
     deterministic per machine and safe under parallel experiment
     runs (unlike any global naming counter). *)
  let name = if name = "" then "thread-" ^ string_of_int tid else name in
  let th =
    {
      tid;
      name;
      prio;
      state = Ready;
      proc;
      pending = P_start fn;
      wake_at = 0;
      wake_tokens = 0;
      token_wakers = [];
      joiners = [];
      work_left = 0;
      cpu_ns = 0;
      penalty_ns = 0;
      last_block_site = "";
      held_locks = [];
    }
  in
  Hashtbl.add t.threads tid th;
  t.live <- t.live + 1;
  th

let finish ?at t th =
  let now = match at with Some a -> a | None -> t.procs.(th.proc).pnow in
  th.state <- Finished;
  emit t ~time:now ~proc:th.proc ~tid:th.tid ~other:(-1) Ev_finish;
  t.live <- t.live - 1;
  let wake_time = now + t.cfg.join_ns in
  List.iter
    (fun jtid ->
      let joiner = Hashtbl.find t.threads jtid in
      if joiner.state = Joining then begin
        emit t ~time:wake_time ~proc:joiner.proc ~tid:jtid ~other:th.tid Ev_join;
        make_ready t joiner ~at:wake_time
      end)
    th.joiners;
  th.joiners <- []

let find_thread t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some th -> th
  | None -> invalid_arg (Printf.sprintf "Butterfly: unknown thread %d" tid)

let machine_time t = Array.fold_left (fun acc p -> max acc p.pnow) 0 t.procs

(* {2 Fault-injection entry points}

   All of these are host-side: the injector calls them from virtual-time
   timers (or annotation hooks), never from simulated code. On a
   machine with no timers and no penalties the scheduler's behaviour is
   bit-for-bit the fault-free one. *)

let add_timer t ~at fn =
  if at < 0 then invalid_arg "Sched.add_timer: negative time";
  let seq = t.timer_seq in
  t.timer_seq <- seq + 1;
  let rec insert = function
    | [] -> [ (at, seq, fn) ]
    | ((at', seq', _) as hd) :: tl ->
      if at < at' || (at = at' && seq < seq') then (at, seq, fn) :: hd :: tl
      else hd :: insert tl
  in
  t.timers <- insert t.timers

let pending_timers t = List.length t.timers

let request_abort t reason = if t.abort = None then t.abort <- Some reason
let abort_requested t = t.abort

let stall_processor t ~proc ~ns =
  if proc < 0 || proc >= Array.length t.procs then
    invalid_arg (Printf.sprintf "Sched.stall_processor: bad processor %d" proc);
  if ns < 0 then invalid_arg "Sched.stall_processor: negative stall";
  let p = t.procs.(proc) in
  p.pnow <- p.pnow + ns;
  p.slice_ns <- 0

let penalize_thread t ~tid ~ns =
  if ns < 0 then invalid_arg "Sched.penalize_thread: negative penalty";
  match Hashtbl.find_opt t.threads tid with
  | Some th when th.state <> Finished ->
    th.penalty_ns <- th.penalty_ns + ns;
    true
  | Some _ | None -> false

(* A kill models a crash: the suspended continuation is dropped (no
   cleanup runs; the fiber is reclaimed by the GC), joiners are woken
   exactly as for a normal termination, and any lock words the victim
   holds stay held — which is precisely the pathology the watchdog and
   the chaos harness are there to surface. Threads already queued stay
   in their run queues; the dispatcher skips Finished entries. *)
let kill_thread t ~tid ~at =
  match Hashtbl.find_opt t.threads tid with
  | None -> false
  | Some th ->
    if th.state = Finished then false
    else begin
      th.pending <- P_none;
      th.work_left <- 0;
      Array.iter (fun p -> if p.cont == th then p.cont <- no_thread) t.procs;
      Engine.Counters.incr t.counters "sched.kills";
      finish ~at t th;
      true
    end

let mem_access_kind = function
  | `Read -> Memory.Read_access
  | `Write -> Memory.Write_access
  | `Atomic -> Memory.Atomic_access

let counter_of_kind = function
  | `Read -> "mem.read"
  | `Write -> "mem.write"
  | `Atomic -> "mem.atomic"

(* Reserve a memory access starting now and return its duration; the
   caller suspends the fiber with a [pending] that performs the actual
   word operation at dispatch, i.e. in global virtual-time order. *)
let mem_charge t th p ~kind addr =
  Engine.Counters.incr t.counters (counter_of_kind kind);
  emit_access t ~time:p.pnow ~proc:p.pid ~tid:th.tid addr (mem_access_kind kind);
  let complete =
    Memory.reserve t.mem t.cfg ~from_node:p.pid addr (mem_access_kind kind) ~start:p.pnow
  in
  complete - p.pnow

let handle_effect : type a. t -> a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option =
 fun t eff ->
  let cfg = t.cfg in
  match eff with
  | Ops.E_read addr ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let ns = mem_charge t th p ~kind:`Read addr in
        charge_and_resume t th p ~ns (P_read (k, addr)))
  | Ops.E_write (addr, v) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let ns = mem_charge t th p ~kind:`Write addr in
        charge_and_resume t th p ~ns (P_write (k, addr, v)))
  | Ops.E_fetch_and_or (addr, v) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let ns = mem_charge t th p ~kind:`Atomic addr in
        charge_and_resume t th p ~ns (P_rmw (k, Rmw_or, addr, v)))
  | Ops.E_fetch_and_add (addr, v) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let ns = mem_charge t th p ~kind:`Atomic addr in
        charge_and_resume t th p ~ns (P_rmw (k, Rmw_add, addr, v)))
  | Ops.E_swap (addr, v) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let ns = mem_charge t th p ~kind:`Atomic addr in
        charge_and_resume t th p ~ns (P_rmw (k, Rmw_swap, addr, v)))
  | Ops.E_cas (addr, expected, desired) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let ns = mem_charge t th p ~kind:`Atomic addr in
        charge_and_resume t th p ~ns (P_cas (k, addr, expected, desired)))
  | Ops.E_alloc (node, n) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let node = match node with Some node -> node | None -> th.proc in
        let addrs = Memory.alloc t.mem ~node n in
        charge_and_resume t th p ~ns:cfg.local_write_ns (P_value (k, addrs)))
  | Ops.E_work ns ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let chunk = match cfg.quantum_ns with Some q -> min ns q | None -> ns in
        th.work_left <- ns - chunk;
        suspend_unit t th p ~ns:chunk k)
  | Ops.E_work_instrs n ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let ns = Config.instrs cfg n in
        let chunk = match cfg.quantum_ns with Some q -> min ns q | None -> ns in
        th.work_left <- ns - chunk;
        suspend_unit t th p ~ns:chunk k)
  | Ops.E_delay ns ->
    Some
      (fun k ->
        (* A delay releases the processor: no cpu charge, later wake. *)
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        p.slice_ns <- 0;
        th.pending <- P_unit k;
        make_ready t th ~at:(p.pnow + ns))
  | Ops.E_now ->
    Some
      (fun k ->
        let th = current_thread t in
        Effect.Deep.continue k t.procs.(th.proc).pnow)
  | Ops.E_fork spec ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        Engine.Counters.incr t.counters "sched.forks";
        let proc =
          match spec.proc with
          | Some pid ->
            if pid < 0 || pid >= Array.length t.procs then
              invalid_arg (Printf.sprintf "fork: bad processor %d" pid);
            pid
          | None -> place t
        in
        let child = new_thread t ~name:spec.name ~proc ~prio:spec.prio spec.f in
        emit t ~time:p.pnow ~proc ~tid:child.tid ~other:th.tid Ev_fork;
        make_ready t child ~at:(p.pnow + cfg.fork_ns + cfg.wakeup_latency_ns);
        charge_and_resume t th p ~ns:cfg.fork_ns (P_value (k, child.tid)))
  | Ops.E_join tid ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let target = find_thread t tid in
        if target.state = Finished then begin
          emit t ~time:p.pnow ~proc:th.proc ~tid:th.tid ~other:tid Ev_join;
          suspend_unit t th p ~ns:cfg.join_ns k
        end
        else begin
          th.state <- Joining;
          th.pending <- P_unit k;
          target.joiners <- th.tid :: target.joiners
        end)
  | Ops.E_yield ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        Engine.Counters.incr t.counters "sched.yields";
        th.pending <- P_unit k;
        th.cpu_ns <- th.cpu_ns + cfg.yield_ns;
        p.busy_ns <- p.busy_ns + cfg.yield_ns;
        p.pnow <- p.pnow + cfg.yield_ns;
        p.slice_ns <- 0;
        make_ready t th ~at:p.pnow)
  | Ops.E_block ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        Engine.Counters.incr t.counters "sched.blocks";
        if th.wake_tokens > 0 then begin
          (* A wakeup already arrived: absorb it and keep running. *)
          th.wake_tokens <- th.wake_tokens - 1;
          let waker =
            match th.token_wakers with
            | w :: rest ->
              th.token_wakers <- rest;
              w
            | [] -> -1
          in
          emit t ~time:p.pnow ~proc:th.proc ~tid:th.tid ~other:waker Ev_token_use;
          suspend_unit t th p ~ns:0 k
        end
        else begin
          th.state <- Blocked;
          emit t ~time:p.pnow ~proc:th.proc ~tid:th.tid ~other:(-1) Ev_block;
          th.pending <- P_unit k;
          (* The processor spends [block_ns] saving the context. *)
          p.pnow <- p.pnow + cfg.block_ns;
          p.busy_ns <- p.busy_ns + cfg.block_ns;
          th.cpu_ns <- th.cpu_ns + cfg.block_ns;
          p.slice_ns <- 0
        end)
  | Ops.E_wakeup tid ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        Engine.Counters.incr t.counters "sched.wakeups";
        let target = find_thread t tid in
        (match target.state with
        | Blocked ->
          target.state <- Ready;
          emit t ~time:p.pnow ~proc:target.proc ~tid:target.tid ~other:th.tid Ev_wakeup;
          make_ready t target ~at:(p.pnow + cfg.unblock_ns + cfg.wakeup_latency_ns)
        | Finished -> Engine.Counters.incr t.counters "sched.wakeups_late"
        | Ready | Running | Joining ->
          target.wake_tokens <- target.wake_tokens + 1;
          target.token_wakers <- target.token_wakers @ [ th.tid ];
          emit t ~time:p.pnow ~proc:target.proc ~tid:target.tid ~other:th.tid Ev_token);
        suspend_unit t th p ~ns:cfg.unblock_ns k)
  | Ops.E_self -> Some (fun k -> Effect.Deep.continue k (current_thread t).tid)
  | Ops.E_my_processor -> Some (fun k -> Effect.Deep.continue k (current_thread t).proc)
  | Ops.E_set_priority (tid, prio) ->
    Some
      (fun k ->
        (find_thread t tid).prio <- prio;
        Effect.Deep.continue k ())
  | Ops.E_priority_of tid -> Some (fun k -> Effect.Deep.continue k (find_thread t tid).prio)
  | Ops.E_processors -> Some (fun k -> Effect.Deep.continue k (Array.length t.procs))
  | Ops.E_random bound -> Some (fun k -> Effect.Deep.continue k (Engine.Rng.int t.rng bound))
  | Ops.E_trace msg ->
    Some
      (fun k ->
        (match t.trace_hooks with
        | [] -> ()
        | hooks ->
          let th = current_thread t in
          let time = t.procs.(th.proc).pnow in
          List.iter (fun hook -> hook ~time ~tid:th.tid msg) hooks);
        Effect.Deep.continue k ())
  | Ops.E_annotate annotation ->
    Some
      (fun k ->
        (* Lock annotations double as the scheduler's own bookkeeping
           for abort diagnostics: each thread's last requested lock is
           its "blocking site" and acquire/release maintain its held
           set. This only runs when annotations flow at all (i.e. at
           least one subscriber), so the zero-subscriber fast path in
           Ops.annotate is untouched. *)
        let th = current_thread t in
        (match annotation with
        | Ops.A_lock_request { lock_name; _ } -> th.last_block_site <- lock_name
        | Ops.A_lock_acquire { lock_name; _ } ->
          th.held_locks <- lock_name :: th.held_locks
        | Ops.A_lock_release { lock_name; _ } ->
          let rec remove_first = function
            | [] -> []
            | hd :: tl -> if String.equal hd lock_name then tl else hd :: remove_first tl
          in
          th.held_locks <- remove_first th.held_locks
        | Ops.A_sync_word _ | Ops.A_relaxed_word _ | Ops.A_adaptation _ -> ());
        (match t.annot_hooks with
        | [] -> ()
        | hooks ->
          let p = t.procs.(th.proc) in
          let ev =
            { annot_time = p.pnow; annot_proc = p.pid; annot_tid = th.tid; annotation }
          in
          List.iter (fun hook -> hook ev) hooks);
        Effect.Deep.continue k ())
  | Ops.E_thread_name tid -> Some (fun k -> Effect.Deep.continue k (find_thread t tid).name)
  | _ -> None

let run_fiber t th fn =
  Effect.Deep.match_with fn ()
    {
      retc = (fun () -> finish t th);
      exnc = (fun e -> raise (Thread_crash (th.name, e)));
      effc = (fun eff -> handle_effect t eff);
    }

(* Finish a reified suspended operation and resume the fiber. Memory
   mutations happen here, at dispatch, so they linearize in global
   virtual-time order. *)
let resume t pend =
  match pend with
  | P_none | P_start _ -> assert false
  | P_unit k -> Effect.Deep.continue k ()
  | P_value (k, v) -> Effect.Deep.continue k v
  | P_read (k, addr) -> Effect.Deep.continue k (Memory.read t.mem addr)
  | P_write (k, addr, v) -> Effect.Deep.continue k (Memory.write t.mem addr v)
  | P_rmw (k, op, addr, v) ->
    Effect.Deep.continue k
      (match op with
      | Rmw_or -> Memory.fetch_and_or t.mem addr v
      | Rmw_add -> Memory.fetch_and_add t.mem addr v
      | Rmw_swap -> Memory.swap t.mem addr v)
  | P_cas (k, addr, expected, desired) ->
    Effect.Deep.continue k (Memory.compare_and_swap t.mem addr ~expected ~desired)

(* Pick the processor whose next runnable thread executes earliest.
   Ties break toward the lowest processor id, keeping runs
   deterministic. Returns the dispatch key (the global next virtual
   time) so the run loop can fire due fault timers first. *)
let pick t =
  let best = ref None in
  Array.iter
    (fun p ->
      let next_wake =
        if p.cont != no_thread then Some p.cont.wake_at
        else Engine.Pqueue.min_key p.runq
      in
      match next_wake with
      | None -> ()
      | Some wake ->
        let key = max p.pnow wake in
        (match !best with
        | Some (bkey, _) when bkey <= key -> ()
        | _ -> best := Some (key, p)))
    t.procs;
  !best

let dispatch_thread t p th =
  if t.record_schedule then t.schedule_log <- th.tid :: t.schedule_log;
  if th.state = Finished then ()
    (* a killed thread still queued: consume the slot, run nothing *)
  else begin
  let start = max p.pnow th.wake_at in
  let start =
    if p.last_tid >= 0 && p.last_tid <> th.tid then begin
      Engine.Counters.incr t.counters "sched.switches";
      emit t ~time:start ~proc:p.pid ~tid:th.tid ~other:(-1) Ev_switch;
      p.busy_ns <- p.busy_ns + t.cfg.switch_ns;
      p.slice_ns <- 0;
      start + t.cfg.switch_ns
    end
    else start
  in
  let start =
    if th.penalty_ns > 0 then begin
      (* A fault-injected stall (e.g. lock-holder delay): the thread is
         charged the penalty before it resumes. *)
      let pen = th.penalty_ns in
      th.penalty_ns <- 0;
      Engine.Counters.incr t.counters "sched.fault_stalls";
      start + pen
    end
    else start
  in
  p.last_tid <- th.tid;
  p.pnow <- start;
  if th.work_left > 0 then begin
    (* Preemption quantum: slice the remaining computation. *)
    let chunk =
      match t.cfg.quantum_ns with Some q -> min th.work_left q | None -> th.work_left
    in
    th.work_left <- th.work_left - chunk;
    th.cpu_ns <- th.cpu_ns + chunk;
    p.busy_ns <- p.busy_ns + chunk;
    p.pnow <- start + chunk;
    p.slice_ns <- p.slice_ns + chunk;
    continue_on t p th ~at:p.pnow
  end
  else begin
    th.state <- Running;
    t.current <- th;
    (match th.pending with
    | P_none -> assert false
    | P_start fn ->
      th.pending <- P_none;
      run_fiber t th fn
    | pend ->
      th.pending <- P_none;
      resume t pend);
    t.current <- no_thread
  end
  end

let dispatch t p =
  let th =
    if p.cont != no_thread then begin
      let th = p.cont in
      p.cont <- no_thread;
      th
    end
    else Engine.Pqueue.pop_min_value_exn p.runq
  in
  dispatch_thread t p th

(* {2 Controlled scheduling}

   Two host-side steering mechanisms over the same dispatch machinery:
   a {e decision list} (the serialized schedule: the tid every upcoming
   dispatch must pick, replayable bit-for-bit) and a {e chooser} (a
   callback consulted per dispatch once the list is exhausted, used by
   the witness engine to steer a run towards a predicted interleaving).
   Neither changes what a dispatched thread does — only which runnable
   thread goes next — so any controlled schedule is a schedule the
   machine could have taken. *)

let set_schedule_control t decisions = t.control <- decisions
let schedule_control_remaining t = List.length t.control
let set_dispatch_chooser t chooser = t.chooser <- chooser

let set_record_schedule t flag =
  t.record_schedule <- flag;
  if flag then t.schedule_log <- []

let recorded_schedule t = List.rev t.schedule_log
let control_diverged t = t.control_diverged

(* Every thread the machine could legally dispatch right now: each
   processor's continuation slot if occupied (non-preemptive execution
   means queued threads on that processor are not eligible), otherwise
   its queued non-finished threads. Sorted by tid for determinism. *)
let dispatch_candidates t =
  let acc = ref [] in
  Array.iter
    (fun p ->
      if p.cont != no_thread then
        acc :=
          { choice_tid = p.cont.tid; choice_proc = p.pid;
            choice_key = max p.pnow p.cont.wake_at }
          :: !acc
      else
        Engine.Pqueue.iter p.runq (fun _ th ->
            if th.state <> Finished then
              acc :=
                { choice_tid = th.tid; choice_proc = p.pid;
                  choice_key = max p.pnow th.wake_at }
                :: !acc))
    t.procs;
  let arr = Array.of_list !acc in
  Array.sort (fun a b -> compare a.choice_tid b.choice_tid) arr;
  arr

(* Locate a dispatchable thread (continuation slot or run queue) without
   extracting it: the run loop must know the dispatch key first, since a
   due fault timer fires instead and the decision is then re-evaluated. *)
let locate_dispatchable t tid =
  match Hashtbl.find_opt t.threads tid with
  | None -> None
  | Some th ->
    let p = t.procs.(th.proc) in
    if p.cont == th then Some (p, th)
    else begin
      let found = ref false in
      Engine.Pqueue.iter p.runq (fun _ th' -> if th' == th then found := true);
      if !found then Some (p, th) else None
    end

let extract_thread t p th =
  ignore t;
  if p.cont == th then begin
    p.cont <- no_thread;
    true
  end
  else Engine.Pqueue.remove p.runq (fun th' -> th' == th) <> None

(* What the next scheduling step should be, under control. [`Forced]
   carries whether the pick consumes the head of the decision list. A
   decision naming a thread that is not dispatchable marks the run as
   diverged and control is abandoned (default scheduling resumes); the
   same applies to a chooser returning a non-candidate tid. *)
let controlled_pick t =
  let default () =
    match pick t with Some (key, p) -> Some (key, `Default p) | None -> None
  in
  match t.control with
  | tid :: _ -> (
    match locate_dispatchable t tid with
    | Some (p, th) -> Some (max p.pnow th.wake_at, `Forced (p, th, true))
    | None ->
      t.control <- [];
      t.control_diverged <- true;
      default ())
  | [] -> (
    match t.chooser with
    | None -> default ()
    | Some choose -> (
      let cands = dispatch_candidates t in
      if Array.length cands = 0 then default ()
      else
        let tid = choose cands in
        if tid < 0 then default ()
        else if not (Array.exists (fun c -> c.choice_tid = tid) cands) then begin
          t.control_diverged <- true;
          default ()
        end
        else
          match locate_dispatchable t tid with
          | Some (p, th) -> Some (max p.pnow th.wake_at, `Forced (p, th, false))
          | None ->
            t.control_diverged <- true;
            default ()))

(* One blocked/joining thread's entry in the deadlock payload. When
   lock annotations were flowing (any annot subscriber), each entry
   also names the thread's last blocking site (the lock it last
   requested) and the locks it still holds. *)
let stuck_description th =
  let verb =
    match th.state with Joining -> "joining" | _ (* Blocked *) -> "blocked"
  in
  let site = if th.last_block_site = "" then "" else " at " ^ th.last_block_site in
  let holding =
    match th.held_locks with
    | [] -> ""
    | held -> Printf.sprintf ", holding [%s]" (String.concat ", " (List.rev held))
  in
  Printf.sprintf "%s(#%d %s%s%s)" th.name th.tid verb site holding

let deadlock_report t =
  let stuck =
    Hashtbl.fold
      (fun _ th acc ->
        match th.state with
        | Blocked | Joining -> stuck_description th :: acc
        | Ready | Running | Finished -> acc)
      t.threads []
  in
  String.concat ", " (List.sort String.compare stuck)

let state_name = function
  | Ready -> "ready"
  | Running -> "running"
  | Blocked -> "blocked"
  | Joining -> "joining"
  | Finished -> "finished"

(* A deterministic full dump of the machine for structured aborts: no
   wall-clock, no addresses — byte-identical across runs and domain
   counts. *)
let diagnostics t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "machine at t=%dns: %d live thread(s), %d event(s), %d timer(s) pending\n"
       (machine_time t) t.live t.events (List.length t.timers));
  Array.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "  proc %d: now=%dns busy=%dns runq=%d\n" p.pid p.pnow p.busy_ns
           (Engine.Pqueue.size p.runq + if p.cont != no_thread then 1 else 0)))
    t.procs;
  Hashtbl.fold (fun _ th acc -> th :: acc) t.threads []
  |> List.sort (fun a b -> compare a.tid b.tid)
  |> List.iter (fun th ->
         let site = if th.last_block_site = "" then "" else " site=" ^ th.last_block_site in
         let holding =
           match th.held_locks with
           | [] -> ""
           | held ->
             Printf.sprintf " holding=[%s]" (String.concat ", " (List.rev held))
         in
         Buffer.add_string buf
           (Printf.sprintf "  thread %s(#%d): %s cpu=%dns%s%s\n" th.name th.tid
              (state_name th.state) th.cpu_ns site holding));
  Buffer.contents buf

(* Pop and run every timer due at or before [upto]. Callbacks run
   host-side (no current thread) and may mutate the machine: stall
   processors, kill threads, degrade memory modules, re-arm timers.
   Timers armed during the batch for a time <= [upto] fire on the next
   loop iteration, so a re-arming callback cannot livelock the batch. *)
let fire_timers t ~upto =
  let rec split due = function
    | (at, _, fn) :: tl when at <= upto -> split (fn :: due) tl
    | rest -> (List.rev due, rest)
  in
  let due, rest = split [] t.timers in
  t.timers <- rest;
  List.iter (fun fn -> fn ()) due

(* Host-side hooks fired at the start of every [run], on the domain
   about to run the machine. Registered once, at module-initialisation
   time, by libraries layered above the machine that keep per-domain
   state keyed to "the current simulation" — e.g. the adaptive-object
   registry resets itself here so entries never leak from a finished
   run into the next one on the same domain. The list is
   prepend-then-read under an [Atomic] so concurrent [Engine.Runner]
   domains starting runs never observe a torn list. *)
let run_start_hooks : (unit -> unit) list Atomic.t = Atomic.make []

let at_run_start f =
  let rec add () =
    let hooks = Atomic.get run_start_hooks in
    if not (Atomic.compare_and_set run_start_hooks hooks (f :: hooks)) then add ()
  in
  add ()

let run ?(main_name = "main") t main =
  if t.started then invalid_arg "Sched.run: this machine already ran";
  t.started <- true;
  List.iter (fun f -> f ()) (List.rev (Atomic.get run_start_hooks));
  (* Publish the annotation-subscriber state for this machine to the
     domain running it: with no subscriber, Ops.annotate skips the
     effect (and the payload) entirely. Saved/restored so nested or
     back-to-back runs on the same domain stay correct. *)
  let saved_annots = Ops.annotations_enabled () in
  Ops.set_annotations_enabled (t.annot_hooks <> []);
  Fun.protect
    ~finally:(fun () ->
      Ops.set_annotations_enabled saved_annots;
      t.final <- machine_time t)
    (fun () ->
      let main_thread = new_thread t ~name:main_name ~proc:0 ~prio:0 main in
      make_ready t main_thread ~at:0;
      let continue = ref true in
      let no_runnable () =
        if t.live = 0 then
          (* All threads finished: the run is over. Timers still
             pending describe faults the execution never reached —
             discard them rather than perturb the final clocks. *)
          continue := false
        else (
          (* Nothing runnable but threads remain. Pending timers may
             still revive the machine (a kill releases joiners, a
             penalty expires), so fire the earliest batch before
             concluding deadlock. *)
          match t.timers with
          | (at, _, _) :: _ -> fire_timers t ~upto:at
          | [] -> raise (Deadlock (deadlock_report t)))
      in
      let uncontrolled t =
        (match t.control with [] -> true | _ -> false)
        && match t.chooser with None -> true | Some _ -> false
      in
      while !continue do
        (match t.abort with
        | Some reason -> raise (Abort_requested reason)
        | None -> ());
        t.events <- t.events + 1;
        Engine.Counters.incr t.counters "sched.events";
        if t.events > t.cfg.max_events then raise Event_limit_exceeded;
        if uncontrolled t then (
          (* the hot path: identical to the pre-control scheduler *)
          match pick t with
          | Some (key, p) -> (
            match t.timers with
            | (at, _, _) :: _ when at <= key -> fire_timers t ~upto:key
            | _ -> dispatch t p)
          | None -> no_runnable ())
        else
          match controlled_pick t with
          | Some (key, picked) -> (
            match t.timers with
            | (at, _, _) :: _ when at <= key -> fire_timers t ~upto:key
            | _ -> (
              match picked with
              | `Default p -> dispatch t p
              | `Forced (p, th, consume) ->
                if consume then (
                  match t.control with
                  | _ :: rest -> t.control <- rest
                  | [] -> ());
                if extract_thread t p th then dispatch_thread t p th
                else t.control_diverged <- true))
          | None -> no_runnable ()
      done)

let run_outcome ?main_name t main =
  match run ?main_name t main with
  | () -> Completed
  | exception Deadlock msg ->
    Aborted { reason = Deadlocked msg; diagnostics = diagnostics t }
  | exception Event_limit_exceeded ->
    Aborted { reason = Event_limit; diagnostics = diagnostics t }
  | exception Thread_crash (name, e) ->
    Aborted { reason = Crashed (name, e); diagnostics = diagnostics t }
  | exception Abort_requested reason ->
    Aborted { reason = Stop_requested reason; diagnostics = diagnostics t }
