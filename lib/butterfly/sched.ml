exception Deadlock of string
exception Event_limit_exceeded
exception Thread_crash of string * exn

type tstate = Ready | Running | Blocked | Joining | Finished

type event_kind =
  | Ev_fork
  | Ev_switch
  | Ev_preempt
  | Ev_block
  | Ev_wakeup
  | Ev_token
  | Ev_token_use
  | Ev_join
  | Ev_finish

let event_kind_name = function
  | Ev_fork -> "fork"
  | Ev_switch -> "switch"
  | Ev_preempt -> "preempt"
  | Ev_block -> "block"
  | Ev_wakeup -> "wakeup"
  | Ev_token -> "token"
  | Ev_token_use -> "token-use"
  | Ev_join -> "join"
  | Ev_finish -> "finish"

type event = { time : int; proc : int; tid : int; kind : event_kind; other : int }

type access = {
  access_time : int;
  access_proc : int;
  access_tid : int;
  access_addr : Memory.addr;
  access_kind : Memory.access;
}

type annot = {
  annot_time : int;
  annot_proc : int;
  annot_tid : int;
  annotation : Ops.annotation;
}

type pending = Pending : ('a, unit) Effect.Deep.continuation * (unit -> 'a) -> pending

type thread = {
  tid : int;
  name : string;
  mutable prio : int;
  mutable state : tstate;
  mutable proc : int;
  mutable pending : pending option;
  mutable start_fn : (unit -> unit) option;
  mutable wake_at : int;
  mutable wake_tokens : int;
  mutable token_wakers : int list;  (* waker tids, oldest first, one per token *)
  mutable joiners : int list;
  mutable work_left : int;
  mutable cpu_ns : int;
}

type proc = {
  pid : int;
  mutable pnow : int;
  runq : thread Engine.Pqueue.t;
  mutable cont : thread option;
      (* non-preemptive continuation: the thread currently occupying
         the processor, resumed ahead of queued threads until it
         blocks, delays, yields or exhausts its quantum *)
  mutable slice_ns : int;  (* cpu consumed since the last scheduling point *)
  mutable last_tid : int;
  mutable busy_ns : int;
}

type t = {
  cfg : Config.t;
  mem : Memory.t;
  procs : proc array;
  threads : (int, thread) Hashtbl.t;
  mutable next_tid : int;
  mutable live : int;
  mutable events : int;
  mutable current : thread option;
  counters : Engine.Counters.t;
  rng : Engine.Rng.t;
  mutable trace_hook : (time:int -> tid:int -> string -> unit) option;
  mutable event_hooks : (event -> unit) list;  (* subscription order *)
  mutable access_hooks : (access -> unit) list;
  mutable annot_hooks : (annot -> unit) list;
  mutable started : bool;
  mutable final : int;
  mutable place_cursor : int;
}

let create (cfg : Config.t) =
  if cfg.processors <= 0 then invalid_arg "Sched.create: need at least one processor";
  {
    cfg;
    mem = Memory.create cfg;
    procs =
      Array.init cfg.processors (fun pid ->
          {
            pid;
            pnow = 0;
            runq = Engine.Pqueue.create ();
            cont = None;
            slice_ns = 0;
            last_tid = -1;
            busy_ns = 0;
          });
    threads = Hashtbl.create 64;
    next_tid = 0;
    live = 0;
    events = 0;
    current = None;
    counters = Engine.Counters.create ();
    rng = Engine.Rng.create cfg.seed;
    trace_hook = None;
    event_hooks = [];
    access_hooks = [];
    annot_hooks = [];
    started = false;
    final = 0;
    place_cursor = 0;
  }

let config t = t.cfg
let memory t = t.mem
let counters t = t.counters
let final_time t = t.final
let processor_busy_ns t = Array.map (fun p -> p.busy_ns) t.procs
let runq_length t pid =
  let p = t.procs.(pid) in
  Engine.Pqueue.size p.runq + match p.cont with Some _ -> 1 | None -> 0
let live_threads t = t.live
let set_trace_hook t hook = t.trace_hook <- Some hook
let add_event_hook t hook = t.event_hooks <- t.event_hooks @ [ hook ]
let set_event_hook = add_event_hook
let add_access_hook t hook = t.access_hooks <- t.access_hooks @ [ hook ]
let add_annot_hook t hook = t.annot_hooks <- t.annot_hooks @ [ hook ]

let emit ?(other = -1) t ~time ~proc ~tid kind =
  match t.event_hooks with
  | [] -> ()
  | hooks ->
    let ev = { time; proc; tid; kind; other } in
    List.iter (fun hook -> hook ev) hooks

let emit_access t ~time ~proc ~tid addr kind =
  match t.access_hooks with
  | [] -> ()
  | hooks ->
    let ev =
      { access_time = time; access_proc = proc; access_tid = tid;
        access_addr = addr; access_kind = kind }
    in
    List.iter (fun hook -> hook ev) hooks

let thread_report t =
  Hashtbl.fold (fun _ th acc -> (th.tid, th.name, th.cpu_ns) :: acc) t.threads []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let current_thread t =
  match t.current with
  | Some th -> th
  | None -> invalid_arg "Butterfly: operation performed outside a running thread"

let make_ready t th ~at =
  th.state <- Ready;
  th.wake_at <- at;
  Engine.Pqueue.add t.procs.(th.proc).runq ~key:at th

(* The currently-running thread keeps its processor (non-preemptive
   execution), unless a preemption quantum is configured and its slice
   is exhausted — then it is demoted behind the queued threads. *)
let continue_on t p th ~at =
  th.state <- Ready;
  th.wake_at <- at;
  match t.cfg.quantum_ns with
  | Some quantum when p.slice_ns >= quantum ->
    p.slice_ns <- 0;
    Engine.Counters.incr t.counters "sched.preemptions";
    emit t ~time:at ~proc:p.pid ~tid:th.tid Ev_preempt;
    Engine.Pqueue.add p.runq ~key:at th
  | _ -> p.cont <- Some th

(* Charge [ns] of processor occupancy ending at the thread's next wake
   time: the processor is busy until then (its clock advances), and the
   fiber is suspended and rescheduled at the completion time. *)
let charge_and_resume t th p ~ns (Pending _ as pend) =
  th.pending <- Some pend;
  th.cpu_ns <- th.cpu_ns + ns;
  p.busy_ns <- p.busy_ns + ns;
  p.pnow <- p.pnow + ns;
  p.slice_ns <- p.slice_ns + ns;
  continue_on t p th ~at:p.pnow

let suspend_value t th p ~ns k value =
  charge_and_resume t th p ~ns (Pending (k, value))

let suspend_unit t th p ~ns k = suspend_value t th p ~ns k (fun () -> ())

(* Thread placement for unpinned forks: round-robin, skipping processor
   load imbalance concerns (deterministic and uniform). *)
let place t =
  let pid = t.place_cursor in
  t.place_cursor <- (t.place_cursor + 1) mod Array.length t.procs;
  pid

let new_thread t ~name ~proc ~prio fn =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let th =
    {
      tid;
      name;
      prio;
      state = Ready;
      proc;
      pending = None;
      start_fn = Some fn;
      wake_at = 0;
      wake_tokens = 0;
      token_wakers = [];
      joiners = [];
      work_left = 0;
      cpu_ns = 0;
    }
  in
  Hashtbl.add t.threads tid th;
  t.live <- t.live + 1;
  th

let finish t th =
  th.state <- Finished;
  emit t ~time:t.procs.(th.proc).pnow ~proc:th.proc ~tid:th.tid Ev_finish;
  t.live <- t.live - 1;
  let p = t.procs.(th.proc) in
  let wake_time = p.pnow + t.cfg.join_ns in
  List.iter
    (fun jtid ->
      let joiner = Hashtbl.find t.threads jtid in
      if joiner.state = Joining then begin
        emit t ~time:wake_time ~proc:joiner.proc ~tid:jtid ~other:th.tid Ev_join;
        make_ready t joiner ~at:wake_time
      end)
    th.joiners;
  th.joiners <- []

let find_thread t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some th -> th
  | None -> invalid_arg (Printf.sprintf "Butterfly: unknown thread %d" tid)

let mem_access_kind = function
  | `Read -> Memory.Read_access
  | `Write -> Memory.Write_access
  | `Atomic -> Memory.Atomic_access

let counter_of_kind = function
  | `Read -> "mem.read"
  | `Write -> "mem.write"
  | `Atomic -> "mem.atomic"

(* Reserve a memory access starting now and suspend the fiber until its
   completion time; the value thunk (which performs the actual word
   mutation) runs at dispatch, i.e. in global virtual-time order. *)
let memory_op : type r.
    t -> thread -> proc -> kind:_ -> Memory.addr -> (unit -> r) -> (r, unit) Effect.Deep.continuation -> unit =
 fun t th p ~kind addr value k ->
  Engine.Counters.incr t.counters (counter_of_kind kind);
  emit_access t ~time:p.pnow ~proc:p.pid ~tid:th.tid addr (mem_access_kind kind);
  let complete =
    Memory.reserve t.mem t.cfg ~from_node:p.pid addr (mem_access_kind kind) ~start:p.pnow
  in
  suspend_value t th p ~ns:(complete - p.pnow) k value

let handle_effect : type a. t -> a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option =
 fun t eff ->
  let cfg = t.cfg in
  match eff with
  | Ops.E_read addr ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        memory_op t th p ~kind:`Read addr (fun () -> Memory.read t.mem addr) k)
  | Ops.E_write (addr, v) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        memory_op t th p ~kind:`Write addr (fun () -> Memory.write t.mem addr v) k)
  | Ops.E_fetch_and_or (addr, v) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        memory_op t th p ~kind:`Atomic addr (fun () -> Memory.fetch_and_or t.mem addr v) k)
  | Ops.E_fetch_and_add (addr, v) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        memory_op t th p ~kind:`Atomic addr (fun () -> Memory.fetch_and_add t.mem addr v) k)
  | Ops.E_swap (addr, v) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        memory_op t th p ~kind:`Atomic addr (fun () -> Memory.swap t.mem addr v) k)
  | Ops.E_cas (addr, expected, desired) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        memory_op t th p ~kind:`Atomic addr
          (fun () -> Memory.compare_and_swap t.mem addr ~expected ~desired)
          k)
  | Ops.E_alloc (node, n) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let node = match node with Some node -> node | None -> th.proc in
        let addrs = Memory.alloc t.mem ~node n in
        suspend_value t th p ~ns:cfg.local_write_ns k (fun () -> addrs))
  | Ops.E_work ns ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let chunk = match cfg.quantum_ns with Some q -> min ns q | None -> ns in
        th.work_left <- ns - chunk;
        suspend_unit t th p ~ns:chunk k)
  | Ops.E_work_instrs n ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let ns = Config.instrs cfg n in
        let chunk = match cfg.quantum_ns with Some q -> min ns q | None -> ns in
        th.work_left <- ns - chunk;
        suspend_unit t th p ~ns:chunk k)
  | Ops.E_delay ns ->
    Some
      (fun k ->
        (* A delay releases the processor: no cpu charge, later wake. *)
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        p.slice_ns <- 0;
        th.pending <- Some (Pending (k, fun () -> ()));
        make_ready t th ~at:(p.pnow + ns))
  | Ops.E_now ->
    Some
      (fun k ->
        let th = current_thread t in
        Effect.Deep.continue k t.procs.(th.proc).pnow)
  | Ops.E_fork spec ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        Engine.Counters.incr t.counters "sched.forks";
        let proc =
          match spec.proc with
          | Some pid ->
            if pid < 0 || pid >= Array.length t.procs then
              invalid_arg (Printf.sprintf "fork: bad processor %d" pid);
            pid
          | None -> place t
        in
        let child = new_thread t ~name:spec.name ~proc ~prio:spec.prio spec.f in
        emit t ~time:p.pnow ~proc ~tid:child.tid ~other:th.tid Ev_fork;
        make_ready t child ~at:(p.pnow + cfg.fork_ns + cfg.wakeup_latency_ns);
        suspend_value t th p ~ns:cfg.fork_ns k (fun () -> child.tid))
  | Ops.E_join tid ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        let target = find_thread t tid in
        if target.state = Finished then begin
          emit t ~time:p.pnow ~proc:th.proc ~tid:th.tid ~other:tid Ev_join;
          suspend_unit t th p ~ns:cfg.join_ns k
        end
        else begin
          th.state <- Joining;
          th.pending <- Some (Pending (k, fun () -> ()));
          target.joiners <- th.tid :: target.joiners
        end)
  | Ops.E_yield ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        Engine.Counters.incr t.counters "sched.yields";
        th.pending <- Some (Pending (k, fun () -> ()));
        th.cpu_ns <- th.cpu_ns + cfg.yield_ns;
        p.busy_ns <- p.busy_ns + cfg.yield_ns;
        p.pnow <- p.pnow + cfg.yield_ns;
        p.slice_ns <- 0;
        make_ready t th ~at:p.pnow)
  | Ops.E_block ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        Engine.Counters.incr t.counters "sched.blocks";
        if th.wake_tokens > 0 then begin
          (* A wakeup already arrived: absorb it and keep running. *)
          th.wake_tokens <- th.wake_tokens - 1;
          let waker =
            match th.token_wakers with
            | w :: rest ->
              th.token_wakers <- rest;
              w
            | [] -> -1
          in
          emit t ~time:p.pnow ~proc:th.proc ~tid:th.tid ~other:waker Ev_token_use;
          suspend_unit t th p ~ns:0 k
        end
        else begin
          th.state <- Blocked;
          emit t ~time:p.pnow ~proc:th.proc ~tid:th.tid Ev_block;
          th.pending <- Some (Pending (k, fun () -> ()));
          (* The processor spends [block_ns] saving the context. *)
          p.pnow <- p.pnow + cfg.block_ns;
          p.busy_ns <- p.busy_ns + cfg.block_ns;
          th.cpu_ns <- th.cpu_ns + cfg.block_ns;
          p.slice_ns <- 0
        end)
  | Ops.E_wakeup tid ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = t.procs.(th.proc) in
        Engine.Counters.incr t.counters "sched.wakeups";
        let target = find_thread t tid in
        (match target.state with
        | Blocked ->
          target.state <- Ready;
          emit t ~time:p.pnow ~proc:target.proc ~tid:target.tid ~other:th.tid Ev_wakeup;
          make_ready t target ~at:(p.pnow + cfg.unblock_ns + cfg.wakeup_latency_ns)
        | Finished -> Engine.Counters.incr t.counters "sched.wakeups_late"
        | Ready | Running | Joining ->
          target.wake_tokens <- target.wake_tokens + 1;
          target.token_wakers <- target.token_wakers @ [ th.tid ];
          emit t ~time:p.pnow ~proc:target.proc ~tid:target.tid ~other:th.tid Ev_token);
        suspend_unit t th p ~ns:cfg.unblock_ns k)
  | Ops.E_self -> Some (fun k -> Effect.Deep.continue k (current_thread t).tid)
  | Ops.E_my_processor -> Some (fun k -> Effect.Deep.continue k (current_thread t).proc)
  | Ops.E_set_priority (tid, prio) ->
    Some
      (fun k ->
        (find_thread t tid).prio <- prio;
        Effect.Deep.continue k ())
  | Ops.E_priority_of tid -> Some (fun k -> Effect.Deep.continue k (find_thread t tid).prio)
  | Ops.E_processors -> Some (fun k -> Effect.Deep.continue k (Array.length t.procs))
  | Ops.E_random bound -> Some (fun k -> Effect.Deep.continue k (Engine.Rng.int t.rng bound))
  | Ops.E_trace msg ->
    Some
      (fun k ->
        (match t.trace_hook with
        | Some hook ->
          let th = current_thread t in
          hook ~time:t.procs.(th.proc).pnow ~tid:th.tid msg
        | None -> ());
        Effect.Deep.continue k ())
  | Ops.E_annotate annotation ->
    Some
      (fun k ->
        (match t.annot_hooks with
        | [] -> ()
        | hooks ->
          let th = current_thread t in
          let p = t.procs.(th.proc) in
          let ev =
            { annot_time = p.pnow; annot_proc = p.pid; annot_tid = th.tid; annotation }
          in
          List.iter (fun hook -> hook ev) hooks);
        Effect.Deep.continue k ())
  | Ops.E_thread_name tid -> Some (fun k -> Effect.Deep.continue k (find_thread t tid).name)
  | _ -> None

let run_fiber t th fn =
  Effect.Deep.match_with fn ()
    {
      retc = (fun () -> finish t th);
      exnc = (fun e -> raise (Thread_crash (th.name, e)));
      effc = (fun eff -> handle_effect t eff);
    }

(* Pick the processor whose next runnable thread executes earliest.
   Ties break toward the lowest processor id, keeping runs
   deterministic. *)
let pick t =
  let best = ref None in
  Array.iter
    (fun p ->
      let next_wake =
        match p.cont with
        | Some th -> Some th.wake_at
        | None -> Engine.Pqueue.min_key p.runq
      in
      match next_wake with
      | None -> ()
      | Some wake ->
        let key = max p.pnow wake in
        (match !best with
        | Some (bkey, _) when bkey <= key -> ()
        | _ -> best := Some (key, p)))
    t.procs;
  match !best with Some (_, p) -> Some p | None -> None

let dispatch t p =
  let taken =
    match p.cont with
    | Some th ->
      p.cont <- None;
      Some th
    | None -> Option.map snd (Engine.Pqueue.pop_min p.runq)
  in
  match taken with
  | None -> assert false
  | Some th ->
    let start = max p.pnow th.wake_at in
    let start =
      if p.last_tid >= 0 && p.last_tid <> th.tid then begin
        Engine.Counters.incr t.counters "sched.switches";
        emit t ~time:start ~proc:p.pid ~tid:th.tid Ev_switch;
        p.busy_ns <- p.busy_ns + t.cfg.switch_ns;
        p.slice_ns <- 0;
        start + t.cfg.switch_ns
      end
      else start
    in
    p.last_tid <- th.tid;
    p.pnow <- start;
    if th.work_left > 0 then begin
      (* Preemption quantum: slice the remaining computation. *)
      let chunk =
        match t.cfg.quantum_ns with Some q -> min th.work_left q | None -> th.work_left
      in
      th.work_left <- th.work_left - chunk;
      th.cpu_ns <- th.cpu_ns + chunk;
      p.busy_ns <- p.busy_ns + chunk;
      p.pnow <- start + chunk;
      p.slice_ns <- p.slice_ns + chunk;
      continue_on t p th ~at:p.pnow
    end
    else begin
      th.state <- Running;
      t.current <- Some th;
      (match (th.start_fn, th.pending) with
      | Some fn, None ->
        th.start_fn <- None;
        run_fiber t th fn
      | None, Some (Pending (k, value)) ->
        th.pending <- None;
        Effect.Deep.continue k (value ())
      | _ -> assert false);
      t.current <- None
    end

let deadlock_report t =
  let stuck =
    Hashtbl.fold
      (fun _ th acc ->
        match th.state with
        | Blocked -> Printf.sprintf "%s(#%d blocked)" th.name th.tid :: acc
        | Joining -> Printf.sprintf "%s(#%d joining)" th.name th.tid :: acc
        | Ready | Running | Finished -> acc)
      t.threads []
  in
  String.concat ", " (List.sort String.compare stuck)

let run ?(main_name = "main") t main =
  if t.started then invalid_arg "Sched.run: this machine already ran";
  t.started <- true;
  let main_thread = new_thread t ~name:main_name ~proc:0 ~prio:0 main in
  make_ready t main_thread ~at:0;
  let continue = ref true in
  while !continue do
    t.events <- t.events + 1;
    Engine.Counters.incr t.counters "sched.events";
    if t.events > t.cfg.max_events then raise Event_limit_exceeded;
    match pick t with
    | Some p -> dispatch t p
    | None ->
      if t.live > 0 then raise (Deadlock (deadlock_report t));
      continue := false
  done;
  t.final <- Array.fold_left (fun acc p -> max acc p.pnow) 0 t.procs
