exception Deadlock of string
exception Event_limit_exceeded
exception Thread_crash of string * exn
exception Abort_requested of string

type abort_reason =
  | Deadlocked of string
  | Event_limit
  | Crashed of string * exn
  | Stop_requested of string

type outcome = Completed | Aborted of { reason : abort_reason; diagnostics : string }

let abort_reason_message = function
  | Deadlocked msg -> "deadlock: " ^ msg
  | Event_limit -> "event limit exceeded"
  | Crashed (name, e) ->
    Printf.sprintf "thread %s crashed: %s" name (Printexc.to_string e)
  | Stop_requested msg -> "abort requested: " ^ msg

type event_kind =
  | Ev_fork
  | Ev_switch
  | Ev_preempt
  | Ev_block
  | Ev_wakeup
  | Ev_token
  | Ev_token_use
  | Ev_join
  | Ev_finish

let event_kind_name = function
  | Ev_fork -> "fork"
  | Ev_switch -> "switch"
  | Ev_preempt -> "preempt"
  | Ev_block -> "block"
  | Ev_wakeup -> "wakeup"
  | Ev_token -> "token"
  | Ev_token_use -> "token-use"
  | Ev_join -> "join"
  | Ev_finish -> "finish"

type event = { time : int; proc : int; tid : int; kind : event_kind; other : int }

type access = {
  access_time : int;
  access_proc : int;
  access_tid : int;
  access_addr : Memory.addr;
  access_kind : Memory.access;
}

type annot = {
  annot_time : int;
  annot_proc : int;
  annot_tid : int;
  annotation : Ops.annotation;
}

type rmw = Rmw_or | Rmw_add | Rmw_swap

(* A thread's reified suspended operation. The memory-op constructors
   defer the actual word mutation to dispatch time, i.e. the global
   virtual-time order, without allocating a closure per operation —
   the payload lives in the constructor's flat fields. [P_none] marks
   "not suspended" (no option boxing); [P_start] carries a
   not-yet-started thread's body.

   The [P_probe_*]/[P_hint_*] constructors stage the fused operations
   (Ops.E_lock_probe / Ops.E_read_hint): each dispatch advances the
   sequence by exactly one charge, re-suspending the same continuation,
   so the fused encoding produces the same dispatches, the same
   intermediate machine states and the same memory linearization points
   as the decomposed effects it replaces. *)
type pending =
  | P_none : pending
  | P_start : (unit -> unit) -> pending
  | P_unit : (unit, unit) Effect.Deep.continuation -> pending
  | P_value : ('a, unit) Effect.Deep.continuation * 'a -> pending
  | P_read : (int, unit) Effect.Deep.continuation * Memory.addr -> pending
  | P_write : (unit, unit) Effect.Deep.continuation * Memory.addr * int -> pending
  | P_rmw : (int, unit) Effect.Deep.continuation * rmw * Memory.addr * int -> pending
  | P_cas : (bool, unit) Effect.Deep.continuation * Memory.addr * int * int -> pending
  | P_probe_tas :
      (Ops.probe_result, unit) Effect.Deep.continuation * Memory.addr * int * int * int
      -> pending  (* test-and-set charged next; retry_instrs, gap_ns, until *)
  | P_probe_mut :
      (Ops.probe_result, unit) Effect.Deep.continuation * Memory.addr * int * int * int
      -> pending  (* test-and-set mutates at this dispatch *)
  | P_probe_gap :
      (Ops.probe_result, unit) Effect.Deep.continuation * int -> pending
      (* retry overhead charged; gap_ns remains *)
  | P_hint_read :
      (int, unit) Effect.Deep.continuation * Memory.addr * int * int -> pending
      (* read charged next; gap_ns, expect *)
  | P_hint_val :
      (int, unit) Effect.Deep.continuation * Memory.addr * int * int -> pending
      (* read mutates (observes) at this dispatch *)

(* Cold per-thread state. The hot scalars (status, processor, priority,
   wake time, cpu, penalty, work debt, wake tokens) live in the
   machine's [Mstate.t] int arrays, indexed by tid. *)
type thread = {
  tid : int;
  name : string;
  mutable pending : pending;
  mutable token_wakers : int list;  (* waker tids, oldest first, one per token *)
  mutable joiners : int list;
  mutable last_block_site : string;  (* last lock requested (annot bus), "" if none *)
  mutable held_locks : string list;  (* lock names acquired and not yet released *)
}

(* Sentinel standing for "no thread" in processor slots, run queues and
   the dense thread table, so those hot fields are unboxed. Never
   scheduled, never mutated; shared across machines and domains. *)
let no_thread =
  {
    tid = -1;
    name = "<none>";
    pending = P_none;
    token_wakers = [];
    joiners = [];
    last_block_site = "";
    held_locks = [];
  }

type proc = {
  pid : int;
  runq : thread Engine.Pqueue.t;
  mutable cont : thread;
      (* non-preemptive continuation: the thread currently occupying
         the processor, resumed ahead of queued threads until it
         blocks, delays, yields or exhausts its quantum.
         [no_thread] when vacant. *)
}

type t = {
  cfg : Config.t;
  mem : Memory.t;
  st : Mstate.t;  (* flat hot state: clocks, slices, thread scalars *)
  procs : proc array;
  mutable tarr : thread array;  (* dense, indexed by tid; grown by doubling *)
  mutable next_tid : int;
  mutable live : int;
  mutable current : thread;  (* [no_thread] outside dispatch *)
  counters : Engine.Counters.t;
  c_events : int ref;  (* cached cells of the four hottest counters *)
  c_read : int ref;
  c_write : int ref;
  c_atomic : int ref;
  rng : Engine.Rng.t;
  mutable trace_hooks : (time:int -> tid:int -> string -> unit) list;
  mutable event_hooks : (event -> unit) list;  (* subscription order *)
  mutable access_hooks : (access -> unit) list;
  mutable annot_hooks : (annot -> unit) list;
  mutable started : bool;
  mutable final : int;
  mutable place_cursor : int;
  timers : (int * int * (unit -> unit)) Engine.Pqueue.t;
      (* host-side virtual-time callbacks (fault injection), keyed by
         due time, carrying (time, insertion sequence, callback) so
         simultaneous timers fire in arming order; empty on fault-free
         machines *)
  mutable timer_seq : int;
  mutable abort : string option;  (* a pending host-side abort request *)
  mutable control : int list;
      (* pending schedule-control decisions: the tid each upcoming
         dispatch must pick. Empty = no control. *)
  mutable chooser : (choice array -> int) option;
      (* steering hook consulted per dispatch once [control] is
         exhausted; returns a candidate tid or -1 for the default
         pick *)
  mutable record_schedule : bool;
  mutable schedule_log : int list;  (* dispatched tids, newest first *)
  mutable control_diverged : bool;
}

and choice = { choice_tid : int; choice_proc : int; choice_key : int }

let create (cfg : Config.t) =
  if cfg.processors <= 0 then invalid_arg "Sched.create: need at least one processor";
  let mem = Memory.create cfg in
  let counters = Engine.Counters.create () in
  {
    cfg;
    mem;
    st = Mstate.create ~cfg ~mem;
    procs =
      Array.init cfg.processors (fun pid ->
          { pid; runq = Engine.Pqueue.create ~dummy:no_thread (); cont = no_thread });
    tarr = Array.make 64 no_thread;
    next_tid = 0;
    live = 0;
    current = no_thread;
    counters;
    c_events = Engine.Counters.cell counters "sched.events";
    c_read = Engine.Counters.cell counters "mem.read";
    c_write = Engine.Counters.cell counters "mem.write";
    c_atomic = Engine.Counters.cell counters "mem.atomic";
    rng = Engine.Rng.create cfg.seed;
    trace_hooks = [];
    event_hooks = [];
    access_hooks = [];
    annot_hooks = [];
    started = false;
    final = 0;
    place_cursor = 0;
    timers = Engine.Pqueue.create ~dummy:(0, 0, fun () -> ()) ();
    timer_seq = 0;
    abort = None;
    control = [];
    chooser = None;
    record_schedule = false;
    schedule_log = [];
    control_diverged = false;
  }

let config t = t.cfg
let memory t = t.mem
let counters t = t.counters
let final_time t = t.final
let events_executed t = t.st.events
let processor_busy_ns t = Array.copy t.st.busy
let runq_length t pid =
  let p = t.procs.(pid) in
  Engine.Pqueue.size p.runq + if p.cont != no_thread then 1 else 0
let live_threads t = t.live

(* Fast-path switches, re-exported from the state module so experiment
   drivers only ever talk to [Sched]. *)
let set_fast_paths = Mstate.set_fast_paths
let fast_paths_enabled = Mstate.fast_paths_enabled
let set_op_fusion = Mstate.set_op_fusion
let op_fusion_enabled = Mstate.op_fusion_enabled

(* Cumulative simulated-event odometer per domain: every [run] that
   completes (or aborts) on this domain adds its machine's final event
   count. Benchmarks read the delta around a measured body to convert
   ns-per-run into simulated events per second. *)
let domain_events : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let domain_events_total () = !(Domain.DLS.get domain_events)

(* Every instrumentation stream is a bus: any number of subscribers,
   delivery in subscription order, and with zero subscribers the
   emission path is a single empty-list branch. *)
let add_trace_hook t hook = t.trace_hooks <- t.trace_hooks @ [ hook ]
let set_trace_hook = add_trace_hook
let clear_trace_hooks t = t.trace_hooks <- []
let trace_hook_count t = List.length t.trace_hooks
let add_event_hook t hook = t.event_hooks <- t.event_hooks @ [ hook ]
let set_event_hook = add_event_hook
let clear_event_hooks t = t.event_hooks <- []
let event_hook_count t = List.length t.event_hooks
let add_access_hook t hook = t.access_hooks <- t.access_hooks @ [ hook ]
let clear_access_hooks t = t.access_hooks <- []
let access_hook_count t = List.length t.access_hooks
let add_annot_hook t hook = t.annot_hooks <- t.annot_hooks @ [ hook ]
let clear_annot_hooks t = t.annot_hooks <- []
let annot_hook_count t = List.length t.annot_hooks

(* [other] is -1 when the event kind has no related thread; passing it
   positionally (not as an optional argument) keeps the call sites
   allocation-free. The event record is only built once at least one
   subscriber exists. *)
let emit t ~time ~proc ~tid ~other kind =
  match t.event_hooks with
  | [] -> ()
  | hooks ->
    let ev = { time; proc; tid; kind; other } in
    List.iter (fun hook -> hook ev) hooks

let emit_access t ~time ~proc ~tid addr kind =
  match t.access_hooks with
  | [] -> ()
  | hooks ->
    let ev =
      { access_time = time; access_proc = proc; access_tid = tid;
        access_addr = addr; access_kind = kind }
    in
    List.iter (fun hook -> hook ev) hooks

let thread_report t =
  let acc = ref [] in
  for tid = t.next_tid - 1 downto 0 do
    let th = t.tarr.(tid) in
    acc := (th.tid, th.name, t.st.cpu.(tid)) :: !acc
  done;
  !acc

let current_thread t =
  if t.current == no_thread then
    invalid_arg "Butterfly: operation performed outside a running thread"
  else t.current

let proc_of t th = t.procs.(t.st.tproc.(th.tid))

(* Fold the fast-path accumulators into the real counter cells. Called
   at the end of every dispatch slice (and on run teardown), before
   anything outside the slice can observe the counters, so totals are
   indistinguishable from the effect-per-op path. *)
let fold_accs t =
  let st = t.st in
  t.c_events := !(t.c_events) + st.acc_events;
  t.c_read := !(t.c_read) + st.acc_read;
  t.c_write := !(t.c_write) + st.acc_write;
  t.c_atomic := !(t.c_atomic) + st.acc_atomic;
  st.acc_events <- 0;
  st.acc_read <- 0;
  st.acc_write <- 0;
  st.acc_atomic <- 0

let make_ready t th ~at =
  let st = t.st in
  st.status.(th.tid) <- Mstate.st_ready;
  st.wake_at.(th.tid) <- at;
  Engine.Pqueue.add t.procs.(st.tproc.(th.tid)).runq ~key:at th

(* The currently-running thread keeps its processor (non-preemptive
   execution), unless a preemption quantum is configured and its slice
   is exhausted — then it is demoted behind the queued threads.
   ([st.quantum] is [max_int] when no quantum is configured, so the
   comparison alone encodes the option.) *)
let continue_on t p th ~at =
  let st = t.st in
  st.status.(th.tid) <- Mstate.st_ready;
  st.wake_at.(th.tid) <- at;
  if st.slice.(p.pid) >= st.quantum then begin
    st.slice.(p.pid) <- 0;
    Engine.Counters.incr t.counters "sched.preemptions";
    emit t ~time:at ~proc:p.pid ~tid:th.tid ~other:(-1) Ev_preempt;
    Engine.Pqueue.add p.runq ~key:at th
  end
  else
    (* Under schedule control a forced dispatch may run a queued thread
       while another still occupies the continuation slot; queue behind
       it rather than overwrite (and lose) it. On the default path the
       slot is always vacant here. *)
    if p.cont == no_thread then p.cont <- th
    else Engine.Pqueue.add p.runq ~key:at th

(* Charge [ns] of processor occupancy ending at the thread's next wake
   time: the processor is busy until then (its clock advances), and the
   fiber is suspended and rescheduled at the completion time. *)
let charge_and_resume t th p ~ns pend =
  let st = t.st in
  th.pending <- pend;
  st.cpu.(th.tid) <- st.cpu.(th.tid) + ns;
  st.busy.(p.pid) <- st.busy.(p.pid) + ns;
  st.pnow.(p.pid) <- st.pnow.(p.pid) + ns;
  st.slice.(p.pid) <- st.slice.(p.pid) + ns;
  continue_on t p th ~at:st.pnow.(p.pid)

let suspend_unit t th p ~ns k = charge_and_resume t th p ~ns (P_unit k)

(* Charge a span of pure computation, slicing it by the preemption
   quantum exactly as the [E_work] handler does: the first chunk is
   charged now, the rest becomes work debt consumed chunk-by-chunk at
   subsequent dispatches. Used by the staged fused operations so their
   work components preempt identically to standalone [work] calls. *)
let charge_work t th p ~ns pend =
  let st = t.st in
  let chunk = min ns st.quantum in
  st.work_left.(th.tid) <- ns - chunk;
  charge_and_resume t th p ~ns:chunk pend

(* Thread placement for unpinned forks: round-robin, skipping processor
   load imbalance concerns (deterministic and uniform). *)
let place t =
  let pid = t.place_cursor in
  t.place_cursor <- (t.place_cursor + 1) mod Array.length t.procs;
  pid

let new_thread t ~name ~proc ~prio fn =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  (* An empty name means "let the machine name it": tid-derived, hence
     deterministic per machine and safe under parallel experiment
     runs (unlike any global naming counter). *)
  let name = if name = "" then "thread-" ^ string_of_int tid else name in
  let th =
    {
      tid;
      name;
      pending = P_start fn;
      token_wakers = [];
      joiners = [];
      last_block_site = "";
      held_locks = [];
    }
  in
  let st = t.st in
  Mstate.ensure_thread st tid;
  if tid >= Array.length t.tarr then begin
    let n = Array.length t.tarr in
    let grown = Array.make (max (n * 2) (tid + 1)) no_thread in
    Array.blit t.tarr 0 grown 0 n;
    t.tarr <- grown
  end;
  t.tarr.(tid) <- th;
  st.status.(tid) <- Mstate.st_ready;
  st.tproc.(tid) <- proc;
  st.prio.(tid) <- prio;
  st.wake_at.(tid) <- 0;
  st.cpu.(tid) <- 0;
  st.penalty.(tid) <- 0;
  st.work_left.(tid) <- 0;
  st.tokens.(tid) <- 0;
  t.live <- t.live + 1;
  th

let finish ?at t th =
  let st = t.st in
  let proc = st.tproc.(th.tid) in
  let now = match at with Some a -> a | None -> st.pnow.(proc) in
  st.status.(th.tid) <- Mstate.st_finished;
  emit t ~time:now ~proc ~tid:th.tid ~other:(-1) Ev_finish;
  t.live <- t.live - 1;
  let wake_time = now + t.cfg.join_ns in
  List.iter
    (fun jtid ->
      if st.status.(jtid) = Mstate.st_joining then begin
        emit t ~time:wake_time ~proc:st.tproc.(jtid) ~tid:jtid ~other:th.tid Ev_join;
        make_ready t t.tarr.(jtid) ~at:wake_time
      end)
    th.joiners;
  th.joiners <- []

let find_thread t tid =
  if tid >= 0 && tid < t.next_tid then t.tarr.(tid)
  else invalid_arg (Printf.sprintf "Butterfly: unknown thread %d" tid)

let machine_time t =
  let best = ref 0 in
  Array.iter (fun pn -> if pn > !best then best := pn) t.st.pnow;
  !best

(* {2 Fault-injection entry points}

   All of these are host-side: the injector calls them from virtual-time
   timers (or annotation hooks), never from simulated code. On a
   machine with no timers and no penalties the scheduler's behaviour is
   bit-for-bit the fault-free one. Each mutation also drops out of fast
   mode for the slice in progress (if any): the conservative route is
   the effect path, which observes host mutations at full fidelity. *)

let add_timer t ~at fn =
  if at < 0 then invalid_arg "Sched.add_timer: negative time";
  let seq = t.timer_seq in
  t.timer_seq <- seq + 1;
  Engine.Pqueue.add t.timers ~key:at (at, seq, fn);
  t.st.fast <- false

let pending_timers t = Engine.Pqueue.size t.timers

let request_abort t reason =
  if t.abort = None then begin
    t.abort <- Some reason;
    t.st.abort_set <- true;
    t.st.fast <- false
  end

let abort_requested t = t.abort

let stall_processor t ~proc ~ns =
  if proc < 0 || proc >= Array.length t.procs then
    invalid_arg (Printf.sprintf "Sched.stall_processor: bad processor %d" proc);
  if ns < 0 then invalid_arg "Sched.stall_processor: negative stall";
  t.st.pnow.(proc) <- t.st.pnow.(proc) + ns;
  t.st.slice.(proc) <- 0

let penalize_thread t ~tid ~ns =
  if ns < 0 then invalid_arg "Sched.penalize_thread: negative penalty";
  if tid >= 0 && tid < t.next_tid && t.st.status.(tid) <> Mstate.st_finished then begin
    t.st.penalty.(tid) <- t.st.penalty.(tid) + ns;
    true
  end
  else false

(* A kill models a crash: the suspended continuation is dropped (no
   cleanup runs; the fiber is reclaimed by the GC), joiners are woken
   exactly as for a normal termination, and any lock words the victim
   holds stay held — which is precisely the pathology the watchdog and
   the chaos harness are there to surface. Threads already queued stay
   in their run queues; the dispatcher skips Finished entries. *)
let kill_thread t ~tid ~at =
  if tid < 0 || tid >= t.next_tid then false
  else begin
    let th = t.tarr.(tid) in
    if t.st.status.(tid) = Mstate.st_finished then false
    else begin
      th.pending <- P_none;
      t.st.work_left.(tid) <- 0;
      t.st.fast <- false;
      Array.iter (fun p -> if p.cont == th then p.cont <- no_thread) t.procs;
      Engine.Counters.incr t.counters "sched.kills";
      finish ~at t th;
      true
    end
  end

let mem_access_kind = function
  | `Read -> Memory.Read_access
  | `Write -> Memory.Write_access
  | `Atomic -> Memory.Atomic_access

(* Reserve a memory access starting now and return its duration; the
   caller suspends the fiber with a [pending] that performs the actual
   word operation at dispatch, i.e. in global virtual-time order. *)
let mem_charge t th p ~kind addr =
  (match kind with
  | `Read -> t.c_read := !(t.c_read) + 1
  | `Write -> t.c_write := !(t.c_write) + 1
  | `Atomic -> t.c_atomic := !(t.c_atomic) + 1);
  let pnow = t.st.pnow.(p.pid) in
  emit_access t ~time:pnow ~proc:p.pid ~tid:th.tid addr (mem_access_kind kind);
  let complete =
    Memory.reserve t.mem t.cfg ~from_node:p.pid addr (mem_access_kind kind) ~start:pnow
  in
  complete - pnow

let handle_effect : type a. t -> a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option =
 fun t eff ->
  let cfg = t.cfg in
  match eff with
  | Ops.E_read addr ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let ns = mem_charge t th p ~kind:`Read addr in
        charge_and_resume t th p ~ns (P_read (k, addr)))
  | Ops.E_write (addr, v) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let ns = mem_charge t th p ~kind:`Write addr in
        charge_and_resume t th p ~ns (P_write (k, addr, v)))
  | Ops.E_fetch_and_or (addr, v) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let ns = mem_charge t th p ~kind:`Atomic addr in
        charge_and_resume t th p ~ns (P_rmw (k, Rmw_or, addr, v)))
  | Ops.E_fetch_and_add (addr, v) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let ns = mem_charge t th p ~kind:`Atomic addr in
        charge_and_resume t th p ~ns (P_rmw (k, Rmw_add, addr, v)))
  | Ops.E_swap (addr, v) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let ns = mem_charge t th p ~kind:`Atomic addr in
        charge_and_resume t th p ~ns (P_rmw (k, Rmw_swap, addr, v)))
  | Ops.E_cas (addr, expected, desired) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let ns = mem_charge t th p ~kind:`Atomic addr in
        charge_and_resume t th p ~ns (P_cas (k, addr, expected, desired)))
  | Ops.E_lock_probe (addr, pre, retry, gap, until) ->
    Some
      (fun k ->
        (* Stage one fused spin-lock probe: the entry overhead is
           charged now; the test-and-set, the timeout decision and any
           retry/backoff charges each take their own dispatch (see the
           [P_probe_*] cases of [resume]), exactly as the decomposed
           sequence would. *)
        let th = current_thread t in
        let p = proc_of t th in
        let pre_ns = Config.instrs cfg pre in
        if pre_ns > 0 then
          charge_work t th p ~ns:pre_ns (P_probe_tas (k, addr, retry, gap, until))
        else
          let ns = mem_charge t th p ~kind:`Atomic addr in
          charge_and_resume t th p ~ns (P_probe_mut (k, addr, retry, gap, until)))
  | Ops.E_read_hint (addr, pre_ns, gap, expect) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        if pre_ns > 0 then
          charge_work t th p ~ns:pre_ns (P_hint_read (k, addr, gap, expect))
        else
          let ns = mem_charge t th p ~kind:`Read addr in
          charge_and_resume t th p ~ns (P_hint_val (k, addr, gap, expect)))
  | Ops.E_alloc (node, n) ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let node = match node with Some node -> node | None -> t.st.tproc.(th.tid) in
        let addrs = Memory.alloc t.mem ~node n in
        charge_and_resume t th p ~ns:cfg.local_write_ns (P_value (k, addrs)))
  | Ops.E_work ns ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let chunk = min ns t.st.quantum in
        t.st.work_left.(th.tid) <- ns - chunk;
        suspend_unit t th p ~ns:chunk k)
  | Ops.E_work_instrs n ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let ns = Config.instrs cfg n in
        let chunk = min ns t.st.quantum in
        t.st.work_left.(th.tid) <- ns - chunk;
        suspend_unit t th p ~ns:chunk k)
  | Ops.E_delay ns ->
    Some
      (fun k ->
        (* A delay releases the processor: no cpu charge, later wake. *)
        let th = current_thread t in
        let p = proc_of t th in
        t.st.slice.(p.pid) <- 0;
        th.pending <- P_unit k;
        make_ready t th ~at:(t.st.pnow.(p.pid) + ns))
  | Ops.E_now ->
    Some
      (fun k ->
        let th = current_thread t in
        Effect.Deep.continue k t.st.pnow.(t.st.tproc.(th.tid)))
  | Ops.E_fork spec ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        Engine.Counters.incr t.counters "sched.forks";
        let proc =
          match spec.proc with
          | Some pid ->
            if pid < 0 || pid >= Array.length t.procs then
              invalid_arg (Printf.sprintf "fork: bad processor %d" pid);
            pid
          | None -> place t
        in
        let child = new_thread t ~name:spec.name ~proc ~prio:spec.prio spec.f in
        let pnow = t.st.pnow.(p.pid) in
        emit t ~time:pnow ~proc ~tid:child.tid ~other:th.tid Ev_fork;
        make_ready t child ~at:(pnow + cfg.fork_ns + cfg.wakeup_latency_ns);
        charge_and_resume t th p ~ns:cfg.fork_ns (P_value (k, child.tid)))
  | Ops.E_join tid ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let target = find_thread t tid in
        if t.st.status.(tid) = Mstate.st_finished then begin
          emit t ~time:t.st.pnow.(p.pid) ~proc:p.pid ~tid:th.tid ~other:tid Ev_join;
          suspend_unit t th p ~ns:cfg.join_ns k
        end
        else begin
          t.st.status.(th.tid) <- Mstate.st_joining;
          th.pending <- P_unit k;
          target.joiners <- th.tid :: target.joiners
        end)
  | Ops.E_yield ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let st = t.st in
        Engine.Counters.incr t.counters "sched.yields";
        th.pending <- P_unit k;
        st.cpu.(th.tid) <- st.cpu.(th.tid) + cfg.yield_ns;
        st.busy.(p.pid) <- st.busy.(p.pid) + cfg.yield_ns;
        st.pnow.(p.pid) <- st.pnow.(p.pid) + cfg.yield_ns;
        st.slice.(p.pid) <- 0;
        make_ready t th ~at:st.pnow.(p.pid))
  | Ops.E_block ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let st = t.st in
        Engine.Counters.incr t.counters "sched.blocks";
        if st.tokens.(th.tid) > 0 then begin
          (* A wakeup already arrived: absorb it and keep running. *)
          st.tokens.(th.tid) <- st.tokens.(th.tid) - 1;
          let waker =
            match th.token_wakers with
            | w :: rest ->
              th.token_wakers <- rest;
              w
            | [] -> -1
          in
          emit t ~time:st.pnow.(p.pid) ~proc:p.pid ~tid:th.tid ~other:waker Ev_token_use;
          suspend_unit t th p ~ns:0 k
        end
        else begin
          st.status.(th.tid) <- Mstate.st_blocked;
          emit t ~time:st.pnow.(p.pid) ~proc:p.pid ~tid:th.tid ~other:(-1) Ev_block;
          th.pending <- P_unit k;
          (* The processor spends [block_ns] saving the context. *)
          st.pnow.(p.pid) <- st.pnow.(p.pid) + cfg.block_ns;
          st.busy.(p.pid) <- st.busy.(p.pid) + cfg.block_ns;
          st.cpu.(th.tid) <- st.cpu.(th.tid) + cfg.block_ns;
          st.slice.(p.pid) <- 0
        end)
  | Ops.E_wakeup tid ->
    Some
      (fun k ->
        let th = current_thread t in
        let p = proc_of t th in
        let st = t.st in
        Engine.Counters.incr t.counters "sched.wakeups";
        let target = find_thread t tid in
        let code = st.status.(tid) in
        let pnow = st.pnow.(p.pid) in
        if code = Mstate.st_blocked then begin
          st.status.(tid) <- Mstate.st_ready;
          emit t ~time:pnow ~proc:st.tproc.(tid) ~tid ~other:th.tid Ev_wakeup;
          make_ready t target ~at:(pnow + cfg.unblock_ns + cfg.wakeup_latency_ns)
        end
        else if code = Mstate.st_finished then
          Engine.Counters.incr t.counters "sched.wakeups_late"
        else begin
          st.tokens.(tid) <- st.tokens.(tid) + 1;
          target.token_wakers <- target.token_wakers @ [ th.tid ];
          emit t ~time:pnow ~proc:st.tproc.(tid) ~tid ~other:th.tid Ev_token
        end;
        suspend_unit t th p ~ns:cfg.unblock_ns k)
  | Ops.E_self -> Some (fun k -> Effect.Deep.continue k (current_thread t).tid)
  | Ops.E_my_processor ->
    Some (fun k -> Effect.Deep.continue k t.st.tproc.((current_thread t).tid))
  | Ops.E_set_priority (tid, prio) ->
    Some
      (fun k ->
        ignore (find_thread t tid : thread);
        t.st.prio.(tid) <- prio;
        Effect.Deep.continue k ())
  | Ops.E_priority_of tid ->
    Some
      (fun k ->
        ignore (find_thread t tid : thread);
        Effect.Deep.continue k t.st.prio.(tid))
  | Ops.E_processors -> Some (fun k -> Effect.Deep.continue k (Array.length t.procs))
  | Ops.E_random bound -> Some (fun k -> Effect.Deep.continue k (Engine.Rng.int t.rng bound))
  | Ops.E_trace msg ->
    Some
      (fun k ->
        (match t.trace_hooks with
        | [] -> ()
        | hooks ->
          let th = current_thread t in
          let time = t.st.pnow.(t.st.tproc.(th.tid)) in
          List.iter (fun hook -> hook ~time ~tid:th.tid msg) hooks);
        Effect.Deep.continue k ())
  | Ops.E_annotate annotation ->
    Some
      (fun k ->
        (* Lock annotations double as the scheduler's own bookkeeping
           for abort diagnostics: each thread's last requested lock is
           its "blocking site" and acquire/release maintain its held
           set. This only runs when annotations flow at all (i.e. at
           least one subscriber), so the zero-subscriber fast path in
           Ops.annotate is untouched. *)
        let th = current_thread t in
        (match annotation with
        | Ops.A_lock_request { lock_name; _ } -> th.last_block_site <- lock_name
        | Ops.A_lock_acquire { lock_name; _ } ->
          th.held_locks <- lock_name :: th.held_locks
        | Ops.A_lock_release { lock_name; _ } ->
          let rec remove_first = function
            | [] -> []
            | hd :: tl -> if String.equal hd lock_name then tl else hd :: remove_first tl
          in
          th.held_locks <- remove_first th.held_locks
        | Ops.A_sync_word _ | Ops.A_relaxed_word _ | Ops.A_adaptation _ -> ());
        (match t.annot_hooks with
        | [] -> ()
        | hooks ->
          let proc = t.st.tproc.(th.tid) in
          let ev =
            { annot_time = t.st.pnow.(proc); annot_proc = proc; annot_tid = th.tid;
              annotation }
          in
          List.iter (fun hook -> hook ev) hooks);
        Effect.Deep.continue k ())
  | Ops.E_thread_name tid -> Some (fun k -> Effect.Deep.continue k (find_thread t tid).name)
  | _ -> None

let run_fiber t th fn =
  Effect.Deep.match_with fn ()
    {
      retc = (fun () -> finish t th);
      exnc = (fun e -> raise (Thread_crash (th.name, e)));
      effc = (fun eff -> handle_effect t eff);
    }

(* Finish a reified suspended operation and resume the fiber. Memory
   mutations happen here, at dispatch, so they linearize in global
   virtual-time order. The staged [P_probe_*]/[P_hint_*] cases advance
   a fused operation by one charge instead of resuming the fiber. *)
let resume t th p pend =
  match pend with
  | P_none | P_start _ -> assert false
  | P_unit k -> Effect.Deep.continue k ()
  | P_value (k, v) -> Effect.Deep.continue k v
  | P_read (k, addr) -> Effect.Deep.continue k (Memory.read t.mem addr)
  | P_write (k, addr, v) -> Effect.Deep.continue k (Memory.write t.mem addr v)
  | P_rmw (k, op, addr, v) ->
    Effect.Deep.continue k
      (match op with
      | Rmw_or -> Memory.fetch_and_or t.mem addr v
      | Rmw_add -> Memory.fetch_and_add t.mem addr v
      | Rmw_swap -> Memory.swap t.mem addr v)
  | P_cas (k, addr, expected, desired) ->
    Effect.Deep.continue k (Memory.compare_and_swap t.mem addr ~expected ~desired)
  | P_probe_tas (k, addr, retry, gap, until) ->
    let ns = mem_charge t th p ~kind:`Atomic addr in
    charge_and_resume t th p ~ns (P_probe_mut (k, addr, retry, gap, until))
  | P_probe_mut (k, addr, retry, gap, until) ->
    let prev = Memory.fetch_and_or t.mem addr 1 in
    if prev = 0 then Effect.Deep.continue k Ops.Probe_acquired
    else if until >= 0 && t.st.pnow.(p.pid) >= until then
      Effect.Deep.continue k Ops.Probe_expired
    else begin
      let retry_ns = Config.instrs t.cfg retry in
      if retry_ns > 0 then charge_work t th p ~ns:retry_ns (P_probe_gap (k, gap))
      else if gap > 0 then charge_work t th p ~ns:gap (P_value (k, Ops.Probe_retrying))
      else Effect.Deep.continue k Ops.Probe_retrying
    end
  | P_probe_gap (k, gap) ->
    if gap > 0 then charge_work t th p ~ns:gap (P_value (k, Ops.Probe_retrying))
    else Effect.Deep.continue k Ops.Probe_retrying
  | P_hint_read (k, addr, gap, expect) ->
    let ns = mem_charge t th p ~kind:`Read addr in
    charge_and_resume t th p ~ns (P_hint_val (k, addr, gap, expect))
  | P_hint_val (k, addr, gap, expect) ->
    let v = Memory.read t.mem addr in
    if gap > 0 && v = expect then charge_work t th p ~ns:gap (P_value (k, v))
    else Effect.Deep.continue k v

(* Pick the processor whose next runnable thread executes earliest.
   Ties break toward the lowest processor id, keeping runs
   deterministic. Returns the dispatch key (the global next virtual
   time) so the run loop can fire due fault timers first. *)
let pick t =
  let st = t.st in
  let best_key = ref max_int and best_pid = ref (-1) in
  Array.iter
    (fun p ->
      let wake =
        if p.cont != no_thread then st.wake_at.(p.cont.tid)
        else Engine.Pqueue.peek_min_key p.runq
      in
      if wake < max_int then begin
        let pn = st.pnow.(p.pid) in
        let key = if pn > wake then pn else wake in
        if key < !best_key then begin
          best_key := key;
          best_pid := p.pid
        end
      end)
    t.procs;
  if !best_pid < 0 then None else Some (!best_key, t.procs.(!best_pid))

(* May the dispatch slice about to start charge directly (no effects)?
   Only when nothing can observe or perturb the machine mid-slice:
   no subscriber on any instrumentation bus, no pending fault timer or
   abort, no schedule control, and every *other* processor idle — a
   fast op advances only this processor's clock, so any runnable thread
   elsewhere could interleave in virtual time and must see the effect
   path. (Threads queued on this same processor don't disqualify it:
   execution is non-preemptive and the quantum guard in [Ops] bails out
   before any preemption point.) Idleness of the other processors is
   stable for the duration of the slice because every op that could
   wake another processor — fork, wakeup, finish — suspends the fiber
   and ends the slice. *)
let other_procs_idle t p =
  let n = Array.length t.procs in
  let rec go i =
    i >= n
    ||
    let p' = t.procs.(i) in
    (p' == p || (p'.cont == no_thread && Engine.Pqueue.size p'.runq = 0)) && go (i + 1)
  in
  go 0

let slice_fast_ok t p =
  Mstate.fast_paths_enabled ()
  && (match t.event_hooks with [] -> true | _ -> false)
  && (match t.access_hooks with [] -> true | _ -> false)
  && (match t.annot_hooks with [] -> true | _ -> false)
  && (match t.trace_hooks with [] -> true | _ -> false)
  && Engine.Pqueue.size t.timers = 0
  && (match t.abort with None -> true | Some _ -> false)
  && (match t.control with [] -> true | _ -> false)
  && (match t.chooser with None -> true | Some _ -> false)
  && (not t.record_schedule)
  && other_procs_idle t p

let dispatch_thread t p th =
  if t.record_schedule then t.schedule_log <- th.tid :: t.schedule_log;
  let st = t.st in
  if st.status.(th.tid) = Mstate.st_finished then ()
    (* a killed thread still queued: consume the slot, run nothing *)
  else begin
    let pid = p.pid in
    let start = max st.pnow.(pid) st.wake_at.(th.tid) in
    let start =
      if st.last_tid.(pid) >= 0 && st.last_tid.(pid) <> th.tid then begin
        Engine.Counters.incr t.counters "sched.switches";
        emit t ~time:start ~proc:pid ~tid:th.tid ~other:(-1) Ev_switch;
        st.busy.(pid) <- st.busy.(pid) + t.cfg.switch_ns;
        st.slice.(pid) <- 0;
        start + t.cfg.switch_ns
      end
      else start
    in
    let start =
      if st.penalty.(th.tid) > 0 then begin
        (* A fault-injected stall (e.g. lock-holder delay): the thread is
           charged the penalty before it resumes. *)
        let pen = st.penalty.(th.tid) in
        st.penalty.(th.tid) <- 0;
        Engine.Counters.incr t.counters "sched.fault_stalls";
        start + pen
      end
      else start
    in
    st.last_tid.(pid) <- th.tid;
    st.pnow.(pid) <- start;
    if st.work_left.(th.tid) > 0 then begin
      (* Preemption quantum: slice the remaining computation. *)
      let wl = st.work_left.(th.tid) in
      let chunk = min wl st.quantum in
      st.work_left.(th.tid) <- wl - chunk;
      st.cpu.(th.tid) <- st.cpu.(th.tid) + chunk;
      st.busy.(pid) <- st.busy.(pid) + chunk;
      st.pnow.(pid) <- start + chunk;
      st.slice.(pid) <- st.slice.(pid) + chunk;
      continue_on t p th ~at:st.pnow.(pid)
    end
    else begin
      st.status.(th.tid) <- Mstate.st_running;
      t.current <- th;
      st.tid <- th.tid;
      st.pid <- pid;
      st.fast <- slice_fast_ok t p;
      (match th.pending with
      | P_none -> assert false
      | P_start fn ->
        th.pending <- P_none;
        run_fiber t th fn
      | pend ->
        th.pending <- P_none;
        resume t th p pend);
      st.fast <- false;
      if st.acc_events <> 0 then fold_accs t;
      t.current <- no_thread
    end
  end

let dispatch t p =
  let th =
    if p.cont != no_thread then begin
      let th = p.cont in
      p.cont <- no_thread;
      th
    end
    else Engine.Pqueue.pop_min_value_exn p.runq
  in
  dispatch_thread t p th

(* {2 Controlled scheduling}

   Two host-side steering mechanisms over the same dispatch machinery:
   a {e decision list} (the serialized schedule: the tid every upcoming
   dispatch must pick, replayable bit-for-bit) and a {e chooser} (a
   callback consulted per dispatch once the list is exhausted, used by
   the witness engine to steer a run towards a predicted interleaving).
   Neither changes what a dispatched thread does — only which runnable
   thread goes next — so any controlled schedule is a schedule the
   machine could have taken. *)

let set_schedule_control t decisions = t.control <- decisions
let schedule_control_remaining t = List.length t.control
let set_dispatch_chooser t chooser = t.chooser <- chooser

let set_record_schedule t flag =
  t.record_schedule <- flag;
  if flag then t.schedule_log <- []

let recorded_schedule t = List.rev t.schedule_log
let control_diverged t = t.control_diverged

(* Every thread the machine could legally dispatch right now: each
   processor's continuation slot if occupied (non-preemptive execution
   means queued threads on that processor are not eligible), otherwise
   its queued non-finished threads. Sorted by tid for determinism. *)
let dispatch_candidates t =
  let st = t.st in
  let acc = ref [] in
  Array.iter
    (fun p ->
      if p.cont != no_thread then
        acc :=
          { choice_tid = p.cont.tid; choice_proc = p.pid;
            choice_key = max st.pnow.(p.pid) st.wake_at.(p.cont.tid) }
          :: !acc
      else
        Engine.Pqueue.iter p.runq (fun _ th ->
            if st.status.(th.tid) <> Mstate.st_finished then
              acc :=
                { choice_tid = th.tid; choice_proc = p.pid;
                  choice_key = max st.pnow.(p.pid) st.wake_at.(th.tid) }
                :: !acc))
    t.procs;
  let arr = Array.of_list !acc in
  Array.sort (fun a b -> compare a.choice_tid b.choice_tid) arr;
  arr

(* Locate a dispatchable thread (continuation slot or run queue) without
   extracting it: the run loop must know the dispatch key first, since a
   due fault timer fires instead and the decision is then re-evaluated. *)
let locate_dispatchable t tid =
  if tid < 0 || tid >= t.next_tid then None
  else begin
    let th = t.tarr.(tid) in
    let p = t.procs.(t.st.tproc.(tid)) in
    if p.cont == th then Some (p, th)
    else begin
      let found = ref false in
      Engine.Pqueue.iter p.runq (fun _ th' -> if th' == th then found := true);
      if !found then Some (p, th) else None
    end
  end

let extract_thread t p th =
  ignore t;
  if p.cont == th then begin
    p.cont <- no_thread;
    true
  end
  else Engine.Pqueue.remove p.runq (fun th' -> th' == th) <> None

(* What the next scheduling step should be, under control. [`Forced]
   carries whether the pick consumes the head of the decision list. A
   decision naming a thread that is not dispatchable marks the run as
   diverged and control is abandoned (default scheduling resumes); the
   same applies to a chooser returning a non-candidate tid. *)
let controlled_pick t =
  let default () =
    match pick t with Some (key, p) -> Some (key, `Default p) | None -> None
  in
  match t.control with
  | tid :: _ -> (
    match locate_dispatchable t tid with
    | Some (p, th) -> Some (max t.st.pnow.(p.pid) t.st.wake_at.(th.tid), `Forced (p, th, true))
    | None ->
      t.control <- [];
      t.control_diverged <- true;
      default ())
  | [] -> (
    match t.chooser with
    | None -> default ()
    | Some choose -> (
      let cands = dispatch_candidates t in
      if Array.length cands = 0 then default ()
      else
        let tid = choose cands in
        if tid < 0 then default ()
        else if not (Array.exists (fun c -> c.choice_tid = tid) cands) then begin
          t.control_diverged <- true;
          default ()
        end
        else
          match locate_dispatchable t tid with
          | Some (p, th) -> Some (max t.st.pnow.(p.pid) t.st.wake_at.(th.tid), `Forced (p, th, false))
          | None ->
            t.control_diverged <- true;
            default ()))

(* One blocked/joining thread's entry in the deadlock payload. When
   lock annotations were flowing (any annot subscriber), each entry
   also names the thread's last blocking site (the lock it last
   requested) and the locks it still holds. *)
let stuck_description t th =
  let verb =
    if t.st.status.(th.tid) = Mstate.st_joining then "joining" else "blocked"
  in
  let site = if th.last_block_site = "" then "" else " at " ^ th.last_block_site in
  let holding =
    match th.held_locks with
    | [] -> ""
    | held -> Printf.sprintf ", holding [%s]" (String.concat ", " (List.rev held))
  in
  Printf.sprintf "%s(#%d %s%s%s)" th.name th.tid verb site holding

let deadlock_report t =
  let stuck = ref [] in
  for tid = 0 to t.next_tid - 1 do
    let code = t.st.status.(tid) in
    if code = Mstate.st_blocked || code = Mstate.st_joining then
      stuck := stuck_description t t.tarr.(tid) :: !stuck
  done;
  String.concat ", " (List.sort String.compare !stuck)

let state_name code =
  if code = Mstate.st_ready then "ready"
  else if code = Mstate.st_running then "running"
  else if code = Mstate.st_blocked then "blocked"
  else if code = Mstate.st_joining then "joining"
  else "finished"

(* A deterministic full dump of the machine for structured aborts: no
   wall-clock, no addresses — byte-identical across runs and domain
   counts. *)
let diagnostics t =
  let st = t.st in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "machine at t=%dns: %d live thread(s), %d event(s), %d timer(s) pending\n"
       (machine_time t) t.live st.events (Engine.Pqueue.size t.timers));
  Array.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "  proc %d: now=%dns busy=%dns runq=%d\n" p.pid
           st.pnow.(p.pid) st.busy.(p.pid)
           (Engine.Pqueue.size p.runq + if p.cont != no_thread then 1 else 0)))
    t.procs;
  for tid = 0 to t.next_tid - 1 do
    let th = t.tarr.(tid) in
    let site = if th.last_block_site = "" then "" else " site=" ^ th.last_block_site in
    let holding =
      match th.held_locks with
      | [] -> ""
      | held -> Printf.sprintf " holding=[%s]" (String.concat ", " (List.rev held))
    in
    Buffer.add_string buf
      (Printf.sprintf "  thread %s(#%d): %s cpu=%dns%s%s\n" th.name th.tid
         (state_name st.status.(tid)) st.cpu.(tid) site holding)
  done;
  Buffer.contents buf

(* Pop and run every timer due at or before [upto]. Callbacks run
   host-side (no current thread) and may mutate the machine: stall
   processors, kill threads, degrade memory modules, re-arm timers.
   The due batch is collected before any callback runs (in (time,
   arming-sequence) order), so timers armed during the batch for a
   time <= [upto] fire on the next loop iteration and a re-arming
   callback cannot livelock the batch. *)
let fire_timers t ~upto =
  let due = ref [] in
  while Engine.Pqueue.peek_min_key t.timers <= upto do
    due := Engine.Pqueue.pop_min_value_exn t.timers :: !due
  done;
  let due =
    List.sort
      (fun (a1, s1, _) (a2, s2, _) ->
        if a1 <> a2 then compare a1 a2 else compare s1 s2)
      !due
  in
  List.iter (fun (_, _, fn) -> fn ()) due

(* Host-side hooks fired at the start of every [run], on the domain
   about to run the machine. Registered once, at module-initialisation
   time, by libraries layered above the machine that keep per-domain
   state keyed to "the current simulation" — e.g. the adaptive-object
   registry resets itself here so entries never leak from a finished
   run into the next one on the same domain. The list is
   prepend-then-read under an [Atomic] so concurrent [Engine.Runner]
   domains starting runs never observe a torn list. *)
let run_start_hooks : (unit -> unit) list Atomic.t = Atomic.make []

let at_run_start f =
  let rec add () =
    let hooks = Atomic.get run_start_hooks in
    if not (Atomic.compare_and_set run_start_hooks hooks (f :: hooks)) then add ()
  in
  add ()

let run ?(main_name = "main") t main =
  if t.started then invalid_arg "Sched.run: this machine already ran";
  t.started <- true;
  List.iter (fun f -> f ()) (List.rev (Atomic.get run_start_hooks));
  (* Publish the annotation-subscriber state for this machine to the
     domain running it: with no subscriber, Ops.annotate skips the
     effect (and the payload) entirely. Saved/restored so nested or
     back-to-back runs on the same domain stay correct. The same
     discipline publishes the flat state to Ops' fast paths. *)
  let saved_annots = Ops.annotations_enabled () in
  Ops.set_annotations_enabled (t.annot_hooks <> []);
  let st = t.st in
  let prev_st = Mstate.swap_in st in
  Fun.protect
    ~finally:(fun () ->
      st.fast <- false;
      fold_accs t;
      Mstate.restore prev_st;
      Ops.set_annotations_enabled saved_annots;
      t.final <- machine_time t;
      let total = Domain.DLS.get domain_events in
      total := !total + st.events)
    (fun () ->
      let main_thread = new_thread t ~name:main_name ~proc:0 ~prio:0 main in
      make_ready t main_thread ~at:0;
      let continue = ref true in
      let no_runnable () =
        if t.live = 0 then
          (* All threads finished: the run is over. Timers still
             pending describe faults the execution never reached —
             discard them rather than perturb the final clocks. *)
          continue := false
        else begin
          (* Nothing runnable but threads remain. Pending timers may
             still revive the machine (a kill releases joiners, a
             penalty expires), so fire the earliest batch before
             concluding deadlock. *)
          let at = Engine.Pqueue.peek_min_key t.timers in
          if at < max_int then fire_timers t ~upto:at
          else raise (Deadlock (deadlock_report t))
        end
      in
      let uncontrolled t =
        (match t.control with [] -> true | _ -> false)
        && match t.chooser with None -> true | Some _ -> false
      in
      while !continue do
        (match t.abort with
        | Some reason -> raise (Abort_requested reason)
        | None -> ());
        st.events <- st.events + 1;
        t.c_events := !(t.c_events) + 1;
        if st.events > st.max_events then raise Event_limit_exceeded;
        if uncontrolled t then (
          (* the hot path: identical to the pre-control scheduler *)
          match pick t with
          | Some (key, p) ->
            if Engine.Pqueue.peek_min_key t.timers <= key then fire_timers t ~upto:key
            else dispatch t p
          | None -> no_runnable ())
        else
          match controlled_pick t with
          | Some (key, picked) ->
            if Engine.Pqueue.peek_min_key t.timers <= key then fire_timers t ~upto:key
            else (
              match picked with
              | `Default p -> dispatch t p
              | `Forced (p, th, consume) ->
                if consume then (
                  match t.control with
                  | _ :: rest -> t.control <- rest
                  | [] -> ());
                if extract_thread t p th then dispatch_thread t p th
                else t.control_diverged <- true)
          | None -> no_runnable ()
      done)

let run_outcome ?main_name t main =
  match run ?main_name t main with
  | () -> Completed
  | exception Deadlock msg ->
    Aborted { reason = Deadlocked msg; diagnostics = diagnostics t }
  | exception Event_limit_exceeded ->
    Aborted { reason = Event_limit; diagnostics = diagnostics t }
  | exception Thread_crash (name, e) ->
    Aborted { reason = Crashed (name, e); diagnostics = diagnostics t }
  | exception Abort_requested reason ->
    Aborted { reason = Stop_requested reason; diagnostics = diagnostics t }
