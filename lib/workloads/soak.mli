(** The simulator-throughput soak workload.

    Not a paper experiment: a deterministic event mill for measuring
    how many simulated events per second the {e host} sustains. Each
    round is ~90% single-runnable memory sweeps (the batched-charging
    fast path) and ~10% a two-thread spin-lock duel (the fused-probe
    general path), so the mix reflects both dispatch regimes. The
    virtual-time outcome — final time, event count, checksum — is a
    pure function of the spec, so any two runs (fast paths on or off,
    any host) must agree exactly; the throughput trajectory in
    [BENCH_results.json] tracks only how fast the host gets there. *)

type spec = {
  processors : int;
  array_words : int;  (** size of the swept array *)
  rounds : int;
  contended_iters : int;  (** lock/unlock pairs per contender per round *)
}

type result = {
  spec : spec;
  final_ns : int;  (** virtual completion time *)
  events : int;  (** simulation events executed *)
  checksum : int;  (** fold of every value read — the determinism witness *)
}

val default : spec
(** 4 processors, 64 words, 32 rounds, 8 contended pairs: ~10k events,
    sized for tests. *)

val with_rounds : int -> spec
(** [default] widened to 1024 words with 4 contended pairs: ~5.2k
    events per round, so [with_rounds 1_950] is a ~10M-event soak and
    [with_rounds 195] the CI-sized 1M variant. *)

val scenario : spec -> acc:int ref -> unit -> unit
(** The workload as a thunk for an externally owned simulator. *)

val run : ?machine:Butterfly.Config.t -> spec -> result
(** Execute on a fresh machine ([machine] defaults to the paper
    machine narrowed to [spec.processors]). *)
