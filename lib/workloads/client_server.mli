(** Client-server workload — the lock-scheduler experiment of [MS93].

    An open system: clients submit requests through a lock-protected
    shared queue at their own pace (fire and forget); a single
    high-priority monitor-style server drains the queue, processing
    each request inside the critical section. The lock is contended by
    many low-priority clients and the one server, so the lock's
    {e scheduling} policy decides how quickly the server gets back in:
    with Priority scheduling the server bypasses queued clients (best
    drain rate); with FCFS it requeues behind every submitted client
    (worst); Handoff matches Priority when clients designate the
    server as successor. The paper reports priority best and FCFS
    worst. *)

type spec = {
  processors : int;
  clients : int;
  requests_per_client : int;
  service_ns : int;  (** server processing time per request *)
  submit_think_ns : int;  (** client-side work between submissions *)
  sched : Locks.Lock_sched.kind;
  handoff_to_server : bool;
      (** when true (with Handoff) clients name the server as
          successor on unlock *)
  seed : int;
}

val default : spec

type result = {
  spec : spec;
  total_ns : int;
  served : int;
  mean_response_ns : float;
      (** mean submit-to-served latency — the experiment's headline
          metric: prioritizing the server drains requests promptly *)
  max_response_ns : int;
  server_mean_wait_ns : float;  (** mean lock wait of the server *)
  client_mean_wait_ns : float;
}

val run : ?machine:Butterfly.Config.t -> spec -> result

val scenario : spec -> unit -> unit
(** The workload program as a bare thunk for an externally owned
    simulator (the sanitizers): same threads and lock traffic as
    {!run}, results discarded. Needs [spec.processors] processors. *)

val compare_schedulers :
  ?machine:Butterfly.Config.t ->
  ?domains:int ->
  spec ->
  (Locks.Lock_sched.kind * result) list
(** Run the same workload under FCFS, Priority and Handoff. The three
    runs are independent machines and execute in parallel across up to
    [domains] host cores; the result order is fixed. *)
