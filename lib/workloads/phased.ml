open Butterfly
open Cthreads

type phase = { active_threads : int; cs_ns : int; entries : int }

type spec = {
  processors : int;
  workers : int;
  phases : phase list;
  think_ns : int;
  lock_kind : Locks.Lock.kind;
  seed : int;
}

let default =
  {
    processors = 8;
    (* Three workers per processor: in the storm phase a spinning
       waiter starves the co-located lock holder, so no static policy
       is right in both phases. *)
    workers = 21;
    phases =
      [
        { active_threads = 1; cs_ns = 5_000; entries = 240 };
        { active_threads = 21; cs_ns = 700_000; entries = 16 };
        { active_threads = 1; cs_ns = 5_000; entries = 240 };
      ];
    think_ns = 15_000;
    lock_kind = Locks.Lock.adaptive_default;
    seed = 31;
  }

type result = {
  spec : spec;
  total_ns : int;
  adaptations : int;
  adaptation_log : (int * string) list;
  mean_wait_ns : float;
  blocks : int;
}

(* The workload program itself, machine-independent (see Csweep.body
   for the pattern). *)
let body ?(stats = ref None) ?(log = ref []) ?(adaptations = ref 0) spec () =
  let lk = Locks.Lock.create ~home:0 spec.lock_kind in
  let barrier = Barrier.create ~node:0 spec.workers in
  let worker idx () =
    List.iter
      (fun phase ->
        Barrier.await barrier;
        if idx < phase.active_threads then
          for _ = 1 to phase.entries do
            Locks.Lock.lock lk;
            Cthread.work phase.cs_ns;
            Locks.Lock.unlock lk;
            Cthread.work spec.think_ns
          done
        else
          (* Inactive this phase: local computation of comparable
             size — the work a spinning co-located waiter would
             starve. *)
          Cthread.work (phase.entries * (phase.cs_ns + spec.think_ns)))
      spec.phases
  in
  let threads =
    List.init spec.workers (fun i ->
        Cthread.fork
          ~proc:(1 + (i mod (spec.processors - 1)))
          ~name:(Printf.sprintf "worker%d" i) (worker i))
  in
  Cthread.join_all threads;
  stats := Some (Locks.Lock.stats lk);
  match Locks.Lock.as_adaptive lk with
  | Some al ->
    log := Adaptive_core.Adaptive.log (Locks.Adaptive_lock.feedback al);
    adaptations := Locks.Adaptive_lock.adaptations al
  | None -> ()

let scenario spec () = body spec ()

let run ?machine spec =
  let cfg =
    match machine with
    | Some cfg -> { cfg with Config.processors = spec.processors; seed = spec.seed }
    | None ->
      { Config.default with Config.processors = spec.processors; seed = spec.seed }
  in
  let sim = Sched.create cfg in
  let stats = ref None and log = ref [] and adaptations = ref 0 in
  Sched.run sim (body ~stats ~log ~adaptations spec);
  let s = match !stats with Some s -> s | None -> assert false in
  {
    spec;
    total_ns = Sched.final_time sim;
    adaptations = !adaptations;
    adaptation_log = !log;
    mean_wait_ns = Locks.Lock_stats.mean_wait_ns s;
    blocks = Locks.Lock_stats.blocks s;
  }

let compare_kinds ?machine ?domains spec kinds =
  Engine.Runner.map ?domains
    (fun kind -> (kind, run ?machine { spec with lock_kind = kind }))
    kinds
