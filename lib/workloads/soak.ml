open Butterfly

type spec = {
  processors : int;
  array_words : int;
  rounds : int;
  contended_iters : int;
}

type result = { spec : spec; final_ns : int; events : int; checksum : int }

let default = { processors = 4; array_words = 64; rounds = 32; contended_iters = 8 }

let with_rounds rounds =
  { default with array_words = 1_024; rounds; contended_iters = 4 }

let scenario spec ~acc () =
  let words = Ops.alloc ~node:0 spec.array_words in
  let lk = Cthreads.Spin.create ~node:0 () in
  let shared = Ops.alloc1 ~node:0 () in
  for round = 1 to spec.rounds do
    (* Phase A: a single runnable thread sweeping the array — write,
       read-and-compute, read-modify-write and pure-compute passes,
       echoing the op mix of the paper workloads (which interleave
       instruction charges with their memory traffic). With every
       other processor idle this is exactly the traffic the batched
       charging path accelerates. *)
    for i = 0 to spec.array_words - 1 do
      Ops.write words.(i) (i + round)
    done;
    for i = 0 to spec.array_words - 1 do
      acc := !acc + Ops.read words.(i);
      Ops.work 150
    done;
    for i = 0 to spec.array_words - 1 do
      acc := !acc + Ops.fetch_and_add words.(i) 1
    done;
    for _ = 1 to spec.array_words do
      Ops.work 150
    done;
    Ops.work 5_000;
    (* Phase B: two contenders on a spin lock — multiple runnable
       threads, so dispatch takes the general path and the spin
       iterations exercise the fused probe effects. *)
    if spec.contended_iters > 0 && spec.processors >= 3 then begin
      let contender proc =
        Cthreads.Cthread.fork ~proc (fun () ->
            for _ = 1 to spec.contended_iters do
              Cthreads.Spin.lock lk;
              ignore (Ops.fetch_and_add shared 1);
              Ops.work 2_000;
              Cthreads.Spin.unlock lk
            done)
      in
      let a = contender 1 in
      let b = contender 2 in
      Cthreads.Cthread.join a;
      Cthreads.Cthread.join b
    end
  done;
  acc := !acc + Ops.read shared

let run ?machine spec =
  let machine =
    match machine with
    | Some m -> m
    | None -> { Config.default with Config.processors = spec.processors }
  in
  let sim = Sched.create machine in
  let acc = ref 0 in
  Sched.run sim (scenario spec ~acc);
  {
    spec;
    final_ns = Sched.final_time sim;
    events = Sched.events_executed sim;
    checksum = !acc;
  }
