open Butterfly
open Cthreads

type spec = { processors : int; workers : int; rounds : int; items_each : int; seed : int }

let default = { processors = 8; workers = 6; rounds = 12; items_each = 4; seed = 47 }

type result = {
  spec : spec;
  total_ns : int;
  snapshot : Adaptive_core.Registry.metrics list;
  adaptations : int;
}

(* One simulated program that exercises every adaptive-object family in
   the package — lock, rw-lock, barrier, condition, semaphore — so a
   single registry snapshot shows the whole telemetry spine at work.

   Stage 1 (rounds): balanced compute, then a skewed straggler, between
   barrier arrivals (drives the barrier's spin-budget policy both
   ways); inside each round a contended adaptive-lock critical section,
   a read-mostly rw-lock phase with periodic writes, and a
   semaphore-limited section. Stage 2: a producer/consumer hand-off
   through the adaptive condition, with every consumer waiting at once
   (drives the broadcast-hint escalation). *)
let body ?(snapshot = ref []) spec () =
  Adaptive_core.Registry.reset ();
  let w = spec.workers in
  let lock = Locks.Adaptive_lock.create ~name:"counter-lock" ~home:0 () in
  let rw = Locks.Rw_lock.create ~name:"table-rw" ~adaptive:true ~home:0 () in
  let barrier = Adaptive_barrier.create ~node:0 ~name:"round-barrier" w in
  let mu = Spin.create ~node:0 () in
  let cond = Adaptive_condition.create ~node:0 ~name:"queue-nonempty" () in
  let sem = Adaptive_semaphore.create ~node:0 ~name:"io-slots" 2 in
  let available = ref 0 in
  let worker i () =
    (* Stage 1: barrier rounds. The second half gives worker 0 a
       2.4 ms straggle — spread well past the barrier's block_if_over
       threshold, so the arrival spin budget ramps up through the
       balanced rounds and back down through the skewed ones. *)
    for r = 1 to spec.rounds do
      let skew = if r > spec.rounds / 2 && i = 0 then 2_400_000 else 0 in
      Cthread.work (4_000 + skew);
      Adaptive_barrier.await barrier;
      Locks.Adaptive_lock.lock lock;
      Cthread.work 3_000;
      Locks.Adaptive_lock.unlock lock;
      Adaptive_semaphore.acquire sem;
      Cthread.work 2_500;
      Adaptive_semaphore.release sem;
      Cthread.work 1_000
    done;
    (* Stage 2: worker 0 produces, everyone else consumes. The
       producer's warm-up outlasts the consumers' resume from the last
       barrier, so the first signals find the whole crowd waiting and
       the wake strategy escalates to broadcast; once the item pool
       runs ahead of the consumers it de-escalates again. *)
    if i = 0 then begin
      Cthread.work 1_000_000;
      for _ = 1 to (w - 1) * spec.items_each do
        Cthread.work 1_500;
        Spin.lock mu;
        incr available;
        Adaptive_condition.signal cond;
        Spin.unlock mu
      done
    end
    else
      for _ = 1 to spec.items_each do
        Spin.lock mu;
        while !available = 0 do
          Adaptive_condition.wait cond mu
        done;
        decr available;
        Spin.unlock mu;
        Cthread.work 2_000
      done;
    (* Stage 3: a read-mostly table with a writer burst in the middle
       rounds — waiting writers flip the rw preference to Writer_pref,
       and the writer-free tail flips it back. *)
    for r = 1 to 8 do
      if i < 2 && r >= 3 && r <= 6 then
        Locks.Rw_lock.with_write rw (fun () -> Cthread.work 5_000)
      else Locks.Rw_lock.with_read rw (fun () -> Cthread.work 40_000);
      Cthread.work 2_000
    done
  in
  let threads =
    List.init w (fun i ->
        Cthread.fork
          ~proc:(1 + (i mod (spec.processors - 1)))
          ~name:(Printf.sprintf "sync%d" i) (worker i))
  in
  Cthread.join_all threads;
  snapshot := Adaptive_core.Registry.snapshot ()

let scenario spec () = body spec ()

let run ?machine spec =
  let cfg =
    match machine with
    | Some cfg -> { cfg with Config.processors = spec.processors; seed = spec.seed }
    | None ->
      { Config.default with Config.processors = spec.processors; seed = spec.seed }
  in
  let sim = Sched.create cfg in
  let snapshot = ref [] in
  Sched.run sim (body ~snapshot spec);
  let adaptations =
    List.fold_left
      (fun n (m : Adaptive_core.Registry.metrics) ->
        n + m.Adaptive_core.Registry.stats.Adaptive_core.Registry.adaptations)
      0 !snapshot
  in
  { spec; total_ns = Sched.final_time sim; snapshot = !snapshot; adaptations }
