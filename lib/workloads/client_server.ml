open Butterfly
open Cthreads

type spec = {
  processors : int;
  clients : int;
  requests_per_client : int;
  service_ns : int;
  submit_think_ns : int;
  sched : Locks.Lock_sched.kind;
  handoff_to_server : bool;
  seed : int;
}

let default =
  {
    processors = 8;
    clients = 12;
    requests_per_client = 10;
    service_ns = 15_000;
    submit_think_ns = 5_000;
    sched = Locks.Lock_sched.Fcfs;
    handoff_to_server = false;
    seed = 23;
  }

type result = {
  spec : spec;
  total_ns : int;
  served : int;
  mean_response_ns : float;  (** submit-to-served latency, the headline *)
  max_response_ns : int;
  server_mean_wait_ns : float;
  client_mean_wait_ns : float;
}

(* The workload program itself, machine-independent (see Csweep.body
   for the pattern). *)
let body ?(served = ref 0) ?(response_sum = ref 0) ?(response_max = ref 0)
    ?(server_wait = ref 0) ?(server_acqs = ref 0) ?(client_wait = ref 0)
    ?(client_acqs = ref 0) spec () =
  begin
      let lk = Locks.Lock.create ~home:0 ~sched:spec.sched Locks.Lock.Blocking in
      (* An open system: clients submit requests at their own pace and
         never wait for replies, so the scheduler's effect on the
         server's lock access is not masked by a closed feedback
         loop. *)
      let requests : int Queue.t = Queue.create () in
      (* each entry is its submission timestamp *)
      let total = spec.clients * spec.requests_per_client in
      let timed_lock acc_wait acc_n =
        let t0 = Cthread.now () in
        Locks.Lock.lock lk;
        acc_wait := !acc_wait + (Cthread.now () - t0);
        incr acc_n
      in
      let server_body () =
        while !served < total do
          timed_lock server_wait server_acqs;
          (match Queue.take_opt requests with
          | Some submitted_at ->
            (* Monitor-style server: the request is processed inside
               the critical section, so submitters pile up behind the
               lock and the release policy decides whether the server
               re-enters ahead of them. *)
            Cthread.work spec.service_ns;
            incr served;
            let response = Cthread.now () - submitted_at in
            response_sum := !response_sum + response;
            if response > !response_max then response_max := response
          | None -> ());
          Locks.Lock.unlock lk;
          if Queue.is_empty requests && !served < total then Cthread.delay 10_000
        done
      in
      let server = Cthread.fork ~name:"server" ~proc:1 ~prio:10 server_body in
      let client_body i () =
        Cthread.work (1_000 * (i mod 5));
        for r = 1 to spec.requests_per_client do
          Cthread.work spec.submit_think_ns;
          timed_lock client_wait client_acqs;
          ignore r;
          Queue.add (Cthread.now ()) requests;
          if spec.handoff_to_server then Locks.Lock.set_successor lk server;
          Locks.Lock.unlock lk
        done
      in
      let clients =
        List.init spec.clients (fun i ->
            let proc = 2 + (i mod (spec.processors - 2)) in
            Cthread.fork ~name:(Printf.sprintf "client%d" i) ~proc ~prio:0 (client_body i))
      in
      Cthread.join_all clients;
      Cthread.join server
  end

let scenario spec () = body spec ()

let run ?machine spec =
  let cfg =
    match machine with
    | Some cfg -> { cfg with Config.processors = spec.processors; seed = spec.seed }
    | None ->
      { Config.default with Config.processors = spec.processors; seed = spec.seed }
  in
  let sim = Sched.create cfg in
  let served = ref 0 in
  let response_sum = ref 0 and response_max = ref 0 in
  let server_wait = ref 0 and server_acqs = ref 0 in
  let client_wait = ref 0 and client_acqs = ref 0 in
  Sched.run sim
    (body ~served ~response_sum ~response_max ~server_wait ~server_acqs ~client_wait
       ~client_acqs spec);
  let mean acc n = if !n = 0 then 0.0 else float_of_int !acc /. float_of_int !n in
  {
    spec;
    total_ns = Sched.final_time sim;
    served = !served;
    mean_response_ns =
      (if !served = 0 then 0.0 else float_of_int !response_sum /. float_of_int !served);
    max_response_ns = !response_max;
    server_mean_wait_ns = mean server_wait server_acqs;
    client_mean_wait_ns = mean client_wait client_acqs;
  }

let compare_schedulers ?machine ?domains spec =
  let specs =
    [
      (Locks.Lock_sched.Fcfs, { spec with sched = Locks.Lock_sched.Fcfs });
      (Locks.Lock_sched.Priority, { spec with sched = Locks.Lock_sched.Priority });
      ( Locks.Lock_sched.Handoff,
        { spec with sched = Locks.Lock_sched.Handoff; handoff_to_server = true } );
    ]
  in
  Engine.Runner.map ?domains (fun (sched, spec) -> (sched, run ?machine spec)) specs
