(** The sync-objects workload: one simulated program exercising every
    adaptive-object family — adaptive lock, rw-lock, barrier,
    condition, semaphore — so one [Core.Registry] snapshot shows the
    whole telemetry spine ([repro objects] runs exactly this). *)

open Butterfly

type spec = {
  processors : int;
  workers : int;
  rounds : int;  (** barrier rounds in stage 1 *)
  items_each : int;  (** items consumed per consumer in stage 2 *)
  seed : int;
}

val default : spec

type result = {
  spec : spec;
  total_ns : int;
  snapshot : Adaptive_core.Registry.metrics list;
      (** registry snapshot taken inside the run, in object-creation
          order *)
  adaptations : int;  (** sum over the snapshot *)
}

val body : ?snapshot:Adaptive_core.Registry.metrics list ref -> spec -> unit -> unit
(** The simulated program (resets the registry first). *)

val scenario : spec -> unit -> unit
(** [body] as an analysis/chaos scenario program. *)

val run : ?machine:Config.t -> spec -> result
