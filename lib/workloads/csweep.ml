open Butterfly
open Cthreads

type spec = {
  processors : int;
  threads_per_proc : int;
  iterations : int;
  cs_ns : int;
  think_ns : int;
  lock_kind : Locks.Lock.kind;
  seed : int;
}

let default =
  {
    processors = 8;
    threads_per_proc = 3;
    iterations = 40;
    cs_ns = 20_000;
    think_ns = 30_000;
    lock_kind = Locks.Lock.Spin;
    seed = 11;
  }

type result = {
  spec : spec;
  total_ns : int;
  mean_wait_ns : float;
  contended : int;
  blocks : int;
  spin_probes : int;
  adaptations : int;
}

(* The workload program itself, machine-independent: runs inside any
   simulator with [spec.processors] processors; [stats] receives the
   shared lock's statistics (sanitizer runs discard them). *)
let body ?(stats = ref None) spec () =
  let lk = Locks.Lock.create ~home:0 spec.lock_kind in
  let worker tid_seed () =
    (* Jitter arrival so threads do not phase-lock artificially. *)
    Cthread.work (100 * (tid_seed mod 7));
    for _ = 1 to spec.iterations do
      Locks.Lock.lock lk;
      Cthread.work spec.cs_ns;
      Locks.Lock.unlock lk;
      Cthread.work spec.think_ns
    done
  in
  let threads =
    List.concat_map
      (fun proc ->
        List.init spec.threads_per_proc (fun i ->
            Cthread.fork ~proc
              ~name:(Printf.sprintf "w%d.%d" proc i)
              (worker ((proc * 31) + i))))
      (List.init spec.processors (fun p -> p))
  in
  Cthread.join_all threads;
  stats := Some (Locks.Lock.stats lk)

let scenario spec () = body spec ()

let run ?machine spec =
  let cfg =
    match machine with
    | Some cfg -> { cfg with Config.processors = spec.processors; seed = spec.seed }
    | None ->
      { Config.default with Config.processors = spec.processors; seed = spec.seed }
  in
  let sim = Sched.create cfg in
  let stats = ref None in
  Sched.run sim (body ~stats spec);
  let s = match !stats with Some s -> s | None -> assert false in
  {
    spec;
    total_ns = Sched.final_time sim;
    mean_wait_ns = Locks.Lock_stats.mean_wait_ns s;
    contended = Locks.Lock_stats.contended s;
    blocks = Locks.Lock_stats.blocks s;
    spin_probes = Locks.Lock_stats.spin_probes s;
    adaptations = Locks.Lock_stats.reconfigurations s;
  }

let sweep ?machine ?domains ~base ~cs_lengths ~kinds () =
  (* Each grid cell is an independent machine run: flatten the
     kind x cs grid, fan the cells across domains, regroup per kind.
     Input-order merging keeps the curves identical at any domain
     count. *)
  let cells =
    List.concat_map (fun kind -> List.map (fun cs_ns -> (kind, cs_ns)) cs_lengths) kinds
  in
  let results =
    Engine.Runner.map ?domains
      (fun (kind, cs_ns) -> run ?machine { base with cs_ns; lock_kind = kind })
      cells
  in
  let tagged = List.combine cells results in
  List.map
    (fun kind ->
      let curve =
        List.filter_map
          (fun ((k, cs_ns), r) -> if k = kind then Some (cs_ns, r) else None)
          tagged
      in
      (kind, curve))
    kinds
