(** Phased workload: the contention regime changes between phases.

    Each phase prescribes how many of the worker threads actively
    hammer the shared lock (the rest compute locally) and how long the
    critical sections are. Static locks are tuned for one regime and
    suffer in the other; an adaptive lock reconfigures at phase
    boundaries — the scenario motivating "the optimal waiting policy
    might differ during different phases of a computation" (§2). *)

type phase = {
  active_threads : int;  (** how many workers contend in this phase *)
  cs_ns : int;
  entries : int;  (** critical-section entries per active worker *)
}

type spec = {
  processors : int;
  workers : int;
  phases : phase list;
  think_ns : int;
  lock_kind : Locks.Lock.kind;
  seed : int;
}

val default : spec
(** Three phases: solo (no contention), storm (all workers), solo
    again. *)

type result = {
  spec : spec;
  total_ns : int;
  adaptations : int;
  adaptation_log : (int * string) list;  (** adaptive locks only *)
  mean_wait_ns : float;
  blocks : int;
}

val run : ?machine:Butterfly.Config.t -> spec -> result

val scenario : spec -> unit -> unit
(** The workload program as a bare thunk for an externally owned
    simulator (the sanitizers): same threads and lock traffic as
    {!run}, results discarded. Needs [spec.processors] processors. *)

val compare_kinds :
  ?machine:Butterfly.Config.t ->
  ?domains:int ->
  spec ->
  Locks.Lock.kind list ->
  (Locks.Lock.kind * result) list
(** One independent machine per kind, run in parallel across up to
    [domains] host cores; result order follows the input kinds. *)
