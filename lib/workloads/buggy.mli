(** Seeded-buggy workloads: known-positive inputs for the sanitizers
    in [lib/analysis]. Each scenario contains exactly one deliberate
    synchronization bug; the regression tests assert the corresponding
    detector flags it (and only it). All must run inside a simulation
    with at least {!processors} processors. *)

val processors : int

val racy_counter : unit -> unit
(** Two threads read-modify-write one shared word with no lock:
    a confirmed data race. *)

val lock_order_inversion : unit -> unit
(** Locks [a] and [b] acquired in both orders by consecutive (never
    overlapping) threads: no deadlock on this run, but a lock-order
    cycle. *)

val true_deadlock : unit -> unit
(** The same inversion with overlapping threads: the run actually
    deadlocks (reported as a diagnostic, plus the cycle). *)

val double_unlock : unit -> unit
(** A raw spin mutex unlocked twice ([unlock-not-held] lint). *)

val exit_while_holding : unit -> unit
(** A thread finishes without releasing its lock
    ([lock-held-at-exit] lint). *)

val sleep_with_spin_lock : unit -> unit
(** The holder of a spin-kind lock blocks while a waiter spins
    ([block-holding-spin-lock] lint). *)

(** {1 Prediction-only bugs}

    Timed so the observed schedule is provably clean for the
    observed-trace sanitizers, while a legal reordering manifests the
    bug — inputs for the predictive pass (weak causality + witness
    replay). *)

val hidden_race : unit -> unit
(** Write/write race hidden behind an accidental release→acquire
    ordering on a lock whose second critical section never touches the
    raced word ([predicted-race], confirmable). *)

val stale_hint_race : unit -> unit
(** Write/read variant: an adaptive-policy hint updated under the
    policy lock but read with no lock after an unrelated pass through
    it ([predicted-race], confirmable). *)

val latent_deadlock : unit -> unit
(** The a/b inversion with threads that never overlap in the observed
    run: flagged as a cycle by the observed-trace graph, and promoted
    to a {e confirmed} deadlock by the predictor ([predicted-deadlock]). *)

val lost_wakeup : unit -> unit
(** A waiter naps holding the lock its waker needs; observed, the
    wakeup is banked as a token in time — reordered, it is never sent
    ([predicted-lost-wakeup], confirmable). *)

val gated_order : unit -> unit
(** Negative control: both lock nestings of an a/b inversion under a
    common gate lock. The observed-trace graph reports its classic
    false-positive cycle; the predictor must report nothing. *)

val swap_lost_waiter : unit -> unit
(** A switch lock seeded with [Lost_sleeper_on_swap] commits an
    implementation swap while a waiter is asleep: the sleeper is
    dropped from the queue unwoken and the run wedges on its join
    ([predicted-swap-lost-waiter], confirmable). *)

val swap_double_grant : unit -> unit
(** A switch lock seeded with [Double_grant_on_swap] grants a sleeping
    waiter mid-window while the swapper still owns the lock: two
    holders at once, and the swapper's unlock crashes on the ownership
    check ([predicted-swap-double-grant], confirmable). *)
