(** Seeded-buggy workloads: known-positive inputs for the sanitizers
    in [lib/analysis]. Each scenario contains exactly one deliberate
    synchronization bug; the regression tests assert the corresponding
    detector flags it (and only it). All must run inside a simulation
    with at least {!processors} processors. *)

val processors : int

val racy_counter : unit -> unit
(** Two threads read-modify-write one shared word with no lock:
    a confirmed data race. *)

val lock_order_inversion : unit -> unit
(** Locks [a] and [b] acquired in both orders by consecutive (never
    overlapping) threads: no deadlock on this run, but a lock-order
    cycle. *)

val true_deadlock : unit -> unit
(** The same inversion with overlapping threads: the run actually
    deadlocks (reported as a diagnostic, plus the cycle). *)

val double_unlock : unit -> unit
(** A raw spin mutex unlocked twice ([unlock-not-held] lint). *)

val exit_while_holding : unit -> unit
(** A thread finishes without releasing its lock
    ([lock-held-at-exit] lint). *)

val sleep_with_spin_lock : unit -> unit
(** The holder of a spin-kind lock blocks while a waiter spins
    ([block-holding-spin-lock] lint). *)
