(** Critical-section-length sweep — the workload behind Figure 1.

    A fixed population of threads (more threads than processors, so
    spinning actually prevents other threads' progress) repeatedly
    enters one shared critical section of configurable length, with
    configurable "think time" between entries. The figure compares
    application execution time across lock kinds (pure spin, pure
    blocking, combined with 1/10/50 initial spins) as the critical
    section grows. *)

type spec = {
  processors : int;
  threads_per_proc : int;
  iterations : int;  (** critical-section entries per thread *)
  cs_ns : int;  (** critical-section length *)
  think_ns : int;  (** local work between entries *)
  lock_kind : Locks.Lock.kind;
  seed : int;
}

val default : spec
(** 8 processors, 3 threads each, 40 iterations, 20 us sections, 30 us
    think time, pure spin. *)

type result = {
  spec : spec;
  total_ns : int;  (** application execution time (virtual) *)
  mean_wait_ns : float;
  contended : int;
  blocks : int;
  spin_probes : int;
  adaptations : int;
}

val run : ?machine:Butterfly.Config.t -> spec -> result
(** Execute one configuration on a fresh simulated machine. *)

val scenario : spec -> unit -> unit
(** The workload program as a bare thunk for an externally owned
    simulator (the sanitizers): same threads and lock traffic as
    {!run}, results discarded. Needs [spec.processors] processors. *)

val sweep :
  ?machine:Butterfly.Config.t ->
  ?domains:int ->
  base:spec ->
  cs_lengths:int list ->
  kinds:Locks.Lock.kind list ->
  unit ->
  (Locks.Lock.kind * (int * result) list) list
(** The full Figure 1 grid: for every kind, a curve of (cs length,
    result). Cells run in parallel across up to [domains] host cores
    (default {!Engine.Runner.default_domains}); each cell is its own
    deterministic machine, so the output does not depend on
    [domains]. *)
