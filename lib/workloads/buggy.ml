open Butterfly
open Cthreads

(* Every scenario here is deliberately wrong in exactly one way, so
   the sanitizers in [lib/analysis] have known-positive inputs. Each
   needs a machine with at least [processors] processors. *)

let processors = 4

let racy_counter () =
  let counter = Ops.alloc1 ~node:0 () in
  let bump () =
    for _ = 1 to 5 do
      (* Read-modify-write with no lock: the classic lost update. *)
      let v = Ops.read counter in
      Cthread.work 5_000;
      Ops.write counter (v + 1)
    done
  in
  let a = Cthread.fork ~name:"racer-a" ~proc:1 bump in
  let b = Cthread.fork ~name:"racer-b" ~proc:2 bump in
  Cthread.join_all [ a; b ]

let lock_order_inversion () =
  let la = Locks.Lock.create ~name:"lock-a" ~home:0 Locks.Lock.Blocking in
  let lb = Locks.Lock.create ~name:"lock-b" ~home:0 Locks.Lock.Blocking in
  let pair first second () =
    Locks.Lock.lock first;
    Cthread.work 10_000;
    Locks.Lock.lock second;
    Cthread.work 10_000;
    Locks.Lock.unlock second;
    Locks.Lock.unlock first
  in
  (* Run the two orders one after the other: this run cannot deadlock,
     but the cycle a -> b -> a is in the lock-order graph all the
     same. *)
  let t1 = Cthread.fork ~name:"ab" ~proc:1 (pair la lb) in
  Cthread.join t1;
  let t2 = Cthread.fork ~name:"ba" ~proc:2 (pair lb la) in
  Cthread.join t2

let true_deadlock () =
  let la = Locks.Lock.create ~name:"lock-a" ~home:0 Locks.Lock.Blocking in
  let lb = Locks.Lock.create ~name:"lock-b" ~home:0 Locks.Lock.Blocking in
  let pair name first second () =
    ignore name;
    Locks.Lock.lock first;
    (* Long enough that both threads hold their first lock before
       either requests its second. *)
    Cthread.work 200_000;
    Locks.Lock.lock second;
    Locks.Lock.unlock second;
    Locks.Lock.unlock first
  in
  let t1 = Cthread.fork ~name:"ab" ~proc:1 (pair "ab" la lb) in
  let t2 = Cthread.fork ~name:"ba" ~proc:2 (pair "ba" lb la) in
  Cthread.join_all [ t1; t2 ]

let double_unlock () =
  (* The raw spin mutex has no owner word, so the second unlock is
     silent at runtime — only the lint sees it. *)
  let mu = Spin.create ~node:0 () in
  Spin.lock mu;
  Cthread.work 5_000;
  Spin.unlock mu;
  Spin.unlock mu

let exit_while_holding () =
  let lk = Locks.Lock.create ~name:"leaked-lock" ~home:0 Locks.Lock.Blocking in
  let t =
    Cthread.fork ~name:"leaker" ~proc:1 (fun () ->
        Locks.Lock.lock lk;
        Cthread.work 5_000
        (* ... and returns without unlocking. *))
  in
  Cthread.join t

(* {2 Prediction-only bugs}

   The scenarios below are carefully timed so the schedule the
   simulator actually takes is clean — the observed-trace sanitizers
   (race detector, lock-order graph, lint) provably see nothing —
   while a legal reordering manifests the bug. Only the predictive
   pass (weak causality + witness replay) catches them. *)

let hidden_race () =
  (* Thread [late] writes [x] after its critical section on the same
     lock that [early] held while writing — so the observed run orders
     the writes through the lock's release→acquire happens-before edge
     and the race detector stays quiet. But [late]'s section never
     touches [x]: swapping the two sections is legal, and then the
     writes collide. *)
  let m = Locks.Lock.create ~name:"guard" ~home:0 Locks.Lock.Blocking in
  let x = Ops.alloc1 ~node:0 () in
  let early =
    Cthread.fork ~name:"early" ~proc:1 (fun () ->
        Locks.Lock.lock m;
        Ops.write x 1;
        Cthread.work 10_000;
        Locks.Lock.unlock m)
  in
  let late =
    Cthread.fork ~name:"late" ~proc:2 (fun () ->
        Cthread.work 300_000;
        Locks.Lock.lock m;
        Cthread.work 5_000;
        Locks.Lock.unlock m;
        Ops.write x 2)
  in
  Cthread.join_all [ early; late ]

let stale_hint_race () =
  (* The adaptive-object shape of the same bug: a reconfigurer updates
     a policy hint under the policy lock; the fast path reads the hint
     with no lock after an unrelated pass through the same lock. In
     the observed run the fast path trails far behind, so the lock's
     happens-before edge hides the unsynchronized read. *)
  let policy = Locks.Lock.create ~name:"policy-lock" ~home:0 Locks.Lock.Blocking in
  let hint = Ops.alloc1 ~node:0 () in
  let reconfigurer =
    Cthread.fork ~name:"reconfigurer" ~proc:1 (fun () ->
        Locks.Lock.lock policy;
        Ops.write hint 1;
        Cthread.work 12_000;
        Locks.Lock.unlock policy)
  in
  let fast_path =
    Cthread.fork ~name:"fast-path" ~proc:2 (fun () ->
        Cthread.work 320_000;
        Locks.Lock.lock policy;
        Cthread.work 4_000;
        Locks.Lock.unlock policy;
        ignore (Ops.read hint))
  in
  Cthread.join_all [ reconfigurer; fast_path ]

let latent_deadlock () =
  (* The classic a/b inversion, timed so thread [ab] is long done
     before [ba] takes its first lock: the observed run cannot
     deadlock, but no ordering forces that — the reordering where both
     hold their first lock is reachable and fatal. *)
  let la = Locks.Lock.create ~name:"lock-a" ~home:0 Locks.Lock.Blocking in
  let lb = Locks.Lock.create ~name:"lock-b" ~home:0 Locks.Lock.Blocking in
  let t1 =
    Cthread.fork ~name:"ab" ~proc:1 (fun () ->
        Locks.Lock.lock la;
        Cthread.work 5_000;
        Locks.Lock.lock lb;
        Cthread.work 2_000;
        Locks.Lock.unlock lb;
        Locks.Lock.unlock la)
  in
  let t2 =
    Cthread.fork ~name:"ba" ~proc:2 (fun () ->
        Cthread.work 400_000;
        Locks.Lock.lock lb;
        Cthread.work 5_000;
        Locks.Lock.lock la;
        Locks.Lock.unlock la;
        Locks.Lock.unlock lb)
  in
  Cthread.join_all [ t1; t2 ]

let lost_wakeup () =
  (* The waiter naps while holding the lock its waker needs. Observed,
     the waker slips through the lock long before the nap begins and
     its wakeup is banked as a token — but reordered, the waiter takes
     the lock first, the waker can never reach its wakeup call, and
     both sleep forever. *)
  let m = Locks.Lock.create ~name:"wake-lock" ~home:0 Locks.Lock.Blocking in
  let waiter =
    Cthread.fork ~name:"waiter" ~proc:1 (fun () ->
        Cthread.work 300_000;
        Locks.Lock.lock m;
        Cthread.block ();
        Locks.Lock.unlock m)
  in
  let _waker =
    Cthread.fork ~name:"waker" ~proc:2 (fun () ->
        Locks.Lock.lock m;
        Cthread.work 2_000;
        Locks.Lock.unlock m;
        Cthread.wakeup waiter)
  in
  Cthread.join waiter

let gated_order () =
  (* Negative control for the predictor: the a/b inversion again, but
     both nestings sit under a common gate lock, so no reordering can
     overlap them. The observed-trace lock-order graph still cries
     cycle (its classic false positive); the predictive pass must
     stay quiet. *)
  let gate = Locks.Lock.create ~name:"gate" ~home:0 Locks.Lock.Blocking in
  let la = Locks.Lock.create ~name:"gated-a" ~home:0 Locks.Lock.Blocking in
  let lb = Locks.Lock.create ~name:"gated-b" ~home:0 Locks.Lock.Blocking in
  let pair first second () =
    Locks.Lock.lock gate;
    Locks.Lock.lock first;
    Cthread.work 5_000;
    Locks.Lock.lock second;
    Cthread.work 5_000;
    Locks.Lock.unlock second;
    Locks.Lock.unlock first;
    Locks.Lock.unlock gate
  in
  let t1 = Cthread.fork ~name:"gated-ab" ~proc:1 (pair la lb) in
  let t2 = Cthread.fork ~name:"gated-ba" ~proc:2 (pair lb la) in
  Cthread.join_all [ t1; t2 ]

let sleep_with_spin_lock () =
  (* The holder of a spin-kind lock goes to sleep; a waiter on another
     processor burns cpu for the whole nap. *)
  let lk = Locks.Lock.create ~name:"hot-lock" ~home:0 Locks.Lock.Spin in
  let holder =
    Cthread.fork ~name:"napper" ~proc:1 (fun () ->
        Locks.Lock.lock lk;
        Cthread.block ();
        Locks.Lock.unlock lk)
  in
  let waiter =
    Cthread.fork ~name:"burner" ~proc:2 (fun () ->
        Cthread.work 20_000;
        Locks.Lock.lock lk;
        Locks.Lock.unlock lk)
  in
  (* Let the holder block (and the waiter spin) well before the
     wakeup arrives. *)
  Cthread.work 300_000;
  Cthread.wakeup holder;
  Cthread.join_all [ holder; waiter ]

(* A swap window driven while exactly one waiter is asleep: the
   seeded-buggy switch lock then commits a swap those sleepers never
   hear about. The swapper parks on [waiting_now] (bounded, so a
   chaos-mutilated run still terminates) and settles long enough for
   the registered waiter to actually reach its block point. *)
let swapped_with_sleeper ~name ~bug () =
  let module SL = Locks.Switch_lock in
  let lk = SL.create ~name ~bug ~initial:SL.Blocking ~home:0 () in
  let swapper =
    Cthread.fork ~name:"swapper" ~proc:1 (fun () ->
        SL.lock lk;
        let rec settle n =
          if n > 0 && SL.waiting_now lk < 1 then begin
            Cthread.delay 20_000;
            settle (n - 1)
          end
        in
        settle 200;
        Cthread.delay 150_000;
        ignore (SL.swap_to lk SL.Mcs);
        (* Long enough that a bug-granted sleeper (which pays the full
           wakeup overhead first) acquires while we still hold. *)
        Cthread.work 200_000;
        SL.unlock lk)
  in
  let victim =
    Cthread.fork ~name:"victim" ~proc:2 (fun () ->
        SL.lock lk;
        Cthread.work 20_000;
        SL.unlock lk)
  in
  (swapper, victim)

let swap_lost_waiter () =
  let swapper, victim =
    swapped_with_sleeper ~name:"swl-lost-waiter"
      ~bug:Locks.Switch_lock.Lost_sleeper_on_swap ()
  in
  Cthread.join swapper;
  (* The dropped sleeper is never woken: this join wedges the machine. *)
  Cthread.join victim

let swap_double_grant () =
  let swapper, victim =
    swapped_with_sleeper ~name:"swl-double-grant"
      ~bug:Locks.Switch_lock.Double_grant_on_swap ()
  in
  (* The bogus grant stole ownership mid-window: the victim finishes,
     and the swapper's own unlock then crashes on the ownership check. *)
  Cthread.join victim;
  Cthread.join swapper
