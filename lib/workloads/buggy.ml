open Butterfly
open Cthreads

(* Every scenario here is deliberately wrong in exactly one way, so
   the sanitizers in [lib/analysis] have known-positive inputs. Each
   needs a machine with at least [processors] processors. *)

let processors = 4

let racy_counter () =
  let counter = Ops.alloc1 ~node:0 () in
  let bump () =
    for _ = 1 to 5 do
      (* Read-modify-write with no lock: the classic lost update. *)
      let v = Ops.read counter in
      Cthread.work 5_000;
      Ops.write counter (v + 1)
    done
  in
  let a = Cthread.fork ~name:"racer-a" ~proc:1 bump in
  let b = Cthread.fork ~name:"racer-b" ~proc:2 bump in
  Cthread.join_all [ a; b ]

let lock_order_inversion () =
  let la = Locks.Lock.create ~name:"lock-a" ~home:0 Locks.Lock.Blocking in
  let lb = Locks.Lock.create ~name:"lock-b" ~home:0 Locks.Lock.Blocking in
  let pair first second () =
    Locks.Lock.lock first;
    Cthread.work 10_000;
    Locks.Lock.lock second;
    Cthread.work 10_000;
    Locks.Lock.unlock second;
    Locks.Lock.unlock first
  in
  (* Run the two orders one after the other: this run cannot deadlock,
     but the cycle a -> b -> a is in the lock-order graph all the
     same. *)
  let t1 = Cthread.fork ~name:"ab" ~proc:1 (pair la lb) in
  Cthread.join t1;
  let t2 = Cthread.fork ~name:"ba" ~proc:2 (pair lb la) in
  Cthread.join t2

let true_deadlock () =
  let la = Locks.Lock.create ~name:"lock-a" ~home:0 Locks.Lock.Blocking in
  let lb = Locks.Lock.create ~name:"lock-b" ~home:0 Locks.Lock.Blocking in
  let pair name first second () =
    ignore name;
    Locks.Lock.lock first;
    (* Long enough that both threads hold their first lock before
       either requests its second. *)
    Cthread.work 200_000;
    Locks.Lock.lock second;
    Locks.Lock.unlock second;
    Locks.Lock.unlock first
  in
  let t1 = Cthread.fork ~name:"ab" ~proc:1 (pair "ab" la lb) in
  let t2 = Cthread.fork ~name:"ba" ~proc:2 (pair "ba" lb la) in
  Cthread.join_all [ t1; t2 ]

let double_unlock () =
  (* The raw spin mutex has no owner word, so the second unlock is
     silent at runtime — only the lint sees it. *)
  let mu = Spin.create ~node:0 () in
  Spin.lock mu;
  Cthread.work 5_000;
  Spin.unlock mu;
  Spin.unlock mu

let exit_while_holding () =
  let lk = Locks.Lock.create ~name:"leaked-lock" ~home:0 Locks.Lock.Blocking in
  let t =
    Cthread.fork ~name:"leaker" ~proc:1 (fun () ->
        Locks.Lock.lock lk;
        Cthread.work 5_000
        (* ... and returns without unlocking. *))
  in
  Cthread.join t

let sleep_with_spin_lock () =
  (* The holder of a spin-kind lock goes to sleep; a waiter on another
     processor burns cpu for the whole nap. *)
  let lk = Locks.Lock.create ~name:"hot-lock" ~home:0 Locks.Lock.Spin in
  let holder =
    Cthread.fork ~name:"napper" ~proc:1 (fun () ->
        Locks.Lock.lock lk;
        Cthread.block ();
        Locks.Lock.unlock lk)
  in
  let waiter =
    Cthread.fork ~name:"burner" ~proc:2 (fun () ->
        Cthread.work 20_000;
        Locks.Lock.lock lk;
        Locks.Lock.unlock lk)
  in
  (* Let the holder block (and the waiter spin) well before the
     wakeup arrives. *)
  Cthread.work 300_000;
  Cthread.wakeup holder;
  Cthread.join_all [ holder; waiter ]
