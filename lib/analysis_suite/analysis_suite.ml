open Butterfly
open Cthreads

type expect = Clean | Flags of string list

type scenario = {
  scenario_name : string;
  config : Config.t;
  program : unit -> unit;
  expect : expect;
}

let config ?(seed = 11) processors =
  { Config.default with Config.processors; seed }

(* A correct program exercising every Cthreads primitive, with shared
   data protected three different ways: a condition-guarded slot
   (lockset), a barrier-separated array (pure happens-before — this is
   the scenario that breaks if any vector-clock edge goes missing) and
   a semaphore-limited section over a mutex-guarded counter. *)
let primitives () =
  (* producer/consumer through one slot *)
  let mu = Spin.create ~node:0 () in
  let slot_full = Condition.create ~node:0 () in
  let slot_empty = Condition.create ~node:0 () in
  let slot = Ops.alloc1 ~node:0 () in
  let producer =
    Cthread.fork ~name:"producer" ~proc:1 (fun () ->
        for v = 1 to 6 do
          Cthread.work 8_000;
          Spin.lock mu;
          while Ops.read slot <> 0 do
            Condition.wait slot_empty mu
          done;
          Ops.write slot v;
          Condition.signal slot_full;
          Spin.unlock mu
        done)
  in
  let consumer =
    Cthread.fork ~name:"consumer" ~proc:2 (fun () ->
        for _ = 1 to 6 do
          Spin.lock mu;
          while Ops.read slot = 0 do
            Condition.wait slot_full mu
          done;
          Ops.write slot 0;
          Condition.signal slot_empty;
          Spin.unlock mu
        done)
  in
  Cthread.join_all [ producer; consumer ];
  (* barrier-separated neighbour exchange *)
  let n = 3 in
  let cells = Ops.alloc ~node:0 n in
  let barrier = Barrier.create ~node:0 n in
  let sum = ref 0 in
  let exchanger i () =
    Ops.write cells.(i) (100 + i);
    Barrier.await barrier;
    sum := !sum + Ops.read cells.((i + 1) mod n)
  in
  let ts =
    List.init n (fun i ->
        Cthread.fork ~name:(Printf.sprintf "cell%d" i) ~proc:(1 + i) (exchanger i))
  in
  Cthread.join_all ts;
  (* semaphore-limited critical work *)
  let sem = Semaphore.create ~node:0 2 in
  let counter_mu = Spin.create ~node:0 () in
  let counter = Ops.alloc1 ~node:0 () in
  let bump_under_sem _i () =
    Semaphore.acquire sem;
    Cthread.work 5_000;
    Spin.lock counter_mu;
    Ops.write counter (Ops.read counter + 1);
    Spin.unlock counter_mu;
    Semaphore.release sem
  in
  let ts =
    List.init 4 (fun i ->
        Cthread.fork ~name:(Printf.sprintf "sem%d" i) ~proc:(1 + (i mod 3))
          (bump_under_sem i))
  in
  Cthread.join_all ts

let csweep_spec kind =
  {
    Workloads.Csweep.default with
    Workloads.Csweep.processors = 4;
    threads_per_proc = 2;
    iterations = 8;
    cs_ns = 12_000;
    lock_kind = kind;
  }

let phased_spec =
  {
    Workloads.Phased.default with
    Workloads.Phased.processors = 4;
    workers = 6;
    phases =
      [
        { Workloads.Phased.active_threads = 1; cs_ns = 5_000; entries = 30 };
        { Workloads.Phased.active_threads = 6; cs_ns = 200_000; entries = 6 };
        { Workloads.Phased.active_threads = 1; cs_ns = 5_000; entries = 30 };
      ];
  }

let client_server_spec sched handoff_to_server =
  {
    Workloads.Client_server.default with
    Workloads.Client_server.processors = 4;
    clients = 4;
    requests_per_client = 5;
    sched;
    handoff_to_server;
  }

let tsp_spec impl lock_kind =
  ( impl,
    {
      Tsp.Parallel.default_spec with
      Tsp.Parallel.cities = 8;
      searchers = 3;
      instance_kind = Tsp.Parallel.Uniform 100;
      lock_kind;
    } )

let shipped () =
  let csweep name kind =
    {
      scenario_name = "csweep-" ^ name;
      config = config 4;
      program = Workloads.Csweep.scenario (csweep_spec kind);
      expect = Clean;
    }
  in
  let client_server name sched handoff =
    {
      scenario_name = "client-server-" ^ name;
      config = config 4 ~seed:23;
      program = Workloads.Client_server.scenario (client_server_spec sched handoff);
      expect = Clean;
    }
  in
  let tsp name impl kind =
    let impl, spec = tsp_spec impl kind in
    {
      scenario_name = "tsp-" ^ name;
      config = config (spec.Tsp.Parallel.searchers + 1) ~seed:spec.Tsp.Parallel.machine_seed;
      program = Tsp.Parallel.scenario ~impl spec;
      expect = Clean;
    }
  in
  [
    { scenario_name = "primitives"; config = config 4; program = primitives; expect = Clean };
    csweep "spin" Locks.Lock.Spin;
    csweep "blocking" Locks.Lock.Blocking;
    csweep "combined10" (Locks.Lock.Combined 10);
    csweep "adaptive" Locks.Lock.adaptive_default;
    {
      scenario_name = "phased-adaptive";
      config = config 4 ~seed:31;
      program = Workloads.Phased.scenario phased_spec;
      expect = Clean;
    };
    client_server "fcfs" Locks.Lock_sched.Fcfs false;
    client_server "priority" Locks.Lock_sched.Priority false;
    client_server "handoff" Locks.Lock_sched.Handoff true;
    tsp "centralized" Tsp.Parallel.Centralized Locks.Lock.Blocking;
    tsp "distributed" Tsp.Parallel.Distributed Locks.Lock.Blocking;
    tsp "balanced" Tsp.Parallel.Balanced Tsp.Parallel.tsp_adaptive_kind;
  ]

let buggy () =
  let scenario name program expect =
    {
      scenario_name = "buggy-" ^ name;
      config = config Workloads.Buggy.processors;
      program;
      expect = Flags expect;
    }
  in
  [
    scenario "racy-counter" Workloads.Buggy.racy_counter [ "data-race" ];
    scenario "lock-order" Workloads.Buggy.lock_order_inversion [ "lock-order-cycle" ];
    scenario "deadlock" Workloads.Buggy.true_deadlock [ "lock-order-cycle"; "deadlock" ];
    scenario "double-unlock" Workloads.Buggy.double_unlock [ "unlock-not-held" ];
    scenario "exit-holding" Workloads.Buggy.exit_while_holding [ "lock-held-at-exit" ];
    scenario "sleep-with-spin-lock" Workloads.Buggy.sleep_with_spin_lock
      [ "block-holding-spin-lock" ];
  ]

let all () = shipped () @ buggy ()

let check s = Analysis.check s.config s.program

let verdict s report =
  match s.expect with
  | Clean ->
    if Analysis.clean report then Ok ()
    else
      Error
        (Printf.sprintf "expected a clean report, got: %s" (Analysis.summary report))
  | Flags rules ->
    let seen = List.map (fun d -> d.Analysis.Diag.rule) report.Analysis.diags in
    let missing = List.filter (fun r -> not (List.mem r seen)) rules in
    if missing = [] then Ok ()
    else
      Error
        (Printf.sprintf "expected rule(s) %s, got: %s"
           (String.concat ", " missing)
           (Analysis.summary report))
