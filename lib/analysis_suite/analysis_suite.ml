open Butterfly
open Cthreads

type expect = Clean | Flags of string list

type scenario = {
  scenario_name : string;
  config : Config.t;
  program : unit -> unit;
  expect : expect;
  predicts : string list;
}

let config ?(seed = 11) processors =
  { Config.default with Config.processors; seed }

(* A correct program exercising every Cthreads primitive, with shared
   data protected three different ways: a condition-guarded slot
   (lockset), a barrier-separated array (pure happens-before — this is
   the scenario that breaks if any vector-clock edge goes missing) and
   a semaphore-limited section over a mutex-guarded counter. *)
let primitives () =
  (* producer/consumer through one slot *)
  let mu = Spin.create ~node:0 () in
  let slot_full = Condition.create ~node:0 () in
  let slot_empty = Condition.create ~node:0 () in
  let slot = Ops.alloc1 ~node:0 () in
  let producer =
    Cthread.fork ~name:"producer" ~proc:1 (fun () ->
        for v = 1 to 6 do
          Cthread.work 8_000;
          Spin.lock mu;
          while Ops.read slot <> 0 do
            Condition.wait slot_empty mu
          done;
          Ops.write slot v;
          Condition.signal slot_full;
          Spin.unlock mu
        done)
  in
  let consumer =
    Cthread.fork ~name:"consumer" ~proc:2 (fun () ->
        for _ = 1 to 6 do
          Spin.lock mu;
          while Ops.read slot = 0 do
            Condition.wait slot_full mu
          done;
          Ops.write slot 0;
          Condition.signal slot_empty;
          Spin.unlock mu
        done)
  in
  Cthread.join_all [ producer; consumer ];
  (* barrier-separated neighbour exchange *)
  let n = 3 in
  let cells = Ops.alloc ~node:0 n in
  let barrier = Barrier.create ~node:0 n in
  let sum = ref 0 in
  let exchanger i () =
    Ops.write cells.(i) (100 + i);
    Barrier.await barrier;
    sum := !sum + Ops.read cells.((i + 1) mod n)
  in
  let ts =
    List.init n (fun i ->
        Cthread.fork ~name:(Printf.sprintf "cell%d" i) ~proc:(1 + i) (exchanger i))
  in
  Cthread.join_all ts;
  (* semaphore-limited critical work *)
  let sem = Semaphore.create ~node:0 2 in
  let counter_mu = Spin.create ~node:0 () in
  let counter = Ops.alloc1 ~node:0 () in
  let bump_under_sem _i () =
    Semaphore.acquire sem;
    Cthread.work 5_000;
    Spin.lock counter_mu;
    Ops.write counter (Ops.read counter + 1);
    Spin.unlock counter_mu;
    Semaphore.release sem
  in
  let ts =
    List.init 4 (fun i ->
        Cthread.fork ~name:(Printf.sprintf "sem%d" i) ~proc:(1 + (i mod 3))
          (bump_under_sem i))
  in
  Cthread.join_all ts

(* The switch lock, shipped shape: the implementation ladder under a
   contention ramp (tas -> mcs under queue pressure, back to tas when
   it drains), then a sleeper kicked awake and migrated across an
   explicit blocking -> mcs swap — the quiescence protocol's own
   negative control for the swap-window predictor, which must stay
   silent on every window this program opens. *)
let switch_lock_program () =
  let module SL = Locks.Switch_lock in
  let lk = SL.create ~name:"switch-adaptive" ~home:0 () in
  let worker i =
    Cthread.fork ~name:(Printf.sprintf "sw%d" i) ~proc:(1 + (i mod 3)) (fun () ->
        for _ = 1 to 8 do
          SL.lock lk;
          Cthread.work 18_000;
          SL.unlock lk;
          Cthread.delay 3_000
        done)
  in
  Cthread.join_all (List.init 5 worker);
  for _ = 1 to 6 do
    SL.lock lk;
    Cthread.work 2_000;
    SL.unlock lk;
    Cthread.delay 5_000
  done;
  (* a sleeper kicked awake and migrated across a live swap window *)
  let mg = SL.create ~name:"switch-migrate" ~initial:SL.Blocking ~home:1 () in
  let swapper =
    Cthread.fork ~name:"swapper" ~proc:1 (fun () ->
        SL.lock mg;
        let rec settle n =
          if n > 0 && SL.waiting_now mg < 1 then begin
            Cthread.delay 20_000;
            settle (n - 1)
          end
        in
        settle 200;
        Cthread.delay 150_000;
        ignore (SL.swap_to mg SL.Mcs);
        Cthread.work 30_000;
        SL.unlock mg)
  in
  let sleeper =
    Cthread.fork ~name:"sleeper" ~proc:2 (fun () ->
        SL.lock mg;
        Cthread.work 10_000;
        SL.unlock mg)
  in
  Cthread.join swapper;
  Cthread.join sleeper

let csweep_spec kind =
  {
    Workloads.Csweep.default with
    Workloads.Csweep.processors = 4;
    threads_per_proc = 2;
    iterations = 8;
    cs_ns = 12_000;
    lock_kind = kind;
  }

let phased_spec =
  {
    Workloads.Phased.default with
    Workloads.Phased.processors = 4;
    workers = 6;
    phases =
      [
        { Workloads.Phased.active_threads = 1; cs_ns = 5_000; entries = 30 };
        { Workloads.Phased.active_threads = 6; cs_ns = 200_000; entries = 6 };
        { Workloads.Phased.active_threads = 1; cs_ns = 5_000; entries = 30 };
      ];
  }

(* Small enough to trace and chaos-sweep, big enough that every
   adaptive-object family still reconfigures at least once. *)
let sync_objects_spec =
  {
    Workloads.Sync_objects.default with
    Workloads.Sync_objects.processors = 6;
    workers = 4;
    rounds = 6;
    items_each = 2;
  }

let client_server_spec sched handoff_to_server =
  {
    Workloads.Client_server.default with
    Workloads.Client_server.processors = 4;
    clients = 4;
    requests_per_client = 5;
    sched;
    handoff_to_server;
  }

let tsp_spec impl lock_kind =
  ( impl,
    {
      Tsp.Parallel.default_spec with
      Tsp.Parallel.cities = 8;
      searchers = 3;
      instance_kind = Tsp.Parallel.Uniform 100;
      lock_kind;
    } )

let shipped () =
  let csweep name kind =
    {
      scenario_name = "csweep-" ^ name;
      config = config 4;
      program = Workloads.Csweep.scenario (csweep_spec kind);
      expect = Clean;
      predicts = [];
    }
  in
  let client_server name sched handoff =
    {
      scenario_name = "client-server-" ^ name;
      config = config 4 ~seed:23;
      program = Workloads.Client_server.scenario (client_server_spec sched handoff);
      expect = Clean;
      predicts = [];
    }
  in
  let tsp name impl kind =
    let impl, spec = tsp_spec impl kind in
    {
      scenario_name = "tsp-" ^ name;
      config = config (spec.Tsp.Parallel.searchers + 1) ~seed:spec.Tsp.Parallel.machine_seed;
      program = Tsp.Parallel.scenario ~impl spec;
      expect = Clean;
      predicts = [];
    }
  in
  [
    {
      scenario_name = "primitives";
      config = config 4;
      program = primitives;
      expect = Clean;
      predicts = [];
    };
    csweep "spin" Locks.Lock.Spin;
    csweep "blocking" Locks.Lock.Blocking;
    csweep "combined10" (Locks.Lock.Combined 10);
    csweep "adaptive" Locks.Lock.adaptive_default;
    {
      scenario_name = "phased-adaptive";
      config = config 4 ~seed:31;
      program = Workloads.Phased.scenario phased_spec;
      expect = Clean;
      predicts = [];
    };
    {
      scenario_name = "sync-objects";
      config = config 6 ~seed:47;
      program = Workloads.Sync_objects.scenario sync_objects_spec;
      expect = Clean;
      predicts = [];
    };
    {
      scenario_name = "switch-lock";
      config = config 4 ~seed:53;
      program = switch_lock_program;
      expect = Clean;
      predicts = [];
    };
    client_server "fcfs" Locks.Lock_sched.Fcfs false;
    client_server "priority" Locks.Lock_sched.Priority false;
    client_server "handoff" Locks.Lock_sched.Handoff true;
    tsp "centralized" Tsp.Parallel.Centralized Locks.Lock.Blocking;
    tsp "distributed" Tsp.Parallel.Distributed Locks.Lock.Blocking;
    tsp "balanced" Tsp.Parallel.Balanced Tsp.Parallel.tsp_adaptive_kind;
  ]

let buggy () =
  let scenario ?(predicts = []) name program expect =
    {
      scenario_name = "buggy-" ^ name;
      config = config Workloads.Buggy.processors;
      program;
      expect = Flags expect;
      predicts;
    }
  in
  [
    (* racy-counter and deadlock carry their bug on the observed trace
       too, so the predictor re-finding it is a true positive. *)
    scenario "racy-counter" ~predicts:[ "predicted-race" ] Workloads.Buggy.racy_counter
      [ "data-race" ];
    scenario "lock-order" Workloads.Buggy.lock_order_inversion [ "lock-order-cycle" ];
    scenario "deadlock" ~predicts:[ "predicted-deadlock" ] Workloads.Buggy.true_deadlock
      [ "lock-order-cycle"; "deadlock" ];
    scenario "double-unlock" Workloads.Buggy.double_unlock [ "unlock-not-held" ];
    scenario "exit-holding" Workloads.Buggy.exit_while_holding [ "lock-held-at-exit" ];
    scenario "sleep-with-spin-lock" Workloads.Buggy.sleep_with_spin_lock
      [ "block-holding-spin-lock" ];
  ]

(* Seeded bugs only a reordering manifests: the observed-trace
   sanitizers must stay quiet (or, for the lock-order pair, report
   only the potential), the predictor must name the bug, and witness
   replay must confirm it. [gated-order] is the negative control:
   its observed-trace cycle is the classic false positive, and the
   predictor must report nothing at all. *)
let predict_only () =
  let scenario ?(expect = Clean) name program predicts =
    {
      scenario_name = "predicted-" ^ name;
      config = config Workloads.Buggy.processors;
      program;
      expect;
      predicts;
    }
  in
  [
    scenario "hidden-race" Workloads.Buggy.hidden_race [ "predicted-race" ];
    scenario "stale-hint" Workloads.Buggy.stale_hint_race [ "predicted-race" ];
    scenario "latent-deadlock"
      ~expect:(Flags [ "lock-order-cycle" ])
      Workloads.Buggy.latent_deadlock [ "predicted-deadlock" ];
    scenario "lost-wakeup" Workloads.Buggy.lost_wakeup [ "predicted-lost-wakeup" ];
    scenario "gated-order"
      ~expect:(Flags [ "lock-order-cycle" ])
      Workloads.Buggy.gated_order [];
    (* The swap-window pair carries its bug on the observed schedule
       (a wedged join / a crashed unlock); the swap-window rules must
       name the protocol violation and witness replay must confirm. *)
    scenario "swap-lost-waiter"
      ~expect:(Flags [ "deadlock" ])
      Workloads.Buggy.swap_lost_waiter [ "predicted-swap-lost-waiter" ];
    scenario "swap-double-grant"
      ~expect:(Flags [ "unlock-not-held" ])
      Workloads.Buggy.swap_double_grant [ "predicted-swap-double-grant" ];
  ]

let all () = shipped () @ buggy () @ predict_only ()

(* -- seeded-bad policy specs: positive controls for the static policy
   checker. Pure data, no simulation; each triggers a specific finding
   kind while every shipped spec checks clean. -- *)

let policy_fixtures () =
  let module Spec = Adaptive_core.Policy.Spec in
  let cost = Adaptive_core.Cost.reads_writes 1 1 in
  let trans ?(repeats = 1) t_from cond t_target t_label =
    {
      Spec.t_from;
      t_cond = cond;
      t_target;
      t_label;
      t_repeats = repeats;
      t_cost = cost;
    }
  in
  let base name ~metric ~monotone ~configs ~initial ~transitions =
    {
      Spec.s_name = name;
      s_kind = "fixture";
      s_attribute = name ^ ".attr";
      s_metric = metric;
      s_monotone = monotone;
      s_configs = List.map (fun (n, v) -> { Spec.c_name = n; c_value = v }) configs;
      s_initial = initial;
      s_transitions = transitions;
      s_guard = None;
    }
  in
  (* A barrier whose spin-more threshold sits above its spin-less one:
     any spread in the overlap band enables both directions and the
     budget ladder cycles at its top forever. *)
  let thrasher =
    Cthreads.Adaptive_barrier.policy_spec ~name:"fixture-thrashing-barrier"
      ~spin_if_under:2_000_000 ~block_if_over:1_000_000 ()
  in
  (* A mode the transition system can never enter. *)
  let dead =
    base "fixture-dead-config" ~metric:"queue-depth" ~monotone:Spec.Up_at_high
      ~configs:[ ("idle", 0); ("busy", 1); ("turbo", 2) ]
      ~initial:0
      ~transitions:
        [
          trans 0 (Spec.cond 1) 1 "busy";
          trans 1 (Spec.cond 0 ~hi:0) 0 "idle";
        ]
  in
  (* Up/down thresholds plugged in backwards for the declared
     up-at-low-metric polarity. *)
  let inverted =
    base "fixture-inverted-thresholds" ~metric:"wait-ns" ~monotone:Spec.Up_at_low
      ~configs:[ ("block", 0); ("spin", 1) ]
      ~initial:0
      ~transitions:
        [
          trans 0 (Spec.cond 10) 1 "spin";
          trans 1 (Spec.cond 0 ~hi:5) 0 "block";
        ]
  in
  (* A hysteretic transition fully shadowed by a higher-priority one:
     its counter can never advance, and its target mode dies with it. *)
  let shadowed =
    base "fixture-shadowed-hysteresis" ~metric:"misses" ~monotone:Spec.Unordered
      ~configs:[ ("small", 0); ("medium", 1); ("large", 2) ]
      ~initial:0
      ~transitions:
        [
          trans 0 (Spec.cond 1) 1 "medium";
          trans ~repeats:4 0 (Spec.cond 3 ~hi:8) 2 "large";
          trans 1 (Spec.cond 0 ~hi:0) 0 "small";
        ]
  in
  (* A guard whose metric clamp cuts off the only transition: the
     policy can never fire and one fallback parks it for good. *)
  let clamped_out =
    {
      (base "fixture-clamped-out" ~metric:"backlog" ~monotone:Spec.Up_at_high
         ~configs:[ ("calm", 0); ("boost", 1) ]
         ~initial:0
         ~transitions:[ trans 0 (Spec.cond 20) 1 "boost" ])
      with
      Spec.s_guard =
        Some
          {
            Spec.g_clamp_lo = 0;
            g_clamp_hi = 10;
            g_wedge = None;
            g_limit = 4;
            g_cooldown = 8;
            g_fallback = 0;
            g_fallback_label = "fallback";
            g_fallback_cost = cost;
          };
    }
  in
  (* Two well-formed specs co-writing one attribute with opposite
     reactions: each is stable alone, together they pass the attribute
     back and forth while neither metric moves. *)
  let ping =
    {
      (base "fixture-ping" ~metric:"queue-depth" ~monotone:Spec.Up_at_high
         ~configs:[ ("off", 0); ("on", 1) ]
         ~initial:0
         ~transitions:[ trans 0 (Spec.cond 5) 1 "on" ])
      with
      Spec.s_attribute = "fixture.shared-mode";
    }
  in
  let pong =
    {
      (base "fixture-pong" ~metric:"idle-ns" ~monotone:Spec.Up_at_low
         ~configs:[ ("off", 0); ("on", 1) ]
         ~initial:1
         ~transitions:[ trans 1 (Spec.cond 3) 0 "off" ])
      with
      Spec.s_attribute = "fixture.shared-mode";
    }
  in
  (* The real switch-lock implementation ladder with a guardrail clamp
     sized one short of the blocking region: blocking stays declared
     but the clamped metric can never reach the [>= 100] band that
     earns it. *)
  let impl_clamped =
    Locks.Switch_lock.policy_spec
      ~guardrail:
        { Locks.Guardrail.default_params with Locks.Guardrail.clamp_max = 99 }
      ~name:"fixture-clamped-out-impl" ()
  in
  (* The same ladder with its per-transition hysteresis stripped: every
     swap fires on a single enabling sample, so any metric blip opens a
     full quiescence window. *)
  let impl_trigger_happy =
    Locks.Switch_lock.policy_spec
      ~params:{ Locks.Switch_lock.default_params with Locks.Switch_lock.repeats = 1 }
      ~name:"fixture-swap-no-hysteresis" ()
  in
  [
    ("thrashing-barrier", [ thrasher ], [ "thrash-cycle" ]);
    ("dead-config", [ dead ], [ "dead-config" ]);
    ("inverted-thresholds", [ inverted ], [ "threshold-inverted" ]);
    ("shadowed-hysteresis", [ shadowed ], [ "hysteresis-dead"; "dead-config" ]);
    ("clamped-out-guard", [ clamped_out ], [ "guardrail-gap" ]);
    ("conflicting-pair", [ ping; pong ], [ "cross-object-conflict" ]);
    ("clamped-out-impl", [ impl_clamped ], [ "impl-clamped-out" ]);
    ("swap-no-hysteresis", [ impl_trigger_happy ], [ "swap-no-hysteresis" ]);
  ]

(* -- seeded-bad protocol models: positive controls for the protocol
   model checker, plus the lowering of their counterexamples into the
   simulator via the existing swap-window workloads. -- *)

let proto_fixtures () = Locks.Proto_models.seeded_bad ()

let proto_lowerings () =
  (* Two of the four seeded protocol bugs have a simulator workload
     that manifests the same violation, so their model counterexamples
     lower to replayable witness schedules: run the workload under the
     predictive pass with confirmation on and record the witness. The
     stolen-freeze and no-age-out fixtures stay model-only — their
     bugs live in code paths the seeded workloads cannot reach without
     reintroducing the bug itself. *)
  let lower l_fixture l_scenario program l_rule =
    let p =
      Analysis.check_predictive ~confirm:true
        (config Workloads.Buggy.processors)
        program
    in
    match
      List.find_opt (fun c -> c.Analysis.rule = l_rule) (Analysis.confirmed p)
    with
    | Some { Analysis.witness = Some w; _ } ->
      {
        Analysis.Proto_check.l_fixture;
        l_scenario;
        l_rule;
        l_confirmed = w.Analysis.Witness.w_status = Analysis.Witness.Confirmed;
        l_replay_ok = w.Analysis.Witness.w_replay_ok;
        l_schedule_len = List.length w.Analysis.Witness.w_schedule;
      }
    | _ ->
      {
        Analysis.Proto_check.l_fixture;
        l_scenario;
        l_rule;
        l_confirmed = false;
        l_replay_ok = false;
        l_schedule_len = 0;
      }
  in
  [
    lower "lost-sleeper-on-swap" "predicted-swap-lost-waiter"
      Workloads.Buggy.swap_lost_waiter "predicted-swap-lost-waiter";
    lower "double-grant-on-swap" "predicted-swap-double-grant"
      Workloads.Buggy.swap_double_grant "predicted-swap-double-grant";
  ]

let check s = Analysis.check s.config s.program

let verdict s report =
  match s.expect with
  | Clean ->
    if Analysis.clean report then Ok ()
    else
      Error
        (Printf.sprintf "expected a clean report, got: %s" (Analysis.summary report))
  | Flags rules ->
    let seen = List.map (fun d -> d.Analysis.Diag.rule) report.Analysis.diags in
    let missing = List.filter (fun r -> not (List.mem r seen)) rules in
    if missing = [] then Ok ()
    else
      Error
        (Printf.sprintf "expected rule(s) %s, got: %s"
           (String.concat ", " missing)
           (Analysis.summary report))

(* {2 The suite runner behind [repro analyze]} *)

type prediction_outcome = {
  p_rule : string;
  p_description : string;
  p_status : string option;
  p_schedule : int list;
}

type result = {
  r_name : string;
  r_summary : string;
  r_diags : string list;
  r_predictions : prediction_outcome list;
  r_failures : string list;
}

let passed r = r.r_failures = []

let prediction_outcome (p : Analysis.predicted) =
  {
    p_rule = p.Analysis.rule;
    p_description = p.Analysis.description;
    p_status =
      Option.map
        (fun w -> Analysis.Witness.status_name w.Analysis.Witness.w_status)
        p.Analysis.witness;
    p_schedule =
      (match p.Analysis.witness with
      | Some w when w.Analysis.Witness.w_status = Analysis.Witness.Confirmed ->
        w.Analysis.Witness.w_schedule
      | _ -> []);
  }

let run_scenario ?(predict = false) ?(confirm = false) s =
  let report, predictions =
    if predict || confirm then begin
      let pv = Analysis.check_predictive ~confirm s.config s.program in
      (pv.Analysis.observed, pv.Analysis.predictions)
    end
    else (check s, [])
  in
  let observed_failure =
    match verdict s report with Ok () -> [] | Error e -> [ e ]
  in
  let predicted_rules = List.map (fun p -> p.Analysis.rule) predictions in
  let missing_predictions =
    if predict || confirm then
      List.filter_map
        (fun rule ->
          if List.mem rule predicted_rules then None
          else Some (Printf.sprintf "expected prediction %s never made" rule))
        s.predicts
    else []
  in
  let confirmation_failures =
    if confirm then
      (* every promised prediction must survive witness replay... *)
      List.filter_map
        (fun rule ->
          let confirmed =
            List.exists
              (fun (p : Analysis.predicted) ->
                p.Analysis.rule = rule
                &&
                match p.Analysis.witness with
                | Some w -> w.Analysis.Witness.w_status = Analysis.Witness.Confirmed
                | None -> false)
              predictions
          in
          if confirmed then None
          else Some (Printf.sprintf "prediction %s was not confirmed" rule))
        s.predicts
      (* ...and nothing beyond the promises may confirm: a Confirmed
         finding on a scenario that doesn't declare it is a false
         positive by definition, the thing witness replay exists to
         rule out. *)
      @ List.filter_map
          (fun (p : Analysis.predicted) ->
            match p.Analysis.witness with
            | Some w
              when w.Analysis.Witness.w_status = Analysis.Witness.Confirmed
                   && not (List.mem p.Analysis.rule s.predicts) ->
              Some
                (Printf.sprintf "unexpected confirmed prediction: %s"
                   p.Analysis.description)
            | _ -> None)
          predictions
    else []
  in
  {
    r_name = s.scenario_name;
    r_summary = Analysis.summary report;
    r_diags = List.map Analysis.Diag.to_string report.Analysis.diags;
    r_predictions = List.map prediction_outcome predictions;
    r_failures = observed_failure @ missing_predictions @ confirmation_failures;
  }

let run_all ?domains ?(predict = false) ?(confirm = false) scenarios =
  Engine.Runner.map ?domains (fun s -> run_scenario ~predict ~confirm s) scenarios

(* -- JSON rendering, hand-rolled like Chaos.to_json: deterministic
   bytes, no host state -- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string_list l =
  "["
  ^ String.concat ", " (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) l)
  ^ "]"

let json_int_list l = "[" ^ String.concat ", " (List.map string_of_int l) ^ "]"

let prediction_json p =
  Printf.sprintf
    "{ \"rule\": \"%s\", \"status\": %s, \"description\": \"%s\", \
     \"replay_schedule\": %s }"
    (json_escape p.p_rule)
    (match p.p_status with
    | None -> "null"
    | Some s -> Printf.sprintf "\"%s\"" (json_escape s))
    (json_escape p.p_description)
    (json_int_list p.p_schedule)

let result_json r =
  String.concat ",\n"
    [
      Printf.sprintf "      \"scenario\": \"%s\"" (json_escape r.r_name);
      Printf.sprintf "      \"summary\": \"%s\"" (json_escape r.r_summary);
      Printf.sprintf "      \"diagnostics\": %s" (json_string_list r.r_diags);
      Printf.sprintf "      \"predictions\": [%s]"
        (String.concat ", " (List.map prediction_json r.r_predictions));
      Printf.sprintf "      \"failures\": %s" (json_string_list r.r_failures);
    ]

let to_json results =
  let failures = List.filter (fun r -> not (passed r)) results in
  let confirmed =
    List.concat_map
      (fun r ->
        List.filter (fun p -> p.p_status = Some "confirmed") r.r_predictions)
      results
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"scenarios\": %d,\n" (List.length results));
  Buffer.add_string buf
    (Printf.sprintf "  \"predictions\": %d,\n"
       (List.fold_left (fun n r -> n + List.length r.r_predictions) 0 results));
  Buffer.add_string buf
    (Printf.sprintf "  \"confirmed\": %d,\n" (List.length confirmed));
  Buffer.add_string buf
    (Printf.sprintf "  \"failures\": %d,\n" (List.length failures));
  Buffer.add_string buf "  \"results\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map (fun r -> "    {\n" ^ result_json r ^ "\n    }") results));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
