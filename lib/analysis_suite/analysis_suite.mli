(** The scenario catalog behind [repro analyze] and the regression
    tests: every shipped example/experiment workload (expected to
    analyze clean) plus the seeded-buggy workloads (expected to be
    flagged with specific rules). *)

open Butterfly

type expect =
  | Clean  (** the sanitizers must report nothing *)
  | Flags of string list  (** each rule name must appear among the diagnostics *)

type scenario = {
  scenario_name : string;
  config : Config.t;
  program : unit -> unit;
  expect : expect;
}

val shipped : unit -> scenario list
val buggy : unit -> scenario list
val all : unit -> scenario list

val check : scenario -> Analysis.report
(** Run the scenario under {!Analysis.check}. *)

val verdict : scenario -> Analysis.report -> (unit, string) result
(** Whether the report matches the scenario's expectation. *)
