(** The scenario catalog behind [repro analyze] and the regression
    tests: every shipped example/experiment workload (expected to
    analyze clean), the seeded-buggy workloads (expected to be flagged
    with specific rules) and the prediction-only workloads (clean on
    the observed trace, but with a declared bug the predictive pass
    must find and confirm). *)

open Butterfly

type expect =
  | Clean  (** the sanitizers must report nothing *)
  | Flags of string list  (** each rule name must appear among the diagnostics *)

type scenario = {
  scenario_name : string;
  config : Config.t;
  program : unit -> unit;
  expect : expect;  (** verdict on the observed trace *)
  predicts : string list;
      (** predictive rules that must be reported when the predictor
          runs (and confirmed when witness replay runs). Scenarios
          with an empty list promise the opposite: any {e confirmed}
          prediction on them is a false positive and fails the
          verdict. *)
}

val shipped : unit -> scenario list
val buggy : unit -> scenario list

val predict_only : unit -> scenario list
(** Seeded bugs only a reordering manifests: the observed-trace
    sanitizers miss them by construction, the predictor names them,
    witness replay confirms them. Includes the gated-order negative
    control (observed false-positive cycle, zero predictions). *)

val all : unit -> scenario list

val policy_fixtures :
  unit -> (string * Adaptive_core.Policy.Spec.t list * string list) list
(** Seeded-bad adaptation-policy specs for the static policy checker
    ([repro check-policies]): (fixture name, specs — one, or a pair
    for conflict fixtures — and the finding kinds
    {!Analysis.Policy_check} must report). Every shipped spec checks
    clean; these are the checker's positive controls. *)

val proto_fixtures :
  unit ->
  (string
  * (Adaptive_core.Protocol.t * Adaptive_core.Protocol.property list)
  * string list)
  list
(** Seeded-bad protocol models for [repro check-protocols]:
    {!Locks.Proto_models.seeded_bad} — (fixture name, model, property
    names {!Analysis.Proto_check} must report violated). *)

val proto_lowerings : unit -> Analysis.Proto_check.lowering list
(** Lower the model counterexamples that have a matching simulator
    workload ([swap_lost_waiter], [swap_double_grant]) to replayable
    witness schedules: each runs under the predictive pass with
    confirmation and must arrive Confirmed with a bit-for-bit replay. *)

val check : scenario -> Analysis.report
(** Run the scenario under {!Analysis.check}. *)

val verdict : scenario -> Analysis.report -> (unit, string) result
(** Whether the report matches the scenario's observed expectation. *)

(** {1 The suite runner behind [repro analyze]} *)

type prediction_outcome = {
  p_rule : string;
  p_description : string;
  p_status : string option;
      (** ["confirmed"] / ["unconfirmed"] when witness replay ran,
          [None] in predict-only mode *)
  p_schedule : int list;
      (** the confirming replay decision list (empty unless confirmed) *)
}

type result = {
  r_name : string;
  r_summary : string;
  r_diags : string list;
  r_predictions : prediction_outcome list;
  r_failures : string list;  (** empty iff the scenario met every expectation *)
}

val passed : result -> bool

val run_scenario : ?predict:bool -> ?confirm:bool -> scenario -> result
(** Run one scenario and judge it. With [~predict] the causality
    predictor runs and every rule in [predicts] must be reported; with
    [~confirm] witness replay additionally runs, every promised rule
    must be {e confirmed}, and any confirmed prediction outside
    [predicts] is a failure. *)

val run_all :
  ?domains:int -> ?predict:bool -> ?confirm:bool -> scenario list -> result list
(** {!run_scenario} over the list via {!Engine.Runner.map}
    (domain-parallel, input order preserved). *)

val to_json : result list -> string
(** Deterministic machine-readable rendering of the results —
    the payload of [ANALYSIS_results.json]. *)
