module Sched = Butterfly.Sched
module Memory = Butterfly.Memory

type pending_delay = {
  delay_from_ns : int;
  delay_lock : string;
  delay_ns : int;
  mutable delivered : bool;
}

(* A fault armed on the next swap-begin annotation of a matching
   adaptive object: [sw_ns = None] kills the swapper, [Some ns] stalls
   it mid-swap. *)
type pending_swap = {
  sw_from_ns : int;
  sw_obj : string;
  sw_ns : int option;
  mutable sw_delivered : bool;
}

type t = {
  sched : Sched.t;
  mutable log_rev : string list;
  delays : pending_delay list;
  swaps : pending_swap list;
}

let log t fmt = Printf.ksprintf (fun s -> t.log_rev <- s :: t.log_rev) fmt

let arm_timer t { Fault_plan.at_ns; fault } =
  let nodes = (Sched.config t.sched).Butterfly.Config.processors in
  match fault with
  | Fault_plan.Mem_degrade { node; factor; until_ns } ->
    Sched.add_timer t.sched ~at:at_ns (fun () ->
        if node < 0 || node >= nodes || factor < 1 then
          log t "t=%d mem-degrade node=%d (skipped: invalid)" at_ns node
        else begin
          Memory.set_degrade_factor (Sched.memory t.sched) ~node factor;
          log t "t=%d mem-degrade node=%d factor=%d until=%d" at_ns node factor until_ns;
          if until_ns > at_ns then
            Sched.add_timer t.sched ~at:until_ns (fun () ->
                Memory.set_degrade_factor (Sched.memory t.sched) ~node 1;
                log t "t=%d mem-degrade node=%d restored" until_ns node)
        end)
  | Fault_plan.Mem_stuck { node; until_ns } ->
    Sched.add_timer t.sched ~at:at_ns (fun () ->
        if node < 0 || node >= nodes then
          log t "t=%d mem-stuck node=%d (skipped: invalid)" at_ns node
        else begin
          Memory.stall_module (Sched.memory t.sched) ~node ~until_ns;
          log t "t=%d mem-stuck node=%d until=%d" at_ns node until_ns
        end)
  | Fault_plan.Proc_stall { proc; ns } ->
    Sched.add_timer t.sched ~at:at_ns (fun () ->
        if proc < 0 || proc >= nodes || ns < 0 then
          log t "t=%d proc-stall proc=%d (skipped: invalid)" at_ns proc
        else begin
          Sched.stall_processor t.sched ~proc ~ns;
          log t "t=%d proc-stall proc=%d ns=%d" at_ns proc ns
        end)
  | Fault_plan.Thread_kill { tid } ->
    Sched.add_timer t.sched ~at:at_ns (fun () ->
        if Sched.kill_thread t.sched ~tid ~at:at_ns then log t "t=%d kill tid=%d" at_ns tid
        else log t "t=%d kill tid=%d (no-op: unknown or finished)" at_ns tid)
  | Fault_plan.Lock_holder_delay _ | Fault_plan.Swap_stall _ | Fault_plan.Swap_kill _ ->
    (* handled by the annotation observer armed in [install] *)
    ()

let swap_begin label =
  String.length label >= 10 && String.sub label 0 10 = "swap-begin"

let install sched ~plan =
  let delays =
    List.filter_map
      (fun { Fault_plan.at_ns; fault } ->
        match fault with
        | Fault_plan.Lock_holder_delay { lock; ns } ->
          Some { delay_from_ns = at_ns; delay_lock = lock; delay_ns = ns; delivered = false }
        | _ -> None)
      plan
  in
  let swaps =
    List.filter_map
      (fun { Fault_plan.at_ns; fault } ->
        match fault with
        | Fault_plan.Swap_stall { obj; ns } ->
          Some { sw_from_ns = at_ns; sw_obj = obj; sw_ns = Some ns; sw_delivered = false }
        | Fault_plan.Swap_kill { obj } ->
          Some { sw_from_ns = at_ns; sw_obj = obj; sw_ns = None; sw_delivered = false }
        | _ -> None)
      plan
  in
  let t = { sched; log_rev = []; delays; swaps } in
  List.iter (arm_timer t) plan;
  if delays <> [] || swaps <> [] then
    Sched.add_annot_hook sched (fun a ->
        match a.Sched.annotation with
        | Butterfly.Ops.A_lock_acquire { lock_name; _ } ->
          List.iter
            (fun d ->
              if
                (not d.delivered)
                && a.Sched.annot_time >= d.delay_from_ns
                && (d.delay_lock = "*" || d.delay_lock = lock_name)
              then begin
                d.delivered <- true;
                if Sched.penalize_thread sched ~tid:a.Sched.annot_tid ~ns:d.delay_ns then
                  log t "t=%d holder-delay lock=%s tid=%d ns=%d" a.Sched.annot_time
                    lock_name a.Sched.annot_tid d.delay_ns
                else
                  log t "t=%d holder-delay lock=%s tid=%d (no-op: finished)"
                    a.Sched.annot_time lock_name a.Sched.annot_tid
              end)
            t.delays
        | Butterfly.Ops.A_adaptation { obj_name; kind = "lock-impl"; label }
          when swap_begin label ->
          List.iter
            (fun s ->
              if
                (not s.sw_delivered)
                && a.Sched.annot_time >= s.sw_from_ns
                && (s.sw_obj = "*" || s.sw_obj = obj_name)
              then begin
                s.sw_delivered <- true;
                match s.sw_ns with
                | Some ns ->
                  if Sched.penalize_thread sched ~tid:a.Sched.annot_tid ~ns then
                    log t "t=%d swap-stall obj=%s tid=%d ns=%d" a.Sched.annot_time
                      obj_name a.Sched.annot_tid ns
                  else
                    log t "t=%d swap-stall obj=%s tid=%d (no-op: finished)"
                      a.Sched.annot_time obj_name a.Sched.annot_tid
                | None ->
                  (* Defer by a timer at the annotation's own instant:
                     it fires before the swapper's next dispatch, so
                     the thread dies inside its swap window with the
                     freeze still set. *)
                  let tid = a.Sched.annot_tid and at = a.Sched.annot_time in
                  Sched.add_timer sched ~at (fun () ->
                      if Sched.kill_thread sched ~tid ~at then
                        log t "t=%d kill-in-swap obj=%s kill tid=%d" at obj_name tid
                      else
                        log t "t=%d kill-in-swap obj=%s kill tid=%d (no-op: finished)" at
                          obj_name tid)
              end)
            t.swaps
        | _ -> ());
  t

let applied t = List.rev t.log_rev
