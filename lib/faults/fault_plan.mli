(** Serializable, seeded fault plans.

    A plan is a list of faults pinned to virtual-time instants. Plans
    are pure data: building, printing or parsing one touches no
    machine. {!Injector.install} arms a plan on a {!Butterfly.Sched}
    instance; because every fault fires off the machine's own virtual
    clock, the same plan produces the same perturbed execution
    bit-for-bit, on any [--domains] count, on any host.

    Plans round-trip through a compact spec string (one fault per
    [';']-separated field, [kind@time:key=value,...]), so a failing
    chaos run can dump the exact plan that broke it and a later session
    can replay it:

    {v
    mem-degrade@40000:node=3,factor=8,until=900000;kill@250000:tid=4
    v} *)

type fault =
  | Mem_degrade of { node : int; factor : int; until_ns : int }
      (** Multiply module [node]'s service and wire latency by
          [factor] until [until_ns] (a slow, not dead, module). *)
  | Mem_stuck of { node : int; until_ns : int }
      (** Module [node] answers nothing before [until_ns]: every
          access queues behind the stuck window. *)
  | Proc_stall of { proc : int; ns : int }
      (** Processor [proc] goes offline for [ns] of virtual time. *)
  | Thread_kill of { tid : int }
      (** Crash thread [tid]: no cleanup, locks stay held, joiners are
          woken. A no-op if the tid is unknown or already finished. *)
  | Lock_holder_delay of { lock : string; ns : int }
      (** The next thread to acquire lock [lock] (["*"] matches any
          lock) after the fault time is stalled [ns] at its next
          dispatch — a delayed critical section. One-shot. *)
  | Swap_stall of { obj : string; ns : int }
      (** The next thread to open an implementation-swap window on
          adaptive object [obj] (["*"] matches any; matched against
          [A_adaptation] swap-begin annotations) after the fault time
          is stalled [ns] mid-swap — a drain that blows its deadline,
          or a freeze that ages into abandoned-swap recovery.
          One-shot. *)
  | Swap_kill of { obj : string }
      (** The next swapper on [obj] after the fault time is killed
          inside its swap window: the freeze is left behind for the
          waiters' recovery path. One-shot. *)

type event = { at_ns : int; fault : fault }

type t = event list
(** Sorted by [at_ns] (stable for equal times). *)

val fault_name : fault -> string

val to_string : t -> string
(** Compact spec string; [""] for the empty plan. *)

val of_string : string -> t
(** Parse a spec string (whitespace around fields is ignored). Raises
    [Failure] with a description on malformed input. Round-trips with
    {!to_string}. *)

val generate :
  ?swap_faults:bool -> seed:int -> cfg:Butterfly.Config.t -> horizon_ns:int -> unit -> t
(** A small random plan (1–3 faults) drawn from a {!Engine.Rng} stream
    seeded with [seed]: fault times land in
    [\[horizon_ns/10, horizon_ns\]], nodes and processors are drawn
    from [cfg.processors], kill targets from low tids, and
    holder-delays use the ["*"] wildcard. Equal seeds and configs give
    equal plans. [swap_faults] (default false, so plans from
    pre-existing seeds are unchanged) adds the swap-window kinds
    ({!Swap_stall}/{!Swap_kill}) to the draw. *)
