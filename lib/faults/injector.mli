(** Arms a {!Fault_plan} on a machine.

    Each fault becomes a host-side virtual-time timer
    ({!Butterfly.Sched.add_timer}); holder-delay faults additionally
    subscribe one annotation observer that watches for the matching
    lock acquisition. Everything fires off the machine's own virtual
    clock, so a (plan, config, program) triple perturbs the execution
    identically on every run and every [--domains] count.

    Installing the {e empty} plan arms nothing at all — no timers, no
    annotation subscriber — so a machine with an empty plan is
    bit-for-bit the unperturbed machine. *)

type t

val install : Butterfly.Sched.t -> plan:Fault_plan.t -> t
(** Must be called after {!Butterfly.Sched.create} and before
    {!Butterfly.Sched.run} (holder-delay faults need their annotation
    observer subscribed up front). *)

val applied : t -> string list
(** One deterministic line per fault that actually fired, in
    application order — e.g.
    ["t=40000 mem-degrade node=3 factor=8 until=900000"] or
    ["t=250000 kill tid=4 (no-op: unknown or finished)"]. Restores
    (degrade windows ending) are logged too. Valid during and after
    the run. *)
