type fault =
  | Mem_degrade of { node : int; factor : int; until_ns : int }
  | Mem_stuck of { node : int; until_ns : int }
  | Proc_stall of { proc : int; ns : int }
  | Thread_kill of { tid : int }
  | Lock_holder_delay of { lock : string; ns : int }
  | Swap_stall of { obj : string; ns : int }
      (* stall the swapper inside the next implementation-swap window
         of [obj] ("*" = any) at/after the event time *)
  | Swap_kill of { obj : string }
      (* kill the swapper inside its next swap window — the freeze is
         left behind for the abandoned-swap recovery to clean up *)

type event = { at_ns : int; fault : fault }
type t = event list

let fault_name = function
  | Mem_degrade _ -> "mem-degrade"
  | Mem_stuck _ -> "mem-stuck"
  | Proc_stall _ -> "proc-stall"
  | Thread_kill _ -> "kill"
  | Lock_holder_delay _ -> "holder-delay"
  | Swap_stall _ -> "swap-stall"
  | Swap_kill _ -> "kill-in-swap"

let event_to_string { at_ns; fault } =
  match fault with
  | Mem_degrade { node; factor; until_ns } ->
    Printf.sprintf "mem-degrade@%d:node=%d,factor=%d,until=%d" at_ns node factor until_ns
  | Mem_stuck { node; until_ns } ->
    Printf.sprintf "mem-stuck@%d:node=%d,until=%d" at_ns node until_ns
  | Proc_stall { proc; ns } -> Printf.sprintf "proc-stall@%d:proc=%d,ns=%d" at_ns proc ns
  | Thread_kill { tid } -> Printf.sprintf "kill@%d:tid=%d" at_ns tid
  | Lock_holder_delay { lock; ns } ->
    Printf.sprintf "holder-delay@%d:lock=%s,ns=%d" at_ns lock ns
  | Swap_stall { obj; ns } -> Printf.sprintf "swap-stall@%d:obj=%s,ns=%d" at_ns obj ns
  | Swap_kill { obj } -> Printf.sprintf "kill-in-swap@%d:obj=%s" at_ns obj

let to_string t = String.concat ";" (List.map event_to_string t)

let fail fmt = Printf.ksprintf failwith fmt

(* "k1=v1,k2=v2" -> assoc list, order preserved *)
let parse_args field s =
  String.split_on_char ',' s
  |> List.map (fun kv ->
         match String.index_opt kv '=' with
         | None -> fail "Fault_plan.of_string: %S: argument %S is not key=value" field kv
         | Some i ->
           (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1)))

let parse_event field =
  let kind, rest =
    match String.index_opt field '@' with
    | None -> fail "Fault_plan.of_string: %S: missing '@time'" field
    | Some i ->
      (String.sub field 0 i, String.sub field (i + 1) (String.length field - i - 1))
  in
  let at_str, args_str =
    match String.index_opt rest ':' with
    | None -> (rest, "")
    | Some i -> (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))
  in
  let at_ns =
    match int_of_string_opt at_str with
    | Some n when n >= 0 -> n
    | _ -> fail "Fault_plan.of_string: %S: bad time %S" field at_str
  in
  let args = if args_str = "" then [] else parse_args field args_str in
  let str key =
    match List.assoc_opt key args with
    | Some v -> v
    | None -> fail "Fault_plan.of_string: %S: missing argument %S" field key
  in
  let int key =
    match int_of_string_opt (str key) with
    | Some n -> n
    | None -> fail "Fault_plan.of_string: %S: argument %S is not an integer" field key
  in
  let fault =
    match kind with
    | "mem-degrade" ->
      Mem_degrade { node = int "node"; factor = int "factor"; until_ns = int "until" }
    | "mem-stuck" -> Mem_stuck { node = int "node"; until_ns = int "until" }
    | "proc-stall" -> Proc_stall { proc = int "proc"; ns = int "ns" }
    | "kill" -> Thread_kill { tid = int "tid" }
    | "holder-delay" -> Lock_holder_delay { lock = str "lock"; ns = int "ns" }
    | "swap-stall" -> Swap_stall { obj = str "obj"; ns = int "ns" }
    | "kill-in-swap" -> Swap_kill { obj = str "obj" }
    | k -> fail "Fault_plan.of_string: unknown fault kind %S" k
  in
  { at_ns; fault }

let sort t = List.stable_sort (fun a b -> compare a.at_ns b.at_ns) t

let of_string s =
  String.split_on_char ';' s
  |> List.map String.trim
  |> List.filter (fun f -> f <> "")
  |> List.map parse_event
  |> sort

let generate ?(swap_faults = false) ~seed ~cfg ~horizon_ns () =
  if horizon_ns <= 0 then invalid_arg "Fault_plan.generate: horizon_ns must be positive";
  let procs = cfg.Butterfly.Config.processors in
  let rng = Engine.Rng.create seed in
  let count = 1 + Engine.Rng.int rng 3 in
  let at () = Engine.Rng.int_in rng (horizon_ns / 10) horizon_ns in
  let window at = at + Engine.Rng.int_in rng (horizon_ns / 10) (horizon_ns / 2) in
  (* The swap-window kinds are drawn only when asked for: plans from
     pre-existing seeds must stay bit-for-bit identical. *)
  let kinds = if swap_faults then 7 else 5 in
  let events =
    List.init count (fun _ ->
        let at_ns = at () in
        let fault =
          match Engine.Rng.int rng kinds with
          | 0 ->
            Mem_degrade
              {
                node = Engine.Rng.int rng procs;
                factor = Engine.Rng.int_in rng 2 16;
                until_ns = window at_ns;
              }
          | 1 -> Mem_stuck { node = Engine.Rng.int rng procs; until_ns = window at_ns }
          | 2 ->
            Proc_stall
              {
                proc = Engine.Rng.int rng procs;
                ns = Engine.Rng.int_in rng (horizon_ns / 20) (horizon_ns / 4);
              }
          | 3 -> Thread_kill { tid = Engine.Rng.int_in rng 1 (max 2 (2 * procs)) }
          | 4 ->
            Lock_holder_delay
              { lock = "*"; ns = Engine.Rng.int_in rng (horizon_ns / 20) (horizon_ns / 4) }
          | 5 ->
            Swap_stall
              { obj = "*"; ns = Engine.Rng.int_in rng (horizon_ns / 20) (horizon_ns / 2) }
          | _ -> Swap_kill { obj = "*" }
        in
        { at_ns; fault })
  in
  sort events
