(* Flag handling shared by every repro subcommand, so --csv-dir,
   --domains, --only and --store cannot drift between commands (they
   used to: --only existed on the checkers but not on objects/chaos). *)

open Cmdliner

let csv_dir =
  let doc = "Also write figure data / result JSON into $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv-dir" ] ~docv:"DIR" ~doc)

let domains =
  let doc =
    "Host cores (OCaml domains) used to run independent simulations in parallel. \
     Defaults to every available core; 1 forces fully sequential execution. The \
     simulated results are identical at any value."
  in
  Arg.(value & opt int 0 & info [ "domains" ] ~docv:"N" ~doc)

let only =
  let doc = "Restrict the command to the scenario/spec/model/object named $(docv)." in
  Arg.(value & opt (some string) None & info [ "only" ] ~docv:"NAME" ~doc)

let store =
  let doc =
    "Append one result record per produced artifact to this JSONL store. Defaults \
     to $(i,DIR)/store.jsonl when --csv-dir is given (or \\$REPRO_STORE when set); \
     without either, no records are stored."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"FILE" ~doc)

(* The flag sets the process-wide Runner default, so every experiment
   below — including ones reached through code without an explicit
   [?domains] argument — honours it. *)
let set_domains n = if n > 0 then Engine.Runner.set_default_domains n

type common = { csv_dir : string option; store : string option }

let setup csv_dir domains store =
  set_domains domains;
  let store =
    match (store, csv_dir) with
    | Some s, _ -> Some s
    | None, Some dir -> Some (Fleet.Emit.default_store ~csv_dir:dir)
    | None, None -> (
      match Sys.getenv_opt "REPRO_STORE" with
      | Some p when p <> "" -> Some p
      | _ -> None)
  in
  { csv_dir; store }

let common = Term.(const setup $ csv_dir $ domains $ store)

(* Where run/view look for the store when no flag names one. *)
let store_path c =
  match c.store with
  | Some s -> s
  | None ->
    Fleet.Emit.default_store
      ~csv_dir:(match c.csv_dir with Some d -> d | None -> "results")

(* Legacy artifact file name -> (driver, kind) for records emitted
   through the Report hooks (the hook only knows the file name). *)
let classify name =
  if name = "fig1.csv" then ("fig1", "FIG")
  else if name = "ABLATION_LOCKS_results.json" then ("ablation-locks", "ABLATION_LOCKS")
  else if name = "OBJECTS_results.json" then ("objects", "OBJECTS")
  else if Filename.check_suffix name ".csv" then ("tsp", "FIG")
  else (Filename.remove_extension name, "MISC")

(* Store-only emit hook for the Report print functions (they write the
   legacy file themselves). *)
let report_hook c ~config : Experiments.Report.emit =
 fun ~name ~metrics ~payload ->
  match c.store with
  | None -> ()
  | Some path ->
    let driver, kind = classify name in
    let (_ : Fleet.Store.record) =
      Fleet.Emit.artifact ~store:path ~driver ~kind
        ~config:(("artifact", name) :: config)
        ~metrics ~payload ()
    in
    ()

(* Store record + legacy file + the "wrote PATH" line the pre-store
   CLI printed, for subcommands that produce their artifact bytes
   directly. *)
let emit_artifact c ~driver ~kind ~legacy ~config ~metrics ~payload =
  let (_ : Fleet.Store.record) =
    Fleet.Emit.artifact ?store:c.store ?csv_dir:c.csv_dir ~driver ~kind ~legacy
      ~config ~metrics ~payload ()
  in
  match c.csv_dir with
  | Some dir -> Printf.printf "wrote %s\n" (Filename.concat dir legacy)
  | None -> ()
