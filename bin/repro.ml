(* The repro CLI: regenerate any table, figure or ablation of the paper
   individually, or everything at once. Every artifact-producing
   subcommand also appends one record per artifact to the experiment-
   fleet results store (Fleet.Store); `repro run` executes declarative
   sweep specs through the driver catalogue and `repro view` queries
   the accumulated records. *)

open Cmdliner

let searchers =
  let doc = "Number of searcher threads (dedicated processors) for TSP runs." in
  Arg.(value & opt int Tsp.Parallel.default_spec.Tsp.Parallel.searchers
       & info [ "searchers" ] ~docv:"N" ~doc)

let cities =
  let doc = "TSP instance size (cities)." in
  Arg.(value & opt int Tsp.Parallel.default_spec.Tsp.Parallel.cities
       & info [ "cities" ] ~docv:"N" ~doc)

let instance_seed =
  let doc = "TSP instance seed." in
  Arg.(value & opt int Tsp.Parallel.default_spec.Tsp.Parallel.instance_seed
       & info [ "seed" ] ~docv:"SEED" ~doc)

let tsp_spec searchers cities instance_seed =
  { Tsp.Parallel.default_spec with Tsp.Parallel.searchers; cities; instance_seed }

let simple name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun domains ->
          Cli.set_domains domains;
          f ())
      $ Cli.domains)

let table_cmds =
  [
    simple "table4" "Table 4: Lock-operation cost" (fun () -> Experiments.Report.print_table4 ());
    simple "table5" "Table 5: Unlock-operation cost" (fun () -> Experiments.Report.print_table5 ());
    simple "table6" "Table 6: locking cycle, static locks" (fun () ->
        Experiments.Report.print_table6 ());
    simple "table7" "Table 7: locking cycle, adaptive lock" (fun () ->
        Experiments.Report.print_table7 ());
    simple "table8" "Table 8: configuration-operation costs" (fun () ->
        Experiments.Report.print_table8 ());
  ]

let fig1_cmd =
  let run c =
    Experiments.Report.print_fig1 ?csv_dir:c.Cli.csv_dir
      ~emit:(Cli.report_hook c ~config:[]) ()
  in
  Cmd.v (Cmd.info "fig1" ~doc:"Figure 1: critical-section sweep")
    Term.(const run $ Cli.common)

let tsp_cmd =
  let doc = "Tables 1-3 and Figures 4-9 (the TSP evaluation)" in
  let run c searchers cities seed =
    let config =
      [
        ("searchers", string_of_int searchers);
        ("cities", string_of_int cities);
        ("seed", string_of_int seed);
      ]
    in
    Experiments.Report.print_tsp ?csv_dir:c.Cli.csv_dir
      ~emit:(Cli.report_hook c ~config)
      ~spec:(tsp_spec searchers cities seed) ()
  in
  Cmd.v (Cmd.info "tsp" ~doc)
    Term.(const run $ Cli.common $ searchers $ cities $ instance_seed)

let single_fig_cmds =
  List.map
    (fun (number, impl, lock) ->
      let name = Printf.sprintf "fig%d" number in
      let doc = Experiments.Tsp_experiments.figure_description ~impl ~lock in
      let run searchers cities seed domains =
        Cli.set_domains domains;
        let t =
          Experiments.Tsp_experiments.run_all ~spec:(tsp_spec searchers cities seed) ()
        in
        match Experiments.Tsp_experiments.figure t ~impl ~lock with
        | None -> print_endline "no trace recorded"
        | Some series ->
          Printf.printf "Figure %d: %s\n%s\n" number doc (Repro_stats.Plot.series series)
      in
      Cmd.v (Cmd.info name ~doc)
        Term.(const run $ searchers $ cities $ instance_seed $ Cli.domains))
    Experiments.Tsp_experiments.all_figures

let single_table_cmds =
  List.map
    (fun (name, doc, impl) ->
      let run searchers cities seed domains =
        Cli.set_domains domains;
        let t =
          Experiments.Tsp_experiments.run_all ~spec:(tsp_spec searchers cities seed) ()
        in
        let row = Experiments.Tsp_experiments.table t impl in
        Printf.printf
          "%s\n  sequential %.0f ms\n  blocking   %.0f ms\n  adaptive   %.0f ms\n  improvement %.1f%%\n"
          doc row.Experiments.Tsp_experiments.sequential_ms
          row.Experiments.Tsp_experiments.blocking_ms
          row.Experiments.Tsp_experiments.adaptive_ms
          row.Experiments.Tsp_experiments.improvement_pct
      in
      Cmd.v (Cmd.info name ~doc)
        Term.(const run $ searchers $ cities $ instance_seed $ Cli.domains))
    [
      ("table1", "Table 1: centralized TSP", Tsp.Parallel.Centralized);
      ("table2", "Table 2: distributed TSP", Tsp.Parallel.Distributed);
      ("table3", "Table 3: distributed TSP with load balancing", Tsp.Parallel.Balanced);
    ]

let ablation_cmds =
  [
    simple "ablation-sched" "Lock schedulers (FCFS/priority/handoff)" (fun () ->
        Experiments.Report.print_schedulers ());
    simple "ablation-coupling" "Closely vs loosely coupled adaptation" (fun () ->
        Experiments.Report.print_coupling ());
    simple "ablation-sampling" "Monitor sampling-rate sweep" (fun () ->
        Experiments.Report.print_sampling ());
    simple "ablation-threshold" "simple-adapt constants sweep" (fun () ->
        Experiments.Report.print_threshold ());
    simple "ablation-phases" "Phased contention, adaptive vs static" (fun () ->
        Experiments.Report.print_phases ());
    simple "ablation-barriers" "Adaptive vs fixed barrier arrival strategies" (fun () ->
        Experiments.Report.print_barriers ());
    simple "ablation-architecture" "Lock implementations across UMA/NUMA" (fun () ->
        Experiments.Report.print_architecture ());
    simple "ablation-advisory" "Advisory locks on variable-length sections" (fun () ->
        Experiments.Report.print_advisory ());
  ]

let ablation_locks_cmd =
  let doc =
    "Implementation-as-attribute ablation: the switch lock's contention sweep under \
     each pinned implementation (TAS, MCS queue, blocking) and under the adaptive \
     ladder. Exits non-zero unless the adaptive variant beats the worst pinned \
     variant at every regime and stays within 5% of the best at the sweep extremes. \
     With --csv-dir, writes ABLATION_LOCKS_results.json (byte-identical at any \
     --domains)."
  in
  let run c =
    let ok =
      Experiments.Report.print_switch_locks ?csv_dir:c.Cli.csv_dir
        ~emit:(Cli.report_hook c ~config:[]) ()
    in
    (match c.Cli.csv_dir with
    | Some dir ->
      Printf.printf "wrote %s\n" (Filename.concat dir "ABLATION_LOCKS_results.json")
    | None -> ());
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "ablation-locks" ~doc) Term.(const run $ Cli.common)

let objects_cmd =
  let doc =
    "Run the sync-objects workload (one of each adaptive object: lock, rw-lock, \
     barrier, condition, semaphore) and dump the adaptive-object registry — per-object \
     samples, policy runs, adaptations, charged cost and transition log. With \
     --csv-dir, also writes OBJECTS_results.json (byte-identical at any --domains). \
     With --only, restricts the dump to the object with that registry name."
  in
  let run c only =
    let config = match only with None -> [] | Some o -> [ ("only", o) ] in
    Experiments.Report.print_objects ?csv_dir:c.Cli.csv_dir
      ~emit:(Cli.report_hook c ~config) ?only ();
    match c.Cli.csv_dir with
    | Some dir -> Printf.printf "wrote %s\n" (Filename.concat dir "OBJECTS_results.json")
    | None -> ()
  in
  Cmd.v (Cmd.info "objects" ~doc) Term.(const run $ Cli.common $ Cli.only)

let all_cmd =
  let run c =
    Experiments.Report.print_everything ?csv_dir:c.Cli.csv_dir
      ~emit:(Cli.report_hook c ~config:[]) ()
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Every table, figure and ablation in paper order")
    Term.(const run $ Cli.common)

let bench_cmd =
  let doc =
    "Time full report generation at domains=1 vs domains=N, check the outputs are \
     byte-identical, and write a machine-readable BENCH_results.json (no Bechamel \
     micro-benchmarks; use bench/main.exe for those). With --compare, gate the \
     report-level events/sec against the most recent BENCH record in the store \
     (same host preferred) — or against the store file named as the option value."
  in
  let compare_arg =
    let doc =
      "Gate events/sec against a stored baseline. Without a value, uses the most \
       recent same-host BENCH record of the command's own store; with one, reads \
       the given store file."
    in
    Arg.(value & opt ~vopt:(Some "") (some string) None
         & info [ "compare" ] ~docv:"STORE" ~doc)
  in
  let tolerance =
    let doc = "Allowed events/sec drop, in percent, before --compare fails." in
    Arg.(value & opt float 40.0 & info [ "tolerance" ] ~docv:"PCT" ~doc)
  in
  let run c compare_to tolerance =
    let n = Engine.Runner.default_domains () in
    let comparison, _report = Experiments.Perf.compare_report_generation ~domains:n () in
    Printf.printf
      "report generation: %.2fs at domains=1, %.2fs at domains=%d (%.2fx), output %s\n"
      comparison.Experiments.Perf.wall_base_s comparison.Experiments.Perf.wall_parallel_s
      comparison.Experiments.Perf.domains_parallel
      (comparison.Experiments.Perf.wall_base_s
      /. Float.max comparison.Experiments.Perf.wall_parallel_s 1e-9)
      (if comparison.Experiments.Perf.identical_output then "byte-identical"
       else "DIFFERS (BUG)");
    let eps =
      comparison.Experiments.Perf.events_base
      /. Float.max comparison.Experiments.Perf.wall_base_s 1e-9
    in
    (* Resolve the baseline before this run's record lands in the
       store, so a run never gates against itself. *)
    let baseline =
      match compare_to with
      | None -> None
      | Some arg ->
        let path = if arg = "" then Cli.store_path c else arg in
        (match Fleet.Store.load ~path with
        | Error e ->
          prerr_endline ("bench --compare: " ^ e);
          exit 2
        | Ok records ->
          let host = try Unix.gethostname () with _ -> "unknown" in
          let candidates =
            List.filter
              (fun r ->
                r.Fleet.Store.r_kind = "BENCH"
                && List.mem_assoc "events_per_sec" r.Fleet.Store.r_metrics)
              records
          in
          let last l = match List.rev l with [] -> None | r :: _ -> Some r in
          let pick =
            match last (List.filter (fun r -> r.Fleet.Store.r_host = host) candidates)
            with
            | Some r -> Some r
            | None -> last candidates
          in
          Some (path, pick))
    in
    (match c.Cli.csv_dir with
    | None -> ()
    | Some _ ->
      Cli.emit_artifact c ~driver:"bench" ~kind:"BENCH" ~legacy:"BENCH_results.json"
        ~config:[]
        ~metrics:
          [
            ("events_per_sec", eps);
            ("events_base", comparison.Experiments.Perf.events_base);
            ("wall_base_s", comparison.Experiments.Perf.wall_base_s);
            ("wall_parallel_s", comparison.Experiments.Perf.wall_parallel_s);
            ( "identical_output",
              if comparison.Experiments.Perf.identical_output then 1. else 0. );
          ]
        ~payload:
          (Experiments.Perf.to_json ~micros:[] ~comparison:(Some comparison) ()));
    (match baseline with
    | None -> ()
    | Some (path, None) ->
      Printf.printf "bench gate: no BENCH baseline in %s; skipping comparison\n" path
    | Some (_, Some b) ->
      let base_eps = List.assoc "events_per_sec" b.Fleet.Store.r_metrics in
      let floor = base_eps *. (1. -. (tolerance /. 100.)) in
      let rev = b.Fleet.Store.r_rev in
      let rev = if String.length rev > 7 then String.sub rev 0 7 else rev in
      Printf.printf
        "bench gate: %.3g events/s vs baseline %.3g (host %s, rev %s, tolerance \
         %g%%)\n"
        eps base_eps b.Fleet.Store.r_host rev tolerance;
      if eps < floor then begin
        print_endline "bench gate: REGRESSION (events/sec below tolerated floor)";
        exit 1
      end
      else print_endline "bench gate: ok");
    if not comparison.Experiments.Perf.identical_output then exit 1
  in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const run $ Cli.common $ compare_arg $ tolerance)

let check_policies_cmd =
  let doc =
    "Statically model-check every shipped adaptation-policy spec — thrash cycles, dead \
     configurations, threshold overlaps/inversions, dead hysteresis, guardrail gaps \
     and cross-object conflicts — without running the simulator, then run the checker \
     over the seeded-bad fixture specs, each of which must be flagged with its \
     expected finding kinds. Exits non-zero when a shipped spec has findings or a \
     fixture misses its expectation. With --csv-dir, writes POLICY_results.json \
     (byte-identical at any --domains)."
  in
  let run c only =
    let module PC = Analysis.Policy_check in
    let keep name = match only with None -> true | Some o -> o = name in
    let specs =
      List.filter
        (fun s -> keep s.Adaptive_core.Policy.Spec.s_name)
        (PC.shipped ())
    in
    let ((reports, cross) as shipped) = PC.run specs in
    let fixtures =
      Engine.Runner.map
        (fun (name, specs, expect) -> PC.check_fixture ~name ~expect specs)
        (List.filter (fun (n, _, _) -> keep n) (Analysis_suite.policy_fixtures ()))
    in
    List.iter
      (fun r ->
        Printf.printf "%-22s %-10s %2d configs %2d transitions  %s\n" r.PC.sr_name
          r.PC.sr_kind r.PC.sr_configs r.PC.sr_transitions
          (match r.PC.sr_findings with
          | [] -> "clean"
          | fs -> Printf.sprintf "%d finding(s)" (List.length fs));
        List.iter
          (fun f -> Printf.printf "    [%s] %s\n" f.PC.f_kind f.PC.f_message)
          r.PC.sr_findings)
      reports;
    List.iter
      (fun f -> Printf.printf "conflict [%s] %s\n" f.PC.f_kind f.PC.f_message)
      cross;
    List.iter
      (fun x ->
        Printf.printf "fixture %-22s expects %-38s %s\n" x.PC.x_name
          (String.concat ", " x.PC.x_expected)
          (if x.PC.x_missing = [] then "flagged"
           else "MISSED " ^ String.concat ", " x.PC.x_missing))
      fixtures;
    let findings =
      List.fold_left (fun acc r -> acc + List.length r.PC.sr_findings) 0 reports
      + List.length cross
    in
    let missed =
      List.fold_left (fun acc x -> acc + List.length x.PC.x_missing) 0 fixtures
    in
    Cli.emit_artifact c ~driver:"check-policies" ~kind:"POLICY"
      ~legacy:"POLICY_results.json"
      ~config:(match only with None -> [] | Some o -> [ ("only", o) ])
      ~metrics:
        [
          ("specs", float_of_int (List.length reports));
          ("findings", float_of_int findings);
          ("fixtures", float_of_int (List.length fixtures));
          ("missed", float_of_int missed);
        ]
      ~payload:(PC.to_json ~shipped ~fixtures ^ "\n");
    let shipped_clean = PC.clean shipped in
    let fixtures_ok = List.for_all (fun x -> x.PC.x_missing = []) fixtures in
    if shipped_clean && fixtures_ok then
      print_endline
        "policy check: every shipped spec verifies clean; every fixture flagged"
    else begin
      if not shipped_clean then print_endline "policy check: FINDINGS on shipped specs";
      if not fixtures_ok then
        print_endline "policy check: fixtures MISSED expected findings";
      exit 1
    end
  in
  Cmd.v (Cmd.info "check-policies" ~doc) Term.(const run $ Cli.common $ Cli.only)

let check_protocols_cmd =
  let doc =
    "Exhaustively model-check the concurrency protocols — the quiescence swap \
     (freeze/kick/drain/commit-or-rollback with abandoned-swap recovery and timed \
     waiters), MCS queue handoff, and the guardrail streak/cooldown machine — by \
     explicit-state exploration: mutual exclusion, no lost sleeper, no double grant, \
     freeze-owned commit, and liveness as absence of wedged states, under a one-crash \
     budget. Then re-run the checker over the seeded-bad protocol variants \
     (historical bugs), each of which must produce a counterexample, and lower the \
     counterexamples with a simulator workload to confirmed witness schedules. Exits \
     non-zero when a shipped protocol has a violation, a fixture goes undetected, or \
     a lowering fails to confirm. With --csv-dir, writes PROTO_results.json \
     (byte-identical at any --domains). With --only, checks just that model/fixture \
     and skips witness lowering."
  in
  let run c only =
    let module P = Analysis.Proto_check in
    let keep name = match only with None -> true | Some o -> o = name in
    let shipped = P.check_all ?only (Locks.Proto_models.shipped ()) in
    let fixtures =
      Engine.Runner.map
        (fun (name, model, expect) -> P.check_fixture ~name ~expect model)
        (List.filter (fun (n, _, _) -> keep n) (Analysis_suite.proto_fixtures ()))
    in
    let lowered = if only = None then Analysis_suite.proto_lowerings () else [] in
    List.iter
      (fun r ->
        Printf.printf "%-28s %-20s %8d states %9d edges  %s\n" r.P.r_model
          r.P.r_property r.P.r_states r.P.r_edges
          (match r.P.r_verdict with
          | P.Holds -> "holds"
          | P.Out_of_bounds -> "OUT OF BOUNDS"
          | P.Violated x ->
            Printf.sprintf "VIOLATED (%d-step counterexample: %s)"
              (List.length x.P.x_steps) x.P.x_why))
      shipped;
    List.iter
      (fun f ->
        Printf.printf "fixture %-24s expects %-42s %s\n" f.P.f_name
          (String.concat ", " f.P.f_expect)
          (if f.P.f_missing = [] then "detected"
           else "MISSED " ^ String.concat ", " f.P.f_missing))
      fixtures;
    List.iter
      (fun l ->
        Printf.printf "lowered %-24s -> %-28s %s (schedule %d, replay %s)\n"
          l.P.l_fixture l.P.l_scenario
          (if l.P.l_confirmed then "Confirmed" else "UNCONFIRMED")
          l.P.l_schedule_len
          (if l.P.l_replay_ok then "bit-for-bit" else "DIVERGED"))
      lowered;
    let violations =
      List.length
        (List.filter
           (fun r -> match r.P.r_verdict with P.Violated _ -> true | _ -> false)
           shipped)
    in
    let missed =
      List.fold_left (fun acc f -> acc + List.length f.P.f_missing) 0 fixtures
    in
    Cli.emit_artifact c ~driver:"check-protocols" ~kind:"PROTO"
      ~legacy:"PROTO_results.json"
      ~config:(match only with None -> [] | Some o -> [ ("only", o) ])
      ~metrics:
        [
          ("checks", float_of_int (List.length shipped));
          ("violations", float_of_int violations);
          ("fixtures", float_of_int (List.length fixtures));
          ("missed", float_of_int missed);
          ("lowered", float_of_int (List.length lowered));
          ( "confirmed",
            float_of_int
              (List.length
                 (List.filter (fun l -> l.P.l_confirmed && l.P.l_replay_ok) lowered))
          );
        ]
      ~payload:(P.to_json ~shipped ~fixtures ~lowered ^ "\n");
    let shipped_clean = P.clean shipped in
    let fixtures_ok = P.fixtures_ok fixtures in
    let lowered_ok =
      List.for_all (fun l -> l.P.l_confirmed && l.P.l_replay_ok) lowered
    in
    if shipped_clean && fixtures_ok && lowered_ok then
      print_endline
        "protocol check: every shipped protocol verifies clean; every seeded bug \
         caught"
    else begin
      if not shipped_clean then
        print_endline "protocol check: VIOLATIONS on shipped protocols";
      if not fixtures_ok then
        print_endline "protocol check: fixtures MISSED expected violations";
      if not lowered_ok then
        print_endline "protocol check: witness lowering FAILED to confirm";
      exit 1
    end
  in
  Cmd.v (Cmd.info "check-protocols" ~doc) Term.(const run $ Cli.common $ Cli.only)

let analyze_cmd =
  let doc =
    "Run the sanitizers (race detector, lock-order graph, lock-discipline lint) over \
     every example/experiment workload and the seeded scenarios. With --predict, also \
     run the weak-causality predictor (races, deadlocks, lost wakeups reachable in a \
     reordering of the observed run); with --confirm, re-execute each prediction under \
     a synthesized schedule and report machine-checked Confirmed/Unconfirmed verdicts. \
     Exits non-zero on any unmet expectation unless --no-fail is given. With \
     --csv-dir, writes ANALYSIS_results.json."
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ] ~doc:"Print every diagnostic, not just summaries.")
  in
  let predict =
    Arg.(value & flag
         & info [ "predict" ]
             ~doc:"Run the weak-causality predictor on every scenario.")
  in
  let confirm =
    Arg.(value & flag
         & info [ "confirm" ]
             ~doc:
               "Re-execute each prediction under a synthesized witness schedule \
                (implies --predict).")
  in
  let no_fail =
    Arg.(value & flag
         & info [ "no-fail" ]
             ~doc:"Always exit 0, even when a scenario misses its expectation.")
  in
  let run verbose predict confirm no_fail c =
    let predict = predict || confirm in
    let results =
      Analysis_suite.run_all ~predict ~confirm (Analysis_suite.all ())
    in
    List.iter
      (fun r ->
        Printf.printf "%-26s %s\n" r.Analysis_suite.r_name r.Analysis_suite.r_summary;
        if verbose then
          List.iter (fun d -> Printf.printf "    %s\n" d) r.Analysis_suite.r_diags;
        List.iter
          (fun p ->
            Printf.printf "    %s%s: %s\n" p.Analysis_suite.p_rule
              (match p.Analysis_suite.p_status with
              | None -> ""
              | Some s -> Printf.sprintf " [%s]" s)
              p.Analysis_suite.p_description)
          r.Analysis_suite.r_predictions)
      results;
    let failures =
      List.concat_map
        (fun r ->
          List.map (fun e -> (r.Analysis_suite.r_name, e)) r.Analysis_suite.r_failures)
        results
    in
    let predictions =
      List.fold_left
        (fun acc r -> acc + List.length r.Analysis_suite.r_predictions)
        0 results
    in
    Cli.emit_artifact c ~driver:"analyze" ~kind:"ANALYSIS"
      ~legacy:"ANALYSIS_results.json"
      ~config:
        [
          ("predict", string_of_bool predict);
          ("confirm", string_of_bool confirm);
        ]
      ~metrics:
        [
          ("scenarios", float_of_int (List.length results));
          ("failures", float_of_int (List.length failures));
          ("predictions", float_of_int predictions);
        ]
      ~payload:(Analysis_suite.to_json results);
    (match failures with
    | [] -> print_endline "analysis: all scenarios behaved as expected"
    | _ -> List.iter (fun (name, e) -> Printf.printf "FAIL %s: %s\n" name e) failures);
    if failures <> [] && not no_fail then exit 1
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ verbose $ predict $ confirm $ no_fail $ Cli.common)

let chaos_cmd =
  let doc =
    "Chaos harness: sweep seeded, replayable fault plans (memory degradation, stuck \
     modules, processor stalls, thread kills, lock-holder delays) over the shipped \
     scenario catalogue, with the sanitizers watching and a watchdog turning hangs \
     into structured aborts. Exits non-zero on any invariant failure. With --csv-dir, \
     writes CHAOS_results.json plus CHAOS_failing_plans.txt (replayable with --plan) \
     when anything failed."
  in
  let seeds =
    Arg.(value & opt int 5
         & info [ "seeds" ] ~docv:"N" ~doc:"Fault-plan seeds per scenario (1..N).")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"Smoke mode for CI: 2 seeds per scenario.")
  in
  let plan =
    Arg.(value & opt (some string) None
         & info [ "plan" ] ~docv:"SPEC"
             ~doc:
               "Replay this exact fault plan (the spec-string syntax of \
                Faults.Fault_plan, as dumped in CHAOS_failing_plans.txt) instead of \
                generating seeded plans.")
  in
  let scenario_filter =
    Arg.(value & opt (some string) None
         & info [ "scenario" ] ~docv:"NAME"
             ~doc:"Restrict the sweep to one scenario (alias of --only).")
  in
  let swap_faults =
    Arg.(value & flag
         & info [ "swap-faults" ]
             ~doc:
               "Also draw swap-window faults (drain stalls and kills timed to land \
                inside a switch-lock implementation swap) into the generated plans.")
  in
  let run seeds quick plan scenario_name swap_faults c only =
    let scenario_name = match only with Some _ -> only | None -> scenario_name in
    let scenarios = Analysis_suite.shipped () in
    let scenarios =
      match scenario_name with
      | None -> scenarios
      | Some n -> List.filter (fun s -> s.Analysis_suite.scenario_name = n) scenarios
    in
    if scenarios = [] then begin
      prerr_endline "chaos: no scenario matches --scenario/--only";
      exit 2
    end;
    let results =
      match plan with
      | Some spec ->
        let plan = Faults.Fault_plan.of_string spec in
        List.map (fun s -> Chaos.replay ~scenario:s ~plan) scenarios
      | None ->
        let n = if quick then 2 else max 1 seeds in
        Chaos.sweep ~swap_faults ~seeds:(List.init n (fun i -> i + 1)) ~scenarios ()
    in
    List.iter
      (fun r ->
        Printf.printf "%-26s seed=%-3d %-9s %s\n" r.Chaos.scenario r.Chaos.seed
          r.Chaos.outcome
          (match r.Chaos.invariant_failures with
          | [] -> "ok"
          | fs -> "FAIL: " ^ String.concat "; " fs))
      results;
    print_endline (Chaos.summary_line results);
    let config =
      (match plan with
      | Some spec -> [ ("plan", spec) ]
      | None ->
        [ ("seeds", string_of_int (if quick then 2 else max 1 seeds)) ])
      @ [ ("swap_faults", string_of_bool swap_faults) ]
      @ (match scenario_name with None -> [] | Some n -> [ ("scenario", n) ])
    in
    let sum f = float_of_int (List.fold_left (fun acc r -> acc + f r) 0 results) in
    let failing = List.filter (fun r -> not (Chaos.passed r)) results in
    Cli.emit_artifact c ~driver:"chaos" ~kind:"CHAOS" ~legacy:"CHAOS_results.json"
      ~config
      ~metrics:
        [
          ("runs", float_of_int (List.length results));
          ("failures", float_of_int (List.length failing));
          ("events", sum (fun r -> r.Chaos.events));
          ("accesses", sum (fun r -> r.Chaos.accesses));
          ("injected", sum (fun r -> List.length r.Chaos.injected));
        ]
      ~payload:(Chaos.to_json results);
    (match c.Cli.csv_dir with
    | Some dir when failing <> [] ->
      let path = Filename.concat dir "CHAOS_failing_plans.txt" in
      let oc = open_out path in
      List.iter
        (fun r ->
          Printf.fprintf oc "%s seed=%d plan=%s%s\n" r.Chaos.scenario r.Chaos.seed
            r.Chaos.plan
            (match r.Chaos.pinned_schedule with
            | None -> ""
            | Some s -> " schedule=" ^ s))
        failing;
      close_out oc;
      Printf.printf "wrote %s\n" path
    | _ -> ());
    if failing <> [] then exit 1
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ seeds $ quick $ plan $ scenario_filter $ swap_faults $ Cli.common
      $ Cli.only)

let run_cmd =
  let doc =
    "Execute an experiment-fleet spec: a JSON declaration of a cross-product sweep \
     (axes x values) over one of the catalogue drivers, validated up front, run \
     through the deterministic domain-parallel runner, with one store record \
     appended per config. The store is byte-identical at any --domains. See \
     --catalogue for the drivers and their axes."
  in
  let spec_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"SPEC.json" ~doc:"Spec file (one spec object or an array).")
  in
  let dry =
    Arg.(value & flag
         & info [ "dry-run" ]
             ~doc:"Validate and print the expanded configs without running anything.")
  in
  let catalogue =
    Arg.(value & flag
         & info [ "catalogue" ] ~doc:"Print the driver catalogue and exit.")
  in
  let run c spec_path dry catalogue =
    if catalogue then print_string (Fleet.Catalogue.describe ())
    else
      match spec_path with
      | None ->
        prerr_endline "repro run: a SPEC.json argument is required (or --catalogue)";
        exit 2
      | Some path -> (
        match Fleet.Spec.of_file path with
        | Error e ->
          prerr_endline ("repro run: " ^ e);
          exit 2
        | Ok specs ->
          List.iter
            (fun s ->
              match Fleet.Catalogue.validate s with
              | Ok () -> ()
              | Error e ->
                prerr_endline ("repro run: " ^ e);
                exit 2)
            specs;
          let store = Cli.store_path c in
          List.iter
            (fun s ->
              let driver =
                match Fleet.Catalogue.find s.Fleet.Spec.sp_driver with
                | Some d -> d
                | None -> assert false (* validate checked *)
              in
              let configs = Fleet.Spec.expand s in
              if dry then begin
                Printf.printf "spec %s: driver %s, %d configs\n" s.Fleet.Spec.sp_id
                  driver.Fleet.Catalogue.d_name (List.length configs);
                List.iter
                  (fun config ->
                    print_endline
                      ("  "
                      ^ String.concat ","
                          (List.map (fun (k, v) -> k ^ "=" ^ v) config)))
                  configs
              end
              else begin
                let outcomes =
                  Engine.Runner.map
                    (fun config -> Fleet.Catalogue.run_config driver config)
                    configs
                in
                let records =
                  List.map2
                    (fun config (metrics, payload) ->
                      Fleet.Store.make ~spec:s.Fleet.Spec.sp_id
                        ~driver:driver.Fleet.Catalogue.d_name
                        ~kind:driver.Fleet.Catalogue.d_kind ~config ~metrics ~payload
                        ())
                    configs outcomes
                in
                Fleet.Store.append ~path:store records;
                Printf.printf "spec %-20s driver %-12s %4d configs -> %s\n"
                  s.Fleet.Spec.sp_id driver.Fleet.Catalogue.d_name
                  (List.length records) store
              end)
            specs)
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ Cli.common $ spec_arg $ dry $ catalogue)

let view_cmd =
  let doc =
    "Query the results store: `top N by METRIC [where K=V ...]`, `mean|sum|min|max| \
     count METRIC [group by driver|kind|rev|spec|config:KEY]`, `regressions since \
     REV [tolerance PCT]` (REV may be `earliest`/`latest`/a prefix), or `list \
     drivers|kinds|revs|specs`. Output is deterministic and byte-identical at any \
     --domains."
  in
  let query_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"The query.")
  in
  let run c query =
    let path = Cli.store_path c in
    match Fleet.Store.load ~path with
    | Error e ->
      prerr_endline ("repro view: " ^ e);
      exit 2
    | Ok records -> (
      match Fleet.Query.parse query with
      | Error e ->
        prerr_endline ("repro view: " ^ e);
        exit 2
      | Ok q -> print_string (Fleet.Query.run records q))
  in
  Cmd.v (Cmd.info "view" ~doc) Term.(const run $ Cli.common $ query_arg)

let () =
  let doc = "Reproduce the tables and figures of Mukherjee & Schwan, GIT-CC-93/17" in
  let info = Cmd.info "repro" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          ((all_cmd :: bench_cmd :: analyze_cmd :: check_policies_cmd
            :: check_protocols_cmd :: chaos_cmd :: objects_cmd :: fig1_cmd
            :: tsp_cmd :: run_cmd :: view_cmd :: table_cmds)
          @ single_table_cmds @ single_fig_cmds @ ablation_cmds
          @ [ ablation_locks_cmd ])))
