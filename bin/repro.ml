(* The repro CLI: regenerate any table, figure or ablation of the paper
   individually, or everything at once. *)

open Cmdliner

let csv_dir =
  let doc = "Also write figure data as CSV files into $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv-dir" ] ~docv:"DIR" ~doc)

let domains =
  let doc =
    "Host cores (OCaml domains) used to run independent simulations in parallel. \
     Defaults to every available core; 1 forces fully sequential execution. The \
     simulated results are identical at any value."
  in
  Arg.(value & opt int 0 & info [ "domains" ] ~docv:"N" ~doc)

(* The flag sets the process-wide Runner default, so every experiment
   below — including ones reached through code without an explicit
   [?domains] argument — honours it. *)
let set_domains n = if n > 0 then Engine.Runner.set_default_domains n

let only =
  let doc =
    "Check only the shipped spec/model (or seeded-bad fixture) named $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "only" ] ~docv:"NAME" ~doc)

let searchers =
  let doc = "Number of searcher threads (dedicated processors) for TSP runs." in
  Arg.(value & opt int Tsp.Parallel.default_spec.Tsp.Parallel.searchers
       & info [ "searchers" ] ~docv:"N" ~doc)

let cities =
  let doc = "TSP instance size (cities)." in
  Arg.(value & opt int Tsp.Parallel.default_spec.Tsp.Parallel.cities
       & info [ "cities" ] ~docv:"N" ~doc)

let instance_seed =
  let doc = "TSP instance seed." in
  Arg.(value & opt int Tsp.Parallel.default_spec.Tsp.Parallel.instance_seed
       & info [ "seed" ] ~docv:"SEED" ~doc)

let tsp_spec searchers cities instance_seed =
  { Tsp.Parallel.default_spec with Tsp.Parallel.searchers; cities; instance_seed }

let simple name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun domains ->
          set_domains domains;
          f ())
      $ domains)

let table_cmds =
  [
    simple "table4" "Table 4: Lock-operation cost" (fun () -> Experiments.Report.print_table4 ());
    simple "table5" "Table 5: Unlock-operation cost" (fun () -> Experiments.Report.print_table5 ());
    simple "table6" "Table 6: locking cycle, static locks" (fun () ->
        Experiments.Report.print_table6 ());
    simple "table7" "Table 7: locking cycle, adaptive lock" (fun () ->
        Experiments.Report.print_table7 ());
    simple "table8" "Table 8: configuration-operation costs" (fun () ->
        Experiments.Report.print_table8 ());
  ]

let fig1_cmd =
  let run csv_dir domains =
    set_domains domains;
    Experiments.Report.print_fig1 ?csv_dir ()
  in
  Cmd.v (Cmd.info "fig1" ~doc:"Figure 1: critical-section sweep")
    Term.(const run $ csv_dir $ domains)

let tsp_cmd =
  let doc = "Tables 1-3 and Figures 4-9 (the TSP evaluation)" in
  let run csv_dir searchers cities seed domains =
    set_domains domains;
    Experiments.Report.print_tsp ?csv_dir ~spec:(tsp_spec searchers cities seed) ()
  in
  Cmd.v (Cmd.info "tsp" ~doc)
    Term.(const run $ csv_dir $ searchers $ cities $ instance_seed $ domains)

let single_fig_cmds =
  List.map
    (fun (number, impl, lock) ->
      let name = Printf.sprintf "fig%d" number in
      let doc = Experiments.Tsp_experiments.figure_description ~impl ~lock in
      let run searchers cities seed domains =
        set_domains domains;
        let t =
          Experiments.Tsp_experiments.run_all ~spec:(tsp_spec searchers cities seed) ()
        in
        match Experiments.Tsp_experiments.figure t ~impl ~lock with
        | None -> print_endline "no trace recorded"
        | Some series ->
          Printf.printf "Figure %d: %s\n%s\n" number doc (Repro_stats.Plot.series series)
      in
      Cmd.v (Cmd.info name ~doc)
        Term.(const run $ searchers $ cities $ instance_seed $ domains))
    Experiments.Tsp_experiments.all_figures

let single_table_cmds =
  List.map
    (fun (name, doc, impl) ->
      let run searchers cities seed domains =
        set_domains domains;
        let t =
          Experiments.Tsp_experiments.run_all ~spec:(tsp_spec searchers cities seed) ()
        in
        let row = Experiments.Tsp_experiments.table t impl in
        Printf.printf
          "%s\n  sequential %.0f ms\n  blocking   %.0f ms\n  adaptive   %.0f ms\n  improvement %.1f%%\n"
          doc row.Experiments.Tsp_experiments.sequential_ms
          row.Experiments.Tsp_experiments.blocking_ms
          row.Experiments.Tsp_experiments.adaptive_ms
          row.Experiments.Tsp_experiments.improvement_pct
      in
      Cmd.v (Cmd.info name ~doc)
        Term.(const run $ searchers $ cities $ instance_seed $ domains))
    [
      ("table1", "Table 1: centralized TSP", Tsp.Parallel.Centralized);
      ("table2", "Table 2: distributed TSP", Tsp.Parallel.Distributed);
      ("table3", "Table 3: distributed TSP with load balancing", Tsp.Parallel.Balanced);
    ]

let ablation_cmds =
  [
    simple "ablation-sched" "Lock schedulers (FCFS/priority/handoff)" (fun () ->
        Experiments.Report.print_schedulers ());
    simple "ablation-coupling" "Closely vs loosely coupled adaptation" (fun () ->
        Experiments.Report.print_coupling ());
    simple "ablation-sampling" "Monitor sampling-rate sweep" (fun () ->
        Experiments.Report.print_sampling ());
    simple "ablation-threshold" "simple-adapt constants sweep" (fun () ->
        Experiments.Report.print_threshold ());
    simple "ablation-phases" "Phased contention, adaptive vs static" (fun () ->
        Experiments.Report.print_phases ());
    simple "ablation-barriers" "Adaptive vs fixed barrier arrival strategies" (fun () ->
        Experiments.Report.print_barriers ());
    simple "ablation-architecture" "Lock implementations across UMA/NUMA" (fun () ->
        Experiments.Report.print_architecture ());
    simple "ablation-advisory" "Advisory locks on variable-length sections" (fun () ->
        Experiments.Report.print_advisory ());
  ]

let ablation_locks_cmd =
  let doc =
    "Implementation-as-attribute ablation: the switch lock's contention sweep under \
     each pinned implementation (TAS, MCS queue, blocking) and under the adaptive \
     ladder. Exits non-zero unless the adaptive variant beats the worst pinned \
     variant at every regime and stays within 5% of the best at the sweep extremes. \
     With --csv-dir, writes ABLATION_LOCKS_results.json (byte-identical at any \
     --domains)."
  in
  let run csv_dir domains =
    set_domains domains;
    let ok = Experiments.Report.print_switch_locks ?csv_dir () in
    (match csv_dir with
    | Some dir ->
      Printf.printf "wrote %s\n" (Filename.concat dir "ABLATION_LOCKS_results.json")
    | None -> ());
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "ablation-locks" ~doc) Term.(const run $ csv_dir $ domains)

let objects_cmd =
  let doc =
    "Run the sync-objects workload (one of each adaptive object: lock, rw-lock, \
     barrier, condition, semaphore) and dump the adaptive-object registry — per-object \
     samples, policy runs, adaptations, charged cost and transition log. With \
     --csv-dir, also writes OBJECTS_results.json (byte-identical at any --domains)."
  in
  let run csv_dir domains =
    set_domains domains;
    Experiments.Report.print_objects ?csv_dir ();
    match csv_dir with
    | Some dir -> Printf.printf "wrote %s\n" (Filename.concat dir "OBJECTS_results.json")
    | None -> ()
  in
  Cmd.v (Cmd.info "objects" ~doc) Term.(const run $ csv_dir $ domains)

let all_cmd =
  let run csv_dir domains =
    set_domains domains;
    Experiments.Report.print_everything ?csv_dir ()
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Every table, figure and ablation in paper order")
    Term.(const run $ csv_dir $ domains)

let bench_cmd =
  let doc =
    "Time full report generation at domains=1 vs domains=N, check the outputs are \
     byte-identical, and write a machine-readable BENCH_results.json (no Bechamel \
     micro-benchmarks; use bench/main.exe for those)."
  in
  let run csv_dir domains =
    set_domains domains;
    let n = Engine.Runner.default_domains () in
    let comparison, _report = Experiments.Perf.compare_report_generation ~domains:n () in
    Printf.printf
      "report generation: %.2fs at domains=1, %.2fs at domains=%d (%.2fx), output %s\n"
      comparison.Experiments.Perf.wall_base_s comparison.Experiments.Perf.wall_parallel_s
      comparison.Experiments.Perf.domains_parallel
      (comparison.Experiments.Perf.wall_base_s
      /. Float.max comparison.Experiments.Perf.wall_parallel_s 1e-9)
      (if comparison.Experiments.Perf.identical_output then "byte-identical"
       else "DIFFERS (BUG)");
    (match csv_dir with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir "BENCH_results.json" in
      Experiments.Perf.write_json ~path ~micros:[] ~comparison:(Some comparison) ();
      Printf.printf "wrote %s\n" path);
    if not comparison.Experiments.Perf.identical_output then exit 1
  in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const run $ csv_dir $ domains)

let check_policies_cmd =
  let doc =
    "Statically model-check every shipped adaptation-policy spec — thrash cycles, dead \
     configurations, threshold overlaps/inversions, dead hysteresis, guardrail gaps \
     and cross-object conflicts — without running the simulator, then run the checker \
     over the seeded-bad fixture specs, each of which must be flagged with its \
     expected finding kinds. Exits non-zero when a shipped spec has findings or a \
     fixture misses its expectation. With --csv-dir, writes POLICY_results.json \
     (byte-identical at any --domains)."
  in
  let run csv_dir domains only =
    set_domains domains;
    let module PC = Analysis.Policy_check in
    let keep name = match only with None -> true | Some o -> o = name in
    let specs =
      List.filter
        (fun s -> keep s.Adaptive_core.Policy.Spec.s_name)
        (PC.shipped ())
    in
    let ((reports, cross) as shipped) = PC.run specs in
    let fixtures =
      Engine.Runner.map
        (fun (name, specs, expect) -> PC.check_fixture ~name ~expect specs)
        (List.filter (fun (n, _, _) -> keep n) (Analysis_suite.policy_fixtures ()))
    in
    List.iter
      (fun r ->
        Printf.printf "%-22s %-10s %2d configs %2d transitions  %s\n" r.PC.sr_name
          r.PC.sr_kind r.PC.sr_configs r.PC.sr_transitions
          (match r.PC.sr_findings with
          | [] -> "clean"
          | fs -> Printf.sprintf "%d finding(s)" (List.length fs));
        List.iter
          (fun f -> Printf.printf "    [%s] %s\n" f.PC.f_kind f.PC.f_message)
          r.PC.sr_findings)
      reports;
    List.iter
      (fun f -> Printf.printf "conflict [%s] %s\n" f.PC.f_kind f.PC.f_message)
      cross;
    List.iter
      (fun x ->
        Printf.printf "fixture %-22s expects %-38s %s\n" x.PC.x_name
          (String.concat ", " x.PC.x_expected)
          (if x.PC.x_missing = [] then "flagged"
           else "MISSED " ^ String.concat ", " x.PC.x_missing))
      fixtures;
    (match csv_dir with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir "POLICY_results.json" in
      let oc = open_out path in
      output_string oc (PC.to_json ~shipped ~fixtures);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path);
    let shipped_clean = PC.clean shipped in
    let fixtures_ok = List.for_all (fun x -> x.PC.x_missing = []) fixtures in
    if shipped_clean && fixtures_ok then
      print_endline
        "policy check: every shipped spec verifies clean; every fixture flagged"
    else begin
      if not shipped_clean then print_endline "policy check: FINDINGS on shipped specs";
      if not fixtures_ok then
        print_endline "policy check: fixtures MISSED expected findings";
      exit 1
    end
  in
  Cmd.v (Cmd.info "check-policies" ~doc) Term.(const run $ csv_dir $ domains $ only)

let check_protocols_cmd =
  let doc =
    "Exhaustively model-check the concurrency protocols — the quiescence swap \
     (freeze/kick/drain/commit-or-rollback with abandoned-swap recovery and timed \
     waiters), MCS queue handoff, and the guardrail streak/cooldown machine — by \
     explicit-state exploration: mutual exclusion, no lost sleeper, no double grant, \
     freeze-owned commit, and liveness as absence of wedged states, under a one-crash \
     budget. Then re-run the checker over the seeded-bad protocol variants \
     (historical bugs), each of which must produce a counterexample, and lower the \
     counterexamples with a simulator workload to confirmed witness schedules. Exits \
     non-zero when a shipped protocol has a violation, a fixture goes undetected, or \
     a lowering fails to confirm. With --csv-dir, writes PROTO_results.json \
     (byte-identical at any --domains). With --only, checks just that model/fixture \
     and skips witness lowering."
  in
  let run csv_dir domains only =
    set_domains domains;
    let module P = Analysis.Proto_check in
    let keep name = match only with None -> true | Some o -> o = name in
    let shipped = P.check_all ?only (Locks.Proto_models.shipped ()) in
    let fixtures =
      Engine.Runner.map
        (fun (name, model, expect) -> P.check_fixture ~name ~expect model)
        (List.filter (fun (n, _, _) -> keep n) (Analysis_suite.proto_fixtures ()))
    in
    let lowered = if only = None then Analysis_suite.proto_lowerings () else [] in
    List.iter
      (fun r ->
        Printf.printf "%-28s %-20s %8d states %9d edges  %s\n" r.P.r_model
          r.P.r_property r.P.r_states r.P.r_edges
          (match r.P.r_verdict with
          | P.Holds -> "holds"
          | P.Out_of_bounds -> "OUT OF BOUNDS"
          | P.Violated x ->
            Printf.sprintf "VIOLATED (%d-step counterexample: %s)"
              (List.length x.P.x_steps) x.P.x_why))
      shipped;
    List.iter
      (fun f ->
        Printf.printf "fixture %-24s expects %-42s %s\n" f.P.f_name
          (String.concat ", " f.P.f_expect)
          (if f.P.f_missing = [] then "detected"
           else "MISSED " ^ String.concat ", " f.P.f_missing))
      fixtures;
    List.iter
      (fun l ->
        Printf.printf "lowered %-24s -> %-28s %s (schedule %d, replay %s)\n"
          l.P.l_fixture l.P.l_scenario
          (if l.P.l_confirmed then "Confirmed" else "UNCONFIRMED")
          l.P.l_schedule_len
          (if l.P.l_replay_ok then "bit-for-bit" else "DIVERGED"))
      lowered;
    (match csv_dir with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir "PROTO_results.json" in
      let oc = open_out path in
      output_string oc (P.to_json ~shipped ~fixtures ~lowered);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path);
    let shipped_clean = P.clean shipped in
    let fixtures_ok = P.fixtures_ok fixtures in
    let lowered_ok =
      List.for_all (fun l -> l.P.l_confirmed && l.P.l_replay_ok) lowered
    in
    if shipped_clean && fixtures_ok && lowered_ok then
      print_endline
        "protocol check: every shipped protocol verifies clean; every seeded bug \
         caught"
    else begin
      if not shipped_clean then
        print_endline "protocol check: VIOLATIONS on shipped protocols";
      if not fixtures_ok then
        print_endline "protocol check: fixtures MISSED expected violations";
      if not lowered_ok then
        print_endline "protocol check: witness lowering FAILED to confirm";
      exit 1
    end
  in
  Cmd.v (Cmd.info "check-protocols" ~doc) Term.(const run $ csv_dir $ domains $ only)

let analyze_cmd =
  let doc =
    "Run the sanitizers (race detector, lock-order graph, lock-discipline lint) over \
     every example/experiment workload and the seeded scenarios. With --predict, also \
     run the weak-causality predictor (races, deadlocks, lost wakeups reachable in a \
     reordering of the observed run); with --confirm, re-execute each prediction under \
     a synthesized schedule and report machine-checked Confirmed/Unconfirmed verdicts. \
     Exits non-zero on any unmet expectation unless --no-fail is given. With \
     --csv-dir, writes ANALYSIS_results.json."
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ] ~doc:"Print every diagnostic, not just summaries.")
  in
  let predict =
    Arg.(value & flag
         & info [ "predict" ]
             ~doc:"Run the weak-causality predictor on every scenario.")
  in
  let confirm =
    Arg.(value & flag
         & info [ "confirm" ]
             ~doc:
               "Re-execute each prediction under a synthesized witness schedule \
                (implies --predict).")
  in
  let no_fail =
    Arg.(value & flag
         & info [ "no-fail" ]
             ~doc:"Always exit 0, even when a scenario misses its expectation.")
  in
  let run verbose predict confirm no_fail csv_dir domains =
    set_domains domains;
    let predict = predict || confirm in
    let results =
      Analysis_suite.run_all ~predict ~confirm (Analysis_suite.all ())
    in
    List.iter
      (fun r ->
        Printf.printf "%-26s %s\n" r.Analysis_suite.r_name r.Analysis_suite.r_summary;
        if verbose then
          List.iter (fun d -> Printf.printf "    %s\n" d) r.Analysis_suite.r_diags;
        List.iter
          (fun p ->
            Printf.printf "    %s%s: %s\n" p.Analysis_suite.p_rule
              (match p.Analysis_suite.p_status with
              | None -> ""
              | Some s -> Printf.sprintf " [%s]" s)
              p.Analysis_suite.p_description)
          r.Analysis_suite.r_predictions)
      results;
    let failures =
      List.concat_map
        (fun r ->
          List.map (fun e -> (r.Analysis_suite.r_name, e)) r.Analysis_suite.r_failures)
        results
    in
    (match csv_dir with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir "ANALYSIS_results.json" in
      let oc = open_out path in
      output_string oc (Analysis_suite.to_json results);
      close_out oc;
      Printf.printf "wrote %s\n" path);
    (match failures with
    | [] -> print_endline "analysis: all scenarios behaved as expected"
    | _ -> List.iter (fun (name, e) -> Printf.printf "FAIL %s: %s\n" name e) failures);
    if failures <> [] && not no_fail then exit 1
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ verbose $ predict $ confirm $ no_fail $ csv_dir $ domains)

let chaos_cmd =
  let doc =
    "Chaos harness: sweep seeded, replayable fault plans (memory degradation, stuck \
     modules, processor stalls, thread kills, lock-holder delays) over the shipped \
     scenario catalogue, with the sanitizers watching and a watchdog turning hangs \
     into structured aborts. Exits non-zero on any invariant failure. With --csv-dir, \
     writes CHAOS_results.json plus CHAOS_failing_plans.txt (replayable with --plan) \
     when anything failed."
  in
  let seeds =
    Arg.(value & opt int 5
         & info [ "seeds" ] ~docv:"N" ~doc:"Fault-plan seeds per scenario (1..N).")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"Smoke mode for CI: 2 seeds per scenario.")
  in
  let plan =
    Arg.(value & opt (some string) None
         & info [ "plan" ] ~docv:"SPEC"
             ~doc:
               "Replay this exact fault plan (the spec-string syntax of \
                Faults.Fault_plan, as dumped in CHAOS_failing_plans.txt) instead of \
                generating seeded plans.")
  in
  let scenario_filter =
    Arg.(value & opt (some string) None
         & info [ "scenario" ] ~docv:"NAME" ~doc:"Restrict the sweep to one scenario.")
  in
  let swap_faults =
    Arg.(value & flag
         & info [ "swap-faults" ]
             ~doc:
               "Also draw swap-window faults (drain stalls and kills timed to land \
                inside a switch-lock implementation swap) into the generated plans.")
  in
  let run seeds quick plan scenario_name swap_faults csv_dir domains =
    set_domains domains;
    let scenarios = Analysis_suite.shipped () in
    let scenarios =
      match scenario_name with
      | None -> scenarios
      | Some n -> List.filter (fun s -> s.Analysis_suite.scenario_name = n) scenarios
    in
    if scenarios = [] then begin
      prerr_endline "chaos: no scenario matches --scenario";
      exit 2
    end;
    let results =
      match plan with
      | Some spec ->
        let plan = Faults.Fault_plan.of_string spec in
        List.map (fun s -> Chaos.replay ~scenario:s ~plan) scenarios
      | None ->
        let n = if quick then 2 else max 1 seeds in
        Chaos.sweep ~swap_faults ~seeds:(List.init n (fun i -> i + 1)) ~scenarios ()
    in
    List.iter
      (fun r ->
        Printf.printf "%-26s seed=%-3d %-9s %s\n" r.Chaos.scenario r.Chaos.seed
          r.Chaos.outcome
          (match r.Chaos.invariant_failures with
          | [] -> "ok"
          | fs -> "FAIL: " ^ String.concat "; " fs))
      results;
    print_endline (Chaos.summary_line results);
    (match csv_dir with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir "CHAOS_results.json" in
      let oc = open_out path in
      output_string oc (Chaos.to_json results);
      close_out oc;
      Printf.printf "wrote %s\n" path;
      let failing = List.filter (fun r -> not (Chaos.passed r)) results in
      if failing <> [] then begin
        let path = Filename.concat dir "CHAOS_failing_plans.txt" in
        let oc = open_out path in
        List.iter
          (fun r ->
            Printf.fprintf oc "%s seed=%d plan=%s%s\n" r.Chaos.scenario r.Chaos.seed
              r.Chaos.plan
              (match r.Chaos.pinned_schedule with
              | None -> ""
              | Some s -> " schedule=" ^ s))
          failing;
        close_out oc;
        Printf.printf "wrote %s\n" path
      end);
    if List.exists (fun r -> not (Chaos.passed r)) results then exit 1
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ seeds $ quick $ plan $ scenario_filter $ swap_faults $ csv_dir
      $ domains)

let () =
  let doc = "Reproduce the tables and figures of Mukherjee & Schwan, GIT-CC-93/17" in
  let info = Cmd.info "repro" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          ((all_cmd :: bench_cmd :: analyze_cmd :: check_policies_cmd
            :: check_protocols_cmd :: chaos_cmd :: objects_cmd :: fig1_cmd
            :: tsp_cmd :: table_cmds)
          @ single_table_cmds @ single_fig_cmds @ ablation_cmds
          @ [ ablation_locks_cmd ])))
