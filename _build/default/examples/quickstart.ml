(* Quickstart: create a simulated Butterfly machine, fork threads, and
   watch an adaptive lock tune itself.

   Run with: dune exec examples/quickstart.exe *)

open Butterfly
open Cthreads

let () =
  (* An 8-processor NUMA machine with the default (GP1000-like) cost
     model. *)
  let machine = Sched.create { Config.default with Config.processors = 8 } in
  Sched.run machine (fun () ->
      (* An adaptive lock homed on node 0, with the paper's simple-adapt
         policy sampling the waiting-thread count every other unlock. *)
      let lock = Locks.Adaptive_lock.create ~name:"demo-lock" ~home:0 () in

      (* Phase 1: a single thread using the lock — no contention, so
         the policy will configure pure spinning. *)
      for _ = 1 to 10 do
        Locks.Adaptive_lock.lock lock;
        Cthread.work 5_000;
        Locks.Adaptive_lock.unlock lock
      done;
      Printf.printf "configuration after solo phase drained:  %s\n" (Locks.Adaptive_lock.mode lock);

      (* Phase 2: seven threads fight over long critical sections — the
         policy backs off the spin budget toward blocking. *)
      let worker i =
        Cthread.fork ~name:(Printf.sprintf "worker%d" i) ~proc:(1 + (i mod 7))
          (fun () ->
            for _ = 1 to 12 do
              Locks.Adaptive_lock.lock lock;
              Cthread.work 200_000;
              Locks.Adaptive_lock.unlock lock;
              Cthread.work 10_000
            done)
      in
      let workers = List.init 7 worker in
      Cthread.join_all workers;
      Printf.printf
        "configuration after storm phase drained: %s (see log below for the\n\
        \  in-storm configuration)\n"
        (Locks.Adaptive_lock.mode lock);

      (* Phase 3: back to one thread. *)
      for _ = 1 to 10 do
        Locks.Adaptive_lock.lock lock;
        Cthread.work 5_000;
        Locks.Adaptive_lock.unlock lock
      done;
      Printf.printf "configuration after quiet phase:          %s\n\n" (Locks.Adaptive_lock.mode lock);

      Printf.printf "adaptation log (virtual time -> configuration):\n";
      List.iter
        (fun (t, label) -> Printf.printf "  %8.2f ms  %s\n" (float_of_int t /. 1e6) label)
        (Adaptive_core.Adaptive.log (Locks.Adaptive_lock.feedback lock));
      Printf.printf "\nlock statistics:\n  %s\n"
        (Format.asprintf "%a" Locks.Lock_stats.pp (Locks.Adaptive_lock.stats lock)));
  Printf.printf "\nvirtual time elapsed: %.2f ms (simulated on one host core)\n"
    (float_of_int (Sched.final_time machine) /. 1e6)
