(* Execution tracing: attach the structured event log to a machine and
   render the per-processor execution timeline — the offline half of
   the general-purpose monitoring story.

   Run with: dune exec examples/trace_timeline.exe *)

open Butterfly
open Cthreads

let () =
  let machine = Sched.create { Config.default with Config.processors = 4 } in
  let log = Monitoring.Event_log.attach machine in
  Sched.run machine (fun () ->
      let lk = Locks.Lock.create ~home:0 Locks.Lock.Blocking in
      let worker i () =
        for _ = 1 to 4 do
          Cthread.work (40_000 * (i + 1));
          Locks.Lock.lock lk;
          Cthread.work 120_000;
          Locks.Lock.unlock lk
        done
      in
      let ts = List.init 6 (fun i -> Cthread.fork ~proc:(1 + (i mod 3)) (worker i)) in
      Cthread.join_all ts);
  let horizon = Sched.final_time machine in
  print_string (Monitoring.Event_log.timeline log ~horizon);
  Printf.printf "\nevents: %s\n" (Monitoring.Event_log.summary log);
  Printf.printf "virtual time: %.2f ms, %d events recorded\n"
    (float_of_int horizon /. 1e6)
    (Monitoring.Event_log.length log);
  (* Show how long thread 3 spent asleep on the lock. *)
  let spans = Monitoring.Event_log.blocked_spans log 3 in
  Printf.printf "thread 3 slept %d times, %.2f ms total\n" (List.length spans)
    (float_of_int (List.fold_left (fun acc (a, b) -> acc + b - a) 0 spans) /. 1e6)
