(* Lock schedulers on a client-server program: the [MS93] experiment
   the paper recaps in section 2 — priority lock scheduling should beat
   handoff and FCFS because the (high-priority) server gets back into
   the critical section ahead of queued clients.

   Run with: dune exec examples/client_server.exe *)

let () =
  let spec = Workloads.Client_server.default in
  Printf.printf
    "%d clients submitting %d requests each; one high-priority server (service %d us)\n\n"
    spec.Workloads.Client_server.clients spec.Workloads.Client_server.requests_per_client
    (spec.Workloads.Client_server.service_ns / 1000);
  Printf.printf "%-10s %18s %18s %12s\n" "scheduler" "mean response (us)"
    "server wait (us)" "time (ms)";
  List.iter
    (fun (sched, (r : Workloads.Client_server.result)) ->
      Printf.printf "%-10s %18.1f %18.1f %12.1f\n"
        (Locks.Lock_sched.kind_name sched)
        (r.Workloads.Client_server.mean_response_ns /. 1e3)
        (r.Workloads.Client_server.server_mean_wait_ns /. 1e3)
        (float_of_int r.Workloads.Client_server.total_ns /. 1e6))
    (Workloads.Client_server.compare_schedulers spec)
