(* A second instantiation of the adaptive-object model (beyond locks):
   a shared work queue whose internal discipline is a mutable
   attribute.

   - FIFO discipline: O(1) operations, no ordering (cheap).
   - Best-first discipline: ordered by task value, costlier per
     operation, but under backlog the valuable tasks get served first.

   The built-in monitor senses the backlog length (sampling every 4th
   dequeue); the adaptation policy switches the discipline attribute:
   deep backlog -> best-first (ordering pays), shallow backlog -> FIFO
   (overhead does not). This mirrors the paper's claim that the
   adaptive-object structure applies to operating-system abstractions
   generally, not just locks.

   Run with: dune exec examples/adaptive_queue.exe *)

open Butterfly
open Cthreads
module Attribute = Adaptive_core.Attribute
module Sensor = Adaptive_core.Sensor
module Policy = Adaptive_core.Policy
module Adaptive = Adaptive_core.Adaptive

type discipline = Fifo | Best_first

type task = { value : int; work_ns : int }

type queue = {
  mutex : Spin.t;
  tasks : task Queue.t;  (* FIFO backing store *)
  discipline : discipline Attribute.t;
  loop : int Adaptive.t;
  mutable served_value_early : int;  (* value served in the first half *)
  mutable served : int;
}

let fifo_op_ns = 6_000
let best_first_op_ns = 22_000

let dequeue q =
  Spin.lock q.mutex;
  let discipline = Attribute.get q.discipline in
  Cthread.work (match discipline with Fifo -> fifo_op_ns | Best_first -> best_first_op_ns);
  let task =
    match discipline with
    | Fifo -> Queue.take_opt q.tasks
    | Best_first ->
      (* Linear scan for the most valuable task (the cost charged
         above models it). *)
      if Queue.is_empty q.tasks then None
      else begin
        let best = Queue.fold (fun acc t -> max acc t.value) min_int q.tasks in
        let rest = Queue.create () in
        let found = ref None in
        Queue.iter
          (fun t ->
            if !found = None && t.value = best then found := Some t else Queue.add t rest)
          q.tasks;
        Queue.clear q.tasks;
        Queue.transfer rest q.tasks;
        !found
      end
  in
  Spin.unlock q.mutex;
  (* Closely-coupled feedback: tick the monitor on every dequeue. *)
  ignore (Adaptive.tick q.loop);
  task

let enqueue q task =
  Spin.lock q.mutex;
  Cthread.work fifo_op_ns;
  Queue.add task q.tasks;
  Spin.unlock q.mutex

let create ~home =
  let mutex = Spin.create ~node:home () in
  let tasks = Queue.create () in
  let discipline = Attribute.make_at ~name:"discipline" ~node:home Fifo in
  let sensor =
    Sensor.make ~name:"backlog" ~period:4 ~overhead_instrs:30 (fun () -> Queue.length tasks)
  in
  let policy backlog =
    let current = Attribute.get discipline in
    if backlog > 12 && current = Fifo then
      Policy.reconfigure ~label:"best-first" (fun () -> Attribute.set discipline Best_first)
    else if backlog < 4 && current = Best_first then
      Policy.reconfigure ~label:"fifo" (fun () -> Attribute.set discipline Fifo)
    else Policy.No_change
  in
  let loop = Adaptive.create ~name:"adaptive-queue" ~home ~sensor ~policy () in
  { mutex; tasks; discipline; loop; served_value_early = 0; served = 0 }

let run ~adaptive =
  let machine = Sched.create { Config.default with Config.processors = 7 } in
  let early_value = ref 0 and reconfigs = ref [] and final = ref "fifo" in
  Sched.run machine (fun () ->
      let q = create ~home:0 in
      if not adaptive then Adaptive.set_policy q.loop Policy.no_op;
      let total_tasks = 240 in
      let per_producer = total_tasks / 2 in
      (* Two bursty producers: flood the queue, then trickle. *)
      let producer p =
        Cthread.fork ~name:(Printf.sprintf "producer%d" p) ~proc:(1 + p) (fun () ->
            for i = 1 to per_producer do
              enqueue q { value = Cthread.random 100; work_ns = 45_000 };
              (* Burst for the first half, trickle afterwards. *)
              if i > per_producer / 2 then Cthread.work 150_000 else Cthread.work 1_000
            done)
      in
      let producers = List.init 2 producer in
      let consumer p =
        Cthread.fork ~name:(Printf.sprintf "consumer%d" p) ~proc:(3 + p) (fun () ->
            let finished = ref false in
            while not !finished do
              match dequeue q with
              | Some task ->
                Cthread.work task.work_ns;
                q.served <- q.served + 1;
                if q.served <= total_tasks / 2 then
                  q.served_value_early <- q.served_value_early + task.value
              | None ->
                if q.served >= total_tasks then finished := true else Cthread.delay 20_000
            done)
      in
      let consumers = List.init 3 consumer in
      Cthread.join_all producers;
      Cthread.join_all consumers;
      early_value := q.served_value_early;
      reconfigs := Adaptive.log q.loop;
      final :=
        (match Attribute.get q.discipline with Fifo -> "fifo" | Best_first -> "best-first"));
  (Sched.final_time machine, !early_value, !reconfigs, !final)

let () =
  let fifo_time, fifo_early, _, _ = run ~adaptive:false in
  let ad_time, ad_early, log, final = run ~adaptive:true in
  Printf.printf "static FIFO queue:    %.2f ms, value served in first half = %d\n"
    (float_of_int fifo_time /. 1e6) fifo_early;
  Printf.printf "adaptive queue:       %.2f ms, value served in first half = %d\n"
    (float_of_int ad_time /. 1e6) ad_early;
  Printf.printf "adaptive queue ended as %s; reconfigurations:\n" final;
  List.iter
    (fun (t, label) -> Printf.printf "  %8.2f ms -> %s\n" (float_of_int t /. 1e6) label)
    log;
  if ad_early > fifo_early then
    print_endline "=> under backlog the adaptive queue served more valuable work first"
