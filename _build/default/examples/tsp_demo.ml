(* Parallel branch-and-bound TSP on the simulated multiprocessor:
   compare the three implementations and two lock families on a small
   instance.

   Run with: dune exec examples/tsp_demo.exe *)

let () =
  let spec =
    {
      Tsp.Parallel.default_spec with
      Tsp.Parallel.cities = 20;
      instance_seed = 5;
      searchers = 6;
      work_unit_ns = 12_000;
    }
  in
  let inst = Tsp.Parallel.instance_of_spec spec in
  let greedy_tour, greedy_cost = Tsp.Instance.nearest_neighbour inst in
  Printf.printf "instance: %d cities (seed %d); nearest-neighbour tour costs %d\n"
    spec.Tsp.Parallel.cities spec.Tsp.Parallel.instance_seed greedy_cost;
  Printf.printf "greedy order: %s\n\n"
    (String.concat "-" (List.map string_of_int greedy_tour));
  let seq_ns, (opt, nodes) = Tsp.Parallel.run_sequential spec in
  Printf.printf "sequential LMSK: optimum %d (%d nodes expanded, %.1f virtual ms)\n\n" opt
    nodes
    (float_of_int seq_ns /. 1e6);
  Printf.printf "%-16s %-10s %10s %8s %8s %10s\n" "implementation" "locks" "time (ms)"
    "speedup" "nodes" "optimum?";
  List.iter
    (fun impl ->
      List.iter
        (fun (kind, kname) ->
          let r = Tsp.Parallel.run impl { spec with Tsp.Parallel.lock_kind = kind } in
          Printf.printf "%-16s %-10s %10.1f %7.2fx %8d %10s\n"
            (Tsp.Parallel.impl_name impl) kname
            (float_of_int r.Tsp.Parallel.total_ns /. 1e6)
            (float_of_int seq_ns /. float_of_int r.Tsp.Parallel.total_ns)
            r.Tsp.Parallel.nodes_expanded
            (if r.Tsp.Parallel.tour_cost = opt then "yes" else "NO");
          ignore kname)
        [ (Locks.Lock.Blocking, "blocking"); (Tsp.Parallel.tsp_adaptive_kind, "adaptive") ])
    [ Tsp.Parallel.Centralized; Tsp.Parallel.Distributed; Tsp.Parallel.Balanced ]
