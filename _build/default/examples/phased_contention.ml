(* Phased contention: the workload's locking regime flips mid-run,
   so no static waiting policy is right throughout — the scenario
   motivating adaptive locks (paper section 2).

   Run with: dune exec examples/phased_contention.exe *)

let () =
  let spec = Workloads.Phased.default in
  Printf.printf
    "Workload: %d workers on %d processors; phases (active threads, cs length, entries):\n"
    spec.Workloads.Phased.workers spec.Workloads.Phased.processors;
  List.iter
    (fun (p : Workloads.Phased.phase) ->
      Printf.printf "  %d threads x %d us sections x %d entries\n"
        p.Workloads.Phased.active_threads
        (p.Workloads.Phased.cs_ns / 1000)
        p.Workloads.Phased.entries)
    spec.Workloads.Phased.phases;
  print_newline ();
  let kinds =
    [
      Locks.Lock.Spin;
      Locks.Lock.Blocking;
      Locks.Lock.Combined 10;
      Locks.Lock.adaptive_default;
    ]
  in
  let results = Workloads.Phased.compare_kinds spec kinds in
  Printf.printf "%-16s %12s %14s %12s\n" "lock" "time (ms)" "mean wait (us)" "adaptations";
  List.iter
    (fun (kind, (r : Workloads.Phased.result)) ->
      Printf.printf "%-16s %12.1f %14.1f %12d\n" (Locks.Lock.kind_name kind)
        (float_of_int r.Workloads.Phased.total_ns /. 1e6)
        (r.Workloads.Phased.mean_wait_ns /. 1e3)
        r.Workloads.Phased.adaptations)
    results;
  (* Show when the adaptive lock reconfigured. *)
  match List.assoc_opt Locks.Lock.adaptive_default results with
  | Some r when r.Workloads.Phased.adaptation_log <> [] ->
    Printf.printf "\nadaptive lock reconfigurations:\n";
    List.iter
      (fun (t, label) -> Printf.printf "  %8.2f ms -> %s\n" (float_of_int t /. 1e6) label)
      r.Workloads.Phased.adaptation_log
  | _ -> ()
