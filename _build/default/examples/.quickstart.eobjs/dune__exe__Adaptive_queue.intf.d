examples/adaptive_queue.mli:
