examples/quickstart.ml: Adaptive_core Butterfly Config Cthread Cthreads Format List Locks Printf Sched
