examples/phased_contention.mli:
