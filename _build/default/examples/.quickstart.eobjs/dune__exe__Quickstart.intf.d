examples/quickstart.mli:
