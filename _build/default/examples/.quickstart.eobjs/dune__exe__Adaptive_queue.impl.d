examples/adaptive_queue.ml: Adaptive_core Butterfly Config Cthread Cthreads List Printf Queue Sched Spin
