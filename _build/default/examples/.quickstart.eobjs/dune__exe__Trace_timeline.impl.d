examples/trace_timeline.ml: Butterfly Config Cthread Cthreads List Locks Monitoring Printf Sched
