examples/trace_timeline.mli:
