examples/client_server.ml: List Locks Printf Workloads
