examples/phased_contention.ml: List Locks Printf Workloads
