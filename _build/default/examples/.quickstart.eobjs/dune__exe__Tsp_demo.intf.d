examples/tsp_demo.mli:
