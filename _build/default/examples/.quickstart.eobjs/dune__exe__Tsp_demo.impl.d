examples/tsp_demo.ml: List Locks Printf String Tsp
