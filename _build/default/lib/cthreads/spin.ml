open Butterfly

type t = Memory.addr

(* Gap between failed probes: long enough to keep the event count sane,
   short enough not to distort latencies (one local read's worth). *)
let probe_gap_ns = 600

let create ?node () = Ops.alloc1 ?node ()
let try_lock t = Ops.test_and_set t

let lock t =
  (* Busy-wait: the gap between probes occupies the processor, as real
     spinning does. *)
  while not (Ops.test_and_set t) do
    Ops.work probe_gap_ns
  done

let unlock t = Ops.write t 0
let home t = Memory.node_of t
