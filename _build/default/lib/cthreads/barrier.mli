(** Reusable (cyclic) barrier for a fixed party count. *)

type t

val create : ?node:int -> int -> t
(** [create n] is a barrier for [n] parties ([n >= 1]). *)

val await : t -> unit
(** Block until all [n] parties have arrived; the last arrival wakes
    everyone and the barrier resets for the next cycle. *)

val parties : t -> int

val waiting : t -> int
(** Parties currently waiting (racy snapshot, for metrics). *)
