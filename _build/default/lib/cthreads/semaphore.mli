(** Counting semaphore with blocking waiters.

    Built from the internal {!Spin} mutex plus the package's
    block/wakeup primitive. Waiters are released in FIFO order. *)

type t

val create : ?node:int -> int -> t
(** [create n] is a semaphore with [n] initial permits ([n >= 0]). *)

val acquire : t -> unit
(** Take a permit, blocking when none is available. *)

val try_acquire : t -> bool
(** Take a permit if one is immediately available. *)

val release : t -> unit
(** Return a permit, waking the longest-waiting thread if any. *)

val available : t -> int
(** Current permit count (racy snapshot, for metrics). *)
