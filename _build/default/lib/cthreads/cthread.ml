open Butterfly

type t = int

let counter = ref 0

let fork ?name ?proc ?(prio = 0) f =
  let name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "thread-%d" !counter
  in
  Ops.fork { f; proc; prio; name }

let join = Ops.join
let join_all ts = List.iter join ts
let self = Ops.self
let id t = t
let equal (a : t) b = a = b
let of_id tid = tid
let yield = Ops.yield
let block = Ops.block
let wakeup = Ops.wakeup
let delay = Ops.delay
let work = Ops.work
let work_instrs = Ops.work_instrs
let now = Ops.now
let my_processor = Ops.my_processor
let processors = Ops.processors
let set_priority = Ops.set_priority
let priority = Ops.priority_of
let random = Ops.random
let pp ppf t = Format.fprintf ppf "#%d" t
