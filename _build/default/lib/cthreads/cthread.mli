(** Cthreads-like user-level threads on the simulated multiprocessor.

    This is the package the paper's locks live in [Muk91]: lightweight
    threads with fork/join, cooperative scheduling per processor,
    block/wakeup as the basic sleeping primitive, and priorities (used
    by priority lock schedulers). All functions must be called from
    inside a running simulation ({!Butterfly.Sched.run}). *)

type t
(** A thread handle. *)

val fork : ?name:string -> ?proc:int -> ?prio:int -> (unit -> unit) -> t
(** Create a thread. [proc] pins it to a processor (the paper's TSP
    runs one searcher per dedicated processor); otherwise the machine
    places it round-robin. *)

val join : t -> unit
val join_all : t list -> unit

val self : unit -> t
val id : t -> int
val equal : t -> t -> bool
val of_id : int -> t

val yield : unit -> unit

val block : unit -> unit
(** Sleep until {!wakeup}. A wakeup that raced ahead is remembered, so
    the block/wakeup pair never loses a notification. *)

val wakeup : t -> unit

val delay : int -> unit
(** Wait [ns] without occupying the processor. *)

val work : int -> unit
(** Compute for [ns] (occupies the processor). *)

val work_instrs : int -> unit

val now : unit -> int
val my_processor : unit -> int
val processors : unit -> int
val set_priority : t -> int -> unit
val priority : t -> int
val random : int -> int

val pp : Format.formatter -> t -> unit
