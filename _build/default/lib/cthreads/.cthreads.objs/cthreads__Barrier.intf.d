lib/cthreads/barrier.mli:
