lib/cthreads/spin.mli:
