lib/cthreads/spin.ml: Butterfly Memory Ops
