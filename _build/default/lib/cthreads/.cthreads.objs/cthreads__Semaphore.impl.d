lib/cthreads/semaphore.ml: Butterfly Memory Ops Queue Spin
