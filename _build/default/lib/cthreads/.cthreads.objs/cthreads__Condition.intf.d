lib/cthreads/condition.mli: Spin
