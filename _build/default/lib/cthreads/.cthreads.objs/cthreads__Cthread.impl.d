lib/cthreads/cthread.ml: Butterfly Format List Ops Printf
