lib/cthreads/condition.ml: Butterfly List Ops Spin
