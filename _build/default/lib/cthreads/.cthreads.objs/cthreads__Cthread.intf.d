lib/cthreads/cthread.mli: Format
