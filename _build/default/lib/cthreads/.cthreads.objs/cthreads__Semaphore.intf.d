lib/cthreads/semaphore.mli:
