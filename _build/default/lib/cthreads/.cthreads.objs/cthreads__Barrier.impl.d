lib/cthreads/barrier.ml: Butterfly List Memory Ops Spin
