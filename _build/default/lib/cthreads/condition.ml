open Butterfly

type t = {
  guard : Spin.t;  (* protects the waiter list *)
  mutable sleepers : int list;  (* FIFO, oldest first *)
}

let create ?node () = { guard = Spin.create ?node (); sleepers = [] }

let wait t mu =
  Spin.lock t.guard;
  t.sleepers <- t.sleepers @ [ Ops.self () ];
  Spin.unlock t.guard;
  (* Release the monitor mutex only after registering, so a signal
     racing with this wait cannot be lost (the wake token absorbs an
     early wakeup). *)
  Spin.unlock mu;
  Ops.block ();
  Spin.lock mu

let signal t =
  Spin.lock t.guard;
  (match t.sleepers with
  | [] -> Spin.unlock t.guard
  | tid :: rest ->
    t.sleepers <- rest;
    Spin.unlock t.guard;
    Ops.wakeup tid)

let broadcast t =
  Spin.lock t.guard;
  let sleepers = t.sleepers in
  t.sleepers <- [];
  Spin.unlock t.guard;
  List.iter Ops.wakeup sleepers

let waiting t = List.length t.sleepers
