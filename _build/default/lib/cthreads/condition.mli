(** Condition variables over the internal {!Spin} mutex.

    The classic monitor pattern for simulated applications: a waiter
    atomically releases the mutex and sleeps; [signal] wakes the
    longest-waiting thread, [broadcast] wakes everyone. Waiters
    re-acquire the mutex before {!wait} returns. Mesa semantics: a
    woken waiter must re-check its predicate. *)

type t

val create : ?node:int -> unit -> t

val wait : t -> Spin.t -> unit
(** [wait cv mu] releases [mu], sleeps until signalled, then
    re-acquires [mu]. The caller must hold [mu]. *)

val signal : t -> unit
(** Wake one waiter (no-op when none). *)

val broadcast : t -> unit
(** Wake every current waiter. *)

val waiting : t -> int
(** Current number of sleepers (racy snapshot). *)
