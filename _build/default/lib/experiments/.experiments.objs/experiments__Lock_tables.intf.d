lib/experiments/lock_tables.mli:
