lib/experiments/report.mli: Format Lock_tables Paper Tsp
