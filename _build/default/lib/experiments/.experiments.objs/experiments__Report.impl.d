lib/experiments/report.ml: Ablations Engine Fig1 Filename Float Format Fun List Lock_tables Locks Paper Printf Repro_stats Sys Tsp Tsp_experiments
