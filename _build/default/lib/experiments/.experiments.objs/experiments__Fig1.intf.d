lib/experiments/fig1.mli: Butterfly Locks Workloads
