lib/experiments/lock_tables.ml: Adaptive_core Butterfly Config Cthread Cthreads List Locks Sched
