lib/experiments/paper.mli: Locks
