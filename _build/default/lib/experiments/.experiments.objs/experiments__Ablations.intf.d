lib/experiments/ablations.mli: Butterfly Locks
