lib/experiments/tsp_experiments.ml: List Locks Option Printf String Tsp
