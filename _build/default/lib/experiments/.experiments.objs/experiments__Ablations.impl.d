lib/experiments/ablations.ml: Barrier Butterfly Config Cthread Cthreads List Locks Memory Monitoring Sched Workloads
