lib/experiments/paper.ml: Locks
