lib/experiments/tsp_experiments.mli: Butterfly Engine Tsp
