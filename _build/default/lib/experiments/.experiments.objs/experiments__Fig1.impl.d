lib/experiments/fig1.ml: Buffer List Locks Paper Printf Repro_stats Workloads
