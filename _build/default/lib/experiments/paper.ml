type lock_op_row = { lock_name : string; local_us : float; remote_us : float }

let table4 =
  [
    { lock_name = "atomior"; local_us = 30.73; remote_us = 33.86 };
    { lock_name = "spin-lock"; local_us = 40.79; remote_us = 41.10 };
    { lock_name = "spin-with-backoff"; local_us = 40.79; remote_us = 41.15 };
    { lock_name = "blocking-lock"; local_us = 88.59; remote_us = 91.73 };
    { lock_name = "adaptive lock"; local_us = 40.79; remote_us = 41.17 };
  ]

let table5 =
  [
    { lock_name = "spin-lock"; local_us = 4.99; remote_us = 7.23 };
    { lock_name = "spin-with-backoff"; local_us = 5.01; remote_us = 7.25 };
    { lock_name = "blocking-lock"; local_us = 62.32; remote_us = 73.45 };
    { lock_name = "adaptive lock"; local_us = 50.07; remote_us = 61.69 };
  ]

let table6 =
  [
    { lock_name = "spin"; local_us = 45.13; remote_us = 47.89 };
    { lock_name = "spin-with-backoff"; local_us = 320.36; remote_us = 356.95 };
    { lock_name = "blocking-lock"; local_us = 510.55; remote_us = 563.79 };
  ]

let table7 =
  [
    { lock_name = "spin"; local_us = 90.21; remote_us = 101.38 };
    { lock_name = "blocking"; local_us = 565.16; remote_us = 625.63 };
  ]

let table8 =
  [
    { lock_name = "acquisition"; local_us = 30.75; remote_us = 33.92 };
    { lock_name = "configure(waiting policy)"; local_us = 9.87; remote_us = 14.45 };
    { lock_name = "configure(scheduler)"; local_us = 12.51; remote_us = 20.83 };
    { lock_name = "monitor (one state variable)"; local_us = 66.03; remote_us = nan };
  ]

type tsp_row = {
  sequential_ms : float option;
  blocking_ms : float;
  adaptive_ms : float;
  improvement_pct : float;
}

let table1 =
  {
    sequential_ms = Some 20666.0;
    blocking_ms = 3207.0;
    adaptive_ms = 2636.0;
    improvement_pct = 17.8;
  }

let table2 =
  { sequential_ms = None; blocking_ms = 2973.0; adaptive_ms = 2596.0; improvement_pct = 12.7 }

let table3 =
  { sequential_ms = None; blocking_ms = 2054.0; adaptive_ms = 1921.0; improvement_pct = 6.5 }

let figure1_lock_kinds =
  [
    Locks.Lock.Spin;
    Locks.Lock.Blocking;
    Locks.Lock.Combined 1;
    Locks.Lock.Combined 10;
    Locks.Lock.Combined 50;
  ]
