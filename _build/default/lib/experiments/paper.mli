(** Reference values from the paper, for paper-vs-measured reporting.

    Latencies are in microseconds, application times in milliseconds,
    exactly as printed in GIT-CC-93/17. *)

type lock_op_row = { lock_name : string; local_us : float; remote_us : float }

val table4 : lock_op_row list
(** Cost of the Lock operation. *)

val table5 : lock_op_row list
(** Cost of the Unlock operation. *)

val table6 : lock_op_row list
(** Locking cycle (unlock then lock on a locked lock), static locks. *)

val table7 : lock_op_row list
(** Locking cycle of the adaptive lock configured as spin/blocking. *)

val table8 : lock_op_row list
(** Configuration-operation costs (remote monitor cost is not reported
    in the paper: [nan]). *)

type tsp_row = {
  sequential_ms : float option;  (** only Table 1 reports it *)
  blocking_ms : float;
  adaptive_ms : float;
  improvement_pct : float;
}

val table1 : tsp_row
(** Centralized implementation. *)

val table2 : tsp_row
(** Distributed implementation. *)

val table3 : tsp_row
(** Distributed with load balancing. *)

val figure1_lock_kinds : Locks.Lock.kind list
(** The five locks Figure 1 compares: pure spin, pure blocking, and
    combined with 1, 10 and 50 initial spins. *)
