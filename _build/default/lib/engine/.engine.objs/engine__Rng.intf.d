lib/engine/rng.mli:
