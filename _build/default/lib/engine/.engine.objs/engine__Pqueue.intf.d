lib/engine/pqueue.mli:
