lib/engine/series.mli:
