lib/engine/counters.ml: Format Hashtbl List Stdlib String
